#include "state/serialize.h"

#include <array>
#include <cstring>

namespace rb::state {

namespace {

constexpr std::uint32_t kMagic = 0x54534252;  // "RBST" little-endian
constexpr std::uint32_t kFormat = 1;
constexpr std::size_t kHeaderSize = 12;        // magic + format + n_sections
constexpr std::size_t kSectionHeader = 20;     // id + version + len + crc

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}

void put_u32(std::vector<std::uint8_t>& buf, std::size_t at,
             std::uint32_t v) {
  buf[at] = std::uint8_t(v);
  buf[at + 1] = std::uint8_t(v >> 8);
  buf[at + 2] = std::uint8_t(v >> 16);
  buf[at + 3] = std::uint8_t(v >> 24);
}

void put_u64(std::vector<std::uint8_t>& buf, std::size_t at,
             std::uint64_t v) {
  put_u32(buf, at, std::uint32_t(v));
  put_u32(buf, at + 4, std::uint32_t(v >> 32));
}

}  // namespace

const char* error_name(StateError e) {
  switch (e) {
    case StateError::kNone: return "none";
    case StateError::kBadMagic: return "bad-magic";
    case StateError::kBadFormat: return "bad-format";
    case StateError::kTruncated: return "truncated";
    case StateError::kBadCrc: return "bad-crc";
    case StateError::kBadSection: return "bad-section";
    case StateError::kBadValue: return "bad-value";
    case StateError::kBadVersion: return "bad-version";
    case StateError::kMismatch: return "mismatch";
  }
  return "unknown";
}

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::uint8_t byte : data)
    c = table[(c ^ byte) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

// --- StateWriter ------------------------------------------------------

StateWriter::StateWriter() {
  buf_.resize(kHeaderSize, 0);
  put_u32(buf_, 0, kMagic);
  put_u32(buf_, 4, kFormat);
  // n_sections backpatched in finish().
}

void StateWriter::begin_section(std::uint32_t id, std::uint32_t version) {
  section_start_ = buf_.size();
  in_section_ = true;
  ++n_sections_;
  buf_.resize(buf_.size() + kSectionHeader, 0);
  put_u32(buf_, section_start_, id);
  put_u32(buf_, section_start_ + 4, version);
  // len + crc backpatched in end_section().
}

void StateWriter::end_section() {
  std::size_t payload_at = section_start_ + kSectionHeader;
  std::uint64_t len = buf_.size() - payload_at;
  put_u64(buf_, section_start_ + 8, len);
  put_u32(buf_, section_start_ + 16,
          crc32({buf_.data() + payload_at, std::size_t(len)}));
  in_section_ = false;
}

void StateWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void StateWriter::u16(std::uint16_t v) {
  buf_.push_back(std::uint8_t(v));
  buf_.push_back(std::uint8_t(v >> 8));
}

void StateWriter::u32(std::uint32_t v) {
  u16(std::uint16_t(v));
  u16(std::uint16_t(v >> 16));
}

void StateWriter::u64(std::uint64_t v) {
  u32(std::uint32_t(v));
  u32(std::uint32_t(v >> 32));
}

void StateWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void StateWriter::str(std::string_view s) {
  u32(std::uint32_t(s.size()));
  bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

void StateWriter::bytes(std::span<const std::uint8_t> src) {
  buf_.insert(buf_.end(), src.begin(), src.end());
}

std::vector<std::uint8_t> StateWriter::finish() {
  if (in_section_) end_section();
  put_u32(buf_, 8, n_sections_);
  return std::move(buf_);
}

// --- StateReader ------------------------------------------------------

StateReader::StateReader(std::span<const std::uint8_t> blob) : blob_(blob) {
  if (blob_.size() < kHeaderSize) {
    err_ = StateError::kTruncated;
    return;
  }
  auto rd_u32 = [&](std::size_t at) {
    return std::uint32_t(blob_[at]) | std::uint32_t(blob_[at + 1]) << 8 |
           std::uint32_t(blob_[at + 2]) << 16 |
           std::uint32_t(blob_[at + 3]) << 24;
  };
  if (rd_u32(0) != kMagic) {
    err_ = StateError::kBadMagic;
    return;
  }
  if (rd_u32(4) > kFormat) {
    err_ = StateError::kBadFormat;
    return;
  }
  sections_left_ = rd_u32(8);
  pos_ = kHeaderSize;
  section_end_ = pos_;
}

void StateReader::fail(StateError e) {
  if (err_ == StateError::kNone) err_ = e;
}

bool StateReader::next_section(SectionInfo* info) {
  if (err_ != StateError::kNone || sections_left_ == 0) return false;
  pos_ = section_end_;  // drop any unread tail of the previous section
  if (pos_ + kSectionHeader > blob_.size()) {
    err_ = StateError::kTruncated;
    return false;
  }
  auto rd_u32 = [&](std::size_t at) {
    return std::uint32_t(blob_[at]) | std::uint32_t(blob_[at + 1]) << 8 |
           std::uint32_t(blob_[at + 2]) << 16 |
           std::uint32_t(blob_[at + 3]) << 24;
  };
  SectionInfo s;
  s.id = rd_u32(pos_);
  s.version = rd_u32(pos_ + 4);
  s.len = std::uint64_t(rd_u32(pos_ + 8)) |
          std::uint64_t(rd_u32(pos_ + 12)) << 32;
  std::uint32_t crc = rd_u32(pos_ + 16);
  pos_ += kSectionHeader;
  if (s.len > blob_.size() - pos_) {
    err_ = StateError::kBadSection;
    return false;
  }
  if (crc32({blob_.data() + pos_, std::size_t(s.len)}) != crc) {
    err_ = StateError::kBadCrc;
    return false;
  }
  section_end_ = pos_ + std::size_t(s.len);
  --sections_left_;
  if (info) *info = s;
  return true;
}

void StateReader::skip_section() { pos_ = section_end_; }

bool StateReader::take(void* dst, std::size_t n) {
  if (err_ != StateError::kNone) return false;
  if (pos_ + n > section_end_) {
    err_ = StateError::kTruncated;
    return false;
  }
  std::memcpy(dst, blob_.data() + pos_, n);
  pos_ += n;
  return true;
}

std::uint8_t StateReader::u8() {
  std::uint8_t v = 0;
  take(&v, 1);
  return v;
}

std::uint16_t StateReader::u16() {
  std::uint8_t b[2] = {};
  take(b, 2);
  return std::uint16_t(b[0] | b[1] << 8);
}

std::uint32_t StateReader::u32() {
  std::uint8_t b[4] = {};
  take(b, 4);
  return std::uint32_t(b[0]) | std::uint32_t(b[1]) << 8 |
         std::uint32_t(b[2]) << 16 | std::uint32_t(b[3]) << 24;
}

std::uint64_t StateReader::u64() {
  std::uint64_t lo = u32();
  std::uint64_t hi = u32();
  return lo | hi << 32;
}

double StateReader::f64() {
  std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

bool StateReader::b() {
  std::uint8_t v = u8();
  if (v > 1) {
    fail(StateError::kBadValue);
    return false;
  }
  return v == 1;
}

std::uint32_t StateReader::count(std::size_t min_elem_bytes) {
  std::uint32_t n = u32();
  if (err_ != StateError::kNone) return 0;
  if (min_elem_bytes == 0) min_elem_bytes = 1;
  if (std::uint64_t(n) * min_elem_bytes > section_remaining()) {
    fail(StateError::kBadValue);
    return 0;
  }
  return n;
}

std::string StateReader::str() {
  std::uint32_t n = u32();
  if (err_ != StateError::kNone) return {};
  if (n > section_remaining()) {
    fail(StateError::kTruncated);
    return {};
  }
  std::string s(n, '\0');
  take(s.data(), n);
  return s;
}

void StateReader::bytes(std::span<std::uint8_t> out) {
  if (!take(out.data(), out.size()) && !out.empty())
    std::memset(out.data(), 0, out.size());
}

}  // namespace rb::state
