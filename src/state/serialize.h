// Versioned, deterministic binary serialization for checkpoint/restore.
//
// A state blob is a header followed by a flat list of sections:
//
//   header : [magic "RBST" u32][format u32][n_sections u32]
//   section: [id u32][version u32][len u64][crc32 u32][payload ...]
//
// All integers are little-endian fixed-width; doubles are raw IEEE-754
// bit patterns, so serialize -> restore -> re-serialize is byte-identical.
// Readers validate bounds and CRC before exposing any payload byte and
// skip sections whose id they do not know (forward compatibility: a newer
// writer may append new sections without breaking older readers). Errors
// are typed values, never exceptions — a corrupted or truncated blob must
// be rejected deterministically, not crash the datapath.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace rb::state {

/// Why a blob was rejected. kNone means the operation succeeded.
enum class StateError {
  kNone = 0,
  kBadMagic,     // header magic mismatch — not a state blob
  kBadFormat,    // blob format number newer than this reader
  kTruncated,    // ran off the end of the blob or a section payload
  kBadCrc,       // section payload failed its CRC32 check
  kBadSection,   // malformed section header (e.g. length overruns blob)
  kBadValue,     // a field decoded to an impossible value (e.g. bool == 7)
  kBadVersion,   // a known section carries an unsupported version
  kMismatch,     // blob shape does not match the live deployment
};

const char* error_name(StateError e);

/// CRC-32 (IEEE 802.3 polynomial, reflected). seed lets callers chain.
std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t seed = 0);

/// Registry of checkpoint section ids. Every stateful component owns one
/// id; instances of the same type appear in deterministic builder order.
/// Never renumber an existing id — append only (forward compatibility).
enum SectionId : std::uint32_t {
  kSecMeta = 1,      // deployment shape fingerprint + checkpoint slot
  kSecClock = 2,     // SlotClock virtual time
  kSecAir = 3,       // AirModel UE / cell state
  kSecTraffic = 4,   // TrafficGen flow carries
  kSecPort = 5,      // one per Port: rx queue + stats (in-flight packets)
  kSecDu = 6,        // one per DuModel (includes its MacScheduler)
  kSecRu = 7,        // one per RuModel
  kSecFault = 8,     // one per FaultyLink: RNG streams, GE state, held pkt
  kSecRuntime = 9,   // one per MiddleboxRuntime: telemetry, cache, app
  kSecCtrl = 10,     // one per ctrl::AdaptationController
  kSecSwitch = 11,   // one per EmbeddedSwitch: learned FDB + port stats
  kSecCityMeta = 12,  // city conductor: cell count, city slot, bridge state
  kSecCityCell = 13,  // one per cell: name + nested deployment checkpoint
};

/// Append-only section writer. Usage:
///   StateWriter w;
///   w.begin_section(kSecClock, 1); w.u64(...); w.end_section();
///   auto blob = w.finish();
class StateWriter {
 public:
  StateWriter();

  void begin_section(std::uint32_t id, std::uint32_t version);
  void end_section();  // backpatches length + CRC of the open section

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void b(bool v) { u8(v ? 1 : 0); }
  /// u32 length prefix + raw bytes.
  void str(std::string_view s);
  void bytes(std::span<const std::uint8_t> src);

  /// Finalize: backpatch the section count, move the blob out. The writer
  /// must not be reused afterwards.
  std::vector<std::uint8_t> finish();

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t section_start_ = 0;  // offset of the open section header
  bool in_section_ = false;
  std::uint32_t n_sections_ = 0;
};

struct SectionInfo {
  std::uint32_t id = 0;
  std::uint32_t version = 0;
  std::uint64_t len = 0;
};

/// Validating reader. Iterate with next_section(); within a section, read
/// primitives in the order they were written. Any structural problem
/// latches a StateError: all subsequent reads return zero values and
/// next_section() returns false, so callers may check ok() once at the
/// end of a load instead of after every field.
class StateReader {
 public:
  explicit StateReader(std::span<const std::uint8_t> blob);

  bool ok() const { return err_ == StateError::kNone; }
  StateError error() const { return err_; }
  /// Latch an error from a higher layer (e.g. a section version the
  /// component does not support). First error wins.
  void fail(StateError e);

  /// Advance to the next section; validates its header and payload CRC.
  /// Returns false at end of blob or on error.
  bool next_section(SectionInfo* info);
  /// Skip whatever remains of the current section's payload. Call after
  /// loading a section so unknown appended fields are tolerated, or to
  /// ignore an unknown section entirely.
  void skip_section();

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  bool b();
  std::string str();
  /// Read a u32 element count, validating that `count * min_elem_bytes`
  /// still fits in the current section — so a corrupt count can never
  /// drive a huge container allocation. Latches kBadValue on overrun.
  std::uint32_t count(std::size_t min_elem_bytes = 1);
  /// Fill `out` exactly; underrun latches kTruncated.
  void bytes(std::span<std::uint8_t> out);
  /// Unread payload bytes of the current section.
  std::uint64_t section_remaining() const { return section_end_ - pos_; }

 private:
  bool take(void* dst, std::size_t n);

  std::span<const std::uint8_t> blob_;
  std::size_t pos_ = 0;
  std::size_t section_end_ = 0;  // payload end of the current section
  std::uint32_t sections_left_ = 0;
  StateError err_ = StateError::kNone;
};

}  // namespace rb::state
