#include "mb/dmimo.h"

#include <algorithm>
#include <sstream>

namespace rb {

DmimoMiddlebox::DmimoMiddlebox(DmimoConfig cfg) : cfg_(std::move(cfg)) {
  for (const auto& ru : cfg_.rus) {
    layer_base_.push_back(total_antennas_);
    total_antennas_ += ru.n_antennas;
  }
  last_ul_slot_.assign(cfg_.rus.size(), -1);
  ru_down_.assign(cfg_.rus.size(), false);
  forced_down_.assign(cfg_.rus.size(), false);
}

bool DmimoMiddlebox::set_ru_gated(std::size_t ru_index, bool gated) {
  if (ru_index >= forced_down_.size()) return false;
  if (forced_down_[ru_index] == gated) return true;
  if (gated) {
    std::size_t open = 0;
    for (std::size_t i = 0; i < forced_down_.size(); ++i)
      if (!forced_down_[i]) ++open;
    if (open <= 1) return false;  // keep one RU radiating
  }
  forced_down_[ru_index] = gated;
  return true;
}

void DmimoMiddlebox::on_slot(std::int64_t slot, MbContext& ctx) {
  (void)slot;
  if (cfg_.ru_quiet_slots <= 0) return;
  // An RU is down when its uplink has been quiet for the whole window
  // while some partner kept talking; the loudest partner is live by
  // construction, so service never collapses to zero RUs.
  std::int64_t max_seen = -1;
  for (std::int64_t v : last_ul_slot_) max_seen = std::max(max_seen, v);
  int live = 0;
  for (std::size_t i = 0; i < ru_down_.size(); ++i) {
    const std::int64_t seen = last_ul_slot_[i];
    const bool quiet =
        max_seen >= 0 && max_seen - (seen < 0 ? -1 : seen) >
                             std::int64_t(cfg_.ru_quiet_slots);
    if (quiet && !ru_down_[i]) {
      ru_down_[i] = true;
      ctx.telemetry().inc("dmimo_ru_fallbacks");
    } else if (!quiet && ru_down_[i]) {
      ru_down_[i] = false;
      ctx.telemetry().inc("dmimo_ru_recoveries");
    }
    if (!ru_down_[i] && !forced_down_[i]) ++live;
  }
  if (!gauges_ready_) {
    g_rus_live_ = ctx.telemetry().intern_gauge("dmimo_rus_live");
    gauges_ready_ = true;
  }
  ctx.telemetry().set_gauge(g_rus_live_, live);
}

DmimoMiddlebox::PortMap DmimoMiddlebox::map_layer(int cell_layer) const {
  for (std::size_t i = 0; i < cfg_.rus.size(); ++i) {
    const int base = layer_base_[i];
    if (cell_layer >= base && cell_layer < base + cfg_.rus[i].n_antennas)
      return {int(i), cell_layer - base};
  }
  return {};
}

bool DmimoMiddlebox::is_ssb_symbol(const SlotPoint& at) const {
  // SSB occasions repeat every period; our cells place them in the first
  // slot of the period (slot and subframe both 0 modulo the period).
  const int spsf = slots_per_subframe(Scs::kHz30);
  const std::int64_t abs_slot =
      (std::int64_t(at.frame) * 10 + at.subframe) * spsf + at.slot;
  if (abs_slot % cfg_.ssb_period_slots != 0) return false;
  return at.symbol >= cfg_.ssb_first_symbol &&
         at.symbol < cfg_.ssb_first_symbol + cfg_.ssb_n_symbols;
}

void DmimoMiddlebox::on_frame(int in_port, PacketPtr p, FhFrame& frame,
                              MbContext& ctx) {
  if (in_port == kNorth)
    downlink(std::move(p), frame, ctx);
  else
    uplink(std::move(p), frame, ctx);
}

void DmimoMiddlebox::downlink(PacketPtr p, FhFrame& frame, MbContext& ctx) {
  const FrameInfo* fi = ctx.frame_info();  // burst classify-table row
  const EaxcId eaxc = fi ? fi->eaxc : frame.ecpri.eaxc;

  // PRACH control: replicate to every RU (down ones included - control
  // frames are the probe that lets a recovered RU answer again) so
  // whichever radio is nearest a joining UE captures its preamble.
  if (fi ? fi->prach : eaxc.du_port != 0) {
    for (std::size_t i = 0; i + 1 < cfg_.rus.size(); ++i) {
      PacketPtr copy = ctx.replicate(*p);
      if (copy) ctx.forward(std::move(copy), kSouth, cfg_.rus[i].mac);
    }
    if (!cfg_.rus.empty())
      ctx.forward(std::move(p), kSouth, cfg_.rus.back().mac);
    else
      ctx.drop(std::move(p));
    return;
  }

  const PortMap m = map_layer(eaxc.ru_port);
  if (m.ru_index < 0) {
    ctx.telemetry().inc("dmimo_unmapped_layer");
    ctx.drop(std::move(p));
    return;
  }
  // Fewer-RU fallback: the partner's uplink is quiet; stop shipping IQ
  // payloads to a radio that stopped serving - the surviving RUs carry
  // the cell. C-plane still goes through: uplink is C-plane driven, so
  // scheduling requests are exactly the probe that detects recovery.
  const bool is_up = fi ? !fi->cplane : frame.is_uplane();
  if (ru_down(m.ru_index) && is_up) {
    ctx.telemetry().inc("dmimo_fallback_drops");
    ctx.drop(std::move(p));
    return;
  }

  // SSB copy: the primary antenna's U-plane carries the SSB; graft its
  // PRBs into the packet that becomes antenna 0 of every other RU.
  if (cfg_.copy_ssb && is_up &&
      is_ssb_symbol(fi ? fi->at : frame.uplane().at)) {
    const auto& u = frame.uplane();
    if (eaxc.ru_port == 0) {
      // Cache the primary antenna's SSB-symbol packet (A3).
      ctx.charge_cache_op();
      ctx.cache().put(PacketCache::key(u.at, eaxc, false, /*aux=*/0x3),
                      CachedPacket{ctx.replicate(*p), frame, kNorth});
    } else if (m.local_port == 0) {
      // This packet becomes some RU's antenna 0: graft the SSB window.
      // Both frames carry a section covering the SSB grid position (the
      // non-primary ports transport it zero-filled for this purpose).
      auto find_ssb_section = [this](const UPlaneMsg& msg) -> const USection* {
        for (const auto& s : msg.sections) {
          if (cfg_.ssb_start_prb >= s.start_prb &&
              cfg_.ssb_start_prb + cfg_.ssb_n_prb <= s.start_prb + s.num_prb)
            return &s;
        }
        return nullptr;
      };
      EaxcId primary{0, 0, 0, 0};
      const auto& cached = ctx.cache().peek(
          PacketCache::key(u.at, primary, false, /*aux=*/0x3));
      const USection* src_sec =
          (!cached.empty() && cached.front().pkt)
              ? find_ssb_section(cached.front().frame.uplane())
              : nullptr;
      const USection* dst_sec = find_ssb_section(u);
      if (src_sec && dst_sec) {
        ctx.copy_prbs(
            cached.front().pkt->bytes(src_sec->payload_offset,
                                      src_sec->payload_len),
            cfg_.ssb_start_prb - src_sec->start_prb,
            p->raw().subspan(dst_sec->payload_offset, dst_sec->payload_len),
            cfg_.ssb_start_prb - dst_sec->start_prb, cfg_.ssb_n_prb,
            dst_sec->comp);
        ctx.telemetry().inc("dmimo_ssb_copies");
      } else {
        ctx.telemetry().inc("dmimo_ssb_copy_misses");
      }
    }
  }

  // Remap the antenna port to the RU-local numbering (A4) and steer (A1).
  if (m.local_port != eaxc.ru_port) {
    EaxcId remapped = eaxc;
    remapped.ru_port = std::uint8_t(m.local_port);
    ctx.rewrite_eaxc(*p, remapped);
    ctx.telemetry().inc("dmimo_dl_remaps");
  }
  ctx.forward(std::move(p), kSouth, cfg_.rus[std::size_t(m.ru_index)].mac);
}

void DmimoMiddlebox::uplink(PacketPtr p, FhFrame& frame, MbContext& ctx) {
  // Identify the source RU and remap its local port to the cell layer.
  const MacAddr src = frame.eth.src;
  int ru_index = -1;
  for (std::size_t i = 0; i < cfg_.rus.size(); ++i) {
    if (cfg_.rus[i].mac == src) {
      ru_index = int(i);
      break;
    }
  }
  if (ru_index < 0) {
    ctx.telemetry().inc("dmimo_unknown_ru");
    ctx.drop(std::move(p));
    return;
  }
  last_ul_slot_[std::size_t(ru_index)] = ctx.slot();
  const EaxcId eaxc = frame.ecpri.eaxc;
  if (eaxc.du_port == 0) {
    const int cell_layer = layer_base_[std::size_t(ru_index)] + eaxc.ru_port;
    if (cell_layer != eaxc.ru_port) {
      EaxcId remapped = eaxc;
      remapped.ru_port = std::uint8_t(cell_layer);
      ctx.rewrite_eaxc(*p, remapped);
      ctx.telemetry().inc("dmimo_ul_remaps");
    }
  }
  ctx.forward(std::move(p), kNorth, cfg_.du_mac);
}

std::string DmimoMiddlebox::on_mgmt(const std::string& cmd) {
  std::istringstream is(cmd);
  std::string verb;
  is >> verb;
  if (verb == "layout") {
    std::ostringstream os;
    for (std::size_t i = 0; i < cfg_.rus.size(); ++i)
      os << "ru" << i << " " << cfg_.rus[i].mac.str() << " layers "
         << layer_base_[i] << ".."
         << layer_base_[i] + cfg_.rus[i].n_antennas - 1 << "\n";
    return os.str();
  }
  if (verb == "ssb-copy") {
    std::string v;
    is >> v;
    cfg_.copy_ssb = v == "on";
    return "ok";
  }
  if (verb == "liveness") {
    std::ostringstream os;
    for (std::size_t i = 0; i < cfg_.rus.size(); ++i)
      os << "ru" << i << " last_ul_slot=" << last_ul_slot_[i]
         << (ru_down_[i] ? " DOWN" : " up") << "\n";
    return os.str();
  }
  if (verb == "gate-ru") {
    std::size_t i = 0;
    std::string state;
    if (is >> i >> state && (state == "on" || state == "off"))
      return set_ru_gated(i, state == "off") ? "ok" : "refused";
    return "usage: gate-ru <index> on|off (on = participating)";
  }
  if (verb == "set-quiet-slots") {
    int v = 0;
    if (is >> v) {
      cfg_.ru_quiet_slots = v;
      return "ok";
    }
    return "usage: set-quiet-slots <slots>";
  }
  return "unknown command";
}


void DmimoMiddlebox::save_state(state::StateWriter& w) const {
  w.u32(std::uint32_t(last_ul_slot_.size()));
  for (std::int64_t s : last_ul_slot_) w.i64(s);
  for (bool d : ru_down_) w.b(d);
  for (bool f : forced_down_) w.b(f);
}

void DmimoMiddlebox::load_state(state::StateReader& r) {
  if (r.count(8) != last_ul_slot_.size()) {
    r.fail(state::StateError::kMismatch);
    return;
  }
  for (std::int64_t& s : last_ul_slot_) s = r.i64();
  for (std::size_t i = 0; i < ru_down_.size(); ++i) ru_down_[i] = r.b();
  for (std::size_t i = 0; i < forced_down_.size(); ++i)
    forced_down_[i] = r.b();
}

}  // namespace rb
