#include "mb/failover.h"

#include <sstream>

namespace rb {

void FailoverMiddlebox::on_frame(int in_port, PacketPtr p, FhFrame& frame,
                                 MbContext& ctx) {
  (void)frame;
  if (in_port == kSouth) {
    // Uplink: steer to whichever DU is currently active (A1).
    const MacAddr dst =
        active_ == kPrimary ? cfg_.primary_du_mac : cfg_.standby_du_mac;
    ctx.forward(std::move(p), active_, dst);
    return;
  }
  last_seen_slot_[in_port] = current_slot_;
  if (in_port != active_) {
    // Inactive DU's downlink is suppressed so the RU sees exactly one
    // master (the standby keeps "transmitting" into the void).
    ctx.telemetry().inc("failover_suppressed");
    ctx.drop(std::move(p));
    return;
  }
  ctx.forward(std::move(p), kSouth, cfg_.ru_mac);
}

void FailoverMiddlebox::on_slot(std::int64_t slot, MbContext& ctx) {
  current_slot_ = slot;
  if (!gauges_ready_) {
    g_active_ = ctx.telemetry().intern_gauge("failover_active");
    g_last_switch_ = ctx.telemetry().intern_gauge("failover_last_switch_slot");
    g_fresh_streak_ =
        ctx.telemetry().intern_gauge("failover_primary_fresh_streak");
    g_dwell_remaining_ =
        ctx.telemetry().intern_gauge("failover_dwell_remaining");
    gauges_ready_ = true;
  }
  const auto set_active_gauge = [&] {
    ctx.telemetry().set_gauge(g_active_, active_);
  };
  const auto publish_hysteresis = [&] {
    ctx.telemetry().set_gauge(g_last_switch_, double(last_switch_slot_));
    ctx.telemetry().set_gauge(
        g_fresh_streak_,
        primary_fresh_since_ < 0 ? 0.0
                                 : double(slot - primary_fresh_since_ + 1));
    const std::int64_t dwell =
        last_switch_slot_ < 0
            ? 0
            : std::max<std::int64_t>(
                  0, cfg_.min_dwell_slots - (slot - last_switch_slot_));
    ctx.telemetry().set_gauge(g_dwell_remaining_, double(dwell));
  };
  // Track the primary's uninterrupted healthy streak (fresh = emitted
  // within the last slot); a single frame from a flapping primary starts
  // a streak but does not survive the confirmation window.
  const bool primary_fresh =
      last_seen_slot_[kPrimary] >= 0 && slot - last_seen_slot_[kPrimary] <= 1;
  if (primary_fresh) {
    if (primary_fresh_since_ < 0) primary_fresh_since_ = slot;
  } else {
    primary_fresh_since_ = -1;
  }
  const bool dwell_ok =
      last_switch_slot_ < 0 || slot - last_switch_slot_ >= cfg_.min_dwell_slots;

  const std::int64_t seen = last_seen_slot_[active_];
  if (seen >= 0 && slot - seen > cfg_.liveness_slots) {
    // Heartbeat lost on the active side: switch over (unless we just
    // switched - a min-dwell guard against ping-pong between two
    // half-dead DUs).
    if (!dwell_ok) {
      ctx.telemetry().inc("failover_dwell_suppressed");
      publish_hysteresis();
      return;
    }
    const int dead = active_;
    active_ = active_ == kPrimary ? kStandby : kPrimary;
    // Only count it as a failover if the new side is actually alive.
    if (last_seen_slot_[active_] >= 0 &&
        slot - last_seen_slot_[active_] <= cfg_.liveness_slots) {
      ++failovers_;
      last_switch_slot_ = slot;
      ctx.telemetry().inc("failover_switchovers");
      set_active_gauge();
    } else {
      active_ = dead;  // nobody alive; stay put
    }
  } else if (cfg_.failback && active_ == kStandby && primary_fresh) {
    // Primary looks healthy again; fail back only once the streak spans
    // the confirmation window and the dwell timer allows a switch.
    const bool confirmed =
        slot - primary_fresh_since_ + 1 >= cfg_.failback_confirm_slots;
    if (!confirmed || !dwell_ok) {
      ctx.telemetry().inc("failover_failback_deferred");
      publish_hysteresis();
      return;
    }
    active_ = kPrimary;
    last_switch_slot_ = slot;
    ctx.telemetry().inc("failover_failbacks");
    set_active_gauge();
  }
  publish_hysteresis();
}

std::string FailoverMiddlebox::on_mgmt(const std::string& cmd) {
  std::istringstream is(cmd);
  std::string verb;
  is >> verb;
  if (verb == "active")
    return active_ == kPrimary ? "primary" : "standby";
  if (verb == "switch") {
    active_ = active_ == kPrimary ? kStandby : kPrimary;
    return "ok";
  }
  if (verb == "hysteresis") {
    std::ostringstream os;
    os << "min_dwell_slots=" << cfg_.min_dwell_slots
       << " failback_confirm_slots=" << cfg_.failback_confirm_slots
       << " last_switch_slot=" << last_switch_slot_
       << " primary_fresh_since=" << primary_fresh_since_ << "\n";
    return os.str();
  }
  if (verb == "set-dwell") {
    int v = 0;
    if (is >> v) {
      cfg_.min_dwell_slots = v;
      return "ok";
    }
    return "usage: set-dwell <slots>";
  }
  if (verb == "set-confirm") {
    int v = 0;
    if (is >> v) {
      cfg_.failback_confirm_slots = v;
      return "ok";
    }
    return "usage: set-confirm <slots>";
  }
  return "unknown command";
}


void FailoverMiddlebox::retune(int liveness_slots, bool failback,
                               int min_dwell_slots,
                               int failback_confirm_slots) {
  cfg_.liveness_slots = liveness_slots < 1 ? 1 : liveness_slots;
  cfg_.failback = failback;
  cfg_.min_dwell_slots = min_dwell_slots < 0 ? 0 : min_dwell_slots;
  cfg_.failback_confirm_slots =
      failback_confirm_slots < 1 ? 1 : failback_confirm_slots;
}

bool FailoverMiddlebox::force_active(int port) {
  if (port != kPrimary && port != kStandby) return false;
  if (port == active_) return false;
  active_ = port;
  ++failovers_;
  last_switch_slot_ = current_slot_;
  return true;
}

void FailoverMiddlebox::save_state(state::StateWriter& w) const {
  w.i32(active_);
  for (std::int64_t s : last_seen_slot_) w.i64(s);
  w.i64(failovers_);
  w.i64(current_slot_);
  w.i64(last_switch_slot_);
  w.i64(primary_fresh_since_);
}

void FailoverMiddlebox::load_state(state::StateReader& r) {
  int active = r.i32();
  if (active < kPrimary || active > kStandby) {
    r.fail(state::StateError::kBadValue);
    return;
  }
  active_ = active;
  for (std::int64_t& s : last_seen_slot_) s = r.i64();
  failovers_ = r.i64();
  current_slot_ = r.i64();
  last_switch_slot_ = r.i64();
  primary_fresh_since_ = r.i64();
}

}  // namespace rb
