#include "mb/failover.h"

#include <sstream>

namespace rb {

void FailoverMiddlebox::on_frame(int in_port, PacketPtr p, FhFrame& frame,
                                 MbContext& ctx) {
  (void)frame;
  if (in_port == kSouth) {
    // Uplink: steer to whichever DU is currently active (A1).
    const MacAddr dst =
        active_ == kPrimary ? cfg_.primary_du_mac : cfg_.standby_du_mac;
    ctx.forward(std::move(p), active_, dst);
    return;
  }
  last_seen_slot_[in_port] = current_slot_;
  if (in_port != active_) {
    // Inactive DU's downlink is suppressed so the RU sees exactly one
    // master (the standby keeps "transmitting" into the void).
    ctx.telemetry().inc("failover_suppressed");
    ctx.drop(std::move(p));
    return;
  }
  ctx.forward(std::move(p), kSouth, cfg_.ru_mac);
}

void FailoverMiddlebox::on_slot(std::int64_t slot, MbContext& ctx) {
  current_slot_ = slot;
  const std::int64_t seen = last_seen_slot_[active_];
  if (seen >= 0 && slot - seen > cfg_.liveness_slots) {
    // Heartbeat lost on the active side: switch over.
    const int dead = active_;
    active_ = active_ == kPrimary ? kStandby : kPrimary;
    // Only count it as a failover if the new side is actually alive.
    if (last_seen_slot_[active_] >= 0 &&
        slot - last_seen_slot_[active_] <= cfg_.liveness_slots) {
      ++failovers_;
      ctx.telemetry().inc("failover_switchovers");
      ctx.telemetry().set_gauge("failover_active", active_);
    } else {
      active_ = dead;  // nobody alive; stay put
    }
  } else if (cfg_.failback && active_ == kStandby &&
             last_seen_slot_[kPrimary] >= 0 &&
             slot - last_seen_slot_[kPrimary] <= 1) {
    // Primary is healthy again.
    active_ = kPrimary;
    ctx.telemetry().inc("failover_failbacks");
    ctx.telemetry().set_gauge("failover_active", active_);
  }
}

std::string FailoverMiddlebox::on_mgmt(const std::string& cmd) {
  std::istringstream is(cmd);
  std::string verb;
  is >> verb;
  if (verb == "active")
    return active_ == kPrimary ? "primary" : "standby";
  if (verb == "switch") {
    active_ = active_ == kPrimary ? kStandby : kPrimary;
    return "ok";
  }
  return "unknown command";
}

}  // namespace rb
