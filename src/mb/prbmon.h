// Real-time PRB utilization monitor (paper section 4.4, Algorithm 1).
//
// A transparent bump-in-the-wire middlebox: every frame is forwarded
// unmodified; for U-plane frames it reads the per-PRB BFP compression
// exponent (no decompression) and marks a PRB utilized when the exponent
// exceeds a direction-specific threshold (0 downlink, 2 uplink - the
// values the paper found across its stacks). Per-slot utilization is
// published on the telemetry interface at sub-millisecond granularity.
#pragma once

#include <deque>

#include "core/middlebox.h"

namespace rb {

struct PrbMonConfig {
  int n_prb = 273;
  std::uint8_t thr_dl = 0;  // utilized iff exponent > thr
  std::uint8_t thr_ul = 2;
};

/// One slot's utilization estimate.
struct PrbUtilEstimate {
  std::int64_t slot = 0;
  double dl_util = 0.0;  // mean utilized fraction over DL symbols seen
  double ul_util = 0.0;
  int dl_symbols = 0;
  int ul_symbols = 0;
};

class PrbMonitorMiddlebox final : public MiddleboxApp {
 public:
  /// Port convention: 0 = north (DU side), 1 = south (RU side).
  static constexpr int kNorth = 0;
  static constexpr int kSouth = 1;

  explicit PrbMonitorMiddlebox(PrbMonConfig cfg) : cfg_(cfg) {}

  std::string name() const override { return "prbmon"; }
  void on_frame(int in_port, PacketPtr p, FhFrame& frame,
                MbContext& ctx) override;
  void on_slot(std::int64_t slot, MbContext& ctx) override;
  /// Exponent scanning runs in the kernel XDP program (Table 1).
  ProcessingLocus locus(const FhFrame&) const override {
    return ProcessingLocus::Kernel;
  }
  std::string on_mgmt(const std::string& cmd) override;

  /// Estimates of completed slots, oldest first (bounded window).
  const std::deque<PrbUtilEstimate>& estimates() const { return estimates_; }
  void clear_estimates() { estimates_.clear(); }

  /// Checkpoint the in-progress slot accumulators and estimate window.
  void save_state(state::StateWriter& w) const override;
  void load_state(state::StateReader& r) override;

 private:
  PrbMonConfig cfg_;
  PrbUtilEstimate current_{};
  // Interned gauge handles (lazy: the owning Telemetry arrives via ctx).
  bool gauges_ready_ = false;
  Telemetry::GaugeId g_util_dl_ = 0, g_util_ul_ = 0;
  double dl_prb_acc_ = 0, ul_prb_acc_ = 0;
  std::deque<PrbUtilEstimate> estimates_;
  static constexpr std::size_t kMaxWindow = 8192;
};

}  // namespace rb
