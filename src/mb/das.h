// Distributed Antenna System middlebox (paper section 4.1, Figure 5a).
//
// Downlink: replicate every C- and U-plane frame from the DU to all DAS
// RUs (actions A1+A2) - the same cell signal radiates everywhere.
// Uplink: cache each RU's U-plane per (symbol, antenna port) (action A3);
// once all RUs delivered, sum their IQ samples element-wise - decompress,
// accumulate, recompress (action A4) - and forward the single combined
// stream to the DU (action A1), dropping the constituents.
//
// Degraded mode: a combine group must never wait forever for a copy that
// was lost on the fronthaul. Each group has a per-symbol deadline - when
// a later arrival is more than `combine_deadline_ns` past the group's
// first copy, or when the pump goes idle (everything that was going to
// arrive this phase has), the group is combined from whatever copies made
// it (das_partial_merges / das_missing_copies). Copies that straggle in
// after their group was flushed, or that carry a stale slot, are dropped
// and counted (das_late_copies). Duplicate copies from the same RU are
// merged once (das_duplicate_copies).
#pragma once

#include <vector>

#include "core/middlebox.h"

namespace rb {

struct DasConfig {
  MacAddr du_mac = MacAddr::du(0);
  std::vector<MacAddr> ru_macs;  // the DAS distribution set
  Scs scs = Scs::kHz30;          // for stale-slot detection on uplink
  /// Per-symbol combine deadline: a group older than this (relative to
  /// the newest uplink arrival) is combined partially. 0 disables the
  /// watermark; the pump-idle flush still bounds every group to its slot
  /// phase.
  std::int64_t combine_deadline_ns = 150000;
};

class DasMiddlebox final : public MiddleboxApp {
 public:
  /// Port convention: index 0 = north (DU side), 1 = south (RU side).
  static constexpr int kNorth = 0;
  static constexpr int kSouth = 1;

  explicit DasMiddlebox(DasConfig cfg)
      : cfg_(std::move(cfg)), active_(cfg_.ru_macs.size(), true) {}

  std::string name() const override { return "das"; }
  void on_frame(int in_port, PacketPtr p, FhFrame& frame,
                MbContext& ctx) override;
  /// DAS does IQ (de)compression: userspace under the XDP split (Table 1).
  ProcessingLocus locus(const FhFrame&) const override {
    return ProcessingLocus::Userspace;
  }
  std::string on_mgmt(const std::string& cmd) override;
  void on_slot(std::int64_t slot, MbContext& ctx) override;
  void on_pump_idle(std::int64_t slot, MbContext& ctx) override;

  const DasConfig& config() const { return cfg_; }

  /// Adaptation-controller actuation: shrink/grow the uplink combine set.
  /// An inactive member keeps receiving downlink (its floor keeps DL
  /// coverage and the link stays observable for recovery), but its uplink
  /// copies are no longer waited for or merged - a member whose copies
  /// arrive past the DU latency budget would otherwise make every merged
  /// uplink late. Refuses to deactivate the last active member.
  bool set_member_active(const MacAddr& mac, bool active);
  bool member_active(const MacAddr& mac) const;
  std::size_t active_members() const;

  /// Checkpoint combine-set membership and open/flushed combine groups
  /// (packets of open groups live in the runtime's PacketCache).
  void save_state(state::StateWriter& w) const override;
  void load_state(state::StateReader& r) override;

 private:
  /// An uplink combine group awaiting more RU copies.
  struct Pending {
    std::uint64_t key = 0;
    std::int64_t first_rx_ns = 0;
  };

  void downlink(PacketPtr p, FhFrame& frame, MbContext& ctx);
  void uplink(PacketPtr p, FhFrame& frame, MbContext& ctx);
  /// Combine whatever copies a group has (dedup by RU) and forward the
  /// sum north; counts full vs partial merges.
  void combine_group(std::uint64_t key, MbContext& ctx);
  bool group_done(std::uint64_t key) const;

  DasConfig cfg_;
  std::vector<bool> active_;         // combine-set membership per ru_macs[i]
  std::vector<Pending> pending_;     // open groups, oldest first
  std::vector<std::uint64_t> done_;  // groups already flushed this slot
};

}  // namespace rb
