// Distributed Antenna System middlebox (paper section 4.1, Figure 5a).
//
// Downlink: replicate every C- and U-plane frame from the DU to all DAS
// RUs (actions A1+A2) - the same cell signal radiates everywhere.
// Uplink: cache each RU's U-plane per (symbol, antenna port) (action A3);
// once all RUs delivered, sum their IQ samples element-wise - decompress,
// accumulate, recompress (action A4) - and forward the single combined
// stream to the DU (action A1), dropping the constituents.
#pragma once

#include <vector>

#include "core/middlebox.h"

namespace rb {

struct DasConfig {
  MacAddr du_mac = MacAddr::du(0);
  std::vector<MacAddr> ru_macs;  // the DAS distribution set
};

class DasMiddlebox final : public MiddleboxApp {
 public:
  /// Port convention: index 0 = north (DU side), 1 = south (RU side).
  static constexpr int kNorth = 0;
  static constexpr int kSouth = 1;

  explicit DasMiddlebox(DasConfig cfg) : cfg_(std::move(cfg)) {}

  std::string name() const override { return "das"; }
  void on_frame(int in_port, PacketPtr p, FhFrame& frame,
                MbContext& ctx) override;
  /// DAS does IQ (de)compression: userspace under the XDP split (Table 1).
  ProcessingLocus locus(const FhFrame&) const override {
    return ProcessingLocus::Userspace;
  }
  std::string on_mgmt(const std::string& cmd) override;

  const DasConfig& config() const { return cfg_; }

 private:
  void downlink(PacketPtr p, FhFrame& frame, MbContext& ctx);
  void uplink(PacketPtr p, FhFrame& frame, MbContext& ctx);

  DasConfig cfg_;
};

}  // namespace rb
