#include "mb/das.h"

#include <sstream>

namespace rb {

void DasMiddlebox::on_frame(int in_port, PacketPtr p, FhFrame& frame,
                            MbContext& ctx) {
  if (in_port == kNorth) {
    downlink(std::move(p), frame, ctx);
  } else {
    uplink(std::move(p), frame, ctx);
  }
}

void DasMiddlebox::downlink(PacketPtr p, FhFrame& frame, MbContext& ctx) {
  // Replicate to every RU of the distribution set (A2), steering each copy
  // by rewriting the destination MAC (A1). The original carries the last.
  for (std::size_t i = 0; i + 1 < cfg_.ru_macs.size(); ++i) {
    PacketPtr copy = ctx.replicate(*p);
    if (!copy) continue;
    ctx.forward(std::move(copy), kSouth, cfg_.ru_macs[i]);
  }
  if (!cfg_.ru_macs.empty()) {
    ctx.forward(std::move(p), kSouth, cfg_.ru_macs.back());
  } else {
    ctx.drop(std::move(p));
  }
  (void)frame;
}

void DasMiddlebox::uplink(PacketPtr p, FhFrame& frame, MbContext& ctx) {
  if (!frame.is_uplane()) {
    // RUs only originate U-plane; anything else goes to the DU untouched.
    ctx.forward(std::move(p), kNorth, cfg_.du_mac);
    return;
  }
  const auto& u = frame.uplane();
  // PRACH streams are forwarded per-RU; the DU's detector is idempotent
  // and benefits from every RU's capture.
  if (frame.ecpri.eaxc.du_port != 0) {
    ctx.forward(std::move(p), kNorth, cfg_.du_mac);
    return;
  }

  // Cache until all RUs delivered this (symbol, antenna port) fragment
  // (A3). Fragmented jumbo payloads split deterministically, so the first
  // section's start PRB identifies matching fragments across RUs; the
  // distinct source-MAC count tells when every RU's copy arrived.
  const std::uint8_t frag_tag =
      u.sections.empty() ? 0 : std::uint8_t(u.sections[0].start_prb & 0xff);
  const std::uint64_t key =
      PacketCache::key(u.at, frame.ecpri.eaxc, /*cplane=*/false, frag_tag);
  ctx.charge_cache_op();
  ctx.cache().put(key, CachedPacket{std::move(p), frame, kSouth});
  auto* entries = ctx.cache().find(key);
  if (!entries) return;
  std::size_t distinct_rus = 0;
  for (const auto& m : cfg_.ru_macs) {
    for (const auto& e : *entries) {
      if (e.frame.eth.src == m) {
        ++distinct_rus;
        break;
      }
    }
  }
  if (distinct_rus < cfg_.ru_macs.size()) return;

  // All constituents arrived: element-wise IQ sum per section (A4).
  auto batch = ctx.cache().take(key);
  ctx.charge_cache_op();
  CachedPacket& primary = batch.front();
  const auto& psec = primary.frame.uplane().sections;
  bool ok = !batch.empty();
  for (std::size_t si = 0; ok && si < psec.size(); ++si) {
    std::vector<std::span<const std::uint8_t>> srcs;
    srcs.reserve(batch.size());
    for (auto& e : batch) {
      const auto& esec = e.frame.uplane().sections;
      if (si >= esec.size() ||
          esec[si].num_prb != psec[si].num_prb ||
          esec[si].start_prb != psec[si].start_prb) {
        ok = false;
        break;
      }
      srcs.push_back(e.pkt->data().subspan(esec[si].payload_offset,
                                           esec[si].payload_len));
    }
    if (!ok) break;
    // Merge into the primary packet's payload in place: same geometry,
    // same compression config, so the byte length is unchanged.
    auto dst = primary.pkt->raw().subspan(psec[si].payload_offset,
                                          psec[si].payload_len);
    const std::size_t written = ctx.merge_payloads(
        std::span<const std::span<const std::uint8_t>>(srcs.data(),
                                                       srcs.size()),
        psec[si].num_prb, psec[si].comp, dst);
    ok = written == psec[si].payload_len;
  }
  if (!ok) {
    ctx.telemetry().inc("das_merge_failures");
    for (auto& e : batch) ctx.drop(std::move(e.pkt));
    return;
  }
  ctx.telemetry().inc("das_merges");
  ctx.forward(std::move(primary.pkt), kNorth, cfg_.du_mac);
  for (std::size_t i = 1; i < batch.size(); ++i)
    ctx.drop(std::move(batch[i].pkt));  // A1 drop of the constituents
}

std::string DasMiddlebox::on_mgmt(const std::string& cmd) {
  std::istringstream is(cmd);
  std::string verb;
  is >> verb;
  if (verb == "rus") {
    std::ostringstream os;
    for (const auto& m : cfg_.ru_macs) os << m.str() << "\n";
    return os.str();
  }
  if (verb == "add-ru") {
    std::string mac;
    is >> mac;
    cfg_.ru_macs.push_back(MacAddr::parse(mac));
    return "ok";
  }
  return "unknown command";
}

}  // namespace rb
