#include "mb/das.h"

#include <algorithm>
#include <sstream>

#include "common/iq_stats.h"
#include "obs/obs.h"

namespace rb {

namespace {
/// Absolute slot index (mod the 256-frame wrap) of a radio time point.
std::int64_t abs_slot(const SlotPoint& at, int spsf) {
  return (std::int64_t(at.frame) * 10 + at.subframe) * spsf + at.slot;
}
}  // namespace

void DasMiddlebox::on_frame(int in_port, PacketPtr p, FhFrame& frame,
                            MbContext& ctx) {
  if (in_port == kNorth) {
    downlink(std::move(p), frame, ctx);
  } else {
    uplink(std::move(p), frame, ctx);
  }
}

void DasMiddlebox::downlink(PacketPtr p, FhFrame& frame, MbContext& ctx) {
  // Replicate to every RU of the distribution set (A2), steering each copy
  // by rewriting the destination MAC (A1). The original carries the last.
  for (std::size_t i = 0; i + 1 < cfg_.ru_macs.size(); ++i) {
    PacketPtr copy = ctx.replicate(*p);
    if (!copy) continue;
    ctx.forward(std::move(copy), kSouth, cfg_.ru_macs[i]);
  }
  if (!cfg_.ru_macs.empty()) {
    ctx.forward(std::move(p), kSouth, cfg_.ru_macs.back());
  } else {
    ctx.drop(std::move(p));
  }
  (void)frame;
}

bool DasMiddlebox::group_done(std::uint64_t key) const {
  return std::find(done_.begin(), done_.end(), key) != done_.end();
}

void DasMiddlebox::uplink(PacketPtr p, FhFrame& frame, MbContext& ctx) {
  if (!frame.is_uplane()) {
    // RUs only originate U-plane; anything else goes to the DU untouched.
    ctx.forward(std::move(p), kNorth, cfg_.du_mac);
    return;
  }
  const auto& u = frame.uplane();
  const FrameInfo* fi = ctx.frame_info();  // burst classify-table row
  // PRACH streams are forwarded per-RU; the DU's detector is idempotent
  // and benefits from every RU's capture.
  if (fi ? fi->prach : frame.ecpri.eaxc.du_port != 0) {
    ctx.forward(std::move(p), kNorth, cfg_.du_mac);
    return;
  }

  // A copy carrying a radio time other than the current slot straggled in
  // after its group's slot ended (reorder hold across the boundary, or a
  // severely delayed release); its group was already flushed.
  const int spsf = slots_per_subframe(cfg_.scs);
  const std::int64_t wrap = 256LL * 10 * spsf;
  if (abs_slot(u.at, spsf) != ctx.slot() % wrap) {
    ctx.telemetry().inc("das_late_copies");
    ctx.drop(std::move(p));
    return;
  }

  // Cache until all RUs delivered this (symbol, antenna port) fragment
  // (A3). Fragmented jumbo payloads split deterministically, so the first
  // section's start PRB identifies matching fragments across RUs; the
  // distinct source-MAC count tells when every RU's copy arrived. The
  // burst classify table precomputed this exact key.
  const std::uint64_t key =
      fi ? fi->cache_key
         : PacketCache::key(
               u.at, frame.ecpri.eaxc, /*cplane=*/false,
               u.sections.empty()
                   ? 0
                   : std::uint8_t(u.sections[0].start_prb & 0xff));
  if (group_done(key)) {
    // The group was combined without this copy: too late to contribute.
    ctx.telemetry().inc("das_late_copies");
    ctx.drop(std::move(p));
    return;
  }

  // Per-symbol deadline: any open group whose first copy is older than
  // the deadline relative to this arrival will not complete in time -
  // combine what it has. Oldest first; stop at the first fresh group.
  if (cfg_.combine_deadline_ns > 0) {
    while (!pending_.empty() &&
           pending_.front().first_rx_ns + cfg_.combine_deadline_ns <
               p->rx_time_ns) {
      combine_group(pending_.front().key, ctx);
    }
  }

  ctx.charge_cache_op();
  const std::int64_t rx_ns = p->rx_time_ns;
  ctx.cache().put(key, CachedPacket{std::move(p), frame, kSouth});
  auto* entries = ctx.cache().find(key);
  if (!entries) return;  // evicted under cap pressure
  if (entries->size() == 1) pending_.push_back({key, rx_ns});
  // Completion is judged against the *active* combine set: an ejected
  // member's copy is cached (and later dropped at combine as a
  // non-member) but never holds the group open.
  std::size_t distinct_rus = 0;
  for (std::size_t i = 0; i < cfg_.ru_macs.size(); ++i) {
    if (!active_[i]) continue;
    for (const auto& e : *entries) {
      if (e.frame.eth.src == cfg_.ru_macs[i]) {
        ++distinct_rus;
        break;
      }
    }
  }
  if (distinct_rus < active_members()) return;
  combine_group(key, ctx);
}

std::size_t DasMiddlebox::active_members() const {
  std::size_t n = 0;
  for (bool a : active_)
    if (a) ++n;
  return n;
}

bool DasMiddlebox::member_active(const MacAddr& mac) const {
  for (std::size_t i = 0; i < cfg_.ru_macs.size(); ++i)
    if (cfg_.ru_macs[i] == mac) return active_[i];
  return false;
}

bool DasMiddlebox::set_member_active(const MacAddr& mac, bool active) {
  for (std::size_t i = 0; i < cfg_.ru_macs.size(); ++i) {
    if (!(cfg_.ru_macs[i] == mac)) continue;
    if (active_[i] == active) return true;
    if (!active && active_members() <= 1) return false;  // keep one alive
    active_[i] = active;
    return true;
  }
  return false;
}

void DasMiddlebox::combine_group(std::uint64_t key, MbContext& ctx) {
  static const std::uint16_t kSpanName =
      obs::Collector::instance().intern_name("das.combine");
  const double c0 = ctx.cost_ns();
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->key == key) {
      pending_.erase(it);
      break;
    }
  }
  done_.push_back(key);
  // The worker scratch arena replaces per-group vector allocations: after
  // warm-up, taking the batch, deduping copies and collecting source
  // spans all reuse capacity held by the arena.
  MbScratch& sc = ctx.scratch();
  auto& batch = sc.batch;
  ctx.cache().take_into(key, batch);
  ctx.charge_cache_op();
  if (batch.empty()) return;
  iqstats::raise_hwm(iqstats::arena_batch_hwm(), batch.size());

  // Element-wise IQ sum per section (A4), one copy per distinct RU: a
  // duplicated fronthaul frame must not double that RU's signal.
  auto& copies = sc.copies;
  copies.clear();
  for (std::size_t i = 0; i < cfg_.ru_macs.size(); ++i) {
    if (!active_[i]) continue;  // ejected member: its copy is discarded
    for (auto& e : batch) {
      if (e.frame.eth.src == cfg_.ru_macs[i]) {
        copies.push_back(&e);
        break;
      }
    }
  }
  iqstats::raise_hwm(iqstats::arena_copies_hwm(), copies.size());
  if (batch.size() > copies.size())
    ctx.telemetry().inc("das_duplicate_copies",
                        std::uint64_t(batch.size() - copies.size()));
  if (copies.empty()) {
    // Copies from unknown sources only; nothing trustworthy to combine.
    ctx.telemetry().inc("das_merge_failures");
    for (auto& e : batch) ctx.drop(std::move(e.pkt));
    return;
  }

  CachedPacket& primary = *copies.front();
  const auto& psec = primary.frame.uplane().sections;
  bool ok = true;
  auto& srcs = sc.srcs;
  auto& src_comps = sc.src_comps;
  for (std::size_t si = 0; ok && si < psec.size(); ++si) {
    srcs.clear();
    src_comps.clear();
    for (auto* e : copies) {
      const auto& esec = e->frame.uplane().sections;
      if (si >= esec.size() ||
          esec[si].num_prb != psec[si].num_prb ||
          esec[si].start_prb != psec[si].start_prb) {
        ok = false;
        break;
      }
      srcs.push_back(
          e->pkt->bytes(esec[si].payload_offset, esec[si].payload_len));
      src_comps.push_back(esec[si].comp);
    }
    if (!ok) break;
    iqstats::raise_hwm(iqstats::arena_srcs_hwm(), srcs.size());
    // Merge into the primary packet's payload in place. Each copy is
    // decoded at its own udCompHdr width (a controller-adapted RU may run
    // fewer mantissa bits than its peers); the sum is recompressed at the
    // primary's width, so the byte length is unchanged.
    auto dst = primary.pkt->raw().subspan(psec[si].payload_offset,
                                          psec[si].payload_len);
    const std::size_t written = ctx.merge_payloads(
        std::span<const std::span<const std::uint8_t>>(srcs.data(),
                                                       srcs.size()),
        std::span<const CompConfig>(src_comps.data(), src_comps.size()),
        psec[si].num_prb, psec[si].comp, dst);
    ok = written == psec[si].payload_len;
  }
  if (!ok) {
    ctx.telemetry().inc("das_merge_failures");
    for (auto& e : batch) ctx.drop(std::move(e.pkt));
    return;
  }
  const std::size_t expected = active_members();
  if (copies.size() < expected) {
    ctx.telemetry().inc("das_partial_merges");
    ctx.telemetry().inc("das_missing_copies",
                        std::uint64_t(expected - copies.size()));
  } else {
    ctx.telemetry().inc("das_merges");
  }
  ctx.forward(std::move(primary.pkt), kNorth, cfg_.du_mac);
  for (auto& e : batch) {
    if (e.pkt) ctx.drop(std::move(e.pkt));  // A1 drop of the constituents
  }
  ctx.trace_span(kSpanName, c0, copies.size());
}

void DasMiddlebox::on_pump_idle(std::int64_t slot, MbContext& ctx) {
  (void)slot;
  // Everything that was going to arrive this phase has: flush every open
  // group rather than letting it rot until the slot boundary.
  while (!pending_.empty()) combine_group(pending_.front().key, ctx);
}

void DasMiddlebox::on_slot(std::int64_t slot, MbContext& ctx) {
  (void)slot;
  // The idle flush empties pending_ before the slot ends; anything left
  // means the combiner stalled on a group (must stay zero).
  if (!pending_.empty())
    ctx.telemetry().inc("das_combiner_stalls", pending_.size());
  pending_.clear();
  done_.clear();
  ctx.telemetry().set_gauge("das_active_members", double(active_members()));
}

std::string DasMiddlebox::on_mgmt(const std::string& cmd) {
  std::istringstream is(cmd);
  std::string verb;
  is >> verb;
  if (verb == "rus") {
    std::ostringstream os;
    for (const auto& m : cfg_.ru_macs) os << m.str() << "\n";
    return os.str();
  }
  if (verb == "members") {
    std::ostringstream os;
    for (std::size_t i = 0; i < cfg_.ru_macs.size(); ++i)
      os << cfg_.ru_macs[i].str() << " "
         << (active_[i] ? "active" : "inactive") << "\n";
    return os.str();
  }
  if (verb == "set-member") {
    std::string mac, state;
    is >> mac >> state;
    if (state != "on" && state != "off") return "usage: set-member <mac> on|off";
    return set_member_active(MacAddr::parse(mac), state == "on") ? "ok"
                                                                 : "refused";
  }
  if (verb == "add-ru") {
    std::string mac;
    is >> mac;
    cfg_.ru_macs.push_back(MacAddr::parse(mac));
    active_.push_back(true);
    return "ok";
  }
  if (verb == "combine") {
    std::ostringstream os;
    os << "deadline_ns=" << cfg_.combine_deadline_ns
       << " pending=" << pending_.size() << " done=" << done_.size() << "\n";
    return os.str();
  }
  if (verb == "set-deadline") {
    std::int64_t ns = 0;
    if (is >> ns) {
      cfg_.combine_deadline_ns = ns;
      return "ok";
    }
    return "usage: set-deadline <ns>";
  }
  return "unknown command";
}


void DasMiddlebox::save_state(state::StateWriter& w) const {
  w.u32(std::uint32_t(active_.size()));
  for (bool a : active_) w.b(a);
  w.u32(std::uint32_t(pending_.size()));
  for (const Pending& p : pending_) {
    w.u64(p.key);
    w.i64(p.first_rx_ns);
  }
  w.u32(std::uint32_t(done_.size()));
  for (std::uint64_t k : done_) w.u64(k);
}

void DasMiddlebox::load_state(state::StateReader& r) {
  if (r.count(1) != active_.size()) {
    r.fail(state::StateError::kMismatch);
    return;
  }
  for (std::size_t i = 0; i < active_.size(); ++i) active_[i] = r.b();
  pending_.assign(r.count(16), Pending{});
  for (Pending& p : pending_) {
    p.key = r.u64();
    p.first_rx_ns = r.i64();
  }
  done_.assign(r.count(8), 0);
  for (std::uint64_t& k : done_) k = r.u64();
}

}  // namespace rb
