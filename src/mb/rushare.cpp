#include "mb/rushare.h"

#include <sstream>

#include "obs/obs.h"

namespace rb {
namespace {

/// Cache-key aux discriminators.
constexpr std::uint8_t kAuxCplaneDl = 0;
constexpr std::uint8_t kAuxCplaneUl = 1;
constexpr std::uint8_t kAuxUplaneDl = 2;
constexpr std::uint8_t kAuxPrach = 3;

}  // namespace

int RuShareMiddlebox::distinct_dus(const std::vector<CachedPacket>& entries) {
  std::uint32_t mask = 0;
  for (const auto& e : entries) mask |= 1u << e.in_port;
  int n = 0;
  for (std::uint32_t m = mask; m; m &= m - 1) ++n;
  return n;
}

namespace {

/// Bitmask of slot symbols a C-plane message schedules.
std::uint16_t cplane_symbol_mask(const CPlaneMsg& c) {
  std::uint16_t mask = 0;
  int n_sym = 1;
  for (const auto& s : c.sections) n_sym = std::max(n_sym, int(s.num_symbol));
  for (int s = 0; s < n_sym && c.at.symbol + s < 16; ++s)
    mask = std::uint16_t(mask | (1u << (c.at.symbol + s)));
  return mask;
}

/// DUs (bitmask over in_port) whose cached C-plane covers `symbol`.
std::uint32_t requesters_for_symbol(const std::vector<CachedPacket>& cplanes,
                                    int symbol) {
  std::uint32_t dus = 0;
  for (const auto& e : cplanes) {
    if (cplane_symbol_mask(e.frame.cplane()) & (1u << symbol))
      dus |= 1u << e.in_port;
  }
  return dus;
}

int popcount32(std::uint32_t m) {
  int n = 0;
  for (; m; m &= m - 1) ++n;
  return n;
}

/// Every section must address PRBs inside `grid`. C-plane num_prb == 0
/// means "whole carrier" (the widening encoding); a zero-PRB U-plane
/// section carries no IQ and is garbage.
bool sections_fit(const FhFrame& frame, int grid) {
  if (frame.is_cplane()) {
    for (const auto& s : frame.cplane().sections) {
      if (s.start_prb >= grid) return false;
      if (s.num_prb != 0 && s.start_prb + s.num_prb > grid) return false;
    }
    return true;
  }
  if (frame.is_uplane()) {
    for (const auto& s : frame.uplane().sections) {
      if (s.num_prb == 0 || s.start_prb + s.num_prb > grid) return false;
    }
    return true;
  }
  return false;
}

}  // namespace

bool RuShareMiddlebox::quarantine(int in_port, const FhFrame& frame,
                                  MbContext& ctx) const {
  // A corrupted frame can still parse cleanly; in a multi-operator box it
  // must never leak into another tenant's slice. Two semantic gates: the
  // source MAC must match the port's owner, and every section must stay
  // inside the owner's PRB grid.
  if (in_port == kSouth) {
    if (frame.eth.src != cfg_.ru_mac) {
      ctx.telemetry().inc("rushare_quarantine_src_mac");
      return true;
    }
    if (!sections_fit(frame, cfg_.ru_n_prb)) {
      ctx.telemetry().inc("rushare_quarantine_geometry");
      return true;
    }
    return false;
  }
  const int du = in_port - 1;
  if (du < 0 || du >= int(cfg_.dus.size())) return false;  // dropped anyway
  const auto& ducfg = cfg_.dus[std::size_t(du)];
  if (frame.eth.src != ducfg.mac) {
    ctx.telemetry().inc("rushare_quarantine_src_mac");
    return true;
  }
  // PRACH (type-3) sections address the RU grid after freq translation and
  // are matched by id, not PRB range; only validate type-1 and U-plane.
  const bool prach =
      frame.is_cplane() && frame.cplane().section_type == SectionType::Type3;
  if (!prach && !sections_fit(frame, ducfg.n_prb)) {
    ctx.telemetry().inc("rushare_quarantine_geometry");
    return true;
  }
  return false;
}

bool RuShareMiddlebox::copy_slice(MbContext& ctx,
                                  std::span<const std::uint8_t> src,
                                  int src_prb, std::span<std::uint8_t> dst,
                                  int dst_prb, int n_prb,
                                  const CompConfig& comp) {
  if (cfg_.shift_sc == 0)
    return ctx.copy_prbs(src, src_prb, dst, dst_prb, n_prb, comp);
  return ctx.copy_prbs_misaligned(src, src_prb, dst, dst_prb, n_prb,
                                  cfg_.shift_sc, comp);
}

void RuShareMiddlebox::on_frame(int in_port, PacketPtr p, FhFrame& frame,
                                MbContext& ctx) {
  // Branch on the burst classify-table row: plane/PRACH/type-3 facts were
  // computed once in the parse pass instead of re-probing the variant.
  const FrameInfo* fi = ctx.frame_info();
  const bool cplane = fi ? fi->cplane : frame.is_cplane();
  const bool prach = fi ? fi->prach : frame.ecpri.eaxc.du_port != 0;
  const bool type3 =
      fi ? fi->type3
         : (cplane && frame.cplane().section_type == SectionType::Type3);
  if (quarantine(in_port, frame, ctx)) {
    ctx.drop(std::move(p));
    return;
  }
  if (in_port == kSouth) {
    if (cplane) {
      ctx.drop(std::move(p));  // the RU never originates C-plane
      return;
    }
    if (prach)
      ru_prach_uplane(std::move(p), frame, ctx);
    else
      ru_uplane(std::move(p), frame, ctx);
    return;
  }
  const int du = in_port - 1;
  if (du < 0 || du >= int(cfg_.dus.size())) {
    ctx.drop(std::move(p));
    return;
  }
  if (cplane) {
    if (type3)
      du_prach_cplane(du, std::move(p), frame, ctx);
    else
      du_cplane(du, std::move(p), frame, ctx);
  } else {
    du_uplane(du, std::move(p), frame, ctx);
  }
}

void RuShareMiddlebox::du_cplane(int du, PacketPtr p, FhFrame& frame,
                                 MbContext& ctx) {
  const auto& c = frame.cplane();
  const std::uint8_t aux =
      c.direction == Direction::Downlink ? kAuxCplaneDl : kAuxCplaneUl;
  const std::uint64_t k =
      PacketCache::slot_key(c.at, frame.ecpri.eaxc, true, aux);
  // Algorithm 2 line 4: only the first request per symbol range goes to
  // the RU (widened); later requests for already-covered symbols are
  // absorbed. A request covering new symbols (e.g. one DU's data slot vs
  // another's SSB-only slot) is forwarded for those symbols.
  std::uint16_t covered = 0;
  for (const auto& e : ctx.cache().peek(k))
    covered |= cplane_symbol_mask(e.frame.cplane());
  const bool first = (cplane_symbol_mask(c) & ~covered) != 0;

  if (first) {
    // Algorithm 2 line 4-6: widen the request to the RU's whole spectrum
    // so any later DU's PRBs are already covered, and steer it to the RU.
    CPlaneMsg widened = c;
    for (auto& s : widened.sections) {
      s.start_prb = 0;
      s.num_prb = std::uint16_t(cfg_.ru_n_prb > 255 ? 0 : cfg_.ru_n_prb);
    }
    PacketPtr out = ctx.alloc_packet();
    if (out) {
      EthHeader eth = frame.eth;
      eth.dst = cfg_.ru_mac;
      const std::size_t len =
          build_cplane_frame(out->raw(), eth, frame.ecpri.eaxc,
                             frame.ecpri.seq_id, widened, ctx.fh());
      if (len > 0) {
        out->set_len(len);
        out->rx_time_ns = p->rx_time_ns;
        ctx.charge(64.0 * widened.sections.size());  // header rewrite work
        ctx.forward(std::move(out), kSouth);
        ctx.telemetry().inc("rushare_cplane_widened");
      }
    }
  }
  // Cache every C-plane (Algorithm 2 line 2) to remember who requested.
  ctx.charge_cache_op();
  ctx.cache().put(k, CachedPacket{std::move(p), frame, du});
}

void RuShareMiddlebox::du_uplane(int du, PacketPtr p, FhFrame& frame,
                                 MbContext& ctx) {
  const auto& u = frame.uplane();
  if (u.direction != Direction::Downlink || u.sections.empty()) {
    ctx.drop(std::move(p));
    return;
  }
  const std::uint64_t uk =
      PacketCache::key(u.at, frame.ecpri.eaxc, false, kAuxUplaneDl);
  ctx.charge_cache_op();
  ctx.cache().put(uk, CachedPacket{std::move(p), frame, du});

  // DUs whose C-plane schedules *this symbol* (Algorithm 2 line 9); mux
  // fires once they all delivered their U-plane for it.
  const std::uint64_t ck =
      PacketCache::slot_key(u.at, frame.ecpri.eaxc, true, kAuxCplaneDl);
  const std::uint32_t requesters =
      requesters_for_symbol(ctx.cache().peek(ck), u.at.symbol);
  auto* entries = ctx.cache().find(uk);
  if (!entries || requesters == 0 ||
      distinct_dus(*entries) < popcount32(requesters))
    return;

  // Mux: every DU's sections, remapped into the RU grid at its slice
  // offset. Section geometry is preserved so the RU radiates exactly the
  // scheduled PRBs.
  auto batch = ctx.cache().take(uk);
  ctx.charge_cache_op();
  std::vector<std::vector<std::uint8_t>> payloads;
  std::vector<USectionData> out_secs;
  bool ok = true;
  for (auto& e : batch) {
    const auto& ducfg = cfg_.dus[std::size_t(e.in_port)];
    for (const auto& sec : e.frame.uplane().sections) {
      const std::size_t prb_sz = sec.comp.prb_bytes();
      payloads.emplace_back(
          std::size_t(sec.num_prb + (cfg_.shift_sc ? 1 : 0)) * prb_sz, 0);
      auto& buf = payloads.back();
      ok = ok && copy_slice(ctx,
                            e.pkt->bytes(sec.payload_offset, sec.payload_len),
                            0, buf, 0, sec.num_prb, sec.comp);
      if (!ok) break;
      USectionData os;
      os.section_id = std::uint16_t((e.in_port << 8) | sec.section_id);
      os.start_prb =
          std::uint16_t(ducfg.prb_offset + sec.start_prb);
      os.num_prb = sec.num_prb + (cfg_.shift_sc ? 1 : 0);
      os.payload = buf;
      // The slice keeps the DU's own compression (which may have been
      // adapted away from the south port's default); without the override
      // encode_uplane would size the copy at the egress width.
      os.comp = sec.comp;
      out_secs.push_back(os);
    }
    if (!ok) break;
  }
  if (!ok || out_secs.empty()) {
    ctx.telemetry().inc("rushare_mux_failures");
    for (auto& e : batch) ctx.drop(std::move(e.pkt));
    return;
  }
  UPlaneMsg hdr;
  hdr.direction = Direction::Downlink;
  hdr.at = batch.front().frame.uplane().at;
  PacketPtr out = ctx.alloc_packet();
  if (!out) {
    for (auto& e : batch) ctx.drop(std::move(e.pkt));
    return;
  }
  EthHeader eth = batch.front().frame.eth;
  eth.dst = cfg_.ru_mac;
  const std::size_t len = build_uplane_frame(
      out->raw(), eth, batch.front().frame.ecpri.eaxc,
      batch.front().frame.ecpri.seq_id, hdr,
      std::span(out_secs.data(), out_secs.size()), ctx.fh());
  if (len == 0) {
    ctx.telemetry().inc("rushare_mux_failures");
  } else {
    out->set_len(len);
    out->rx_time_ns = batch.front().pkt->rx_time_ns;
    ctx.forward(std::move(out), kSouth);
    ctx.telemetry().inc("rushare_dl_muxed");
  }
  for (auto& e : batch) ctx.drop(std::move(e.pkt));  // Algorithm 2 line 15
}

void RuShareMiddlebox::ru_uplane(PacketPtr p, FhFrame& frame, MbContext& ctx) {
  const auto& u = frame.uplane();
  if (u.sections.empty()) {
    ctx.drop(std::move(p));
    return;
  }
  const auto& sec = u.sections[0];
  // Demultiplex per requesting DU (Algorithm 2 lines 16-23).
  const std::uint64_t ck =
      PacketCache::slot_key(u.at, frame.ecpri.eaxc, true, kAuxCplaneUl);
  const auto& requests = ctx.cache().peek(ck);
  if (requests.empty()) {
    ctx.telemetry().inc("rushare_ul_orphans");
    ctx.drop(std::move(p));
    return;
  }
  std::uint32_t served = 0;
  for (const auto& req : requests) {
    if (served & (1u << req.in_port)) continue;
    served |= 1u << req.in_port;
    const auto& ducfg = cfg_.dus[std::size_t(req.in_port)];
    // The RU answered with its whole grid; carve this DU's slice.
    if (ducfg.prb_offset < sec.start_prb ||
        ducfg.prb_offset + ducfg.n_prb > sec.start_prb + sec.num_prb) {
      ctx.telemetry().inc("rushare_ul_slice_oob");
      continue;
    }
    const CompConfig comp = sec.comp;
    const std::size_t prb_sz = comp.prb_bytes();
    std::vector<std::uint8_t> payload(std::size_t(ducfg.n_prb) * prb_sz);
    if (!copy_slice(ctx,
                    p->bytes(sec.payload_offset, sec.payload_len),
                    ducfg.prb_offset - sec.start_prb, payload, 0, ducfg.n_prb,
                    comp)) {
      ctx.telemetry().inc("rushare_demux_failures");
      continue;
    }
    UPlaneMsg hdr;
    hdr.direction = Direction::Uplink;
    hdr.at = u.at;
    USectionData out_sec;
    out_sec.section_id = 0;
    out_sec.start_prb = 0;
    out_sec.num_prb = ducfg.n_prb;
    out_sec.payload = payload;
    // Demuxed bytes stay in the RU's compression; the north port may be
    // running a different adapted width.
    out_sec.comp = comp;
    PacketPtr out = ctx.alloc_packet();
    if (!out) continue;
    EthHeader eth = frame.eth;
    eth.dst = ducfg.mac;
    const std::size_t len = build_uplane_frame(
        out->raw(), eth, frame.ecpri.eaxc, frame.ecpri.seq_id, hdr,
        std::span(&out_sec, 1), ctx.fh(north_port(req.in_port)));
    if (len == 0) continue;
    out->set_len(len);
    out->rx_time_ns = p->rx_time_ns;
    ctx.forward(std::move(out), north_port(req.in_port));
    ctx.telemetry().inc("rushare_ul_demuxed");
  }
  ctx.drop(std::move(p));
}

void RuShareMiddlebox::du_prach_cplane(int du, PacketPtr p, FhFrame& frame,
                                       MbContext& ctx) {
  const auto& c = frame.cplane();
  const std::uint64_t k =
      PacketCache::slot_key(c.at, frame.ecpri.eaxc, true, kAuxPrach);
  ctx.charge_cache_op();
  ctx.cache().put(k, CachedPacket{std::move(p), frame, du});
  auto* entries = ctx.cache().find(k);
  if (!entries || distinct_dus(*entries) < int(cfg_.dus.size())) return;

  // Algorithm 3: append every DU's sections into one type-3 message with
  // the freqOffset translated into the RU grid and section id == DU id.
  static const std::uint16_t kSpanName =
      obs::Collector::instance().intern_name("rushare.mux");
  const double c0 = ctx.cost_ns();
  CPlaneMsg combined = entries->front().frame.cplane();
  combined.sections.clear();
  std::uint32_t done = 0;
  for (const auto& e : *entries) {
    if (done & (1u << e.in_port)) continue;
    done |= 1u << e.in_port;
    const auto& ducfg = cfg_.dus[std::size_t(e.in_port)];
    for (CSection s : e.frame.cplane().sections) {
      s.section_id = ducfg.du_id;
      s.freq_offset = translate_freq_offset(
          s.freq_offset, ducfg.center_freq, cfg_.ru_center_freq, cfg_.scs);
      combined.sections.push_back(s);
    }
  }
  PacketPtr out = ctx.alloc_packet();
  if (!out) return;
  EthHeader eth = entries->front().frame.eth;
  eth.dst = cfg_.ru_mac;
  const std::size_t len = build_cplane_frame(
      out->raw(), eth, entries->front().frame.ecpri.eaxc,
      entries->front().frame.ecpri.seq_id, combined, ctx.fh());
  if (len == 0) return;
  out->set_len(len);
  out->rx_time_ns = entries->front().pkt->rx_time_ns;
  ctx.charge(64.0 * combined.sections.size());
  ctx.forward(std::move(out), kSouth);
  ctx.trace_span(kSpanName, c0, combined.sections.size());
  ctx.telemetry().inc("rushare_prach_combined");
}

void RuShareMiddlebox::ru_prach_uplane(PacketPtr p, FhFrame& frame,
                                       MbContext& ctx) {
  const auto& u = frame.uplane();
  // Demultiplex sections to their DUs by section id (Algorithm 3).
  for (const auto& sec : u.sections) {
    const ShareDu* target = nullptr;
    for (const auto& d : cfg_.dus)
      if (d.du_id == sec.section_id) target = &d;
    if (!target) {
      ctx.telemetry().inc("rushare_prach_unknown_section");
      continue;
    }
    const std::size_t prb_sz = sec.comp.prb_bytes();
    std::vector<std::uint8_t> payload(std::size_t(sec.num_prb) * prb_sz);
    if (!ctx.copy_prbs(p->bytes(sec.payload_offset, sec.payload_len),
                       0, payload, 0, sec.num_prb, sec.comp))
      continue;
    UPlaneMsg hdr;
    hdr.direction = Direction::Uplink;
    hdr.filter_index = 1;
    hdr.at = u.at;
    USectionData out_sec;
    out_sec.section_id = sec.section_id;
    out_sec.start_prb = sec.start_prb;
    out_sec.num_prb = sec.num_prb;
    out_sec.payload = payload;
    PacketPtr out = ctx.alloc_packet();
    if (!out) continue;
    EthHeader eth = frame.eth;
    eth.dst = target->mac;
    const int du_index = int(target - cfg_.dus.data());
    const std::size_t len = build_uplane_frame(
        out->raw(), eth, frame.ecpri.eaxc, frame.ecpri.seq_id, hdr,
        std::span(&out_sec, 1), ctx.fh(north_port(du_index)));
    if (len == 0) continue;
    out->set_len(len);
    out->rx_time_ns = p->rx_time_ns;
    ctx.forward(std::move(out), north_port(du_index));
    ctx.telemetry().inc("rushare_prach_demuxed");
  }
  ctx.drop(std::move(p));
}

std::string RuShareMiddlebox::on_mgmt(const std::string& cmd) {
  std::istringstream is(cmd);
  std::string verb;
  is >> verb;
  if (verb == "tenants") {
    std::ostringstream os;
    for (const auto& d : cfg_.dus)
      os << "du" << int(d.du_id) << " " << d.mac.str() << " offset "
         << d.prb_offset << " prbs " << d.n_prb << "\n";
    return os.str();
  }
  return "unknown command";
}

}  // namespace rb
