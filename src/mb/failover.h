// RAN resilience middlebox (paper section 8.1, "RAN resilience").
//
// Watches the fronthaul heartbeat of the active DU (every live DU emits
// C-plane at least once per slot window) and, when the inter-packet gap
// exceeds a threshold, re-routes the RU's traffic to a standby DU within
// a few slots - without touching RU or DU software, in the spirit of
// Atlas/Slingshot but realized purely as a fronthaul middlebox.
//
// Actions used: A1 (redirect/drop - steering between DUs) plus passive
// inspection to derive liveness. The standby DU is assumed warm (running
// the same cell configuration, state replication out of scope).
#pragma once

#include "core/middlebox.h"

namespace rb {

struct FailoverConfig {
  MacAddr ru_mac{};
  MacAddr primary_du_mac{};
  MacAddr standby_du_mac{};
  /// Declare the active DU dead after this many slots without traffic.
  int liveness_slots = 3;
  /// Automatically return to the primary once it emits again.
  bool failback = true;
  /// Hysteresis against a flapping primary. A switch (either direction)
  /// is suppressed until `min_dwell_slots` have passed since the last
  /// one, and a failback additionally requires the primary to have been
  /// continuously healthy for `failback_confirm_slots`. The defaults
  /// (0 dwell, 1-slot confirmation) preserve the original
  /// single-failure behaviour: one fresh primary frame fails back.
  int min_dwell_slots = 0;
  int failback_confirm_slots = 1;
};

class FailoverMiddlebox final : public MiddleboxApp {
 public:
  /// Port convention: 0 = south (RU), 1 = primary DU, 2 = standby DU.
  static constexpr int kSouth = 0;
  static constexpr int kPrimary = 1;
  static constexpr int kStandby = 2;

  explicit FailoverMiddlebox(FailoverConfig cfg) : cfg_(std::move(cfg)) {}

  std::string name() const override { return "failover"; }
  void on_frame(int in_port, PacketPtr p, FhFrame& frame,
                MbContext& ctx) override;
  void on_slot(std::int64_t slot, MbContext& ctx) override;
  ProcessingLocus locus(const FhFrame&) const override {
    return ProcessingLocus::Kernel;  // pure steering
  }
  std::string on_mgmt(const std::string& cmd) override;

  int active_port() const { return active_; }
  std::int64_t failovers() const { return failovers_; }

  /// Checkpoint heartbeat watermarks and switchover hysteresis state.
  void save_state(state::StateWriter& w) const override;
  void load_state(state::StateReader& r) override;

  /// Live reconfiguration (applied at the slot barrier by the reconfig
  /// manager): retune the hysteresis policy. MACs and wiring are
  /// structural and kept.
  void retune(int liveness_slots, bool failback, int min_dwell_slots,
              int failback_confirm_slots);
  /// Operator-initiated target swap: steer traffic to the given DU port
  /// (kPrimary or kStandby) now. Starts the dwell timer so the automatic
  /// loop does not immediately bounce back. Returns false for an invalid
  /// port or a no-op swap.
  bool force_active(int port);

  const FailoverConfig& config() const { return cfg_; }

 private:
  FailoverConfig cfg_;
  int active_ = kPrimary;
  std::int64_t last_seen_slot_[3] = {-1, -1, -1};
  std::int64_t failovers_ = 0;
  std::int64_t current_slot_ = 0;
  std::int64_t last_switch_slot_ = -1;
  /// First slot of the primary's current uninterrupted healthy streak
  /// (-1 while it is stale).
  std::int64_t primary_fresh_since_ = -1;
  // Interned gauge handles (lazy: the owning Telemetry arrives via ctx).
  bool gauges_ready_ = false;
  Telemetry::GaugeId g_active_ = 0;
  // Hysteresis state published every slot so the switchover logic is
  // externally observable (Prometheus via the mgmt "prom" verb).
  Telemetry::GaugeId g_last_switch_ = 0;
  Telemetry::GaugeId g_fresh_streak_ = 0;
  Telemetry::GaugeId g_dwell_remaining_ = 0;
};

}  // namespace rb
