// RU sharing middlebox (paper section 4.3, Appendix A.1, Algorithms 2+3).
//
// Lets several DUs (different operators) drive one RU. Downlink: C-plane
// requests are widened to the RU's whole spectrum (first request wins,
// A4), U-plane payloads of all requesting DUs are cached (A3) and muxed
// into one RU-grid packet, copying each DU's PRBs to its spectrum slice
// (A4, aligned or misaligned per Figure 6). Uplink: the RU's whole-grid
// U-plane is replicated per requesting DU (A2) and each replica carries
// only that DU's slice (A4). PRACH control/occasion frames are combined
// and demultiplexed by section id == DU id, with the Appendix A.1.2
// freqOffset translation between the DU and RU grids.
#pragma once

#include <vector>

#include "core/middlebox.h"

namespace rb {

struct ShareDu {
  MacAddr mac{};
  std::uint8_t du_id = 0;
  int prb_offset = 0;   // where the DU's PRB 0 sits in the RU grid
  int n_prb = 106;      // the DU's carrier size
  Hertz center_freq = 0;
};

struct RuShareConfig {
  std::vector<ShareDu> dus;
  MacAddr ru_mac = MacAddr::ru(0);
  int ru_n_prb = 273;
  Hertz ru_center_freq = GHz(3) + MHz(460);
  Scs scs = Scs::kHz30;
  /// Sub-carrier misalignment between DU and RU grids. 0 = aligned (the
  /// Appendix A.1.1 optimization); 1..11 forces the decompress-shift-
  /// recompress path.
  int shift_sc = 0;
};

class RuShareMiddlebox final : public MiddleboxApp {
 public:
  /// Port convention: 0 = south (RU); 1 + i = north of DU i.
  static constexpr int kSouth = 0;
  static int north_port(int du_index) { return 1 + du_index; }

  explicit RuShareMiddlebox(RuShareConfig cfg) : cfg_(std::move(cfg)) {}

  std::string name() const override { return "rushare"; }
  void on_frame(int in_port, PacketPtr p, FhFrame& frame,
                MbContext& ctx) override;
  ProcessingLocus locus(const FhFrame&) const override {
    return ProcessingLocus::Userspace;  // Table 1
  }
  std::string on_mgmt(const std::string& cmd) override;

  const RuShareConfig& config() const { return cfg_; }

 private:
  /// Semantic validation of a parsed frame: source MAC must match the
  /// port's owner and all sections must stay inside the owner's PRB grid,
  /// so a corrupted-but-parseable frame never leaks across tenant slices.
  /// Counts rushare_quarantine_{src_mac,geometry} and returns true when
  /// the frame must be dropped.
  bool quarantine(int in_port, const FhFrame& frame, MbContext& ctx) const;
  void du_cplane(int du, PacketPtr p, FhFrame& frame, MbContext& ctx);
  void du_uplane(int du, PacketPtr p, FhFrame& frame, MbContext& ctx);
  void du_prach_cplane(int du, PacketPtr p, FhFrame& frame, MbContext& ctx);
  void ru_uplane(PacketPtr p, FhFrame& frame, MbContext& ctx);
  void ru_prach_uplane(PacketPtr p, FhFrame& frame, MbContext& ctx);

  /// Count the distinct DUs among cached entries.
  static int distinct_dus(const std::vector<CachedPacket>& entries);
  /// Copy one DU's slice between grids (aligned or misaligned).
  bool copy_slice(MbContext& ctx, std::span<const std::uint8_t> src,
                  int src_prb, std::span<std::uint8_t> dst, int dst_prb,
                  int n_prb, const CompConfig& comp);

  RuShareConfig cfg_;
};

}  // namespace rb
