#include "mb/prbmon.h"

#include <sstream>

#include "obs/obs.h"

namespace rb {

void PrbMonitorMiddlebox::on_frame(int in_port, PacketPtr p, FhFrame& frame,
                                   MbContext& ctx) {
  // Gate on the burst classify-table row when available: plane, PRACH and
  // antenna-port facts without touching the frame variant.
  const FrameInfo* fi = ctx.frame_info();
  const bool grid_sample =
      fi ? (!fi->cplane && !fi->prach && fi->eaxc.ru_port == 0)
         : (frame.is_uplane() && frame.ecpri.eaxc.du_port == 0 &&
            frame.ecpri.eaxc.ru_port == 0);
  if (grid_sample) {
    // Algorithm 1 over antenna port 0 (one spatial sample of the grid).
    const auto& u = frame.uplane();
    const bool dl = fi ? !fi->uplink : u.direction == Direction::Downlink;
    const std::uint8_t thr = dl ? cfg_.thr_dl : cfg_.thr_ul;
    // PRBs outside any section were never transported: idle by definition.
    // The per-PRB exponent reads are deliberately untraced (hundreds per
    // frame); this one span covers the whole scan instead.
    static const std::uint16_t kScanName =
        obs::Collector::instance().intern_name("prbmon.scan");
    const double c0 = ctx.cost_ns();
    int utilized = 0;
    for (const auto& sec : u.sections) {
      for (int prb = 0; prb < sec.num_prb; ++prb) {
        const std::uint8_t e = ctx.prb_exponent(*p, sec, prb);
        utilized += (e > thr) ? 1 : 0;
      }
    }
    ctx.trace_span(kScanName, c0, std::uint64_t(utilized));
    if (dl) {
      dl_prb_acc_ += double(utilized) / double(cfg_.n_prb);
      ++current_.dl_symbols;
    } else {
      ul_prb_acc_ += double(utilized) / double(cfg_.n_prb);
      ++current_.ul_symbols;
    }
  }
  // Transparent forwarding: north <-> south, addressing untouched.
  ctx.forward(std::move(p), in_port == kNorth ? kSouth : kNorth);
}

void PrbMonitorMiddlebox::on_slot(std::int64_t slot, MbContext& ctx) {
  // Close the previous slot's estimate and publish it.
  if (current_.dl_symbols > 0 || current_.ul_symbols > 0) {
    current_.dl_util =
        current_.dl_symbols ? dl_prb_acc_ / current_.dl_symbols : 0.0;
    current_.ul_util =
        current_.ul_symbols ? ul_prb_acc_ / current_.ul_symbols : 0.0;
    estimates_.push_back(current_);
    while (estimates_.size() > kMaxWindow) estimates_.pop_front();
    ctx.telemetry().publish(
        {current_.slot, "prb_util_dl", current_.dl_util});
    ctx.telemetry().publish(
        {current_.slot, "prb_util_ul", current_.ul_util});
    if (!gauges_ready_) {
      g_util_dl_ = ctx.telemetry().intern_gauge("prb_util_dl");
      g_util_ul_ = ctx.telemetry().intern_gauge("prb_util_ul");
      gauges_ready_ = true;
    }
    ctx.telemetry().set_gauge(g_util_dl_, current_.dl_util);
    ctx.telemetry().set_gauge(g_util_ul_, current_.ul_util);
  }
  current_ = PrbUtilEstimate{};
  current_.slot = slot;
  dl_prb_acc_ = ul_prb_acc_ = 0.0;
}

std::string PrbMonitorMiddlebox::on_mgmt(const std::string& cmd) {
  std::istringstream is(cmd);
  std::string verb;
  is >> verb;
  if (verb == "thresholds") {
    std::ostringstream os;
    os << "thr_dl=" << int(cfg_.thr_dl) << " thr_ul=" << int(cfg_.thr_ul);
    return os.str();
  }
  if (verb == "set-thr") {
    std::string dir;
    int v = 0;
    is >> dir >> v;
    if (dir == "dl") cfg_.thr_dl = std::uint8_t(v);
    else if (dir == "ul") cfg_.thr_ul = std::uint8_t(v);
    else return "unknown direction";
    return "ok";
  }
  return "unknown command";
}


namespace {

void save_estimate(state::StateWriter& w, const PrbUtilEstimate& e) {
  w.i64(e.slot);
  w.f64(e.dl_util);
  w.f64(e.ul_util);
  w.i32(e.dl_symbols);
  w.i32(e.ul_symbols);
}

void load_estimate(state::StateReader& r, PrbUtilEstimate& e) {
  e.slot = r.i64();
  e.dl_util = r.f64();
  e.ul_util = r.f64();
  e.dl_symbols = r.i32();
  e.ul_symbols = r.i32();
}

}  // namespace

void PrbMonitorMiddlebox::save_state(state::StateWriter& w) const {
  save_estimate(w, current_);
  w.f64(dl_prb_acc_);
  w.f64(ul_prb_acc_);
  w.u32(std::uint32_t(estimates_.size()));
  for (const PrbUtilEstimate& e : estimates_) save_estimate(w, e);
}

void PrbMonitorMiddlebox::load_state(state::StateReader& r) {
  load_estimate(r, current_);
  dl_prb_acc_ = r.f64();
  ul_prb_acc_ = r.f64();
  estimates_.clear();
  for (std::uint32_t i = 0, n = r.count(32); i < n && r.ok(); ++i) {
    PrbUtilEstimate e;
    load_estimate(r, e);
    estimates_.push_back(e);
  }
}

}  // namespace rb
