// Distributed MIMO middlebox (paper section 4.2, Figure 5b).
//
// Combines several small commodity RUs into one virtual RU with the sum of
// their antennas. The DU believes it drives a single N-antenna RU; each
// physical RU believes it talks to a DU with exactly its own antenna
// count. Per frame, the middlebox remaps the eAxC antenna-port id (A4)
// and redirects to the owning RU (A1). It also copies the SSB PRBs from
// the primary antenna's U-plane packets into the packets of the other
// RUs' first antennas (A4), so coverage does not collapse to the primary
// RU's neighbourhood.
#pragma once

#include <vector>

#include "core/middlebox.h"

namespace rb {

struct DmimoRu {
  MacAddr mac{};
  int n_antennas = 1;
};

struct DmimoConfig {
  MacAddr du_mac = MacAddr::du(0);
  std::vector<DmimoRu> rus;  // cell layers are assigned in order
  // SSB window of the cell (for the SSB copy) and its occasion timing.
  int ssb_start_prb = 0;
  int ssb_n_prb = 20;
  int ssb_period_slots = 20;
  int ssb_first_symbol = 2;
  int ssb_n_symbols = 4;
  bool copy_ssb = true;  // disable to demonstrate the detach failure mode
  /// Partner-liveness window: an RU whose uplink has been quiet for this
  /// many slots longer than the most recently heard partner is considered
  /// down; its layers are suppressed (single/fewer-RU fallback) until it
  /// speaks again. Relative to the loudest partner so an all-quiet phase
  /// (no UL scheduled anywhere) never trips it; healthy RUs answer PRACH
  /// occasions every ssb_period_slots, so the default covers one period
  /// with margin. <= 0 disables the fallback.
  int ru_quiet_slots = 24;
};

class DmimoMiddlebox final : public MiddleboxApp {
 public:
  static constexpr int kNorth = 0;
  static constexpr int kSouth = 1;

  explicit DmimoMiddlebox(DmimoConfig cfg);

  std::string name() const override { return "dmimo"; }
  void on_frame(int in_port, PacketPtr p, FhFrame& frame,
                MbContext& ctx) override;
  /// Header remaps run in the kernel XDP program (Table 1).
  ProcessingLocus locus(const FhFrame&) const override {
    return ProcessingLocus::Kernel;
  }
  std::string on_mgmt(const std::string& cmd) override;
  void on_slot(std::int64_t slot, MbContext& ctx) override;

  /// Total antennas of the virtual RU.
  int total_antennas() const { return total_antennas_; }
  /// Which RU owns a cell layer, and the local port it maps to.
  struct PortMap {
    int ru_index = -1;
    int local_port = 0;
  };
  PortMap map_layer(int cell_layer) const;

  bool ru_down(int ru_index) const {
    return ru_index >= 0 && ru_index < int(ru_down_.size()) &&
           (ru_down_[std::size_t(ru_index)] ||
            forced_down_[std::size_t(ru_index)]);
  }

  /// Adaptation-controller actuation: force an RU's participation gate
  /// closed (treated exactly like a quiet partner: its IQ is suppressed,
  /// C-plane still flows so the link stays observable for recovery).
  /// Refuses to gate the last open RU. `gated == false` reopens.
  bool set_ru_gated(std::size_t ru_index, bool gated);
  bool ru_gated(std::size_t ru_index) const {
    return ru_index < forced_down_.size() && forced_down_[ru_index];
  }
  /// Config slot of the RU with this MAC, or -1.
  int ru_index_of(const MacAddr& mac) const {
    for (std::size_t i = 0; i < cfg_.rus.size(); ++i)
      if (cfg_.rus[i].mac == mac) return int(i);
    return -1;
  }

  /// Checkpoint quiet-partner probe state and participation gates.
  void save_state(state::StateWriter& w) const override;
  void load_state(state::StateReader& r) override;

 private:
  void downlink(PacketPtr p, FhFrame& frame, MbContext& ctx);
  void uplink(PacketPtr p, FhFrame& frame, MbContext& ctx);
  bool is_ssb_symbol(const SlotPoint& at) const;

  DmimoConfig cfg_;
  int total_antennas_ = 0;
  std::vector<int> layer_base_;  // first cell layer of each RU
  // Partner-liveness fallback state.
  std::vector<std::int64_t> last_ul_slot_;  // -1 = never heard
  std::vector<bool> ru_down_;
  std::vector<bool> forced_down_;  // controller-closed participation gates
  // Interned gauge handle (lazy: the owning Telemetry arrives via ctx).
  bool gauges_ready_ = false;
  Telemetry::GaugeId g_rus_live_ = 0;
};

}  // namespace rb
