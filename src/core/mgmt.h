// Management interface: runtime configuration and stats of a middlebox.
//
// The paper's middleboxes "expose monitoring and management interfaces to
// modify their behavior on-the-fly". This is a text command endpoint; an
// operator (or orchestration) sends "stats", "get <gauge>", or app-defined
// commands which are delegated to MiddleboxApp::on_mgmt.
#pragma once

#include <string>

#include "core/middlebox.h"

namespace rb {

/// Narrow interface the adaptation controller (src/ctrl, a layer above
/// core) implements so the "ctrl" mgmt verb can delegate to it without
/// core linking against ctrl.
class CtrlMgmtHandler {
 public:
  virtual ~CtrlMgmtHandler() = default;
  /// Handle a "ctrl <subcommand>" line (the verb is already stripped).
  virtual std::string ctrl_mgmt(const std::string& cmd) = 0;
};

/// Same pattern for the live-reconfiguration manager (src/sim, two
/// layers above core): the "reconfig" mgmt verb delegates through this.
class ReconfigMgmtHandler {
 public:
  virtual ~ReconfigMgmtHandler() = default;
  /// Handle a "reconfig <subcommand>" line (the verb already stripped).
  virtual std::string reconfig_mgmt(const std::string& cmd) = 0;
};

/// And for the city conductor (src/city, the top layer): the "city" mgmt
/// verb delegates whole-city queries (cell list, slot budgets, cross-shard
/// ring depths) and per-cell verb routing through this.
class CityMgmtHandler {
 public:
  virtual ~CityMgmtHandler() = default;
  /// Handle a "city <subcommand>" line (the verb already stripped).
  virtual std::string city_mgmt(const std::string& cmd) = 0;
};

class MgmtEndpoint {
 public:
  explicit MgmtEndpoint(MiddleboxRuntime& rt) : rt_(&rt) {}

  /// Attach the deployment's adaptation controller (enables "ctrl ...").
  void set_ctrl(CtrlMgmtHandler* ctrl) { ctrl_ = ctrl; }
  /// Attach the deployment's reconfig manager (enables "reconfig ...").
  void set_reconfig(ReconfigMgmtHandler* rc) { reconfig_ = rc; }
  /// Attach the city conductor (enables "city ...").
  void set_city(CityMgmtHandler* city) { city_ = city; }

  /// Handle one command line; returns the response text. Unknown verbs
  /// are forwarded to the app; if the app does not claim them either,
  /// the reply lists every registered verb (see also "help").
  std::string handle(const std::string& cmd);

  /// Space-separated list of the registered core verbs.
  static std::string verb_list();

 private:
  MiddleboxRuntime* rt_;
  CtrlMgmtHandler* ctrl_ = nullptr;
  ReconfigMgmtHandler* reconfig_ = nullptr;
  CityMgmtHandler* city_ = nullptr;
};

}  // namespace rb
