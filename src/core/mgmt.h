// Management interface: runtime configuration and stats of a middlebox.
//
// The paper's middleboxes "expose monitoring and management interfaces to
// modify their behavior on-the-fly". This is a text command endpoint; an
// operator (or orchestration) sends "stats", "get <gauge>", or app-defined
// commands which are delegated to MiddleboxApp::on_mgmt.
#pragma once

#include <string>

#include "core/middlebox.h"

namespace rb {

class MgmtEndpoint {
 public:
  explicit MgmtEndpoint(MiddleboxRuntime& rt) : rt_(&rt) {}

  /// Handle one command line; returns the response text.
  std::string handle(const std::string& cmd);

 private:
  MiddleboxRuntime* rt_;
};

}  // namespace rb
