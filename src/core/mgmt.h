// Management interface: runtime configuration and stats of a middlebox.
//
// The paper's middleboxes "expose monitoring and management interfaces to
// modify their behavior on-the-fly". This is a text command endpoint; an
// operator (or orchestration) sends "stats", "get <gauge>", or app-defined
// commands which are delegated to MiddleboxApp::on_mgmt.
#pragma once

#include <string>

#include "core/middlebox.h"

namespace rb {

/// Narrow interface the adaptation controller (src/ctrl, a layer above
/// core) implements so the "ctrl" mgmt verb can delegate to it without
/// core linking against ctrl.
class CtrlMgmtHandler {
 public:
  virtual ~CtrlMgmtHandler() = default;
  /// Handle a "ctrl <subcommand>" line (the verb is already stripped).
  virtual std::string ctrl_mgmt(const std::string& cmd) = 0;
};

class MgmtEndpoint {
 public:
  explicit MgmtEndpoint(MiddleboxRuntime& rt) : rt_(&rt) {}

  /// Attach the deployment's adaptation controller (enables "ctrl ...").
  void set_ctrl(CtrlMgmtHandler* ctrl) { ctrl_ = ctrl; }

  /// Handle one command line; returns the response text.
  std::string handle(const std::string& cmd);

 private:
  MiddleboxRuntime* rt_;
  CtrlMgmtHandler* ctrl_ = nullptr;
};

}  // namespace rb
