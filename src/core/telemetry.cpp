#include "core/telemetry.h"

#include <sstream>

namespace rb {

std::string Telemetry::dump() const {
  std::ostringstream os;
  for (const auto& [k, v] : counters()) os << k << "=" << v << "\n";
  for (const auto& [k, v] : gauges()) os << k << "=" << v << "\n";
  return os.str();
}

void Telemetry::save_state(state::StateWriter& w) const {
  w.u32(std::uint32_t(names_.size()));
  for (std::size_t i = 0; i < names_.size(); ++i) {
    w.str(names_[i]);
    w.u64(values_[i]);
  }
  w.u32(std::uint32_t(gauge_names_.size()));
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    w.str(gauge_names_[i]);
    w.f64(gauge_values_[i]);
  }
}

void Telemetry::load_state(state::StateReader& r) {
  for (std::uint32_t i = 0, n = r.count(12); i < n && r.ok(); ++i) {
    const std::string name = r.str();
    const std::uint64_t v = r.u64();
    values_[std::size_t(intern(name))] = v;
  }
  for (std::uint32_t i = 0, n = r.count(12); i < n && r.ok(); ++i) {
    const std::string name = r.str();
    const double v = r.f64();
    gauge_values_[std::size_t(intern_gauge(name))] = v;
  }
}

}  // namespace rb
