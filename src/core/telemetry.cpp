#include "core/telemetry.h"

#include <sstream>

namespace rb {

std::string Telemetry::dump() const {
  std::ostringstream os;
  for (const auto& [k, v] : counters()) os << k << "=" << v << "\n";
  for (const auto& [k, v] : gauges()) os << k << "=" << v << "\n";
  return os.str();
}

}  // namespace rb
