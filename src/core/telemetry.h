// Telemetry interface of a RANBooster middlebox.
//
// Every middlebox exposes named counters/gauges plus a streaming sample
// channel that external applications subscribe to (the paper's PRB monitor
// pushes sub-millisecond utilization samples through this).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace rb {

/// One streamed telemetry sample.
struct TelemetrySample {
  std::int64_t slot = 0;
  std::string key;
  double value = 0.0;
};

class Telemetry {
 public:
  void inc(const std::string& name, std::uint64_t v = 1) {
    counters_[name] += v;
  }
  std::uint64_t counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  void set_gauge(const std::string& name, double v) { gauges_[name] = v; }
  double gauge(const std::string& name) const {
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
  }

  /// Publish a streaming sample to all subscribers.
  void publish(const TelemetrySample& s) {
    for (const auto& sub : subscribers_) sub(s);
  }
  void subscribe(std::function<void(const TelemetrySample&)> cb) {
    subscribers_.push_back(std::move(cb));
  }

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }

  /// Render all counters/gauges as "key=value" lines (management dump).
  std::string dump() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::vector<std::function<void(const TelemetrySample&)>> subscribers_;
};

}  // namespace rb
