// Telemetry interface of a RANBooster middlebox.
//
// Every middlebox exposes named counters/gauges plus a streaming sample
// channel that external applications subscribe to (the paper's PRB monitor
// pushes sub-millisecond utilization samples through this).
//
// Counters and gauges are interned: the hot path touches a dense
// CounterId/GaugeId slot (one array op, no string hashing or map walk per
// packet); the string API remains as a thin wrapper for cold paths,
// management and tests.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_flags.h"
#include "state/serialize.h"

namespace rb {

/// One streamed telemetry sample.
struct TelemetrySample {
  std::int64_t slot = 0;
  std::string key;
  double value = 0.0;
};

class Telemetry {
 public:
  /// Dense handle of an interned counter/gauge. Valid for the lifetime
  /// of this Telemetry instance.
  using CounterId = std::uint32_t;
  using GaugeId = std::uint32_t;

  /// Intern a counter name (idempotent): returns its stable handle.
  CounterId intern(const std::string& name) {
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
    const CounterId id = CounterId(values_.size());
    index_.emplace(name, id);
    names_.push_back(name);
    values_.push_back(0);
    return id;
  }

  /// Intern a gauge name (idempotent): returns its stable handle.
  GaugeId intern_gauge(const std::string& name) {
    auto it = gauge_index_.find(name);
    if (it != gauge_index_.end()) return it->second;
    const GaugeId id = GaugeId(gauge_values_.size());
    gauge_index_.emplace(name, id);
    gauge_names_.push_back(name);
    gauge_values_.push_back(0.0);
    return id;
  }

  // --- hot path -------------------------------------------------------
  // Out-of-range ids (a handle from a different Telemetry instance) are
  // a caller bug: asserted in debug builds, a checked no-op/zero in
  // release — inc() and counter() deliberately behave symmetrically.
  void inc(CounterId id, std::uint64_t v = 1) {
    assert(id < values_.size() && "CounterId from another instance?");
    if (id >= values_.size()) return;
    values_[std::size_t(id)] += v;
  }
  std::uint64_t counter(CounterId id) const {
    assert(id < values_.size() && "CounterId from another instance?");
    return id < values_.size() ? values_[std::size_t(id)] : 0;
  }
  void set_gauge(GaugeId id, double v) {
    assert(id < gauge_values_.size() && "GaugeId from another instance?");
    if (id >= gauge_values_.size()) return;
    gauge_values_[std::size_t(id)] = v;
  }
  double gauge(GaugeId id) const {
    assert(id < gauge_values_.size() && "GaugeId from another instance?");
    return id < gauge_values_.size() ? gauge_values_[std::size_t(id)] : 0.0;
  }

  // --- string API (thin wrapper over the interned store) --------------
  void inc(const std::string& name, std::uint64_t v = 1) {
    inc(intern(name), v);
  }
  std::uint64_t counter(const std::string& name) const {
    auto it = index_.find(name);
    return it == index_.end() ? 0 : values_[std::size_t(it->second)];
  }

  void set_gauge(const std::string& name, double v) {
    set_gauge(intern_gauge(name), v);
  }
  double gauge(const std::string& name) const {
    auto it = gauge_index_.find(name);
    return it == gauge_index_.end() ? 0.0
                                    : gauge_values_[std::size_t(it->second)];
  }

  /// Publish a streaming sample to all subscribers. Index-iterated over a
  /// pre-snapshot count so a subscriber that subscribes from inside its
  /// callback neither invalidates the traversal nor receives the sample
  /// being published — it sees subsequent samples only.
  ///
  /// Threading contract: publish() and subscribe() are coordinator-only.
  /// Under ExecPolicy::parallel, middlebox handlers run on pool workers
  /// but never publish from them — apps buffer samples during the slot
  /// and publish from on_slot()/pump hooks, which the engine invokes at
  /// the slot barrier with all workers parked. The callback list is
  /// therefore never touched concurrently and needs no lock.
  void publish(const TelemetrySample& s) {
    assert(!on_exec_worker_thread() &&
           "publish() is coordinator-only; buffer samples until the "
           "slot barrier");
    const std::size_t n = subscribers_.size();
    for (std::size_t i = 0; i < n; ++i) subscribers_[i](s);
  }
  void subscribe(std::function<void(const TelemetrySample&)> cb) {
    assert(!on_exec_worker_thread() &&
           "subscribe() is coordinator-only; register before run or at "
           "the slot barrier");
    subscribers_.push_back(std::move(cb));
  }

  /// Name-sorted snapshot of all counters (management/test view).
  std::map<std::string, std::uint64_t> counters() const {
    std::map<std::string, std::uint64_t> out;
    for (std::size_t i = 0; i < names_.size(); ++i) out[names_[i]] = values_[i];
    return out;
  }
  /// Name-sorted snapshot of all gauges (management/test view).
  std::map<std::string, double> gauges() const {
    std::map<std::string, double> out;
    for (std::size_t i = 0; i < gauge_names_.size(); ++i)
      out[gauge_names_[i]] = gauge_values_[i];
    return out;
  }

  /// Render all counters/gauges as "key=value" lines (management dump).
  std::string dump() const;

  /// Checkpoint every counter/gauge as (name, value) pairs in intern
  /// order — deterministic because interning order is code-path driven.
  /// load_state() re-interns by name, so handles held by callers stay
  /// valid and names unknown to the blob keep their zero defaults.
  void save_state(state::StateWriter& w) const;
  void load_state(state::StateReader& r);

 private:
  std::unordered_map<std::string, CounterId> index_;
  std::vector<std::string> names_;
  std::vector<std::uint64_t> values_;
  std::unordered_map<std::string, GaugeId> gauge_index_;
  std::vector<std::string> gauge_names_;
  std::vector<double> gauge_values_;
  std::vector<std::function<void(const TelemetrySample&)>> subscribers_;
};

}  // namespace rb
