// Telemetry interface of a RANBooster middlebox.
//
// Every middlebox exposes named counters/gauges plus a streaming sample
// channel that external applications subscribe to (the paper's PRB monitor
// pushes sub-millisecond utilization samples through this).
//
// Counters are interned: the hot path increments a dense CounterId slot
// (one array add, no string hashing or map walk per packet); the string
// API remains as a thin wrapper for cold paths, management and tests.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace rb {

/// One streamed telemetry sample.
struct TelemetrySample {
  std::int64_t slot = 0;
  std::string key;
  double value = 0.0;
};

class Telemetry {
 public:
  /// Dense handle of an interned counter. Valid for the lifetime of this
  /// Telemetry instance.
  using CounterId = std::uint32_t;

  /// Intern a counter name (idempotent): returns its stable handle.
  CounterId intern(const std::string& name) {
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
    const CounterId id = CounterId(values_.size());
    index_.emplace(name, id);
    names_.push_back(name);
    values_.push_back(0);
    return id;
  }

  // --- hot path -------------------------------------------------------
  void inc(CounterId id, std::uint64_t v = 1) {
    values_[std::size_t(id)] += v;
  }
  std::uint64_t counter(CounterId id) const {
    return id < values_.size() ? values_[std::size_t(id)] : 0;
  }

  // --- string API (thin wrapper over the interned store) --------------
  void inc(const std::string& name, std::uint64_t v = 1) {
    inc(intern(name), v);
  }
  std::uint64_t counter(const std::string& name) const {
    auto it = index_.find(name);
    return it == index_.end() ? 0 : values_[std::size_t(it->second)];
  }

  void set_gauge(const std::string& name, double v) { gauges_[name] = v; }
  double gauge(const std::string& name) const {
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
  }

  /// Publish a streaming sample to all subscribers. Index-iterated over a
  /// pre-snapshot count so a subscriber that subscribes from inside its
  /// callback neither invalidates the traversal nor receives the sample
  /// being published — it sees subsequent samples only.
  void publish(const TelemetrySample& s) {
    const std::size_t n = subscribers_.size();
    for (std::size_t i = 0; i < n; ++i) subscribers_[i](s);
  }
  void subscribe(std::function<void(const TelemetrySample&)> cb) {
    subscribers_.push_back(std::move(cb));
  }

  /// Name-sorted snapshot of all counters (management/test view).
  std::map<std::string, std::uint64_t> counters() const {
    std::map<std::string, std::uint64_t> out;
    for (std::size_t i = 0; i < names_.size(); ++i) out[names_[i]] = values_[i];
    return out;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }

  /// Render all counters/gauges as "key=value" lines (management dump).
  std::string dump() const;

 private:
  std::unordered_map<std::string, CounterId> index_;
  std::vector<std::string> names_;
  std::vector<std::uint64_t> values_;
  std::map<std::string, double> gauges_;
  std::vector<std::function<void(const TelemetrySample&)>> subscribers_;
};

}  // namespace rb
