#include "core/mgmt.h"

#include <sstream>

namespace rb {

std::string MgmtEndpoint::handle(const std::string& cmd) {
  std::istringstream is(cmd);
  std::string verb;
  is >> verb;
  if (verb == "stats") {
    return rt_->telemetry().dump();
  }
  if (verb == "name") {
    return rt_->config().name;
  }
  if (verb == "counter") {
    std::string key;
    is >> key;
    return std::to_string(rt_->telemetry().counter(key));
  }
  if (verb == "gauge") {
    std::string key;
    is >> key;
    return std::to_string(rt_->telemetry().gauge(key));
  }
  // Everything else goes to the application.
  return rt_->app().on_mgmt(cmd);
}

}  // namespace rb
