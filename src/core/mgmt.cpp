#include "core/mgmt.h"

#include <sstream>

#include "common/iq_stats.h"
#include "iq/kernels/kernels.h"
#include "obs/export.h"
#include "obs/obs.h"

namespace rb {

std::string MgmtEndpoint::handle(const std::string& cmd) {
  std::istringstream is(cmd);
  std::string verb;
  is >> verb;
  if (verb == "stats") {
    return rt_->telemetry().dump();
  }
  if (verb == "name") {
    return rt_->config().name;
  }
  if (verb == "counter") {
    std::string key;
    is >> key;
    return std::to_string(rt_->telemetry().counter(key));
  }
  if (verb == "gauge") {
    std::string key;
    is >> key;
    return std::to_string(rt_->telemetry().gauge(key));
  }
  if (verb == "cpuinfo") {
    // IQ kernel dispatch + datapath arena report. Forces tier selection
    // so a pre-traffic query still answers.
    std::ostringstream os;
    os << "iq_kernel=" << kernel_tier_name(iq_kernel_tier()) << "\n";
    os << "iq_kernel_available=";
    bool first = true;
    for (std::size_t t = 0; t < kKernelTierCount; ++t) {
      if (!iq_tier_available(KernelTier(t))) continue;
      os << (first ? "" : ",") << kernel_tier_name(KernelTier(t));
      first = false;
    }
    os << "\n";
    os << "arena_samples_hwm=" << iqstats::arena_samples_hwm().load() << "\n";
    os << "arena_batch_hwm=" << iqstats::arena_batch_hwm().load() << "\n";
    os << "arena_copies_hwm=" << iqstats::arena_copies_hwm().load() << "\n";
    os << "arena_srcs_hwm=" << iqstats::arena_srcs_hwm().load() << "\n";
    os << "pool_in_use=" << rt_->pool().in_use() << "\n";
    os << "pool_capacity=" << rt_->pool().capacity() << "\n";
    os << "pool_alloc_failures=" << rt_->pool().alloc_failures() << "\n";
    return os.str();
  }
  if (verb == "prom") {
    // Per-runtime Prometheus rendering: every counter and gauge of this
    // middlebox, labeled with its name. This is how cache pressure
    // (cache_evicted / cache_stale_dropped), failover hysteresis state
    // and controller actuation effects are scraped externally.
    const std::string mb = rt_->config().name;
    std::ostringstream os;
    os << "# TYPE rb_mb_counter counter\n";
    for (const auto& [k, v] : rt_->telemetry().counters())
      os << "rb_mb_counter{mb=\"" << mb << "\",name=\"" << k << "\"} " << v
         << "\n";
    os << "# TYPE rb_mb_gauge gauge\n";
    for (const auto& [k, v] : rt_->telemetry().gauges())
      os << "rb_mb_gauge{mb=\"" << mb << "\",name=\"" << k << "\"} " << v
         << "\n";
    return os.str();
  }
  if (verb == "ctrl") {
    if (!ctrl_) return "no controller attached";
    std::string rest;
    std::getline(is, rest);
    const std::size_t at = rest.find_first_not_of(' ');
    return ctrl_->ctrl_mgmt(at == std::string::npos ? "" : rest.substr(at));
  }
  if (verb == "obs") {
    // Observability exporters: process-wide collector, queryable through
    // any middlebox's management endpoint.
    std::string what;
    is >> what;
    auto& col = obs::Collector::instance();
    if (what == "trace") return obs::chrome_trace_json(col);
    if (what == "prom") return obs::prometheus_text(col);
    if (what == "csv") return obs::budget_csv(col);
    if (what == "stats" || what.empty()) return obs::summary(col);
    if (what == "start") {
      col.start();
      return "ok";
    }
    if (what == "stop") {
      col.stop();
      return "ok";
    }
    return "unknown obs subcommand (trace|prom|csv|stats|start|stop)";
  }
  // Everything else goes to the application.
  return rt_->app().on_mgmt(cmd);
}

}  // namespace rb
