#include "core/mgmt.h"

#include <sstream>

#include "common/iq_stats.h"
#include "iq/kernels/kernels.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "state/serialize.h"

namespace rb {
namespace {

/// Registered core verbs, in help order. Anything not listed here is
/// forwarded to the application's on_mgmt.
struct VerbInfo {
  const char* name;
  const char* help;
};
constexpr VerbInfo kVerbs[] = {
    {"help", "list registered verbs"},
    {"stats", "dump all telemetry counters and gauges"},
    {"name", "middlebox instance name"},
    {"counter", "counter <key>: one telemetry counter"},
    {"gauge", "gauge <key>: one telemetry gauge"},
    {"cpuinfo", "IQ kernel dispatch tier + datapath arena/pool report"},
    {"prom", "Prometheus rendering of this middlebox's telemetry"},
    {"ctrl", "ctrl <cmd>: adaptation controller (status|links|auto|force)"},
    {"obs", "obs <cmd>: observability (trace|prom|csv|stats|start|stop)"},
    {"state", "state <save|load <hex>|info>: runtime checkpoint blob"},
    {"reconfig", "reconfig <cmd>: live reconfiguration (status|pending|log)"},
    {"city", "city <cmd>: conductor (list|budget|rings|cell <name> <verb>)"},
};

std::string hex_encode(const std::vector<std::uint8_t>& blob) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(blob.size() * 2);
  for (std::uint8_t b : blob) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool hex_decode(const std::string& s, std::vector<std::uint8_t>& out) {
  if (s.size() % 2 != 0) return false;
  out.clear();
  out.reserve(s.size() / 2);
  for (std::size_t i = 0; i < s.size(); i += 2) {
    const int hi = hex_nibble(s[i]), lo = hex_nibble(s[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out.push_back(std::uint8_t((hi << 4) | lo));
  }
  return true;
}

}  // namespace

std::string MgmtEndpoint::verb_list() {
  std::string out;
  for (const VerbInfo& v : kVerbs) {
    if (!out.empty()) out += " ";
    out += v.name;
  }
  return out;
}

std::string MgmtEndpoint::handle(const std::string& cmd) {
  std::istringstream is(cmd);
  std::string verb;
  is >> verb;
  if (verb == "help") {
    std::ostringstream os;
    os << "verbs:\n";
    for (const VerbInfo& v : kVerbs)
      os << "  " << v.name << " - " << v.help << "\n";
    os << "anything else is forwarded to the app ("
       << rt_->app().name() << ")\n";
    return os.str();
  }
  if (verb == "stats") {
    return rt_->telemetry().dump();
  }
  if (verb == "name") {
    return rt_->config().name;
  }
  if (verb == "counter") {
    std::string key;
    is >> key;
    return std::to_string(rt_->telemetry().counter(key));
  }
  if (verb == "gauge") {
    std::string key;
    is >> key;
    return std::to_string(rt_->telemetry().gauge(key));
  }
  if (verb == "cpuinfo") {
    // IQ kernel dispatch + datapath arena report. Forces tier selection
    // so a pre-traffic query still answers.
    std::ostringstream os;
    os << "iq_kernel=" << kernel_tier_name(iq_kernel_tier()) << "\n";
    os << "iq_kernel_available=";
    bool first = true;
    for (std::size_t t = 0; t < kKernelTierCount; ++t) {
      if (!iq_tier_available(KernelTier(t))) continue;
      os << (first ? "" : ",") << kernel_tier_name(KernelTier(t));
      first = false;
    }
    os << "\n";
    os << "arena_samples_hwm=" << iqstats::arena_samples_hwm().load() << "\n";
    os << "arena_batch_hwm=" << iqstats::arena_batch_hwm().load() << "\n";
    os << "arena_copies_hwm=" << iqstats::arena_copies_hwm().load() << "\n";
    os << "arena_srcs_hwm=" << iqstats::arena_srcs_hwm().load() << "\n";
    os << "pool_in_use=" << rt_->pool().in_use() << "\n";
    os << "pool_capacity=" << rt_->pool().capacity() << "\n";
    os << "pool_alloc_failures=" << rt_->pool().alloc_failures() << "\n";
    os << "pool_arena_bytes=" << rt_->pool().arena_bytes() << "\n";
    os << "pool_shared_segments=" << rt_->pool().shared_segments() << "\n";
    os << "pool_cow_promotions=" << rt_->pool().cow_promotions() << "\n";
    os << "pool_replicas_zero_copy=" << rt_->pool().replicas_zero_copy()
       << "\n";
    os << "pool_cow_fallbacks=" << rt_->pool().cow_fallbacks() << "\n";
    return os.str();
  }
  if (verb == "prom") {
    // Per-runtime Prometheus rendering: every counter and gauge of this
    // middlebox, labeled with its name. This is how cache pressure
    // (cache_evicted / cache_stale_dropped), failover hysteresis state
    // and controller actuation effects are scraped externally.
    const std::string mb = rt_->config().name;
    // City mode namespaces every series with the runtime's cell shard;
    // an empty label renders nothing, keeping single-cell output
    // byte-identical to pre-city builds.
    const std::string cl =
        rt_->config().cell.empty()
            ? std::string()
            : ",cell=\"" + rt_->config().cell + "\"";
    std::ostringstream os;
    os << "# TYPE rb_mb_counter counter\n";
    for (const auto& [k, v] : rt_->telemetry().counters())
      os << "rb_mb_counter{mb=\"" << mb << "\"" << cl << ",name=\"" << k
         << "\"} " << v << "\n";
    os << "# TYPE rb_mb_gauge gauge\n";
    for (const auto& [k, v] : rt_->telemetry().gauges())
      os << "rb_mb_gauge{mb=\"" << mb << "\"" << cl << ",name=\"" << k
         << "\"} " << v << "\n";
    // Burst-pipeline shape: packets drained per productive pump and
    // per-chunk descriptor occupancy, as native Prometheus histograms.
    const auto hist = [&](const char* name,
                          const MiddleboxRuntime::BurstHist& h) {
      os << "# TYPE " << name << " histogram\n";
      for (std::size_t i = 0; i < h.kLe.size(); ++i)
        os << name << "_bucket{mb=\"" << mb << "\"" << cl << ",le=\""
           << h.kLe[i] << "\"} " << h.bucket[i] << "\n";
      os << name << "_bucket{mb=\"" << mb << "\"" << cl << ",le=\"+Inf\"} "
         << h.count << "\n";
      os << name << "_sum{mb=\"" << mb << "\"" << cl << "} " << h.sum << "\n";
      os << name << "_count{mb=\"" << mb << "\"" << cl << "} " << h.count
         << "\n";
    };
    hist("rb_burst_size", rt_->burst_size_hist());
    hist("rb_burst_occupancy", rt_->burst_occupancy_hist());
    // Packet-pool zero-copy datapath stats. Scrape-only: CoW promotion
    // and shared-segment counts depend on cross-thread release timing,
    // so they stay out of the determinism fingerprint and save_state.
    const auto pool_series = [&](const char* name, const char* type,
                                 auto value) {
      os << "# TYPE " << name << " " << type << "\n";
      os << name << "{mb=\"" << mb << "\"" << cl << "} " << value << "\n";
    };
    const PacketPool& pool = rt_->pool();
    pool_series("rb_pool_arena_bytes", "gauge", pool.arena_bytes());
    pool_series("rb_pool_shared_segments", "gauge", pool.shared_segments());
    pool_series("rb_pool_cow_promotions", "counter", pool.cow_promotions());
    pool_series("rb_pool_replicas_zero_copy", "counter",
                pool.replicas_zero_copy());
    return os.str();
  }
  if (verb == "ctrl") {
    if (!ctrl_) return "no controller attached";
    std::string rest;
    std::getline(is, rest);
    const std::size_t at = rest.find_first_not_of(' ');
    return ctrl_->ctrl_mgmt(at == std::string::npos ? "" : rest.substr(at));
  }
  if (verb == "city") {
    if (!city_) return "no city conductor attached";
    std::string rest;
    std::getline(is, rest);
    const std::size_t at = rest.find_first_not_of(' ');
    return city_->city_mgmt(at == std::string::npos ? "" : rest.substr(at));
  }
  if (verb == "reconfig") {
    if (!reconfig_) return "no reconfig manager attached";
    std::string rest;
    std::getline(is, rest);
    const std::size_t at = rest.find_first_not_of(' ');
    return reconfig_->reconfig_mgmt(at == std::string::npos ? ""
                                                            : rest.substr(at));
  }
  if (verb == "state") {
    // Checkpoint surface of this one runtime (telemetry, cache, app
    // state) as a single-section state blob, hex-encoded for transport
    // over the text endpoint. Whole-deployment checkpoints live in
    // src/sim (rb::checkpoint / rb::restore).
    std::string what;
    is >> what;
    if (what == "save" || what == "info") {
      state::StateWriter w;
      w.begin_section(state::kSecRuntime, 1);
      rt_->save_state(w);
      w.end_section();
      const std::vector<std::uint8_t> blob = w.finish();
      if (what == "info")
        return "bytes=" + std::to_string(blob.size()) + " sections=1";
      return hex_encode(blob);
    }
    if (what == "load") {
      std::string hex;
      is >> hex;
      std::vector<std::uint8_t> blob;
      if (!hex_decode(hex, blob)) return "error: not a hex blob";
      state::StateReader r(blob);
      state::SectionInfo info;
      if (!r.next_section(&info) || info.id != state::kSecRuntime)
        return std::string("error: ") +
               state::error_name(r.ok() ? state::StateError::kMismatch
                                        : r.error());
      if (info.version != 1)
        return std::string("error: ") +
               state::error_name(state::StateError::kBadVersion);
      rt_->load_state(r);
      r.skip_section();
      if (!r.ok()) return std::string("error: ") + state::error_name(r.error());
      return "ok";
    }
    return "usage: state save|load <hex>|info";
  }
  if (verb == "obs") {
    // Observability exporters: process-wide collector, queryable through
    // any middlebox's management endpoint.
    std::string what;
    is >> what;
    auto& col = obs::Collector::instance();
    if (what == "trace") return obs::chrome_trace_json(col);
    if (what == "prom") return obs::prometheus_text(col);
    if (what == "csv") return obs::budget_csv(col);
    if (what == "stats" || what.empty()) return obs::summary(col);
    if (what == "start") {
      col.start();
      return "ok";
    }
    if (what == "stop") {
      col.stop();
      return "ok";
    }
    return "unknown obs subcommand (trace|prom|csv|stats|start|stop)";
  }
  // Everything else goes to the application; if the app does not claim
  // the verb either, tell the operator what is available.
  const std::string resp = rt_->app().on_mgmt(cmd);
  if (resp == "unknown command")
    return "unknown verb '" + verb + "'; registered: " + verb_list() +
           " (plus " + rt_->app().name() + " app verbs; see help)";
  return resp;
}

}  // namespace rb
