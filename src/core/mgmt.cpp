#include "core/mgmt.h"

#include <sstream>

#include "obs/export.h"
#include "obs/obs.h"

namespace rb {

std::string MgmtEndpoint::handle(const std::string& cmd) {
  std::istringstream is(cmd);
  std::string verb;
  is >> verb;
  if (verb == "stats") {
    return rt_->telemetry().dump();
  }
  if (verb == "name") {
    return rt_->config().name;
  }
  if (verb == "counter") {
    std::string key;
    is >> key;
    return std::to_string(rt_->telemetry().counter(key));
  }
  if (verb == "gauge") {
    std::string key;
    is >> key;
    return std::to_string(rt_->telemetry().gauge(key));
  }
  if (verb == "obs") {
    // Observability exporters: process-wide collector, queryable through
    // any middlebox's management endpoint.
    std::string what;
    is >> what;
    auto& col = obs::Collector::instance();
    if (what == "trace") return obs::chrome_trace_json(col);
    if (what == "prom") return obs::prometheus_text(col);
    if (what == "csv") return obs::budget_csv(col);
    if (what == "stats" || what.empty()) return obs::summary(col);
    if (what == "start") {
      col.start();
      return "ok";
    }
    if (what == "stop") {
      col.stop();
      return "ok";
    }
    return "unknown obs subcommand (trace|prom|csv|stats|start|stop)";
  }
  // Everything else goes to the application.
  return rt_->app().on_mgmt(cmd);
}

}  // namespace rb
