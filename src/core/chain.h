// Middlebox chaining over SR-IOV virtual functions (paper Figure 8).
//
// Each chained middlebox gets a north (DU-side) and a south (RU-side)
// port; inter-stage hops model the VF -> embedded NIC switch -> VF path
// with its PCIe crossing latency. The chain is transparent: endpoints are
// wired to the outermost stage ports at finalize() time.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/middlebox.h"

namespace rb {

/// Port indices a chained middlebox gets on its runtime.
struct ChainPorts {
  int north = -1;
  int south = -1;
};

class ChainBuilder {
 public:
  /// Two PCIe crossings (VF out, VF in) per inter-stage hop.
  static constexpr std::int64_t kHopLatencyNs = 1'200;

  /// Append a middlebox to the chain in north-to-south order.
  ChainPorts append(MiddleboxRuntime& rt);

  /// Wire the chain between the DU-side and RU-side endpoints. The first
  /// appended stage faces `north_endpoint`, the last faces
  /// `south_endpoint`. Must be called exactly once, with >= 1 stage.
  void finalize(Port& north_endpoint, Port& south_endpoint);

  /// Bytes that crossed inter-stage (PCIe) hops - the chaining bottleneck
  /// metric from the paper's section 5.
  std::uint64_t pcie_bytes() const;

  std::size_t num_stages() const { return stages_.size(); }

 private:
  struct Stage {
    MiddleboxRuntime* rt = nullptr;
    std::unique_ptr<Port> north;
    std::unique_ptr<Port> south;
    ChainPorts ports;
  };

  std::vector<Stage> stages_;
  bool finalized_ = false;
};

}  // namespace rb
