#include "core/chain.h"

#include <stdexcept>

namespace rb {

ChainPorts ChainBuilder::append(MiddleboxRuntime& rt) {
  if (finalized_) throw std::logic_error("chain already finalized");
  Stage st;
  st.rt = &rt;
  const std::string base = rt.config().name;
  st.north = std::make_unique<Port>(base + ".north");
  st.south = std::make_unique<Port>(base + ".south");
  st.ports.north = rt.add_port("north", *st.north);
  st.ports.south = rt.add_port("south", *st.south);
  stages_.push_back(std::move(st));
  return stages_.back().ports;
}

void ChainBuilder::finalize(Port& north_endpoint, Port& south_endpoint) {
  if (finalized_) throw std::logic_error("chain already finalized");
  if (stages_.empty()) throw std::logic_error("empty chain");
  finalized_ = true;
  Port::connect(north_endpoint, *stages_.front().north, kHopLatencyNs);
  for (std::size_t i = 0; i + 1 < stages_.size(); ++i)
    Port::connect(*stages_[i].south, *stages_[i + 1].north, kHopLatencyNs);
  Port::connect(*stages_.back().south, south_endpoint, kHopLatencyNs);
}

std::uint64_t ChainBuilder::pcie_bytes() const {
  std::uint64_t total = 0;
  for (const auto& st : stages_) {
    total += st.north->stats().tx_bytes + st.north->stats().rx_bytes;
    total += st.south->stats().tx_bytes + st.south->stats().rx_bytes;
  }
  return total;
}

}  // namespace rb
