// cache.h is header-only.
#include "core/cache.h"

namespace rb {
// Intentionally empty.
}  // namespace rb
