#include "core/cache.h"

#include <unordered_set>

#include "net/port.h"

namespace rb {

void PacketCache::save_state(state::StateWriter& w) const {
  w.u64(evictions_);
  // The order deque verbatim (stale keys included): eviction order after
  // restore must match the uninterrupted run exactly.
  w.u32(std::uint32_t(order_.size()));
  for (std::uint64_t k : order_) w.u64(k);
  // Live entries, grouped by key in first-appearance-in-order_ order so
  // the blob is deterministic regardless of hash-map iteration order
  // (every live key appears in order_: put() pushes it, and only
  // evict_oldest_key removes both together).
  w.u32(std::uint32_t(map_.size()));
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t k : order_) {
    if (!seen.insert(k).second) continue;
    auto it = map_.find(k);
    if (it == map_.end()) continue;
    w.u64(k);
    w.u32(std::uint32_t(it->second.size()));
    for (const CachedPacket& e : it->second) {
      w.i32(e.in_port);
      save_packet(w, *e.pkt);
    }
  }
}

void PacketCache::load_state(state::StateReader& r, PacketPool& pool,
                             const ReparseFn& reparse) {
  clear();
  evictions_ = r.u64();
  order_.clear();
  for (std::uint32_t i = 0, n = r.count(8); i < n && r.ok(); ++i)
    order_.push_back(r.u64());
  std::uint32_t n_keys = r.count(12);
  for (std::uint32_t i = 0; i < n_keys && r.ok(); ++i) {
    std::uint64_t k = r.u64();
    std::uint32_t n_entries = r.count(18);
    auto& v = map_[k];
    v.reserve(n_entries);
    for (std::uint32_t j = 0; j < n_entries && r.ok(); ++j) {
      CachedPacket e;
      e.in_port = r.i32();
      e.pkt = load_packet(r, pool);
      if (!e.pkt) return;
      if (!reparse || !reparse(*e.pkt, e.in_port, e.frame)) {
        r.fail(state::StateError::kBadValue);
        return;
      }
      v.push_back(std::move(e));
      ++size_;
    }
  }
}

}  // namespace rb
