// The RANBooster middlebox template (paper section 3.2.2).
//
// A developer writes a MiddleboxApp: a handler invoked per fronthaul frame
// with an MbContext exposing the four RANBooster actions:
//   A1  forward()/drop()           - redirection & drop
//   A2  replicate()                - packet cloning
//   A3  cache()                    - keyed packet store
//   A4  payload helpers            - O-RAN header & IQ modification
// The MiddleboxRuntime owns the ports/drivers, parses frames, invokes the
// handler, and does the cost/latency accounting that the evaluation
// (Figures 15-16) measures. The same template builds all four reference
// applications in src/mb.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/small_vec.h"
#include "core/cache.h"
#include "core/telemetry.h"
#include "fronthaul/frame.h"
#include "net/driver.h"
#include "net/packet.h"
#include "ran/engine.h"

namespace rb {

/// Deterministic per-operation work costs (nanoseconds). Calibrated to the
/// FlexRAN-grade kernels of the paper's testbed so the latency/scaling
/// results of section 6.4 reproduce; our scalar codec's real timings are
/// reported separately by bench_fig15b. See DESIGN.md.
struct WorkCosts {
  double forward_ns = 80;
  double clone_per_kb_ns = 40;
  double clone_base_ns = 100;
  /// Zero-copy replicate (refcount bump + private-head copy) - the cheap
  /// path replication takes when the frame is payload-share eligible.
  double replicate_ref_ns = 28;
  double cache_op_ns = 35;
  double hdr_rewrite_ns = 25;
  double per_prb_decompress_ns = 4.3;
  double per_prb_compress_ns = 6.0;
  double per_prb_copy_ns = 1.2;
  double per_prb_scan_ns = 0.5;
};

enum class DriverKind : std::uint8_t { Dpdk, Xdp };

class MiddleboxRuntime;

/// Per-worker scratch arena for the combine hot path: the A3 take batch,
/// the per-RU dedup set and the per-section source spans reuse their
/// capacity across packets, so a steady-state combine makes no heap
/// allocations. One instance per worker thread (exec shards run one
/// runtime per worker, and chain re-entrancy never interleaves two
/// combines on one thread); hand out via MbContext::scratch().
struct MbScratch {
  std::vector<CachedPacket> batch;
  std::vector<CachedPacket*> copies;
  std::vector<std::span<const std::uint8_t>> srcs;
  std::vector<CompConfig> src_comps;  // per-source widths (mixed-width merge)
};

/// Classification of one parsed frame, produced by the burst parse pass:
/// the per-packet facts every app otherwise re-derives from the frame
/// (stream identity, radio time, combine keys). Exposed to handlers via
/// MbContext::frame_info() for the duration of on_frame().
struct FrameInfo {
  SlotPoint at{};             // radio time point of the message
  EaxcId eaxc{};              // stream identity
  CompConfig comp{};          // first section's compression (msg comp for C)
  std::uint64_t cache_key = 0;  // PacketCache::key(at, eaxc, cplane, frag_tag)
  std::uint16_t start_prb = 0;  // first section's PRB range
  std::uint16_t num_prb = 0;
  std::uint16_t payload_off = 0;  // first U section's payload offset/length
  std::uint16_t payload_len = 0;  // (zero-copy replicate eligibility)
  std::uint8_t n_sections = 0;  // saturated at 255
  std::uint8_t frag_tag = 0;  // first U section's start_prb & 0xff (DAS
                              // fragment pairing)
  bool cplane = false;
  bool uplink = false;        // message direction
  bool prach = false;         // non-zero du_port: PRACH / mixed numerology
  bool type3 = false;         // C-plane section type 3
};

/// Action facade handed to the handler. Bound to the runtime and to the
/// worker/time context of the packet being processed.
class MbContext {
 public:
  // --- A1: redirection & drop ---------------------------------------
  /// Rewrite addressing (optionally) and transmit on `out_port`.
  void forward(PacketPtr p, int out_port,
               std::optional<MacAddr> dst = std::nullopt,
               std::optional<MacAddr> src = std::nullopt);
  /// Drop: account and release.
  void drop(PacketPtr p);

  // --- A2: replication ----------------------------------------------
  PacketPtr replicate(const Packet& p);

  // --- A3: caching --------------------------------------------------
  PacketCache& cache();
  /// Account one cache operation (put/take).
  void charge_cache_op();
  /// This worker's combine scratch arena (see MbScratch). Valid only for
  /// the duration of the current handler invocation.
  MbScratch& scratch();

  // --- A4: payload inspection & modification -------------------------
  /// Rewrite the eAxC (antenna port remap). Charges a header rewrite.
  bool rewrite_eaxc(Packet& p, const EaxcId& eaxc);
  /// BFP exponent of one PRB of a U-plane section (no decompression).
  std::uint8_t prb_exponent(const Packet& p, const USection& sec, int prb);
  /// Element-wise merge of N compressed section payloads into `dst`
  /// (decompress + sum + recompress). Returns bytes written, 0 on error.
  std::size_t merge_payloads(
      std::span<const std::span<const std::uint8_t>> srcs, int n_prb,
      const CompConfig& cfg, std::span<std::uint8_t> dst);
  /// Mixed-width merge: each source decoded at its own per-packet
  /// udCompHdr config, recompressed at `dst_cfg` (the width the merged
  /// frame's header advertises).
  std::size_t merge_payloads(
      std::span<const std::span<const std::uint8_t>> srcs,
      std::span<const CompConfig> src_cfgs, int n_prb,
      const CompConfig& dst_cfg, std::span<std::uint8_t> dst);
  /// Aligned compressed-PRB copy between payloads (no codec work).
  bool copy_prbs(std::span<const std::uint8_t> src, int src_prb,
                 std::span<std::uint8_t> dst, int dst_prb, int n_prb,
                 const CompConfig& cfg);
  /// Misaligned copy: decompress, shift by `shift_sc` sub-carriers,
  /// recompress (the expensive path Figure 6 motivates avoiding).
  bool copy_prbs_misaligned(std::span<const std::uint8_t> src, int src_prb,
                            std::span<std::uint8_t> dst, int dst_prb,
                            int n_prb, int shift_sc, const CompConfig& cfg);
  /// Explicit cost charge for custom A4 work.
  void charge(double ns);
  /// Draw a fresh packet from the middlebox pool (for assembled frames).
  PacketPtr alloc_packet();

  // --- environment ----------------------------------------------------
  Telemetry& telemetry();
  /// Default (config) fronthaul context.
  const FhContext& fh() const;
  /// Per-port fronthaul context: M-plane provisioning differs per link
  /// (e.g. RU sharing: each DU's carrier defines its numPrbu==0 meaning).
  const FhContext& fh(int port) const;
  std::int64_t slot() const { return slot_; }
  std::int64_t slot_start_ns() const { return slot_start_ns_; }

  /// Precomputed classification of the frame being handled (burst parse
  /// table row). Non-null exactly during on_frame(); null in on_other,
  /// on_slot and on_pump_idle contexts.
  const FrameInfo* frame_info() const { return info_; }

  /// Modeled cost accumulated so far for the current packet (ns). Pair
  /// with trace_span() to attribute an app-level phase.
  double cost_ns() const { return cost_ns_; }
  /// Emit an obs Combine span covering [cost_begin, cost_ns()) of this
  /// packet's modeled time, on the runtime's track. `name` is an
  /// obs-interned name id; no-op while obs is disabled.
  void trace_span(std::uint16_t name, double cost_begin,
                  std::uint64_t arg = 0);

 private:
  friend class MiddleboxRuntime;
  MbContext(MiddleboxRuntime* rt, int in_port, std::int64_t slot,
            std::int64_t slot_start_ns)
      : rt_(rt), in_port_(in_port), slot_(slot), slot_start_ns_(slot_start_ns),
        start_ns_(slot_start_ns) {}

  /// Emit an obs Action event covering [cost_begin, cost_ns()).
  void trace_action(std::uint16_t name, double cost_begin,
                    std::uint64_t arg = 0);

  MiddleboxRuntime* rt_;
  int in_port_;
  std::int64_t slot_;
  std::int64_t slot_start_ns_;
  double cost_ns_ = 0.0;          // accumulated for the current packet
  std::int64_t start_ns_ = 0;     // when the worker started this packet
  const FrameInfo* info_ = nullptr;  // burst table row (on_frame only)
  /// Emitted packets. Inline storage covers the common fan-out (DAS
  /// replicates to a handful of RUs) without a per-packet allocation.
  SmallVec<std::pair<PacketPtr, int>, 8> tx_queue_;
};

/// User-provided middlebox logic.
class MiddleboxApp {
 public:
  virtual ~MiddleboxApp() = default;
  virtual std::string name() const = 0;
  /// Handler for a parsed fronthaul frame. Take ownership of `p` via the
  /// context actions (forward/drop/cache); unconsumed packets are dropped.
  virtual void on_frame(int in_port, PacketPtr p, FhFrame& frame,
                        MbContext& ctx) = 0;
  /// Non-fronthaul traffic (default: transparent drop).
  virtual void on_other(int in_port, PacketPtr p, MbContext& ctx);
  /// Where this frame's processing would run under the XDP split
  /// (Table 1); determines the AF_XDP punt charge under DriverKind::Xdp.
  virtual ProcessingLocus locus(const FhFrame& frame) const {
    (void)frame;
    return ProcessingLocus::Userspace;
  }
  /// Management command hook ("set key value" / "get key").
  virtual std::string on_mgmt(const std::string& cmd) {
    (void)cmd;
    return "unknown command";
  }
  /// Slot boundary notification.
  virtual void on_slot(std::int64_t slot, MbContext& ctx) {
    (void)slot;
    (void)ctx;
  }
  /// Called when a pump pass finds no pending traffic: every packet that
  /// was going to arrive this phase has been processed. Apps holding
  /// partial per-symbol state (DAS combine groups) use this as their
  /// deadline to flush whatever arrived instead of waiting forever.
  /// Must be idempotent; emitting packets marks the pump as productive.
  virtual void on_pump_idle(std::int64_t slot, MbContext& ctx) {
    (void)slot;
    (void)ctx;
  }
  /// Checkpoint hook: write every field a restored instance needs to
  /// resume bit-identically into the runtime's open state section.
  /// Stateless apps keep the no-op default. load_state must read exactly
  /// what save_state wrote (the section framing tolerates a shorter read,
  /// but a restored run then diverges).
  virtual void save_state(state::StateWriter& w) const { (void)w; }
  virtual void load_state(state::StateReader& r) { (void)r; }
};

/// Runtime: ports, drivers, parse loop, accounting. Implements Pumpable so
/// the SlotEngine can drive it.
class MiddleboxRuntime final : public Pumpable {
 public:
  struct Config {
    std::string name = "mb";
    /// Cell shard this runtime belongs to (city mode). When non-empty,
    /// Prometheus series rendered by the mgmt endpoint carry a
    /// cell="<label>" label; empty keeps single-cell output byte-identical.
    std::string cell;
    FhContext fh{};
    DriverKind driver = DriverKind::Dpdk;
    DriverCosts driver_costs{};
    WorkCosts work{};
    int n_workers = 1;
    std::size_t pool_capacity = 8192;
    /// Packet-cache entry cap (0 = unbounded): under sustained loss,
    /// never-combined entries are evicted oldest-first with telemetry.
    std::size_t cache_max_entries = 4096;
  };

  MiddleboxRuntime(Config cfg, MiddleboxApp& app);

  /// Register a port; returns its index (used by forward()). `fh`
  /// overrides the config fronthaul context for frames of this port.
  int add_port(const std::string& name, Port& port,
               std::optional<FhContext> fh = std::nullopt);
  int num_ports() const { return int(drivers_.size()); }
  Port& port(int idx) { return drivers_[std::size_t(idx)]->port(); }

  // Pumpable:
  bool pump(std::int64_t slot, std::int64_t slot_start_ns) override;
  void begin_slot(std::int64_t slot) override;
  bool supports_deferred_tx() const override { return true; }
  void set_defer_tx(bool on) override { defer_tx_ = on; }
  bool flush_deferred_tx() override;

  /// CPU utilization of the middlebox core(s) over the window since the
  /// last reset_cpu(): 1.0 for DPDK (poll), busy/wall for XDP.
  double cpu_utilization(std::int64_t now_ns) const;
  void reset_cpu(std::int64_t now_ns);

  Telemetry& telemetry() { return telemetry_; }
  PacketCache& cache() { return cache_; }
  MiddleboxApp& app() { return *app_; }
  const Config& config() const { return cfg_; }
  PacketPool& pool() { return pool_; }

  /// Max packet added-latency observed in the last completed slot (ns).
  std::int64_t last_slot_max_latency_ns() const {
    return last_slot_max_latency_ns_;
  }

  /// Burst telemetry: power-of-two-bucketed histograms over (a) packets
  /// drained per productive pump (rb_burst_size) and (b) packets per
  /// 32-slot dispatch chunk, i.e. descriptor-ring occupancy
  /// (rb_burst_occupancy). Rendered by the mgmt "prom" verb.
  struct BurstHist {
    static constexpr std::array<std::uint32_t, 6> kLe{1, 2, 4, 8, 16, 32};
    std::array<std::uint64_t, kLe.size()> bucket{};  // cumulative (le)
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    void record(std::size_t v) {
      for (std::size_t i = 0; i < kLe.size(); ++i)
        if (v <= kLe[i]) ++bucket[i];
      ++count;
      sum += v;
    }
  };
  const BurstHist& burst_size_hist() const { return burst_size_hist_; }
  const BurstHist& burst_occupancy_hist() const { return burst_occ_hist_; }

  /// Per-packet cost sampling (latency microbenchmarks): called after each
  /// handler invocation with the parsed frame (null for non-fronthaul)
  /// and the modeled processing cost.
  using CostSampler = std::function<void(const FhFrame*, double cost_ns)>;
  void set_cost_sampler(CostSampler s) { cost_sampler_ = std::move(s); }

  /// Checkpoint the runtime's mutable state — telemetry, cached packets
  /// (re-parsed on load via the per-port fronthaul context), latency
  /// watermarks — then the app's own state via its save_state hook, all
  /// into the caller's open section. Call only at the slot barrier:
  /// worker availability and deferred TX are empty there by construction.
  void save_state(state::StateWriter& w) const;
  void load_state(state::StateReader& r);

 private:
  friend class MbContext;

  /// One pump's worth of packets, owned by the runtime and reused across
  /// pumps (the zero-alloc burst descriptor). Packets are drained from
  /// every port into the arrival arrays, ordered by an index sort, then
  /// parsed/classified and dispatched in kChunk-packet bursts through the
  /// SoA table below.
  struct Burst {
    static constexpr std::size_t kChunk = Driver::kRxBurst;
    // Arrival arrays (whole pump, parallel):
    std::vector<PacketPtr> pkt;
    std::vector<std::int32_t> in_port;
    /// (rx_time_ns, drain sequence): sorting pairs reproduces the
    /// stable-by-arrival order of std::stable_sort without its allocation.
    std::vector<std::pair<std::int64_t, std::uint32_t>> order;
    // Parse/classify table for the current chunk (SoA):
    std::array<FhFrame, kChunk> frame;   // capacity reused across chunks
    std::array<ParseError, kChunk> perr;
    std::array<FrameInfo, kChunk> info;
    std::array<bool, kChunk> ok;
    /// Per-chunk staged TX, flushed after the chunk's dispatch pass in
    /// the exact per-packet emission order.
    std::vector<std::pair<PacketPtr, int>> txq;
  };

  /// Parse one received frame into `out` through the per-port fronthaul
  /// context; on reject, counts the typed reason and (under
  /// RB_DEBUG_PARSE) dumps the head of the frame. The single
  /// parse-and-reject integration point for the burst path and for cache
  /// re-parse on state restore.
  bool parse_rx_frame(int in_port, const Packet& p, FhFrame& out,
                      ParseError& perr);
  /// Fill one classify-table row from a parsed frame.
  static void classify_frame(const FhFrame& f, FrameInfo& info);
  /// Act stage: run the handler + cost/latency accounting for one packet
  /// of the current chunk, staging its TX into burst_.txq.
  void dispatch_packet(int in_port, PacketPtr p, FhFrame* frame,
                       const FrameInfo* info, ParseError perr,
                       std::int64_t slot, std::int64_t slot_start_ns);
  /// Give the app its end-of-phase deadline callback; returns true if it
  /// emitted anything.
  bool pump_idle(std::int64_t slot, std::int64_t slot_start_ns);
  /// Pick the worker with the earliest availability.
  std::size_t pick_worker() const;
  /// Transmit on `out` (bounds pre-checked), or queue when deferring.
  void send_or_defer(int out, PacketPtr pkt);

  /// Pre-interned telemetry handles for the per-packet hot path (avoids
  /// the string hash/compare per counter bump).
  struct HotCounters {
    Telemetry::CounterId pkts_forwarded, pkts_dropped, pkts_replicated,
        replicate_failures, cache_ops, iq_merges, pool_exhausted, cplane_rx,
        uplane_rx, non_fh_rx, cache_evicted, cache_stale;
    /// Per-reason parse rejects ("parse_reject_<reason>").
    std::array<Telemetry::CounterId, kParseErrorCount> parse_reject{};
    /// Cache-pressure gauges, refreshed at every slot barrier (exported
    /// as rb_cache_entries / rb_cache_evictions by the prom mgmt verb).
    Telemetry::GaugeId cache_entries, cache_evictions;
  };

  Config cfg_;
  MiddleboxApp* app_;
  PacketPool pool_;
  std::vector<std::unique_ptr<Driver>> drivers_;
  std::vector<FhContext> port_fh_;
  std::vector<std::int64_t> worker_free_at_;
  PacketCache cache_;
  Telemetry telemetry_;
  HotCounters hot_;
  bool defer_tx_ = false;
  std::vector<std::pair<PacketPtr, int>> deferred_tx_;
  std::uint16_t obs_track_ = 0;  // obs track id for this runtime's spans
  std::int64_t cpu_window_start_ns_ = 0;
  std::int64_t slot_max_latency_ns_ = 0;
  std::int64_t last_slot_max_latency_ns_ = 0;
  std::int64_t current_slot_start_ns_ = 0;
  std::uint64_t cache_evictions_seen_ = 0;
  Burst burst_;
  BurstHist burst_size_hist_;
  BurstHist burst_occ_hist_;
  CostSampler cost_sampler_;
};

}  // namespace rb
