// Packet cache: the A3 action.
//
// Middleboxes cache packets keyed on radio time + stream (slot, symbol,
// eAxC, plane) so they can later combine them with packets arriving from
// other sources (DAS uplink merge, RU-sharing mux/demux). Entries expire
// when their slot passes, bounding memory exactly like the per-symbol
// state window of a real fronthaul middlebox.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "fronthaul/frame.h"
#include "net/packet.h"
#include "state/serialize.h"

namespace rb {

/// A cached packet together with its parsed view (offsets into the packet
/// buffer stay valid because the buffer is owned by the entry).
struct CachedPacket {
  PacketPtr pkt;
  FhFrame frame;
  int in_port = 0;
};

class PacketCache {
 public:
  /// Key helper: radio time + stream id + plane discriminator.
  /// `aux` lets applications fold in their own discriminator (e.g. DU id).
  static std::uint64_t key(const SlotPoint& at, const EaxcId& eaxc,
                           bool cplane, std::uint8_t aux = 0) {
    return (std::uint64_t(at.packed()) << 26) |
           (std::uint64_t(eaxc.packed()) << 10) |
           (std::uint64_t(aux) << 2) | (cplane ? 1u : 0u);
  }
  /// Key ignoring the symbol (slot-scoped state).
  static std::uint64_t slot_key(SlotPoint at, const EaxcId& eaxc, bool cplane,
                                std::uint8_t aux = 0) {
    at.symbol = 0;
    return key(at, eaxc, cplane, aux);
  }

  void put(std::uint64_t k, CachedPacket entry) {
    auto& v = map_[k];
    if (v.empty()) order_.push_back(k);
    v.push_back(std::move(entry));
    ++size_;
    // Under sustained loss, entries whose partners never arrive would
    // otherwise accumulate until the slot boundary; cap the cache and
    // evict whole oldest keys first (they are the least likely to still
    // complete).
    while (max_entries_ > 0 && size_ > max_entries_ && !order_.empty())
      evict_oldest_key();
  }

  /// Entries under a key (empty vector if none).
  const std::vector<CachedPacket>& peek(std::uint64_t k) const {
    static const std::vector<CachedPacket> empty;
    auto it = map_.find(k);
    return it == map_.end() ? empty : it->second;
  }
  std::vector<CachedPacket>* find(std::uint64_t k) {
    auto it = map_.find(k);
    return it == map_.end() ? nullptr : &it->second;
  }

  /// Remove and return all entries under a key.
  std::vector<CachedPacket> take(std::uint64_t k) {
    auto it = map_.find(k);
    if (it == map_.end()) return {};
    auto v = std::move(it->second);
    map_.erase(it);
    size_ -= v.size();
    return v;
  }

  /// Remove all entries under a key into `out` (cleared first). The
  /// allocation-free flavour of take(): `out` is a reusable scratch
  /// buffer, so the steady state moves elements without touching the heap.
  void take_into(std::uint64_t k, std::vector<CachedPacket>& out) {
    out.clear();
    auto it = map_.find(k);
    if (it == map_.end()) return;
    for (auto& e : it->second) out.push_back(std::move(e));
    map_.erase(it);
    size_ -= out.size();
  }

  void erase(std::uint64_t k) {
    auto it = map_.find(k);
    if (it != map_.end()) {
      size_ -= it->second.size();
      map_.erase(it);
    }
  }

  /// Drop every entry (slot boundary cleanup; per-symbol state must not
  /// leak across slots). Not counted as eviction.
  void clear() {
    map_.clear();
    order_.clear();
    size_ = 0;
  }

  std::size_t size() const { return size_; }
  std::size_t keys() const { return map_.size(); }

  /// Entry cap (0 = unbounded) and cumulative count of entries evicted by
  /// the cap (never-combined state dropped under sustained loss).
  void set_max_entries(std::size_t n) { max_entries_ = n; }
  std::size_t max_entries() const { return max_entries_; }
  std::uint64_t evictions() const { return evictions_; }

  /// Re-derive the parsed view of a restored cache entry from its packet
  /// bytes and ingress port. Returns false if the bytes do not parse.
  using ReparseFn = std::function<bool(Packet& pkt, int in_port, FhFrame&)>;

  /// Checkpoint every cached entry plus the eviction bookkeeping (the
  /// insertion-order deque, stale keys included, so the restored cache
  /// evicts in exactly the original order). Packet bytes are serialized
  /// verbatim; parsed views are re-derived on load via `reparse`.
  void save_state(state::StateWriter& w) const;
  void load_state(state::StateReader& r, PacketPool& pool,
                  const ReparseFn& reparse);

 private:
  void evict_oldest_key() {
    while (!order_.empty()) {
      const std::uint64_t k = order_.front();
      order_.pop_front();
      auto it = map_.find(k);
      if (it == map_.end()) continue;  // stale: key was taken/erased
      size_ -= it->second.size();
      evictions_ += it->second.size();
      map_.erase(it);
      return;
    }
  }

  std::unordered_map<std::uint64_t, std::vector<CachedPacket>> map_;
  std::deque<std::uint64_t> order_;  // key insertion order (may hold stale keys)
  std::size_t size_ = 0;
  std::size_t max_entries_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace rb
