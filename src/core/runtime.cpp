#include "core/middlebox.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "iq/prb.h"
#include "obs/obs.h"

namespace rb {
namespace {
thread_local PrbScratch g_scratch;
thread_local MbScratch g_mb_scratch;
}  // namespace

// ----------------------------------------------------------------------
// MbContext: the action facade
// ----------------------------------------------------------------------

void MbContext::trace_action(std::uint16_t name, double cost_begin,
                             std::uint64_t arg) {
  if (!obs::enabled()) return;
  obs::emit(obs::Cat::Action, name, rt_->obs_track_,
            start_ns_ + std::int64_t(cost_begin),
            std::uint32_t(cost_ns_ - cost_begin), arg);
}

void MbContext::trace_span(std::uint16_t name, double cost_begin,
                           std::uint64_t arg) {
  if (!obs::enabled()) return;
  obs::emit(obs::Cat::Combine, name, rt_->obs_track_,
            start_ns_ + std::int64_t(cost_begin),
            std::uint32_t(cost_ns_ - cost_begin), arg);
}

void MbContext::forward(PacketPtr p, int out_port,
                        std::optional<MacAddr> dst,
                        std::optional<MacAddr> src) {
  if (!p) return;
  const double c0 = cost_ns_;
  const std::size_t len = p->len();
  if (dst || src) {
    // MAC rewrites land in a replica's private head - no CoW promotion.
    rewrite_eth_addrs(p->mutable_prefix(14), dst, src);
    cost_ns_ += rt_->cfg_.work.hdr_rewrite_ns;
  }
  cost_ns_ += rt_->cfg_.work.forward_ns;
  tx_queue_.emplace_back(std::move(p), out_port);
  rt_->telemetry_.inc(rt_->hot_.pkts_forwarded);
  trace_action(obs::kNA1Forward, c0, len);
}

void MbContext::drop(PacketPtr p) {
  if (!p) return;
  rt_->telemetry_.inc(rt_->hot_.pkts_dropped);
  trace_action(obs::kNA1Drop, cost_ns_, p->len());
  // PacketPtr destructor returns the buffer to the pool.
}

PacketPtr MbContext::replicate(const Packet& p) {
  const double c0 = cost_ns_;
  // Zero-copy eligibility: a single-section U-plane frame whose payload
  // runs to the end of the frame. The replica then carries only the bytes
  // up to the payload start privately (eth + eCPRI + app + section
  // headers, the per-egress-rewritten region) and refcounts the rest.
  // C-plane, multi-section and padded frames take the deep-copy path.
  // Eligibility depends only on parsed frame facts, so serial and
  // parallel runs pick the same path packet-for-packet.
  std::size_t split = 0;
  if (info_ != nullptr && !info_->cplane && info_->n_sections == 1 &&
      info_->payload_len > 0 &&
      std::size_t(info_->payload_off) + info_->payload_len == p.len())
    split = info_->payload_off;
  PacketPtr c = split > 0 ? rt_->pool_.replicate(p, split) : rt_->pool_.clone(p);
  if (!c) {
    rt_->telemetry_.inc(rt_->hot_.replicate_failures);
    return nullptr;
  }
  if (c->shares_payload())
    cost_ns_ += rt_->cfg_.work.replicate_ref_ns;
  else
    cost_ns_ += rt_->cfg_.work.clone_base_ns +
                rt_->cfg_.work.clone_per_kb_ns * double(p.len()) / 1024.0;
  rt_->telemetry_.inc(rt_->hot_.pkts_replicated);
  trace_action(obs::kNA2Replicate, c0, p.len());
  return c;
}

PacketCache& MbContext::cache() { return rt_->cache_; }

MbScratch& MbContext::scratch() { return g_mb_scratch; }

void MbContext::charge_cache_op() {
  const double c0 = cost_ns_;
  cost_ns_ += rt_->cfg_.work.cache_op_ns;
  rt_->telemetry_.inc(rt_->hot_.cache_ops);
  trace_action(obs::kNA3Cache, c0);
}

bool MbContext::rewrite_eaxc(Packet& p, const EaxcId& eaxc) {
  const double c0 = cost_ns_;
  cost_ns_ += rt_->cfg_.work.hdr_rewrite_ns;
  trace_action(obs::kNA4Rewrite, c0);
  // eAxC lives at most 24 bytes in (VLAN-tagged eCPRI header) - always
  // inside a replica's private head.
  return ::rb::rewrite_eaxc(p.mutable_prefix(24), eaxc);
}

std::uint8_t MbContext::prb_exponent(const Packet& p, const USection& sec,
                                     int prb) {
  cost_ns_ += rt_->cfg_.work.per_prb_scan_ns;
  const std::size_t off =
      sec.payload_offset + std::size_t(prb) * sec.comp.prb_bytes();
  if (off >= p.len()) return 0;
  return bfp_wire_exponent(p.bytes(off));
}

std::size_t MbContext::merge_payloads(
    std::span<const std::span<const std::uint8_t>> srcs, int n_prb,
    const CompConfig& cfg, std::span<std::uint8_t> dst) {
  const double c0 = cost_ns_;
  cost_ns_ += double(n_prb) *
              (rt_->cfg_.work.per_prb_decompress_ns * double(srcs.size()) +
               rt_->cfg_.work.per_prb_compress_ns);
  rt_->telemetry_.inc(rt_->hot_.iq_merges);
  trace_action(obs::kNA4Merge, c0, std::uint64_t(n_prb));
  return merge_compressed(srcs, n_prb, cfg, dst, g_scratch);
}

std::size_t MbContext::merge_payloads(
    std::span<const std::span<const std::uint8_t>> srcs,
    std::span<const CompConfig> src_cfgs, int n_prb,
    const CompConfig& dst_cfg, std::span<std::uint8_t> dst) {
  const double c0 = cost_ns_;
  cost_ns_ += double(n_prb) *
              (rt_->cfg_.work.per_prb_decompress_ns * double(srcs.size()) +
               rt_->cfg_.work.per_prb_compress_ns);
  rt_->telemetry_.inc(rt_->hot_.iq_merges);
  trace_action(obs::kNA4Merge, c0, std::uint64_t(n_prb));
  return merge_compressed(srcs, src_cfgs, n_prb, dst_cfg, dst, g_scratch);
}

bool MbContext::copy_prbs(std::span<const std::uint8_t> src, int src_prb,
                          std::span<std::uint8_t> dst, int dst_prb, int n_prb,
                          const CompConfig& cfg) {
  const double c0 = cost_ns_;
  cost_ns_ += rt_->cfg_.work.per_prb_copy_ns * double(n_prb);
  trace_action(obs::kNA4Copy, c0, std::uint64_t(n_prb));
  return copy_prbs_aligned(src, src_prb, dst, dst_prb, n_prb, cfg);
}

bool MbContext::copy_prbs_misaligned(std::span<const std::uint8_t> src,
                                     int src_prb,
                                     std::span<std::uint8_t> dst, int dst_prb,
                                     int n_prb, int shift_sc,
                                     const CompConfig& cfg) {
  const double c0 = cost_ns_;
  cost_ns_ += double(n_prb) * (rt_->cfg_.work.per_prb_decompress_ns * 2 +
                               rt_->cfg_.work.per_prb_compress_ns);
  trace_action(obs::kNA4Copy, c0, std::uint64_t(n_prb));
  return copy_prbs_shifted(src, src_prb, dst, dst_prb, n_prb, shift_sc, cfg,
                           g_scratch);
}

void MbContext::charge(double ns) {
  const double c0 = cost_ns_;
  cost_ns_ += ns;
  trace_action(obs::kNCharge, c0);
}

PacketPtr MbContext::alloc_packet() {
  PacketPtr p = rt_->pool_.alloc();
  if (!p) rt_->telemetry_.inc(rt_->hot_.pool_exhausted);
  return p;
}

Telemetry& MbContext::telemetry() { return rt_->telemetry_; }
const FhContext& MbContext::fh() const { return rt_->cfg_.fh; }
const FhContext& MbContext::fh(int port) const {
  if (port >= 0 && port < int(rt_->port_fh_.size()))
    return rt_->port_fh_[std::size_t(port)];
  return rt_->cfg_.fh;
}

// ----------------------------------------------------------------------
// MiddleboxApp defaults
// ----------------------------------------------------------------------

void MiddleboxApp::on_other(int in_port, PacketPtr p, MbContext& ctx) {
  (void)in_port;
  ctx.drop(std::move(p));
}

// ----------------------------------------------------------------------
// MiddleboxRuntime
// ----------------------------------------------------------------------

MiddleboxRuntime::MiddleboxRuntime(Config cfg, MiddleboxApp& app)
    : cfg_(std::move(cfg)), app_(&app), pool_(cfg_.pool_capacity) {
  worker_free_at_.assign(std::size_t(std::max(1, cfg_.n_workers)), 0);
  hot_ = HotCounters{
      .pkts_forwarded = telemetry_.intern("pkts_forwarded"),
      .pkts_dropped = telemetry_.intern("pkts_dropped"),
      .pkts_replicated = telemetry_.intern("pkts_replicated"),
      .replicate_failures = telemetry_.intern("replicate_failures"),
      .cache_ops = telemetry_.intern("cache_ops"),
      .iq_merges = telemetry_.intern("iq_merges"),
      .pool_exhausted = telemetry_.intern("pool_exhausted"),
      .cplane_rx = telemetry_.intern("cplane_rx"),
      .uplane_rx = telemetry_.intern("uplane_rx"),
      .non_fh_rx = telemetry_.intern("non_fh_rx"),
      .cache_evicted = telemetry_.intern("cache_evicted"),
      .cache_stale = telemetry_.intern("cache_stale_dropped"),
  };
  for (std::size_t i = 0; i < kParseErrorCount; ++i)
    hot_.parse_reject[i] = telemetry_.intern(
        std::string("parse_reject_") + parse_error_name(ParseError(i)));
  hot_.cache_entries = telemetry_.intern_gauge("cache_entries");
  hot_.cache_evictions = telemetry_.intern_gauge("cache_evictions");
  cache_.set_max_entries(cfg_.cache_max_entries);
  obs_track_ = obs::Collector::instance().intern_track("mb." + cfg_.name);
}

int MiddleboxRuntime::add_port(const std::string& name, Port& port,
                               std::optional<FhContext> fh) {
  (void)name;
  std::unique_ptr<Driver> d;
  if (cfg_.driver == DriverKind::Dpdk)
    d = std::make_unique<PollDriver>(port, cfg_.driver_costs);
  else
    d = std::make_unique<IrqDriver>(port, cfg_.driver_costs);
  drivers_.push_back(std::move(d));
  port_fh_.push_back(fh.value_or(cfg_.fh));
  return int(drivers_.size()) - 1;
}

std::size_t MiddleboxRuntime::pick_worker() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < worker_free_at_.size(); ++i)
    if (worker_free_at_[i] < worker_free_at_[best]) best = i;
  return best;
}

void MiddleboxRuntime::begin_slot(std::int64_t slot) {
  // Per-symbol state must not leak across slots; real middleboxes bound
  // their caches to the fronthaul timing window. Entries still cached
  // here never found their combine partners (loss upstream) - surface
  // them before dropping.
  if (cache_.size() > 0) telemetry_.inc(hot_.cache_stale, cache_.size());
  if (cache_.evictions() > cache_evictions_seen_) {
    telemetry_.inc(hot_.cache_evicted,
                   cache_.evictions() - cache_evictions_seen_);
    cache_evictions_seen_ = cache_.evictions();
  }
  // Cache pressure at the barrier, before the slot-boundary clear: entry
  // occupancy shows combine partners that never arrived, evictions the
  // cumulative cap pressure (rb_cache_entries / rb_cache_evictions).
  telemetry_.set_gauge(hot_.cache_entries, double(cache_.size()));
  telemetry_.set_gauge(hot_.cache_evictions, double(cache_.evictions()));
  cache_.clear();
  last_slot_max_latency_ns_ = slot_max_latency_ns_;
  slot_max_latency_ns_ = 0;
  // Workers idle at slot boundaries.
  for (auto& w : worker_free_at_) w = 0;
  MbContext ctx(this, -1, slot, current_slot_start_ns_);
  app_->on_slot(slot, ctx);
  for (auto& [pkt, out] : ctx.tx_queue_) {
    if (out >= 0 && out < num_ports()) send_or_defer(out, std::move(pkt));
  }
}

void MiddleboxRuntime::send_or_defer(int out, PacketPtr pkt) {
  // Emitted here (not at flush) so the serial direct path and the
  // parallel deferred path trace the identical Tx instant: the
  // timestamp is the packet's modeled departure, fixed before deferral.
  if (obs::enabled())
    obs::emit(obs::Cat::Tx, obs::kNTx, obs_track_, pkt->rx_time_ns, 0,
              std::uint64_t(out));
  if (defer_tx_)
    deferred_tx_.emplace_back(std::move(pkt), out);
  else
    drivers_[std::size_t(out)]->tx(std::move(pkt));
}

bool MiddleboxRuntime::flush_deferred_tx() {
  if (deferred_tx_.empty()) return false;
  // Swap out first: tx() delivers inline, and a chained peer's handler
  // could re-enter this runtime.
  std::vector<std::pair<PacketPtr, int>> q;
  q.swap(deferred_tx_);
  for (auto& [pkt, out] : q) drivers_[std::size_t(out)]->tx(std::move(pkt));
  return true;
}

bool MiddleboxRuntime::parse_rx_frame(int in_port, const Packet& p,
                                      FhFrame& out, ParseError& perr) {
  perr = ParseError::None;
  if (parse_frame_into(p.data(), port_fh_[std::size_t(in_port)], out, &perr))
    return true;
  if (perr != ParseError::None && perr < ParseError::kCount)
    telemetry_.inc(hot_.parse_reject[std::size_t(perr)]);
  if (getenv("RB_DEBUG_PARSE")) {
    auto d = p.data();
    fprintf(stderr, "[parsefail] len=%zu bytes:", d.size());
    for (std::size_t i = 0; i < 48 && i < d.size(); ++i)
      fprintf(stderr, " %02x", d[i]);
    fprintf(stderr, "\n");
  }
  return false;
}

void MiddleboxRuntime::classify_frame(const FhFrame& f, FrameInfo& info) {
  const EaxcId& eaxc = f.ecpri.eaxc;
  info.eaxc = eaxc;
  info.prach = eaxc.du_port != 0;
  info.cplane = f.is_cplane();
  info.start_prb = 0;
  info.num_prb = 0;
  info.payload_off = 0;
  info.payload_len = 0;
  info.frag_tag = 0;
  if (info.cplane) {
    const CPlaneMsg& c = f.cplane();
    info.at = c.at;
    info.comp = c.comp;
    info.uplink = c.direction == Direction::Uplink;
    info.type3 = c.section_type == SectionType::Type3;
    info.n_sections =
        std::uint8_t(std::min<std::size_t>(c.sections.size(), 255));
    if (!c.sections.empty()) {
      info.start_prb = c.sections[0].start_prb;
      info.num_prb = c.sections[0].num_prb;
      info.frag_tag = std::uint8_t(c.sections[0].start_prb & 0xff);
    }
    info.cache_key = PacketCache::key(c.at, eaxc, true, info.frag_tag);
  } else {
    const UPlaneMsg& u = f.uplane();
    info.at = u.at;
    info.uplink = u.direction == Direction::Uplink;
    info.type3 = false;
    info.n_sections =
        std::uint8_t(std::min<std::size_t>(u.sections.size(), 255));
    if (!u.sections.empty()) {
      const USection& s0 = u.sections[0];
      info.comp = s0.comp;
      info.start_prb = s0.start_prb;
      info.num_prb = std::uint16_t(s0.num_prb);
      info.payload_off = std::uint16_t(s0.payload_offset);
      info.payload_len = std::uint16_t(s0.payload_len);
      info.frag_tag = std::uint8_t(s0.start_prb & 0xff);
    } else {
      info.comp = CompConfig{};
    }
    info.cache_key = PacketCache::key(u.at, eaxc, false, info.frag_tag);
  }
}

void MiddleboxRuntime::dispatch_packet(int in_port, PacketPtr p,
                                       FhFrame* frame, const FrameInfo* info,
                                       ParseError perr, std::int64_t slot,
                                       std::int64_t slot_start_ns) {
  const std::size_t w = pick_worker();
  const std::int64_t arrive = p->rx_time_ns;
  const std::int64_t start = std::max(arrive, worker_free_at_[w]);

  MbContext ctx(this, in_port, slot, slot_start_ns);
  ctx.start_ns_ = start;
  const std::size_t plen = p->len();

  const bool is_fh = frame != nullptr;
  const bool is_cp = is_fh && frame->is_cplane();
  if (!is_fh && obs::enabled())
    obs::emit(obs::Cat::Parse, obs::kNParseReject, obs_track_, start, 0,
              std::uint64_t(perr));
  ProcessingLocus locus = ProcessingLocus::Userspace;
  if (is_fh) {
    locus = app_->locus(*frame);
    ctx.info_ = info;
    app_->on_frame(in_port, std::move(p), *frame, ctx);
    ctx.info_ = nullptr;
  } else {
    app_->on_other(in_port, std::move(p), ctx);
  }
  if (cost_sampler_) cost_sampler_(frame, ctx.cost_ns_);

  // Account the accumulated work: CPU meter + queueing latency.
  const std::int64_t cost = std::int64_t(ctx.cost_ns_);
  drivers_[std::size_t(in_port)]->charge_handler(cost, locus);
  const std::int64_t done = start + cost;
  if (obs::enabled())
    obs::emit(obs::Cat::Packet,
              is_fh ? (is_cp ? obs::kNPacketC : obs::kNPacketU)
                    : obs::kNPacketOther,
              obs_track_, start, std::uint32_t(cost), plen);
  worker_free_at_[w] = done;
  slot_max_latency_ns_ = std::max(slot_max_latency_ns_, done - slot_start_ns);

  for (auto& [pkt, out] : ctx.tx_queue_) {
    if (out < 0 || out >= num_ports()) continue;
    // The packet leaves when its worker finished processing it. TX is
    // staged into the burst queue and flushed after the chunk's dispatch
    // pass, in this same per-packet emission order.
    pkt->rx_time_ns = std::max(pkt->rx_time_ns, done);
    burst_.txq.emplace_back(std::move(pkt), out);
  }
}

bool MiddleboxRuntime::pump(std::int64_t slot, std::int64_t slot_start_ns) {
  // Drain every port into the reused burst descriptor, then process in
  // virtual-arrival order: the worker queueing model requires monotonic
  // start times to be meaningful.
  Burst& b = burst_;
  b.pkt.clear();
  b.in_port.clear();
  b.order.clear();
  for (std::size_t i = 0; i < drivers_.size(); ++i) {
    const std::size_t got = drivers_[i]->rx_drain(b.pkt);
    b.in_port.insert(b.in_port.end(), got, std::int32_t(i));
  }
  const std::size_t total = b.pkt.size();
  if (total == 0) return pump_idle(slot, slot_start_ns);
  current_slot_start_ns_ = slot_start_ns;
  burst_size_hist_.record(total);

  // Sorting (rx_time, drain-sequence) pairs reproduces stable_sort's
  // by-arrival order without its temporary buffer: the sequence number
  // breaks ties exactly the way stability would.
  for (std::size_t s = 0; s < total; ++s)
    b.order.emplace_back(b.pkt[s]->rx_time_ns, std::uint32_t(s));
  std::sort(b.order.begin(), b.order.end());

  for (std::size_t base = 0; base < total; base += Burst::kChunk) {
    const std::size_t n = std::min(Burst::kChunk, total - base);
    burst_occ_hist_.record(n);

    // Parse + classify: fill the SoA section table, prefetching the next
    // packet's header bytes ahead of the parse cursor.
    std::size_t n_ok = 0, n_cp = 0, n_up = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j + 1 < n) {
        const Packet& nx = *b.pkt[b.order[base + j + 1].second];
        __builtin_prefetch(nx.data().data());
        __builtin_prefetch(nx.data().data() + 64);
      }
      const std::size_t s = b.order[base + j].second;
      b.ok[j] =
          parse_rx_frame(b.in_port[s], *b.pkt[s], b.frame[j], b.perr[j]);
      if (b.ok[j]) {
        classify_frame(b.frame[j], b.info[j]);
        ++n_ok;
        ++(b.info[j].cplane ? n_cp : n_up);
      }
    }

    // Per-burst amortized telemetry/obs: the counter sums are commutative
    // and nothing folds Cat::Parse into obs budgets, so one bump and one
    // Parse event per chunk are observationally equivalent to per-packet
    // emission (rejects stay per-packet, carrying the typed reason).
    if (n_cp > 0) telemetry_.inc(hot_.cplane_rx, n_cp);
    if (n_up > 0) telemetry_.inc(hot_.uplane_rx, n_up);
    if (n_ok < n) telemetry_.inc(hot_.non_fh_rx, n - n_ok);
    if (n_ok > 0 && obs::enabled())
      obs::emit(obs::Cat::Parse, obs::kNParseOk, obs_track_,
                b.order[base].first, 0, n_ok);

    // Act: dispatch in virtual-arrival order under the unchanged
    // per-packet worker/cost model, then flush the staged TX. Index loop:
    // a handler emitting during the flush (chained inline fabric) may
    // append to the queue it is draining.
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t s = b.order[base + j].second;
      dispatch_packet(b.in_port[s], std::move(b.pkt[s]),
                      b.ok[j] ? &b.frame[j] : nullptr,
                      b.ok[j] ? &b.info[j] : nullptr, b.perr[j], slot,
                      slot_start_ns);
    }
    for (std::size_t t = 0; t < b.txq.size(); ++t)
      send_or_defer(b.txq[t].second, std::move(b.txq[t].first));
    b.txq.clear();
  }
  return true;
}

bool MiddleboxRuntime::pump_idle(std::int64_t slot,
                                 std::int64_t slot_start_ns) {
  // All traffic of this phase has drained: give the app its deadline
  // callback. Anything it emits (e.g. a partial DAS combine) makes this
  // pump productive so downstream pumps run again.
  MbContext ctx(this, -1, slot, slot_start_ns);
  app_->on_pump_idle(slot, ctx);
  if (ctx.tx_queue_.empty()) return false;
  bool moved = false;
  for (auto& [pkt, out] : ctx.tx_queue_) {
    if (out < 0 || out >= num_ports()) continue;
    send_or_defer(out, std::move(pkt));
    moved = true;
  }
  return moved;
}

double MiddleboxRuntime::cpu_utilization(std::int64_t now_ns) const {
  if (cfg_.driver == DriverKind::Dpdk) return 1.0;
  const std::int64_t wall = now_ns - cpu_window_start_ns_;
  if (wall <= 0) return 0.0;
  std::int64_t busy = 0;
  for (const auto& d : drivers_) busy += d->meter().busy_ns();
  double u = double(busy) / double(wall);
  return u > 1.0 ? 1.0 : u;
}

void MiddleboxRuntime::reset_cpu(std::int64_t now_ns) {
  cpu_window_start_ns_ = now_ns;
  for (auto& d : drivers_) d->meter().reset();
}

void MiddleboxRuntime::save_state(state::StateWriter& w) const {
  telemetry_.save_state(w);
  cache_.save_state(w);
  w.i64(slot_max_latency_ns_);
  w.i64(last_slot_max_latency_ns_);
  w.i64(current_slot_start_ns_);
  w.i64(cpu_window_start_ns_);
  w.u64(cache_evictions_seen_);
  for (const BurstHist* h : {&burst_size_hist_, &burst_occ_hist_}) {
    for (std::uint64_t bkt : h->bucket) w.u64(bkt);
    w.u64(h->count);
    w.u64(h->sum);
  }
  app_->save_state(w);
}

void MiddleboxRuntime::load_state(state::StateReader& r) {
  telemetry_.load_state(r);
  cache_.load_state(r, pool_, [this](Packet& p, int in_port, FhFrame& f) {
    if (in_port < 0 || in_port >= int(port_fh_.size())) return false;
    ParseError perr = ParseError::None;
    return parse_rx_frame(in_port, p, f, perr);
  });
  slot_max_latency_ns_ = r.i64();
  last_slot_max_latency_ns_ = r.i64();
  current_slot_start_ns_ = r.i64();
  cpu_window_start_ns_ = r.i64();
  cache_evictions_seen_ = r.u64();
  for (BurstHist* h : {&burst_size_hist_, &burst_occ_hist_}) {
    for (std::uint64_t& bkt : h->bucket) bkt = r.u64();
    h->count = r.u64();
    h->sum = r.u64();
  }
  app_->load_state(r);
}

}  // namespace rb
