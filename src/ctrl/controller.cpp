#include "ctrl/controller.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "common/ctrl_stats.h"
#include "core/middlebox.h"
#include "obs/obs.h"

namespace rb::ctrl {

namespace {
constexpr std::size_t kLogCap = 256;  // bounded decision log
}

const char* verb_name(CtrlVerb v) {
  switch (v) {
    case CtrlVerb::SetUlIqWidth:
      return "set_ul_iq_width";
    case CtrlVerb::SetDasMember:
      return "set_das_member";
    case CtrlVerb::SetDmimoGate:
      return "set_dmimo_gate";
  }
  return "?";
}

std::string CtrlAction::str() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "slot=%lld link=%d %s value=%d enable=%d",
                static_cast<long long>(slot), link, verb_name(verb), value,
                int(enable));
  return buf;
}

AdaptationController::AdaptationController(CtrlConfig cfg)
    : cfg_(std::move(cfg)) {
  obs_name_ = obs::Collector::instance().intern_name("ctrl.decide");
  obs_track_ = obs::Collector::instance().intern_track(cfg_.name);
}

int AdaptationController::add_link(LinkSpec spec) {
  LinkState ls;
  ls.spec = std::move(spec);
  if (ls.spec.ul_stats) ls.seen = *ls.spec.ul_stats;
  links_.push_back(std::move(ls));
  ctrlstats::links_watched().store(links_.size(), std::memory_order_relaxed);
  return int(links_.size()) - 1;
}

void AdaptationController::sample(LinkState& ls) {
  if (!ls.spec.ul_stats) return;
  const FaultStats& now = *ls.spec.ul_stats;
  const FaultStats& old = ls.seen;
  // Per-slot deltas of the link's uplink-direction fault counters. The
  // fault layer mutates them in deterministic virtual-time order, and this
  // hook runs at the slot barrier, so the deltas are replay-stable.
  const std::uint64_t dropped = now.dropped() - old.dropped();
  const std::uint64_t attempts = dropped + (now.passed - old.passed) +
                                 (now.delayed - old.delayed) +
                                 (now.reordered - old.reordered) +
                                 (now.corrupted - old.corrupted);
  const std::uint64_t delayed = now.delayed - old.delayed;
  const std::uint64_t delay_ns = now.delay_ns_total - old.delay_ns_total;
  ls.seen = now;
  if (attempts == 0) return;  // nothing flowed: keep the EWMAs frozen
  const double loss_sample = double(dropped) / double(attempts);
  // Mean injected one-way delay over the packets that actually flowed: a
  // link that delays everything by 50us reads ~50us here regardless of
  // offered load.
  const double delay_sample =
      double(delay_ns) / double(delayed > 0 ? delayed : attempts);
  const double a = cfg_.alpha;
  ls.loss_ewma += a * (loss_sample - ls.loss_ewma);
  ls.delay_ewma_ns += a * (delay_sample - ls.delay_ewma_ns);
  if (ls.spec.rt) {
    std::uint64_t rejects = 0;
    for (const auto& [k, v] : ls.spec.rt->telemetry().counters())
      if (k.rfind("parse_reject_", 0) == 0) rejects += v;
    const double reject_sample = double(rejects - ls.seen_rejects);
    ls.seen_rejects = rejects;
    ls.reject_ewma += a * (reject_sample - ls.reject_ewma);
  }
}

bool AdaptationController::apply(LinkState& ls, CtrlAction a) {
  if (!ls.spec.actuate || !ls.spec.actuate(a)) return false;
  ++ls.actions;
  ++actions_applied_;
  ls.last_action_slot = a.slot;
  log_.push_back(a);
  if (log_.size() > kLogCap) log_.erase(log_.begin());
  return true;
}

void AdaptationController::decide(LinkState& ls, int index,
                                  std::int64_t slot) {
  const bool over_eject = ls.delay_ewma_ns >= double(cfg_.delay_eject_ns) ||
                          ls.loss_ewma >= cfg_.loss_eject;
  const bool over_reduce = ls.loss_ewma >= cfg_.loss_reduce;
  const bool healthy = ls.loss_ewma <= cfg_.loss_recover &&
                       ls.delay_ewma_ns <= double(cfg_.delay_recover_ns);
  if (over_eject || over_reduce) {
    ++ls.breach_streak;
    ls.healthy_streak = 0;
  } else if (healthy) {
    ls.breach_streak = 0;
    ++ls.healthy_streak;
  } else {
    ls.breach_streak = 0;
    ls.healthy_streak = 0;
  }
  const bool dwell_ok = slot - ls.last_action_slot >= cfg_.dwell_slots;
  if (!dwell_ok) return;

  if (ls.breach_streak >= cfg_.hold_slots) {
    // Escalation ladder: shed mantissa bits first; a link past the
    // latency budget (or in deep loss) is ejected from its set outright.
    if (over_eject && cfg_.enable_membership &&
        ls.mode != LinkMode::Ejected) {
      CtrlAction a{ls.spec.eject_verb, index, 0, /*enable=*/false, slot};
      if (apply(ls, a)) ls.mode = LinkMode::Ejected;
      return;
    }
    if (over_reduce && cfg_.enable_width && !ls.width_reduced &&
        ls.mode == LinkMode::Healthy) {
      CtrlAction a{CtrlVerb::SetUlIqWidth, index, cfg_.degraded_iq_width,
                   /*enable=*/true, slot};
      if (apply(ls, a)) {
        ls.width_reduced = true;
        ls.mode = LinkMode::WidthReduced;
      }
      return;
    }
    return;
  }
  if (ls.healthy_streak >= cfg_.recover_hold_slots) {
    // De-escalate one rung at a time: readmit first, restore width last.
    if (ls.mode == LinkMode::Ejected && cfg_.enable_membership) {
      CtrlAction a{ls.spec.eject_verb, index, 0, /*enable=*/true, slot};
      if (apply(ls, a))
        ls.mode = ls.width_reduced ? LinkMode::WidthReduced
                                   : LinkMode::Healthy;
      return;
    }
    if (ls.width_reduced && cfg_.enable_width) {
      CtrlAction a{CtrlVerb::SetUlIqWidth, index, ls.spec.nominal_iq_width,
                   /*enable=*/true, slot};
      if (apply(ls, a)) {
        ls.width_reduced = false;
        ls.mode = LinkMode::Healthy;
      }
      return;
    }
  }
}

void AdaptationController::publish_stats() const {
  std::uint64_t degraded = 0, ejected = 0;
  for (const auto& ls : links_) {
    if (ls.width_reduced) ++degraded;
    if (ls.mode == LinkMode::Ejected) ++ejected;
  }
  ctrlstats::links_degraded().store(degraded, std::memory_order_relaxed);
  ctrlstats::links_ejected().store(ejected, std::memory_order_relaxed);
  ctrlstats::decisions_total().store(decision_slots_,
                                     std::memory_order_relaxed);
  ctrlstats::actions_total().store(actions_applied_,
                                   std::memory_order_relaxed);
}

void AdaptationController::on_slot(std::int64_t slot) {
  // Wall-clock bracket around the decision pass: observability only (the
  // ISSUE's "decision latency traced in obs"); decisions themselves are a
  // pure function of virtual-time counters.
  const auto t0 = std::chrono::steady_clock::now();
  ++decision_slots_;
  if (auto_enabled_) {
    for (std::size_t i = 0; i < links_.size(); ++i) {
      sample(links_[i]);
      decide(links_[i], int(i), slot);
    }
  } else {
    for (auto& ls : links_) sample(ls);
  }
  publish_stats();
  const auto wall = std::uint64_t(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  ctrlstats::decision_ns_last().store(wall, std::memory_order_relaxed);
  ctrlstats::decision_ns_sum().fetch_add(wall, std::memory_order_relaxed);
  iqstats::raise_hwm(ctrlstats::decision_ns_hwm(), wall);
  if (obs::enabled()) {
    // A Packet-category span folds into the per-track processing-latency
    // histogram at commit, giving p50/p99 decision latency per controller.
    obs::emit(obs::Cat::Packet, obs_name_, obs_track_,
              slot * slot_duration_ns(cfg_.scs), std::uint32_t(wall),
              links_.size());
  }
}

std::string AdaptationController::dump() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s.decision_slots=%llu\n%s.actions=%llu\n",
                cfg_.name.c_str(),
                static_cast<unsigned long long>(decision_slots_),
                cfg_.name.c_str(),
                static_cast<unsigned long long>(actions_applied_));
  out += buf;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const LinkState& ls = links_[i];
    const char* mode = ls.mode == LinkMode::Healthy       ? "healthy"
                       : ls.mode == LinkMode::WidthReduced ? "width_reduced"
                                                           : "ejected";
    std::snprintf(buf, sizeof(buf),
                  "%s.link%zu[%s] mode=%s loss=%.6f delay_ns=%.1f "
                  "rejects=%.3f breach=%d healthy=%d actions=%llu\n",
                  cfg_.name.c_str(), i, ls.spec.name.c_str(), mode,
                  ls.loss_ewma, ls.delay_ewma_ns, ls.reject_ewma,
                  ls.breach_streak, ls.healthy_streak,
                  static_cast<unsigned long long>(ls.actions));
    out += buf;
  }
  for (const auto& a : log_) out += cfg_.name + ".log " + a.str() + "\n";
  return out;
}

std::string AdaptationController::ctrl_mgmt(const std::string& cmd) {
  std::istringstream is(cmd);
  std::string verb;
  is >> verb;
  if (verb.empty() || verb == "status") return dump();
  if (verb == "links") {
    std::ostringstream os;
    for (std::size_t i = 0; i < links_.size(); ++i)
      os << i << " " << links_[i].spec.name << "\n";
    return os.str();
  }
  if (verb == "auto") {
    std::string v;
    is >> v;
    if (v == "on" || v == "off") {
      auto_enabled_ = v == "on";
      return "ok";
    }
    return "usage: auto on|off";
  }
  if (verb == "force") {
    int link = -1;
    std::string what;
    is >> link >> what;
    if (link < 0 || link >= int(links_.size())) return "bad link index";
    LinkState& ls = links_[std::size_t(link)];
    const std::int64_t slot = 0;  // operator actions are not slot-stamped
    if (what == "eject") {
      CtrlAction a{ls.spec.eject_verb, link, 0, false, slot};
      if (!apply(ls, a)) return "refused";
      ls.mode = LinkMode::Ejected;
      return "ok";
    }
    if (what == "admit") {
      CtrlAction a{ls.spec.eject_verb, link, 0, true, slot};
      if (!apply(ls, a)) return "refused";
      ls.mode =
          ls.width_reduced ? LinkMode::WidthReduced : LinkMode::Healthy;
      return "ok";
    }
    if (what == "width") {
      int w = 0;
      if (!(is >> w)) return "usage: force <link> width <bits>";
      CtrlAction a{CtrlVerb::SetUlIqWidth, link, w, true, slot};
      if (!apply(ls, a)) return "refused";
      ls.width_reduced = w != ls.spec.nominal_iq_width;
      if (ls.mode != LinkMode::Ejected)
        ls.mode = ls.width_reduced ? LinkMode::WidthReduced
                                   : LinkMode::Healthy;
      return "ok";
    }
    return "usage: force <link> eject|admit|width <bits>";
  }
  return "unknown ctrl subcommand (status|links|auto|force)";
}


void AdaptationController::save_state(state::StateWriter& w) const {
  w.u32(std::uint32_t(links_.size()));
  for (const LinkState& ls : links_) {
    const FaultStats& f = ls.seen;
    w.u64(f.iid_loss);
    w.u64(f.burst_loss);
    w.u64(f.flap_loss);
    w.u64(f.delayed);
    w.u64(f.delay_ns_total);
    w.u64(f.duplicated);
    w.u64(f.reordered);
    w.u64(f.corrupted);
    w.u64(f.held_released);
    w.u64(f.passed);
    w.u64(ls.seen_rejects);
    w.f64(ls.loss_ewma);
    w.f64(ls.delay_ewma_ns);
    w.f64(ls.reject_ewma);
    w.i32(ls.breach_streak);
    w.i32(ls.healthy_streak);
    w.i64(ls.last_action_slot);
    w.u8(std::uint8_t(ls.mode));
    w.b(ls.width_reduced);
    w.u64(ls.actions);
  }
  w.u32(std::uint32_t(log_.size()));
  for (const CtrlAction& a : log_) {
    w.u8(std::uint8_t(a.verb));
    w.i32(a.link);
    w.i32(a.value);
    w.b(a.enable);
    w.i64(a.slot);
  }
  w.u64(actions_applied_);
  w.u64(decision_slots_);
  w.b(auto_enabled_);
}

void AdaptationController::load_state(state::StateReader& r) {
  if (r.count(138) != links_.size()) {
    r.fail(state::StateError::kMismatch);
    return;
  }
  for (LinkState& ls : links_) {
    FaultStats& f = ls.seen;
    f.iid_loss = r.u64();
    f.burst_loss = r.u64();
    f.flap_loss = r.u64();
    f.delayed = r.u64();
    f.delay_ns_total = r.u64();
    f.duplicated = r.u64();
    f.reordered = r.u64();
    f.corrupted = r.u64();
    f.held_released = r.u64();
    f.passed = r.u64();
    ls.seen_rejects = r.u64();
    ls.loss_ewma = r.f64();
    ls.delay_ewma_ns = r.f64();
    ls.reject_ewma = r.f64();
    ls.breach_streak = r.i32();
    ls.healthy_streak = r.i32();
    ls.last_action_slot = r.i64();
    std::uint8_t mode = r.u8();
    if (mode > std::uint8_t(LinkMode::Ejected)) {
      r.fail(state::StateError::kBadValue);
      return;
    }
    ls.mode = LinkMode(mode);
    ls.width_reduced = r.b();
    ls.actions = r.u64();
  }
  log_.clear();
  std::uint32_t n_log = r.count(18);
  if (n_log > kLogCap) {
    r.fail(state::StateError::kBadValue);
    return;
  }
  for (std::uint32_t i = 0; i < n_log && r.ok(); ++i) {
    CtrlAction a;
    std::uint8_t verb = r.u8();
    if (verb > std::uint8_t(CtrlVerb::SetDmimoGate)) {
      r.fail(state::StateError::kBadValue);
      return;
    }
    a.verb = CtrlVerb(verb);
    a.link = r.i32();
    a.value = r.i32();
    a.enable = r.b();
    a.slot = r.i64();
    log_.push_back(a);
  }
  actions_applied_ = r.u64();
  decision_slots_ = r.u64();
  auto_enabled_ = r.b();
}

void AdaptationController::retune(const CtrlConfig& cfg) {
  CtrlConfig next = cfg;
  next.name = cfg_.name;  // structural identity is not retunable
  next.scs = cfg_.scs;
  cfg_ = next;
}

}  // namespace rb::ctrl
