// Typed actuation interface of the adaptation controller.
//
// The controller never pokes middlebox internals directly: every decision
// is expressed as a CtrlAction and handed to the actuator the deployment
// registered for that link. Actions are applied at the slot barrier (the
// engine's begin-of-slot hook runs on the coordinator with all workers
// parked), so serial and parallel runs observe identical knob settings for
// every packet of a slot.
#pragma once

#include <cstdint>
#include <string>

namespace rb::ctrl {

enum class CtrlVerb : std::uint8_t {
  /// Adapt the link's uplink BFP mantissa width (value = new iq_width).
  SetUlIqWidth,
  /// Admit (enable) or eject (disable) the RU from its DAS combine set.
  SetDasMember,
  /// Open (enable) or close (disable) the RU's dMIMO participation gate.
  SetDmimoGate,
};

const char* verb_name(CtrlVerb v);

struct CtrlAction {
  CtrlVerb verb = CtrlVerb::SetUlIqWidth;
  int link = -1;          // controller link index the decision came from
  int value = 0;          // SetUlIqWidth: the new mantissa width
  bool enable = true;     // SetDasMember/SetDmimoGate: participate or not
  std::int64_t slot = 0;  // slot the action takes effect

  std::string str() const;
};

}  // namespace rb::ctrl
