// Closed-loop fronthaul adaptation controller (ROADMAP item: "close the
// loop").
//
// A deterministic, slot-synchronous control loop: every slot, at the
// engine's begin-of-slot barrier, the controller samples per-link quality
// signals (fault-layer loss/delay counters, runtime parse rejects,
// last-slot latency watermarks), folds them into EWMAs, runs a hysteresis
// policy and actuates typed CtrlActions - degrade the link's BFP width,
// eject the RU from its DAS combine set (or gate its dMIMO participation),
// and readmit/restore once the link heals.
//
// Determinism contract (DESIGN.md section 4g):
//  * Sensors are virtual-time counters only; all arithmetic is fixed-order
//    double EWMA updates on the coordinator thread. Wall-clock feeds
//    nothing but the obs decision span and the ctrlstats watermarks.
//  * Actions apply at the slot barrier, before any entity or middlebox
//    touches the new slot, so serial and parallel(n) runs see identical
//    knob settings for every packet.
//  * dump() renders the full controller state in fixed order for the
//    chaos-suite determinism snapshots.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/mgmt.h"
#include "ctrl/actions.h"
#include "net/fault.h"
#include "state/serialize.h"

namespace rb {
class MiddleboxRuntime;
}

namespace rb::ctrl {

/// Controller policy knobs. Thresholds act on EWMAs of per-slot samples;
/// hysteresis (hold/recover streaks + per-link dwell) keeps the loop from
/// flapping on bursty noise.
struct CtrlConfig {
  std::string name = "ctrl";
  Scs scs = Scs::kHz30;  // for slot -> virtual-time decision timestamps
  double alpha = 1.0 / 16;  // EWMA smoothing factor

  // Width adaptation: sustained loss above `loss_reduce` trades mantissa
  // bits for headroom (the paper's shaping-to-fronthaul-quality knob).
  double loss_reduce = 0.015;
  int degraded_iq_width = 7;

  // Ejection: a link whose injected one-way delay EWMA exceeds the DU
  // latency budget poisons every combine it participates in (the merged
  // uplink inherits the last copy's lateness); drop it from the set.
  std::int64_t delay_eject_ns = 25'000;
  double loss_eject = 0.20;

  // Recovery: readmit after a sustained healthy streak.
  double loss_recover = 0.005;
  std::int64_t delay_recover_ns = 8'000;

  int hold_slots = 8;           // consecutive breach slots before acting
  int recover_hold_slots = 64;  // consecutive healthy slots before undoing
  int dwell_slots = 40;         // min slots between actions on one link

  bool enable_width = true;
  bool enable_membership = true;
};

/// One supervised link: where its quality signals come from and how to
/// actuate decisions about it.
struct LinkSpec {
  std::string name;
  /// Uplink-direction fault counters (the quality tap). Required.
  const FaultStats* ul_stats = nullptr;
  /// Optional: the middlebox runtime the link feeds, for parse-reject and
  /// slot-latency sensors.
  MiddleboxRuntime* rt = nullptr;
  /// Applies a CtrlAction to the real knob; returns false if refused
  /// (e.g. ejecting the last active DAS member).
  std::function<bool(const CtrlAction&)> actuate;
  /// Verb used to eject/readmit this link (DAS membership or dMIMO gate).
  CtrlVerb eject_verb = CtrlVerb::SetDasMember;
  int nominal_iq_width = 9;
};

class AdaptationController final : public CtrlMgmtHandler {
 public:
  explicit AdaptationController(CtrlConfig cfg);

  /// Register a supervised link; returns its index.
  int add_link(LinkSpec spec);

  /// Slot-barrier decision pass. Register with
  /// SlotEngine::add_begin_slot_hook (Deployment::add_controller does).
  void on_slot(std::int64_t slot);

  /// Per-link state, exposed for tests and the bench.
  enum class LinkMode : std::uint8_t { Healthy, WidthReduced, Ejected };
  LinkMode mode(int link) const { return links_[std::size_t(link)].mode; }
  double loss_ewma(int link) const {
    return links_[std::size_t(link)].loss_ewma;
  }
  double delay_ewma_ns(int link) const {
    return links_[std::size_t(link)].delay_ewma_ns;
  }
  std::uint64_t actions_applied() const { return actions_applied_; }
  int num_links() const { return int(links_.size()); }
  const CtrlConfig& config() const { return cfg_; }

  /// Fixed-order dump of the full controller state, for determinism
  /// snapshots (chaos fingerprints) and the mgmt "ctrl status" verb.
  std::string dump() const;

  // CtrlMgmtHandler: "status" | "links" | "auto on|off" |
  // "force <link> eject|admit|width <w>".
  std::string ctrl_mgmt(const std::string& cmd) override;

  /// Checkpoint EWMAs, hysteresis streaks, modes and the decision log.
  /// Link topology (specs) is config: restore requires the same links in
  /// the same order and fails with kMismatch otherwise.
  void save_state(state::StateWriter& w) const;
  void load_state(state::StateReader& r);

  /// Live-retune of the policy thresholds (hitless reconfiguration). The
  /// structural fields (name, scs) are kept; per-link state is untouched,
  /// so streaks re-evaluate against the new thresholds next slot.
  void retune(const CtrlConfig& cfg);

 private:
  struct LinkState {
    LinkSpec spec;
    FaultStats seen{};               // previous-slot counter snapshot
    std::uint64_t seen_rejects = 0;  // previous-slot parse-reject total
    double loss_ewma = 0;
    double delay_ewma_ns = 0;
    double reject_ewma = 0;
    int breach_streak = 0;
    int healthy_streak = 0;
    std::int64_t last_action_slot = -(1 << 30);
    LinkMode mode = LinkMode::Healthy;
    bool width_reduced = false;
    std::uint64_t actions = 0;
  };

  void sample(LinkState& ls);
  void decide(LinkState& ls, int index, std::int64_t slot);
  bool apply(LinkState& ls, CtrlAction a);
  void publish_stats() const;

  CtrlConfig cfg_;
  std::vector<LinkState> links_;
  std::vector<CtrlAction> log_;  // bounded decision log (newest last)
  std::uint64_t actions_applied_ = 0;
  std::uint64_t decision_slots_ = 0;
  bool auto_enabled_ = true;
  std::uint16_t obs_name_ = 0;   // interned "ctrl.decide"
  std::uint16_t obs_track_ = 0;  // interned track (cfg_.name)
};

}  // namespace rb::ctrl
