// Low-overhead tracing substrate: fixed-size trace events and the
// lock-free per-worker ring they travel through.
//
// Every instrumentation point in the stack (slot engine, middlebox
// runtime, ports, fault layer, apps) emits 32-byte POD events stamped
// with *virtual* nanoseconds — the simulation's modeled time, not wall
// time. Because modeled time is deterministic under any ExecPolicy, a
// serial run and a parallel(4) run of the same seed emit the same event
// multiset; the collector merges the per-thread rings at the slot
// barrier with a total order, so the two runs produce equivalent traces
// (asserted by tests/test_obs.cpp).
//
// The ring mirrors the exec::SpscRing discipline (single producer = the
// owning thread, single consumer = the coordinator at the barrier,
// cache-line-padded Lamport indices) but adds overflow accounting: a
// full ring drops the event and counts it instead of blocking the hot
// path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rb::obs {

inline constexpr std::size_t kCacheLine = 64;

/// Span taxonomy. Categories drive budget attribution and export
/// grouping; fine-grained identity lives in the interned `name` field.
enum class Cat : std::uint8_t {
  Slot,     // one engine slot (dur = numerology slot duration)
  Symbol,   // one OFDM symbol within a slot
  Packet,   // one middlebox handler invocation (dur = modeled cost)
  Parse,    // instant: fronthaul parse outcome (arg = ParseError on reject)
  Action,   // one A1-A4 action inside a handler
  Combine,  // app-declared phase (DAS combine, RU-share mux, ...)
  Tx,       // instant: packet handed to a driver for transmission
  Link,     // one wire traversal (dur = link latency)
  Fault,    // instant: fault-layer perturbation (loss/delay/corrupt/...)
};

const char* cat_name(Cat c);

/// One trace record. 32 bytes, trivially copyable, written lock-free.
struct TraceEvent {
  std::int64_t ts_ns = 0;    // virtual start time
  std::uint64_t arg = 0;     // event-specific payload (bytes, reason, ...)
  std::uint32_t dur_ns = 0;  // span length (0 for instants)
  std::uint16_t name = 0;    // interned name id (obs::FixedName or dynamic)
  std::uint16_t track = 0;   // interned track id (runtime, port, link dir)
  Cat cat = Cat::Slot;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};
static_assert(sizeof(TraceEvent) <= 32, "keep the hot-path record small");

/// Deterministic total order for the barrier merge: virtual time first,
/// then stable structural tie-breaks, so identical event multisets sort
/// to identical sequences regardless of which thread's ring they sat in.
inline bool event_less(const TraceEvent& a, const TraceEvent& b) {
  if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
  if (a.cat != b.cat) return a.cat < b.cat;
  if (a.track != b.track) return a.track < b.track;
  if (a.name != b.name) return a.name < b.name;
  if (a.dur_ns != b.dur_ns) return a.dur_ns < b.dur_ns;
  return a.arg < b.arg;
}

/// Bounded single-producer trace ring. The owning thread pushes; the
/// coordinator drains at the slot barrier. Overflow drops (counted), so
/// a traffic burst can never stall packet processing.
class TraceRing {
 public:
  explicit TraceRing(std::size_t min_capacity = 1 << 15)
      : mask_(round_up_pow2(min_capacity) - 1),
        slots_(round_up_pow2(min_capacity)) {}

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer side. Full ring: drop + count, never block.
  void push(const TraceEvent& e) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    slots_[tail & mask_] = e;
    tail_.store(tail + 1, std::memory_order_release);
  }

  /// Consumer side: pop everything currently visible into `out`.
  void drain(std::vector<TraceEvent>& out) {
    std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    while (head != tail) {
      out.push_back(slots_[head & mask_]);
      ++head;
    }
    head_.store(head, std::memory_order_release);
  }

  /// Events dropped to overflow since construction (producer-written,
  /// read by the collector at the barrier).
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  static constexpr std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p < 2 ? 2 : p;
  }

 private:
  const std::size_t mask_;
  std::vector<TraceEvent> slots_;

  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
  // Producer-owned line: tail index + cached consumer index + drop count.
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
  std::size_t head_cache_ = 0;
  std::atomic<std::uint64_t> dropped_{0};
  char pad_end_[kCacheLine]{};
};

}  // namespace rb::obs
