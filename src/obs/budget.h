// Slot-budget accounting: where one slot's modeled time went, measured
// against the numerology-derived deadline (500 us at 30 kHz SCS).
//
// Built by the collector at the slot barrier from that slot's merged
// trace events, so the totals are a pure function of the event multiset:
// serial and parallel(4) runs of the same seed produce identical budget
// vectors (tests/test_obs.cpp BudgetSerialMatchesParallel).
#pragma once

#include <cstdint>

namespace rb::obs {

struct SlotBudget {
  std::int64_t slot = 0;
  std::int64_t t0_ns = 0;        // virtual slot start
  std::int64_t deadline_ns = 0;  // numerology slot duration (or override)

  // Modeled-time attribution (ns), from span durations.
  std::uint64_t busy_ns = 0;     // total middlebox handler time (Packet)
  std::uint64_t a1_ns = 0;       // forward/drop
  std::uint64_t a2_ns = 0;       // replicate
  std::uint64_t a3_ns = 0;       // cache ops
  std::uint64_t a4_ns = 0;       // payload merge/copy/rewrite
  std::uint64_t charge_ns = 0;   // explicit app charges
  std::uint64_t combine_ns = 0;  // app-declared phases (DAS combine, mux)
  std::uint64_t link_ns = 0;     // wire time crossed this slot

  /// Latest packet completion relative to slot start; the deadline
  /// check the paper's critical-path claim hinges on.
  std::int64_t max_completion_ns = 0;
  bool deadline_miss = false;

  std::uint32_t events = 0;      // merged events this slot
  // Range of this slot's events in the collector's retained trace
  // (ev_begin == ev_end when tracing is off or the cap was hit).
  std::uint64_t ev_begin = 0;
  std::uint64_t ev_end = 0;

  /// Fraction of the slot deadline consumed by middlebox processing.
  double budget_pct() const {
    return deadline_ns > 0 ? 100.0 * double(busy_ns) / double(deadline_ns)
                           : 0.0;
  }

  friend bool operator==(const SlotBudget&, const SlotBudget&) = default;
};

}  // namespace rb::obs
