#include "obs/obs.h"

#include <algorithm>
#include <cassert>

namespace rb::obs {

const char* hist_kind_name(HistKind k) {
  switch (k) {
    case HistKind::MbProc: return "mb_proc";
    case HistKind::LinkDelay: return "link_delay";
    case HistKind::Ipg: return "ipg";
    case HistKind::FaultDelay: return "fault_delay";
  }
  return "?";
}

Collector& Collector::instance() {
  static Collector c;
  return c;
}

Collector::Collector() {
  // Fixed names must land at their FixedName enum values.
  static const char* kFixed[] = {
      "slot",          "symbol",        "packet.cplane", "packet.uplane",
      "packet.other",  "parse.ok",      "parse.reject",  "tx",
      "link",          "a1.forward",    "a1.drop",       "a2.replicate",
      "a3.cache",      "a4.merge",      "a4.copy",       "a4.rewrite",
      "charge",        "fault.loss",    "fault.burst",   "fault.flap",
      "fault.delay",   "fault.corrupt", "fault.dup",     "fault.reorder",
  };
  static_assert(sizeof(kFixed) / sizeof(kFixed[0]) == kNFixedNameCount);
  for (const char* n : kFixed) intern_name(n);
  [[maybe_unused]] const std::uint16_t eng = intern_track("engine");
  assert(eng == kTrackEngine);
}

void Collector::start(const ObsConfig& cfg) {
  reset();
  cfg_ = cfg;
  detail::g_enabled.store(true, std::memory_order_release);
}

void Collector::stop() {
  detail::g_enabled.store(false, std::memory_order_release);
}

void Collector::reset() {
  stop();
  std::lock_guard<std::mutex> lk(reg_mu_);
  // Flush stale events out of every ring; the rings themselves (and the
  // thread_local pointers into them) stay alive across runs.
  scratch_.clear();
  for (auto& r : rings_) r->drain(scratch_);
  scratch_.clear();
  ring_dropped_seen_ = 0;
  for (auto& r : rings_) ring_dropped_seen_ += r->dropped();
  events_.clear();
  budgets_.clear();
  hists_.clear();
  last_arrival_.clear();
  slots_ = misses_ = dropped_ = total_events_ = 0;
}

std::uint16_t Collector::intern_name(const std::string& n) {
  std::lock_guard<std::mutex> lk(reg_mu_);
  auto it = name_idx_.find(n);
  if (it != name_idx_.end()) return it->second;
  const auto id = std::uint16_t(names_.size());
  names_.push_back(n);
  name_idx_.emplace(n, id);
  return id;
}

std::uint16_t Collector::intern_track(const std::string& n) {
  std::lock_guard<std::mutex> lk(reg_mu_);
  auto it = track_idx_.find(n);
  if (it != track_idx_.end()) return it->second;
  const auto id = std::uint16_t(tracks_.size());
  tracks_.push_back(n);
  track_idx_.emplace(n, id);
  return id;
}

std::string Collector::name_str(std::uint16_t id) const {
  std::lock_guard<std::mutex> lk(reg_mu_);
  return id < names_.size() ? names_[id] : "?";
}

std::string Collector::track_str(std::uint16_t id) const {
  std::lock_guard<std::mutex> lk(reg_mu_);
  return id < tracks_.size() ? tracks_[id] : "?";
}

TraceRing& Collector::thread_ring() {
  thread_local TraceRing* ring = nullptr;
  if (!ring) {
    std::lock_guard<std::mutex> lk(reg_mu_);
    rings_.push_back(std::make_unique<TraceRing>(cfg_.ring_capacity));
    ring = rings_.back().get();
  }
  return *ring;
}

void Collector::emit(const TraceEvent& e) { thread_ring().push(e); }

LatencyHistogram& Collector::hist_slot(HistKind k, std::uint16_t track) {
  const std::uint32_t key =
      (std::uint32_t(k) << 16) | std::uint32_t(track);
  return hists_[key];
}

const LatencyHistogram* Collector::hist(HistKind k,
                                        std::uint16_t track) const {
  const std::uint32_t key =
      (std::uint32_t(k) << 16) | std::uint32_t(track);
  auto it = hists_.find(key);
  return it == hists_.end() ? nullptr : &it->second;
}

void Collector::commit_slot(std::int64_t slot, std::int64_t t0,
                            std::int64_t slot_duration_ns) {
  scratch_.clear();
  {
    std::lock_guard<std::mutex> lk(reg_mu_);
    std::uint64_t ring_dropped = 0;
    for (auto& r : rings_) {
      r->drain(scratch_);
      ring_dropped += r->dropped();
    }
    dropped_ += ring_dropped - ring_dropped_seen_;
    ring_dropped_seen_ = ring_dropped;
  }
  // Deterministic total order: the same event multiset sorts to the same
  // sequence whether it came from one ring or eight.
  std::sort(scratch_.begin(), scratch_.end(), event_less);

  SlotBudget b;
  b.slot = slot;
  b.t0_ns = t0;
  b.deadline_ns = cfg_.deadline_ns > 0 ? cfg_.deadline_ns : slot_duration_ns;
  for (const TraceEvent& e : scratch_) {
    switch (e.cat) {
      case Cat::Packet: {
        b.busy_ns += e.dur_ns;
        hist_slot(HistKind::MbProc, e.track).record(e.dur_ns);
        const std::int64_t done = e.ts_ns + e.dur_ns - t0;
        if (done > b.max_completion_ns) b.max_completion_ns = done;
        break;
      }
      case Cat::Action:
        switch (e.name) {
          case kNA1Forward:
          case kNA1Drop: b.a1_ns += e.dur_ns; break;
          case kNA2Replicate: b.a2_ns += e.dur_ns; break;
          case kNA3Cache: b.a3_ns += e.dur_ns; break;
          case kNA4Merge:
          case kNA4Copy:
          case kNA4Rewrite: b.a4_ns += e.dur_ns; break;
          case kNCharge: b.charge_ns += e.dur_ns; break;
          default: break;
        }
        break;
      case Cat::Combine: b.combine_ns += e.dur_ns; break;
      case Cat::Link: {
        b.link_ns += e.dur_ns;
        hist_slot(HistKind::LinkDelay, e.track).record(e.dur_ns);
        const std::int64_t arrival = e.ts_ns + e.dur_ns;
        auto [it, fresh] = last_arrival_.try_emplace(e.track, arrival);
        if (!fresh) {
          hist_slot(HistKind::Ipg, e.track).record(arrival - it->second);
          it->second = arrival;
        }
        break;
      }
      case Cat::Fault:
        if (e.name == kNFaultDelay)
          hist_slot(HistKind::FaultDelay, e.track)
              .record(std::int64_t(e.arg));
        break;
      default:
        break;
    }
  }
  b.deadline_miss = b.max_completion_ns > b.deadline_ns;
  if (b.deadline_miss) ++misses_;
  b.events = std::uint32_t(scratch_.size());
  total_events_ += scratch_.size();

  b.ev_begin = events_.size();
  if (cfg_.tracing) {
    const std::size_t room =
        cfg_.max_trace_events > events_.size()
            ? cfg_.max_trace_events - events_.size()
            : 0;
    const std::size_t take = std::min(room, scratch_.size());
    events_.insert(events_.end(), scratch_.begin(),
                   scratch_.begin() + std::ptrdiff_t(take));
    dropped_ += scratch_.size() - take;
  }
  b.ev_end = events_.size();

  budgets_.push_back(b);
  ++slots_;
}

void slot_spans(std::int64_t slot, std::int64_t t0,
                std::int64_t slot_duration_ns) {
  if (!enabled()) return;
  emit(Cat::Slot, kNSlot, kTrackEngine, t0,
       std::uint32_t(slot_duration_ns), std::uint64_t(slot));
  constexpr int kSymbols = 14;
  const std::int64_t sym = slot_duration_ns / kSymbols;
  for (int s = 0; s < kSymbols; ++s) {
    emit(Cat::Symbol, kNSymbol, kTrackEngine, t0 + s * sym,
         std::uint32_t(sym), std::uint64_t(s));
  }
}

}  // namespace rb::obs
