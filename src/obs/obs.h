// Observability collector: the process-wide sink every instrumentation
// point writes to.
//
// Hot path: one relaxed atomic load (`obs::enabled()`) and, when on, one
// lock-free push into the calling thread's TraceRing. Disabled, every
// instrumentation site reduces to that single predictable branch, so the
// simulation's modeled results and its wall-clock cost are untouched
// (bench_obs_overhead gates the enabled cost at <5%).
//
// Barrier: SlotEngine calls Collector::commit_slot() once per slot, on
// the coordinator thread, after every worker has parked. The collector
// drains all rings, sorts the slot's events into a deterministic total
// order, folds them into per-slot budgets and mergeable histograms, and
// appends them to the retained trace (bounded; overflow counted). All
// derived state is therefore a pure function of the event multiset and
// identical under ExecPolicy::serial and ::parallel(n).
//
// Name/track registries are interned once per process and survive
// start()/reset() so pre-cached ids (runtimes, ports, fault links, app
// statics) stay valid across runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/budget.h"
#include "obs/histogram.h"
#include "obs/trace.h"

namespace rb::obs {

struct ObsConfig {
  /// Retain raw events for export (budgets/histograms accrue regardless).
  bool tracing = true;
  /// Per-thread ring capacity (events); applies to rings created after
  /// start(). A ring must hold one slot's worth of one thread's events.
  std::size_t ring_capacity = 1 << 15;
  /// Cap on retained merged events; past it, events are dropped+counted.
  std::size_t max_trace_events = 1 << 20;
  /// Slot deadline override in ns; 0 derives it from the engine's SCS.
  std::int64_t deadline_ns = 0;
};

namespace detail {
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

/// Fast global gate read by every instrumentation site.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Pre-interned name ids, fixed by registration order in the collector
/// constructor so hot paths use compile-time constants.
enum FixedName : std::uint16_t {
  kNSlot = 0,
  kNSymbol,
  kNPacketC,      // C-plane handler invocation
  kNPacketU,      // U-plane handler invocation
  kNPacketOther,  // non-fronthaul handler invocation
  kNParseOk,
  kNParseReject,  // arg = ParseError index
  kNTx,
  kNLink,
  kNA1Forward,
  kNA1Drop,
  kNA2Replicate,
  kNA3Cache,
  kNA4Merge,
  kNA4Copy,
  kNA4Rewrite,
  kNCharge,
  kNFaultLoss,     // i.i.d. loss
  kNFaultBurst,    // Gilbert-Elliott loss
  kNFaultFlap,     // scheduled link-down loss
  kNFaultDelay,    // arg = injected extra ns
  kNFaultCorrupt,  // arg = flipped bits
  kNFaultDup,
  kNFaultReorder,
  kNFixedNameCount
};

/// Track 0 is always the slot engine.
inline constexpr std::uint16_t kTrackEngine = 0;

enum class HistKind : std::uint8_t {
  MbProc,      // per-middlebox handler latency (Packet span durations)
  LinkDelay,   // per-link one-way wire delay (Link span durations)
  Ipg,         // per-link inter-packet arrival gap
  FaultDelay,  // fault-injected extra delay
};

const char* hist_kind_name(HistKind k);

class Collector {
 public:
  static Collector& instance();

  /// Enable collection with a fresh dataset (registries survive).
  void start(const ObsConfig& cfg = {});
  /// Disable collection; accrued data stays readable/exportable.
  void stop();
  /// stop() + discard all accrued data (registries survive).
  void reset();

  const ObsConfig& config() const { return cfg_; }

  /// Intern a span name / track label (idempotent, cold path).
  std::uint16_t intern_name(const std::string& n);
  std::uint16_t intern_track(const std::string& n);
  std::string name_str(std::uint16_t id) const;
  std::string track_str(std::uint16_t id) const;

  /// Hot path: append to the calling thread's ring (registered lazily).
  void emit(const TraceEvent& e);

  /// Slot barrier (coordinator only, workers parked): drain rings, sort,
  /// fold into budgets/histograms, retain the trace.
  void commit_slot(std::int64_t slot, std::int64_t t0,
                   std::int64_t slot_duration_ns);

  // --- post-run accessors (coordinator / tests / exporters) ------------
  const std::vector<TraceEvent>& events() const { return events_; }
  const std::vector<SlotBudget>& budgets() const { return budgets_; }
  /// Histograms keyed by (kind, track); nullptr when never recorded.
  const LatencyHistogram* hist(HistKind k, std::uint16_t track) const;
  const std::map<std::uint32_t, LatencyHistogram>& hists() const {
    return hists_;
  }
  static HistKind hist_key_kind(std::uint32_t key) {
    return HistKind(key >> 16);
  }
  static std::uint16_t hist_key_track(std::uint32_t key) {
    return std::uint16_t(key & 0xffff);
  }

  std::uint64_t slots_committed() const { return slots_; }
  std::uint64_t deadline_misses() const { return misses_; }
  /// Events lost to ring overflow plus retained-trace cap overflow.
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t total_events() const { return total_events_; }

 private:
  Collector();

  TraceRing& thread_ring();
  LatencyHistogram& hist_slot(HistKind k, std::uint16_t track);

  ObsConfig cfg_{};

  mutable std::mutex reg_mu_;  // name/track/ring registries
  std::unordered_map<std::string, std::uint16_t> name_idx_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint16_t> track_idx_;
  std::vector<std::string> tracks_;
  std::vector<std::unique_ptr<TraceRing>> rings_;
  std::uint64_t ring_dropped_seen_ = 0;

  // Derived state: coordinator-only at the barrier.
  std::vector<TraceEvent> scratch_;
  std::vector<TraceEvent> events_;
  std::vector<SlotBudget> budgets_;
  std::map<std::uint32_t, LatencyHistogram> hists_;
  std::unordered_map<std::uint16_t, std::int64_t> last_arrival_;
  std::uint64_t slots_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t total_events_ = 0;
};

/// Emit helper: the one-liner used by instrumentation sites. Call only
/// after checking obs::enabled() (it re-checks for safety).
inline void emit(Cat cat, std::uint16_t name, std::uint16_t track,
                 std::int64_t ts_ns, std::uint32_t dur_ns,
                 std::uint64_t arg = 0) {
  if (!enabled()) return;
  TraceEvent e;
  e.ts_ns = ts_ns;
  e.arg = arg;
  e.dur_ns = dur_ns;
  e.name = name;
  e.track = track;
  e.cat = cat;
  Collector::instance().emit(e);
}

/// Engine helper: emit the slot span and its 14 symbol sub-spans.
void slot_spans(std::int64_t slot, std::int64_t t0,
                std::int64_t slot_duration_ns);

}  // namespace rb::obs
