#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <set>

#include "common/ctrl_stats.h"
#include "common/iq_stats.h"
#include "common/state_stats.h"
#include "obs/obs.h"

namespace rb::obs {
namespace {

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, std::size_t(std::min(n, int(sizeof(buf) - 1))));
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (std::uint8_t(ch) < 0x20)
          appendf(out, "\\u%04x", unsigned(std::uint8_t(ch)));
        else
          out += ch;
    }
  }
  out += '"';
}

/// Prometheus metric-safe version of an interned label.
std::string prom_label(const std::string& s) {
  std::string out;
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out += '\\';
    out += ch;
  }
  return out;
}

}  // namespace

std::string chrome_trace_json(const Collector& c) {
  std::string out;
  out.reserve(c.events().size() * 96 + 1024);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;

  // Thread-name metadata: one trace tid per obs track.
  std::set<std::uint16_t> tracks{kTrackEngine};
  for (const TraceEvent& e : c.events()) tracks.insert(e.track);
  for (std::uint16_t t : tracks) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    appendf(out, "%u", unsigned(t) + 1);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":";
    append_json_string(out, c.track_str(t));
    out += "}}";
  }

  for (const TraceEvent& e : c.events()) {
    if (!first) out += ',';
    first = false;
    const bool instant = e.dur_ns == 0 &&
                         (e.cat == Cat::Parse || e.cat == Cat::Tx ||
                          e.cat == Cat::Fault);
    out += "{\"ph\":";
    out += instant ? "\"i\"" : "\"X\"";
    out += ",\"pid\":1,\"tid\":";
    appendf(out, "%u", unsigned(e.track) + 1);
    out += ",\"name\":";
    append_json_string(out, c.name_str(e.name));
    out += ",\"cat\":";
    append_json_string(out, cat_name(e.cat));
    // Trace-event timestamps are microseconds; keep ns as fractions.
    appendf(out, ",\"ts\":%.3f", double(e.ts_ns) / 1000.0);
    if (instant)
      out += ",\"s\":\"t\"";
    else
      appendf(out, ",\"dur\":%.3f", double(e.dur_ns) / 1000.0);
    appendf(out, ",\"args\":{\"arg\":%" PRIu64 "}}", e.arg);
  }
  out += "]}";
  return out;
}

std::string prometheus_text(const Collector& c) {
  std::string out;
  out += "# TYPE rb_obs_slots_total counter\n";
  appendf(out, "rb_obs_slots_total %" PRIu64 "\n", c.slots_committed());
  out += "# TYPE rb_obs_deadline_miss_total counter\n";
  appendf(out, "rb_obs_deadline_miss_total %" PRIu64 "\n",
          c.deadline_misses());
  out += "# TYPE rb_obs_trace_events_total counter\n";
  appendf(out, "rb_obs_trace_events_total %" PRIu64 "\n", c.total_events());
  out += "# TYPE rb_obs_trace_dropped_total counter\n";
  appendf(out, "rb_obs_trace_dropped_total %" PRIu64 "\n", c.dropped());

  // IQ datapath: active kernel dispatch tier (value = tier enum, label =
  // name; -1/none until the first codec call selects) and scratch-arena
  // high-water marks. Read from the common stats registry - obs links
  // only rb_common, the iq layer writes.
  {
    const int tier = iqstats::kernel_tier().load(std::memory_order_relaxed);
    const char* name =
        iqstats::kernel_tier_label().load(std::memory_order_relaxed);
    out += "# TYPE rb_iq_kernel_tier gauge\n";
    appendf(out, "rb_iq_kernel_tier{name=\"%s\"} %d\n",
            name != nullptr ? name : "none", tier);
    out += "# TYPE rb_iq_arena_hwm gauge\n";
    appendf(out, "rb_iq_arena_hwm{arena=\"samples\"} %" PRIu64 "\n",
            iqstats::arena_samples_hwm().load(std::memory_order_relaxed));
    appendf(out, "rb_iq_arena_hwm{arena=\"batch\"} %" PRIu64 "\n",
            iqstats::arena_batch_hwm().load(std::memory_order_relaxed));
    appendf(out, "rb_iq_arena_hwm{arena=\"copies\"} %" PRIu64 "\n",
            iqstats::arena_copies_hwm().load(std::memory_order_relaxed));
    appendf(out, "rb_iq_arena_hwm{arena=\"srcs\"} %" PRIu64 "\n",
            iqstats::arena_srcs_hwm().load(std::memory_order_relaxed));
  }

  // Adaptation controller: decision/actuation counts and wall-clock
  // decision latency watermarks (observability only; decisions are
  // virtual-time driven). Written by rb_ctrl via the common registry.
  {
    out += "# TYPE rb_ctrl_decisions_total counter\n";
    appendf(out, "rb_ctrl_decisions_total %" PRIu64 "\n",
            ctrlstats::decisions_total().load(std::memory_order_relaxed));
    out += "# TYPE rb_ctrl_actions_total counter\n";
    appendf(out, "rb_ctrl_actions_total %" PRIu64 "\n",
            ctrlstats::actions_total().load(std::memory_order_relaxed));
    out += "# TYPE rb_ctrl_links gauge\n";
    appendf(out, "rb_ctrl_links{state=\"watched\"} %" PRIu64 "\n",
            ctrlstats::links_watched().load(std::memory_order_relaxed));
    appendf(out, "rb_ctrl_links{state=\"degraded\"} %" PRIu64 "\n",
            ctrlstats::links_degraded().load(std::memory_order_relaxed));
    appendf(out, "rb_ctrl_links{state=\"ejected\"} %" PRIu64 "\n",
            ctrlstats::links_ejected().load(std::memory_order_relaxed));
    out += "# TYPE rb_ctrl_decision_wall_ns gauge\n";
    appendf(out, "rb_ctrl_decision_wall_ns{stat=\"last\"} %" PRIu64 "\n",
            ctrlstats::decision_ns_last().load(std::memory_order_relaxed));
    appendf(out, "rb_ctrl_decision_wall_ns{stat=\"max\"} %" PRIu64 "\n",
            ctrlstats::decision_ns_hwm().load(std::memory_order_relaxed));
    appendf(out, "rb_ctrl_decision_wall_ns{stat=\"sum\"} %" PRIu64 "\n",
            ctrlstats::decision_ns_sum().load(std::memory_order_relaxed));
  }

  // Hitless operations: checkpoint/restore and live-reconfiguration
  // counters. Written by rb_sim via the common registry; wall-clock apply
  // latency is observability-only (applies happen at the virtual-time
  // slot barrier).
  {
    out += "# TYPE rb_reconfig_total counter\n";
    appendf(out, "rb_reconfig_total %" PRIu64 "\n",
            statestats::reconfigs_total().load(std::memory_order_relaxed));
    out += "# TYPE rb_reconfig_ops_total counter\n";
    appendf(out, "rb_reconfig_ops_total %" PRIu64 "\n",
            statestats::reconfig_ops_total().load(std::memory_order_relaxed));
    out += "# TYPE rb_reconfig_rejected_total counter\n";
    appendf(
        out, "rb_reconfig_rejected_total %" PRIu64 "\n",
        statestats::reconfig_rejected_total().load(std::memory_order_relaxed));
    out += "# TYPE rb_reconfig_wall_ns gauge\n";
    appendf(
        out, "rb_reconfig_wall_ns{stat=\"last\"} %" PRIu64 "\n",
        statestats::reconfig_wall_ns_last().load(std::memory_order_relaxed));
    appendf(out, "rb_reconfig_wall_ns{stat=\"max\"} %" PRIu64 "\n",
            statestats::reconfig_wall_ns_hwm().load(std::memory_order_relaxed));
    out += "# TYPE rb_state_checkpoints_total counter\n";
    appendf(out, "rb_state_checkpoints_total %" PRIu64 "\n",
            statestats::checkpoints_total().load(std::memory_order_relaxed));
    out += "# TYPE rb_state_restores_total counter\n";
    appendf(out, "rb_state_restores_total %" PRIu64 "\n",
            statestats::restores_total().load(std::memory_order_relaxed));
    out += "# TYPE rb_state_restore_errors_total counter\n";
    appendf(
        out, "rb_state_restore_errors_total %" PRIu64 "\n",
        statestats::restore_errors_total().load(std::memory_order_relaxed));
    out += "# TYPE rb_state_checkpoint_bytes gauge\n";
    appendf(
        out, "rb_state_checkpoint_bytes %" PRIu64 "\n",
        statestats::checkpoint_bytes_last().load(std::memory_order_relaxed));
  }

  if (!c.budgets().empty()) {
    const SlotBudget& b = c.budgets().back();
    out += "# TYPE rb_obs_budget_pct gauge\n";
    appendf(out, "rb_obs_budget_pct %.6f\n", b.budget_pct());
    out += "# TYPE rb_obs_slot_busy_ns gauge\n";
    appendf(out, "rb_obs_slot_busy_ns %" PRIu64 "\n", b.busy_ns);
    out += "# TYPE rb_obs_slot_max_completion_ns gauge\n";
    appendf(out, "rb_obs_slot_max_completion_ns %" PRId64 "\n",
            b.max_completion_ns);
  }

  // Histograms: cumulative le buckets per (kind, track).
  HistKind last_kind{};
  bool typed_any = false;
  for (const auto& [key, h] : c.hists()) {
    const HistKind kind = Collector::hist_key_kind(key);
    const std::uint16_t track = Collector::hist_key_track(key);
    const std::string metric =
        std::string("rb_obs_") + hist_kind_name(kind) + "_ns";
    if (!typed_any || kind != last_kind) {
      appendf(out, "# TYPE %s histogram\n", metric.c_str());
      last_kind = kind;
      typed_any = true;
    }
    const std::string label = prom_label(c.track_str(track));
    std::uint64_t cum = 0;
    h.for_each_bucket([&](std::int64_t, std::int64_t upper,
                          std::uint64_t n) {
      cum += n;
      appendf(out, "%s_bucket{track=\"%s\",le=\"%" PRId64 "\"} %" PRIu64 "\n",
              metric.c_str(), label.c_str(), upper, cum);
    });
    appendf(out, "%s_bucket{track=\"%s\",le=\"+Inf\"} %" PRIu64 "\n",
            metric.c_str(), label.c_str(), h.count());
    appendf(out, "%s_sum{track=\"%s\"} %" PRIu64 "\n", metric.c_str(),
            label.c_str(), h.sum());
    appendf(out, "%s_count{track=\"%s\"} %" PRIu64 "\n", metric.c_str(),
            label.c_str(), h.count());
  }
  return out;
}

std::string budget_csv(const Collector& c) {
  std::string out =
      "slot,t0_ns,deadline_ns,busy_ns,a1_ns,a2_ns,a3_ns,a4_ns,charge_ns,"
      "combine_ns,link_ns,max_completion_ns,budget_pct,deadline_miss,"
      "events\n";
  for (const SlotBudget& b : c.budgets()) {
    appendf(out,
            "%" PRId64 ",%" PRId64 ",%" PRId64 ",%" PRIu64 ",%" PRIu64
            ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
            ",%" PRIu64 ",%" PRId64 ",%.4f,%d,%u\n",
            b.slot, b.t0_ns, b.deadline_ns, b.busy_ns, b.a1_ns, b.a2_ns,
            b.a3_ns, b.a4_ns, b.charge_ns, b.combine_ns, b.link_ns,
            b.max_completion_ns, b.budget_pct(), int(b.deadline_miss),
            b.events);
  }
  return out;
}

std::string summary(const Collector& c) {
  std::string out;
  appendf(out,
          "obs: slots=%" PRIu64 " events=%" PRIu64 " retained=%zu dropped=%"
          PRIu64 " deadline_miss=%" PRIu64 "\n",
          c.slots_committed(), c.total_events(), c.events().size(),
          c.dropped(), c.deadline_misses());
  if (!c.budgets().empty()) {
    const SlotBudget& b = c.budgets().back();
    appendf(out,
            "last slot %" PRId64 ": busy=%" PRIu64 "ns (%.1f%% of %" PRId64
            "ns) max_completion=%" PRId64 "ns%s\n",
            b.slot, b.busy_ns, b.budget_pct(), b.deadline_ns,
            b.max_completion_ns, b.deadline_miss ? " MISS" : "");
  }
  for (const auto& [key, h] : c.hists()) {
    appendf(out,
            "hist %s[%s]: n=%" PRIu64 " mean=%.0fns p50=%" PRId64
            " p99=%" PRId64 " max=%" PRId64 "\n",
            hist_kind_name(Collector::hist_key_kind(key)),
            c.track_str(Collector::hist_key_track(key)).c_str(), h.count(),
            h.mean(), h.percentile(50), h.percentile(99), h.max());
  }
  return out;
}

}  // namespace rb::obs
