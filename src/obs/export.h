// Exporters over the collector's retained trace and derived state.
//
//  - chrome_trace_json: Chrome trace-event JSON ("Trace Event Format"),
//    loadable in Perfetto / chrome://tracing. One tid per track, spans
//    as "X" complete events, instants as "i".
//  - prometheus_text: Prometheus text exposition (counters, last-slot
//    gauges, and the log-linear histograms as cumulative le-buckets).
//  - budget_csv: one row per slot of the budget accounting.
//  - summary: short human-readable digest for the mgmt plane.
#pragma once

#include <string>

namespace rb::obs {

class Collector;

std::string chrome_trace_json(const Collector& c);
std::string prometheus_text(const Collector& c);
std::string budget_csv(const Collector& c);
std::string summary(const Collector& c);

}  // namespace rb::obs
