// Log-linear latency histogram (HDR-style): nanosecond granularity,
// fixed memory, exactly mergeable.
//
// Values are bucketed into power-of-two octaves split into kSub linear
// sub-buckets each, giving a bounded relative error of 1/kSub (~3%)
// across the full int64 nanosecond range with a few KB of counters.
// Merging is element-wise addition, so merging per-worker shards gives
// byte-identical state to recording the concatenated stream — the
// property the parallel engine's sharded telemetry relies on
// (tests/test_obs.cpp HistogramMergeEqualsSingleStream).
#pragma once

#include <array>
#include <bit>
#include <cstdint>

namespace rb::obs {

class LatencyHistogram {
 public:
  static constexpr int kSubBits = 5;          // 32 sub-buckets per octave
  static constexpr int kSub = 1 << kSubBits;  // relative error <= 1/32
  // Octave levels for values up to 2^62 ns plus the linear 0..kSub-1 run.
  static constexpr int kLevels = 64 - kSubBits;
  static constexpr int kBuckets = (kLevels + 1) * kSub;

  void record(std::int64_t v, std::uint64_t n = 1) {
    if (v < 0) v = 0;
    counts_[std::size_t(index_of(std::uint64_t(v)))] += n;
    count_ += n;
    sum_ += std::uint64_t(v) * n;
    if (count_ == n || v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  /// Element-wise merge; merge-of-shards == single-stream, exactly.
  void merge(const LatencyHistogram& o) {
    for (int i = 0; i < kBuckets; ++i) counts_[std::size_t(i)] += o.counts_[std::size_t(i)];
    if (o.count_ > 0) {
      if (count_ == 0 || o.min_ < min_) min_ = o.min_;
      if (o.max_ > max_) max_ = o.max_;
    }
    count_ += o.count_;
    sum_ += o.sum_;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::int64_t min() const { return count_ ? min_ : 0; }
  std::int64_t max() const { return max_; }
  double mean() const { return count_ ? double(sum_) / double(count_) : 0.0; }

  /// Value at percentile p in [0,100]: the lower bound of the bucket
  /// holding the target rank (deterministic, never interpolated).
  std::int64_t percentile(double p) const {
    if (count_ == 0) return 0;
    if (p < 0) p = 0;
    if (p > 100) p = 100;
    const std::uint64_t target =
        std::uint64_t(double(count_) * p / 100.0 + 0.5);
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += counts_[std::size_t(i)];
      if (seen >= target && seen > 0) return lower_bound(i);
    }
    return max_;
  }

  /// Visit every non-empty bucket as (lower, upper, count), ascending.
  template <typename F>
  void for_each_bucket(F&& f) const {
    for (int i = 0; i < kBuckets; ++i) {
      if (counts_[std::size_t(i)] == 0) continue;
      f(lower_bound(i), upper_bound(i), counts_[std::size_t(i)]);
    }
  }

  friend bool operator==(const LatencyHistogram&,
                         const LatencyHistogram&) = default;

  static int index_of(std::uint64_t v) {
    if (v < std::uint64_t(kSub)) return int(v);
    const int msb = std::bit_width(v) - 1;  // >= kSubBits
    const int level = msb - kSubBits + 1;
    const int shift = msb - kSubBits;
    return level * kSub + int((v >> shift) & std::uint64_t(kSub - 1));
  }

  static std::int64_t lower_bound(int idx) {
    const int level = idx >> kSubBits;
    const int sub = idx & (kSub - 1);
    if (level == 0) return sub;
    return std::int64_t(std::uint64_t(kSub + sub) << (level - 1));
  }

  static std::int64_t upper_bound(int idx) {
    const int level = idx >> kSubBits;
    if (level == 0) return lower_bound(idx);
    return lower_bound(idx) + (std::int64_t(1) << (level - 1)) - 1;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

}  // namespace rb::obs
