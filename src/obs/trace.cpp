#include "obs/trace.h"

namespace rb::obs {

const char* cat_name(Cat c) {
  switch (c) {
    case Cat::Slot: return "slot";
    case Cat::Symbol: return "symbol";
    case Cat::Packet: return "packet";
    case Cat::Parse: return "parse";
    case Cat::Action: return "action";
    case Cat::Combine: return "combine";
    case Cat::Tx: return "tx";
    case Cat::Link: return "link";
    case Cat::Fault: return "fault";
  }
  return "?";
}

}  // namespace rb::obs
