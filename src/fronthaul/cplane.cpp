#include "fronthaul/cplane.h"

namespace rb {

bool CPlaneMsg::encode(BufWriter& w) const {
  // Octet 1: dataDirection(1) | payloadVersion(3) | filterIndex(4)
  w.u8(std::uint8_t((std::uint8_t(direction) << 7) |
                    ((payload_version & 0x7) << 4) | (filter_index & 0xf)));
  w.u8(at.frame);
  // subframeId(4) | slotId(6) | startSymbolid(6)
  std::uint16_t ssf = std::uint16_t(((at.subframe & 0xf) << 12) |
                                    ((at.slot & 0x3f) << 6) |
                                    (at.symbol & 0x3f));
  w.u16(ssf);
  w.u8(std::uint8_t(sections.size()));
  w.u8(std::uint8_t(section_type));
  if (section_type == SectionType::Type1) {
    w.u8(comp.ud_comp_hdr());
    w.u8(0);  // reserved
  } else {
    w.u16(time_offset);
    w.u8(frame_structure);
    w.u16(cp_length);
    w.u8(comp.ud_comp_hdr());
  }
  for (const auto& s : sections) {
    // sectionId(12) | rb(1) | symInc(1) | startPrbc(10)
    std::uint32_t w24 = (std::uint32_t(s.section_id & 0xfff) << 12) |
                        (std::uint32_t(s.rb) << 11) |
                        (std::uint32_t(s.sym_inc) << 10) |
                        (s.start_prb & 0x3ff);
    w.u24(w24);
    w.u8(std::uint8_t(s.num_prb > 255 ? 0 : s.num_prb));
    // reMask(12) | numSymbol(4)
    w.u16(std::uint16_t(((s.re_mask & 0xfff) << 4) | (s.num_symbol & 0xf)));
    // ef(1) | beamId(15)
    w.u16(std::uint16_t((std::uint16_t(s.ef) << 15) | (s.beam_id & 0x7fff)));
    if (section_type == SectionType::Type3) {
      w.u24(std::uint32_t(s.freq_offset) & 0xffffff);
      w.u8(0);  // reserved
    }
  }
  return w.ok();
}

std::optional<CPlaneMsg> CPlaneMsg::parse(BufReader& r, ParseError* err) {
  CPlaneMsg m;
  if (!parse_into(r, m, err)) return std::nullopt;
  return m;
}

bool CPlaneMsg::parse_into(BufReader& r, CPlaneMsg& m, ParseError* err) {
  const auto fail = [&](ParseError e) {
    if (err) *err = e;
    return false;
  };
  // `m` may be a reused message (burst parse): every field is assigned
  // below except the type-3 extras and the section list, reset here.
  m.sections.clear();
  m.time_offset = 0;
  m.frame_structure = 0;
  m.cp_length = 0;
  std::uint8_t b0 = r.u8();
  m.direction = (b0 & 0x80) ? Direction::Downlink : Direction::Uplink;
  m.payload_version = std::uint8_t((b0 >> 4) & 0x7);
  m.filter_index = std::uint8_t(b0 & 0xf);
  m.at.frame = r.u8();
  std::uint16_t ssf = r.u16();
  m.at.subframe = std::uint8_t((ssf >> 12) & 0xf);
  m.at.slot = std::uint8_t((ssf >> 6) & 0x3f);
  m.at.symbol = std::uint8_t(ssf & 0x3f);
  std::uint8_t n_sections = r.u8();
  std::uint8_t st = r.u8();
  if (!r.ok()) return fail(ParseError::TruncatedCplane);
  if (st != 1 && st != 3) return fail(ParseError::BadSectionType);
  m.section_type = static_cast<SectionType>(st);
  if (m.section_type == SectionType::Type1) {
    m.comp = CompConfig::from_ud_comp_hdr(r.u8());
    r.skip(1);
  } else {
    m.time_offset = r.u16();
    m.frame_structure = r.u8();
    m.cp_length = r.u16();
    m.comp = CompConfig::from_ud_comp_hdr(r.u8());
  }
  if (!r.ok()) return fail(ParseError::TruncatedCplane);
  m.sections.reserve(n_sections);
  for (int i = 0; i < n_sections; ++i) {
    CSection s;
    std::uint32_t w24 = r.u24();
    s.section_id = std::uint16_t((w24 >> 12) & 0xfff);
    s.rb = (w24 >> 11) & 1;
    s.sym_inc = (w24 >> 10) & 1;
    s.start_prb = std::uint16_t(w24 & 0x3ff);
    s.num_prb = r.u8();
    std::uint16_t rm = r.u16();
    s.re_mask = std::uint16_t((rm >> 4) & 0xfff);
    s.num_symbol = std::uint8_t(rm & 0xf);
    std::uint16_t eb = r.u16();
    s.ef = (eb >> 15) & 1;
    s.beam_id = std::uint16_t(eb & 0x7fff);
    if (m.section_type == SectionType::Type3) {
      std::uint32_t fo = r.u24();
      // Sign-extend the 24-bit field.
      if (fo & 0x800000) fo |= 0xff000000;
      s.freq_offset = std::int32_t(fo);
      r.skip(1);
    }
    if (!r.ok()) return fail(ParseError::TruncatedCSection);
    m.sections.push_back(s);
  }
  return true;
}

}  // namespace rb
