// O-RAN U-plane message codec (WG4 CUS-plane spec section 6).
//
// Parsing produces *views*: each section records the byte range of its
// compressed payload within the original frame so middleboxes can inspect
// or rewrite IQ data in place without copying (action A4), and read BFP
// exponents without decompressing (Algorithm 1).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/timing.h"
#include "fronthaul/fh_config.h"
#include "fronthaul/parse_error.h"

namespace rb {

/// One U-plane data section, with its payload located in the parent frame.
struct USection {
  std::uint16_t section_id = 0;  // 12 bits
  bool rb = false;
  bool sym_inc = false;
  std::uint16_t start_prb = 0;   // startPrbu
  int num_prb = 0;               // effective count (0 on wire = whole carrier)
  CompConfig comp{};
  std::size_t payload_offset = 0;  // absolute offset within the frame
  std::size_t payload_len = 0;

  friend bool operator==(const USection&, const USection&) = default;
};

struct UPlaneMsg {
  Direction direction = Direction::Uplink;
  std::uint8_t payload_version = 1;
  std::uint8_t filter_index = 0;
  SlotPoint at{};
  std::vector<USection> sections;

  friend bool operator==(const UPlaneMsg&, const UPlaneMsg&) = default;
};

/// Section descriptor for building: payload supplied as pre-compressed
/// bytes (the normal datapath case - the producer compressed per PRB).
struct USectionData {
  std::uint16_t section_id = 0;
  std::uint16_t start_prb = 0;
  int num_prb = 0;
  std::span<const std::uint8_t> payload;  // compressed, num_prb * prb_bytes
  /// Per-section compression override. The udCompHdr on the wire (and the
  /// payload sizing) follow this when set; otherwise the context default
  /// applies. This is how a link running a controller-adapted width emits
  /// frames that peers decode correctly packet-by-packet.
  std::optional<CompConfig> comp;

  const CompConfig& effective_comp(const FhContext& ctx) const {
    return comp ? *comp : ctx.comp;
  }
};

/// Encode the radio-application layer of a U-plane message. `base_offset`
/// is the absolute offset of `w`'s start within the full frame; returned
/// sections (if `out_sections` non-null) carry absolute payload offsets.
bool encode_uplane(BufWriter& w, const UPlaneMsg& hdr,
                   std::span<const USectionData> sections,
                   const FhContext& ctx, std::size_t base_offset = 0,
                   std::vector<USection>* out_sections = nullptr);

/// Parse the radio-application layer. `base_offset` is the offset of the
/// reader's start within the full frame buffer (payload offsets are
/// reported absolute).
std::optional<UPlaneMsg> parse_uplane(BufReader& r, const FhContext& ctx,
                                      std::size_t base_offset,
                                      ParseError* err = nullptr);

/// Parse into a reused message (section-vector capacity is kept across
/// calls - the burst-parse hot path). Same semantics as parse_uplane().
bool parse_uplane_into(BufReader& r, const FhContext& ctx,
                       std::size_t base_offset, UPlaneMsg& m,
                       ParseError* err = nullptr);

/// Fragment a section list across frames so no frame exceeds
/// `max_frame_bytes` (e.g. wide-mantissa 100 MHz payloads overflow a 9 KB
/// jumbo frame and must be split, as real stacks do at the MTU). Sections
/// larger than the budget are split by PRBs; fragmentation is
/// deterministic so peers produce matching fragments.
std::vector<std::vector<USectionData>> split_sections_for_mtu(
    std::span<const USectionData> sections, const FhContext& ctx,
    std::size_t max_frame_bytes = 8'800);

}  // namespace rb
