#include "fronthaul/uplane.h"

#include <algorithm>

namespace rb {

bool encode_uplane(BufWriter& w, const UPlaneMsg& hdr,
                   std::span<const USectionData> sections,
                   const FhContext& ctx, std::size_t base_offset,
                   std::vector<USection>* out_sections) {
  w.u8(std::uint8_t((std::uint8_t(hdr.direction) << 7) |
                    ((hdr.payload_version & 0x7) << 4) |
                    (hdr.filter_index & 0xf)));
  w.u8(hdr.at.frame);
  w.u16(std::uint16_t(((hdr.at.subframe & 0xf) << 12) |
                      ((hdr.at.slot & 0x3f) << 6) | (hdr.at.symbol & 0x3f)));
  for (const auto& s : sections) {
    const CompConfig& comp = s.effective_comp(ctx);
    const std::size_t prb_sz = comp.prb_bytes();
    // numPrbu is 8 bits: 0 is the "whole carrier" shorthand; a section
    // covering 256..(carrier-1) PRBs cannot be expressed and must be
    // split into <=255-PRB chunks, exactly as real stacks fragment.
    int emitted = 0;
    while (emitted < s.num_prb) {
      const bool whole = emitted == 0 && s.num_prb == ctx.carrier_prbs;
      const int chunk = whole ? s.num_prb
                              : std::min(255, s.num_prb - emitted);
      std::uint32_t w24 = (std::uint32_t(s.section_id & 0xfff) << 12) |
                          ((s.start_prb + emitted) & 0x3ff);
      w.u24(w24);
      w.u8(std::uint8_t(whole ? 0 : chunk));
      if (ctx.uplane_has_comp_hdr) {
        w.u8(comp.ud_comp_hdr());
        w.u8(0);  // reserved (udCompLen not used for BFP)
      }
      std::size_t payload_at = base_offset + w.written();
      auto chunk_payload =
          s.payload.subspan(std::size_t(emitted) * prb_sz,
                            std::size_t(chunk) * prb_sz);
      w.bytes(chunk_payload);
      if (out_sections) {
        USection v;
        v.section_id = s.section_id;
        v.start_prb = std::uint16_t(s.start_prb + emitted);
        v.num_prb = chunk;
        v.comp = comp;
        v.payload_offset = payload_at;
        v.payload_len = chunk_payload.size();
        out_sections->push_back(v);
      }
      emitted += chunk;
    }
  }
  return w.ok();
}

std::vector<std::vector<USectionData>> split_sections_for_mtu(
    std::span<const USectionData> sections, const FhContext& ctx,
    std::size_t max_frame_bytes) {
  const std::size_t sec_hdr = 4u + (ctx.uplane_has_comp_hdr ? 2u : 0u);
  std::vector<std::vector<USectionData>> frames;
  frames.emplace_back();
  std::size_t used = 0;
  auto emit = [&](USectionData s) {
    const std::size_t need = sec_hdr + s.payload.size();
    if (used > 0 && used + need > max_frame_bytes) {
      frames.emplace_back();
      used = 0;
    }
    frames.back().push_back(s);
    used += need;
  };
  for (const auto& s : sections) {
    const std::size_t prb_sz = s.effective_comp(ctx).prb_bytes();
    const std::size_t whole = sec_hdr + s.payload.size();
    if (whole <= max_frame_bytes) {
      emit(s);
      continue;
    }
    // Split an oversize section by PRBs.
    const int per_chunk =
        std::max<int>(1, int((max_frame_bytes - sec_hdr) / prb_sz));
    for (int off = 0; off < s.num_prb; off += per_chunk) {
      const int n = std::min(per_chunk, s.num_prb - off);
      USectionData part = s;
      part.start_prb = std::uint16_t(s.start_prb + off);
      part.num_prb = n;
      part.payload = s.payload.subspan(std::size_t(off) * prb_sz,
                                       std::size_t(n) * prb_sz);
      emit(part);
    }
  }
  if (frames.back().empty()) frames.pop_back();
  return frames;
}

std::optional<UPlaneMsg> parse_uplane(BufReader& r, const FhContext& ctx,
                                      std::size_t base_offset,
                                      ParseError* err) {
  UPlaneMsg m;
  if (!parse_uplane_into(r, ctx, base_offset, m, err)) return std::nullopt;
  return m;
}

bool parse_uplane_into(BufReader& r, const FhContext& ctx,
                       std::size_t base_offset, UPlaneMsg& m,
                       ParseError* err) {
  const auto fail = [&](ParseError e) {
    if (err) *err = e;
    return false;
  };
  // `m` may be a reused message: every header field is assigned below.
  m.sections.clear();
  std::uint8_t b0 = r.u8();
  m.direction = (b0 & 0x80) ? Direction::Downlink : Direction::Uplink;
  m.payload_version = std::uint8_t((b0 >> 4) & 0x7);
  m.filter_index = std::uint8_t(b0 & 0xf);
  m.at.frame = r.u8();
  std::uint16_t ssf = r.u16();
  m.at.subframe = std::uint8_t((ssf >> 12) & 0xf);
  m.at.slot = std::uint8_t((ssf >> 6) & 0x3f);
  m.at.symbol = std::uint8_t(ssf & 0x3f);
  if (!r.ok()) return fail(ParseError::TruncatedUplane);

  // A corrupt startPrbu/numPrbu can claim a PRB range no real grid has;
  // cap at the widest FR1 carrier (273 PRBs) or the context's own grid,
  // whichever is larger, so honest frames always pass.
  const int max_prbs = std::max(ctx.carrier_prbs, 273);

  // Sections run to the end of the eCPRI payload.
  while (r.remaining() > 0) {
    USection s;
    std::uint32_t w24 = r.u24();
    s.section_id = std::uint16_t((w24 >> 12) & 0xfff);
    s.rb = (w24 >> 11) & 1;
    s.sym_inc = (w24 >> 10) & 1;
    s.start_prb = std::uint16_t(w24 & 0x3ff);
    std::uint8_t np = r.u8();
    s.num_prb = np == 0 ? ctx.carrier_prbs : np;
    s.comp = ctx.comp;
    if (ctx.uplane_has_comp_hdr) {
      s.comp = CompConfig::from_ud_comp_hdr(r.u8());
      r.skip(1);
    }
    if (!r.ok()) return fail(ParseError::TruncatedUSection);
    if (s.start_prb + s.num_prb > max_prbs)
      return fail(ParseError::BadSectionGeometry);
    s.payload_len = std::size_t(s.num_prb) * s.comp.prb_bytes();
    s.payload_offset = base_offset + r.pos();
    if (r.remaining() < s.payload_len)
      return fail(ParseError::TruncatedUSection);
    r.skip(s.payload_len);
    m.sections.push_back(s);
  }
  return true;
}

}  // namespace rb
