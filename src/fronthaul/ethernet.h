// Ethernet II + optional 802.1Q header codec.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "common/bytes.h"
#include "common/mac_addr.h"

namespace rb {

inline constexpr std::uint16_t kEtherTypeVlan = 0x8100;
inline constexpr std::uint16_t kEtherTypeEcpri = 0xAEFE;

struct EthHeader {
  MacAddr dst{};
  MacAddr src{};
  bool has_vlan = true;
  std::uint8_t pcp = 0;        // 802.1Q priority
  std::uint16_t vlan_id = 0;   // 12-bit VID
  std::uint16_t ethertype = kEtherTypeEcpri;

  friend bool operator==(const EthHeader&, const EthHeader&) = default;

  std::size_t wire_size() const { return has_vlan ? 18u : 14u; }

  void encode(BufWriter& w) const;
  static std::optional<EthHeader> parse(BufReader& r);
};

}  // namespace rb
