// Typed parse-failure reasons for the fronthaul decoders.
//
// Every parser rejects malformed input by returning nullopt; the optional
// ParseError out-parameter tells the caller *why*, so middleboxes can
// count rejects per reason (and chaos tests can assert that corrupt
// frames die in the parser, not in the datapath).
#pragma once

#include <cstddef>
#include <cstdint>

namespace rb {

enum class ParseError : std::uint8_t {
  None = 0,
  TruncatedEth,         // shorter than an Ethernet (+VLAN) header
  NotEcpri,             // ethertype is not eCPRI (not necessarily an error)
  BadEcpriVersion,      // eCPRI version nibble != 1
  TruncatedEcpri,       // ran out of bytes inside the eCPRI header
  UnknownEcpriType,     // message type neither IqData nor RtControl
  PayloadOverrun,       // eCPRI payload_size exceeds the frame
  TruncatedCplane,      // ran out of bytes in the C-plane common header
  BadSectionType,       // C-plane section type not 1 or 3
  TruncatedCSection,    // ran out of bytes inside a C-plane section
  TruncatedUplane,      // ran out of bytes in the U-plane common header
  TruncatedUSection,    // U-plane section header or IQ payload cut short
  BadSectionGeometry,   // section PRB range exceeds any plausible grid
  kCount
};

constexpr const char* parse_error_name(ParseError e) {
  switch (e) {
    case ParseError::None: return "none";
    case ParseError::TruncatedEth: return "truncated_eth";
    case ParseError::NotEcpri: return "not_ecpri";
    case ParseError::BadEcpriVersion: return "bad_ecpri_version";
    case ParseError::TruncatedEcpri: return "truncated_ecpri";
    case ParseError::UnknownEcpriType: return "unknown_ecpri_type";
    case ParseError::PayloadOverrun: return "payload_overrun";
    case ParseError::TruncatedCplane: return "truncated_cplane";
    case ParseError::BadSectionType: return "bad_section_type";
    case ParseError::TruncatedCSection: return "truncated_csection";
    case ParseError::TruncatedUplane: return "truncated_uplane";
    case ParseError::TruncatedUSection: return "truncated_usection";
    case ParseError::BadSectionGeometry: return "bad_section_geometry";
    case ParseError::kCount: break;
  }
  return "unknown";
}

constexpr std::size_t kParseErrorCount = std::size_t(ParseError::kCount);

}  // namespace rb
