#include "fronthaul/ethernet.h"

namespace rb {

void EthHeader::encode(BufWriter& w) const {
  w.bytes(std::span<const std::uint8_t>(dst.bytes.data(), 6));
  w.bytes(std::span<const std::uint8_t>(src.bytes.data(), 6));
  if (has_vlan) {
    w.u16(kEtherTypeVlan);
    w.u16(std::uint16_t(((pcp & 0x7) << 13) | (vlan_id & 0x0fff)));
  }
  w.u16(ethertype);
}

std::optional<EthHeader> EthHeader::parse(BufReader& r) {
  EthHeader h;
  auto d = r.view(6);
  auto s = r.view(6);
  if (!r.ok()) return std::nullopt;
  std::copy(d.begin(), d.end(), h.dst.bytes.begin());
  std::copy(s.begin(), s.end(), h.src.bytes.begin());
  std::uint16_t et = r.u16();
  if (et == kEtherTypeVlan) {
    std::uint16_t tci = r.u16();
    h.has_vlan = true;
    h.pcp = std::uint8_t((tci >> 13) & 0x7);
    h.vlan_id = std::uint16_t(tci & 0x0fff);
    et = r.u16();
  } else {
    h.has_vlan = false;
  }
  h.ethertype = et;
  if (!r.ok()) return std::nullopt;
  return h;
}

}  // namespace rb
