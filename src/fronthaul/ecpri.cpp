#include "fronthaul/ecpri.h"

namespace rb {

void EcpriHeader::encode(BufWriter& w) const {
  // byte 0: version(4)=1 | reserved(3)=0 | concatenation(1)=0
  w.u8(0x10);
  w.u8(std::uint8_t(msg_type));
  w.u16(payload_size);
  w.u16(eaxc.packed());
  w.u8(seq_id);
  w.u8(std::uint8_t((e_bit ? 0x80 : 0x00) | (sub_seq_id & 0x7f)));
}

std::optional<EcpriHeader> EcpriHeader::parse(BufReader& r, ParseError* err) {
  const auto fail = [&](ParseError e) {
    if (err) *err = e;
    return std::nullopt;
  };
  std::uint8_t b0 = r.u8();
  if (!r.ok()) return fail(ParseError::TruncatedEcpri);
  if ((b0 >> 4) != 1) return fail(ParseError::BadEcpriVersion);  // version 1
  EcpriHeader h;
  h.msg_type = static_cast<EcpriMsgType>(r.u8());
  h.payload_size = r.u16();
  h.eaxc = EaxcId::unpack(r.u16());
  h.seq_id = r.u8();
  std::uint8_t sb = r.u8();
  h.e_bit = (sb & 0x80) != 0;
  h.sub_seq_id = std::uint8_t(sb & 0x7f);
  if (!r.ok()) return fail(ParseError::TruncatedEcpri);
  return h;
}

}  // namespace rb
