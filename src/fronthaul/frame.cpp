#include "fronthaul/frame.h"

namespace rb {

std::optional<FhFrame> parse_frame(std::span<const std::uint8_t> frame,
                                   const FhContext& ctx, ParseError* err) {
  FhFrame f;
  if (!parse_frame_into(frame, ctx, f, err)) return std::nullopt;
  return f;
}

bool parse_frame_into(std::span<const std::uint8_t> frame,
                      const FhContext& ctx, FhFrame& out, ParseError* err) {
  const auto fail = [&](ParseError e) {
    if (err) *err = e;
    return false;
  };
  BufReader r(frame);
  auto eth = EthHeader::parse(r);
  if (!eth) return fail(ParseError::TruncatedEth);
  if (eth->ethertype != kEtherTypeEcpri) return fail(ParseError::NotEcpri);
  auto ec = EcpriHeader::parse(r, err);
  if (!ec) return false;  // err already set

  // Restrict the reader to the eCPRI payload so trailing padding (Ethernet
  // minimum frame size) is not misparsed as sections.
  // eCPRI payload_size covers the 4 bytes of pcid+seqid which we already
  // consumed as part of EcpriHeader.
  const std::size_t payload_at = r.pos();
  const std::size_t app_len = ec->payload_size >= 4 ? ec->payload_size - 4 : 0;
  if (frame.size() < payload_at + app_len)
    return fail(ParseError::PayloadOverrun);
  BufReader app(frame.subspan(payload_at, app_len));

  out.eth = *eth;
  out.ecpri = *ec;
  if (ec->msg_type == EcpriMsgType::RtControl) {
    // Reuse the variant's current alternative when the kind matches, so
    // its section vector keeps its capacity.
    CPlaneMsg* c = std::get_if<CPlaneMsg>(&out.msg);
    if (!c) c = &out.msg.emplace<CPlaneMsg>();
    return CPlaneMsg::parse_into(app, *c, err);
  }
  if (ec->msg_type == EcpriMsgType::IqData) {
    UPlaneMsg* u = std::get_if<UPlaneMsg>(&out.msg);
    if (!u) u = &out.msg.emplace<UPlaneMsg>();
    return parse_uplane_into(app, ctx, payload_at, *u, err);
  }
  return fail(ParseError::UnknownEcpriType);
}

std::size_t build_cplane_frame(std::span<std::uint8_t> buf,
                               const EthHeader& eth, const EaxcId& eaxc,
                               std::uint8_t seq_id, const CPlaneMsg& msg,
                               const FhContext& ctx) {
  (void)ctx;
  BufWriter w(buf);
  eth.encode(w);
  EcpriHeader ec;
  ec.msg_type = EcpriMsgType::RtControl;
  ec.eaxc = eaxc;
  ec.seq_id = seq_id;
  // payload_size backpatched below (pcid+seqid = 4 bytes + app layer).
  const std::size_t ecpri_at = w.written();
  ec.encode(w);
  const std::size_t app_at = w.written();
  if (!msg.encode(w)) return 0;
  const std::size_t app_len = w.written() - app_at;
  w.patch_u16(ecpri_at + 2, std::uint16_t(4 + app_len));
  return w.ok() ? w.written() : 0;
}

std::size_t build_uplane_frame(std::span<std::uint8_t> buf,
                               const EthHeader& eth, const EaxcId& eaxc,
                               std::uint8_t seq_id, const UPlaneMsg& hdr,
                               std::span<const USectionData> sections,
                               const FhContext& ctx,
                               std::vector<USection>* out_sections) {
  BufWriter w(buf);
  eth.encode(w);
  EcpriHeader ec;
  ec.msg_type = EcpriMsgType::IqData;
  ec.eaxc = eaxc;
  ec.seq_id = seq_id;
  const std::size_t ecpri_at = w.written();
  ec.encode(w);
  const std::size_t app_at = w.written();
  // encode_uplane computes payload offsets as base + w.written(); `w`
  // already counts the Ethernet+eCPRI bytes, so offsets are absolute with
  // base 0.
  if (!encode_uplane(w, hdr, sections, ctx, /*base_offset=*/0, out_sections))
    return 0;
  const std::size_t app_len = w.written() - app_at;
  w.patch_u16(ecpri_at + 2, std::uint16_t(4 + app_len));
  return w.ok() ? w.written() : 0;
}

bool rewrite_eth_addrs(std::span<std::uint8_t> frame,
                       const std::optional<MacAddr>& new_dst,
                       const std::optional<MacAddr>& new_src) {
  if (frame.size() < 14) return false;
  if (new_dst) std::copy(new_dst->bytes.begin(), new_dst->bytes.end(),
                         frame.begin());
  if (new_src)
    std::copy(new_src->bytes.begin(), new_src->bytes.end(), frame.begin() + 6);
  return true;
}

std::size_t ecpri_offset(std::span<const std::uint8_t> frame) {
  if (frame.size() < 14) return 0;
  std::uint16_t et = std::uint16_t((frame[12] << 8) | frame[13]);
  if (et == kEtherTypeVlan) {
    if (frame.size() < 18) return 0;
    et = std::uint16_t((frame[16] << 8) | frame[17]);
    return et == kEtherTypeEcpri ? 18 : 0;
  }
  return et == kEtherTypeEcpri ? 14 : 0;
}

bool rewrite_eaxc(std::span<std::uint8_t> frame, const EaxcId& eaxc) {
  const std::size_t off = ecpri_offset(frame);
  if (off == 0 || frame.size() < off + 6) return false;
  const std::uint16_t v = eaxc.packed();
  frame[off + 4] = std::uint8_t(v >> 8);
  frame[off + 5] = std::uint8_t(v);
  return true;
}

}  // namespace rb
