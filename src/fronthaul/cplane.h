// O-RAN C-plane message codec (WG4 CUS-plane spec section 7).
//
// Implements section type 1 (most DL/UL channels) and section type 3
// (PRACH / mixed numerology), which are the two the reference middleboxes
// manipulate. Field layouts follow the spec's octet tables; multi-field
// octets are packed exactly as on the wire so captures of these frames are
// dissectable by Wireshark's oran_fh_cus plugin.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/timing.h"
#include "fronthaul/fh_config.h"
#include "fronthaul/parse_error.h"

namespace rb {

/// One C-plane section (type 1 body; type 3 appends frequency fields).
struct CSection {
  std::uint16_t section_id = 0;  // 12 bits
  bool rb = false;               // 0: every RB used, 1: every other RB
  bool sym_inc = false;
  std::uint16_t start_prb = 0;   // startPrbc, 10 bits
  std::uint16_t num_prb = 0;     // numPrbc: 0 means "all PRBs" (>255 carriers)
  std::uint16_t re_mask = 0x0fff;
  std::uint8_t num_symbol = 1;   // 4 bits
  bool ef = false;
  std::uint16_t beam_id = 0;     // 15 bits
  // --- section type 3 only ---
  std::int32_t freq_offset = 0;  // 24-bit signed, units of SCS/2

  friend bool operator==(const CSection&, const CSection&) = default;

  /// Effective PRB count given the carrier size (numPrbc==0 => whole
  /// carrier, per spec).
  int effective_prbs(int carrier_prbs) const {
    return num_prb == 0 ? carrier_prbs : num_prb;
  }
};

/// A parsed/boildable C-plane message (one eCPRI frame).
struct CPlaneMsg {
  Direction direction = Direction::Downlink;
  std::uint8_t payload_version = 1;  // 3 bits
  std::uint8_t filter_index = 0;     // 4 bits
  SlotPoint at{};                    // frame/subframe/slot/startSymbol
  SectionType section_type = SectionType::Type1;
  CompConfig comp{};                 // from udCompHdr
  // --- section type 3 only ---
  std::uint16_t time_offset = 0;
  std::uint8_t frame_structure = 0;
  std::uint16_t cp_length = 0;

  std::vector<CSection> sections;

  friend bool operator==(const CPlaneMsg&, const CPlaneMsg&) = default;

  /// Encode the radio-application layer (everything after eCPRI header).
  /// Returns false if the buffer overflows.
  bool encode(BufWriter& w) const;

  /// Parse the radio-application layer.
  static std::optional<CPlaneMsg> parse(BufReader& r,
                                        ParseError* err = nullptr);
  /// Parse into a reused message (section-vector capacity is kept across
  /// calls - the burst-parse hot path). Same semantics as parse().
  static bool parse_into(BufReader& r, CPlaneMsg& m,
                         ParseError* err = nullptr);
};

}  // namespace rb
