// Whole-frame assembly and classification: Ethernet + eCPRI + CUS-plane.
//
// This is the entry point the datapath uses: a middlebox receives raw bytes
// from a port, calls parse_frame() once, and gets a typed view telling it
// whether it holds a C-plane or U-plane message, for which eAxC, and where
// the IQ payloads live inside the buffer.
#pragma once

#include <cstdint>
#include <optional>
#include <variant>

#include "fronthaul/cplane.h"
#include "fronthaul/ecpri.h"
#include "fronthaul/ethernet.h"
#include "fronthaul/uplane.h"

namespace rb {

/// Parsed view of one fronthaul Ethernet frame.
struct FhFrame {
  EthHeader eth{};
  EcpriHeader ecpri{};
  std::variant<CPlaneMsg, UPlaneMsg> msg;

  bool is_cplane() const { return std::holds_alternative<CPlaneMsg>(msg); }
  bool is_uplane() const { return std::holds_alternative<UPlaneMsg>(msg); }
  const CPlaneMsg& cplane() const { return std::get<CPlaneMsg>(msg); }
  const UPlaneMsg& uplane() const { return std::get<UPlaneMsg>(msg); }
  CPlaneMsg& cplane() { return std::get<CPlaneMsg>(msg); }
  UPlaneMsg& uplane() { return std::get<UPlaneMsg>(msg); }

  Direction direction() const {
    return is_cplane() ? cplane().direction : uplane().direction;
  }
  SlotPoint at() const { return is_cplane() ? cplane().at : uplane().at; }
};

/// Parse a full frame. Returns nullopt for anything that is not a valid
/// eCPRI CUS-plane frame (the middleboxes forward such frames untouched).
/// On failure the optional out-parameter reports the typed reason, so
/// callers can count rejects per reason.
std::optional<FhFrame> parse_frame(std::span<const std::uint8_t> frame,
                                   const FhContext& ctx,
                                   ParseError* err = nullptr);

/// Parse into a reused FhFrame: the section vectors keep their capacity
/// across calls, so a steady-state parse of uniform traffic touches no
/// heap. Same accept/reject semantics as parse_frame(); on reject `out`
/// holds unspecified (but valid) contents.
bool parse_frame_into(std::span<const std::uint8_t> frame,
                      const FhContext& ctx, FhFrame& out,
                      ParseError* err = nullptr);

/// Build a complete C-plane frame into `buf`; returns the frame length or
/// 0 if the buffer is too small.
std::size_t build_cplane_frame(std::span<std::uint8_t> buf,
                               const EthHeader& eth, const EaxcId& eaxc,
                               std::uint8_t seq_id, const CPlaneMsg& msg,
                               const FhContext& ctx);

/// Build a complete U-plane frame into `buf`. Optionally reports the
/// absolute payload offsets of the written sections through out_sections.
std::size_t build_uplane_frame(std::span<std::uint8_t> buf,
                               const EthHeader& eth, const EaxcId& eaxc,
                               std::uint8_t seq_id, const UPlaneMsg& hdr,
                               std::span<const USectionData> sections,
                               const FhContext& ctx,
                               std::vector<USection>* out_sections = nullptr);

/// Rewrite the Ethernet destination/source in place (action A1 core).
/// Returns false if the frame is shorter than an Ethernet header.
bool rewrite_eth_addrs(std::span<std::uint8_t> frame,
                       const std::optional<MacAddr>& new_dst,
                       const std::optional<MacAddr>& new_src);

/// Rewrite the eAxC id (ecpriPcid/Rtcid) in place - the dMIMO antenna-port
/// remap primitive. Returns false on malformed frame.
bool rewrite_eaxc(std::span<std::uint8_t> frame, const EaxcId& eaxc);

/// Offset of the eCPRI header within a frame (after VLAN detection), or 0
/// if malformed.
std::size_t ecpri_offset(std::span<const std::uint8_t> frame);

}  // namespace rb
