// Shared fronthaul configuration and identifiers.
#pragma once

#include <cstdint>

#include "iq/bfp.h"

namespace rb {

/// eCPRI eAxC identifier (ecpriPcid / ecpriRtcid): addresses one logical
/// antenna stream of one carrier. We use the common 4/4/4/4 bit layout.
struct EaxcId {
  std::uint8_t du_port = 0;      // DU processing chain
  std::uint8_t band_sector = 0;  // band/sector
  std::uint8_t cc = 0;           // component carrier
  std::uint8_t ru_port = 0;      // RU antenna port (spatial stream)

  friend auto operator<=>(const EaxcId&, const EaxcId&) = default;

  std::uint16_t packed() const {
    return std::uint16_t(((du_port & 0xf) << 12) | ((band_sector & 0xf) << 8) |
                         ((cc & 0xf) << 4) | (ru_port & 0xf));
  }
  static EaxcId unpack(std::uint16_t v) {
    return EaxcId{std::uint8_t((v >> 12) & 0xf), std::uint8_t((v >> 8) & 0xf),
                  std::uint8_t((v >> 4) & 0xf), std::uint8_t(v & 0xf)};
  }
};

/// Static fronthaul parameters both ends agree on out of band (M-plane in a
/// real deployment). Parsers need these because numPrbu == 0 means "whole
/// carrier" and the U-plane compression header may be omitted.
struct FhContext {
  CompConfig comp{};
  int carrier_prbs = 273;             // carrier transmission bandwidth
  bool uplane_has_comp_hdr = true;    // udCompHdr present in U-plane sections
  std::uint16_t vlan_id = 6;          // VLAN the CUS-plane rides on

  friend bool operator==(const FhContext&, const FhContext&) = default;
};

/// O-RAN C-plane section types this library implements.
enum class SectionType : std::uint8_t {
  Type1 = 1,  // most channels (DL/UL data)
  Type3 = 3,  // PRACH and mixed-numerology channels
};

}  // namespace rb
