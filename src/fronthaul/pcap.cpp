#include "fronthaul/pcap.h"

namespace rb {
namespace {

void put_u32(std::FILE* f, std::uint32_t v) {
  std::fwrite(&v, sizeof(v), 1, f);  // pcap headers are host-endian
}
void put_u16(std::FILE* f, std::uint16_t v) { std::fwrite(&v, sizeof(v), 1, f); }

}  // namespace

PcapWriter::PcapWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (!file_) return;
  // Global header: magic (us resolution), v2.4, LINKTYPE_ETHERNET(1).
  put_u32(file_, 0xa1b2c3d4);
  put_u16(file_, 2);
  put_u16(file_, 4);
  put_u32(file_, 0);        // thiszone
  put_u32(file_, 0);        // sigfigs
  put_u32(file_, 65535);    // snaplen
  put_u32(file_, 1);        // Ethernet
}

PcapWriter::~PcapWriter() {
  if (file_) std::fclose(file_);
}

void PcapWriter::write(std::span<const std::uint8_t> frame,
                       std::int64_t ts_ns) {
  if (!file_ || frame.empty()) return;
  put_u32(file_, std::uint32_t(ts_ns / 1'000'000'000));
  put_u32(file_, std::uint32_t((ts_ns % 1'000'000'000) / 1'000));
  put_u32(file_, std::uint32_t(frame.size()));
  put_u32(file_, std::uint32_t(frame.size()));
  std::fwrite(frame.data(), 1, frame.size(), file_);
  ++frames_;
}

void PcapWriter::flush() {
  if (file_) std::fflush(file_);
}

}  // namespace rb
