// eCPRI transport header codec (eCPRI spec v2.0, one-way messages).
//
// O-RAN CUS-plane rides on two eCPRI message types:
//   type 0 (IQ data)          -> U-plane
//   type 2 (real-time control) -> C-plane
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.h"
#include "fronthaul/fh_config.h"
#include "fronthaul/parse_error.h"

namespace rb {

enum class EcpriMsgType : std::uint8_t {
  IqData = 0,          // U-plane
  RtControl = 2,       // C-plane
};

struct EcpriHeader {
  EcpriMsgType msg_type = EcpriMsgType::IqData;
  std::uint16_t payload_size = 0;  // bytes after the 4-byte common header
  EaxcId eaxc{};                   // ecpriPcid (U) / ecpriRtcid (C)
  std::uint8_t seq_id = 0;
  std::uint8_t sub_seq_id = 0;     // 7 bits
  bool e_bit = true;               // last fragment indicator

  friend bool operator==(const EcpriHeader&, const EcpriHeader&) = default;

  static constexpr std::size_t kWireSize = 8;

  void encode(BufWriter& w) const;
  static std::optional<EcpriHeader> parse(BufReader& r,
                                          ParseError* err = nullptr);
};

}  // namespace rb
