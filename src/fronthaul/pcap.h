// Pcap capture of fronthaul traffic.
//
// Writes classic libpcap files (LINKTYPE_ETHERNET) that Wireshark's
// eCPRI / O-RAN FH CUS dissectors open directly - the same workflow as
// the paper's Figure 2 capture. Attach to any Port via Port::set_tap.
#pragma once

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>

namespace rb {

class PcapWriter {
 public:
  /// Opens (truncates) `path`. Check ok() before use.
  explicit PcapWriter(const std::string& path);
  ~PcapWriter();

  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  bool ok() const { return file_ != nullptr; }

  /// Append one frame with a virtual timestamp (ns since epoch 0).
  void write(std::span<const std::uint8_t> frame, std::int64_t ts_ns);

  std::uint64_t frames_written() const { return frames_; }
  void flush();

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t frames_ = 0;
};

}  // namespace rb
