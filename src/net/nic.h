// SR-IOV NIC model: a physical port plus virtual functions bridged by an
// embedded switch (paper Figure 8).
//
// Each middlebox in a chain gets one VF; traffic between chained
// middleboxes crosses the embedded switch, paying a per-hop latency that
// stands in for the PCIe round trip the paper identifies as the chaining
// bottleneck.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/switch.h"

namespace rb {

class Nic {
 public:
  /// `max_vfs` mirrors real NIC limits (several tens per port).
  explicit Nic(std::string name = "nic", std::size_t max_vfs = 64);

  /// The wire-side port: connect the fabric (or another device's port)
  /// directly to this. It is the embedded switch's uplink.
  Port& wire_port() { return *wire_sw_port_; }

  /// Create a virtual function; returns the host-facing port handed to a
  /// middlebox/driver. Throws std::length_error past max_vfs.
  Port& create_vf(const std::string& name);

  /// Pin a MAC to a VF in the embedded switch so traffic for that MAC is
  /// steered to it instead of flooded.
  void steer(const MacAddr& mac, const Port& vf_host_port);

  std::size_t num_vfs() const { return vfs_.size(); }
  EmbeddedSwitch& eswitch() { return eswitch_; }

  /// Cumulative bytes that crossed the embedded switch - the PCIe pressure
  /// metric for chaining scalability analysis.
  std::uint64_t pcie_bytes() const;

 private:
  struct Vf {
    std::unique_ptr<Port> host_port;  // given to the driver/middlebox
    Port* sw_port = nullptr;          // embedded switch side
  };

  std::string name_;
  std::size_t max_vfs_;
  EmbeddedSwitch eswitch_;
  Port* wire_sw_port_ = nullptr;
  std::vector<Vf> vfs_;
};

}  // namespace rb
