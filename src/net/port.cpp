#include "net/port.h"

#include "obs/obs.h"

namespace rb {

void Port::connect(Port& a, Port& b, std::int64_t latency_ns) {
  a.peer_ = &b;
  b.peer_ = &a;
  a.link_latency_ns_ = latency_ns;
  b.link_latency_ns_ = latency_ns;
}

bool Port::send(PacketPtr p) {
  if (!p) return false;
  if (!peer_ || !link_up_ || !peer_->link_up_) return false;  // dropped
  if (!fault_) return inject(std::move(p));
  // The hook may drop, hold, mutate or multiply the packet; deliver
  // whatever it hands back.
  fault_out_.clear();
  fault_->on_tx(std::move(p), fault_out_);
  bool delivered = false;
  for (auto& q : fault_out_) {
    if (q && inject(std::move(q))) delivered = true;
  }
  fault_out_.clear();
  return delivered;
}

bool Port::inject(PacketPtr p) {
  if (!p) return false;
  if (!peer_ || !link_up_ || !peer_->link_up_) return false;  // dropped
  stats_.tx_packets++;
  stats_.tx_bytes += p->len();
  if (obs::enabled()) {
    // Track 0 means "engine", so lazily intern on first traced traversal.
    if (obs_track_ == 0)
      obs_track_ = obs::Collector::instance().intern_track("link." + name_);
    // Wire span: departs at the packet's current stamp, dur = propagation.
    obs::emit(obs::Cat::Link, obs::kNLink, obs_track_, p->rx_time_ns,
              std::uint32_t(link_latency_ns_), p->len());
  }
  p->rx_time_ns += link_latency_ns_;
  p->ingress_port = peer_->id_;
  peer_->deliver(std::move(p));
  return true;
}

void Port::deliver(PacketPtr p) {
  stats_.rx_packets++;
  stats_.rx_bytes += p->len();
  if (tap_) tap_(*p);
  if (rx_handler_) {
    rx_handler_(std::move(p));
    return;
  }
  if (rx_queue_.size() >= rx_queue_cap_) {
    stats_.rx_dropped++;
    return;  // PacketPtr destructor returns the buffer to the pool
  }
  rx_queue_.push_back(std::move(p));
}

std::size_t Port::rx_burst(std::vector<PacketPtr>& out, std::size_t max) {
  std::size_t n = 0;
  while (n < max && !rx_queue_.empty()) {
    out.push_back(std::move(rx_queue_.front()));
    rx_queue_.pop_front();
    ++n;
  }
  return n;
}

void save_packet(state::StateWriter& w, const Packet& p) {
  w.i64(p.rx_time_ns);
  w.u16(p.ingress_port);
  w.u32(std::uint32_t(p.len()));
  if (!p.shares_payload()) {
    w.bytes(p.data());
    return;
  }
  // In-flight replica: flatten to a full frame so the checkpoint is
  // self-contained (restored packets own all their bytes) and the blob
  // stays byte-identical to one taken from an unshared packet.
  thread_local std::vector<std::uint8_t> flat;
  flat.resize(p.len());
  p.copy_to(flat);
  w.bytes(flat);
}

PacketPtr load_packet(state::StateReader& r, PacketPool& pool) {
  std::int64_t rx_time_ns = r.i64();
  std::uint16_t ingress = r.u16();
  std::uint32_t len = r.u32();
  if (!r.ok()) return nullptr;
  if (len > kPacketCapacity || len > r.section_remaining()) {
    r.fail(state::StateError::kBadValue);
    return nullptr;
  }
  PacketPtr p = pool.alloc();
  if (!p) {
    r.fail(state::StateError::kMismatch);  // pool smaller than checkpoint
    return nullptr;
  }
  r.bytes(p->raw().subspan(0, len));
  p->set_len(len);
  p->rx_time_ns = rx_time_ns;
  p->ingress_port = ingress;
  return p;
}

void Port::save_state(state::StateWriter& w) const {
  w.u64(stats_.tx_packets);
  w.u64(stats_.tx_bytes);
  w.u64(stats_.rx_packets);
  w.u64(stats_.rx_bytes);
  w.u64(stats_.rx_dropped);
  w.b(link_up_);
  w.u32(std::uint32_t(rx_queue_.size()));
  for (const PacketPtr& p : rx_queue_) save_packet(w, *p);
}

void Port::load_state(state::StateReader& r, PacketPool& pool) {
  stats_.tx_packets = r.u64();
  stats_.tx_bytes = r.u64();
  stats_.rx_packets = r.u64();
  stats_.rx_bytes = r.u64();
  stats_.rx_dropped = r.u64();
  link_up_ = r.b();
  std::uint32_t n = r.u32();
  rx_queue_.clear();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    PacketPtr p = load_packet(r, pool);
    if (p) rx_queue_.push_back(std::move(p));
  }
}

}  // namespace rb
