#include "net/nic.h"

#include <stdexcept>

namespace rb {

Nic::Nic(std::string name, std::size_t max_vfs)
    : name_(std::move(name)), max_vfs_(max_vfs), eswitch_(name_ + ".esw") {
  // The embedded switch's uplink doubles as the NIC's wire-side port.
  wire_sw_port_ = &eswitch_.add_port("uplink");
}

Port& Nic::create_vf(const std::string& name) {
  if (vfs_.size() >= max_vfs_)
    throw std::length_error(name_ + ": VF limit reached");
  Vf vf;
  vf.host_port = std::make_unique<Port>(name_ + "." + name);
  vf.sw_port = &eswitch_.add_port(name);
  // VF <-> embedded switch hop models the PCIe crossing.
  Port::connect(*vf.host_port, *vf.sw_port, /*latency_ns=*/600);
  vfs_.push_back(std::move(vf));
  return *vfs_.back().host_port;
}

void Nic::steer(const MacAddr& mac, const Port& vf_host_port) {
  // Find the switch-side port paired with this host port and pin the MAC.
  for (auto& vf : vfs_) {
    if (vf.host_port.get() == &vf_host_port) {
      eswitch_.add_static_entry(mac, *vf.sw_port);
      return;
    }
  }
}

std::uint64_t Nic::pcie_bytes() const {
  std::uint64_t total = 0;
  for (const auto& vf : vfs_)
    total += vf.host_port->stats().tx_bytes + vf.host_port->stats().rx_bytes;
  return total;
}

}  // namespace rb
