// Packet-driver models: the DPDK-like poll-mode driver and the XDP-like
// interrupt-driven driver (paper section 5 and Figure 7).
//
// Real I/O is simulated, but the *cost structure* is modeled explicitly so
// the paper's CPU-utilization and placement trade-offs (Figure 16, Table 1)
// are reproducible:
//  * PollDriver pins a core: busy 100% of wall time regardless of traffic.
//  * IrqDriver charges per-interrupt and per-packet costs, plus an AF_XDP
//    context-switch charge whenever a packet must be punted from the
//    kernel XDP program to the userspace component.
#pragma once

#include <cstdint>
#include <vector>

#include "net/port.h"

namespace rb {

/// Cost constants for the driver models, in nanoseconds. Defaults are in
/// the range reported by the AF_XDP/DPDK literature the paper cites.
struct DriverCosts {
  std::int64_t irq_overhead_ns = 1'500;      // interrupt entry/exit
  std::int64_t kernel_rx_ns = 600;           // per-packet kernel path
  std::int64_t kernel_rx_per_kb_ns = 600;    // jumbo-frame memory overhead
                                             // (multi-buffer XDP, paper S5)
  std::int64_t afxdp_redirect_ns = 1'800;    // kernel->userspace punt
  std::int64_t poll_rx_ns = 60;              // per-packet poll-mode cost
};

/// Where a packet's processing runs under the XDP implementation; the
/// middlebox declares this per packet class (Table 1 of the paper).
enum class ProcessingLocus : std::uint8_t {
  Kernel,     // handled entirely in the XDP program
  Userspace,  // punted over AF_XDP to the userspace component
};

/// Accumulates CPU busy-time against the simulation's virtual wall clock.
class CpuMeter {
 public:
  void add_busy(std::int64_t ns) { busy_ns_ += ns; }
  std::int64_t busy_ns() const { return busy_ns_; }
  void reset() { busy_ns_ = 0; }

 private:
  std::int64_t busy_ns_ = 0;
};

/// Common driver interface over one port.
class Driver {
 public:
  explicit Driver(Port& port, DriverCosts costs = {})
      : port_(&port), costs_(costs) {}
  virtual ~Driver() = default;

  /// Descriptor-ring size of one rx poll: the DPDK burst idiom the
  /// middlebox pump is built around (paper's Fig 16 baseline).
  static constexpr std::size_t kRxBurst = 32;

  /// Fetch pending packets; charges rx costs to the meter.
  std::size_t rx_burst(std::vector<PacketPtr>& out, std::size_t max = 64) {
    const std::size_t before = out.size();
    std::size_t n = port_->rx_burst(out, max);
    std::size_t bytes = 0;
    for (std::size_t i = before; i < out.size(); ++i) bytes += out[i]->len();
    charge_rx(n, bytes);
    return n;
  }

  /// Drain the whole rx queue in kRxBurst-packet bursts, appending to
  /// `out`. Cost-equivalent to calling rx_burst(out, kRxBurst) until it
  /// returns 0: each burst is charged separately, so the IRQ model still
  /// sees one interrupt per descriptor-ring sweep.
  std::size_t rx_drain(std::vector<PacketPtr>& out) {
    std::size_t total = 0;
    for (;;) {
      const std::size_t before = out.size();
      const std::size_t n = port_->rx_burst(out, kRxBurst);
      std::size_t bytes = 0;
      for (std::size_t i = before; i < out.size(); ++i) bytes += out[i]->len();
      charge_rx(n, bytes);
      if (n == 0) return total;
      total += n;
    }
  }

  bool tx(PacketPtr p) { return port_->send(std::move(p)); }
  Port& port() { return *port_; }

  /// Charge handler work. `locus` matters only for IrqDriver (AF_XDP punt).
  virtual void charge_handler(std::int64_t ns, ProcessingLocus locus) = 0;

  /// Fraction of one core consumed over `wall_ns` of virtual time [0, 1].
  virtual double utilization(std::int64_t wall_ns) const = 0;

  CpuMeter& meter() { return meter_; }
  const DriverCosts& costs() const { return costs_; }

 protected:
  virtual void charge_rx(std::size_t n_packets, std::size_t bytes) = 0;

  Port* port_;
  DriverCosts costs_;
  CpuMeter meter_;
};

/// DPDK-like poll-mode driver: the core spins; utilization is 100% by
/// construction, but per-packet latency cost is the lowest.
class PollDriver final : public Driver {
 public:
  using Driver::Driver;

  void charge_handler(std::int64_t ns, ProcessingLocus) override {
    meter_.add_busy(ns);
  }
  double utilization(std::int64_t) const override { return 1.0; }

 protected:
  void charge_rx(std::size_t n, std::size_t) override {
    meter_.add_busy(std::int64_t(n) * costs_.poll_rx_ns);
  }
};

/// XDP-like interrupt-driven driver: CPU cost scales with traffic; punting
/// to userspace over AF_XDP pays a context-switch charge per packet.
class IrqDriver final : public Driver {
 public:
  using Driver::Driver;

  void charge_handler(std::int64_t ns, ProcessingLocus locus) override {
    if (locus == ProcessingLocus::Userspace)
      meter_.add_busy(costs_.afxdp_redirect_ns);
    meter_.add_busy(ns);
  }
  double utilization(std::int64_t wall_ns) const override {
    if (wall_ns <= 0) return 0.0;
    double u = double(meter_.busy_ns()) / double(wall_ns);
    return u > 1.0 ? 1.0 : u;
  }

 protected:
  void charge_rx(std::size_t n, std::size_t bytes) override {
    if (n == 0) return;
    meter_.add_busy(costs_.irq_overhead_ns +
                    std::int64_t(n) * costs_.kernel_rx_ns +
                    std::int64_t(bytes) * costs_.kernel_rx_per_kb_ns / 1024);
  }
};

}  // namespace rb
