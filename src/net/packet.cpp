#include "net/packet.h"

#include <cstring>

namespace rb {
namespace {

/// Process-wide thread slot: each thread that ever touches a pool gets a
/// distinct small index, used to address its magazine in every pool.
/// Slots are never reused; a process churning through more than
/// kMaxThreadSlots distinct threads degrades those extras to the locked
/// path (correct, just slower).
std::atomic<unsigned> g_thread_slot_counter{0};

unsigned thread_slot() {
  thread_local const unsigned slot =
      g_thread_slot_counter.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace

void PacketDeleter::operator()(Packet* p) const {
  if (p && p->pool_) p->pool_->release(p);
}

PacketPool::PacketPool(std::size_t capacity) : capacity_(capacity) {
  storage_.reserve(capacity);
  free_.reserve(capacity);
  for (std::size_t i = 0; i < capacity; ++i) {
    storage_.push_back(std::make_unique<Packet>());
    storage_.back()->pool_ = this;
    free_.push_back(storage_.back().get());
  }
  mags_ = std::make_unique<Magazine[]>(kMaxThreadSlots);
}

// Buffers parked in magazines are just pointers into storage_; nothing to
// hand back on destruction.
PacketPool::~PacketPool() = default;

PacketPool::Magazine* PacketPool::my_magazine() {
  const unsigned slot = thread_slot();
  if (slot >= kMaxThreadSlots) return nullptr;
  return &mags_[slot];
}

PacketPtr PacketPool::alloc() {
  Packet* p = nullptr;
  Magazine* m = my_magazine();
  if (m != nullptr && m->count > 0) {
    p = m->items[--m->count];
  } else {
    std::lock_guard<std::mutex> lk(mu_);
    if (!free_.empty()) {
      p = free_.back();
      free_.pop_back();
      if (m != nullptr) {
        // Batch-refill while we hold the lock so the next half-magazine
        // of allocs on this thread stays lock-free.
        std::size_t take = free_.size() < kMagazineSize / 2
                               ? free_.size()
                               : kMagazineSize / 2;
        while (take-- > 0) {
          m->items[m->count++] = free_.back();
          free_.pop_back();
        }
      }
    }
  }
  if (p == nullptr) {
    alloc_failures_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  p->len_ = 0;
  p->rx_time_ns = 0;
  p->ingress_port = 0;
  return PacketPtr(p);
}

PacketPtr PacketPool::clone(const Packet& src) {
  PacketPtr p = alloc();
  if (!p) return nullptr;
  std::memcpy(p->buf_.data(), src.buf_.data(), src.len_);
  p->len_ = src.len_;
  p->rx_time_ns = src.rx_time_ns;
  p->ingress_port = src.ingress_port;
  return p;
}

void PacketPool::release(Packet* p) {
  outstanding_.fetch_sub(1, std::memory_order_acq_rel);
  Magazine* m = my_magazine();
  if (m != nullptr) {
    if (m->count == kMagazineSize) {
      // Full: flush half to the global list so buffers keep circulating
      // to other threads instead of accumulating here.
      std::lock_guard<std::mutex> lk(mu_);
      for (std::size_t k = 0; k < kMagazineSize / 2; ++k)
        free_.push_back(m->items[--m->count]);
    }
    m->items[m->count++] = p;
    return;
  }
  std::lock_guard<std::mutex> lk(mu_);
  free_.push_back(p);
}

PacketPool& PacketPool::default_pool() {
  static PacketPool pool(16384);
  return pool;
}

}  // namespace rb
