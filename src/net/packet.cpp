#include "net/packet.h"

#include <cstring>

namespace rb {
namespace {

/// Registry of live pools plus the recycled-thread-slot stack. Both are
/// leaked intentionally so main-thread thread_local destructors (which run
/// before static destruction) and pool destructors in any order stay safe.
std::mutex& registry_mu() {
  static std::mutex* m = new std::mutex;
  return *m;
}

std::vector<PacketPool*>& live_pools() {
  static auto* v = new std::vector<PacketPool*>;
  return *v;
}

std::vector<unsigned>& retired_slots() {
  static auto* v = new std::vector<unsigned>;
  return *v;
}

unsigned g_thread_slot_counter = 0;  // guarded by registry_mu()

}  // namespace

namespace detail {

/// Process-wide thread slot: each thread that touches a pool gets a small
/// index addressing its magazine in every pool. At thread exit the guard
/// flushes this thread's cached buffers back to every live pool (buffers
/// must not strand in a dead thread's magazine) and recycles the slot, so
/// only concurrent threads count against kMaxThreadSlots. Threads beyond
/// that degrade to the locked path (correct, just slower).
struct ThreadSlotGuard {
  unsigned slot;
  ThreadSlotGuard() {
    std::lock_guard<std::mutex> lk(registry_mu());
    if (!retired_slots().empty()) {
      slot = retired_slots().back();
      retired_slots().pop_back();
    } else {
      slot = g_thread_slot_counter++;
    }
  }
  ~ThreadSlotGuard() {
    std::lock_guard<std::mutex> lk(registry_mu());
    if (slot < PacketPool::kMaxThreadSlots) {
      for (PacketPool* pool : live_pools()) pool->flush_magazine(slot);
      retired_slots().push_back(slot);
    }
  }
};

}  // namespace detail

namespace {

unsigned thread_slot() {
  thread_local detail::ThreadSlotGuard guard;
  return guard.slot;
}

}  // namespace

void PacketDeleter::operator()(Packet* p) const {
  if (p && p->pool_) p->pool_->release(p);
}

void Packet::copy_to(std::span<std::uint8_t> out) const {
  const std::size_t n = len_ < out.size() ? len_ : out.size();
  if (seg_base_ == nullptr) {
    std::memcpy(out.data(), base_, n);
    return;
  }
  const std::size_t head = split_ < n ? split_ : n;
  std::memcpy(out.data(), base_, head);
  if (n > head) std::memcpy(out.data() + head, seg_base_ + head, n - head);
}

void Packet::ensure_writable_slow(std::size_t upto) {
  if (seg_base_ != nullptr) {
    if (upto <= split_) return;  // write confined to the private head
    pool_->promote(*this);
    return;
  }
  // Owner whose slot replicas still read. Observing our own refcnt > 1 is
  // race-free: attaching requires a live handle on this packet, and the
  // writer holds the only owner handle, so the count can only fall.
  // Writes ending at or below shared_from touch bytes every replica
  // carries privately.
  if (upto <= own_ps_->shared_from.load(std::memory_order_relaxed)) return;
  pool_->owner_copy_out(*this);
}

PacketPool::PacketPool(std::size_t capacity) : capacity_(capacity) {
  mag_cap_ = capacity_ / 8;
  if (mag_cap_ > kMagazineSize) mag_cap_ = kMagazineSize;
  if (mag_cap_ == 0) mag_cap_ = 1;
  arena_storage_ =
      std::make_unique<std::uint8_t[]>(capacity * kPacketCapacity + 63);
  const std::uintptr_t raw =
      reinterpret_cast<std::uintptr_t>(arena_storage_.get());
  arena_ = reinterpret_cast<std::uint8_t*>((raw + 63) & ~std::uintptr_t(63));
  slots_ = std::make_unique<PacketSlot[]>(capacity);
  storage_ = std::make_unique<Packet[]>(capacity);
  free_.reserve(capacity);
  spare_pkts_.reserve(capacity);
  spare_slots_.reserve(capacity);
  for (std::size_t i = 0; i < capacity; ++i) {
    Packet* p = &storage_[i];
    p->pool_ = this;
    p->base_ = arena_ + i * kPacketCapacity;
    p->own_ps_ = &slots_[i];
    free_.push_back(p);
  }
  mags_ = std::make_unique<Magazine[]>(kMaxThreadSlots);
  std::lock_guard<std::mutex> lk(registry_mu());
  live_pools().push_back(this);
}

// Buffers parked in magazines are just pointers into storage_; nothing to
// hand back on destruction beyond dropping out of the thread-exit flush
// registry.
PacketPool::~PacketPool() {
  std::lock_guard<std::mutex> lk(registry_mu());
  auto& pools = live_pools();
  for (auto it = pools.begin(); it != pools.end(); ++it) {
    if (*it == this) {
      pools.erase(it);
      break;
    }
  }
}

void PacketPool::flush_magazine(unsigned slot) {
  Magazine& m = mags_[slot];
  if (m.count == 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  while (m.count > 0) free_.push_back(m.items[--m.count]);
}

PacketPool::Magazine* PacketPool::my_magazine() {
  const unsigned slot = thread_slot();
  if (slot >= kMaxThreadSlots) return nullptr;
  return &mags_[slot];
}

PacketPtr PacketPool::alloc() {
  Packet* p = nullptr;
  Magazine* m = my_magazine();
  if (m != nullptr && m->count > 0) {
    p = m->items[--m->count];
  } else {
    std::lock_guard<std::mutex> lk(mu_);
    if (free_.empty() && !spare_pkts_.empty() && !spare_slots_.empty()) {
      // Re-pair a parked header with a parked slot (divergent owner and
      // replica lifetimes can leave one of each stranded).
      Packet* q = spare_pkts_.back();
      spare_pkts_.pop_back();
      q->base_ = spare_slots_.back();
      spare_slots_.pop_back();
      q->own_ps_ = slot_state(q->base_);
      free_.push_back(q);
    }
    if (!free_.empty()) {
      p = free_.back();
      free_.pop_back();
      if (m != nullptr) {
        // Batch-refill while we hold the lock so the next half-magazine
        // of allocs on this thread stays lock-free.
        std::size_t take =
            free_.size() < mag_cap_ / 2 ? free_.size() : mag_cap_ / 2;
        while (take-- > 0) {
          m->items[m->count++] = free_.back();
          free_.pop_back();
        }
      }
    }
  }
  if (p == nullptr) {
    alloc_failures_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  p->own_ps_->refcnt.store(1, std::memory_order_relaxed);
  p->own_ps_->shared_from.store(kSlotUnshared, std::memory_order_relaxed);
  p->seg_base_ = nullptr;
  p->seg_ps_ = nullptr;
  p->seg_pool_ = nullptr;
  p->split_ = 0;
  p->len_ = 0;
  p->rx_time_ns = 0;
  p->ingress_port = 0;
  return PacketPtr(p);
}

PacketPtr PacketPool::clone(const Packet& src) {
  PacketPtr p = alloc();
  if (!p) return nullptr;
  src.copy_to({p->base_, src.len_});
  p->len_ = src.len_;
  p->rx_time_ns = src.rx_time_ns;
  p->ingress_port = src.ingress_port;
  return p;
}

PacketPtr PacketPool::replicate(const Packet& src, std::size_t split) {
  if (split >= src.len_) return clone(src);
  PacketPtr p = alloc();
  if (!p) return nullptr;
  // Resolve the attach target: replicas of replicas attach to the root
  // segment, never chain. A header-split source keeps its own split (its
  // private head may carry per-egress rewrites the replica should see);
  // an owner or pure-alias source takes the caller's split.
  PacketSlot* seg_ps;
  const std::uint8_t* seg_base;
  PacketPool* seg_pool;
  std::uint32_t eff;
  if (src.seg_base_ != nullptr) {
    seg_ps = src.seg_ps_;
    seg_base = src.seg_base_;
    seg_pool = src.seg_pool_;
    eff = src.split_ != 0 ? src.split_ : std::uint32_t(split);
  } else {
    seg_ps = src.own_ps_;
    seg_base = src.base_;
    seg_pool = src.pool_;
    eff = std::uint32_t(split);
  }
  if (eff > 0) {
    const std::uint8_t* head_src =
        (src.seg_base_ != nullptr && src.split_ == 0) ? src.seg_base_
                                                      : src.base_;
    std::memcpy(p->base_, head_src, eff);
  }
  if (seg_ps->refcnt.fetch_add(1, std::memory_order_relaxed) == 1)
    seg_pool->shared_segments_.fetch_add(1, std::memory_order_relaxed);
  std::uint32_t cur = seg_ps->shared_from.load(std::memory_order_relaxed);
  while (eff < cur && !seg_ps->shared_from.compare_exchange_weak(
                          cur, eff, std::memory_order_relaxed)) {
  }
  p->seg_base_ = seg_base;
  p->seg_ps_ = seg_ps;
  p->seg_pool_ = seg_pool;
  p->split_ = eff;
  p->len_ = src.len_;
  p->rx_time_ns = src.rx_time_ns;
  p->ingress_port = src.ingress_port;
  replicas_zero_copy_.fetch_add(1, std::memory_order_relaxed);
  return p;
}

void PacketPool::detach_segment(Packet* p) {
  PacketSlot* ps = p->seg_ps_;
  PacketPool* sp = p->seg_pool_;
  const std::uint8_t* sb = p->seg_base_;
  p->seg_base_ = nullptr;
  p->seg_ps_ = nullptr;
  p->seg_pool_ = nullptr;
  p->split_ = 0;
  // acq_rel: release orders our final reads of the segment before the
  // decrement; the thread that observes the count hit zero acquires them
  // before recycling the slot for a new writer.
  const std::uint32_t prev = ps->refcnt.fetch_sub(1, std::memory_order_acq_rel);
  if (prev == 2) sp->shared_segments_.fetch_sub(1, std::memory_order_relaxed);
  if (prev == 1) sp->recycle_slot(const_cast<std::uint8_t*>(sb));
}

void PacketPool::recycle_slot(std::uint8_t* slot_base) {
  slot_state(slot_base)->shared_from.store(kSlotUnshared,
                                           std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(mu_);
  if (!spare_pkts_.empty()) {
    Packet* q = spare_pkts_.back();
    spare_pkts_.pop_back();
    q->base_ = slot_base;
    q->own_ps_ = slot_state(slot_base);
    free_.push_back(q);
  } else {
    spare_slots_.push_back(slot_base);
  }
}

void PacketPool::owner_copy_out(Packet& p) {
  std::uint8_t* ns = nullptr;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!spare_slots_.empty()) {
      ns = spare_slots_.back();
      spare_slots_.pop_back();
    } else if (!free_.empty()) {
      // Break a free pair: take its slot, park the header.
      Packet* q = free_.back();
      free_.pop_back();
      ns = q->base_;
      q->base_ = nullptr;
      q->own_ps_ = nullptr;
      spare_pkts_.push_back(q);
    }
  }
  if (ns == nullptr) {
    // The global list may be empty while this thread's magazine holds
    // free pairs; break one of those instead.
    Magazine* m = my_magazine();
    if (m != nullptr && m->count > 0) {
      Packet* q = m->items[--m->count];
      ns = q->base_;
      q->base_ = nullptr;
      q->own_ps_ = nullptr;
      std::lock_guard<std::mutex> lk(mu_);
      spare_pkts_.push_back(q);
    }
  }
  if (ns == nullptr) {
    // Exhausted: write in place. Replicas may observe the write; the
    // counter lets operators size pools so this never fires.
    cow_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::memcpy(ns, p.base_, p.len_);
  PacketSlot* nps = slot_state(ns);
  nps->refcnt.store(1, std::memory_order_relaxed);
  nps->shared_from.store(kSlotUnshared, std::memory_order_relaxed);
  std::uint8_t* ob = p.base_;
  PacketSlot* ops = p.own_ps_;
  p.base_ = ns;
  p.own_ps_ = nps;
  const std::uint32_t prev =
      ops->refcnt.fetch_sub(1, std::memory_order_acq_rel);
  if (prev == 2) shared_segments_.fetch_sub(1, std::memory_order_relaxed);
  if (prev == 1) recycle_slot(ob);  // every replica died mid-write
  cow_promotions_.fetch_add(1, std::memory_order_relaxed);
}

void PacketPool::promote(Packet& p) {
  if (p.len_ > p.split_)
    std::memcpy(p.base_ + p.split_, p.seg_base_ + p.split_,
                p.len_ - p.split_);
  detach_segment(&p);
  cow_promotions_.fetch_add(1, std::memory_order_relaxed);
}

void PacketPool::release(Packet* p) {
  if (p->seg_ps_ != nullptr) detach_segment(p);
  outstanding_.fetch_sub(1, std::memory_order_acq_rel);
  const std::uint32_t prev =
      p->own_ps_->refcnt.fetch_sub(1, std::memory_order_acq_rel);
  if (prev == 2) shared_segments_.fetch_sub(1, std::memory_order_relaxed);
  if (prev != 1) {
    // Replicas still read this slot: park the header until the last one
    // detaches and recycle_slot() re-pairs it. If a spare slot is already
    // waiting (a concurrent detach beat us here), re-pair immediately.
    std::lock_guard<std::mutex> lk(mu_);
    if (!spare_slots_.empty()) {
      p->base_ = spare_slots_.back();
      spare_slots_.pop_back();
      p->own_ps_ = slot_state(p->base_);
      free_.push_back(p);
    } else {
      p->base_ = nullptr;
      p->own_ps_ = nullptr;
      spare_pkts_.push_back(p);
    }
    return;
  }
  Magazine* m = my_magazine();
  if (m != nullptr) {
    if (m->count >= mag_cap_) {
      // Full: flush half (at least one) to the global list so buffers
      // keep circulating to other threads instead of accumulating here.
      const std::size_t flush = mag_cap_ - mag_cap_ / 2;
      std::lock_guard<std::mutex> lk(mu_);
      for (std::size_t k = 0; k < flush; ++k)
        free_.push_back(m->items[--m->count]);
    }
    m->items[m->count++] = p;
    return;
  }
  std::lock_guard<std::mutex> lk(mu_);
  free_.push_back(p);
}

PacketPool& PacketPool::default_pool() {
  static PacketPool pool(16384);
  return pool;
}

}  // namespace rb
