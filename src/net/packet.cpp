#include "net/packet.h"

#include <cstring>

namespace rb {

void PacketDeleter::operator()(Packet* p) const {
  if (p && p->pool_) p->pool_->release(p);
}

PacketPool::PacketPool(std::size_t capacity) : capacity_(capacity) {
  storage_.reserve(capacity);
  free_.reserve(capacity);
  for (std::size_t i = 0; i < capacity; ++i) {
    storage_.push_back(std::make_unique<Packet>());
    storage_.back()->pool_ = this;
    free_.push_back(storage_.back().get());
  }
}

PacketPool::~PacketPool() = default;

PacketPtr PacketPool::alloc() {
  Packet* p = nullptr;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (free_.empty()) {
      ++alloc_failures_;
      return nullptr;
    }
    p = free_.back();
    free_.pop_back();
  }
  p->len_ = 0;
  p->rx_time_ns = 0;
  p->ingress_port = 0;
  return PacketPtr(p);
}

PacketPtr PacketPool::clone(const Packet& src) {
  PacketPtr p = alloc();
  if (!p) return nullptr;
  std::memcpy(p->buf_.data(), src.buf_.data(), src.len_);
  p->len_ = src.len_;
  p->rx_time_ns = src.rx_time_ns;
  p->ingress_port = src.ingress_port;
  return p;
}

void PacketPool::release(Packet* p) {
  std::lock_guard<std::mutex> lk(mu_);
  free_.push_back(p);
}

PacketPool& PacketPool::default_pool() {
  static PacketPool pool(16384);
  return pool;
}

}  // namespace rb
