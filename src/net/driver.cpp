// driver.h is header-only; see packet.cpp for pool implementation.
#include "net/driver.h"

namespace rb {
// Intentionally empty.
}  // namespace rb
