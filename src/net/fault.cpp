#include "net/fault.h"

#include <algorithm>
#include <cstdio>

#include "obs/obs.h"

namespace rb {

namespace {

// Flip `bits` random bits anywhere past the Ethernet MAC addresses. MACs
// are spared so corruption exercises parser robustness (bad ethertype,
// bad eCPRI header, garbage sections, flipped IQ) rather than teaching
// the learning switch phantom hosts.
void corrupt_payload(Packet& p, int bits, FaultRng& rng) {
  constexpr std::size_t kSkip = 12;  // dst + src MAC
  if (p.len() <= kSkip) return;
  const std::size_t span = p.len() - kSkip;
  auto bytes = p.mutable_data();  // CoW: a shared replica privatizes first
  for (int i = 0; i < bits; ++i) {
    const std::size_t byte = kSkip + std::size_t(rng.below(span));
    bytes[byte] ^= std::uint8_t(1u << rng.below(8));
  }
}

}  // namespace

FaultyLink::FaultyLink(std::string name, Port& a, Port& b, FaultPlan a_to_b,
                       FaultPlan b_to_a)
    : name_(std::move(name)) {
  ab_.plan = std::move(a_to_b);
  ba_.plan = std::move(b_to_a);
  ab_.rng = FaultRng(ab_.plan.seed * 2 + 1);
  ba_.rng = FaultRng(ba_.plan.seed * 2 + 2);
  ab_.src = &a;
  ba_.src = &b;
  ab_.obs_track = obs::Collector::instance().intern_track(name_ + ".ab");
  ba_.obs_track = obs::Collector::instance().intern_track(name_ + ".ba");
  a.set_fault_hook(&ab_);
  b.set_fault_hook(&ba_);
}

FaultyLink::~FaultyLink() {
  if (ab_.src && ab_.src->fault_hook() == &ab_) ab_.src->set_fault_hook(nullptr);
  if (ba_.src && ba_.src->fault_hook() == &ba_) ba_.src->set_fault_hook(nullptr);
}

void FaultyLink::Dir::on_tx(PacketPtr p, std::vector<PacketPtr>& out) {
  // Annotation helper: instants on this direction's track, stamped with
  // the packet's (possibly perturbed) virtual time.
  const auto note = [&](std::uint16_t name, std::int64_t ts,
                        std::uint32_t dur = 0, std::uint64_t arg = 0) {
    if (obs::enabled()) obs::emit(obs::Cat::Fault, name, obs_track, ts, dur, arg);
  };
  if (down) {
    stats.flap_loss++;
    note(obs::kNFaultFlap, p->rx_time_ns, 0, p->len());
    return;  // packet evaporates on the downed direction
  }
  bool touched = false;
  // Gilbert-Elliott burst loss: advance the two-state chain, then roll
  // for loss in the bad state.
  if (plan.ge_enter_bad > 0) {
    if (!ge_bad) {
      if (rng.uniform() < plan.ge_enter_bad) ge_bad = true;
    } else if (rng.uniform() < plan.ge_exit_bad) {
      ge_bad = false;
    }
    if (ge_bad && rng.uniform() < plan.ge_loss_bad) {
      stats.burst_loss++;
      note(obs::kNFaultBurst, p->rx_time_ns, 0, p->len());
      return;
    }
  }
  if (plan.loss > 0 && rng.uniform() < plan.loss) {
    stats.iid_loss++;
    note(obs::kNFaultLoss, p->rx_time_ns, 0, p->len());
    return;
  }
  if (plan.corrupt > 0 && rng.uniform() < plan.corrupt) {
    corrupt_payload(*p, plan.corrupt_bits, rng);
    stats.corrupted++;
    note(obs::kNFaultCorrupt, p->rx_time_ns, 0,
         std::uint64_t(plan.corrupt_bits));
    touched = true;
  }
  if (plan.delay_ns > 0 || plan.jitter_ns > 0) {
    const std::int64_t extra =
        plan.delay_ns +
        (plan.jitter_ns > 0
             ? std::int64_t(rng.below(std::uint64_t(plan.jitter_ns)))
             : 0);
    if (extra > 0) {
      // Annotated span over the injected extra delay, distinct from the
      // link's own propagation span (which Port::inject emits).
      note(obs::kNFaultDelay, p->rx_time_ns, std::uint32_t(extra),
           std::uint64_t(extra));
      p->rx_time_ns += extra;
      stats.delayed++;
      stats.delay_ns_total += std::uint64_t(extra);
      touched = true;
    }
  }
  PacketPtr dup;
  if (plan.duplicate > 0 && rng.uniform() < plan.duplicate) {
    // Zero-copy alias: the duplicate shares every byte of the original's
    // slot; a later write on either side promotes to a private copy.
    dup = p->pool()->replicate(*p, 0);
    if (dup) {
      stats.duplicated++;
      note(obs::kNFaultDup, p->rx_time_ns, 0, p->len());
      touched = true;
    }
  }
  if (held) {
    // A packet is waiting: the current one overtakes it. Release the held
    // packet second with a timestamp no earlier than the overtaker so the
    // receiver observes genuine reordering, not just a resort.
    held->rx_time_ns = std::max(held->rx_time_ns, p->rx_time_ns);
    note(obs::kNFaultReorder, held->rx_time_ns, 0, held->len());
    out.push_back(std::move(p));
    out.push_back(std::move(held));
    stats.reordered++;
  } else if (plan.reorder > 0 && rng.uniform() < plan.reorder) {
    held = std::move(p);  // next packet or slot boundary releases it
  } else {
    out.push_back(std::move(p));
    if (!touched) stats.passed++;
  }
  if (dup) out.push_back(std::move(dup));
}

void FaultyLink::Dir::release_held(std::vector<PacketPtr>& out) {
  if (!held) return;
  stats.held_released++;
  out.push_back(std::move(held));
}

void FaultyLink::begin_slot(std::int64_t slot) {
  for (Dir* d : {&ab_, &ba_}) {
    d->down = false;
    for (const auto& f : d->plan.flaps) {
      if (slot >= f.down_slot && slot < f.up_slot) {
        d->down = true;
        break;
      }
    }
    // A hold must not outlive the slot: release it (bypassing the hook,
    // so no fresh perturbation or PRNG draw) with its original timestamp;
    // consumers count it as late.
    if (d->held) {
      std::vector<PacketPtr> rel;
      d->release_held(rel);
      for (auto& p : rel) {
        if (d->down) {
          d->stats.flap_loss++;
        } else {
          d->src->inject(std::move(p));
        }
      }
    }
  }
}

void FaultyLink::dump_dir(const Dir& d, const std::string& prefix,
                          std::string& out) {
  const auto line = [&](const char* key, std::uint64_t v) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s.%s=%llu\n", prefix.c_str(), key,
                  static_cast<unsigned long long>(v));
    out += buf;
  };
  line("iid_loss", d.stats.iid_loss);
  line("burst_loss", d.stats.burst_loss);
  line("flap_loss", d.stats.flap_loss);
  line("delayed", d.stats.delayed);
  line("delay_ns_total", d.stats.delay_ns_total);
  line("duplicated", d.stats.duplicated);
  line("reordered", d.stats.reordered);
  line("corrupted", d.stats.corrupted);
  line("held_released", d.stats.held_released);
  line("passed", d.stats.passed);
}

std::string FaultyLink::dump() const {
  std::string out;
  dump_dir(ab_, name_ + ".ab", out);
  dump_dir(ba_, name_ + ".ba", out);
  return out;
}

void FaultyLink::save_state(state::StateWriter& w) const {
  for (const Dir* d : {&ab_, &ba_}) {
    w.u64(d->rng.state());
    w.u64(d->stats.iid_loss);
    w.u64(d->stats.burst_loss);
    w.u64(d->stats.flap_loss);
    w.u64(d->stats.delayed);
    w.u64(d->stats.delay_ns_total);
    w.u64(d->stats.duplicated);
    w.u64(d->stats.reordered);
    w.u64(d->stats.corrupted);
    w.u64(d->stats.held_released);
    w.u64(d->stats.passed);
    w.b(d->ge_bad);
    w.b(d->down);
    w.b(d->held != nullptr);
    if (d->held) save_packet(w, *d->held);
  }
}

void FaultyLink::load_state(state::StateReader& r) {
  for (Dir* d : {&ab_, &ba_}) {
    d->rng.set_state(r.u64());
    d->stats.iid_loss = r.u64();
    d->stats.burst_loss = r.u64();
    d->stats.flap_loss = r.u64();
    d->stats.delayed = r.u64();
    d->stats.delay_ns_total = r.u64();
    d->stats.duplicated = r.u64();
    d->stats.reordered = r.u64();
    d->stats.corrupted = r.u64();
    d->stats.held_released = r.u64();
    d->stats.passed = r.u64();
    d->ge_bad = r.b();
    d->down = r.b();
    d->held.reset();
    if (r.b()) d->held = load_packet(r, PacketPool::default_pool());
  }
}

}  // namespace rb
