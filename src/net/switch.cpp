#include "net/switch.h"

#include <algorithm>

#include "net/packet.h"

namespace rb {

Port& EmbeddedSwitch::add_port(const std::string& name) {
  auto port = std::make_unique<Port>(name_ + "." + name);
  Port* raw = port.get();
  const std::size_t idx = ports_.size();
  raw->set_id(std::uint16_t(idx));
  raw->set_rx_handler([this, idx](PacketPtr p) { on_rx(idx, std::move(p)); });
  ports_.push_back(std::move(port));
  return *raw;
}

void EmbeddedSwitch::add_static_entry(const MacAddr& mac, const Port& port) {
  static_fdb_[mac] = port.id();
}

void EmbeddedSwitch::on_rx(std::size_t in_port, PacketPtr p) {
  auto frame = p->data();
  if (frame.size() < 14) {  // runt, drop
    ++runt_dropped_;
    return;
  }
  MacAddr dst, src;
  std::copy(frame.begin(), frame.begin() + 6, dst.bytes.begin());
  std::copy(frame.begin() + 6, frame.begin() + 12, src.bytes.begin());

  // Learn the source.
  fdb_[src] = in_port;
  p->rx_time_ns += hop_latency_ns_;

  // Static entries win, then learned, then flood.
  std::size_t out = SIZE_MAX;
  if (auto it = static_fdb_.find(dst); it != static_fdb_.end())
    out = it->second;
  else if (auto it2 = fdb_.find(dst); it2 != fdb_.end())
    out = it2->second;

  if (out != SIZE_MAX && out != in_port && !dst.is_broadcast()) {
    ++forwarded_;
    ports_[out]->send(std::move(p));
    return;
  }
  // Flood to all ports except ingress: zero-copy alias replicas for all
  // egresses but the last, which gets the original packet itself.
  ++flooded_;
  std::size_t last = SIZE_MAX;
  for (std::size_t i = ports_.size(); i-- > 0;) {
    if (i != in_port) {
      last = i;
      break;
    }
  }
  if (last == SIZE_MAX) return;  // no egress ports
  for (std::size_t i = 0; i < last; ++i) {
    if (i == in_port) continue;
    PacketPtr copy = p->pool()->replicate(*p, 0);
    if (copy) ports_[i]->send(std::move(copy));
  }
  ports_[last]->send(std::move(p));
}


void EmbeddedSwitch::save_state(state::StateWriter& w) const {
  std::vector<std::pair<MacAddr, std::size_t>> fdb(fdb_.begin(), fdb_.end());
  std::sort(fdb.begin(), fdb.end(), [](const auto& a, const auto& b) {
    return a.first.bytes < b.first.bytes;
  });
  w.u32(std::uint32_t(fdb.size()));
  for (const auto& [mac, port] : fdb) {
    w.bytes(mac.bytes);
    w.u32(std::uint32_t(port));
  }
  w.u64(flooded_);
  w.u64(forwarded_);
  w.u64(runt_dropped_);
  w.u32(std::uint32_t(ports_.size()));
  for (const auto& p : ports_) p->save_state(w);
}

void EmbeddedSwitch::load_state(state::StateReader& r) {
  fdb_.clear();
  for (std::uint32_t i = 0, n = r.count(10); i < n && r.ok(); ++i) {
    MacAddr mac;
    r.bytes(mac.bytes);
    const std::uint32_t port = r.u32();
    if (port >= ports_.size()) {
      r.fail(state::StateError::kBadValue);
      return;
    }
    fdb_[mac] = port;
  }
  flooded_ = r.u64();
  forwarded_ = r.u64();
  runt_dropped_ = r.u64();
  if (r.count(1) != ports_.size()) {
    r.fail(state::StateError::kMismatch);
    return;
  }
  for (const auto& p : ports_)
    p->load_state(r, PacketPool::default_pool());
}

}  // namespace rb
