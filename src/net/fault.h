// Deterministic fault injection for simulated Ethernet links.
//
// A FaultPlan describes what one direction of a link does to traffic:
// i.i.d. loss, bursty (Gilbert-Elliott) loss, fixed delay plus uniform
// jitter, reordering, duplication, payload bit corruption and scheduled
// link flaps. A FaultyLink attaches one plan per direction to an already
// connected Port pair and perturbs every transmitted packet.
//
// Determinism: each direction owns a splitmix64 PRNG seeded from the
// plan seed, and draws exactly one stream of numbers in packet-send
// order. Because per-link send order is identical under serial and
// parallel execution (the engine's deferred-TX barrier flushes in
// insertion order and flow-affine islands serialize each link), two runs
// with the same seed replay bit-identically under any ExecPolicy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/port.h"

namespace rb {

/// Faults applied to one direction of a link.
struct FaultPlan {
  // Independent per-packet loss probability (applied in the good state).
  double loss = 0.0;

  // Gilbert-Elliott burst loss: per-packet probability of entering the
  // bad state, of leaving it, and of loss while in it. Disabled unless
  // ge_enter_bad > 0.
  double ge_enter_bad = 0.0;
  double ge_exit_bad = 0.2;
  double ge_loss_bad = 0.5;

  // Added one-way latency: delay_ns plus uniform jitter in [0, jitter_ns).
  std::int64_t delay_ns = 0;
  std::int64_t jitter_ns = 0;

  // Per-packet probability of duplicating the packet on the wire.
  double duplicate = 0.0;

  // Per-packet probability of holding the packet back so the next packet
  // (or the next slot boundary) overtakes it.
  double reorder = 0.0;

  // Per-packet probability of flipping `corrupt_bits` random payload bits
  // (anywhere past the Ethernet MAC addresses, so corruption can hit the
  // ethertype, eCPRI header, section fields or IQ samples).
  double corrupt = 0.0;
  int corrupt_bits = 1;

  /// Scheduled link flap: direction is down for slots in [down_slot, up_slot).
  struct Flap {
    std::int64_t down_slot = 0;
    std::int64_t up_slot = 0;
  };
  std::vector<Flap> flaps;

  std::uint64_t seed = 0x9e3779b97f4a7c15ull;

  /// True if any fault can ever fire (an all-zero plan is attachable but
  /// idle: the hook still runs, nothing is drawn or perturbed).
  bool active() const {
    return loss > 0 || ge_enter_bad > 0 || delay_ns > 0 || jitter_ns > 0 ||
           duplicate > 0 || reorder > 0 || corrupt > 0 || !flaps.empty();
  }
};

/// Cumulative per-direction fault counters.
struct FaultStats {
  std::uint64_t iid_loss = 0;
  std::uint64_t burst_loss = 0;
  std::uint64_t flap_loss = 0;
  std::uint64_t delayed = 0;
  /// Sum of injected extra delay (ns) over all delayed packets: the
  /// adaptation controller's jitter/latency quality tap (mean injected
  /// one-way delay = delay_ns_total / delayed).
  std::uint64_t delay_ns_total = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t held_released = 0;  // reorder holds released at slot start
  std::uint64_t passed = 0;         // delivered unmodified

  std::uint64_t dropped() const { return iid_loss + burst_loss + flap_loss; }
};

/// splitmix64: tiny, seedable, statistically fine for fault schedules.
class FaultRng {
 public:
  explicit FaultRng(std::uint64_t seed) : s_(seed ? seed : 1) {}

  std::uint64_t next() {
    std::uint64_t z = (s_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  /// Uniform double in [0, 1).
  double uniform() { return double(next() >> 11) * 0x1.0p-53; }
  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) { return n ? next() % n : 0; }

  /// Raw generator state, for checkpoint/restore. set_state() with a
  /// value from state() resumes the stream exactly where it left off.
  std::uint64_t state() const { return s_; }
  void set_state(std::uint64_t s) { s_ = s ? s : 1; }

 private:
  std::uint64_t s_;
};

/// Fault injector for both directions of a connected Port pair. Installs
/// itself as the ports' fault hook on construction and detaches on
/// destruction. Call begin_slot() at every slot boundary (Deployment::
/// add_fault registers this with the SlotEngine) to advance flap state
/// and release reorder-held packets.
class FaultyLink {
 public:
  FaultyLink(std::string name, Port& a, Port& b, FaultPlan a_to_b,
             FaultPlan b_to_a = {});
  ~FaultyLink();

  FaultyLink(const FaultyLink&) = delete;
  FaultyLink& operator=(const FaultyLink&) = delete;

  /// Advance scheduled flaps and flush reorder holds from the previous
  /// slot (released packets keep their original timestamps, so consumers
  /// see them as severely late).
  void begin_slot(std::int64_t slot);

  const std::string& name() const { return name_; }
  const FaultStats& stats_ab() const { return ab_.stats; }
  const FaultStats& stats_ba() const { return ba_.stats; }

  /// Replace a direction's plan mid-run (phased degradation scenarios).
  /// The PRNG stream and cumulative stats carry over, so a run with the
  /// same seed and the same mutation schedule replays bit-identically.
  void set_plan_ab(const FaultPlan& p) { ab_.plan = p; }
  void set_plan_ba(const FaultPlan& p) { ba_.plan = p; }
  const FaultPlan& plan_ab() const { return ab_.plan; }
  const FaultPlan& plan_ba() const { return ba_.plan; }

  /// Render both directions' counters as "<name>.<dir>.<field>=v" lines,
  /// in a fixed order (chaos tests compare these byte-for-byte).
  std::string dump() const;

  /// Checkpoint both directions' mutable state: PRNG stream position,
  /// cumulative stats, Gilbert-Elliott / flap state and any reorder-held
  /// packet. Plans are config (rebuilt by the deployment builder), not
  /// state. Writes into the caller's open section.
  void save_state(state::StateWriter& w) const;
  void load_state(state::StateReader& r);

 private:
  struct Dir final : FaultHook {
    void on_tx(PacketPtr p, std::vector<PacketPtr>& out) override;
    void release_held(std::vector<PacketPtr>& out);

    FaultPlan plan;
    FaultRng rng{1};
    FaultStats stats;
    Port* src = nullptr;  // the port whose TX this direction perturbs
    std::uint16_t obs_track = 0;  // obs track for fault annotations
    bool ge_bad = false;
    bool down = false;
    PacketPtr held;
  };

  static void dump_dir(const Dir& d, const std::string& prefix,
                       std::string& out);

  std::string name_;
  Dir ab_;
  Dir ba_;
};

}  // namespace rb
