// Ports and links: the simulated Ethernet fabric's endpoints.
//
// The simulation is single-threaded and event-synchronous: Port::send()
// pushes a packet across the attached link, adding the link's propagation
// latency to the packet timestamp, into the peer's bounded RX queue (or a
// sink callback for inline forwarding elements like the switch).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "net/packet.h"
#include "state/serialize.h"

namespace rb {

/// Serialize one packet (payload + virtual-time metadata) into an open
/// state section. Symmetric with load_packet().
void save_packet(state::StateWriter& w, const Packet& p);
/// Rebuild a packet from a state section, allocating from `pool`.
/// Returns nullptr (and latches an error on `r`) on malformed input or
/// pool exhaustion.
PacketPtr load_packet(state::StateReader& r, PacketPool& pool);

struct PortStats {
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_packets = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t rx_dropped = 0;  // RX queue overflow
};

/// Intercepts packets on their way from a port onto the wire (fault
/// injection). The hook takes ownership of the outbound packet and pushes
/// zero or more packets onto `out` for delivery: none (dropped or held for
/// later), the original (possibly mutated: corrupted payload, extra
/// latency), or extras (duplicates, previously held packets).
class FaultHook {
 public:
  virtual ~FaultHook() = default;
  virtual void on_tx(PacketPtr p, std::vector<PacketPtr>& out) = 0;
};

/// A network port. Connect two ports with Port::connect(); a port either
/// queues received packets (default) or hands them to an rx handler (used
/// by switches to forward inline).
class Port {
 public:
  explicit Port(std::string name = "port", std::size_t rx_queue_cap = 1024)
      : name_(std::move(name)), rx_queue_cap_(rx_queue_cap) {}

  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  const std::string& name() const { return name_; }
  const PortStats& stats() const { return stats_; }
  std::uint16_t id() const { return id_; }
  void set_id(std::uint16_t id) { id_ = id; }

  /// Wire two ports together with a symmetric propagation latency.
  static void connect(Port& a, Port& b, std::int64_t latency_ns = 1000);

  bool connected() const { return peer_ != nullptr; }
  Port* peer() const { return peer_; }

  /// Transmit a packet to the peer. Consumes the packet. Returns false
  /// (and drops) if the port is unwired or the peer queue is full.
  bool send(PacketPtr p);

  /// Deliver a packet to the peer as if transmitted now, bypassing the
  /// fault hook. Used by the fault layer to release held/duplicated
  /// packets without re-perturbing them.
  bool inject(PacketPtr p);

  /// Install/remove a fault hook on this port's TX path (FaultyLink).
  void set_fault_hook(FaultHook* h) { fault_ = h; }
  FaultHook* fault_hook() const { return fault_; }

  /// Pop up to `max` received packets into `out`. Returns count.
  std::size_t rx_burst(std::vector<PacketPtr>& out, std::size_t max = 64);

  /// Number of packets waiting in the RX queue.
  std::size_t rx_pending() const { return rx_queue_.size(); }

  /// Install an inline receive handler (switch forwarding). When set, the
  /// RX queue is bypassed.
  void set_rx_handler(std::function<void(PacketPtr)> h) {
    rx_handler_ = std::move(h);
  }

  /// Simulate link failure/recovery (used by failure-injection tests).
  void set_link_up(bool up) { link_up_ = up; }
  bool link_up() const { return link_up_; }

  /// Passive tap on received frames (e.g. a PcapWriter); called before
  /// queueing/handling, never takes ownership.
  void set_tap(std::function<void(const Packet&)> tap) {
    tap_ = std::move(tap);
  }

  /// Checkpoint the port's mutable state: counters, link administrative
  /// state and any packets still waiting in the RX queue (delay/jitter
  /// faults push arrivals across the slot barrier, so in-flight packets
  /// are real state). Writes into the caller's open section.
  void save_state(state::StateWriter& w) const;
  /// Restore from save_state(). RX-queue packets are reallocated from
  /// `pool`.
  void load_state(state::StateReader& r, PacketPool& pool);

 private:
  void deliver(PacketPtr p);

  std::string name_;
  std::uint16_t id_ = 0;
  Port* peer_ = nullptr;
  std::int64_t link_latency_ns_ = 0;
  std::uint16_t obs_track_ = 0;  // obs track for wire spans (0 = not yet)
  std::size_t rx_queue_cap_;
  std::deque<PacketPtr> rx_queue_;
  std::function<void(PacketPtr)> rx_handler_;
  std::function<void(const Packet&)> tap_;
  PortStats stats_;
  FaultHook* fault_ = nullptr;
  std::vector<PacketPtr> fault_out_;  // scratch for hook results
  bool link_up_ = true;
};

}  // namespace rb
