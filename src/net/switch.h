// L2 switch with static + learned MAC forwarding and VLAN awareness.
//
// Used twice in the architecture: as the fronthaul aggregation switch
// (the testbed's Arista 7050) and as the embedded NIC switch that connects
// SR-IOV virtual functions for middlebox chaining (paper Figure 8).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mac_addr.h"
#include "net/port.h"
#include "state/serialize.h"

namespace rb {

class EmbeddedSwitch {
 public:
  explicit EmbeddedSwitch(std::string name = "sw") : name_(std::move(name)) {}

  /// Add a switch-side port. The returned port should be connected (via
  /// Port::connect) to the device's port. Forwarding happens inline on
  /// receive.
  Port& add_port(const std::string& name);

  /// Pin a MAC address to a port (static entry; takes precedence over
  /// learned entries).
  void add_static_entry(const MacAddr& mac, const Port& port);

  std::size_t num_ports() const { return ports_.size(); }
  std::uint64_t flooded() const { return flooded_; }
  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t runt_dropped() const { return runt_dropped_; }

  /// Per-hop forwarding latency added to packets (models switch + PCIe
  /// cost for the embedded NIC switch case).
  void set_hop_latency_ns(std::int64_t ns) { hop_latency_ns_ = ns; }

  /// Checkpoint the learned FDB and forwarding counters (static entries
  /// and port wiring are config). Learned entries are serialized sorted
  /// by MAC so the blob is deterministic; without them a restored switch
  /// would flood where the original forwarded.
  void save_state(state::StateWriter& w) const;
  void load_state(state::StateReader& r);

 private:
  void on_rx(std::size_t in_port, PacketPtr p);

  std::string name_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::unordered_map<MacAddr, std::size_t, MacAddrHash> fdb_;
  std::unordered_map<MacAddr, std::size_t, MacAddrHash> static_fdb_;
  std::int64_t hop_latency_ns_ = 500;
  std::uint64_t flooded_ = 0;
  std::uint64_t forwarded_ = 0;
  std::uint64_t runt_dropped_ = 0;
};

}  // namespace rb
