// Packet buffers and pools.
//
// Mirrors the mbuf discipline of a DPDK datapath: fixed-capacity buffers
// drawn from a pre-allocated pool, returned on release, never allocated on
// the hot path. Capacity covers jumbo fronthaul frames (100 MHz cells
// generate > 7 KB U-plane frames, paper section 5).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace rb {

/// Jumbo-frame capacity: 9000-byte MTU plus L2 headers.
inline constexpr std::size_t kPacketCapacity = 9216;

class PacketPool;

/// One network packet. Data lives inline; `len` is the frame length.
class Packet {
 public:
  std::span<std::uint8_t> data() { return {buf_.data(), len_}; }
  std::span<const std::uint8_t> data() const { return {buf_.data(), len_}; }
  std::span<std::uint8_t> raw() { return {buf_.data(), buf_.size()}; }

  std::size_t len() const { return len_; }
  /// Set the frame length after writing into raw(). Clamped to capacity.
  void set_len(std::size_t n) {
    len_ = n > buf_.size() ? buf_.size() : n;
  }

  /// Virtual receive timestamp (ns since simulation start); set by ports.
  std::int64_t rx_time_ns = 0;
  /// Ingress port identifier for debugging/telemetry.
  std::uint16_t ingress_port = 0;

 private:
  friend class PacketPool;
  friend struct PacketDeleter;
  std::vector<std::uint8_t> buf_ = std::vector<std::uint8_t>(kPacketCapacity);
  std::size_t len_ = 0;
  PacketPool* pool_ = nullptr;
};

struct PacketDeleter {
  void operator()(Packet* p) const;
};

/// Owning handle; returning to the pool happens on destruction.
using PacketPtr = std::unique_ptr<Packet, PacketDeleter>;

/// Fixed-size pool of packets. alloc() returns nullptr when exhausted,
/// which the ports count as drops - the same back-pressure behaviour an
/// mbuf pool exhibits under overload.
///
/// Thread-safe: the free list is mutex-guarded so sharded workers of the
/// parallel execution engine can allocate/release concurrently (packets
/// cross shard boundaries when a flow's producer and consumer live on
/// different workers). The critical section is a pointer push/pop; the
/// payload copy of clone() happens outside the lock.
class PacketPool {
 public:
  explicit PacketPool(std::size_t capacity = 4096);
  ~PacketPool();

  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// Get a fresh packet (len 0, metadata cleared); nullptr if exhausted.
  PacketPtr alloc();

  /// Deep-copy a packet (the A2 replication primitive).
  PacketPtr clone(const Packet& src);

  std::size_t capacity() const { return capacity_; }
  std::size_t in_use() const {
    std::lock_guard<std::mutex> lk(mu_);
    return capacity_ - free_.size();
  }
  std::uint64_t alloc_failures() const {
    std::lock_guard<std::mutex> lk(mu_);
    return alloc_failures_;
  }

  /// Process-wide default pool used when callers do not wire their own.
  static PacketPool& default_pool();

 private:
  friend struct PacketDeleter;
  void release(Packet* p);

  std::size_t capacity_;
  std::vector<std::unique_ptr<Packet>> storage_;
  mutable std::mutex mu_;  // guards free_ and alloc_failures_
  std::vector<Packet*> free_;
  std::uint64_t alloc_failures_ = 0;
};

}  // namespace rb
