// Packet buffers and pools.
//
// Mirrors the mbuf discipline of a DPDK datapath: fixed-capacity buffers
// drawn from a pre-allocated pool, returned on release, never allocated on
// the hot path. Capacity covers jumbo fronthaul frames (100 MHz cells
// generate > 7 KB U-plane frames, paper section 5).
//
// Buffer memory is one contiguous, cache-line-aligned arena per pool,
// carved into fixed 9216-byte slots, so burst-path walks touch sequential
// memory. Replication is zero-copy in the common case: a replica carries a
// small private head (the bytes rewritten per egress - Ethernet MACs,
// eCPRI header) and attaches to the source's payload slot through an
// atomic refcount, the same indirect-mbuf idiom DPDK uses for multicast
// fan-out. Any write that would touch the shared region promotes the
// writer to a private buffer first (copy-on-write), so replicas observe a
// stable snapshot regardless of release order or thread.
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace rb {

/// Jumbo-frame capacity: 9000-byte MTU plus L2 headers. A multiple of the
/// cache line size so every arena slot starts line-aligned.
inline constexpr std::size_t kPacketCapacity = 9216;

/// shared_from sentinel: no replica shares any byte of this slot.
inline constexpr std::uint32_t kSlotUnshared = 0xffffffffu;

class PacketPool;

namespace detail {
struct ThreadSlotGuard;  // flushes per-thread magazines at thread exit
}

/// Per-arena-slot shared state. `refcnt` counts every handle that can read
/// the slot (the owning packet plus attached replicas). `shared_from` is
/// the smallest private-head split among attached replicas: bytes at or
/// beyond it are visible to someone else, so an owner write reaching that
/// offset must copy out first.
struct PacketSlot {
  std::atomic<std::uint32_t> refcnt{0};
  std::atomic<std::uint32_t> shared_from{kSlotUnshared};
};

/// One network packet. `len` is the frame length. A packet either owns all
/// of its bytes (seg_base_ == nullptr) or is a replica: bytes [0, split_)
/// live in its private slot, bytes [split_, len) resolve to the shared
/// payload segment it holds a reference on. split_ == 0 with a segment
/// attached is a pure alias (every byte shared).
class Packet {
 public:
  /// Whole-frame read view. For a pure alias this resolves to the shared
  /// segment; for a header-split replica it returns the private slot, in
  /// which bytes beyond split_ are stale - readers that touch payload
  /// bytes must go through bytes().
  std::span<const std::uint8_t> data() const {
    const std::uint8_t* b =
        (seg_base_ != nullptr && split_ == 0) ? seg_base_ : base_;
    return {b, len_};
  }

  /// Read view of [off, off+n), resolved against the shared segment when
  /// the range lies in the shared region. Ranges never straddle the split:
  /// eligible replicas split exactly at the payload start, and callers
  /// read either headers (below) or section payloads (at/above).
  std::span<const std::uint8_t> bytes(std::size_t off, std::size_t n) const {
    assert(off + n <= len_);
    assert(seg_base_ == nullptr || off >= split_ || off + n <= split_);
    const std::uint8_t* b =
        (seg_base_ != nullptr && off >= split_) ? seg_base_ : base_;
    return {b + off, n};
  }

  /// Read view from `off` to the end of the frame.
  std::span<const std::uint8_t> bytes(std::size_t off) const {
    return bytes(off, len_ > off ? len_ - off : 0);
  }

  /// Full-capacity write view. Declares intent to write anywhere, so a
  /// replica promotes to a private copy and a shared owner copies out.
  std::span<std::uint8_t> raw() {
    ensure_writable(kPacketCapacity);
    return {base_, kPacketCapacity};
  }

  /// Write view over [0, len). Same copy-on-write gate as raw().
  std::span<std::uint8_t> mutable_data() {
    ensure_writable(len_);
    return {base_, len_};
  }

  /// Write view over the first min(n, len) bytes. Header rewrites (MACs,
  /// eAxC) stay below a replica's split, so this avoids promotion on the
  /// replication fast path.
  std::span<std::uint8_t> mutable_prefix(std::size_t n) {
    if (n > len_) n = len_;
    ensure_writable(n);
    return {base_, n};
  }

  /// Flatten the resolved frame into `out` (used by checkpointing, which
  /// serializes replicas as full frames).
  void copy_to(std::span<std::uint8_t> out) const;

  std::size_t len() const { return len_; }
  /// Set the frame length after writing into raw(). Clamped to capacity.
  /// Gated like a write: growing a replica promotes it first.
  void set_len(std::size_t n) {
    if (n > kPacketCapacity) n = kPacketCapacity;
    ensure_writable(n);
    len_ = n;
  }

  /// True while this packet's payload bytes live in a shared segment.
  bool shares_payload() const { return seg_base_ != nullptr; }
  /// Private-head length of a replica (0 for pure aliases and owners).
  std::size_t private_split() const { return split_; }
  /// Reference count on this packet's own slot (test/diagnostic hook).
  std::uint32_t slot_refcount() const {
    return own_ps_->refcnt.load(std::memory_order_acquire);
  }

  PacketPool* pool() const { return pool_; }

  /// Virtual receive timestamp (ns since simulation start); set by ports.
  std::int64_t rx_time_ns = 0;
  /// Ingress port identifier for debugging/telemetry.
  std::uint16_t ingress_port = 0;

 private:
  friend class PacketPool;
  friend struct PacketDeleter;

  /// Copy-on-write gate for a write into [0, upto). Fast path: sole owner
  /// of an unshared slot, no work.
  void ensure_writable(std::size_t upto) {
    if (seg_base_ == nullptr &&
        own_ps_->refcnt.load(std::memory_order_relaxed) == 1)
      return;
    ensure_writable_slow(upto);
  }
  void ensure_writable_slow(std::size_t upto);

  std::uint8_t* base_ = nullptr;           // this packet's own arena slot
  PacketSlot* own_ps_ = nullptr;           // state for the own slot
  const std::uint8_t* seg_base_ = nullptr; // shared payload segment, if any
  PacketSlot* seg_ps_ = nullptr;
  PacketPool* seg_pool_ = nullptr;         // pool owning the segment slot
  std::uint32_t split_ = 0;                // private head length when shared
  std::size_t len_ = 0;
  PacketPool* pool_ = nullptr;
};

struct PacketDeleter {
  void operator()(Packet* p) const;
};

/// Owning handle; returning to the pool happens on destruction.
using PacketPtr = std::unique_ptr<Packet, PacketDeleter>;

/// Fixed-size pool of packets. alloc() returns nullptr when exhausted,
/// which the ports count as drops - the same back-pressure behaviour an
/// mbuf pool exhibits under overload.
///
/// Thread-safe with per-thread magazines: each worker owns a small
/// free-buffer cache (indexed by a process-wide thread slot), so the
/// steady-state alloc/release pair is lock-free - the mutex-guarded
/// global free list is touched only to refill or flush a magazine, in
/// batches. Packets may cross shard boundaries (a flow's producer and
/// consumer on different workers); buffers then migrate between magazines
/// through the global list.
///
/// Packet headers and arena slots travel the free list paired, so the
/// alloc fast path stays a single pop. The pairing breaks only when an
/// owner dies before its replicas (header parks in spare_pkts_ until the
/// last replica detaches and recycle_slot() re-pairs it) or when an owner
/// copies out of a shared slot (draws a slot from spare_slots_ or breaks
/// a free pair). Replicas may be released on a different thread than the
/// segment owner; the refcount transfer uses acq_rel so the recycler sees
/// every reader's final access.
class PacketPool {
 public:
  explicit PacketPool(std::size_t capacity = 4096);
  ~PacketPool();

  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// Get a fresh packet (len 0, metadata cleared); nullptr if exhausted.
  PacketPtr alloc();

  /// Deep-copy a packet (flattens replicas to full frames).
  PacketPtr clone(const Packet& src);

  /// Zero-copy replica of `src` (the A2 replication primitive): copies
  /// only the first `split` bytes (the per-egress-rewritten head) into the
  /// replica's private slot and attaches to src's payload segment via
  /// refcount. split == 0 makes a pure alias sharing every byte. Falls
  /// back to clone() when split >= src.len() (nothing left to share);
  /// nullptr when the pool is exhausted.
  PacketPtr replicate(const Packet& src, std::size_t split);

  std::size_t capacity() const { return capacity_; }
  std::size_t in_use() const {
    return outstanding_.load(std::memory_order_acquire);
  }
  std::uint64_t alloc_failures() const {
    return alloc_failures_.load(std::memory_order_acquire);
  }

  /// Total bytes of the contiguous buffer arena.
  std::size_t arena_bytes() const { return capacity_ * kPacketCapacity; }
  /// Slots currently referenced by more than one handle.
  std::int64_t shared_segments() const {
    const std::int64_t v = shared_segments_.load(std::memory_order_acquire);
    return v < 0 ? 0 : v;
  }
  /// Copy-on-write promotions (replica privatized or owner copied out).
  std::uint64_t cow_promotions() const {
    return cow_promotions_.load(std::memory_order_acquire);
  }
  /// Replicas served zero-copy (segment attach instead of deep copy).
  std::uint64_t replicas_zero_copy() const {
    return replicas_zero_copy_.load(std::memory_order_acquire);
  }
  /// Owner writes that could not copy out (pool exhausted, wrote in
  /// place). Nonzero means the pool is undersized for the fan-out.
  std::uint64_t cow_fallbacks() const {
    return cow_fallbacks_.load(std::memory_order_acquire);
  }

  /// Process-wide default pool used when callers do not wire their own.
  static PacketPool& default_pool();

 private:
  friend struct PacketDeleter;
  friend class Packet;
  friend struct detail::ThreadSlotGuard;

  /// Per-thread free-buffer cache. Owned exclusively by the thread whose
  /// slot indexes it, so no synchronization on the fast path. The per-pool
  /// effective cap (mag_cap_) shrinks with pool capacity so the caches of
  /// a few threads can never absorb a small pool outright.
  static constexpr std::size_t kMagazineSize = 64;
  struct alignas(64) Magazine {
    std::array<Packet*, kMagazineSize> items;
    std::size_t count = 0;
  };
  /// Threads beyond this many concurrent slots fall back to the locked
  /// path. Slots are recycled at thread exit (after the departing thread's
  /// magazines flush back to every live pool), so only concurrency counts
  /// against the limit, not thread churn.
  static constexpr std::size_t kMaxThreadSlots = 64;

  /// Return a departing thread's cached buffers to the global free list.
  /// Called from the thread-exit guard with the pool registry lock held.
  void flush_magazine(unsigned slot);

  void release(Packet* p);
  /// Drop a replica's segment reference; recycles the slot on last detach.
  void detach_segment(Packet* p);
  /// Return a refcnt==0 arena slot to circulation: re-pair it with a
  /// parked header if one is waiting, else park the slot.
  void recycle_slot(std::uint8_t* slot_base);
  /// Owner writing into a slot replicas still read: move the owner to a
  /// fresh slot, leaving the old bytes to the replicas.
  void owner_copy_out(Packet& p);
  /// Replica writing into the shared region: copy the shared tail into
  /// its private slot and detach.
  void promote(Packet& p);
  /// This thread's magazine, or nullptr when the slot space is exhausted.
  Magazine* my_magazine();
  PacketSlot* slot_state(const std::uint8_t* slot_base) {
    return &slots_[std::size_t(slot_base - arena_) / kPacketCapacity];
  }

  std::size_t capacity_;
  std::size_t mag_cap_;  // min(kMagazineSize, capacity_/8), at least 1
  std::unique_ptr<std::uint8_t[]> arena_storage_;
  std::uint8_t* arena_ = nullptr;  // 64-byte-aligned view of arena_storage_
  std::unique_ptr<PacketSlot[]> slots_;
  std::unique_ptr<Packet[]> storage_;
  mutable std::mutex mu_;  // guards free_, spare_pkts_, spare_slots_
  std::vector<Packet*> free_;             // paired header + slot
  std::vector<Packet*> spare_pkts_;       // headers whose slot is still read
  std::vector<std::uint8_t*> spare_slots_;  // slots awaiting a header
  std::unique_ptr<Magazine[]> mags_;  // kMaxThreadSlots entries
  std::atomic<std::size_t> outstanding_{0};
  std::atomic<std::uint64_t> alloc_failures_{0};
  std::atomic<std::uint64_t> cow_promotions_{0};
  std::atomic<std::uint64_t> replicas_zero_copy_{0};
  std::atomic<std::uint64_t> cow_fallbacks_{0};
  std::atomic<std::int64_t> shared_segments_{0};
};

}  // namespace rb
