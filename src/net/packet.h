// Packet buffers and pools.
//
// Mirrors the mbuf discipline of a DPDK datapath: fixed-capacity buffers
// drawn from a pre-allocated pool, returned on release, never allocated on
// the hot path. Capacity covers jumbo fronthaul frames (100 MHz cells
// generate > 7 KB U-plane frames, paper section 5).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace rb {

/// Jumbo-frame capacity: 9000-byte MTU plus L2 headers.
inline constexpr std::size_t kPacketCapacity = 9216;

class PacketPool;

/// One network packet. Data lives inline; `len` is the frame length.
class Packet {
 public:
  std::span<std::uint8_t> data() { return {buf_.data(), len_}; }
  std::span<const std::uint8_t> data() const { return {buf_.data(), len_}; }
  std::span<std::uint8_t> raw() { return {buf_.data(), buf_.size()}; }

  std::size_t len() const { return len_; }
  /// Set the frame length after writing into raw(). Clamped to capacity.
  void set_len(std::size_t n) {
    len_ = n > buf_.size() ? buf_.size() : n;
  }

  /// Virtual receive timestamp (ns since simulation start); set by ports.
  std::int64_t rx_time_ns = 0;
  /// Ingress port identifier for debugging/telemetry.
  std::uint16_t ingress_port = 0;

 private:
  friend class PacketPool;
  friend struct PacketDeleter;
  std::vector<std::uint8_t> buf_ = std::vector<std::uint8_t>(kPacketCapacity);
  std::size_t len_ = 0;
  PacketPool* pool_ = nullptr;
};

struct PacketDeleter {
  void operator()(Packet* p) const;
};

/// Owning handle; returning to the pool happens on destruction.
using PacketPtr = std::unique_ptr<Packet, PacketDeleter>;

/// Fixed-size pool of packets. alloc() returns nullptr when exhausted,
/// which the ports count as drops - the same back-pressure behaviour an
/// mbuf pool exhibits under overload.
///
/// Thread-safe with per-thread magazines: each worker owns a small
/// free-buffer cache (indexed by a process-wide thread slot), so the
/// steady-state alloc/release pair is lock-free - the mutex-guarded
/// global free list is touched only to refill or flush a magazine, in
/// batches. Packets may cross shard boundaries (a flow's producer and
/// consumer on different workers); buffers then migrate between magazines
/// through the global list. The payload copy of clone() happens outside
/// any lock.
class PacketPool {
 public:
  explicit PacketPool(std::size_t capacity = 4096);
  ~PacketPool();

  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// Get a fresh packet (len 0, metadata cleared); nullptr if exhausted.
  PacketPtr alloc();

  /// Deep-copy a packet (the A2 replication primitive).
  PacketPtr clone(const Packet& src);

  std::size_t capacity() const { return capacity_; }
  std::size_t in_use() const {
    return outstanding_.load(std::memory_order_acquire);
  }
  std::uint64_t alloc_failures() const {
    return alloc_failures_.load(std::memory_order_acquire);
  }

  /// Process-wide default pool used when callers do not wire their own.
  static PacketPool& default_pool();

 private:
  friend struct PacketDeleter;

  /// Per-thread free-buffer cache. Owned exclusively by the thread whose
  /// slot indexes it, so no synchronization on the fast path.
  static constexpr std::size_t kMagazineSize = 64;
  struct alignas(64) Magazine {
    std::array<Packet*, kMagazineSize> items;
    std::size_t count = 0;
  };
  /// Threads beyond this many distinct slots fall back to the locked path.
  static constexpr std::size_t kMaxThreadSlots = 64;

  void release(Packet* p);
  /// This thread's magazine, or nullptr when the slot space is exhausted.
  Magazine* my_magazine();

  std::size_t capacity_;
  std::vector<std::unique_ptr<Packet>> storage_;
  mutable std::mutex mu_;  // guards free_
  std::vector<Packet*> free_;
  std::unique_ptr<Magazine[]> mags_;  // kMaxThreadSlots entries
  std::atomic<std::size_t> outstanding_{0};
  std::atomic<std::uint64_t> alloc_failures_{0};
};

}  // namespace rb
