// MAC scheduler: allocates PRBs of one cell to backlogged UEs per slot.
//
// Equal-share frequency-domain scheduling with link adaptation: MCS is
// picked from the UE's reported per-layer SINR plus an outer-loop (OLLA)
// offset that walks down on HARQ failures - this is how the model adapts
// to interference the CQI cannot see (multi-cell scenarios, Figure 11).
// The scheduler also keeps the per-slot PRB utilization log that stands in
// for the MAC scheduling logs the paper uses as ground truth in 6.2.4.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "ran/air.h"

namespace rb {

struct SchedulerParams {
  // The model does not simulate HARQ retransmission recovery, so the
  // outer loop only corrects downward (interference the CQI cannot see)
  // and creeps back up slowly; it never drives the link into failures.
  double olla_step_up_db = 0.05;
  double olla_step_down_db = 1.0;
  double olla_min_db = -15.0;
  double olla_max_db = 0.0;
  double efficiency = 1.0;  // vendor implementation-quality factor
};

/// Ground-truth utilization record for one slot.
struct PrbUtilSample {
  std::int64_t slot = 0;
  int dl_prbs = 0;  // PRBs carrying DL data this slot
  int ul_prbs = 0;
  int total_prbs = 0;
  bool dl_slot = false;
  bool ul_slot = false;
};

class MacScheduler {
 public:
  MacScheduler(int n_prb, SchedulerParams params = {})
      : n_prb_(n_prb), params_(params) {}

  void add_dl_backlog(UeId ue, std::int64_t bits) {
    ue_state_[ue].dl_backlog += bits;
  }
  void add_ul_backlog(UeId ue, std::int64_t bits) {
    ue_state_[ue].ul_backlog += bits;
  }
  std::int64_t dl_backlog(UeId ue) const;
  std::int64_t ul_backlog(UeId ue) const;
  /// Drop all queued traffic (experiment boundary between traffic mixes).
  void clear_backlogs() {
    for (auto& [_, st] : ue_state_) st.dl_backlog = st.ul_backlog = 0;
  }

  /// Build DL allocations for one slot. `reports` supplies link quality of
  /// the attached UEs; `data_symbols` is the slot's usable symbol count.
  std::vector<DlAlloc> schedule_dl(
      const std::vector<std::pair<UeId, UeReport>>& reports,
      int data_symbols);

  /// UL counterpart (SISO).
  std::vector<UlAlloc> schedule_ul(
      const std::vector<std::pair<UeId, UeReport>>& reports,
      int data_symbols);

  /// HARQ feedback: `new_errors` failures observed for `ue` since last
  /// slot; adjusts the OLLA offset.
  void on_harq_feedback(UeId ue, std::uint64_t new_errors, bool scheduled);
  /// Uplink counterpart: adjusts the UL link-adaptation offset (the DU
  /// only learns UL quality from decode results).
  void on_ul_feedback(UeId ue, std::uint64_t new_errors, bool scheduled);

  /// Record the slot's utilization ground truth.
  void log_utilization(std::int64_t slot, int dl_prbs, int ul_prbs,
                       bool dl_slot, bool ul_slot);
  const std::deque<PrbUtilSample>& utilization_log() const { return log_; }
  void clear_utilization_log() { log_.clear(); }

  double olla_db(UeId ue) const;
  double ul_olla_db(UeId ue) const;
  int n_prb() const { return n_prb_; }

  /// Checkpoint per-UE backlog/OLLA state and the utilization log. UE
  /// entries are written sorted by UeId so the blob is deterministic
  /// regardless of hash-map iteration order.
  void save_state(state::StateWriter& w) const;
  void load_state(state::StateReader& r);

 private:
  struct UeSched {
    std::int64_t dl_backlog = 0;
    std::int64_t ul_backlog = 0;
    double olla_db = 0.0;
    double ul_olla_db = 0.0;
    int rr_slots = 0;  // round-robin fairness counter
  };

  int n_prb_;
  SchedulerParams params_;
  std::unordered_map<UeId, UeSched> ue_state_;
  std::deque<PrbUtilSample> log_;
  static constexpr std::size_t kMaxLog = 4096;
};

}  // namespace rb
