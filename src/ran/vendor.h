// Vendor profiles: the per-stack framing/config differences the paper's
// interoperability experiments absorb with "only small configuration
// parameter changes" (section 6.2).
//
// The three profiles model the observable fronthaul differences between
// srsRAN, CapGemini (FlexRAN L1) and Radisys: C-plane granularity, BFP
// mantissa width, U-plane compression header presence, TDD pattern, and an
// implementation-quality factor that scales achievable throughput (the
// paper notes vendor-dependent throughput differences).
#pragma once

#include <string>

#include "ran/tdd.h"

namespace rb {

struct VendorProfile {
  std::string name = "srsran";
  bool cplane_per_symbol = false;  // one C-plane per slot vs per symbol
  int iq_width = 9;                // BFP mantissa bits
  bool uplane_has_comp_hdr = true;
  std::uint16_t vlan_id = 6;
  TddPattern tdd = default_tdd();
  double efficiency = 1.0;  // scales the rate model's coding efficiency

  friend bool operator==(const VendorProfile&, const VendorProfile&) = default;
};

VendorProfile srsran_profile();
VendorProfile capgemini_profile();
VendorProfile radisys_profile();

}  // namespace rb
