#include "ran/phy_rate.h"

#include <cmath>

#include "common/units.h"

namespace rb {

double mimo_layer_penalty_db(int layers) {
  // Per-layer SINR = (total-power SINR) - penalty(L). The penalty folds
  // together the power split across layers (10log10 L) and the channel
  // conditioning loss at higher rank. Fit so the Table 2 anchors hold with
  // a 26 dB single-antenna SNR at 5 m:
  //   rank 2, 2 antennas: per-layer 17.45 dB -> 653 Mbps at 100 MHz
  //   rank 4, 4 antennas: per-layer 11.37 dB -> 898 Mbps at 100 MHz
  switch (layers) {
    case 1: return 0.0;
    case 2: return 11.56;
    case 3: return 17.5;
    default: return 20.65;  // 4+ layers
  }
}

double spectral_efficiency(double sinr_db, int layers,
                           const PhyRateParams& p) {
  if (sinr_db < p.min_sinr_db) return 0.0;
  const double sinr = db_to_linear(sinr_db);
  double se = p.coding_efficiency * std::log2(1.0 + sinr);
  const double cap = layers <= 1 ? p.max_se_rank1 : p.max_se_per_layer;
  if (se > cap) se = cap;
  return se;
}

std::int64_t slot_bits(double sinr_db, int n_prb, int data_symbols,
                       int layers, const PhyRateParams& p) {
  const double se = spectral_efficiency(sinr_db, layers, p);
  const double bits =
      se * layers * double(n_prb) * kScPerPrb * double(data_symbols);
  return std::int64_t(bits);
}

double quantize_sinr_db(double sinr_db) {
  return std::round(sinr_db * 2.0) / 2.0;
}

}  // namespace rb
