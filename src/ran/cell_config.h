// Cell, SSB and PRACH configuration.
#pragma once

#include <cstdint>

#include "common/units.h"
#include "ran/tdd.h"

namespace rb {

/// SSB occasions are standardized here as symbols 2..5 of the first slot of
/// every period. The SSB carries PCI and reference power; UEs need it to
/// attach and to monitor link quality (paper section 4.2).
struct SsbConfig {
  int period_slots = 20;  // 10 ms at 30 kHz SCS
  int first_symbol = 2;
  int n_symbols = 4;
  int start_prb = 0;  // within the cell grid; set by CellConfig::finalize()
  int n_prb = 20;
};

// Energy detection thresholds are mantissa-width dependent; see
// energy_exponent_threshold() in iq/bfp.h.

/// PRACH: the random-access window UEs transmit attach requests in.
/// freq_offset is the C-plane section type 3 freqOffset value in the DU
/// grid, in units of SCS/2, measured down from the DU center frequency
/// (Appendix A.1.2: f_re0 = center - freq_offset * SCS/2).
struct PrachConfig {
  int period_slots = 20;
  int slot_offset = 19;  // PRACH occasion within the period (an UL slot)
  int n_prb = 12;
  std::int32_t freq_offset = 0;  // set by CellConfig::finalize()
};

struct CellConfig {
  int cell_id = 0;
  std::uint16_t pci = 1;
  Hertz center_freq = GHz(3) + MHz(460);  // 3.46 GHz, band 78
  Hertz bandwidth = MHz(100);
  Scs scs = Scs::kHz30;
  int max_layers = 4;
  TddPattern tdd = default_tdd();
  SsbConfig ssb{};
  PrachConfig prach{};

  int n_prb() const { return prbs_for_bandwidth(bandwidth, scs); }

  /// Lowest sub-carrier frequency of PRB 0 (Appendix A.1.1 eq. 1-2).
  Hertz prb0_freq() const {
    return center_freq - 12 * scs_hz(scs) * n_prb() / 2;
  }

  /// Absolute frequency of the first RE of a PRB index in this grid.
  Hertz prb_freq(int prb) const { return prb0_freq() + prb * 12 * scs_hz(scs); }

  /// Derive SSB placement (centered) and PRACH placement (near the low
  /// edge) from the grid. Call after setting bandwidth/center_freq.
  CellConfig& finalize() {
    ssb.start_prb = n_prb() / 2 - ssb.n_prb / 2;
    // PRACH occupies PRBs [2, 2+n_prb) of the DU grid; express that as a
    // freqOffset from the center in SCS/2 units (positive = below center).
    const Hertz prach_f0 = prb_freq(2);
    prach.freq_offset =
        std::int32_t(2 * (center_freq - prach_f0) / scs_hz(scs));
    return *this;
  }

  /// Absolute frequency of the first PRACH RE.
  Hertz prach_f0() const {
    return center_freq - prach.freq_offset * scs_hz(scs) / 2;
  }
};

/// Appendix A.1.1: pick a DU center frequency such that the DU's PRB grid
/// aligns with the RU's, anchored at RU-grid PRB `prb_offset`.
///   DU_center = PRB_0_freq(RU) + 12*SCS*(prb_offset + DU_num_prb/2)
inline Hertz aligned_du_center_frequency(Hertz ru_center, int ru_num_prb,
                                         int du_num_prb, int prb_offset,
                                         Scs scs) {
  const Hertz prb0 = ru_center - 12 * scs_hz(scs) * ru_num_prb / 2;
  return prb0 + 12 * scs_hz(scs) * (prb_offset + du_num_prb / 2);
}

/// Appendix A.1.2 (eq. 11): translate a PRACH freqOffset from the DU grid
/// to the RU grid.
inline std::int32_t translate_freq_offset(std::int32_t freq_offset_du,
                                          Hertz du_center, Hertz ru_center,
                                          Scs scs) {
  return freq_offset_du +
         std::int32_t(2 * (ru_center - du_center) / scs_hz(scs));
}

}  // namespace rb
