#include "ran/tdd.h"

namespace rb {

TddPattern TddPattern::from_string(const std::string& s) {
  TddPattern p;
  for (char c : s) {
    switch (c) {
      case 'D': case 'd': p.slots.push_back(SlotType::Downlink); break;
      case 'U': case 'u': p.slots.push_back(SlotType::Uplink); break;
      case 'S': case 's': p.slots.push_back(SlotType::Special); break;
      default: break;  // ignore separators
    }
  }
  if (p.slots.empty()) p.slots.push_back(SlotType::Downlink);
  return p;
}

int TddPattern::dl_symbols(std::int64_t slot_index) const {
  switch (type_at(slot_index)) {
    case SlotType::Downlink: return kSymbolsPerSlot;
    case SlotType::Special: return special_dl_symbols;
    case SlotType::Uplink: return 0;
  }
  return 0;
}

int TddPattern::ul_symbols(std::int64_t slot_index) const {
  switch (type_at(slot_index)) {
    case SlotType::Uplink: return kSymbolsPerSlot;
    case SlotType::Special: return special_ul_symbols;
    case SlotType::Downlink: return 0;
  }
  return 0;
}

double TddPattern::dl_symbol_fraction() const {
  std::int64_t dl = 0;
  for (std::size_t i = 0; i < slots.size(); ++i) dl += dl_symbols(std::int64_t(i));
  return double(dl) / double(slots.size() * kSymbolsPerSlot);
}

double TddPattern::ul_symbol_fraction() const {
  std::int64_t ul = 0;
  for (std::size_t i = 0; i < slots.size(); ++i) ul += ul_symbols(std::int64_t(i));
  return double(ul) / double(slots.size() * kSymbolsPerSlot);
}

double TddPattern::dl_symbols_per_second(Scs scs) const {
  const double slots_per_s = 1000.0 * slots_per_subframe(scs);
  return slots_per_s * kSymbolsPerSlot * dl_symbol_fraction();
}

double TddPattern::ul_symbols_per_second(Scs scs) const {
  const double slots_per_s = 1000.0 * slots_per_subframe(scs);
  return slots_per_s * kSymbolsPerSlot * ul_symbol_fraction();
}

std::string TddPattern::str() const {
  std::string s;
  for (auto t : slots) {
    s += (t == SlotType::Downlink ? 'D' : t == SlotType::Uplink ? 'U' : 'S');
  }
  return s;
}

TddPattern default_tdd() { return TddPattern::from_string("DDDSU"); }

}  // namespace rb
