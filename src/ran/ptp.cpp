#include "ran/ptp.h"

namespace rb {
namespace {
std::int64_t hash_offset(const std::string& name, std::int64_t bound) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : name) {
    h ^= std::uint64_t(std::uint8_t(c));
    h *= 1099511628211ull;
  }
  const std::int64_t half = bound / 2;
  if (half <= 0) return 0;
  return std::int64_t(h % std::uint64_t(2 * half)) - half;
}
}  // namespace

void PtpGrandmaster::add_node(const std::string& name) {
  offsets_.emplace(name, hash_offset(name, lock_bound_ns_));
}

std::int64_t PtpGrandmaster::offset_ns(const std::string& name) const {
  auto it = offsets_.find(name);
  return it == offsets_.end() ? 0 : it->second;
}

bool PtpGrandmaster::locked(const std::string& name) const {
  auto it = offsets_.find(name);
  if (it == offsets_.end()) return false;
  return std::llabs(it->second) <= lock_bound_ns_;
}

void PtpGrandmaster::set_offset_ns(const std::string& name, std::int64_t ns) {
  offsets_[name] = ns;
}

std::int64_t PtpGrandmaster::max_pairwise_offset_ns() const {
  std::int64_t lo = 0, hi = 0;
  bool first = true;
  for (const auto& [_, off] : offsets_) {
    if (first) {
      lo = hi = off;
      first = false;
    } else {
      if (off < lo) lo = off;
      if (off > hi) hi = off;
    }
  }
  return hi - lo;
}

}  // namespace rb
