// RU (Radio Unit) model.
//
// A Cat-A O-RAN radio: dumb converter between fronthaul frames and RF.
// Downlink: validates timing/C-plane coverage and "radiates" - i.e. it
// extracts the per-PRB BFP exponents of the U-plane payload that actually
// reached it and reports the energized spectrum to the AirModel. Uplink:
// honours cached C-plane requests by synthesizing U-plane frames whose IQ
// amplitude comes from the AirModel's physics (UE signals + noise floor),
// including PRACH capture windows addressed via section type 3 freqOffset.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fronthaul/frame.h"
#include "net/packet.h"
#include "net/port.h"
#include "ran/air.h"

namespace rb {

struct RuModelConfig {
  RuSite site{};
  MacAddr ru_mac = MacAddr::ru(0);
  FhContext fh{};  // provisioned out-of-band (M-plane equivalent)
  std::int64_t latency_budget_ns = 30'000;
  int ssb_period_slots = 20;  // SSB symbol window detection
  int ssb_first_symbol = 2;
  int ssb_n_symbols = 4;
};

struct RuStats {
  std::uint64_t cplane_rx = 0;
  std::uint64_t uplane_rx = 0;
  std::uint64_t uplane_tx = 0;
  std::uint64_t late_drops = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t unexpected_port_drops = 0;  // eAxC beyond our antennas
  std::uint64_t uplane_without_cplane = 0;  // radiated spectrum clipped
  std::uint64_t prach_tx = 0;
  std::uint64_t pool_exhausted = 0;
};

class RuModel {
 public:
  RuModel(RuModelConfig cfg, AirModel& air, RuId ru_id, Port& port,
          PacketPool& pool = PacketPool::default_pool());

  /// Drain the port: cache C-plane requests, absorb DL U-plane and report
  /// the radiated spectrum to the AirModel.
  void process_dl(std::int64_t slot, std::int64_t slot_start_ns);

  /// Serve cached UL C-plane requests (data + PRACH) for this slot.
  void emit_ul(std::int64_t slot, std::int64_t slot_start_ns);

  const RuStats& stats() const { return stats_; }
  int n_prb() const { return n_prb_; }

  /// Adaptation-controller actuation: change the BFP mantissa width of
  /// uplink *data* emissions (PRACH keeps the provisioned width). Peers
  /// decode per-packet via udCompHdr, so this needs no re-provisioning.
  /// Effective from the next emitted frame. Returns false for widths the
  /// BFP codec cannot carry.
  bool set_ul_iq_width(int width) {
    if (width < 1 || width > 16) return false;
    // Without udCompHdr on the wire, peers decode at the provisioned
    // width; a silent change would corrupt every section they parse.
    if (!cfg_.fh.uplane_has_comp_hdr && width != cfg_.fh.comp.iq_width)
      return false;
    ul_comp_.iq_width = std::uint8_t(width);
    return true;
  }
  int ul_iq_width() const { return ul_comp_.iq_width; }

  /// Checkpoint persistent RU state: adapted UL compression width, the
  /// payload-synthesis RNG, fronthaul sequence numbers and stats. The
  /// C-plane request cache is slot-keyed scratch and not state.
  void save_state(state::StateWriter& w) const;
  void load_state(state::StateReader& r);

 private:
  struct UlRequest {
    int port = 0;
    int start_prb = 0;
    int n_prb = 0;
    int symbol = 0;  // first UL symbol in the slot
    MacAddr reply_to{};
    EaxcId eaxc{};
  };
  struct PrachRequest {
    EaxcId eaxc{};
    std::uint16_t section_id = 0;
    std::int32_t freq_offset = 0;
    int n_prb = 0;
    MacAddr reply_to{};
  };
  struct PortAccum {
    std::vector<PrbInterval> data;
    std::vector<PrbInterval> ssb;
    std::vector<PrbInterval> cplane;  // DL C-plane coverage
  };

  void add_interval(std::vector<PrbInterval>& iv, int start, int count);
  static void normalize(std::vector<PrbInterval>& iv);
  void synth_payload(std::vector<std::uint8_t>& out, int start_prb, int n_prb,
                     std::int64_t slot);
  Hertz prb0_freq() const;

  RuModelConfig cfg_;
  CompConfig ul_comp_{};  // uplink-data compression (controller-adaptable)
  AirModel* air_;
  RuId ru_id_;
  Port* port_;
  PacketPool* pool_;
  int n_prb_;
  std::uint32_t rng_ = 0xA5A5A5u;

  std::int64_t cache_slot_ = -1;
  std::vector<UlRequest> ul_requests_;
  std::vector<PrachRequest> prach_requests_;
  std::unordered_map<int, PortAccum> port_accum_;
  std::unordered_map<std::uint16_t, std::uint8_t> seq_;

  RuStats stats_;
};

}  // namespace rb
