#include "ran/channel.h"

#include <cmath>

namespace rb {
namespace {

/// Deterministic hash -> [-1, 1] for per-link shadowing.
double unit_hash(std::uint32_t seed) {
  std::uint32_t x = seed * 2654435761u + 0x9e3779b9u;
  x ^= x >> 16;
  x *= 0x85ebca6bu;
  x ^= x >> 13;
  return (double(x & 0xffffff) / double(0xffffff)) * 2.0 - 1.0;
}

}  // namespace

double ChannelModel::distance_m(const Position& a, const Position& b) const {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  const double dz = double(a.floor - b.floor) * p_.floor_height_m;
  double d = std::sqrt(dx * dx + dy * dy + dz * dz);
  return d < p_.min_distance_m ? p_.min_distance_m : d;
}

double ChannelModel::rel_gain_db(const Position& a, const Position& b,
                                 std::uint32_t link_seed) const {
  const double d = distance_m(a, b);
  double gain = -10.0 * p_.pathloss_exponent *
                std::log10(d / p_.ref_distance_m);
  const int floors = std::abs(a.floor - b.floor);
  gain -= double(floors) * p_.floor_loss_db;
  gain += p_.shadowing_sigma_db * unit_hash(link_seed);
  return gain;
}

double ChannelModel::dl_snr_db(const Position& ru, const Position& ue,
                               std::uint32_t link_seed) const {
  return p_.dl_ref_snr_db + rel_gain_db(ru, ue, link_seed);
}

double ChannelModel::ul_snr_db(const Position& ru, const Position& ue,
                               std::uint32_t link_seed) const {
  return p_.ul_ref_snr_db + rel_gain_db(ru, ue, link_seed);
}

}  // namespace rb
