// Indoor radio channel model.
//
// Replaces the paper's over-the-air testbed propagation (see DESIGN.md
// substitution table). Log-distance path loss with per-floor penetration
// and deterministic per-link shadowing; SNR references are calibrated at
// 5 m, matching the paper's "close range (~5 meters)" baselines.
#pragma once

#include <cstdint>

namespace rb {

/// A position in the building. z is derived from the floor index.
struct Position {
  double x = 0.0;  // meters
  double y = 0.0;  // meters
  int floor = 0;

  friend bool operator==(const Position&, const Position&) = default;
};

struct ChannelParams {
  double dl_ref_snr_db = 26.0;   // DL SNR at 5 m, one antenna, full power
  double ul_ref_snr_db = 13.2;   // UL SNR at 5 m (UE transmit power)
  double ref_distance_m = 5.0;
  double pathloss_exponent = 3.0;
  double floor_loss_db = 30.0;   // penetration per concrete floor
  double floor_height_m = 4.0;
  double shadowing_sigma_db = 1.0;  // deterministic per-link component
  double min_distance_m = 1.0;
};

class ChannelModel {
 public:
  explicit ChannelModel(ChannelParams p = {}) : p_(p) {}

  const ChannelParams& params() const { return p_; }

  /// 3D distance including floor height.
  double distance_m(const Position& a, const Position& b) const;

  /// Gain (dB, <= 0 beyond the reference distance) relative to the 5 m
  /// reference, including floor penetration and shadowing. `link_seed`
  /// makes shadowing deterministic per (tx, rx) pair.
  double rel_gain_db(const Position& a, const Position& b,
                     std::uint32_t link_seed = 0) const;

  /// Absolute DL SNR (dB) at `ue` from a single antenna at `ru`.
  double dl_snr_db(const Position& ru, const Position& ue,
                   std::uint32_t link_seed = 0) const;

  /// Absolute UL SNR (dB) at `ru` from `ue`.
  double ul_snr_db(const Position& ru, const Position& ue,
                   std::uint32_t link_seed = 0) const;

 private:
  ChannelParams p_;
};

}  // namespace rb
