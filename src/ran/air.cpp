#include "ran/air.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cmath>

#include "common/units.h"

namespace rb {
namespace {

/// Identity layer map over the first `n` ports.
std::vector<LayerMap> identity_layers(int n) {
  std::vector<LayerMap> v;
  v.reserve(std::size_t(n));
  for (int i = 0; i < n; ++i) v.push_back({i, i});
  return v;
}

}  // namespace

CellId AirModel::add_cell(const CellConfig& cfg) {
  Cell c;
  c.cfg = cfg;
  cells_.push_back(std::move(c));
  return CellId(cells_.size() - 1);
}

RuId AirModel::add_ru(const RuSite& site) {
  Ru r;
  r.site = site;
  rus_.push_back(std::move(r));
  return RuId(rus_.size() - 1);
}

UeId AirModel::add_ue(const UeConfig& cfg) {
  Ue u;
  u.cfg = cfg;
  ues_.push_back(std::move(u));
  return UeId(ues_.size() - 1);
}

void AirModel::assign_ru(CellId cell, RuId ru, int prb_offset,
                         std::vector<LayerMap> layers) {
  Assignment a;
  a.ru = ru;
  a.prb_offset = prb_offset;
  if (layers.empty()) {
    const int n = std::min(cells_[std::size_t(cell)].cfg.max_layers,
                           rus_[std::size_t(ru)].site.n_antennas);
    a.layers = identity_layers(n);
  } else {
    a.layers = std::move(layers);
  }
  cells_[std::size_t(cell)].assigned.push_back(std::move(a));
}

void AirModel::clear_assignments(CellId cell) {
  cells_[std::size_t(cell)].assigned.clear();
}

void AirModel::set_ue_position(UeId ue, const Position& p) {
  ues_[std::size_t(ue)].cfg.pos = p;
}

void AirModel::publish_dl_alloc(CellId cell, std::int64_t slot,
                                std::vector<DlAlloc> allocs) {
  auto& c = cells_[std::size_t(cell)];
  c.dl_allocs = std::move(allocs);
  c.alloc_slot = slot;
}

void AirModel::publish_ul_alloc(CellId cell, std::int64_t slot,
                                std::vector<UlAlloc> allocs) {
  auto& c = cells_[std::size_t(cell)];
  c.ul_allocs = std::move(allocs);
  c.alloc_slot = slot;
}

bool AirModel::intervals_cover(const std::vector<PrbInterval>& iv, int start,
                               int end, double min_cover) const {
  if (end <= start) return true;
  int covered = 0;
  for (const auto& i : iv) {
    const int lo = std::max(start, i.start);
    const int hi = std::min(end, i.end());
    if (hi > lo) covered += hi - lo;
  }
  return double(covered) >= min_cover * double(end - start);
}

std::optional<double> AirModel::cell_signal_db(const Cell& c, UeId ue,
                                               bool require_radiation,
                                               int* radiating_layers) const {
  const Ue& u = ues_[std::size_t(ue)];
  double sig_lin = 0.0;
  std::uint32_t layer_mask = 0;
  for (const auto& a : c.assigned) {
    const Ru& r = rus_[std::size_t(a.ru)];
    for (const auto& lm : a.layers) {
      bool radiating = true;
      if (require_radiation) {
        radiating = false;
        if (r.radiation_slot >= 0) {
          for (const auto& pr : r.radiation.ports) {
            if (pr.port == lm.ru_port && !pr.data.empty()) {
              radiating = true;
              break;
            }
          }
        }
      }
      if (!radiating) continue;
      layer_mask |= 1u << lm.cell_layer;
      sig_lin += db_to_linear(
          channel_.dl_snr_db(r.site.pos, u.cfg.pos, link_seed(a.ru, ue)));
    }
  }
  if (radiating_layers) {
    int n = 0;
    for (std::uint32_t m = layer_mask; m; m &= m - 1) ++n;
    *radiating_layers = n;
  }
  if (sig_lin <= 0.0) return std::nullopt;
  return linear_to_db(sig_lin);
}

double AirModel::dl_interference_lin(CellId serving, UeId ue, Hertz f_lo,
                                     Hertz f_hi) const {
  const Ue& u = ues_[std::size_t(ue)];
  if (f_hi <= f_lo) return 0.0;
  double total = 0.0;
  for (std::size_t ci = 0; ci < cells_.size(); ++ci) {
    // Same-identity cells (warm standby twins) carry the same signal, not
    // interference.
    if (same_cell_identity(CellId(ci), serving)) continue;
    const Cell& c = cells_[ci];
    if (c.dl_allocs.empty()) continue;
    // Interfering power weighted by spectral overlap of each allocation.
    for (const auto& al : c.dl_allocs) {
      const Hertz a_lo = c.cfg.prb_freq(al.start_prb);
      const Hertz a_hi = c.cfg.prb_freq(al.start_prb + al.n_prb);
      const Hertz lo = std::max(f_lo, a_lo);
      const Hertz hi = std::min(f_hi, a_hi);
      if (hi <= lo) continue;
      const double frac = double(hi - lo) / double(f_hi - f_lo);
      // One term per mapped antenna of the interfering cell.
      double cell_lin = 0.0;
      for (const auto& a : c.assigned) {
        const Ru& r = rus_[std::size_t(a.ru)];
        for (std::size_t k = 0; k < a.layers.size(); ++k)
          cell_lin += db_to_linear(
              channel_.dl_snr_db(r.site.pos, u.cfg.pos, link_seed(a.ru, ue)));
      }
      total += frac * cell_lin;
    }
  }
  return total;
}

bool AirModel::ssb_radiated(const Cell& c, const Assignment& a) const {
  const Ru& r = rus_[std::size_t(a.ru)];
  if (r.radiation_slot < 0) return false;
  const int lo = a.prb_offset + c.cfg.ssb.start_prb;
  const int hi = lo + c.cfg.ssb.n_prb;
  for (const auto& pr : r.radiation.ports)
    if (intervals_cover(pr.ssb_sym, lo, hi, 0.9)) return true;
  return false;
}

void AirModel::report_radiation(RuId ru, std::int64_t slot,
                                RadiationReport report) {
  auto& r = rus_[std::size_t(ru)];
  r.radiation = std::move(report);
  r.radiation_slot = slot;
}

void AirModel::begin_slot(std::int64_t slot) {
  // Invalidate per-slot caches and stale allocations.
  for (auto& r : rus_) {
    if (r.ul_amp_slot != slot) r.ul_amp_slot = -1;
    if (r.radiation_slot >= 0 && r.radiation_slot < slot) {
      r.radiation_slot = -1;
      r.radiation.ports.clear();
    }
  }
  for (auto& c : cells_) {
    if (c.alloc_slot >= 0 && c.alloc_slot < slot) {
      c.dl_allocs.clear();
      c.ul_allocs.clear();
      c.alloc_slot = -1;
    }
  }
}

void AirModel::resolve_dl(std::int64_t slot) {
  // ---- attachment management at SSB occasions ----
  const bool ssb_occasion =
      !cells_.empty() && (slot % cells_[0].cfg.ssb.period_slots == 0);
  if (ssb_occasion) {
    for (std::size_t ui = 0; ui < ues_.size(); ++ui) {
      Ue& u = ues_[ui];
      // Measure SSB SNR towards every cell (only RUs that radiated SSB).
      double best_snr = -1e9;
      CellId best_cell = -1;
      double serving_snr = -1e9;
      for (std::size_t ci = 0; ci < cells_.size(); ++ci) {
        const Cell& c = cells_[ci];
        if (u.cfg.pci_lock >= 0 && c.cfg.pci != u.cfg.pci_lock) continue;
        double snr = -1e9;
        for (const auto& a : c.assigned) {
          if (!ssb_radiated(c, a)) continue;
          const double s = channel_.dl_snr_db(rus_[std::size_t(a.ru)].site.pos,
                                              u.cfg.pos,
                                              link_seed(a.ru, UeId(ui)));
          snr = std::max(snr, s);
        }
        if (CellId(ci) == u.serving) serving_snr = snr;
        if (snr > best_snr) {
          best_snr = snr;
          best_cell = CellId(ci);
        }
      }
      switch (u.state) {
        case UeAttachState::Attached:
          if (serving_snr < kAttachThresholdDb) {
            if (++u.ssb_misses >= kRlfSsbMisses) {
              u.state = UeAttachState::Idle;  // radio link failure
              u.serving = -1;
              u.ssb_misses = 0;
            }
          } else {
            u.ssb_misses = 0;
            // Reselection with 3 dB hysteresis (brief outage through the
            // idle -> PRACH -> attach path, like a real handover).
            if (best_cell >= 0 && best_cell != u.serving &&
                best_snr > serving_snr + 3.0) {
              u.state = UeAttachState::WaitPrach;
              u.serving = -1;
              u.prach_target = best_cell;
            }
          }
          break;
        case UeAttachState::Idle:
          if (best_cell >= 0 && best_snr >= kAttachThresholdDb) {
            u.state = UeAttachState::WaitPrach;
            u.prach_target = best_cell;
          }
          break;
        case UeAttachState::WaitPrach:
          if (best_snr < kAttachThresholdDb) u.state = UeAttachState::Idle;
          break;
      }
    }
  }

  // ---- DL data delivery ----
  for (std::size_t ci = 0; ci < cells_.size(); ++ci) {
    Cell& c = cells_[ci];
    if (c.alloc_slot != slot) continue;
    for (const auto& al : c.dl_allocs) {
      if (al.ue < 0 || std::size_t(al.ue) >= ues_.size()) continue;
      Ue& u = ues_[std::size_t(al.ue)];
      if (!same_cell_identity(u.serving, CellId(ci))) continue;

      // Signal: only antennas that really radiated this slot, and whose
      // radiated PRBs cover the allocation.
      double sig_lin = 0.0;
      std::uint32_t layer_mask = 0;
      for (const auto& a : c.assigned) {
        const Ru& r = rus_[std::size_t(a.ru)];
        if (r.radiation_slot != slot) continue;
        const int lo = a.prb_offset + al.start_prb;
        const int hi = lo + al.n_prb;
        for (const auto& lm : a.layers) {
          bool covered = false;
          for (const auto& pr : r.radiation.ports) {
            if (pr.port == lm.ru_port && intervals_cover(pr.data, lo, hi)) {
              covered = true;
              break;
            }
          }
          if (!covered) continue;
          layer_mask |= 1u << lm.cell_layer;
          sig_lin += db_to_linear(channel_.dl_snr_db(
              r.site.pos, u.cfg.pos, link_seed(a.ru, al.ue)));
        }
      }
      int usable_layers = 0;
      for (std::uint32_t m = layer_mask; m; m &= m - 1) ++usable_layers;
      usable_layers = std::min(usable_layers, al.layers);
      if (usable_layers == 0 || sig_lin <= 0.0) {
        // Nothing radiated for this allocation: distinct from an MCS
        // failure (a passive standby DU's allocations land here, and the
        // OLLA must not react to them).
        if (getenv("RB_DEBUG_AIR")) fprintf(stderr, "slot=%lld ue=%d NO-RADIATION usable=%d sig=%f\n", (long long)slot, al.ue, usable_layers, sig_lin);
        ++u.dl_unradiated;
        continue;
      }
      const Hertz f_lo = c.cfg.prb_freq(al.start_prb);
      const Hertz f_hi = c.cfg.prb_freq(al.start_prb + al.n_prb);
      const double i_lin = dl_interference_lin(CellId(ci), al.ue, f_lo, f_hi);
      const double sinr_total_db = linear_to_db(sig_lin / (1.0 + i_lin));
      const double per_layer_db =
          sinr_total_db - mimo_layer_penalty_db(al.layers);
      u.last_sinr_db = per_layer_db;
      u.last_rank = al.layers;
      if (per_layer_db + 0.25 >= al.assumed_sinr_db) {
        u.dl_bits += std::uint64_t(al.tbs_bits * usable_layers / al.layers);
      } else {
        if (getenv("RB_DEBUG_AIR")) fprintf(stderr, "slot=%lld ue=%d SINR-FAIL per_layer=%.2f assumed=%.2f usable=%d\n", (long long)slot, al.ue, per_layer_db, al.assumed_sinr_db, usable_layers);
        ++u.dl_errors;  // HARQ failure; DU's OLLA adapts
      }
    }
  }
}

UeReport AirModel::ue_report(UeId ue) const {
  const Ue& u = ues_[std::size_t(ue)];
  UeReport rep;
  if (u.state != UeAttachState::Attached || u.serving < 0) return rep;
  rep.attached = true;
  rep.serving = u.serving;
  const Cell& c = cells_[std::size_t(u.serving)];

  // Capability: distinct cell layers with at least one mapped antenna.
  std::uint32_t mask = 0;
  for (const auto& a : c.assigned)
    for (const auto& lm : a.layers) mask |= 1u << lm.cell_layer;
  int capability = 0;
  for (std::uint32_t m = mask; m; m &= m - 1) ++capability;
  capability = std::min({capability, c.cfg.max_layers, u.cfg.max_layers});
  if (capability < 1) capability = 1;

  auto signal = cell_signal_db(c, ue, /*require_radiation=*/false, nullptr);
  if (!signal) return rep;

  // Rank selection: maximize aggregate spectral efficiency.
  int best_rank = 1;
  double best_score = -1.0;
  double best_sinr = -99.0;
  for (int L : {1, 2, 3, 4}) {
    if (L > capability) break;
    const double per_layer = *signal - mimo_layer_penalty_db(L);
    const double score = double(L) * spectral_efficiency(per_layer, L);
    if (score > best_score) {
      best_score = score;
      best_rank = L;
      best_sinr = per_layer;
    }
  }
  rep.rank = best_rank;
  rep.per_layer_sinr_db = quantize_sinr_db(best_sinr);
  return rep;
}

bool AirModel::same_cell_identity(CellId a, CellId b) const {
  if (a == b) return true;
  if (a < 0 || b < 0) return false;
  // Cells announcing the same PCI are indistinguishable to a UE - the
  // warm-standby DU case (section 8.1): both are "the" serving cell.
  return cells_[std::size_t(a)].cfg.pci == cells_[std::size_t(b)].cfg.pci;
}

std::vector<UeId> AirModel::attached_ues(CellId cell) const {
  std::vector<UeId> out;
  for (std::size_t ui = 0; ui < ues_.size(); ++ui)
    if (same_cell_identity(ues_[ui].serving, cell)) out.push_back(UeId(ui));
  return out;
}

void AirModel::set_defer_prach(bool on) {
  defer_prach_ = on;
  prach_pending_.assign(cells_.size(), -1);
}

void AirModel::flush_prach_completions() {
  if (prach_pending_.size() < cells_.size())
    prach_pending_.resize(cells_.size(), -1);
  const bool defer = defer_prach_;
  defer_prach_ = false;  // re-enter complete_prach on the direct path
  for (std::size_t c = 0; c < prach_pending_.size(); ++c) {
    if (prach_pending_[c] >= 0) complete_prach(CellId(c), prach_pending_[c]);
    prach_pending_[c] = -1;
  }
  defer_prach_ = defer;
}

void AirModel::complete_prach(CellId cell, std::int64_t slot) {
  if (defer_prach_) {
    // Disjoint per-cell slot record; applied at the barrier in cell order.
    if (cell >= 0 && std::size_t(cell) < prach_pending_.size())
      prach_pending_[std::size_t(cell)] = slot;
    return;
  }
  (void)slot;
  for (auto& u : ues_) {
    if (u.state == UeAttachState::WaitPrach && u.prach_target == cell) {
      u.state = UeAttachState::Attached;
      u.serving = cell;
      u.prach_target = -1;
      u.ssb_misses = 0;
    }
  }
}

std::int64_t AirModel::resolve_ul_alloc(CellId cell, std::int64_t slot,
                                        const UlAlloc& alloc) {
  (void)slot;
  if (alloc.ue < 0 || std::size_t(alloc.ue) >= ues_.size()) return 0;
  Ue& u = ues_[std::size_t(alloc.ue)];
  if (!same_cell_identity(u.serving, cell)) return 0;
  const Cell& c = cells_[std::size_t(cell)];

  // Combined UL signal across the serving RU set (the DAS merge sums the
  // per-RU streams; with one dominant RU this approximates selection).
  double sig_lin = 0.0;
  for (const auto& a : c.assigned)
    sig_lin += db_to_linear(channel_.ul_snr_db(
        rus_[std::size_t(a.ru)].site.pos, u.cfg.pos,
        link_seed(a.ru, alloc.ue)));
  if (sig_lin <= 0.0) return 0;

  // Cross-cell UL interference on overlapping spectrum.
  double i_lin = 0.0;
  const Hertz f_lo = c.cfg.prb_freq(alloc.start_prb);
  const Hertz f_hi = c.cfg.prb_freq(alloc.start_prb + alloc.n_prb);
  for (std::size_t ci = 0; ci < cells_.size(); ++ci) {
    if (same_cell_identity(CellId(ci), cell)) continue;
    const Cell& oc = cells_[ci];
    for (const auto& oa : oc.ul_allocs) {
      const Hertz a_lo = oc.cfg.prb_freq(oa.start_prb);
      const Hertz a_hi = oc.cfg.prb_freq(oa.start_prb + oa.n_prb);
      const Hertz lo = std::max(f_lo, a_lo);
      const Hertz hi = std::min(f_hi, a_hi);
      if (hi <= lo || oa.ue < 0) continue;
      const double frac = double(hi - lo) / double(f_hi - f_lo);
      // Interfering UE towards our best RU.
      double g = 0.0;
      for (const auto& a : c.assigned)
        g = std::max(g, db_to_linear(channel_.ul_snr_db(
                            rus_[std::size_t(a.ru)].site.pos,
                            ues_[std::size_t(oa.ue)].cfg.pos,
                            link_seed(a.ru, oa.ue))));
      i_lin += frac * g;
    }
  }
  const double sinr_db = linear_to_db(sig_lin / (1.0 + i_lin));
  u.last_sinr_db = sinr_db;
  if (sinr_db + 0.25 >= alloc.assumed_sinr_db) {
    u.ul_bits += std::uint64_t(alloc.tbs_bits);
    return alloc.tbs_bits;
  }
  ++u.ul_errors;
  return 0;
}

double AirModel::ul_rx_amplitude(RuId ru, std::int64_t slot, int ru_grid_prb) {
  Ru& r = rus_[std::size_t(ru)];
  const int ru_prbs = prbs_for_bandwidth(r.site.bandwidth, scs_);
  if (ru_grid_prb < 0 || ru_grid_prb >= ru_prbs) return kNoiseRms;
  if (r.ul_amp_slot != slot) {
    r.ul_amp_cache.assign(std::size_t(ru_prbs), kNoiseRms);
    const Hertz ru_prb0 =
        r.site.center_freq - 12 * scs_hz(scs_) * ru_prbs / 2;
    for (std::size_t ci = 0; ci < cells_.size(); ++ci) {
      const Cell& c = cells_[ci];
      if (c.alloc_slot != slot) continue;
      for (const auto& al : c.ul_allocs) {
        if (al.ue < 0) continue;
        const double snr_db = channel_.ul_snr_db(
            r.site.pos, ues_[std::size_t(al.ue)].cfg.pos,
            link_seed(ru, al.ue));
        const double sig_amp = kNoiseRms * std::pow(10.0, snr_db / 20.0);
        for (int p = al.start_prb; p < al.start_prb + al.n_prb; ++p) {
          const Hertz f = c.cfg.prb_freq(p);
          const std::int64_t idx64 = (f - ru_prb0) / (12 * scs_hz(scs_));
          if (idx64 < 0 || idx64 >= ru_prbs) continue;
          auto& cell_amp = r.ul_amp_cache[std::size_t(idx64)];
          // Sum powers of overlapping transmissions plus noise.
          cell_amp = std::sqrt(cell_amp * cell_amp + sig_amp * sig_amp);
        }
      }
    }
    r.ul_amp_slot = slot;
  }
  return r.ul_amp_cache[std::size_t(ru_grid_prb)];
}

bool AirModel::is_prach_occasion(std::int64_t slot) const {
  for (const auto& c : cells_) {
    const auto& p = c.cfg.prach;
    if (p.period_slots > 0 && slot % p.period_slots == p.slot_offset)
      return true;
  }
  return false;
}

std::vector<PrachRx> AirModel::prach_rx(RuId ru, std::int64_t slot) const {
  std::vector<PrachRx> out;
  const Ru& r = rus_[std::size_t(ru)];
  for (std::size_t ui = 0; ui < ues_.size(); ++ui) {
    const Ue& u = ues_[ui];
    if (u.state != UeAttachState::WaitPrach || u.prach_target < 0) continue;
    const Cell& c = cells_[std::size_t(u.prach_target)];
    const auto& p = c.cfg.prach;
    if (p.period_slots <= 0 || slot % p.period_slots != p.slot_offset)
      continue;
    PrachRx rx;
    rx.ue = UeId(ui);
    rx.target_cell = u.prach_target;
    rx.f0 = c.cfg.prach_f0();
    rx.n_prb = p.n_prb;
    const double snr_db =
        channel_.ul_snr_db(r.site.pos, u.cfg.pos, link_seed(ru, UeId(ui))) +
        kPrachGainDb;
    rx.amp_rms = kNoiseRms * std::pow(10.0, snr_db / 20.0);
    out.push_back(rx);
  }
  return out;
}

void AirModel::reset_counters() {
  for (auto& u : ues_) {
    u.dl_bits = 0;
    u.ul_bits = 0;
    u.dl_errors = 0;
    u.ul_errors = 0;
    u.dl_unradiated = 0;
  }
}

void AirModel::sync_ue_attach(UeId ue, bool attached, CellId serving) {
  Ue& u = ues_[std::size_t(ue)];
  if (attached) {
    u.state = UeAttachState::Attached;
    u.serving = serving;
    u.prach_target = -1;
    u.ssb_misses = 0;
  } else {
    u.state = UeAttachState::Idle;
    u.serving = -1;
    u.prach_target = -1;
    u.ssb_misses = 0;
  }
}

void AirModel::sync_ue_dl(UeId ue, std::uint64_t bits, std::uint64_t errors,
                          std::uint64_t unradiated) {
  Ue& u = ues_[std::size_t(ue)];
  u.dl_bits = bits;
  u.dl_errors = errors;
  u.dl_unradiated = unradiated;
}

void AirModel::sync_ue_ul(UeId ue, std::uint64_t bits, std::uint64_t errors) {
  Ue& u = ues_[std::size_t(ue)];
  u.ul_bits = bits;
  u.ul_errors = errors;
}

void AirModel::save_state(state::StateWriter& w) const {
  w.u32(std::uint32_t(cells_.size()));
  for (const Cell& c : cells_) {
    w.i64(c.alloc_slot);
    w.u32(std::uint32_t(c.dl_allocs.size()));
    for (const DlAlloc& a : c.dl_allocs) {
      w.i32(a.ue);
      w.i32(a.start_prb);
      w.i32(a.n_prb);
      w.i32(a.layers);
      w.f64(a.assumed_sinr_db);
      w.i64(a.tbs_bits);
    }
    w.u32(std::uint32_t(c.ul_allocs.size()));
    for (const UlAlloc& a : c.ul_allocs) {
      w.i32(a.ue);
      w.i32(a.start_prb);
      w.i32(a.n_prb);
      w.f64(a.assumed_sinr_db);
      w.i64(a.tbs_bits);
    }
  }
  w.u32(std::uint32_t(rus_.size()));
  for (const Ru& r : rus_) {
    w.i64(r.radiation_slot);
    w.u32(std::uint32_t(r.radiation.ports.size()));
    for (const auto& pr : r.radiation.ports) {
      w.i32(pr.port);
      for (const auto* iv : {&pr.data, &pr.ssb_sym}) {
        w.u32(std::uint32_t(iv->size()));
        for (const PrbInterval& p : *iv) {
          w.i32(p.start);
          w.i32(p.count);
        }
      }
    }
    w.i64(r.ul_amp_slot);
    w.u32(std::uint32_t(r.ul_amp_cache.size()));
    for (double v : r.ul_amp_cache) w.f64(v);
  }
  w.u32(std::uint32_t(ues_.size()));
  for (const Ue& u : ues_) {
    w.u8(std::uint8_t(u.state));
    w.i32(u.serving);
    w.i32(u.prach_target);
    w.i32(u.ssb_misses);
    w.i32(u.last_rank);
    w.f64(u.last_sinr_db);
    w.u64(u.dl_bits);
    w.u64(u.ul_bits);
    w.u64(u.dl_errors);
    w.u64(u.ul_errors);
    w.u64(u.dl_unradiated);
  }
  w.u32(std::uint32_t(prach_pending_.size()));
  for (std::int64_t s : prach_pending_) w.i64(s);
}

void AirModel::load_state(state::StateReader& r) {
  if (r.u32() != cells_.size()) {
    r.fail(state::StateError::kMismatch);
    return;
  }
  for (Cell& c : cells_) {
    c.alloc_slot = r.i64();
    c.dl_allocs.assign(r.count(36), DlAlloc{});
    for (DlAlloc& a : c.dl_allocs) {
      a.ue = r.i32();
      a.start_prb = r.i32();
      a.n_prb = r.i32();
      a.layers = r.i32();
      a.assumed_sinr_db = r.f64();
      a.tbs_bits = r.i64();
    }
    c.ul_allocs.assign(r.count(32), UlAlloc{});
    for (UlAlloc& a : c.ul_allocs) {
      a.ue = r.i32();
      a.start_prb = r.i32();
      a.n_prb = r.i32();
      a.assumed_sinr_db = r.f64();
      a.tbs_bits = r.i64();
    }
    if (!r.ok()) return;
  }
  if (r.u32() != rus_.size()) {
    r.fail(state::StateError::kMismatch);
    return;
  }
  for (Ru& ru : rus_) {
    ru.radiation_slot = r.i64();
    ru.radiation.ports.assign(r.count(12), {});
    for (auto& pr : ru.radiation.ports) {
      pr.port = r.i32();
      for (auto* iv : {&pr.data, &pr.ssb_sym}) {
        iv->assign(r.count(8), PrbInterval{});
        for (PrbInterval& p : *iv) {
          p.start = r.i32();
          p.count = r.i32();
        }
      }
    }
    ru.ul_amp_slot = r.i64();
    ru.ul_amp_cache.assign(r.count(8), 0.0);
    for (double& v : ru.ul_amp_cache) v = r.f64();
    if (!r.ok()) return;
  }
  if (r.u32() != ues_.size()) {
    r.fail(state::StateError::kMismatch);
    return;
  }
  for (Ue& u : ues_) {
    std::uint8_t st = r.u8();
    if (st > std::uint8_t(UeAttachState::Attached)) {
      r.fail(state::StateError::kBadValue);
      return;
    }
    u.state = UeAttachState(st);
    u.serving = r.i32();
    u.prach_target = r.i32();
    u.ssb_misses = r.i32();
    u.last_rank = r.i32();
    u.last_sinr_db = r.f64();
    u.dl_bits = r.u64();
    u.ul_bits = r.u64();
    u.dl_errors = r.u64();
    u.ul_errors = r.u64();
    u.dl_unradiated = r.u64();
  }
  std::uint32_t n_pending = r.u32();
  if (n_pending != prach_pending_.size()) {
    // Size tracks cell count lazily; rebuild to the checkpointed shape.
    prach_pending_.assign(n_pending, -1);
  }
  for (std::int64_t& s : prach_pending_) s = r.i64();
}

}  // namespace rb
