// TDD slot patterns.
//
// A pattern is a repeating sequence of slot types. The special slot's
// symbol split is modeled with fixed DL/guard/UL symbol counts. The paper
// notes TDD pattern is one of the few per-vendor configuration differences
// the middleboxes had to absorb.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"

namespace rb {

enum class SlotType : std::uint8_t { Downlink, Uplink, Special };

struct TddPattern {
  std::vector<SlotType> slots;  // repeating pattern
  int special_dl_symbols = 10;
  int special_guard_symbols = 2;
  int special_ul_symbols = 2;

  /// "DDDSU"-style string constructor helper.
  static TddPattern from_string(const std::string& s);

  SlotType type_at(std::int64_t slot_index) const {
    return slots[std::size_t(slot_index % std::int64_t(slots.size()))];
  }
  bool is_dl(std::int64_t slot_index) const {
    return type_at(slot_index) != SlotType::Uplink;
  }
  bool is_ul(std::int64_t slot_index) const {
    return type_at(slot_index) != SlotType::Downlink;
  }

  /// DL data symbols available in a given slot (0 for UL slots).
  int dl_symbols(std::int64_t slot_index) const;
  /// UL data symbols available in a given slot (0 for DL slots).
  int ul_symbols(std::int64_t slot_index) const;

  /// Long-run fraction of symbols usable for DL / UL data.
  double dl_symbol_fraction() const;
  double ul_symbol_fraction() const;

  /// Average DL / UL data symbols per second at a numerology.
  double dl_symbols_per_second(Scs scs) const;
  double ul_symbols_per_second(Scs scs) const;

  std::string str() const;
};

/// The band-78 default the testbed stacks use.
TddPattern default_tdd();

}  // namespace rb
