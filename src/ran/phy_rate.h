// SINR -> spectral efficiency -> bits mapping, with the MIMO layer model.
//
// Calibration: constants here are chosen so the simulated baselines land on
// the paper's measured anchors (Table 2 and section 6.2 numbers):
//   100 MHz 4x4 DL ~ 898 Mbps, 2-layer ~ 653 Mbps, UL SISO ~ 70 Mbps,
//   40 MHz DL ~ 330 Mbps / UL ~ 25 Mbps, 25 MHz 4x4 DL ~ 200 Mbps.
// See DESIGN.md section 5 and the calibration tests.
#pragma once

#include <cstdint>

namespace rb {

/// Link-level efficiency constants.
struct PhyRateParams {
  /// Implementation efficiency applied to Shannon capacity (coding,
  /// control overhead, scheduler quantization).
  double coding_efficiency = 0.92;
  /// Spectral-efficiency ceiling per layer (256-QAM with max code rate).
  double max_se_per_layer = 7.4;
  /// Rank-1 ceiling: the paper's SISO measurements (Figures 13/14: a
  /// single-layer 100 MHz cell peaks at ~250 Mbps) imply the stacks cap
  /// single-codeword SISO transport around 4 b/s/Hz; calibrated to that.
  double max_se_rank1 = 4.0;
  /// Minimum per-layer SINR (dB) to sustain any transmission (QPSK edge).
  double min_sinr_db = -6.0;
};

/// Per-layer SINR penalty for spatial multiplexing with `layers` layers,
/// applied to the total-power SINR (sum over all radiating antennas):
/// transmit power is split across layers and the channel becomes harder to
/// invert at higher rank (conditioning loss). Calibrated against Table 2.
double mimo_layer_penalty_db(int layers);

/// Per-layer spectral efficiency (bits/s/Hz) at a per-layer SINR, for a
/// transmission with `layers` spatial layers (rank 1 has a lower ceiling,
/// see PhyRateParams::max_se_rank1).
double spectral_efficiency(double sinr_db, int layers = 2,
                           const PhyRateParams& p = {});

/// Bits deliverable in one slot over `n_prb` PRBs, `data_symbols` OFDM
/// symbols and `layers` layers at per-layer SINR `sinr_db`.
std::int64_t slot_bits(double sinr_db, int n_prb, int data_symbols,
                       int layers, const PhyRateParams& p = {});

/// CQI-style quantization of SINR used for scheduler feedback (0.5 dB
/// steps; keeps the MCS choice stable under tiny numeric noise).
double quantize_sinr_db(double sinr_db);

/// Data symbols per DL slot after PDCCH/DMRS overhead.
inline constexpr int kDlDataSymbols = 13;
/// Data symbols per UL slot after DMRS overhead.
inline constexpr int kUlDataSymbols = 13;

}  // namespace rb
