// SlotEngine: the discrete-time driver of a full deployment.
//
// Per slot:
//   1. traffic hook injects offered load into the DUs,
//   2. DUs schedule and emit C-plane + DL U-plane,
//   3. middleboxes pump (possibly multiple passes for chains),
//   4. RUs absorb DL and report radiated spectrum to the AirModel,
//   5. the AirModel resolves attachment and DL delivery,
//   6. RUs serve cached UL requests (data + PRACH),
//   7. middleboxes pump again,
//   8. DUs consume UL and complete PRACH detections.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/timing.h"
#include "ran/air.h"
#include "ran/du.h"
#include "ran/ru.h"

namespace rb {

/// Anything that moves packets between its ports when pumped; the
/// RANBooster middlebox runtime implements this.
class Pumpable {
 public:
  virtual ~Pumpable() = default;
  /// Process pending packets. Returns true if any packet moved. The
  /// engine pumps until quiescent (bounded passes) so chains drain.
  virtual bool pump(std::int64_t slot, std::int64_t slot_start_ns) = 0;
  /// Slot boundary notification (per-slot CPU/latency accounting resets).
  virtual void begin_slot(std::int64_t slot) { (void)slot; }
};

class SlotEngine {
 public:
  explicit SlotEngine(AirModel& air, Scs scs = Scs::kHz30)
      : air_(&air), clock_(scs) {}

  void add_du(DuModel& du) { dus_.push_back(&du); }
  void add_ru(RuModel& ru) { rus_.push_back(&ru); }
  void add_middlebox(Pumpable& mb) { mbs_.push_back(&mb); }

  /// Called at the start of every slot with the slot index - used by the
  /// traffic generators to feed backlog into the DUs.
  void set_traffic_hook(std::function<void(std::int64_t)> hook) {
    traffic_ = std::move(hook);
  }

  void run_slots(int n);
  /// Run for a simulated duration.
  void run_ms(double ms);

  std::int64_t current_slot() const { return clock_.total_slots(); }
  std::int64_t elapsed_ns() const { return clock_.elapsed_ns(); }
  const SlotClock& clock() const { return clock_; }

  /// Convenience: run until every UE is attached or `max_slots` elapse.
  /// Returns true if all attached.
  bool run_until_attached(int max_slots = 400);

 private:
  void run_one_slot();

  AirModel* air_;
  SlotClock clock_;
  std::vector<DuModel*> dus_;
  std::vector<RuModel*> rus_;
  std::vector<Pumpable*> mbs_;
  std::function<void(std::int64_t)> traffic_;
};

}  // namespace rb
