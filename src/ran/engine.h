// SlotEngine: the discrete-time driver of a full deployment.
//
// Per slot:
//   1. traffic hook injects offered load into the DUs,
//   2. DUs schedule and emit C-plane + DL U-plane,
//   3. middleboxes pump (possibly multiple passes for chains),
//   4. RUs absorb DL and report radiated spectrum to the AirModel,
//   5. the AirModel resolves attachment and DL delivery,
//   6. RUs serve cached UL requests (data + PRACH),
//   7. middleboxes pump again,
//   8. DUs consume UL and complete PRACH detections.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/timing.h"
#include "exec/exec_policy.h"
#include "exec/worker_pool.h"
#include "ran/air.h"
#include "ran/du.h"
#include "ran/ru.h"

namespace rb {

/// Anything that moves packets between its ports when pumped; the
/// RANBooster middlebox runtime implements this.
class Pumpable {
 public:
  virtual ~Pumpable() = default;
  /// Process pending packets. Returns true if any packet moved. The
  /// engine pumps until quiescent (bounded passes) so chains drain.
  virtual bool pump(std::int64_t slot, std::int64_t slot_start_ns) = 0;
  /// Slot boundary notification (per-slot CPU/latency accounting resets).
  virtual void begin_slot(std::int64_t slot) { (void)slot; }

  /// Deferred-TX protocol of the parallel execution engine. A pumpable
  /// that supports it must, while defer mode is on, queue outbound packets
  /// in pump()/begin_slot() instead of transmitting inline (inline Port
  /// delivery mutates peer queues and switch FDBs, which other workers may
  /// own). flush_deferred_tx() transmits the queue; the coordinator calls
  /// it single-threaded at the barrier, in engine insertion order, which
  /// is what keeps parallel packet-level results deterministic. Returns
  /// true if any packet left. Default: unsupported (pumped serially).
  virtual bool supports_deferred_tx() const { return false; }
  virtual void set_defer_tx(bool on) { (void)on; }
  virtual bool flush_deferred_tx() { return false; }
};

class SlotEngine {
 public:
  explicit SlotEngine(AirModel& air, Scs scs = Scs::kHz30)
      : air_(&air), clock_(scs) {}

  void add_du(DuModel& du) { dus_.push_back(&du); }
  void add_ru(RuModel& ru) { rus_.push_back(&ru); }
  void add_middlebox(Pumpable& mb) { mbs_.push_back(&mb); }

  // --- parallel execution --------------------------------------------
  /// Select the execution engine. Serial (the default) is the historical
  /// single-threaded path, byte-identical to previous behaviour. Parallel
  /// shards entities across a worker pool by flow affinity and runs each
  /// slot as a sequence of barrier-synchronized phases; packet-level
  /// results match serial execution (see DESIGN.md "Execution model").
  /// Safe to call between slots; threads spin up lazily.
  void set_exec_policy(const exec::ExecPolicy& p);
  const exec::ExecPolicy& exec_policy() const { return policy_; }

  /// Declare the flow-affinity key of an entity (exec::flow_key over its
  /// RU/eAxC set; the Deployment builders do this). Entities sharing a
  /// key — transitively — form one island, the unit of sharding: an
  /// island's DU, RUs and middleboxes always run on the same worker, so
  /// their inline port deliveries stay worker-local. Unbound entities
  /// fall into a common serial island.
  void bind_affinity(DuModel& du, std::uint64_t key);
  void bind_affinity(RuModel& ru, std::uint64_t key);
  void bind_affinity(Pumpable& mb, std::uint64_t key);

  /// Merged per-worker execution stats (parallel mode only).
  exec::WorkerStats exec_stats() const;
  /// Number of affinity islands discovered (for bench/telemetry).
  std::size_t num_islands() const { return islands_.size(); }

  /// Called at the start of every slot with the slot index - used by the
  /// traffic generators to feed backlog into the DUs.
  void set_traffic_hook(std::function<void(std::int64_t)> hook) {
    traffic_ = std::move(hook);
  }

  /// Register an extra begin-of-slot hook (fault links advance flap
  /// schedules and release reorder holds here). Hooks run after the
  /// traffic hook, before any entity's begin_slot, always on the
  /// coordinator thread and in registration order.
  void add_begin_slot_hook(std::function<void(std::int64_t)> hook) {
    begin_hooks_.push_back(std::move(hook));
  }

  // --- conductor (city mode) integration -----------------------------
  /// Pre-slot hooks run at the very top of every slot, before obs spans,
  /// air begin_slot and traffic — i.e. at the exact instant the conductor
  /// hands the shard its slot. The city conductor uses these to drive
  /// guest entities (e.g. a neutral-host DU whose RU lives in another
  /// cell shard) at their virtual offset. Args: (slot, slot_start_ns).
  void add_pre_slot_hook(std::function<void(std::int64_t, std::int64_t)> h) {
    pre_hooks_.push_back(std::move(h));
  }
  /// End-slot hooks run after the slot's work completes, before the clock
  /// advances. The conductor uses these for per-cell slot accounting.
  void add_end_slot_hook(std::function<void(std::int64_t)> h) {
    end_hooks_.push_back(std::move(h));
  }
  /// When an external conductor owns observability (city mode), the
  /// engine must not emit slot spans or commit the process-wide obs
  /// collector itself — the conductor does both once per city slot at
  /// the barrier. Default off (single-engine behaviour unchanged).
  void set_external_obs(bool on) { external_obs_ = on; }

  void run_slots(int n);
  /// Run for a simulated duration.
  void run_ms(double ms);

  std::int64_t current_slot() const { return clock_.total_slots(); }
  std::int64_t elapsed_ns() const { return clock_.elapsed_ns(); }
  const SlotClock& clock() const { return clock_; }

  /// Convenience: run until every UE is attached or `max_slots` elapse.
  /// Returns true if all attached.
  bool run_until_attached(int max_slots = 400);

  /// Checkpoint/restore support: set virtual time to a checkpointed
  /// symbol count. Only meaningful at the slot barrier (between
  /// run_slots calls); mid-slot restore is undefined.
  void restore_clock_symbols(std::int64_t symbols) {
    clock_.set_total_symbols(symbols);
  }

 private:
  /// One shard of the deployment: entities reachable from each other
  /// through shared affinity keys. Everything in an island runs on one
  /// worker per phase, so its inline port deliveries never race.
  struct Island {
    std::vector<DuModel*> dus;
    std::vector<RuModel*> rus;
    std::vector<Pumpable*> mbs;     // deferred-TX capable
    std::vector<Pumpable*> serial_mbs;  // pumped by the coordinator
    int worker = 0;
  };

  enum class Phase : std::uint8_t { DuBegin, RuDl, RuUl, DuRx, MbPump };
  struct PhaseTask {
    SlotEngine* eng = nullptr;
    Island* isl = nullptr;
    Phase ph = Phase::MbPump;
    std::int64_t slot = 0;
    std::int64_t t0 = 0;
    bool moved = false;  // MbPump result, written by the owning worker
  };

  void run_one_slot();
  void run_one_slot_serial();
  void run_one_slot_parallel();
  void plan_islands();
  void ensure_pool();
  static void phase_trampoline(void* arg, int worker);
  void run_phase_task(PhaseTask& t);
  /// Dispatch `ph` over every island; returns true if any MbPump moved.
  bool run_sharded_phase(Phase ph, std::int64_t slot, std::int64_t t0);

  AirModel* air_;
  SlotClock clock_;
  std::vector<DuModel*> dus_;
  std::vector<RuModel*> rus_;
  std::vector<Pumpable*> mbs_;
  std::function<void(std::int64_t)> traffic_;
  std::vector<std::function<void(std::int64_t)>> begin_hooks_;
  std::vector<std::function<void(std::int64_t, std::int64_t)>> pre_hooks_;
  std::vector<std::function<void(std::int64_t)>> end_hooks_;
  bool external_obs_ = false;

  exec::ExecPolicy policy_{};
  std::unique_ptr<exec::WorkerPool> pool_;
  std::vector<std::pair<const void*, std::uint64_t>> affinity_;  // entity→key
  std::vector<Island> islands_;
  bool islands_dirty_ = true;
  bool ran_sharded_ = false;  // DU/RU phases may run on workers
  std::vector<PhaseTask> tasks_;             // reused per phase
  std::vector<exec::WorkerPool::Job> jobs_;  // reused per phase
};

}  // namespace rb
