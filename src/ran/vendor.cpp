#include "ran/vendor.h"

namespace rb {

VendorProfile srsran_profile() {
  VendorProfile p;
  p.name = "srsran";
  p.cplane_per_symbol = false;
  p.iq_width = 9;
  p.uplane_has_comp_hdr = true;
  p.vlan_id = 6;
  p.tdd = TddPattern::from_string("DDDSU");
  p.efficiency = 1.0;
  return p;
}

VendorProfile capgemini_profile() {
  VendorProfile p;
  p.name = "capgemini";
  p.cplane_per_symbol = true;
  p.iq_width = 9;
  p.uplane_has_comp_hdr = true;
  p.vlan_id = 2;
  p.tdd = TddPattern::from_string("DDDSUUDDDD");
  p.efficiency = 1.04;
  return p;
}

VendorProfile radisys_profile() {
  VendorProfile p;
  p.name = "radisys";
  p.cplane_per_symbol = false;
  p.iq_width = 14;
  p.uplane_has_comp_hdr = false;
  p.vlan_id = 10;
  p.tdd = TddPattern::from_string("DDDDDDDSUU");
  p.efficiency = 0.97;
  return p;
}

}  // namespace rb
