// PTP/SyncE synchronization model.
//
// All fronthaul-compliant RUs and DUs are synchronized to a grandmaster
// (the testbed's Qulsar QG2); the middleboxes inherit this for free (paper
// section 4.2). We model per-node offsets as bounded deterministic values:
// nodes within the bound are "locked"; a node pushed outside the bound
// (failure injection) violates the fronthaul timing windows and its
// packets are rejected, which the tests exercise.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

namespace rb {

class PtpGrandmaster {
 public:
  /// dMIMO-grade phase budget (a few tens of ns, paper cites nanosecond-
  /// level requirements for coherent transmission).
  explicit PtpGrandmaster(std::int64_t lock_bound_ns = 60)
      : lock_bound_ns_(lock_bound_ns) {}

  /// Register a node; its steady-state offset is a deterministic hash in
  /// (-bound/2, bound/2).
  void add_node(const std::string& name);

  /// Current phase offset of a node vs the GM (ns).
  std::int64_t offset_ns(const std::string& name) const;

  /// True when the node's offset is within the lock bound.
  bool locked(const std::string& name) const;

  /// Failure injection: force a node's offset (e.g. holdover drift).
  void set_offset_ns(const std::string& name, std::int64_t ns);

  std::int64_t lock_bound_ns() const { return lock_bound_ns_; }

  /// Worst pairwise offset across all nodes - the relative phase error
  /// that matters for distributed MIMO coherence.
  std::int64_t max_pairwise_offset_ns() const;

 private:
  std::int64_t lock_bound_ns_;
  std::unordered_map<std::string, std::int64_t> offsets_;
};

}  // namespace rb
