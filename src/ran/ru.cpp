#include "ran/ru.h"

#include <algorithm>
#include <cmath>

#include "iq/kernels/kernels.h"

namespace rb {

RuModel::RuModel(RuModelConfig cfg, AirModel& air, RuId ru_id, Port& port,
                 PacketPool& pool)
    : cfg_(std::move(cfg)),
      air_(&air),
      ru_id_(ru_id),
      port_(&port),
      pool_(&pool) {
  n_prb_ = prbs_for_bandwidth(cfg_.site.bandwidth, Scs::kHz30);
  ul_comp_ = cfg_.fh.comp;
}

Hertz RuModel::prb0_freq() const {
  return cfg_.site.center_freq - 12 * scs_hz(Scs::kHz30) * n_prb_ / 2;
}

void RuModel::add_interval(std::vector<PrbInterval>& iv, int start,
                           int count) {
  // Intervals arrive out of order across symbols; collect raw and
  // normalize (sort + merge) once per slot before reporting.
  if (count <= 0) return;
  iv.push_back({start, count});
}

void RuModel::normalize(std::vector<PrbInterval>& iv) {
  if (iv.size() < 2) return;
  std::sort(iv.begin(), iv.end(), [](const PrbInterval& a, const PrbInterval& b) {
    return a.start < b.start;
  });
  std::vector<PrbInterval> out;
  out.push_back(iv.front());
  for (std::size_t i = 1; i < iv.size(); ++i) {
    if (iv[i].start <= out.back().end()) {
      const int end = std::max(out.back().end(), iv[i].end());
      out.back().count = end - out.back().start;
    } else {
      out.push_back(iv[i]);
    }
  }
  iv = std::move(out);
}

void RuModel::process_dl(std::int64_t slot, std::int64_t slot_start_ns) {
  if (cache_slot_ != slot) {
    cache_slot_ = slot;
    ul_requests_.clear();
    prach_requests_.clear();
    port_accum_.clear();
  }
  const bool ssb_slot =
      cfg_.ssb_period_slots > 0 && slot % cfg_.ssb_period_slots == 0;

  std::vector<PacketPtr> pkts;
  while (port_->rx_burst(pkts, 64) > 0) {
    for (auto& p : pkts) {
      auto frame = parse_frame(p->data(), cfg_.fh);
      if (!frame) {
        ++stats_.parse_errors;
        continue;
      }
      // Reception window: each frame must arrive within the budget of its
      // own symbol's nominal time.
      const std::int64_t nominal =
          slot_start_ns +
          std::int64_t(frame->at().symbol) * symbol_duration_ns(Scs::kHz30);
      if (p->rx_time_ns > nominal + cfg_.latency_budget_ns) {
        ++stats_.late_drops;
        continue;
      }
      const EaxcId eaxc = frame->ecpri.eaxc;
      if (frame->is_cplane()) {
        ++stats_.cplane_rx;
        const auto& c = frame->cplane();
        if (c.direction == Direction::Downlink) {
          // Record scheduled coverage; radiation is clipped to it.
          auto& acc = port_accum_[eaxc.ru_port];
          for (const auto& s : c.sections) {
            const int n = s.effective_prbs(n_prb_);
            add_interval(acc.cplane, s.start_prb, n);
          }
        } else if (c.section_type == SectionType::Type3) {
          for (const auto& s : c.sections) {
            PrachRequest r;
            r.eaxc = eaxc;
            r.section_id = s.section_id;
            r.freq_offset = s.freq_offset;
            r.n_prb = s.effective_prbs(n_prb_);
            r.reply_to = frame->eth.src;
            prach_requests_.push_back(r);
          }
        } else {
          if (eaxc.ru_port >= cfg_.site.n_antennas) {
            ++stats_.unexpected_port_drops;
            continue;
          }
          for (const auto& s : c.sections) {
            UlRequest r;
            r.port = eaxc.ru_port;
            r.start_prb = s.start_prb;
            r.n_prb = s.effective_prbs(n_prb_);
            r.symbol = c.at.symbol;
            r.reply_to = frame->eth.src;
            r.eaxc = eaxc;
            ul_requests_.push_back(r);
          }
        }
        continue;
      }

      // U-plane (downlink IQ to radiate).
      const auto& u = frame->uplane();
      if (u.direction != Direction::Downlink) continue;
      if (eaxc.ru_port >= cfg_.site.n_antennas) {
        ++stats_.unexpected_port_drops;
        continue;
      }
      ++stats_.uplane_rx;
      auto& acc = port_accum_[eaxc.ru_port];
      const bool ssb_sym = ssb_slot && u.at.symbol >= cfg_.ssb_first_symbol &&
                           u.at.symbol <
                               cfg_.ssb_first_symbol + cfg_.ssb_n_symbols;
      for (const auto& sec : u.sections) {
        if (sec.payload_offset + sec.payload_len > p->len()) {
          ++stats_.parse_errors;
          continue;
        }
        const std::size_t prb_sz = sec.comp.prb_bytes();
        auto payload = p->bytes(sec.payload_offset, sec.payload_len);
        // Scan BFP exponents to find energized PRBs (no decompression).
        int run_start = -1;
        for (int k = 0; k <= sec.num_prb; ++k) {
          bool hot = false;
          if (k < sec.num_prb) {
            const std::uint8_t e =
                bfp_wire_exponent(payload.subspan(std::size_t(k) * prb_sz));
            hot = e >= energy_exponent_threshold(sec.comp.iq_width);
          }
          if (hot && run_start < 0) run_start = k;
          if (!hot && run_start >= 0) {
            const int abs_start = sec.start_prb + run_start;
            const int n = k - run_start;
            add_interval(acc.data, abs_start, n);
            if (ssb_sym) add_interval(acc.ssb, abs_start, n);
            run_start = -1;
          }
        }
      }
    }
    pkts.clear();
  }

  // Clip radiation to the C-plane scheduled coverage and report.
  RadiationReport rep;
  for (auto& [port, acc] : port_accum_) {
    normalize(acc.data);
    normalize(acc.ssb);
    normalize(acc.cplane);
    RadiationReport::PortReport pr;
    pr.port = port;
    auto clip = [&acc](const std::vector<PrbInterval>& in,
                       std::vector<PrbInterval>& out) {
      for (const auto& e : in) {
        for (const auto& c : acc.cplane) {
          const int lo = std::max(e.start, c.start);
          const int hi = std::min(e.end(), c.end());
          if (hi > lo) out.push_back({lo, hi - lo});
        }
      }
    };
    clip(acc.data, pr.data);
    clip(acc.ssb, pr.ssb_sym);
    if (!acc.data.empty() && pr.data.empty()) ++stats_.uplane_without_cplane;
    if (!pr.data.empty() || !pr.ssb_sym.empty())
      rep.ports.push_back(std::move(pr));
  }
  if (!rep.ports.empty()) air_->report_radiation(ru_id_, slot, rep);
}

void RuModel::synth_payload(std::vector<std::uint8_t>& out, int start_prb,
                            int n_prb, std::int64_t slot) {
  // Noise synthesis is the dispatched kernel (iq/kernels/noise.h holds
  // the scalar reference); the RNG advance it performs is part of
  // checkpointed RU state, so every tier matches it draw-for-draw.
  const IqKernelOps& ops = iq_ops();
  const std::size_t prb_sz = ul_comp_.prb_bytes();
  out.resize(std::size_t(n_prb) * prb_sz);
  PrbSamples samples{};
  for (int k = 0; k < n_prb; ++k) {
    const double amp = air_->ul_rx_amplitude(ru_id_, slot, start_prb + k);
    const double peak = amp * 1.732;
    const std::int32_t a = std::max<std::int32_t>(1, std::int32_t(peak));
    ops.synth_noise_prb(&rng_, a, samples.data());
    bfp_compress_prb(IqConstSpan(samples.data(), samples.size()),
                     ul_comp_.iq_width,
                     std::span(out).subspan(std::size_t(k) * prb_sz));
  }
}

void RuModel::emit_ul(std::int64_t slot, std::int64_t slot_start_ns) {
  if (cache_slot_ != slot) return;  // nothing cached for this slot
  SlotPoint at;
  {
    const int spsf = slots_per_subframe(Scs::kHz30);
    at.slot = std::uint8_t(slot % spsf);
    const std::int64_t sf = slot / spsf;
    at.subframe = std::uint8_t(sf % 10);
    at.frame = std::uint8_t((sf / 10) % 256);
    at.symbol = 0;
  }

  std::vector<std::uint8_t> payload;
  for (const auto& req : ul_requests_) {
    synth_payload(payload, req.start_prb, req.n_prb, slot);
    UPlaneMsg hdr;
    hdr.direction = Direction::Uplink;
    hdr.at = at;
    hdr.at.symbol = std::uint8_t(req.symbol);
    USectionData sec;
    sec.section_id = 0;
    sec.start_prb = std::uint16_t(req.start_prb);
    sec.num_prb = req.n_prb;
    sec.payload = payload;
    sec.comp = ul_comp_;  // per-packet udCompHdr carries the live width
    EthHeader eth;
    eth.dst = req.reply_to;
    eth.src = cfg_.ru_mac;
    eth.has_vlan = true;
    eth.vlan_id = cfg_.fh.vlan_id;
    eth.pcp = 7;
    // Fragment wide payloads at the MTU (deterministic split, so DAS
    // merging pairs fragment k of every RU).
    const auto frames =
        split_sections_for_mtu(std::span(&sec, 1), cfg_.fh);
    for (const auto& frame_secs : frames) {
      PacketPtr p = pool_->alloc();
      if (!p) {
        ++stats_.pool_exhausted;
        continue;
      }
      const std::size_t len = build_uplane_frame(
          p->raw(), eth, req.eaxc, seq_[req.eaxc.packed()]++, hdr,
          std::span(frame_secs.data(), frame_secs.size()), cfg_.fh);
      if (len == 0) {
        ++stats_.parse_errors;
        continue;
      }
      p->set_len(len);
      // The RU can only emit an UL symbol after receiving it over the air.
      p->rx_time_ns =
          slot_start_ns + req.symbol * symbol_duration_ns(Scs::kHz30);
      port_->send(std::move(p));
      ++stats_.uplane_tx;
    }
  }

  // PRACH capture windows.
  if (!prach_requests_.empty() && air_->is_prach_occasion(slot)) {
    const auto txs = air_->prach_rx(ru_id_, slot);
    const Hertz scs = scs_hz(Scs::kHz30);
    for (const auto& req : prach_requests_) {
      // Appendix A.1.2: capture window starts at center - offset*SCS/2.
      const Hertz capture_f0 =
          cfg_.site.center_freq - Hertz(req.freq_offset) * scs / 2;
      const std::size_t prb_sz = cfg_.fh.comp.prb_bytes();
      payload.assign(std::size_t(req.n_prb) * prb_sz, 0);
      PrbSamples samples{};
      for (int k = 0; k < req.n_prb; ++k) {
        const Hertz f_lo = capture_f0 + k * 12 * scs;
        const Hertz f_hi = f_lo + 12 * scs;
        double amp = AirModel::kNoiseRms;
        for (const auto& tx : txs) {
          const Hertz t_lo = tx.f0;
          const Hertz t_hi = tx.f0 + Hertz(tx.n_prb) * 12 * scs;
          if (std::max(f_lo, t_lo) < std::min(f_hi, t_hi))
            amp = std::sqrt(amp * amp + tx.amp_rms * tx.amp_rms);
        }
        const double peak = amp * 1.732;
        const std::int32_t a = std::max<std::int32_t>(1, std::int32_t(peak));
        iq_ops().synth_noise_prb(&rng_, a, samples.data());
        bfp_compress_prb(IqConstSpan(samples.data(), samples.size()),
                         cfg_.fh.comp.iq_width,
                         std::span(payload).subspan(std::size_t(k) * prb_sz));
      }
      UPlaneMsg hdr;
      hdr.direction = Direction::Uplink;
      hdr.filter_index = 1;
      hdr.at = at;
      USectionData sec;
      sec.section_id = req.section_id;
      sec.start_prb = 0;
      sec.num_prb = req.n_prb;
      sec.payload = payload;
      EthHeader eth;
      eth.dst = req.reply_to;
      eth.src = cfg_.ru_mac;
      eth.has_vlan = true;
      eth.vlan_id = cfg_.fh.vlan_id;
      eth.pcp = 7;
      PacketPtr p = pool_->alloc();
      if (!p) {
        ++stats_.pool_exhausted;
        continue;
      }
      const std::size_t len = build_uplane_frame(
          p->raw(), eth, req.eaxc, seq_[req.eaxc.packed()]++, hdr,
          std::span(&sec, 1), cfg_.fh);
      if (len == 0) {
        ++stats_.parse_errors;
        continue;
      }
      p->set_len(len);
      p->rx_time_ns = slot_start_ns;
      port_->send(std::move(p));
      ++stats_.prach_tx;
    }
  }
}

void RuModel::save_state(state::StateWriter& w) const {
  w.u8(ul_comp_.iq_width);
  w.u32(rng_);
  std::vector<std::uint16_t> keys;
  keys.reserve(seq_.size());
  for (const auto& [k, _] : seq_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  w.u32(std::uint32_t(keys.size()));
  for (std::uint16_t k : keys) {
    w.u16(k);
    w.u8(seq_.at(k));
  }
  w.u64(stats_.cplane_rx);
  w.u64(stats_.uplane_rx);
  w.u64(stats_.uplane_tx);
  w.u64(stats_.late_drops);
  w.u64(stats_.parse_errors);
  w.u64(stats_.unexpected_port_drops);
  w.u64(stats_.uplane_without_cplane);
  w.u64(stats_.prach_tx);
  w.u64(stats_.pool_exhausted);
}

void RuModel::load_state(state::StateReader& r) {
  std::uint8_t width = r.u8();
  if (width < 1 || width > 16) {
    r.fail(state::StateError::kBadValue);
    return;
  }
  ul_comp_.iq_width = width;
  rng_ = r.u32();
  seq_.clear();
  for (std::uint32_t i = 0, n = r.count(3); i < n && r.ok(); ++i) {
    std::uint16_t k = r.u16();
    seq_[k] = r.u8();
  }
  stats_.cplane_rx = r.u64();
  stats_.uplane_rx = r.u64();
  stats_.uplane_tx = r.u64();
  stats_.late_drops = r.u64();
  stats_.parse_errors = r.u64();
  stats_.unexpected_port_drops = r.u64();
  stats_.uplane_without_cplane = r.u64();
  stats_.prach_tx = r.u64();
  stats_.pool_exhausted = r.u64();
}

}  // namespace rb
