// DU (Distributed Unit) model.
//
// Owns the MAC scheduler and the fronthaul endpoint of one cell: emits
// C-plane scheduling messages and BFP-compressed DL U-plane frames, and
// consumes the UL U-plane (data + PRACH) coming back. The middleboxes sit
// between this and the RuModel; neither endpoint knows they exist, which
// is the paper's transparency requirement.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fronthaul/frame.h"
#include "net/packet.h"
#include "net/port.h"
#include "ran/air.h"
#include "ran/scheduler.h"
#include "ran/vendor.h"

namespace rb {

struct DuConfig {
  CellConfig cell{};
  VendorProfile vendor{};
  MacAddr du_mac = MacAddr::du(0);
  MacAddr ru_mac = MacAddr::ru(0);  // logical RU the DU believes it drives
  std::uint8_t du_id = 0;           // used as PRACH section id (Alg. 3)
  /// Max fronthaul one-way delay (link + middlebox) before a packet is
  /// outside the reception window and dropped (paper: "a few tens of us").
  std::int64_t latency_budget_ns = 30'000;
  /// How many recent UL slots stay eligible for U-plane matching. 1 (the
  /// default) keeps the historical same-slot path byte-identical. City
  /// mode sets >1 for neutral-host guest DUs whose UL frames cross a
  /// shard boundary and arrive a couple of conductor slots after the
  /// allocation was scheduled; frames are then matched to their slot by
  /// SlotPoint instead of by arrival slot.
  int ul_match_slots = 1;
};

struct DuStats {
  std::uint64_t cplane_tx = 0;
  std::uint64_t uplane_tx = 0;
  std::uint64_t uplane_rx = 0;
  std::uint64_t late_drops = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t ul_decode_fail = 0;  // payload energy below decode floor
  std::uint64_t prach_detections = 0;
  std::uint64_t pool_exhausted = 0;
};

class DuModel {
 public:
  DuModel(DuConfig cfg, AirModel& air, CellId cell_id, Port& port,
          PacketPool& pool = PacketPool::default_pool());

  /// Scheduling + DL emission for one slot. `slot_start_ns` stamps packets
  /// for deadline accounting.
  void begin_slot(std::int64_t slot, std::int64_t slot_start_ns);

  /// Drain the port: UL data U-plane and PRACH. Call after RUs emitted.
  void process_rx(std::int64_t slot, std::int64_t slot_start_ns);

  /// Release every packet the DU is holding (UL match windows, undrained
  /// port queue). A DU fed across a shard boundary holds buffers owned by
  /// another shard's pool; its owner calls this before that pool dies.
  void drop_pending_rx();

  MacScheduler& scheduler() { return sched_; }
  const DuStats& stats() const { return stats_; }

  /// Failure injection: a failed DU emits nothing and processes nothing
  /// (software crash / server loss), for the resilience experiments.
  void set_failed(bool failed) { failed_ = failed; }
  bool failed() const { return failed_; }
  const FhContext& fh() const { return fh_; }
  const DuConfig& config() const { return cfg_; }

  /// Offered-load injection (the iperf stand-in feeds these).
  void add_dl_traffic(UeId ue, std::int64_t bits) {
    sched_.add_dl_backlog(ue, bits);
  }
  void add_ul_traffic(UeId ue, std::int64_t bits) {
    sched_.add_ul_backlog(ue, bits);
  }

  /// Checkpoint persistent DU state: scheduler, fronthaul sequence
  /// numbers, HARQ error watermarks, stats and the failure flag. Per-slot
  /// section tables and allocations are slot-keyed scratch, rebuilt at the
  /// next begin_slot, so they are not state.
  void save_state(state::StateWriter& w) const;
  void load_state(state::StateReader& r);

  /// Amplitude floor for declaring an UL allocation decodable, as a factor
  /// over the noise RMS.
  static constexpr double kUlDecodeFactor = 1.35;

  /// C-plane messages are released T1a ahead of their slot's airtime
  /// (O-RAN transmit windows), so control never contends with the U-plane
  /// for middlebox processing time.
  static constexpr std::int64_t kCplaneAdvanceNs = 200'000;

 private:
  void emit_cplane_dl(std::int64_t slot, const SlotPoint& at,
                      std::int64_t slot_start_ns);
  void emit_cplane_ul(std::int64_t slot, const SlotPoint& at,
                      std::int64_t slot_start_ns);
  void emit_uplane_dl(std::int64_t slot, const SlotPoint& at,
                      std::int64_t slot_start_ns);
  void emit_prach_cplane(std::int64_t slot, const SlotPoint& at,
                         std::int64_t slot_start_ns);
  void send_frame(std::size_t len, PacketPtr p, std::int64_t slot_start_ns);
  /// Compose the per-port section lists for this slot: one section per
  /// allocation (the DU only transports scheduled PRBs, like real stacks),
  /// plus the SSB window section on SSB symbols. Fronthaul volume is
  /// therefore traffic-dependent, which the CPU-utilization experiments
  /// (Figure 16) rely on.
  void build_sections(std::int64_t slot);

  EthHeader eth_to_ru() const;
  std::uint8_t next_seq(const EaxcId& eaxc);

  DuConfig cfg_;
  AirModel* air_;
  CellId cell_id_;
  Port* port_;
  PacketPool* pool_;
  FhContext fh_;
  MacScheduler sched_;
  DuStats stats_;

  int n_prb_;
  int n_ports_;

  // Cached compressed PRB prototypes (see DESIGN.md: substrate fast path).
  std::vector<std::uint8_t> zero_prb_;
  std::vector<std::vector<std::uint8_t>> signal_prbs_;  // rotating variants

  // Per-port section lists for the current slot. Payload bytes live in
  // payload_store_ (stable across the slot).
  std::vector<std::vector<USectionData>> data_sections_;  // data symbols
  std::vector<std::vector<USectionData>> ssb_sections_;   // SSB symbols
  std::vector<std::vector<std::uint8_t>> payload_store_;
  bool has_dl_sections_ = false;

  /// Shared decode gate of the same-slot and windowed UL paths: sample
  /// PRB energy from port-0 frames and credit decodable allocations.
  void resolve_ul_allocs(std::int64_t slot,
                         const std::vector<PacketPtr>& pkts,
                         const std::vector<UPlaneMsg>& msgs,
                         const std::vector<UlAlloc>& allocs,
                         std::unordered_set<int>& resolved);

  std::vector<DlAlloc> dl_allocs_;   // published this slot
  std::vector<UlAlloc> ul_allocs_;
  std::unordered_set<int> ul_resolved_;  // alloc indices credited this slot
  std::int64_t ul_alloc_slot_ = -1;

  /// Windowed UL matching (cfg_.ul_match_slots > 1 only): one entry per
  /// recent UL slot, trimmed to the configured depth at begin_slot.
  struct UlWindow {
    std::int64_t slot = -1;
    SlotPoint at{};
    std::vector<UlAlloc> allocs;
    std::unordered_set<int> resolved;
    std::uint32_t ports_seen = 0;
    std::vector<PacketPtr> port0_pkts;
    std::vector<UPlaneMsg> port0_msgs;
    bool fresh = false;  // received packets in the current process_rx call
  };
  std::vector<UlWindow> ul_windows_;

  std::unordered_map<std::uint16_t, std::uint8_t> seq_;
  std::unordered_map<UeId, std::uint64_t> last_dl_errors_;
  std::unordered_map<UeId, std::uint64_t> last_ul_errors_;
  bool failed_ = false;
};

}  // namespace rb
