#include "ran/du.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cmath>

#include "common/log.h"
#include "iq/prb.h"

namespace rb {
namespace {

/// Deterministic uniform IQ fill at a target RMS (int16 scale).
void fill_uniform(IqSpan out, double rms, std::uint32_t& state) {
  const double peak = rms * 1.732;  // uniform distribution peak
  const std::int32_t a = std::int32_t(peak);
  for (auto& s : out) {
    state = state * 1664525u + 1013904223u;
    s.i = sat16(std::int32_t(state >> 16) % (2 * a + 1) - a);
    state = state * 1664525u + 1013904223u;
    s.q = sat16(std::int32_t(state >> 16) % (2 * a + 1) - a);
  }
}

}  // namespace

DuModel::DuModel(DuConfig cfg, AirModel& air, CellId cell_id, Port& port,
                 PacketPool& pool)
    : cfg_(std::move(cfg)),
      air_(&air),
      cell_id_(cell_id),
      port_(&port),
      pool_(&pool),
      sched_(cfg_.cell.n_prb(),
             SchedulerParams{.efficiency = cfg_.vendor.efficiency}) {
  fh_.comp = CompConfig{CompMethod::BlockFloatingPoint, cfg_.vendor.iq_width};
  fh_.carrier_prbs = cfg_.cell.n_prb();
  fh_.uplane_has_comp_hdr = cfg_.vendor.uplane_has_comp_hdr;
  fh_.vlan_id = cfg_.vendor.vlan_id;
  n_prb_ = cfg_.cell.n_prb();
  n_ports_ = cfg_.cell.max_layers;

  // Precompute compressed PRB prototypes.
  const std::size_t prb_sz = fh_.comp.prb_bytes();
  zero_prb_.assign(prb_sz, 0);  // BFP of all-zeros is all-zero bytes
  std::uint32_t rng = 0xC0FFEEu + std::uint32_t(cfg_.du_id);
  for (int v = 0; v < 8; ++v) {
    PrbSamples samples{};
    fill_uniform(IqSpan(samples.data(), samples.size()), AirModel::kDlTxRms,
                 rng);
    std::vector<std::uint8_t> bytes(prb_sz);
    auto r = bfp_compress_prb(IqConstSpan(samples.data(), samples.size()),
                              fh_.comp.iq_width, bytes);
    (void)r;
    signal_prbs_.push_back(std::move(bytes));
  }
  data_sections_.resize(std::size_t(n_ports_));
  ssb_sections_.resize(std::size_t(n_ports_));
}

EthHeader DuModel::eth_to_ru() const {
  EthHeader eth;
  eth.dst = cfg_.ru_mac;
  eth.src = cfg_.du_mac;
  eth.has_vlan = true;
  eth.vlan_id = fh_.vlan_id;
  eth.pcp = 7;  // fronthaul rides the highest priority class
  return eth;
}

std::uint8_t DuModel::next_seq(const EaxcId& eaxc) {
  return seq_[eaxc.packed()]++;
}

void DuModel::send_frame(std::size_t len, PacketPtr p,
                         std::int64_t emit_time_ns) {
  if (len == 0) {
    ++stats_.parse_errors;
    return;
  }
  p->set_len(len);
  p->rx_time_ns = emit_time_ns;
  port_->send(std::move(p));
}

void DuModel::build_sections(std::int64_t slot) {
  const std::size_t prb_sz = fh_.comp.prb_bytes();
  payload_store_.clear();
  has_dl_sections_ = false;
  const bool ssb_slot = slot % cfg_.cell.ssb.period_slots == 0;

  // Payload filler: `hot` sections carry signal-level IQ, idle ones zeros.
  auto make_payload = [&](int start_prb, int n_prb, bool hot) {
    payload_store_.emplace_back(std::size_t(n_prb) * prb_sz, 0);
    auto& buf = payload_store_.back();
    if (hot) {
      for (int k = 0; k < n_prb; ++k) {
        const auto& proto = signal_prbs_[std::size_t(
            (start_prb + k + slot) % std::int64_t(signal_prbs_.size()))];
        std::copy(proto.begin(), proto.end(),
                  buf.begin() + std::ptrdiff_t(k) * std::ptrdiff_t(prb_sz));
      }
    }
    return std::span<const std::uint8_t>(buf);
  };

  // Pre-reserve so payload spans stay stable.
  payload_store_.reserve((dl_allocs_.size() + 1) * std::size_t(n_ports_) + 4);

  for (int port = 0; port < n_ports_; ++port) {
    auto& data = data_sections_[std::size_t(port)];
    auto& ssbv = ssb_sections_[std::size_t(port)];
    data.clear();
    ssbv.clear();
    std::uint16_t sid = 0;
    for (const auto& al : dl_allocs_) {
      // Cat-A precoding spreads every transmission across all antenna
      // ports regardless of its rank (the DU's precoder maps L layers
      // onto the full port set), so each port carries every allocation.
      USectionData s;
      s.section_id = sid++;
      s.start_prb = std::uint16_t(al.start_prb);
      s.num_prb = al.n_prb;
      s.payload = make_payload(al.start_prb, al.n_prb, true);
      data.push_back(s);
      has_dl_sections_ = true;
    }
    ssbv = data;
    if (ssb_slot) {
      // SSB window: real signal on the primary antenna, zeros on the
      // others (the grid position is still transported so a dMIMO
      // middlebox can graft the SSB into them).
      const auto& ssb = cfg_.cell.ssb;
      USectionData s;
      s.section_id = 0x7ff;
      s.start_prb = std::uint16_t(ssb.start_prb);
      s.num_prb = ssb.n_prb;
      s.payload = make_payload(ssb.start_prb, ssb.n_prb, port == 0);
      ssbv.push_back(s);
      has_dl_sections_ = true;
    }
  }
}

void DuModel::emit_cplane_dl(std::int64_t slot, const SlotPoint& at,
                             std::int64_t slot_start_ns) {
  const int n_sym = cfg_.vendor.tdd.dl_symbols(slot);
  if (n_sym <= 0 || !has_dl_sections_) return;
  // Symbol coverage: with data the whole DL region is scheduled; an
  // SSB-only slot schedules just the SSB symbol window. Downstream
  // middleboxes key their per-symbol mux decisions on this (Algorithm 2).
  const bool ssb_only = dl_allocs_.empty();
  const std::uint8_t first_sym =
      ssb_only ? std::uint8_t(cfg_.cell.ssb.first_symbol) : 0;
  const std::uint8_t cover_syms =
      ssb_only ? std::uint8_t(cfg_.cell.ssb.n_symbols) : std::uint8_t(n_sym);
  for (int port = 0; port < n_ports_; ++port) {
    EaxcId eaxc{0, 0, 0, std::uint8_t(port)};
    auto emit_one = [&](std::uint8_t start_sym, std::uint8_t num_sym) {
      CPlaneMsg msg;
      msg.direction = Direction::Downlink;
      msg.at = at;
      msg.at.symbol = start_sym;
      msg.section_type = SectionType::Type1;
      msg.comp = fh_.comp;
      CSection s;
      s.section_id = 0;
      s.start_prb = 0;
      s.num_prb = std::uint16_t(n_prb_ > 255 ? 0 : n_prb_);
      s.num_symbol = num_sym;
      msg.sections.push_back(s);
      PacketPtr p = pool_->alloc();
      if (!p) {
        ++stats_.pool_exhausted;
        return;
      }
      const std::size_t len = build_cplane_frame(
          p->raw(), eth_to_ru(), eaxc, next_seq(eaxc), msg, fh_);
      send_frame(len, std::move(p), slot_start_ns - kCplaneAdvanceNs);
      ++stats_.cplane_tx;
    };
    if (cfg_.vendor.cplane_per_symbol) {
      for (int s = 0; s < cover_syms; ++s)
        emit_one(std::uint8_t(first_sym + s), 1);
    } else {
      emit_one(first_sym, cover_syms);
    }
  }
}

void DuModel::emit_cplane_ul(std::int64_t slot, const SlotPoint& at,
                             std::int64_t slot_start_ns) {
  const int n_sym = cfg_.vendor.tdd.ul_symbols(slot);
  if (n_sym <= 0) return;
  for (int port = 0; port < n_ports_; ++port) {
    EaxcId eaxc{0, 0, 0, std::uint8_t(port)};
    CPlaneMsg msg;
    msg.direction = Direction::Uplink;
    msg.at = at;
    // UL symbols sit at the end of the slot (S-slot DL/guard/UL split).
    msg.at.symbol = std::uint8_t(kSymbolsPerSlot - n_sym);
    msg.section_type = SectionType::Type1;
    msg.comp = fh_.comp;
    CSection s;
    s.section_id = 0;
    s.start_prb = 0;
    s.num_prb = std::uint16_t(n_prb_ > 255 ? 0 : n_prb_);
    s.num_symbol = std::uint8_t(n_sym);
    msg.sections.push_back(s);
    PacketPtr p = pool_->alloc();
    if (!p) {
      ++stats_.pool_exhausted;
      return;
    }
    const std::size_t len = build_cplane_frame(p->raw(), eth_to_ru(), eaxc,
                                               next_seq(eaxc), msg, fh_);
    send_frame(len, std::move(p), slot_start_ns - kCplaneAdvanceNs);
    ++stats_.cplane_tx;
  }
}

void DuModel::emit_prach_cplane(std::int64_t slot, const SlotPoint& at,
                                std::int64_t slot_start_ns) {
  const auto& prach = cfg_.cell.prach;
  if (prach.period_slots <= 0 || slot % prach.period_slots != prach.slot_offset)
    return;
  EaxcId eaxc{1, 0, 0, 0};  // PRACH stream
  CPlaneMsg msg;
  msg.direction = Direction::Uplink;
  msg.filter_index = 1;  // PRACH filter
  msg.at = at;
  msg.section_type = SectionType::Type3;
  msg.comp = fh_.comp;
  msg.time_offset = 0;
  msg.frame_structure = 0xb1;  // FFT size + mu marker (opaque to us)
  msg.cp_length = 0;
  CSection s;
  s.section_id = cfg_.du_id;  // Algorithm 3: section id == DU id
  s.start_prb = 0;
  s.num_prb = std::uint16_t(prach.n_prb);
  s.num_symbol = 12;
  s.freq_offset = prach.freq_offset;
  msg.sections.push_back(s);
  PacketPtr p = pool_->alloc();
  if (!p) {
    ++stats_.pool_exhausted;
    return;
  }
  const std::size_t len = build_cplane_frame(p->raw(), eth_to_ru(), eaxc,
                                             next_seq(eaxc), msg, fh_);
  send_frame(len, std::move(p), slot_start_ns - kCplaneAdvanceNs);
  ++stats_.cplane_tx;
}

void DuModel::emit_uplane_dl(std::int64_t slot, const SlotPoint& at,
                             std::int64_t slot_start_ns) {
  const int n_sym = cfg_.vendor.tdd.dl_symbols(slot);
  if (n_sym <= 0) return;
  const bool ssb_slot = slot % cfg_.cell.ssb.period_slots == 0;
  const auto& ssb = cfg_.cell.ssb;
  // Symbol-major emission: the real-time pipeline releases all ports of a
  // symbol together, then moves to the next symbol. Symbols without any
  // scheduled section carry no frame at all.
  for (int sym = 0; sym < n_sym; ++sym) {
    const bool ssb_sym = ssb_slot && sym >= ssb.first_symbol &&
                         sym < ssb.first_symbol + ssb.n_symbols;
    for (int port = 0; port < n_ports_; ++port) {
      const auto& sections = ssb_sym ? ssb_sections_[std::size_t(port)]
                                     : data_sections_[std::size_t(port)];
      if (sections.empty()) continue;
      EaxcId eaxc{0, 0, 0, std::uint8_t(port)};
      UPlaneMsg hdr;
      hdr.direction = Direction::Downlink;
      hdr.at = at;
      hdr.at.symbol = std::uint8_t(sym);
      // Wide-mantissa payloads can exceed the jumbo MTU: fragment.
      const auto frames = split_sections_for_mtu(
          std::span(sections.data(), sections.size()), fh_);
      for (const auto& frame_secs : frames) {
        PacketPtr p = pool_->alloc();
        if (!p) {
          ++stats_.pool_exhausted;
          return;
        }
        const std::size_t len = build_uplane_frame(
            p->raw(), eth_to_ru(), eaxc, next_seq(eaxc), hdr,
            std::span(frame_secs.data(), frame_secs.size()), fh_);
        // U-plane frames are paced per symbol, exactly as the DU's
        // real-time pipeline releases them; deadline checks downstream
        // are relative to each frame's own symbol.
        send_frame(len, std::move(p),
                   slot_start_ns + sym * symbol_duration_ns(cfg_.cell.scs));
        ++stats_.uplane_tx;
      }
    }
  }
}

void DuModel::begin_slot(std::int64_t slot, std::int64_t slot_start_ns) {
  if (failed_) return;
  SlotPoint at;
  {
    const int spsf = slots_per_subframe(cfg_.cell.scs);
    at.slot = std::uint8_t(slot % spsf);
    const std::int64_t sf = slot / spsf;
    at.subframe = std::uint8_t(sf % 10);
    at.frame = std::uint8_t((sf / 10) % 256);
    at.symbol = 0;
  }

  // HARQ feedback from the previous slot's delivery results.
  const auto attached = air_->attached_ues(cell_id_);
  std::vector<std::pair<UeId, UeReport>> reports;
  reports.reserve(attached.size());
  for (UeId ue : attached) {
    const std::uint64_t errs = air_->dl_errors(ue);
    auto& last = last_dl_errors_[ue];
    sched_.on_harq_feedback(ue, errs - last, /*scheduled=*/true);
    last = errs;
    const std::uint64_t ul_errs = air_->ul_errors(ue);
    auto& ul_last = last_ul_errors_[ue];
    sched_.on_ul_feedback(ue, ul_errs - ul_last, /*scheduled=*/true);
    ul_last = ul_errs;
    reports.push_back({ue, air_->ue_report(ue)});
  }

  const int dl_sym = cfg_.vendor.tdd.dl_symbols(slot);
  const int ul_sym = cfg_.vendor.tdd.ul_symbols(slot);

  dl_allocs_.clear();
  ul_allocs_.clear();
  ul_resolved_.clear();
  if (dl_sym > 0) {
    dl_allocs_ = sched_.schedule_dl(reports, dl_sym - 1);
    air_->publish_dl_alloc(cell_id_, slot, dl_allocs_);
  }
  if (ul_sym > 0) {
    ul_allocs_ = sched_.schedule_ul(reports, ul_sym - 1);
    air_->publish_ul_alloc(cell_id_, slot, ul_allocs_);
    ul_alloc_slot_ = slot;
    if (cfg_.ul_match_slots > 1) {
      UlWindow w;
      w.slot = slot;
      w.at = at;
      w.allocs = ul_allocs_;
      ul_windows_.push_back(std::move(w));
      while (ul_windows_.size() > std::size_t(cfg_.ul_match_slots))
        ul_windows_.erase(ul_windows_.begin());
    }
  }
  int dl_prbs = 0, ul_prbs = 0;
  for (const auto& a : dl_allocs_) dl_prbs += a.n_prb;
  for (const auto& a : ul_allocs_) ul_prbs += a.n_prb;
  sched_.log_utilization(slot, dl_prbs, ul_prbs, dl_sym > 0, ul_sym > 0);

  if (dl_sym > 0) {
    build_sections(slot);
    emit_cplane_dl(slot, at, slot_start_ns);
    emit_uplane_dl(slot, at, slot_start_ns);
  }
  if (ul_sym > 0) {
    emit_cplane_ul(slot, at, slot_start_ns);
    emit_prach_cplane(slot, at, slot_start_ns);
  }
}

void DuModel::process_rx(std::int64_t slot, std::int64_t slot_start_ns) {
  if (failed_) {
    // Drain and discard: a dead DU's NIC queue does not back-pressure.
    std::vector<PacketPtr> junk;
    while (port_->rx_burst(junk, 64) > 0) junk.clear();
    return;
  }
  // UL PUSCH combining uses every antenna port; allocations are resolved
  // only once all ports' streams arrived on time (a late merged stream -
  // e.g. a DAS middlebox past its budget - fails the whole slot's uplink).
  std::uint32_t ports_seen = 0;
  std::vector<PacketPtr> port0_pkts;
  std::vector<UPlaneMsg> port0_msgs;

  std::vector<PacketPtr> pkts;
  while (port_->rx_burst(pkts, 64) > 0) {
    for (auto& p : pkts) {
      auto frame = parse_frame(p->data(), fh_);
      if (!frame) {
        ++stats_.parse_errors;
        continue;
      }
      const std::int64_t nominal =
          slot_start_ns + std::int64_t(frame->at().symbol) *
                              symbol_duration_ns(cfg_.cell.scs);
      if (p->rx_time_ns > nominal + cfg_.latency_budget_ns) {
        if (getenv("RB_DEBUG_LATE"))
          fprintf(stderr, "[late@du] slot=%lld sym=%d over_by=%lldns cplane=%d\n",
                  (long long)slot, frame->at().symbol,
                  (long long)(p->rx_time_ns - nominal - cfg_.latency_budget_ns),
                  int(frame->is_cplane()));
        ++stats_.late_drops;
        continue;
      }
      if (!frame->is_uplane()) continue;
      const auto& u = frame->uplane();
      if (u.direction != Direction::Uplink) continue;
      ++stats_.uplane_rx;
      const auto eaxc = frame->ecpri.eaxc;

      if (eaxc.du_port == 1) {
        // PRACH stream: detect energy in sections addressed to us.
        for (const auto& sec : u.sections) {
          if (sec.section_id != cfg_.du_id) continue;
          if (sec.payload_offset + sec.payload_len > p->len()) continue;
          std::array<IqSample, kScPerPrb> prb{};
          auto payload = p->bytes(sec.payload_offset);
          if (!bfp_decompress_prb(payload, sec.comp.iq_width,
                                  IqSpan(prb.data(), prb.size())))
            continue;
          const double r = rms(IqConstSpan(prb.data(), prb.size()));
          if (r >= AirModel::kPrachDetectFactor * AirModel::kNoiseRms) {
            ++stats_.prach_detections;
            air_->complete_prach(cell_id_, slot);
          }
        }
        continue;
      }

      // UL data: note the port's arrival; decode happens after the drain
      // once every expected antenna port is in.
      if (cfg_.ul_match_slots > 1) {
        // Windowed matching: attribute the frame to the UL slot it was
        // scheduled for by SlotPoint (cross-shard frames arrive later
        // than their allocation slot).
        for (auto& w : ul_windows_) {
          if (w.at.frame != u.at.frame || w.at.subframe != u.at.subframe ||
              w.at.slot != u.at.slot)
            continue;
          w.ports_seen |= 1u << eaxc.ru_port;
          w.fresh = true;
          if (eaxc.ru_port == 0) {
            w.port0_msgs.push_back(u);
            w.port0_pkts.push_back(std::move(p));
          }
          break;
        }
        continue;
      }
      if (ul_alloc_slot_ != slot) continue;
      ports_seen |= 1u << eaxc.ru_port;
      if (eaxc.ru_port == 0) {
        port0_msgs.push_back(u);
        port0_pkts.push_back(std::move(p));
      }
    }
    pkts.clear();
  }

  const std::uint32_t expected = (1u << n_ports_) - 1;
  if (cfg_.ul_match_slots > 1) {
    // Resolve only windows that received packets in THIS call and have a
    // complete port set — a still-incomplete or already-drained window
    // must not re-run the decode gate (ul_decode_fail would re-count).
    for (auto& w : ul_windows_) {
      if (!w.fresh) continue;
      w.fresh = false;
      if ((w.ports_seen & expected) != expected) continue;
      resolve_ul_allocs(w.slot, w.port0_pkts, w.port0_msgs, w.allocs,
                        w.resolved);
    }
    return;
  }
  if (ul_alloc_slot_ != slot || (ports_seen & expected) != expected) return;
  resolve_ul_allocs(slot, port0_pkts, port0_msgs, ul_allocs_, ul_resolved_);
}

void DuModel::drop_pending_rx() {
  ul_windows_.clear();
  std::vector<PacketPtr> junk;
  while (port_->rx_burst(junk, 64) > 0) junk.clear();
}

void DuModel::resolve_ul_allocs(std::int64_t slot,
                                const std::vector<PacketPtr>& port0_pkts,
                                const std::vector<UPlaneMsg>& port0_msgs,
                                const std::vector<UlAlloc>& allocs,
                                std::unordered_set<int>& resolved) {
  // Locate a PRB across the (possibly MTU-fragmented) section set and
  // measure its decompressed power.
  auto prb_power = [&](int prb, double* out) {
    for (std::size_t pi = 0; pi < port0_pkts.size(); ++pi) {
      for (const auto& sec : port0_msgs[pi].sections) {
        if (prb < sec.start_prb || prb >= sec.start_prb + sec.num_prb)
          continue;
        const std::size_t prb_sz = sec.comp.prb_bytes();
        const std::size_t off =
            sec.payload_offset + std::size_t(prb - sec.start_prb) * prb_sz;
        if (off + prb_sz > port0_pkts[pi]->len()) return false;
        std::array<IqSample, kScPerPrb> buf{};
        if (!bfp_decompress_prb(port0_pkts[pi]->bytes(off),
                                sec.comp.iq_width,
                                IqSpan(buf.data(), buf.size())))
          return false;
        *out = mean_power(IqConstSpan(buf.data(), buf.size()));
        return true;
      }
    }
    return false;
  };

  for (std::size_t ai = 0; ai < allocs.size(); ++ai) {
    if (resolved.count(int(ai))) continue;
    const auto& al = allocs[ai];
    // Sample up to three PRBs of the allocation for decode energy: this is
    // the integrity gate that catches middlebox IQ corruption.
    double acc = 0.0;
    int n = 0;
    for (int k = 0; k < std::min(3, al.n_prb); ++k) {
      const int prb = al.start_prb + k * std::max(1, al.n_prb / 3);
      double pw = 0.0;
      if (prb_power(prb, &pw)) {
        acc += pw;
        ++n;
      }
    }
    if (n == 0) continue;
    const double r = std::sqrt(acc / n);
    if (r < kUlDecodeFactor * AirModel::kNoiseRms) {
      ++stats_.ul_decode_fail;
      continue;
    }
    air_->resolve_ul_alloc(cell_id_, slot, al);
    resolved.insert(int(ai));
  }
}

namespace {

/// Write an unordered integer-keyed map sorted by key (deterministic
/// blobs regardless of hash iteration order).
template <typename Map, typename WriteKv>
void save_sorted_map(state::StateWriter& w, const Map& m, WriteKv&& kv) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(m.size());
  for (const auto& [k, _] : m) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  w.u32(std::uint32_t(keys.size()));
  for (const auto& k : keys) kv(k, m.at(k));
}

}  // namespace

void DuModel::save_state(state::StateWriter& w) const {
  sched_.save_state(w);
  w.u64(stats_.cplane_tx);
  w.u64(stats_.uplane_tx);
  w.u64(stats_.uplane_rx);
  w.u64(stats_.late_drops);
  w.u64(stats_.parse_errors);
  w.u64(stats_.ul_decode_fail);
  w.u64(stats_.prach_detections);
  w.u64(stats_.pool_exhausted);
  save_sorted_map(w, seq_, [&](std::uint16_t k, std::uint8_t v) {
    w.u16(k);
    w.u8(v);
  });
  save_sorted_map(w, last_dl_errors_, [&](UeId k, std::uint64_t v) {
    w.i32(k);
    w.u64(v);
  });
  save_sorted_map(w, last_ul_errors_, [&](UeId k, std::uint64_t v) {
    w.i32(k);
    w.u64(v);
  });
  w.b(failed_);
  // Windowed UL history is serialized only when the config enables it, so
  // single-slot DUs keep their historical blob layout byte-identical.
  if (cfg_.ul_match_slots > 1) {
    w.u32(std::uint32_t(ul_windows_.size()));
    for (const auto& win : ul_windows_) {
      w.i64(win.slot);
      w.u8(win.at.frame);
      w.u8(win.at.subframe);
      w.u8(win.at.slot);
      w.u8(win.at.symbol);
      w.u32(std::uint32_t(win.allocs.size()));
      for (const auto& al : win.allocs) {
        w.i32(al.ue);
        w.i32(al.start_prb);
        w.i32(al.n_prb);
        w.f64(al.assumed_sinr_db);
        w.i64(al.tbs_bits);
      }
      std::vector<int> res(win.resolved.begin(), win.resolved.end());
      std::sort(res.begin(), res.end());
      w.u32(std::uint32_t(res.size()));
      for (int i : res) w.i32(i);
      w.u32(win.ports_seen);
      w.u32(std::uint32_t(win.port0_pkts.size()));
      for (const auto& p : win.port0_pkts) save_packet(w, *p);
    }
  }
}

void DuModel::load_state(state::StateReader& r) {
  sched_.load_state(r);
  stats_.cplane_tx = r.u64();
  stats_.uplane_tx = r.u64();
  stats_.uplane_rx = r.u64();
  stats_.late_drops = r.u64();
  stats_.parse_errors = r.u64();
  stats_.ul_decode_fail = r.u64();
  stats_.prach_detections = r.u64();
  stats_.pool_exhausted = r.u64();
  seq_.clear();
  for (std::uint32_t i = 0, n = r.count(3); i < n && r.ok(); ++i) {
    std::uint16_t k = r.u16();
    seq_[k] = r.u8();
  }
  last_dl_errors_.clear();
  for (std::uint32_t i = 0, n = r.count(12); i < n && r.ok(); ++i) {
    UeId k = r.i32();
    last_dl_errors_[k] = r.u64();
  }
  last_ul_errors_.clear();
  for (std::uint32_t i = 0, n = r.count(12); i < n && r.ok(); ++i) {
    UeId k = r.i32();
    last_ul_errors_[k] = r.u64();
  }
  failed_ = r.b();
  ul_windows_.clear();
  if (cfg_.ul_match_slots > 1) {
    for (std::uint32_t i = 0, n = r.count(16); i < n && r.ok(); ++i) {
      UlWindow win;
      win.slot = r.i64();
      win.at.frame = r.u8();
      win.at.subframe = r.u8();
      win.at.slot = r.u8();
      win.at.symbol = r.u8();
      for (std::uint32_t a = 0, na = r.count(28); a < na && r.ok(); ++a) {
        UlAlloc al;
        al.ue = r.i32();
        al.start_prb = r.i32();
        al.n_prb = r.i32();
        al.assumed_sinr_db = r.f64();
        al.tbs_bits = r.i64();
        win.allocs.push_back(al);
      }
      for (std::uint32_t a = 0, na = r.count(4); a < na && r.ok(); ++a)
        win.resolved.insert(r.i32());
      win.ports_seen = r.u32();
      for (std::uint32_t a = 0, na = r.count(8); a < na && r.ok(); ++a) {
        PacketPtr p = load_packet(r, *pool_);
        if (!p) break;
        auto frame = parse_frame(p->data(), fh_);
        if (frame && frame->is_uplane()) {
          win.port0_msgs.push_back(frame->uplane());
          win.port0_pkts.push_back(std::move(p));
        }
      }
      if (r.ok()) ul_windows_.push_back(std::move(win));
    }
  }
}

}  // namespace rb
