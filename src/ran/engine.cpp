#include "ran/engine.h"

#include <algorithm>
#include <unordered_map>

#include "exec/shard.h"
#include "obs/obs.h"

namespace rb {

// ----------------------------------------------------------------------
// Serial path (historical behaviour; the default)
// ----------------------------------------------------------------------

void SlotEngine::run_one_slot_serial() {
  const std::int64_t slot = clock_.total_slots();
  const std::int64_t t0 = clock_.elapsed_ns();
  for (auto& h : pre_hooks_) h(slot, t0);
  if (!external_obs_) obs::slot_spans(slot, t0, slot_duration_ns(clock_.scs()));

  air_->begin_slot(slot);
  if (traffic_) traffic_(slot);
  for (auto& h : begin_hooks_) h(slot);
  for (auto* mb : mbs_) mb->begin_slot(slot);

  for (auto* du : dus_) du->begin_slot(slot, t0);

  auto pump_all = [&] {
    for (int pass = 0; pass < 8; ++pass) {
      bool moved = false;
      for (auto* mb : mbs_) moved = mb->pump(slot, t0) || moved;
      if (!moved) break;
    }
  };
  pump_all();

  for (auto* ru : rus_) ru->process_dl(slot, t0);
  air_->resolve_dl(slot);
  for (auto* ru : rus_) ru->emit_ul(slot, t0);
  pump_all();
  for (auto* du : dus_) du->process_rx(slot, t0);

  if (!external_obs_ && obs::enabled())
    obs::Collector::instance().commit_slot(slot, t0,
                                           slot_duration_ns(clock_.scs()));
  for (auto& h : end_hooks_) h(slot);

  clock_.advance_slot();
  // advance_slot() is a no-op at symbol 0 of a fresh slot boundary; make
  // sure we always move exactly one slot forward.
  if (clock_.total_slots() == slot) {
    for (int i = 0; i < kSymbolsPerSlot; ++i) clock_.advance_symbol();
  }
}

// ----------------------------------------------------------------------
// Parallel path
// ----------------------------------------------------------------------

void SlotEngine::set_exec_policy(const exec::ExecPolicy& p) {
  policy_ = p;
  islands_dirty_ = true;
  if (!policy_.is_parallel()) {
    pool_.reset();
    air_->set_defer_prach(false);
    for (auto* mb : mbs_) mb->set_defer_tx(false);
  }
}

void SlotEngine::bind_affinity(DuModel& du, std::uint64_t key) {
  affinity_.emplace_back(static_cast<const void*>(&du), key);
  islands_dirty_ = true;
}

void SlotEngine::bind_affinity(RuModel& ru, std::uint64_t key) {
  affinity_.emplace_back(static_cast<const void*>(&ru), key);
  islands_dirty_ = true;
}

void SlotEngine::bind_affinity(Pumpable& mb, std::uint64_t key) {
  affinity_.emplace_back(static_cast<const void*>(&mb), key);
  islands_dirty_ = true;
}

exec::WorkerStats SlotEngine::exec_stats() const {
  return pool_ ? pool_->merged_stats() : exec::WorkerStats{};
}

void SlotEngine::ensure_pool() {
  const int n = std::max(1, policy_.n_workers);
  if (!pool_ || pool_->size() != n)
    pool_ = std::make_unique<exec::WorkerPool>(n);
}

void SlotEngine::plan_islands() {
  islands_.clear();

  // Dense-index the distinct keys, then union-find: an entity bound with
  // several keys fuses them into one island (e.g. a DAS runtime bound
  // with each member RU's flow key).
  std::unordered_map<std::uint64_t, std::size_t> key_idx;
  std::unordered_map<const void*, std::vector<std::size_t>> entity_keys;
  for (const auto& [ptr, key] : affinity_) {
    auto [it, fresh] = key_idx.emplace(key, key_idx.size());
    (void)fresh;
    entity_keys[ptr].push_back(it->second);
  }
  std::vector<std::size_t> parent(key_idx.size());
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  auto find = [&](std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (const auto& [ptr, keys] : entity_keys) {
    (void)ptr;
    for (std::size_t i = 1; i < keys.size(); ++i)
      parent[find(keys[i])] = find(keys[0]);
  }

  // Island slot per union-find root, created in engine insertion order
  // (mbs, dus, rus) so the layout is reproducible and independent of the
  // worker count. Root kNone collects unbound entities.
  constexpr std::size_t kNone = std::size_t(-1);
  auto root_of = [&](const void* ptr) {
    auto it = entity_keys.find(ptr);
    return it == entity_keys.end() ? kNone : find(it->second.front());
  };
  std::unordered_map<std::size_t, std::size_t> island_of;
  auto island_for = [&](std::size_t root) -> Island& {
    auto [it, fresh] = island_of.emplace(root, islands_.size());
    if (fresh) islands_.emplace_back();
    return islands_[it->second];
  };

  ran_sharded_ = true;
  for (auto* mb : mbs_) {
    const std::size_t root = root_of(static_cast<const void*>(mb));
    Island& isl = island_for(root);
    if (root == kNone || !mb->supports_deferred_tx())
      isl.serial_mbs.push_back(mb);
    else
      isl.mbs.push_back(mb);
  }
  for (auto* du : dus_) {
    const std::size_t root = root_of(static_cast<const void*>(du));
    if (root == kNone) ran_sharded_ = false;
    island_for(root).dus.push_back(du);
  }
  for (auto* ru : rus_) {
    const std::size_t root = root_of(static_cast<const void*>(ru));
    if (root == kNone) ran_sharded_ = false;
    island_for(root).rus.push_back(ru);
  }

  // Static island -> worker map. Workers pump with TX deferred; the
  // unbound island (and any runtime that cannot defer) stays on the
  // coordinator with inline delivery.
  const int n = std::max(1, policy_.n_workers);
  int next = 0;
  auto unkeyed = island_of.find(kNone);
  for (std::size_t i = 0; i < islands_.size(); ++i) {
    const bool serial_island = unkeyed != island_of.end() && unkeyed->second == i;
    islands_[i].worker = serial_island ? -1 : next++ % n;
  }
  for (auto& isl : islands_)
    for (auto* mb : isl.mbs) mb->set_defer_tx(isl.worker >= 0);

  air_->set_defer_prach(true);
  islands_dirty_ = false;
}

void SlotEngine::phase_trampoline(void* arg, int worker) {
  (void)worker;
  auto* t = static_cast<PhaseTask*>(arg);
  t->eng->run_phase_task(*t);
}

void SlotEngine::run_phase_task(PhaseTask& t) {
  Island& isl = *t.isl;
  switch (t.ph) {
    case Phase::DuBegin:
      for (auto* du : isl.dus) du->begin_slot(t.slot, t.t0);
      break;
    case Phase::RuDl:
      for (auto* ru : isl.rus) ru->process_dl(t.slot, t.t0);
      break;
    case Phase::RuUl:
      for (auto* ru : isl.rus) ru->emit_ul(t.slot, t.t0);
      break;
    case Phase::DuRx:
      for (auto* du : isl.dus) du->process_rx(t.slot, t.t0);
      break;
    case Phase::MbPump: {
      bool moved = false;
      for (auto* mb : isl.mbs) moved = mb->pump(t.slot, t.t0) || moved;
      t.moved = moved;
      break;
    }
  }
}

bool SlotEngine::run_sharded_phase(Phase ph, std::int64_t slot,
                                   std::int64_t t0) {
  tasks_.clear();
  jobs_.clear();
  for (auto& isl : islands_) {
    if (isl.worker < 0) continue;
    const bool relevant = ph == Phase::MbPump ? !isl.mbs.empty()
                          : (ph == Phase::DuBegin || ph == Phase::DuRx)
                              ? !isl.dus.empty()
                              : !isl.rus.empty();
    if (!relevant) continue;
    tasks_.push_back(PhaseTask{this, &isl, ph, slot, t0, false});
  }
  for (auto& t : tasks_)
    jobs_.push_back(exec::WorkerPool::Job{&phase_trampoline, &t, t.isl->worker});
  if (!jobs_.empty()) pool_->run(jobs_);
  bool moved = false;
  for (const auto& t : tasks_) moved = moved || t.moved;
  return moved;
}

void SlotEngine::run_one_slot_parallel() {
  if (islands_dirty_) plan_islands();
  ensure_pool();

  const std::int64_t slot = clock_.total_slots();
  const std::int64_t t0 = clock_.elapsed_ns();
  for (auto& h : pre_hooks_) h(slot, t0);
  if (!external_obs_) obs::slot_spans(slot, t0, slot_duration_ns(clock_.scs()));

  // Single-threaded prologue: radio oracle, offered load, slot hooks.
  air_->begin_slot(slot);
  if (traffic_) traffic_(slot);
  for (auto& h : begin_hooks_) h(slot);
  for (auto* mb : mbs_) mb->begin_slot(slot);
  for (auto* mb : mbs_) mb->flush_deferred_tx();

  const bool shard_ran = ran_sharded_ && policy_.shard_ran_phases;

  // Bulk-synchronous pump: workers pump their islands with TX deferred,
  // then the coordinator (alone) flushes every deferred queue in engine
  // insertion order and pumps the serial islands inline. The fixed flush
  // order is what makes the packet-level outcome independent of worker
  // count and scheduling.
  auto pump_all = [&] {
    for (int pass = 0; pass < 8; ++pass) {
      bool moved = run_sharded_phase(Phase::MbPump, slot, t0);
      for (auto& isl : islands_)
        for (auto* mb : isl.serial_mbs) moved = mb->pump(slot, t0) || moved;
      bool flushed = false;
      for (auto* mb : mbs_) flushed = mb->flush_deferred_tx() || flushed;
      if (!moved && !flushed) break;
    }
  };

  if (shard_ran)
    run_sharded_phase(Phase::DuBegin, slot, t0);
  else
    for (auto* du : dus_) du->begin_slot(slot, t0);
  pump_all();

  if (shard_ran)
    run_sharded_phase(Phase::RuDl, slot, t0);
  else
    for (auto* ru : rus_) ru->process_dl(slot, t0);
  air_->resolve_dl(slot);
  if (shard_ran)
    run_sharded_phase(Phase::RuUl, slot, t0);
  else
    for (auto* ru : rus_) ru->emit_ul(slot, t0);
  pump_all();
  if (shard_ran)
    run_sharded_phase(Phase::DuRx, slot, t0);
  else
    for (auto* du : dus_) du->process_rx(slot, t0);
  // PRACH detections recorded per cell during DuRx apply here, in cell
  // order, matching what serial execution would have committed this slot.
  air_->flush_prach_completions();

  // Slot barrier: workers are parked (pool_->run returned), so draining
  // their trace rings here is race-free.
  if (!external_obs_ && obs::enabled())
    obs::Collector::instance().commit_slot(slot, t0,
                                           slot_duration_ns(clock_.scs()));
  for (auto& h : end_hooks_) h(slot);

  clock_.advance_slot();
  if (clock_.total_slots() == slot) {
    for (int i = 0; i < kSymbolsPerSlot; ++i) clock_.advance_symbol();
  }
}

// ----------------------------------------------------------------------
// Shared driver
// ----------------------------------------------------------------------

void SlotEngine::run_one_slot() {
  if (policy_.is_parallel())
    run_one_slot_parallel();
  else
    run_one_slot_serial();
}

void SlotEngine::run_slots(int n) {
  for (int i = 0; i < n; ++i) run_one_slot();
}

void SlotEngine::run_ms(double ms) {
  const std::int64_t target =
      clock_.elapsed_ns() + std::int64_t(ms * 1'000'000.0);
  while (clock_.elapsed_ns() < target) run_one_slot();
}

bool SlotEngine::run_until_attached(int max_slots) {
  for (int i = 0; i < max_slots; ++i) {
    bool all = true;
    for (UeId ue = 0; ue < UeId(air_->num_ues()); ++ue)
      all = all && air_->is_attached(ue);
    if (all) return true;
    run_one_slot();
  }
  bool all = true;
  for (UeId ue = 0; ue < UeId(air_->num_ues()); ++ue)
    all = all && air_->is_attached(ue);
  return all;
}

}  // namespace rb
