#include "ran/engine.h"

namespace rb {

void SlotEngine::run_one_slot() {
  const std::int64_t slot = clock_.total_slots();
  const std::int64_t t0 = clock_.elapsed_ns();

  air_->begin_slot(slot);
  if (traffic_) traffic_(slot);
  for (auto* mb : mbs_) mb->begin_slot(slot);

  for (auto* du : dus_) du->begin_slot(slot, t0);

  auto pump_all = [&] {
    for (int pass = 0; pass < 8; ++pass) {
      bool moved = false;
      for (auto* mb : mbs_) moved = mb->pump(slot, t0) || moved;
      if (!moved) break;
    }
  };
  pump_all();

  for (auto* ru : rus_) ru->process_dl(slot, t0);
  air_->resolve_dl(slot);
  for (auto* ru : rus_) ru->emit_ul(slot, t0);
  pump_all();
  for (auto* du : dus_) du->process_rx(slot, t0);

  clock_.advance_slot();
  // advance_slot() is a no-op at symbol 0 of a fresh slot boundary; make
  // sure we always move exactly one slot forward.
  if (clock_.total_slots() == slot) {
    for (int i = 0; i < kSymbolsPerSlot; ++i) clock_.advance_symbol();
  }
}

void SlotEngine::run_slots(int n) {
  for (int i = 0; i < n; ++i) run_one_slot();
}

void SlotEngine::run_ms(double ms) {
  const std::int64_t target =
      clock_.elapsed_ns() + std::int64_t(ms * 1'000'000.0);
  while (clock_.elapsed_ns() < target) run_one_slot();
}

bool SlotEngine::run_until_attached(int max_slots) {
  for (int i = 0; i < max_slots; ++i) {
    bool all = true;
    for (UeId ue = 0; ue < UeId(air_->num_ues()); ++ue)
      all = all && air_->is_attached(ue);
    if (all) return true;
    run_one_slot();
  }
  bool all = true;
  for (UeId ue = 0; ue < UeId(air_->num_ues()); ++ue)
    all = all && air_->is_attached(ue);
  return all;
}

}  // namespace rb
