#include "ran/scheduler.h"

#include <algorithm>
#include <cmath>

namespace rb {

std::int64_t MacScheduler::dl_backlog(UeId ue) const {
  auto it = ue_state_.find(ue);
  return it == ue_state_.end() ? 0 : it->second.dl_backlog;
}

std::int64_t MacScheduler::ul_backlog(UeId ue) const {
  auto it = ue_state_.find(ue);
  return it == ue_state_.end() ? 0 : it->second.ul_backlog;
}

double MacScheduler::olla_db(UeId ue) const {
  auto it = ue_state_.find(ue);
  return it == ue_state_.end() ? 0.0 : it->second.olla_db;
}

std::vector<DlAlloc> MacScheduler::schedule_dl(
    const std::vector<std::pair<UeId, UeReport>>& reports, int data_symbols) {
  std::vector<DlAlloc> out;
  if (data_symbols <= 0) return out;

  // Candidates: attached UEs with DL backlog.
  std::vector<std::pair<UeId, UeReport>> active;
  for (const auto& [ue, rep] : reports) {
    if (!rep.attached) continue;
    if (dl_backlog(ue) <= 0) continue;
    active.push_back({ue, rep});
  }
  if (active.empty()) return out;

  // Water-filling fair share: UEs needing less than an equal split free
  // their remainder for the others (process in ascending need).
  struct Cand {
    UeId ue;
    UeReport rep;
    double sinr;
    double bits_per_prb;
    int needed;
  };
  std::vector<Cand> cands;
  for (const auto& [ue, rep] : active) {
    UeSched& st = ue_state_[ue];
    const double sinr = rep.per_layer_sinr_db + st.olla_db;
    const double se = spectral_efficiency(sinr, rep.rank) * params_.efficiency;
    if (se <= 0.0) continue;
    const double bpp = se * rep.rank * kScPerPrb * data_symbols;
    const int needed = std::max(
        1, int(std::ceil(double(st.dl_backlog) / bpp)));
    cands.push_back({ue, rep, sinr, bpp, needed});
  }
  std::sort(cands.begin(), cands.end(),
            [](const Cand& a, const Cand& b) { return a.needed < b.needed; });
  int next_prb = 0;
  for (std::size_t i = 0; i < cands.size(); ++i) {
    const auto& [ue, rep, sinr, bits_per_prb, needed] = cands[i];
    UeSched& st = ue_state_[ue];
    const int remaining_ues = int(cands.size() - i);
    const int share = (n_prb_ - next_prb) / remaining_ues;
    int prbs = std::min(needed, std::max(share, 1));
    if (next_prb + prbs > n_prb_) prbs = n_prb_ - next_prb;
    if (prbs <= 0) break;

    DlAlloc al;
    al.ue = ue;
    al.start_prb = next_prb;
    al.n_prb = prbs;
    al.layers = rep.rank;
    al.assumed_sinr_db = sinr;
    al.tbs_bits = std::int64_t(bits_per_prb * prbs);
    out.push_back(al);
    next_prb += prbs;
    st.dl_backlog = std::max<std::int64_t>(0, st.dl_backlog - al.tbs_bits);
    st.rr_slots = 0;
  }
  for (auto& [ue, st] : ue_state_) st.rr_slots++;
  return out;
}

std::vector<UlAlloc> MacScheduler::schedule_ul(
    const std::vector<std::pair<UeId, UeReport>>& reports, int data_symbols) {
  std::vector<UlAlloc> out;
  if (data_symbols <= 0) return out;
  std::vector<UeId> active;
  std::unordered_map<UeId, double> sinr_hint;
  for (const auto& [ue, rep] : reports) {
    if (!rep.attached || ul_backlog(ue) <= 0) continue;
    active.push_back(ue);
    // UL link quality tracked through its own outer loop on top of a
    // static estimate: the DU only learns UL SINR from decode results.
    sinr_hint[ue] = 12.0 + ue_state_[ue].ul_olla_db;
  }
  if (active.empty()) return out;
  // Same water-filling as the downlink.
  std::sort(active.begin(), active.end(), [this](UeId a, UeId b) {
    return ue_state_[a].ul_backlog < ue_state_[b].ul_backlog;
  });
  int next_prb = 0;
  for (std::size_t i = 0; i < active.size(); ++i) {
    const UeId ue = active[i];
    UeSched& st = ue_state_[ue];
    const int share = (n_prb_ - next_prb) / int(active.size() - i);
    const double se =
        spectral_efficiency(sinr_hint[ue], /*layers=*/1) * params_.efficiency;
    if (se <= 0.0) continue;
    const double bits_per_prb = se * kScPerPrb * data_symbols;
    const int needed = int(std::ceil(double(st.ul_backlog) / bits_per_prb));
    int prbs = std::min(std::max(share, 1), std::max(needed, 1));
    if (next_prb + prbs > n_prb_) prbs = n_prb_ - next_prb;
    if (prbs <= 0) break;
    UlAlloc al;
    al.ue = ue;
    al.start_prb = next_prb;
    al.n_prb = prbs;
    al.assumed_sinr_db = sinr_hint[ue];
    al.tbs_bits = std::int64_t(bits_per_prb * prbs);
    out.push_back(al);
    next_prb += prbs;
    st.ul_backlog = std::max<std::int64_t>(0, st.ul_backlog - al.tbs_bits);
  }
  return out;
}

void MacScheduler::on_harq_feedback(UeId ue, std::uint64_t new_errors,
                                    bool scheduled) {
  UeSched& st = ue_state_[ue];
  if (new_errors > 0) {
    st.olla_db -= params_.olla_step_down_db * double(new_errors);
  } else if (scheduled) {
    st.olla_db += params_.olla_step_up_db;
  }
  st.olla_db = std::clamp(st.olla_db, params_.olla_min_db, params_.olla_max_db);
}

void MacScheduler::on_ul_feedback(UeId ue, std::uint64_t new_errors,
                                  bool scheduled) {
  UeSched& st = ue_state_[ue];
  if (new_errors > 0) {
    st.ul_olla_db -= params_.olla_step_down_db * double(new_errors);
  } else if (scheduled) {
    st.ul_olla_db += params_.olla_step_up_db;
  }
  st.ul_olla_db =
      std::clamp(st.ul_olla_db, params_.olla_min_db, params_.olla_max_db);
}

double MacScheduler::ul_olla_db(UeId ue) const {
  auto it = ue_state_.find(ue);
  return it == ue_state_.end() ? 0.0 : it->second.ul_olla_db;
}

void MacScheduler::log_utilization(std::int64_t slot, int dl_prbs,
                                   int ul_prbs, bool dl_slot, bool ul_slot) {
  log_.push_back({slot, dl_prbs, ul_prbs, n_prb_, dl_slot, ul_slot});
  while (log_.size() > kMaxLog) log_.pop_front();
}

void MacScheduler::save_state(state::StateWriter& w) const {
  std::vector<UeId> ids;
  ids.reserve(ue_state_.size());
  for (const auto& [ue, _] : ue_state_) ids.push_back(ue);
  std::sort(ids.begin(), ids.end());
  w.u32(std::uint32_t(ids.size()));
  for (UeId ue : ids) {
    const UeSched& st = ue_state_.at(ue);
    w.i32(ue);
    w.i64(st.dl_backlog);
    w.i64(st.ul_backlog);
    w.f64(st.olla_db);
    w.f64(st.ul_olla_db);
    w.i32(st.rr_slots);
  }
  w.u32(std::uint32_t(log_.size()));
  for (const PrbUtilSample& s : log_) {
    w.i64(s.slot);
    w.i32(s.dl_prbs);
    w.i32(s.ul_prbs);
    w.i32(s.total_prbs);
    w.b(s.dl_slot);
    w.b(s.ul_slot);
  }
}

void MacScheduler::load_state(state::StateReader& r) {
  ue_state_.clear();
  std::uint32_t n = r.count(40);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    UeId ue = r.i32();
    UeSched& st = ue_state_[ue];
    st.dl_backlog = r.i64();
    st.ul_backlog = r.i64();
    st.olla_db = r.f64();
    st.ul_olla_db = r.f64();
    st.rr_slots = r.i32();
  }
  log_.clear();
  std::uint32_t m = r.count(22);
  for (std::uint32_t i = 0; i < m && r.ok(); ++i) {
    PrbUtilSample s;
    s.slot = r.i64();
    s.dl_prbs = r.i32();
    s.ul_prbs = r.i32();
    s.total_prbs = r.i32();
    s.dl_slot = r.b();
    s.ul_slot = r.b();
    log_.push_back(s);
  }
}

}  // namespace rb
