// AirModel: the radio-physics oracle of the simulation.
//
// Division of labour (see DESIGN.md section 2):
//  * DU/RU/middleboxes exchange *real* O-RAN fronthaul packets; structure,
//    timing and IQ payload integrity are validated at the endpoints.
//  * The AirModel owns everything over-the-air: path loss, interference,
//    MIMO rank, SSB-based attachment, PRACH, and delivered bits.
//
// Traffic only flows when both agree: the DU publishes its allocations
// here, but DL bits are credited only for PRBs/layers the RUs *actually
// radiated* (i.e. the energy in the U-plane packets that survived the
// middlebox path), and attachment only succeeds when SSB/PRACH packets
// physically reached the right radios. A middlebox bug therefore shows up
// as lost coverage or throughput, exactly as it would on the testbed.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "ran/cell_config.h"
#include "ran/channel.h"
#include "ran/phy_rate.h"
#include "state/serialize.h"

namespace rb {

using CellId = int;
using RuId = int;
using UeId = int;

/// Radio-site description of an RU.
struct RuSite {
  Position pos{};
  int n_antennas = 4;
  Hertz center_freq = GHz(3) + MHz(460);
  Hertz bandwidth = MHz(100);
};

struct UeConfig {
  Position pos{};
  int max_layers = 4;
  int pci_lock = -1;  // attach only to this PCI when >= 0
};

/// Mapping of one cell layer onto one local RU antenna port.
struct LayerMap {
  int cell_layer = 0;
  int ru_port = 0;
};

/// One DL allocation the DU scheduler decided for a slot.
struct DlAlloc {
  UeId ue = -1;
  int start_prb = 0;  // cell grid
  int n_prb = 0;
  int layers = 1;
  double assumed_sinr_db = 0.0;  // per-layer SINR the MCS was picked for
  std::int64_t tbs_bits = 0;
};

/// One UL allocation (uplink is SISO, as in the paper's experiments).
struct UlAlloc {
  UeId ue = -1;
  int start_prb = 0;
  int n_prb = 0;
  double assumed_sinr_db = 0.0;
  std::int64_t tbs_bits = 0;
};

/// PRB interval in some grid.
struct PrbInterval {
  int start = 0;
  int count = 0;
  int end() const { return start + count; }
};

/// What one RU physically radiated in one slot, extracted by the RU model
/// from the U-plane packets that reached it (BFP exponent >= threshold).
struct RadiationReport {
  struct PortReport {
    int port = 0;
    std::vector<PrbInterval> data;     // energized PRBs over data symbols
    std::vector<PrbInterval> ssb_sym;  // energized PRBs during SSB symbols
  };
  std::vector<PortReport> ports;
};

/// Link-quality feedback the DU polls per UE (CQI/RI equivalent).
struct UeReport {
  bool attached = false;
  CellId serving = -1;
  int rank = 1;
  double per_layer_sinr_db = -99.0;  // at the reported rank
};

/// A PRACH transmission visible at an RU during a PRACH occasion.
struct PrachRx {
  UeId ue = -1;
  CellId target_cell = -1;
  Hertz f0 = 0;        // absolute frequency of the UE's PRACH window
  int n_prb = 0;
  double amp_rms = 0;  // int16-scale amplitude at this RU
};

class AirModel {
 public:
  AirModel(ChannelModel channel, Scs scs = Scs::kHz30)
      : channel_(channel), scs_(scs) {}

  /// Cells announcing the same PCI are one identity to a UE (the warm
  /// standby pairing of section 8.1).
  bool same_cell_identity(CellId a, CellId b) const;

  // --- topology -----------------------------------------------------
  CellId add_cell(const CellConfig& cfg);
  RuId add_ru(const RuSite& site);
  UeId add_ue(const UeConfig& cfg);

  /// Declare that `ru` radiates (part of) `cell`'s signal. `prb_offset` is
  /// where the cell's PRB 0 sits in the RU grid (RU sharing); `layers`
  /// maps cell layers to local RU ports (empty = identity map over
  /// min(cell layers, RU antennas) ports).
  void assign_ru(CellId cell, RuId ru, int prb_offset = 0,
                 std::vector<LayerMap> layers = {});
  /// Remove all RU assignments of a cell (the "flexible upgrade" flow).
  void clear_assignments(CellId cell);

  const CellConfig& cell(CellId id) const { return cells_[std::size_t(id)].cfg; }
  const RuSite& ru(RuId id) const { return rus_[std::size_t(id)].site; }
  std::size_t num_ues() const { return ues_.size(); }

  void set_ue_position(UeId ue, const Position& p);
  const Position& ue_position(UeId ue) const {
    return ues_[std::size_t(ue)].cfg.pos;
  }

  // --- DU-facing ----------------------------------------------------
  void publish_dl_alloc(CellId cell, std::int64_t slot,
                        std::vector<DlAlloc> allocs);
  void publish_ul_alloc(CellId cell, std::int64_t slot,
                        std::vector<UlAlloc> allocs);
  UeReport ue_report(UeId ue) const;
  std::vector<UeId> attached_ues(CellId cell) const;

  /// DU detected PRACH energy for `cell`: complete attachment of every UE
  /// that rached this occasion towards the cell.
  void complete_prach(CellId cell, std::int64_t slot);

  /// Deferred-PRACH mode (parallel execution engine): complete_prach only
  /// records the detection against its own cell (a disjoint per-cell
  /// write, safe from sharded DU workers); the engine applies pending
  /// completions in cell order at the slot barrier. Attachment becomes
  /// observable no later than it would serially (nothing reads it again
  /// until the next slot).
  void set_defer_prach(bool on);
  void flush_prach_completions();

  /// Credit UL bits after the DU validated the combined U-plane payload.
  /// Returns the bits actually delivered (0 if the link failed).
  std::int64_t resolve_ul_alloc(CellId cell, std::int64_t slot,
                                const UlAlloc& alloc);

  // --- RU-facing ----------------------------------------------------
  void report_radiation(RuId ru, std::int64_t slot, RadiationReport report);

  /// RMS amplitude (int16 scale) the RU front-end observes on one PRB of
  /// its own grid in an UL slot: sum of UE transmissions plus noise.
  double ul_rx_amplitude(RuId ru, std::int64_t slot, int ru_grid_prb);

  /// PRACH transmissions in flight at this occasion, as seen by `ru`.
  std::vector<PrachRx> prach_rx(RuId ru, std::int64_t slot) const;

  /// True when `slot` is a PRACH occasion for at least one cell.
  bool is_prach_occasion(std::int64_t slot) const;

  // --- engine-facing ------------------------------------------------
  void begin_slot(std::int64_t slot);
  /// Attachment management + DL delivery for the slot. Call after all RUs
  /// reported radiation.
  void resolve_dl(std::int64_t slot);

  // --- results ------------------------------------------------------
  std::uint64_t dl_bits(UeId ue) const { return ues_[std::size_t(ue)].dl_bits; }
  std::uint64_t ul_bits(UeId ue) const { return ues_[std::size_t(ue)].ul_bits; }
  std::uint64_t dl_errors(UeId ue) const {
    return ues_[std::size_t(ue)].dl_errors;
  }
  /// Allocations that found no radiated signal at all (broken datapath or
  /// passive standby) - kept apart from MCS failures.
  std::uint64_t dl_unradiated(UeId ue) const {
    return ues_[std::size_t(ue)].dl_unradiated;
  }
  std::uint64_t ul_errors(UeId ue) const {
    return ues_[std::size_t(ue)].ul_errors;
  }
  void reset_counters();

  /// Checkpoint all mutable radio state: per-UE attach machine and bit
  /// counters, per-cell published allocations, per-RU radiation/UL-amp
  /// caches and pending PRACH completions. Topology (cells/RUs/UEs and
  /// assignments) is config, rebuilt by the deployment builder.
  void save_state(state::StateWriter& w) const;
  void load_state(state::StateReader& r);

  bool is_attached(UeId ue) const {
    return ues_[std::size_t(ue)].serving >= 0;
  }
  CellId serving_cell(UeId ue) const { return ues_[std::size_t(ue)].serving; }
  int last_rank(UeId ue) const { return ues_[std::size_t(ue)].last_rank; }

  // --- conductor bridge (city mode) ---------------------------------
  // A neutral-host cell is simulated in two shards at once: the guest DU
  // publishes into its home air model while the shared RU radiates in the
  // host shard's air model. The city conductor reconciles the two views
  // at the slot barrier (workers parked) through these accessors/setters;
  // nothing else should call them. See DESIGN.md section 4j.
  const std::vector<DlAlloc>& dl_allocs(CellId cell) const {
    return cells_[std::size_t(cell)].dl_allocs;
  }
  const std::vector<UlAlloc>& ul_allocs(CellId cell) const {
    return cells_[std::size_t(cell)].ul_allocs;
  }
  std::int64_t alloc_slot(CellId cell) const {
    return cells_[std::size_t(cell)].alloc_slot;
  }
  /// Force a UE's attach machine: attached -> Attached/serving (resets
  /// the RLF miss counter), detached -> Idle. Absolute overwrite.
  void sync_ue_attach(UeId ue, bool attached, CellId serving);
  /// Overwrite the DL-side result counters of a mirror UE with the
  /// authoritative values from the shard that radiates its signal.
  void sync_ue_dl(UeId ue, std::uint64_t bits, std::uint64_t errors,
                  std::uint64_t unradiated);
  /// Overwrite the UL-side result counters (authoritative in the guest
  /// DU's home shard, mirrored into the host shard).
  void sync_ue_ul(UeId ue, std::uint64_t bits, std::uint64_t errors);

  /// Noise floor amplitude (int16 scale) on the uplink.
  static constexpr double kNoiseRms = 400.0;
  /// DL transmit amplitude per antenna (int16 scale).
  static constexpr double kDlTxRms = 8000.0;
  /// PRACH correlation/processing gain (dB).
  static constexpr double kPrachGainDb = 18.0;
  /// Amplitude factor over noise required for PRACH detection.
  static constexpr double kPrachDetectFactor = 1.5;
  /// SSB SNR (dB) required to attach / stay attached.
  static constexpr double kAttachThresholdDb = 0.0;
  /// Missed SSB occasions before a UE declares radio-link failure.
  static constexpr int kRlfSsbMisses = 3;

 private:
  struct Assignment {
    RuId ru = -1;
    int prb_offset = 0;
    std::vector<LayerMap> layers;
  };
  struct Cell {
    CellConfig cfg;
    std::vector<Assignment> assigned;
    std::vector<DlAlloc> dl_allocs;  // current slot
    std::vector<UlAlloc> ul_allocs;
    std::int64_t alloc_slot = -1;
  };
  struct Ru {
    RuSite site;
    RadiationReport radiation;  // current slot
    std::int64_t radiation_slot = -1;
    std::vector<double> ul_amp_cache;  // per ru-grid PRB, current slot
    std::int64_t ul_amp_slot = -1;
  };
  enum class UeAttachState : std::uint8_t { Idle, WaitPrach, Attached };
  struct Ue {
    UeConfig cfg;
    UeAttachState state = UeAttachState::Idle;
    CellId serving = -1;
    CellId prach_target = -1;
    int ssb_misses = 0;
    int last_rank = 1;
    double last_sinr_db = -99.0;
    std::uint64_t dl_bits = 0;
    std::uint64_t ul_bits = 0;
    std::uint64_t dl_errors = 0;
    std::uint64_t ul_errors = 0;
    std::uint64_t dl_unradiated = 0;
  };

  /// Total-power DL "SNR-equivalent" (dB) of `cell` at `ue` summing every
  /// radiating mapped antenna; nullopt if nothing radiates.
  std::optional<double> cell_signal_db(const Cell& c, UeId ue,
                                       bool require_radiation,
                                       int* radiating_layers) const;
  /// Interference (linear, noise-normalized) at `ue` on an absolute
  /// frequency range, from other cells' DL allocations this slot.
  double dl_interference_lin(CellId serving, UeId ue, Hertz f_lo,
                             Hertz f_hi) const;
  bool ssb_radiated(const Cell& c, const Assignment& a) const;
  bool intervals_cover(const std::vector<PrbInterval>& iv, int start,
                       int end, double min_cover = 0.9) const;
  std::uint32_t link_seed(RuId ru, UeId ue) const {
    return std::uint32_t(ru * 7919 + ue * 104729 + 13);
  }

  ChannelModel channel_;
  Scs scs_;
  std::vector<Cell> cells_;
  std::vector<Ru> rus_;
  std::vector<Ue> ues_;
  bool defer_prach_ = false;
  std::vector<std::int64_t> prach_pending_;  // per cell: slot or -1
};

}  // namespace rb
