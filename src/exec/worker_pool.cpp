#include "exec/worker_pool.h"

#include <chrono>

#include "common/thread_flags.h"

namespace rb::exec {
namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr int kSpinPolls = 4096;  // poll budget before parking

}  // namespace

WorkerPool::WorkerPool(int n_workers)
    : done_(std::size_t(n_workers < 1 ? 1 : n_workers), /*capacity_each=*/1024) {
  const int n = n_workers < 1 ? 1 : n_workers;
  workers_.reserve(std::size_t(n));
  for (int i = 0; i < n; ++i)
    workers_.push_back(std::make_unique<WorkerCtx>(/*ring_cap=*/1024));
  for (int i = 0; i < n; ++i)
    workers_[std::size_t(i)]->thread =
        std::thread([this, i] { worker_main(i); });
}

WorkerPool::~WorkerPool() {
  stop_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    std::lock_guard<std::mutex> lk(w->mu);
    w->cv.notify_all();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void WorkerPool::run(std::span<const Job> jobs) {
  if (jobs.empty()) return;
  // Inline execution keeps single-worker pools (and tiny batches on a
  // degenerate pool) cheap and exactly ordered.
  if (size() == 1) {
    auto& st = workers_[0]->stats;
    for (const auto& j : jobs) {
      const std::int64_t t0 = now_ns();
      j.fn(j.arg, 0);
      st.busy_ns += std::uint64_t(now_ns() - t0);
      ++st.jobs;
    }
    st.dispatches += 1;
    return;
  }

  pending_.store(int(jobs.size()), std::memory_order_release);
  for (const auto& j : jobs) {
    const std::size_t w =
        std::size_t(j.worker < 0 || j.worker >= size() ? 0 : j.worker);
    auto& ctx = *workers_[w];
    // Spin until the lane accepts; the worker drains concurrently so the
    // wait is bounded.
    while (!ctx.jobs.try_push(j)) std::this_thread::yield();
    {
      std::lock_guard<std::mutex> lk(ctx.mu);
      ctx.cv.notify_one();
    }
  }

  const std::int64_t w0 = now_ns();
  std::unique_lock<std::mutex> lk(done_mu_);
  done_cv_.wait(lk, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
  lk.unlock();
  coordinator_wait_ns_ += std::uint64_t(now_ns() - w0);

  // Barrier-time merge of the per-job completion records (the MPSC lanes
  // are drained in worker order, so this is deterministic).
  done_.drain([this](Completion c) {
    auto& st = workers_[std::size_t(c.worker)]->stats;
    (void)st;  // per-job busy already accumulated worker-side; records
               // exist for cross-checking and future per-phase accounting
  });
  for (auto& w : workers_) w->stats.dispatches += 1;
}

void WorkerPool::worker_main(int w) {
  rb::mark_exec_worker_thread();
  auto& ctx = *workers_[std::size_t(w)];
  while (true) {
    Job j;
    bool got = false;
    for (int i = 0; i < kSpinPolls; ++i) {
      if (ctx.jobs.try_pop(j)) {
        got = true;
        break;
      }
      if (stop_.load(std::memory_order_acquire)) return;
      if ((i & 63) == 63) std::this_thread::yield();
    }
    if (!got) {
      std::unique_lock<std::mutex> lk(ctx.mu);
      ++ctx.stats.park_waits;
      ctx.cv.wait(lk, [&] {
        return !ctx.jobs.empty_approx() ||
               stop_.load(std::memory_order_acquire);
      });
      if (stop_.load(std::memory_order_acquire) && ctx.jobs.empty_approx())
        return;
      continue;
    }

    const std::int64_t t0 = now_ns();
    j.fn(j.arg, w);
    const std::int64_t busy = now_ns() - t0;
    ctx.stats.busy_ns += std::uint64_t(busy);
    ++ctx.stats.jobs;

    // Best-effort record: the coordinator drains only after the barrier,
    // so a full lane must never be waited on (it would deadlock against
    // pending_). Authoritative per-worker totals live in ctx.stats.
    if (!done_.try_push(std::size_t(w), Completion{w, busy}))
      ++ctx.stats.ring_full_spins;
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lk(done_mu_);
      done_cv_.notify_one();
    }
  }
}

WorkerStats WorkerPool::merged_stats() const {
  WorkerStats all;
  for (const auto& w : workers_) all += w->stats;
  return all;
}

void WorkerPool::reset_stats() {
  for (auto& w : workers_) w->stats = WorkerStats{};
}

}  // namespace rb::exec
