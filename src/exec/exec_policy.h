// Execution policy of the slot engine.
//
// serial     - everything on the caller's thread, byte-identical to the
//              historical engine (the default; all seed tests run here).
// parallel(n)- a WorkerPool of n threads executes flow islands (DU + RUs
//              + middlebox runtimes sharing fronthaul flows) in parallel
//              with a deterministic slot barrier between phases. See
//              DESIGN.md "Execution model".
#pragma once

namespace rb::exec {

struct ExecPolicy {
  enum class Mode { Serial, Parallel };

  Mode mode = Mode::Serial;
  int n_workers = 1;
  /// Also run the DU/RU slot phases sharded (not just middlebox pumping)
  /// when every DU/RU is affinity-bound. Disable to parallelize only the
  /// middlebox pump phases.
  bool shard_ran_phases = true;

  static ExecPolicy serial() { return {}; }
  static ExecPolicy parallel(int n, bool shard_ran = true) {
    ExecPolicy p;
    p.mode = Mode::Parallel;
    p.n_workers = n < 1 ? 1 : n;
    p.shard_ran_phases = shard_ran;
    return p;
  }
  bool is_parallel() const { return mode == Mode::Parallel && n_workers > 0; }
};

}  // namespace rb::exec
