// Bounded single-producer/single-consumer ring (Lamport queue).
//
// The cross-worker handoff primitive of the execution engine: one side
// produces, the other consumes, and the only shared state is a pair of
// cache-line-padded atomic indices. Both sides keep a cached copy of the
// remote index so the fast path touches exactly one shared cache line
// (the slot), mirroring the rte_ring/folly::ProducerConsumerQueue
// discipline of DPDK-era packet stacks.
//
// Guarantees:
//  * wait-free try_push/try_pop (no CAS loops, no locks),
//  * FIFO order,
//  * release/acquire hand-off: everything written before try_push() is
//    visible to the thread that try_pop()s the element.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <utility>
#include <vector>

namespace rb::exec {

/// Destructive-interference padding; 64 is right for x86/ARM server parts.
inline constexpr std::size_t kCacheLine = 64;

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two; the ring holds exactly
  /// `capacity()` elements before try_push starts failing.
  explicit SpscRing(std::size_t min_capacity = 1024)
      : mask_(round_up_pow2(min_capacity) - 1),
        slots_(round_up_pow2(min_capacity)) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer side. Returns false when the ring is full.
  bool try_push(T v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;  // really full
    }
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;  // really empty
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Approximate (racy by design) occupancy; exact when called from the
  /// consumer with the producer quiescent, or vice versa.
  std::size_t size_approx() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }
  bool empty_approx() const { return size_approx() == 0; }

  static constexpr std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p < 2 ? 2 : p;
  }

 private:
  const std::size_t mask_;
  std::vector<T> slots_;

  // Consumer-owned line: head index + producer-index cache of the consumer.
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
  std::size_t tail_cache_ = 0;  // consumer's view of tail_
  // Producer-owned line: tail index + consumer-index cache of the producer.
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
  std::size_t head_cache_ = 0;  // producer's view of head_
  char pad_end_[kCacheLine]{};  // keep tail_'s line out of neighbours
};

}  // namespace rb::exec
