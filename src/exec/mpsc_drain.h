// Multi-producer/single-consumer drain built from per-producer SPSC rings.
//
// N producers each own a private SpscRing; the single consumer drains the
// rings in producer-index order. This keeps every push wait-free and
// contention-free (no shared tail to CAS on) and - crucially for the
// deterministic slot barrier - gives the consumer a *fixed merge order*:
// two runs with the same per-producer streams observe the same drained
// sequence regardless of thread interleaving.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "exec/spsc_ring.h"

namespace rb::exec {

template <typename T>
class MpscDrain {
 public:
  explicit MpscDrain(std::size_t producers, std::size_t capacity_each = 1024) {
    rings_.reserve(producers);
    for (std::size_t i = 0; i < producers; ++i)
      rings_.push_back(std::make_unique<SpscRing<T>>(capacity_each));
  }

  std::size_t producers() const { return rings_.size(); }

  /// Producer `i` only. Returns false when that producer's lane is full
  /// (the consumer is behind); the producer may retry - the consumer
  /// always makes progress.
  bool try_push(std::size_t producer, T v) {
    return rings_[producer]->try_push(std::move(v));
  }

  /// Consumer only: pop everything currently visible, lane 0 first, each
  /// lane FIFO. Returns the number of elements delivered to `f`.
  template <typename F>
  std::size_t drain(F&& f) {
    std::size_t n = 0;
    for (auto& ring : rings_) {
      T v;
      while (ring->try_pop(v)) {
        f(std::move(v));
        ++n;
      }
    }
    return n;
  }

  /// Consumer only: ensure each lane can hold `cap` elements. Must be
  /// called while all producers are quiescent (between barriers).
  void reserve(std::size_t cap) {
    for (auto& ring : rings_)
      if (ring->capacity() < cap)
        ring = std::make_unique<SpscRing<T>>(cap);
  }

 private:
  std::vector<std::unique_ptr<SpscRing<T>>> rings_;
};

}  // namespace rb::exec
