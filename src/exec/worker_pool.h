// Persistent worker-thread pool with lock-free job hand-off.
//
// One coordinator thread dispatches batches of jobs; each job is pinned
// to a worker (flow affinity - a flow's packets never migrate). Jobs
// travel coordinator -> worker over per-worker SPSC rings; completion
// records travel back over an MPSC drain (per-worker SPSC lanes). The
// rings are the only shared state on the hot path; the mutex/condvar
// pairs exist purely to park idle threads.
//
// Telemetry is sharded: each worker owns a cache-line-padded WorkerStats
// it alone writes; the coordinator merges shards at the barrier (end of
// run()), so there is no contended counter cache line - the same reason
// the paper's DPDK pipeline keeps per-lcore stats.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "exec/mpsc_drain.h"
#include "exec/spsc_ring.h"

namespace rb::exec {

/// Per-worker telemetry shard. Padded so two workers never write the same
/// cache line.
struct alignas(kCacheLine) WorkerStats {
  std::uint64_t jobs = 0;          // jobs executed
  std::uint64_t busy_ns = 0;       // wall time inside jobs
  std::uint64_t dispatches = 0;    // batches this worker took part in
  std::uint64_t park_waits = 0;    // times the thread went to sleep
  std::uint64_t ring_full_spins = 0;  // completion-lane backpressure events

  WorkerStats& operator+=(const WorkerStats& o) {
    jobs += o.jobs;
    busy_ns += o.busy_ns;
    dispatches += o.dispatches;
    park_waits += o.park_waits;
    ring_full_spins += o.ring_full_spins;
    return *this;
  }
};

class WorkerPool {
 public:
  struct Job {
    void (*fn)(void* arg, int worker) = nullptr;
    void* arg = nullptr;
    int worker = 0;  // target worker in [0, size())
  };

  explicit WorkerPool(int n_workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int size() const { return int(workers_.size()); }

  /// Execute a batch and block until every job completed. Coordinator
  /// thread only. Jobs with out-of-range `worker` are clamped.
  void run(std::span<const Job> jobs);

  /// Telemetry shard of one worker. Stable (no concurrent writers) while
  /// no run() is in flight.
  const WorkerStats& stats(int w) const { return workers_[std::size_t(w)]->stats; }
  WorkerStats merged_stats() const;
  void reset_stats();

  /// Wall time the coordinator spent blocked in run() so far (ns).
  std::uint64_t coordinator_wait_ns() const { return coordinator_wait_ns_; }

 private:
  struct Completion {
    std::int32_t worker = 0;
    std::int64_t busy_ns = 0;
  };
  struct WorkerCtx {
    explicit WorkerCtx(std::size_t ring_cap) : jobs(ring_cap) {}
    SpscRing<Job> jobs;
    std::mutex mu;
    std::condition_variable cv;
    WorkerStats stats{};
    std::thread thread;  // started last
  };

  void worker_main(int w);

  MpscDrain<Completion> done_;
  std::atomic<int> pending_{0};
  std::atomic<bool> stop_{false};
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::uint64_t coordinator_wait_ns_ = 0;
  std::vector<std::unique_ptr<WorkerCtx>> workers_;
};

}  // namespace rb::exec
