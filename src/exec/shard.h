// Stable flow sharding.
//
// The paper's DPDK middlebox shards fronthaul flows across run-to-
// completion cores by eAxC ID so a flow's packets never migrate between
// cores. We reproduce the same discipline: a flow key is a stable FNV-1a
// hash over (RU, eAxC); every entity serving that flow (DU, RUs,
// middlebox runtime) is bound to the key, and the execution engine maps
// keys to workers. The hash is fixed (not seeded) so shard placement is
// reproducible across runs and worker counts.
#pragma once

#include <cstdint>

namespace rb::exec {

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

constexpr std::uint64_t fnv1a_byte(std::uint64_t h, std::uint8_t b) {
  return (h ^ b) * kFnvPrime;
}

constexpr std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = fnv1a_byte(h, std::uint8_t(v & 0xff));
    v >>= 8;
  }
  return h;
}

/// Flow key of one (RU, eAxC) stream.
constexpr std::uint64_t flow_key(std::uint32_t ru, std::uint16_t eaxc) {
  return fnv1a_u64(fnv1a_u64(kFnvOffset, ru), eaxc);
}

/// Fold another constituent (e.g. a second RU of a DAS set) into a key.
constexpr std::uint64_t flow_key_extend(std::uint64_t key, std::uint64_t v) {
  return fnv1a_u64(key, v);
}

/// Worker index for a flow key. Never returns out-of-range even for n==0.
constexpr std::size_t shard_of(std::uint64_t key, std::size_t n_shards) {
  if (n_shards <= 1) return 0;
  // xor-fold so low-entropy keys still spread.
  const std::uint64_t folded = key ^ (key >> 32);
  return std::size_t(folded % n_shards);
}

}  // namespace rb::exec
