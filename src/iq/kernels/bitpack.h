// Word-at-a-time MSB-first bit packing shared by the SIMD kernel tiers.
//
// The generic BitWriter/BitReader in common/bytes.h insert one byte
// fragment per iteration; these helpers keep a 64-bit accumulator and emit
// whole bytes, which is what makes the odd mantissa widths (9/12/14) fast
// without per-width shuffle tables. Layout is identical to BitWriter:
// values MSB-first, two's-complement truncated to `width` bits.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rb::iqk {

namespace detail {
/// Width-9 fast path: the BFP default width, so the hottest by far. A
/// group of 8 values is exactly 72 bits = 9 bytes, so the whole group is
/// assembled with independent shifts into one 64-bit word plus one tail
/// byte - no accumulator loop, no carried state between groups.
inline void pack_words9(const std::int16_t* v, std::size_t n,
                        std::uint8_t* out) {
  for (std::size_t k = 0; k + 8 <= n; k += 8, out += 9) {
    const std::uint64_t v0 = std::uint16_t(v[k + 0]) & 0x1ffu;
    const std::uint64_t v1 = std::uint16_t(v[k + 1]) & 0x1ffu;
    const std::uint64_t v2 = std::uint16_t(v[k + 2]) & 0x1ffu;
    const std::uint64_t v3 = std::uint16_t(v[k + 3]) & 0x1ffu;
    const std::uint64_t v4 = std::uint16_t(v[k + 4]) & 0x1ffu;
    const std::uint64_t v5 = std::uint16_t(v[k + 5]) & 0x1ffu;
    const std::uint64_t v6 = std::uint16_t(v[k + 6]) & 0x1ffu;
    const std::uint64_t v7 = std::uint16_t(v[k + 7]) & 0x1ffu;
    const std::uint64_t hi = (v0 << 55) | (v1 << 46) | (v2 << 37) |
                             (v3 << 28) | (v4 << 19) | (v5 << 10) |
                             (v6 << 1) | (v7 >> 8);
    out[0] = std::uint8_t(hi >> 56);
    out[1] = std::uint8_t(hi >> 48);
    out[2] = std::uint8_t(hi >> 40);
    out[3] = std::uint8_t(hi >> 32);
    out[4] = std::uint8_t(hi >> 24);
    out[5] = std::uint8_t(hi >> 16);
    out[6] = std::uint8_t(hi >> 8);
    out[7] = std::uint8_t(hi);
    out[8] = std::uint8_t(v7);
  }
}

inline void unpack_words9(const std::uint8_t* in, std::size_t n,
                          std::int16_t* v) {
  const auto sext9 = [](std::uint32_t raw) {
    return std::int16_t(std::uint16_t((raw ^ 0x100u) - 0x100u));
  };
  for (std::size_t k = 0; k + 8 <= n; k += 8, in += 9) {
    const std::uint64_t hi =
        (std::uint64_t(in[0]) << 56) | (std::uint64_t(in[1]) << 48) |
        (std::uint64_t(in[2]) << 40) | (std::uint64_t(in[3]) << 32) |
        (std::uint64_t(in[4]) << 24) | (std::uint64_t(in[5]) << 16) |
        (std::uint64_t(in[6]) << 8) | std::uint64_t(in[7]);
    v[k + 0] = sext9(std::uint32_t(hi >> 55) & 0x1ffu);
    v[k + 1] = sext9(std::uint32_t(hi >> 46) & 0x1ffu);
    v[k + 2] = sext9(std::uint32_t(hi >> 37) & 0x1ffu);
    v[k + 3] = sext9(std::uint32_t(hi >> 28) & 0x1ffu);
    v[k + 4] = sext9(std::uint32_t(hi >> 19) & 0x1ffu);
    v[k + 5] = sext9(std::uint32_t(hi >> 10) & 0x1ffu);
    v[k + 6] = sext9(std::uint32_t(hi >> 1) & 0x1ffu);
    v[k + 7] = sext9((std::uint32_t(hi & 1u) << 8) | in[8]);
  }
}
}  // namespace detail

/// Bytes covering n_values packed `width`-bit fields (final byte padded
/// with zero bits, as BitWriter leaves them in a pre-zeroed buffer).
inline std::size_t packed_bytes(std::size_t n_values, int width) {
  return (n_values * std::size_t(width) + 7) / 8;
}

/// Pack n int16 values at `width` bits each, MSB-first. Writes
/// packed_bytes(n, width) bytes. Values are truncated to their low
/// `width` bits (two's complement), matching BitWriter::put.
///
/// The accumulator drains 32 bits at a time: a big-endian dword store is
/// byte-for-byte the MSB-first stream, and the explicit shift sequence
/// below compiles to a single bswap+store. With width <= 16 the
/// accumulator holds at most 47 valid bits before a drain, so it never
/// overflows 64.
inline void pack_words(const std::int16_t* v, std::size_t n, int width,
                       std::uint8_t* out) {
  if (width == 9) {
    const std::size_t full = n & ~std::size_t(7);
    detail::pack_words9(v, full, out);
    if (full == n) return;
    // Groups are 72 bits = 9 whole bytes, so the tail starts byte-aligned.
    v += full;
    n -= full;
    out += full / 8 * 9;
  }
  const std::uint32_t mask =
      width >= 32 ? ~0u : ((1u << unsigned(width)) - 1u);
  std::uint64_t acc = 0;
  unsigned bits = 0;
  for (std::size_t k = 0; k < n; ++k) {
    acc = (acc << unsigned(width)) |
          (std::uint32_t(std::uint16_t(v[k])) & mask);
    bits += unsigned(width);
    if (bits >= 32) {
      bits -= 32;
      const std::uint32_t w32 = std::uint32_t(acc >> bits);
      out[0] = std::uint8_t(w32 >> 24);
      out[1] = std::uint8_t(w32 >> 16);
      out[2] = std::uint8_t(w32 >> 8);
      out[3] = std::uint8_t(w32);
      out += 4;
    }
  }
  while (bits >= 8) {
    bits -= 8;
    *out++ = std::uint8_t(acc >> bits);
  }
  if (bits > 0) *out = std::uint8_t(acc << (8 - bits));
}

/// Unpack n `width`-bit fields MSB-first into sign-extended int16 values.
/// Reads packed_bytes(n, width) bytes. Width 2..16.
///
/// Refills pull a big-endian dword while at least 4 input bytes remain
/// (the span is exactly packed_bytes(n, width) long, so the tail falls
/// back to byte loads rather than over-reading). Before a refill
/// bits < width <= 16, so acc << 32 keeps at most 47 valid bits.
inline void unpack_words(const std::uint8_t* in, std::size_t n, int width,
                         std::int16_t* v) {
  if (width == 9) {
    const std::size_t full = n & ~std::size_t(7);
    detail::unpack_words9(in, full, v);
    if (full == n) return;
    in += full / 8 * 9;
    v += full;
    n -= full;
  }
  const std::uint32_t mask = (width >= 32) ? ~0u : ((1u << unsigned(width)) - 1u);
  const std::uint32_t sign = 1u << unsigned(width - 1);
  const std::uint8_t* const end = in + packed_bytes(n, width);
  std::uint64_t acc = 0;
  unsigned bits = 0;
  for (std::size_t k = 0; k < n; ++k) {
    if (bits < unsigned(width)) {
      if (end - in >= 4) {
        acc = (acc << 32) | (std::uint32_t(in[0]) << 24) |
              (std::uint32_t(in[1]) << 16) | (std::uint32_t(in[2]) << 8) |
              std::uint32_t(in[3]);
        in += 4;
        bits += 32;
      } else {
        do {
          acc = (acc << 8) | *in++;
          bits += 8;
        } while (bits < unsigned(width));
      }
    }
    bits -= unsigned(width);
    const std::uint32_t raw = std::uint32_t(acc >> bits) & mask;
    // Sign-extend from `width` bits without UB on the high bit.
    v[k] = std::int16_t(std::uint16_t((raw ^ sign) - sign));
  }
}

}  // namespace rb::iqk
