// Word-at-a-time MSB-first bit packing shared by the SIMD kernel tiers.
//
// The generic BitWriter/BitReader in common/bytes.h insert one byte
// fragment per iteration; these helpers keep a 64-bit accumulator and emit
// whole bytes, which is what makes the odd mantissa widths (9/12/14) fast
// without per-width shuffle tables. Layout is identical to BitWriter:
// values MSB-first, two's-complement truncated to `width` bits.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rb::iqk {

/// Bytes covering n_values packed `width`-bit fields (final byte padded
/// with zero bits, as BitWriter leaves them in a pre-zeroed buffer).
inline std::size_t packed_bytes(std::size_t n_values, int width) {
  return (n_values * std::size_t(width) + 7) / 8;
}

/// Pack n int16 values at `width` bits each, MSB-first. Writes
/// packed_bytes(n, width) bytes. Values are truncated to their low
/// `width` bits (two's complement), matching BitWriter::put.
inline void pack_words(const std::int16_t* v, std::size_t n, int width,
                       std::uint8_t* out) {
  const std::uint32_t mask =
      width >= 32 ? ~0u : ((1u << unsigned(width)) - 1u);
  std::uint64_t acc = 0;
  unsigned bits = 0;
  for (std::size_t k = 0; k < n; ++k) {
    acc = (acc << unsigned(width)) |
          (std::uint32_t(std::uint16_t(v[k])) & mask);
    bits += unsigned(width);
    while (bits >= 8) {
      bits -= 8;
      *out++ = std::uint8_t(acc >> bits);
    }
  }
  if (bits > 0) *out = std::uint8_t(acc << (8 - bits));
}

/// Unpack n `width`-bit fields MSB-first into sign-extended int16 values.
/// Reads packed_bytes(n, width) bytes. Width 2..16.
inline void unpack_words(const std::uint8_t* in, std::size_t n, int width,
                         std::int16_t* v) {
  const std::uint32_t mask = (width >= 32) ? ~0u : ((1u << unsigned(width)) - 1u);
  const std::uint32_t sign = 1u << unsigned(width - 1);
  std::uint64_t acc = 0;
  unsigned bits = 0;
  for (std::size_t k = 0; k < n; ++k) {
    while (bits < unsigned(width)) {
      acc = (acc << 8) | *in++;
      bits += 8;
    }
    bits -= unsigned(width);
    const std::uint32_t raw = std::uint32_t(acc >> bits) & mask;
    // Sign-extend from `width` bits without UB on the high bit.
    v[k] = std::int16_t(std::uint16_t((raw ^ sign) - sign));
  }
}

}  // namespace rb::iqk
