// SSE4.2 kernel tier (128-bit). Same structure as avx2.cpp at half the
// vector width; kept separate so hosts without AVX2 (or pinned via
// RB_IQ_KERNEL=sse42) still get a vector path. Compiled with -msse4.2;
// dispatch.cpp gates on cpuid before handing out this table.
#if defined(__x86_64__) || defined(__i386__)

#include <nmmintrin.h>
#include <smmintrin.h>

#include "iq/kernels/bitpack.h"
#include "iq/kernels/noise.h"
#include "iq/kernels/tiers.h"

namespace rb::iqk {
namespace {

inline const std::int16_t* as_i16(const IqSample* s) {
  return reinterpret_cast<const std::int16_t*>(s);
}
inline std::int16_t* as_i16(IqSample* s) {
  return reinterpret_cast<std::int16_t*>(s);
}

inline __m128i bswap16_128(__m128i v) {
  const __m128i sh = _mm_setr_epi8(1, 0, 3, 2, 5, 4, 7, 6, 9, 8, 11, 10, 13,
                                   12, 15, 14);
  return _mm_shuffle_epi8(v, sh);
}

std::uint32_t max_magnitude_sse42(const IqSample* s, std::size_t n) {
  const std::int16_t* p = as_i16(s);
  const std::size_t len = 2 * n;
  std::size_t k = 0;
  __m128i vmax = _mm_setzero_si128();
  for (; k + 8 <= len; k += 8) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + k));
    // abs_epi16(INT16_MIN) stays 0x8000 == unsigned 32768, matching scalar.
    vmax = _mm_max_epu16(vmax, _mm_abs_epi16(v));
  }
  const __m128i inv = _mm_xor_si128(vmax, _mm_set1_epi16(-1));
  std::uint32_t m =
      0xffffu ^ std::uint32_t(_mm_extract_epi16(_mm_minpos_epu16(inv), 0));
  for (; k < len; ++k) {
    const std::int32_t v = p[k];
    const std::uint32_t a = std::uint32_t(v < 0 ? -v : v);
    if (a > m) m = a;
  }
  return m;
}

/// (v >> shift) for one PRB's 24 int16 components.
inline void mantissas24(const std::int16_t* p, unsigned shift,
                        std::int16_t* out24) {
  const __m128i cnt = _mm_cvtsi32_si128(int(shift));
  for (int j = 0; j < 24; j += 8) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + j));
    _mm_store_si128(reinterpret_cast<__m128i*>(out24 + j),
                    _mm_sra_epi16(v, cnt));
  }
}

void pack_mantissas_sse42(const IqSample* s, std::size_t n, int width,
                          unsigned shift, std::uint8_t* out) {
  const std::int16_t* p = as_i16(s);
  alignas(16) std::int16_t m[24];
  std::size_t rem = n;
  while (rem >= 12) {
    mantissas24(p, shift, m);
    switch (width) {
      case 8:
        for (int j = 0; j < 24; ++j) out[j] = std::uint8_t(m[j]);
        out += 24;
        break;
      case 16:
        for (int j = 0; j < 24; j += 8) {
          const __m128i v =
              _mm_load_si128(reinterpret_cast<const __m128i*>(m + j));
          _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 2 * j),
                           bswap16_128(v));
        }
        out += 48;
        break;
      default:
        pack_words(m, 24, width, out);
        out += (24u * unsigned(width)) / 8;  // one PRB is byte-aligned
    }
    p += 24;
    rem -= 12;
  }
  if (rem > 0) {
    for (std::size_t k = 0; k < 2 * rem; ++k)
      m[k] = std::int16_t(std::int32_t(p[k]) >> shift);
    pack_words(m, 2 * rem, width, out);
  }
}

/// sat16(m * 2^shift) for 8 mantissas: widen, shift, saturating re-pack.
inline void shift_sat8(const std::int16_t* m8, unsigned shift,
                       std::int16_t* out) {
  const __m128i v = _mm_load_si128(reinterpret_cast<const __m128i*>(m8));
  if (shift == 0) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out), v);
    return;
  }
  const __m128i cnt = _mm_cvtsi32_si128(int(shift));
  const __m128i lo = _mm_sll_epi32(_mm_cvtepi16_epi32(v), cnt);
  const __m128i hi =
      _mm_sll_epi32(_mm_cvtepi16_epi32(_mm_srli_si128(v, 8)), cnt);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), _mm_packs_epi32(lo, hi));
}

void unpack_mantissas_sse42(const std::uint8_t* in, std::size_t n, int width,
                            unsigned shift, IqSample* out) {
  std::int16_t* o = as_i16(out);
  alignas(16) std::int16_t m[24];
  std::size_t rem = n;
  while (rem >= 12) {
    switch (width) {
      case 8: {
        const __m128i b0 =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
        _mm_store_si128(reinterpret_cast<__m128i*>(m), _mm_cvtepi8_epi16(b0));
        _mm_store_si128(reinterpret_cast<__m128i*>(m + 8),
                        _mm_cvtepi8_epi16(_mm_srli_si128(b0, 8)));
        const __m128i b1 =
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(in + 16));
        _mm_store_si128(reinterpret_cast<__m128i*>(m + 16),
                        _mm_cvtepi8_epi16(b1));
        in += 24;
        break;
      }
      case 16:
        for (int j = 0; j < 24; j += 8) {
          const __m128i v =
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 2 * j));
          _mm_store_si128(reinterpret_cast<__m128i*>(m + j), bswap16_128(v));
        }
        in += 48;
        break;
      default:
        unpack_words(in, 24, width, m);
        in += (24u * unsigned(width)) / 8;
    }
    shift_sat8(m, shift, o);
    shift_sat8(m + 8, shift, o + 8);
    shift_sat8(m + 16, shift, o + 16);
    o += 24;
    rem -= 12;
  }
  if (rem > 0) {
    unpack_words(in, 2 * rem, width, m);
    for (std::size_t k = 0; k < 2 * rem; ++k)
      o[k] = sat16(std::int32_t(std::uint32_t(std::int32_t(m[k])) << shift));
  }
}

void accumulate_sat_sse42(IqSample* dst, const IqSample* src, std::size_t n) {
  std::int16_t* d = as_i16(dst);
  const std::int16_t* s = as_i16(src);
  const std::size_t len = 2 * n;
  std::size_t k = 0;
  for (; k + 8 <= len; k += 8) {
    const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(d + k));
    const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + k));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(d + k), _mm_adds_epi16(a, b));
  }
  for (; k < len; ++k) d[k] = sat16(std::int32_t(d[k]) + s[k]);
}

/// Both CompMethod::None directions are the same u16 byte swap.
inline void bswap16_stream(std::uint8_t* dst, const std::uint8_t* src,
                           std::size_t bytes) {
  std::size_t k = 0;
  for (; k + 16 <= bytes; k += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + k));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + k), bswap16_128(v));
  }
  for (; k + 2 <= bytes; k += 2) {
    dst[k] = src[k + 1];
    dst[k + 1] = src[k];
  }
}

void pack_none_sse42(const IqSample* s, std::size_t n, std::uint8_t* out) {
  bswap16_stream(out, reinterpret_cast<const std::uint8_t*>(s), 4 * n);
}

void unpack_none_sse42(const std::uint8_t* in, std::size_t n, IqSample* out) {
  bswap16_stream(reinterpret_cast<std::uint8_t*>(out), in, 4 * n);
}

/// Unsigned 32-bit x/d via the 2^32 reciprocal, 4 lanes (exact for
/// x < 2^16, see kernels/noise.h). blend_epi16 0xcc keeps the odd
/// 32-bit lanes of the odd-product, where their quotients already sit.
inline __m128i div_u16_by_magic(__m128i x, __m128i vm) {
  const __m128i pe = _mm_mul_epu32(x, vm);
  const __m128i po = _mm_mul_epu32(_mm_srli_epi64(x, 32), vm);
  return _mm_blend_epi16(_mm_srli_epi64(pe, 32), po, 0xcc);
}

void synth_noise_prb_sse42(std::uint32_t* rng, std::int32_t a,
                           IqSample* out) {
  const std::uint32_t r0 = *rng;
  *rng = kLcgJump.mul[kPrbDraws - 1] * r0 + kLcgJump.add[kPrbDraws - 1];
  const __m128i vr0 = _mm_set1_epi32(std::int32_t(r0));
  const __m128i va = _mm_set1_epi32(a);
  const std::uint32_t d = std::uint32_t(2 * a + 1);
  __m128i res[6];
  for (int g = 0; g < 6; ++g) {
    const __m128i mul = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(kLcgJump.mul + 4 * g));
    const __m128i add = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(kLcgJump.add + 4 * g));
    const __m128i draw = _mm_add_epi32(_mm_mullo_epi32(mul, vr0), add);
    res[g] = _mm_srli_epi32(draw, 16);
  }
  if (d <= 0xffffu) {
    const __m128i vm =
        _mm_set1_epi32(std::int32_t((std::uint64_t(1) << 32) / d + 1));
    const __m128i vd = _mm_set1_epi32(std::int32_t(d));
    for (auto& x : res) {
      const __m128i q = div_u16_by_magic(x, vm);
      x = _mm_sub_epi32(x, _mm_mullo_epi32(q, vd));
    }
  }
  for (auto& x : res) x = _mm_sub_epi32(x, va);
  std::int16_t* o = reinterpret_cast<std::int16_t*>(out);
  for (int g = 0; g < 3; ++g)
    _mm_storeu_si128(reinterpret_cast<__m128i*>(o + 8 * g),
                     _mm_packs_epi32(res[2 * g], res[2 * g + 1]));
}

constexpr IqKernelOps kSse42Ops{
    KernelTier::Sse42,      max_magnitude_sse42,  pack_mantissas_sse42,
    unpack_mantissas_sse42, accumulate_sat_sse42, pack_none_sse42,
    unpack_none_sse42,      synth_noise_prb_sse42,
};

}  // namespace

const IqKernelOps* sse42_ops() { return &kSse42Ops; }

}  // namespace rb::iqk

#else  // non-x86 build: tier not compiled in.

#include "iq/kernels/tiers.h"

namespace rb::iqk {
const IqKernelOps* sse42_ops() { return nullptr; }
}  // namespace rb::iqk

#endif
