// Runtime-dispatched SIMD kernels for the IQ hot path.
//
// The BFP codec and the U-plane combine dominate per-packet cost on the
// fronthaul datapath (the paper's Fig. 12/15 microbenchmarks). This layer
// provides one scalar reference implementation plus CPU-specific variants
// (SSE4.2, AVX2, NEON-guarded) selected once at startup via CPUID, in the
// spirit of DPDK's vectorized rx/tx paths.
//
// Contract: every tier is bit-exact against the scalar reference for every
// input. This is what keeps serial-vs-parallel determinism and obs trace
// equality intact no matter which tier the host selects: a kernel is an
// implementation detail, never an observable behaviour change.
//
// Selection order: RB_IQ_KERNEL env override (scalar|sse42|avx2|neon, with
// fallback to the best available tier when the requested one is not
// supported) > AVX2 > SSE4.2 > NEON > scalar.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

#include "iq/iq.h"

namespace rb {

static_assert(sizeof(IqSample) == 4 && alignof(IqSample) == 2,
              "kernels reinterpret IqSample[] as a packed int16 stream");

/// Dispatch tiers, ordered by preference within an ISA family.
enum class KernelTier : std::uint8_t { Scalar = 0, Sse42 = 1, Avx2 = 2, Neon = 3 };
inline constexpr std::size_t kKernelTierCount = 4;

const char* kernel_tier_name(KernelTier t);

/// Parse a RB_IQ_KERNEL-style tier name ("scalar", "sse42", "avx2",
/// "neon"); nullopt for anything else.
std::optional<KernelTier> parse_kernel_tier(std::string_view name);

/// One tier's kernel table. All functions share the scalar reference
/// semantics exactly (see scalar.cpp, the executable specification).
struct IqKernelOps {
  KernelTier tier = KernelTier::Scalar;

  /// Largest |i| / |q| over n samples (|INT16_MIN| = 32768).
  std::uint32_t (*max_magnitude)(const IqSample* s, std::size_t n);

  /// BFP mantissa packing: for each sample emit the low `width` bits of
  /// (i >> shift) then (q >> shift) (arithmetic shift, two's complement
  /// truncation), MSB-first, into `out`. `out` must hold
  /// (2*n*width + 7) / 8 bytes and be zeroed (a final partial byte is
  /// OR-composed exactly like BitWriter's). Width 2..16.
  void (*pack_mantissas)(const IqSample* s, std::size_t n, int width,
                         unsigned shift, std::uint8_t* out);

  /// Inverse: read 2*n sign-extended `width`-bit mantissas, shift each
  /// left by `shift` and saturate to int16. `in` must hold
  /// (2*n*width + 7) / 8 readable bytes.
  void (*unpack_mantissas)(const std::uint8_t* in, std::size_t n, int width,
                           unsigned shift, IqSample* out);

  /// Element-wise saturating sum: dst[k] += src[k] (the DAS/dMIMO uplink
  /// combine kernel). Identical to rb::accumulate on equal-length spans.
  void (*accumulate_sat)(IqSample* dst, const IqSample* src, std::size_t n);

  /// CompMethod::None wire codec: big-endian u16 i then q per sample
  /// (4 bytes/sample). Buffers must hold n samples / 4*n bytes.
  void (*pack_none)(const IqSample* s, std::size_t n, std::uint8_t* out);
  void (*unpack_none)(const std::uint8_t* in, std::size_t n, IqSample* out);

  /// Test-model noise synthesis: one PRB (kScPerPrb samples) of uniform
  /// noise in [-a, a] drawn from the shared 32-bit LCG; advances *rng by
  /// 2*kScPerPrb steps. Draw-for-draw identical to the reference in
  /// kernels/noise.h (the RNG sequence is checkpointed RU state).
  void (*synth_noise_prb)(std::uint32_t* rng, std::int32_t a, IqSample* out);
};

/// The active kernel table. First call selects a tier (env override, then
/// best supported) and records it in rb::iqstats for telemetry.
const IqKernelOps& iq_ops();

/// Tier of the active table.
KernelTier iq_kernel_tier();

/// True when `t` is both compiled in and supported by this CPU.
bool iq_tier_available(KernelTier t);

/// Kernel table of a specific tier, or nullptr when unavailable. Used by
/// the equivalence tests and the per-tier benchmarks.
const IqKernelOps* iq_ops_for(KernelTier t);

/// Force the active tier (tests/benchmarks only; call from one thread
/// while no datapath is running). Returns false when unavailable.
bool iq_force_tier(KernelTier t);

}  // namespace rb
