// Scalar reference kernels: the executable specification every SIMD tier
// must match bit-for-bit. Pack/unpack run through the generic
// BitWriter/BitReader so the reference stays byte-identical to the
// original codec (and keeps working for any width 2..16).
#include "common/bytes.h"
#include "iq/kernels/bitpack.h"
#include "iq/kernels/noise.h"
#include "iq/kernels/tiers.h"

namespace rb::iqk {
namespace {

std::uint32_t max_magnitude_scalar(const IqSample* s, std::size_t n) {
  std::uint32_t m = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint32_t ai =
        std::uint32_t(s[k].i < 0 ? -(std::int32_t(s[k].i)) : s[k].i);
    const std::uint32_t aq =
        std::uint32_t(s[k].q < 0 ? -(std::int32_t(s[k].q)) : s[k].q);
    if (ai > m) m = ai;
    if (aq > m) m = aq;
  }
  return m;
}

void pack_mantissas_scalar(const IqSample* s, std::size_t n, int width,
                           unsigned shift, std::uint8_t* out) {
  BitWriter bw({out, packed_bytes(2 * n, width)});
  for (std::size_t k = 0; k < n; ++k) {
    bw.put(std::int32_t(s[k].i) >> shift, width);
    bw.put(std::int32_t(s[k].q) >> shift, width);
  }
}

void unpack_mantissas_scalar(const std::uint8_t* in, std::size_t n, int width,
                             unsigned shift, IqSample* out) {
  BitReader br({in, packed_bytes(2 * n, width)});
  for (std::size_t k = 0; k < n; ++k) {
    // Shift in unsigned: a negative mantissa shifted left is UB in signed
    // arithmetic; the uint32 shift with wrap-around conversion (C++20
    // modular) computes the same value for every width<=16, shift<=15.
    const std::int32_t i =
        std::int32_t(std::uint32_t(br.get(width)) << shift);
    const std::int32_t q =
        std::int32_t(std::uint32_t(br.get(width)) << shift);
    out[k] = IqSample{sat16(i), sat16(q)};
  }
}

void accumulate_sat_scalar(IqSample* dst, const IqSample* src, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    dst[k].i = sat16(std::int32_t(dst[k].i) + src[k].i);
    dst[k].q = sat16(std::int32_t(dst[k].q) + src[k].q);
  }
}

void pack_none_scalar(const IqSample* s, std::size_t n, std::uint8_t* out) {
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint16_t i = std::uint16_t(s[k].i);
    const std::uint16_t q = std::uint16_t(s[k].q);
    out[0] = std::uint8_t(i >> 8);
    out[1] = std::uint8_t(i);
    out[2] = std::uint8_t(q >> 8);
    out[3] = std::uint8_t(q);
    out += 4;
  }
}

void unpack_none_scalar(const std::uint8_t* in, std::size_t n,
                        IqSample* out) {
  for (std::size_t k = 0; k < n; ++k) {
    out[k].i = std::int16_t(std::uint16_t((in[0] << 8) | in[1]));
    out[k].q = std::int16_t(std::uint16_t((in[2] << 8) | in[3]));
    in += 4;
  }
}

void synth_noise_prb_scalar(std::uint32_t* rng, std::int32_t a,
                            IqSample* out) {
  synth_noise_prb_ref(rng, a, out);
}

constexpr IqKernelOps kScalarOps{
    KernelTier::Scalar,       max_magnitude_scalar, pack_mantissas_scalar,
    unpack_mantissas_scalar,  accumulate_sat_scalar, pack_none_scalar,
    unpack_none_scalar,       synth_noise_prb_scalar,
};

}  // namespace

const IqKernelOps* scalar_ops() { return &kScalarOps; }

}  // namespace rb::iqk
