// Internal: per-tier kernel table factories wired up by dispatch.cpp.
//
// Each factory returns nullptr when its tier is not compiled into this
// binary (wrong ISA family); CPU feature checks happen in dispatch.cpp.
#pragma once

#include "iq/kernels/kernels.h"

namespace rb::iqk {

const IqKernelOps* scalar_ops();  // always available
const IqKernelOps* sse42_ops();   // x86 only
const IqKernelOps* avx2_ops();    // x86 only
const IqKernelOps* neon_ops();    // aarch64/arm only

}  // namespace rb::iqk
