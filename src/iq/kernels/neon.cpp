// NEON kernel tier (aarch64/arm builds only). Conservative: intrinsics
// cover the element-wise kernels (max-magnitude scan, saturating combine,
// u16 byte swap); mantissa pack/unpack uses the shared 64-bit word packer
// on vector-shifted mantissas, which is where most of the win over the
// per-fragment BitWriter comes from anyway. Untested ISA variants stay
// simple on purpose - every path is still bit-exact against scalar.cpp by
// construction (vqaddq_s16 == sat16(a+b), vabsq/vmaxq match the unsigned
// |INT16_MIN| convention).
#if defined(__ARM_NEON) || defined(__ARM_NEON__)

#include <arm_neon.h>

#include "iq/kernels/bitpack.h"
#include "iq/kernels/noise.h"
#include "iq/kernels/tiers.h"

namespace rb::iqk {
namespace {

inline const std::int16_t* as_i16(const IqSample* s) {
  return reinterpret_cast<const std::int16_t*>(s);
}
inline std::int16_t* as_i16(IqSample* s) {
  return reinterpret_cast<std::int16_t*>(s);
}

std::uint32_t max_magnitude_neon(const IqSample* s, std::size_t n) {
  const std::int16_t* p = as_i16(s);
  const std::size_t len = 2 * n;
  std::size_t k = 0;
  uint16x8_t vmax = vdupq_n_u16(0);
  for (; k + 8 <= len; k += 8) {
    // vabsq_s16(INT16_MIN) == INT16_MIN == 0x8000; reinterpreting as u16
    // reads it as 32768, exactly the scalar |INT16_MIN|.
    const uint16x8_t a = vreinterpretq_u16_s16(vabsq_s16(vld1q_s16(p + k)));
    vmax = vmaxq_u16(vmax, a);
  }
  std::uint32_t m = 0;
#if defined(__aarch64__)
  m = vmaxvq_u16(vmax);
#else
  uint16x4_t r = vmax_u16(vget_low_u16(vmax), vget_high_u16(vmax));
  r = vpmax_u16(r, r);
  r = vpmax_u16(r, r);
  m = vget_lane_u16(r, 0);
#endif
  for (; k < len; ++k) {
    const std::int32_t v = p[k];
    const std::uint32_t a = std::uint32_t(v < 0 ? -v : v);
    if (a > m) m = a;
  }
  return m;
}

void pack_mantissas_neon(const IqSample* s, std::size_t n, int width,
                         unsigned shift, std::uint8_t* out) {
  const std::int16_t* p = as_i16(s);
  alignas(16) std::int16_t m[24];
  const int16x8_t cnt = vdupq_n_s16(-std::int16_t(shift));
  std::size_t rem = n;
  while (rem >= 12) {
    for (int j = 0; j < 24; j += 8)
      vst1q_s16(m + j, vshlq_s16(vld1q_s16(p + j), cnt));
    pack_words(m, 24, width, out);
    out += (24u * unsigned(width)) / 8;  // one PRB is byte-aligned
    p += 24;
    rem -= 12;
  }
  if (rem > 0) {
    for (std::size_t k = 0; k < 2 * rem; ++k)
      m[k] = std::int16_t(std::int32_t(p[k]) >> shift);
    pack_words(m, 2 * rem, width, out);
  }
}

void unpack_mantissas_neon(const std::uint8_t* in, std::size_t n, int width,
                           unsigned shift, IqSample* out) {
  std::int16_t* o = as_i16(out);
  alignas(16) std::int16_t m[24];
  const int32x4_t cnt = vdupq_n_s32(std::int32_t(shift));
  std::size_t rem = n;
  while (rem >= 12) {
    unpack_words(in, 24, width, m);
    in += (24u * unsigned(width)) / 8;
    for (int j = 0; j < 24; j += 8) {
      const int16x8_t v = vld1q_s16(m + j);
      const int32x4_t lo = vshlq_s32(vmovl_s16(vget_low_s16(v)), cnt);
      const int32x4_t hi = vshlq_s32(vmovl_s16(vget_high_s16(v)), cnt);
      vst1q_s16(o + j, vcombine_s16(vqmovn_s32(lo), vqmovn_s32(hi)));
    }
    o += 24;
    rem -= 12;
  }
  if (rem > 0) {
    unpack_words(in, 2 * rem, width, m);
    for (std::size_t k = 0; k < 2 * rem; ++k)
      o[k] = sat16(std::int32_t(std::uint32_t(std::int32_t(m[k])) << shift));
  }
}

void accumulate_sat_neon(IqSample* dst, const IqSample* src, std::size_t n) {
  std::int16_t* d = as_i16(dst);
  const std::int16_t* s = as_i16(src);
  const std::size_t len = 2 * n;
  std::size_t k = 0;
  for (; k + 8 <= len; k += 8)
    vst1q_s16(d + k, vqaddq_s16(vld1q_s16(d + k), vld1q_s16(s + k)));
  for (; k < len; ++k) d[k] = sat16(std::int32_t(d[k]) + s[k]);
}

/// Both CompMethod::None directions are the same u16 byte swap.
inline void bswap16_stream(std::uint8_t* dst, const std::uint8_t* src,
                           std::size_t bytes) {
  std::size_t k = 0;
  for (; k + 16 <= bytes; k += 16)
    vst1q_u8(dst + k, vrev16q_u8(vld1q_u8(src + k)));
  for (; k + 2 <= bytes; k += 2) {
    dst[k] = src[k + 1];
    dst[k + 1] = src[k];
  }
}

void pack_none_neon(const IqSample* s, std::size_t n, std::uint8_t* out) {
  bswap16_stream(out, reinterpret_cast<const std::uint8_t*>(s), 4 * n);
}

void unpack_none_neon(const std::uint8_t* in, std::size_t n, IqSample* out) {
  bswap16_stream(reinterpret_cast<std::uint8_t*>(out), in, 4 * n);
}

void synth_noise_prb_neon(std::uint32_t* rng, std::int32_t a,
                          IqSample* out) {
  synth_noise_prb_ref(rng, a, out);
}

constexpr IqKernelOps kNeonOps{
    KernelTier::Neon,      max_magnitude_neon,  pack_mantissas_neon,
    unpack_mantissas_neon, accumulate_sat_neon, pack_none_neon,
    unpack_none_neon,      synth_noise_prb_neon,
};

}  // namespace

const IqKernelOps* neon_ops() { return &kNeonOps; }

}  // namespace rb::iqk

#else  // non-ARM build: tier not compiled in.

#include "iq/kernels/tiers.h"

namespace rb::iqk {
const IqKernelOps* neon_ops() { return nullptr; }
}  // namespace rb::iqk

#endif
