// Shared reference for the test-model noise synthesis kernel.
//
// The RU/DU models fill uplink PRBs with uniform noise drawn from a
// 32-bit LCG (r <- r * 1664525 + 1013904223). The draw sequence is part
// of checkpointed state, so every tier must advance the RNG and map draws
// to samples exactly like this reference. Two standard hoists make the
// loop SIMD-friendly without changing a single draw:
//
//  - Jump-ahead: after j+1 LCG steps, r == kLcgJump.mul[j]*r0 +
//    kLcgJump.add[j] (mod 2^32), so all 24 draws of a PRB are independent
//    mul-adds on r0 instead of a 24-deep dependency chain.
//  - Reciprocal modulo: each component is int32(draw >> 16) % d - a with
//    d = 2a+1. For odd d in [3, 65535], m = floor(2^32/d) + 1 gives
//    q = (x*m) >> 32 == x/d exactly for every x < 2^16 (Granlund &
//    Montgomery: the magic error e = m*d - 2^32 <= d, and e*x < 2^32).
//    For d > 65535 the 16-bit draw is already smaller than d.
#pragma once

#include <cstddef>
#include <cstdint>

#include "iq/iq.h"

namespace rb::iqk {

inline constexpr std::size_t kPrbDraws = 2 * kScPerPrb;  // I+Q per SC

struct LcgJump {
  std::uint32_t mul[kPrbDraws];
  std::uint32_t add[kPrbDraws];
};
constexpr LcgJump make_lcg_jump() {
  LcgJump t{};
  std::uint32_t a = 1, c = 0;
  for (std::size_t j = 0; j < kPrbDraws; ++j) {
    // Compose one more step: r_{j+1} = A*(a*r0 + c) + C.
    a = 1664525u * a;
    c = 1664525u * c + 1013904223u;
    t.mul[j] = a;
    t.add[j] = c;
  }
  return t;
}
inline constexpr LcgJump kLcgJump = make_lcg_jump();

/// One PRB (kScPerPrb samples) of uniform noise in [-a, a]; advances
/// *rng by kPrbDraws LCG steps. The scalar reference all tiers match.
inline void synth_noise_prb_ref(std::uint32_t* rng, std::int32_t a,
                                IqSample* out) {
  std::uint32_t draws[kPrbDraws];
  const std::uint32_t r0 = *rng;
  for (std::size_t j = 0; j < kPrbDraws; ++j)
    draws[j] = kLcgJump.mul[j] * r0 + kLcgJump.add[j];
  *rng = draws[kPrbDraws - 1];

  const std::uint32_t d = std::uint32_t(2 * a + 1);
  if (d > 0xffffu) {
    for (int k = 0; k < kScPerPrb; ++k) {
      out[k].i = sat16(std::int32_t(draws[2 * k] >> 16) - a);
      out[k].q = sat16(std::int32_t(draws[2 * k + 1] >> 16) - a);
    }
    return;
  }
  const std::uint64_t m = (std::uint64_t(1) << 32) / d + 1;
  const auto rem = [m, d](std::uint32_t x) {
    const std::uint32_t q = std::uint32_t((x * m) >> 32);
    return std::int32_t(x - q * d);
  };
  for (int k = 0; k < kScPerPrb; ++k) {
    out[k].i = sat16(rem(draws[2 * k] >> 16) - a);
    out[k].q = sat16(rem(draws[2 * k + 1] >> 16) - a);
  }
}

}  // namespace rb::iqk
