// Kernel tier selection. One atomic pointer swap at first use; the hot
// path pays a single relaxed load per call site after that.
#include <atomic>
#include <cstdlib>

#include "common/iq_stats.h"
#include "common/log.h"
#include "iq/kernels/tiers.h"

namespace rb {
namespace {

using iqk::avx2_ops;
using iqk::neon_ops;
using iqk::scalar_ops;
using iqk::sse42_ops;

bool cpu_supports(KernelTier t) {
  switch (t) {
    case KernelTier::Scalar:
      return true;
#if defined(__x86_64__) || defined(__i386__)
    case KernelTier::Sse42:
      return __builtin_cpu_supports("sse4.2");
    case KernelTier::Avx2:
      return __builtin_cpu_supports("avx2");
#else
    case KernelTier::Sse42:
    case KernelTier::Avx2:
      return false;
#endif
    case KernelTier::Neon:
      // NEON has no runtime probe here: when the tier is compiled in
      // (ARM build with __ARM_NEON) the baseline ISA already includes it.
      return neon_ops() != nullptr;
  }
  return false;
}

const IqKernelOps* table_for(KernelTier t) {
  if (!cpu_supports(t)) return nullptr;
  switch (t) {
    case KernelTier::Scalar:
      return scalar_ops();
    case KernelTier::Sse42:
      return sse42_ops();
    case KernelTier::Avx2:
      return avx2_ops();
    case KernelTier::Neon:
      return neon_ops();
  }
  return nullptr;
}

const IqKernelOps* best_available() {
  for (KernelTier t :
       {KernelTier::Avx2, KernelTier::Sse42, KernelTier::Neon}) {
    if (const IqKernelOps* ops = table_for(t)) return ops;
  }
  return scalar_ops();
}

void record_tier(const IqKernelOps* ops) {
  iqstats::kernel_tier().store(int(ops->tier), std::memory_order_relaxed);
  iqstats::kernel_tier_label().store(kernel_tier_name(ops->tier),
                                     std::memory_order_relaxed);
}

const IqKernelOps* select_ops() {
  if (const char* env = std::getenv("RB_IQ_KERNEL"); env != nullptr) {
    if (auto t = parse_kernel_tier(env)) {
      if (const IqKernelOps* ops = table_for(*t)) return ops;
      RB_WARN("RB_IQ_KERNEL=%s not available on this host, using best tier",
              env);
    } else {
      RB_WARN("RB_IQ_KERNEL=%s not recognized (scalar|sse42|avx2|neon), "
              "using best tier",
              env);
    }
  }
  return best_available();
}

std::atomic<const IqKernelOps*>& active_ops() {
  static std::atomic<const IqKernelOps*> v{nullptr};
  return v;
}

}  // namespace

const char* kernel_tier_name(KernelTier t) {
  switch (t) {
    case KernelTier::Scalar:
      return "scalar";
    case KernelTier::Sse42:
      return "sse42";
    case KernelTier::Avx2:
      return "avx2";
    case KernelTier::Neon:
      return "neon";
  }
  return "unknown";
}

std::optional<KernelTier> parse_kernel_tier(std::string_view name) {
  if (name == "scalar") return KernelTier::Scalar;
  if (name == "sse42" || name == "sse4.2") return KernelTier::Sse42;
  if (name == "avx2") return KernelTier::Avx2;
  if (name == "neon") return KernelTier::Neon;
  return std::nullopt;
}

const IqKernelOps& iq_ops() {
  const IqKernelOps* ops = active_ops().load(std::memory_order_acquire);
  if (ops == nullptr) {
    ops = select_ops();
    const IqKernelOps* expected = nullptr;
    // A concurrent first call selects the same table; keep whichever won.
    if (!active_ops().compare_exchange_strong(expected, ops,
                                              std::memory_order_acq_rel)) {
      ops = expected;
    }
    record_tier(ops);
  }
  return *ops;
}

KernelTier iq_kernel_tier() { return iq_ops().tier; }

bool iq_tier_available(KernelTier t) { return table_for(t) != nullptr; }

const IqKernelOps* iq_ops_for(KernelTier t) { return table_for(t); }

bool iq_force_tier(KernelTier t) {
  const IqKernelOps* ops = table_for(t);
  if (ops == nullptr) return false;
  active_ops().store(ops, std::memory_order_release);
  record_tier(ops);
  return true;
}

}  // namespace rb
