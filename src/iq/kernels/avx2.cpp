// AVX2 kernel tier. Compiled with -mavx2 on x86 hosts; only reachable
// after dispatch.cpp verified CPU support, so no function here may be
// called on a non-AVX2 machine. Bit-exact against scalar.cpp: the vector
// ops used (abs/max/adds/packs/shifts) have exactly the scalar reference
// semantics, and the odd-width bit interleave reuses the shared word
// packer on vector-computed mantissas.
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include "iq/kernels/bitpack.h"
#include "iq/kernels/tiers.h"

namespace rb::iqk {
namespace {

inline const std::int16_t* as_i16(const IqSample* s) {
  return reinterpret_cast<const std::int16_t*>(s);
}
inline std::int16_t* as_i16(IqSample* s) {
  return reinterpret_cast<std::int16_t*>(s);
}

// Byte-swap every u16 lane (wire format is big-endian, hosts here are
// little-endian); lane-local shuffle so the 256-bit variant is legal.
inline __m128i bswap16_128(__m128i v) {
  const __m128i sh = _mm_setr_epi8(1, 0, 3, 2, 5, 4, 7, 6, 9, 8, 11, 10, 13,
                                   12, 15, 14);
  return _mm_shuffle_epi8(v, sh);
}
inline __m256i bswap16_256(__m256i v) {
  const __m256i sh = _mm256_setr_epi8(
      1, 0, 3, 2, 5, 4, 7, 6, 9, 8, 11, 10, 13, 12, 15, 14, 1, 0, 3, 2, 5, 4,
      7, 6, 9, 8, 11, 10, 13, 12, 15, 14);
  return _mm256_shuffle_epi8(v, sh);
}

std::uint32_t max_magnitude_avx2(const IqSample* s, std::size_t n) {
  const std::int16_t* p = as_i16(s);
  const std::size_t len = 2 * n;
  std::size_t k = 0;
  __m256i vmax = _mm256_setzero_si256();
  for (; k + 16 <= len; k += 16) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + k));
    // abs_epi16(INT16_MIN) stays 0x8000, which the unsigned max reads as
    // 32768 - exactly the scalar |INT16_MIN|.
    vmax = _mm256_max_epu16(vmax, _mm256_abs_epi16(v));
  }
  __m128i x = _mm_max_epu16(_mm256_castsi256_si128(vmax),
                            _mm256_extracti128_si256(vmax, 1));
  // Horizontal unsigned max via minpos on the complement.
  const __m128i inv = _mm_xor_si128(x, _mm_set1_epi16(-1));
  std::uint32_t m =
      0xffffu ^ std::uint32_t(_mm_extract_epi16(_mm_minpos_epu16(inv), 0));
  for (; k < len; ++k) {
    const std::int32_t v = p[k];
    const std::uint32_t a = std::uint32_t(v < 0 ? -v : v);
    if (a > m) m = a;
  }
  return m;
}

/// (v >> shift) for one PRB's 24 int16 components.
inline void mantissas24(const std::int16_t* p, unsigned shift,
                        std::int16_t* out24) {
  const __m128i cnt = _mm_cvtsi32_si128(int(shift));
  const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  const __m128i b =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out24),
                      _mm256_sra_epi16(a, cnt));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out24 + 16),
                   _mm_sra_epi16(b, cnt));
}

void pack_mantissas_avx2(const IqSample* s, std::size_t n, int width,
                         unsigned shift, std::uint8_t* out) {
  const std::int16_t* p = as_i16(s);
  alignas(32) std::int16_t m[24];
  std::size_t rem = n;
  while (rem >= 12) {
    mantissas24(p, shift, m);
    switch (width) {
      case 8:
        for (int j = 0; j < 24; ++j) out[j] = std::uint8_t(m[j]);
        out += 24;
        break;
      case 16: {
        const __m256i a =
            _mm256_load_si256(reinterpret_cast<const __m256i*>(m));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), bswap16_256(a));
        const __m128i b =
            _mm_load_si128(reinterpret_cast<const __m128i*>(m + 16));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 32),
                         bswap16_128(b));
        out += 48;
        break;
      }
      default:
        pack_words(m, 24, width, out);
        out += (24u * unsigned(width)) / 8;  // one PRB is byte-aligned
    }
    p += 24;
    rem -= 12;
  }
  if (rem > 0) {
    for (std::size_t k = 0; k < 2 * rem; ++k)
      m[k] = std::int16_t(std::int32_t(p[k]) >> shift);
    pack_words(m, 2 * rem, width, out);
  }
}

/// sat16(m * 2^shift) for 8 mantissas: widen, shift, saturating re-pack.
inline void shift_sat8(const std::int16_t* m8, unsigned shift,
                       std::int16_t* out) {
  const __m128i v = _mm_load_si128(reinterpret_cast<const __m128i*>(m8));
  if (shift == 0) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out), v);
    return;
  }
  __m256i w = _mm256_cvtepi16_epi32(v);
  w = _mm256_sll_epi32(w, _mm_cvtsi32_si128(int(shift)));
  const __m128i lo = _mm256_castsi256_si128(w);
  const __m128i hi = _mm256_extracti128_si256(w, 1);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), _mm_packs_epi32(lo, hi));
}

void unpack_mantissas_avx2(const std::uint8_t* in, std::size_t n, int width,
                           unsigned shift, IqSample* out) {
  std::int16_t* o = as_i16(out);
  alignas(32) std::int16_t m[24];
  std::size_t rem = n;
  while (rem >= 12) {
    switch (width) {
      case 8: {
        const __m128i b0 =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
        _mm256_store_si256(reinterpret_cast<__m256i*>(m),
                           _mm256_cvtepi8_epi16(b0));
        const __m128i b1 =
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(in + 16));
        _mm_store_si128(reinterpret_cast<__m128i*>(m + 16),
                        _mm_cvtepi8_epi16(b1));
        in += 24;
        break;
      }
      case 16: {
        const __m256i a =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in));
        _mm256_store_si256(reinterpret_cast<__m256i*>(m), bswap16_256(a));
        const __m128i b =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 32));
        _mm_store_si128(reinterpret_cast<__m128i*>(m + 16), bswap16_128(b));
        in += 48;
        break;
      }
      default:
        unpack_words(in, 24, width, m);
        in += (24u * unsigned(width)) / 8;
    }
    shift_sat8(m, shift, o);
    shift_sat8(m + 8, shift, o + 8);
    shift_sat8(m + 16, shift, o + 16);
    o += 24;
    rem -= 12;
  }
  if (rem > 0) {
    unpack_words(in, 2 * rem, width, m);
    for (std::size_t k = 0; k < 2 * rem; ++k)
      o[k] = sat16(std::int32_t(std::uint32_t(std::int32_t(m[k])) << shift));
  }
}

void accumulate_sat_avx2(IqSample* dst, const IqSample* src, std::size_t n) {
  std::int16_t* d = as_i16(dst);
  const std::int16_t* s = as_i16(src);
  const std::size_t len = 2 * n;
  std::size_t k = 0;
  for (; k + 16 <= len; k += 16) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + k));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + k));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + k),
                        _mm256_adds_epi16(a, b));
  }
  for (; k < len; ++k) d[k] = sat16(std::int32_t(d[k]) + s[k]);
}

/// Both CompMethod::None directions are the same u16 byte swap.
inline void bswap16_stream(std::uint8_t* dst, const std::uint8_t* src,
                           std::size_t bytes) {
  std::size_t k = 0;
  for (; k + 32 <= bytes; k += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + k));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + k), bswap16_256(v));
  }
  for (; k + 2 <= bytes; k += 2) {
    dst[k] = src[k + 1];
    dst[k + 1] = src[k];
  }
}

void pack_none_avx2(const IqSample* s, std::size_t n, std::uint8_t* out) {
  bswap16_stream(out, reinterpret_cast<const std::uint8_t*>(s), 4 * n);
}

void unpack_none_avx2(const std::uint8_t* in, std::size_t n, IqSample* out) {
  bswap16_stream(reinterpret_cast<std::uint8_t*>(out), in, 4 * n);
}

constexpr IqKernelOps kAvx2Ops{
    KernelTier::Avx2,      max_magnitude_avx2, pack_mantissas_avx2,
    unpack_mantissas_avx2, accumulate_sat_avx2, pack_none_avx2,
    unpack_none_avx2,
};

}  // namespace

const IqKernelOps* avx2_ops() { return &kAvx2Ops; }

}  // namespace rb::iqk

#else  // non-x86 build: tier not compiled in.

#include "iq/kernels/tiers.h"

namespace rb::iqk {
const IqKernelOps* avx2_ops() { return nullptr; }
}  // namespace rb::iqk

#endif
