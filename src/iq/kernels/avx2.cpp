// AVX2 kernel tier. Compiled with -mavx2 on x86 hosts; only reachable
// after dispatch.cpp verified CPU support, so no function here may be
// called on a non-AVX2 machine. Bit-exact against scalar.cpp: the vector
// ops used (abs/max/adds/packs/shifts) have exactly the scalar reference
// semantics, and the odd-width bit interleave reuses the shared word
// packer on vector-computed mantissas.
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstring>

#include "iq/kernels/bitpack.h"
#include "iq/kernels/noise.h"
#include "iq/kernels/tiers.h"

namespace rb::iqk {
namespace {

inline const std::int16_t* as_i16(const IqSample* s) {
  return reinterpret_cast<const std::int16_t*>(s);
}
inline std::int16_t* as_i16(IqSample* s) {
  return reinterpret_cast<std::int16_t*>(s);
}

// Byte-swap every u16 lane (wire format is big-endian, hosts here are
// little-endian); lane-local shuffle so the 256-bit variant is legal.
inline __m128i bswap16_128(__m128i v) {
  const __m128i sh = _mm_setr_epi8(1, 0, 3, 2, 5, 4, 7, 6, 9, 8, 11, 10, 13,
                                   12, 15, 14);
  return _mm_shuffle_epi8(v, sh);
}
inline __m256i bswap16_256(__m256i v) {
  const __m256i sh = _mm256_setr_epi8(
      1, 0, 3, 2, 5, 4, 7, 6, 9, 8, 11, 10, 13, 12, 15, 14, 1, 0, 3, 2, 5, 4,
      7, 6, 9, 8, 11, 10, 13, 12, 15, 14);
  return _mm256_shuffle_epi8(v, sh);
}

std::uint32_t max_magnitude_avx2(const IqSample* s, std::size_t n) {
  const std::int16_t* p = as_i16(s);
  const std::size_t len = 2 * n;
  std::size_t k = 0;
  __m256i vmax = _mm256_setzero_si256();
  for (; k + 16 <= len; k += 16) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + k));
    // abs_epi16(INT16_MIN) stays 0x8000, which the unsigned max reads as
    // 32768 - exactly the scalar |INT16_MIN|.
    vmax = _mm256_max_epu16(vmax, _mm256_abs_epi16(v));
  }
  __m128i x = _mm_max_epu16(_mm256_castsi256_si128(vmax),
                            _mm256_extracti128_si256(vmax, 1));
  // Horizontal unsigned max via minpos on the complement.
  const __m128i inv = _mm_xor_si128(x, _mm_set1_epi16(-1));
  std::uint32_t m =
      0xffffu ^ std::uint32_t(_mm_extract_epi16(_mm_minpos_epu16(inv), 0));
  for (; k < len; ++k) {
    const std::int32_t v = p[k];
    const std::uint32_t a = std::uint32_t(v < 0 ? -v : v);
    if (a > m) m = a;
  }
  return m;
}

/// Width-9 vector pack: 16 mantissas -> two 72-bit groups (18 bytes).
/// Adjacent 9-bit fields are funneled pairwise with madd (v_even * 512 +
/// v_odd fits 18 bits), pairs into 36-bit quarters in the 64-bit lanes,
/// and the final 72-bit splice crosses the lane boundary in scalar
/// registers. Bit layout identical to detail::pack_words9.
inline void pack9_group16(__m256i v, std::uint8_t* out) {
  v = _mm256_and_si256(v, _mm256_set1_epi16(0x1ff));
  // p[i] = v[2i] << 9 | v[2i+1], one 18-bit field per 32-bit lane.
  const __m256i p = _mm256_madd_epi16(
      v, _mm256_set1_epi32((1 << 16) | 512));  // per pair: v0 * 512 + v1
  // q[j] = p[2j] << 18 | p[2j+1], one 36-bit field per 64-bit lane.
  const __m256i lo = _mm256_slli_epi64(
      _mm256_and_si256(p, _mm256_set1_epi64x(0xffffffff)), 18);
  const __m256i q = _mm256_or_si256(lo, _mm256_srli_epi64(p, 32));
  const __m128i qa = _mm256_castsi256_si128(q);
  const __m128i qb = _mm256_extracti128_si256(q, 1);
  const std::uint64_t q0 = std::uint64_t(_mm_cvtsi128_si64(qa));
  const std::uint64_t q1 = std::uint64_t(_mm_extract_epi64(qa, 1));
  const std::uint64_t q2 = std::uint64_t(_mm_cvtsi128_si64(qb));
  const std::uint64_t q3 = std::uint64_t(_mm_extract_epi64(qb, 1));
  const std::uint64_t g0 = __builtin_bswap64((q0 << 28) | (q1 >> 8));
  std::memcpy(out, &g0, 8);
  out[8] = std::uint8_t(q1);
  const std::uint64_t g1 = __builtin_bswap64((q2 << 28) | (q3 >> 8));
  std::memcpy(out + 9, &g1, 8);
  out[17] = std::uint8_t(q3);
}

/// Same funnel for one 72-bit group (8 mantissas) in SSE registers.
inline void pack9_group8(__m128i v, std::uint8_t* out) {
  v = _mm_and_si128(v, _mm_set1_epi16(0x1ff));
  const __m128i p = _mm_madd_epi16(v, _mm_set1_epi32((1 << 16) | 512));
  const __m128i lo =
      _mm_slli_epi64(_mm_and_si128(p, _mm_set1_epi64x(0xffffffff)), 18);
  const __m128i q = _mm_or_si128(lo, _mm_srli_epi64(p, 32));
  const std::uint64_t q0 = std::uint64_t(_mm_cvtsi128_si64(q));
  const std::uint64_t q1 = std::uint64_t(_mm_extract_epi64(q, 1));
  const std::uint64_t g = __builtin_bswap64((q0 << 28) | (q1 >> 8));
  std::memcpy(out, &g, 8);
  out[8] = std::uint8_t(q1);
}

/// One PRB (24 components) at width 9 with the mantissa shift fused in:
/// no int16 staging array between the shift and the bit pack.
inline void pack9_prb(const std::int16_t* p, unsigned shift,
                      std::uint8_t* out) {
  const __m128i cnt = _mm_cvtsi32_si128(int(shift));
  const __m256i a =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
  pack9_group16(_mm256_sra_epi16(a, cnt), out);
  pack9_group8(_mm_sra_epi16(b, cnt), out + 18);
}

/// Width-9 vector unpack of one 72-bit group. The window shuffle gives
/// 32-bit lane i the big-endian byte pair (b[i] << 8 | b[i+1]); value i
/// sits at bit offset i from that pair's MSB, so a per-lane variable
/// right shift of (7 - i) aligns it. Sign extension matches unpack_words.
inline __m128i unpack9_group8(const std::uint8_t* in) {
  const __m128i w = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
  const __m256i vb = _mm256_broadcastsi128_si256(w);
  const __m256i win = _mm256_shuffle_epi8(
      vb, _mm256_setr_epi8(1, 0, -1, -1, 2, 1, -1, -1, 3, 2, -1, -1, 4, 3,
                           -1, -1, 5, 4, -1, -1, 6, 5, -1, -1, 7, 6, -1, -1,
                           8, 7, -1, -1));
  __m256i x = _mm256_srlv_epi32(win, _mm256_setr_epi32(7, 6, 5, 4, 3, 2, 1, 0));
  x = _mm256_and_si256(x, _mm256_set1_epi32(0x1ff));
  const __m256i sign = _mm256_set1_epi32(0x100);
  x = _mm256_sub_epi32(_mm256_xor_si256(x, sign), sign);
  return _mm_packs_epi32(_mm256_castsi256_si128(x),
                         _mm256_extracti128_si256(x, 1));
}

/// One PRB (27 bytes) at width 9 into 24 int16 mantissas. The 16-byte
/// window loads would over-read past the third group, so the PRB is
/// staged through a padded local buffer first.
inline void unpack9_prb(const std::uint8_t* in, std::int16_t* m) {
  alignas(32) std::uint8_t buf[34];
  std::memcpy(buf, in, 27);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(m), unpack9_group8(buf));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(m + 8), unpack9_group8(buf + 9));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(m + 16),
                   unpack9_group8(buf + 18));
}

/// (v >> shift) for one PRB's 24 int16 components.
inline void mantissas24(const std::int16_t* p, unsigned shift,
                        std::int16_t* out24) {
  const __m128i cnt = _mm_cvtsi32_si128(int(shift));
  const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  const __m128i b =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out24),
                      _mm256_sra_epi16(a, cnt));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out24 + 16),
                   _mm_sra_epi16(b, cnt));
}

void pack_mantissas_avx2(const IqSample* s, std::size_t n, int width,
                         unsigned shift, std::uint8_t* out) {
  const std::int16_t* p = as_i16(s);
  alignas(32) std::int16_t m[24];
  std::size_t rem = n;
  while (rem >= 12) {
    if (width == 9) {  // BFP default width: fully vectorized, shift fused
      pack9_prb(p, shift, out);
      out += 27;
      p += 24;
      rem -= 12;
      continue;
    }
    mantissas24(p, shift, m);
    switch (width) {
      case 8:
        for (int j = 0; j < 24; ++j) out[j] = std::uint8_t(m[j]);
        out += 24;
        break;
      case 16: {
        const __m256i a =
            _mm256_load_si256(reinterpret_cast<const __m256i*>(m));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), bswap16_256(a));
        const __m128i b =
            _mm_load_si128(reinterpret_cast<const __m128i*>(m + 16));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 32),
                         bswap16_128(b));
        out += 48;
        break;
      }
      default:
        pack_words(m, 24, width, out);
        out += (24u * unsigned(width)) / 8;  // one PRB is byte-aligned
    }
    p += 24;
    rem -= 12;
  }
  if (rem > 0) {
    for (std::size_t k = 0; k < 2 * rem; ++k)
      m[k] = std::int16_t(std::int32_t(p[k]) >> shift);
    pack_words(m, 2 * rem, width, out);
  }
}

/// sat16(m * 2^shift) for 8 mantissas: widen, shift, saturating re-pack.
inline void shift_sat8(const std::int16_t* m8, unsigned shift,
                       std::int16_t* out) {
  const __m128i v = _mm_load_si128(reinterpret_cast<const __m128i*>(m8));
  if (shift == 0) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out), v);
    return;
  }
  __m256i w = _mm256_cvtepi16_epi32(v);
  w = _mm256_sll_epi32(w, _mm_cvtsi32_si128(int(shift)));
  const __m128i lo = _mm256_castsi256_si128(w);
  const __m128i hi = _mm256_extracti128_si256(w, 1);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), _mm_packs_epi32(lo, hi));
}

void unpack_mantissas_avx2(const std::uint8_t* in, std::size_t n, int width,
                           unsigned shift, IqSample* out) {
  std::int16_t* o = as_i16(out);
  alignas(32) std::int16_t m[24];
  std::size_t rem = n;
  while (rem >= 12) {
    if (width == 9) {
      unpack9_prb(in, m);
      in += 27;
      shift_sat8(m, shift, o);
      shift_sat8(m + 8, shift, o + 8);
      shift_sat8(m + 16, shift, o + 16);
      o += 24;
      rem -= 12;
      continue;
    }
    switch (width) {
      case 8: {
        const __m128i b0 =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
        _mm256_store_si256(reinterpret_cast<__m256i*>(m),
                           _mm256_cvtepi8_epi16(b0));
        const __m128i b1 =
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(in + 16));
        _mm_store_si128(reinterpret_cast<__m128i*>(m + 16),
                        _mm_cvtepi8_epi16(b1));
        in += 24;
        break;
      }
      case 16: {
        const __m256i a =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in));
        _mm256_store_si256(reinterpret_cast<__m256i*>(m), bswap16_256(a));
        const __m128i b =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 32));
        _mm_store_si128(reinterpret_cast<__m128i*>(m + 16), bswap16_128(b));
        in += 48;
        break;
      }
      default:
        unpack_words(in, 24, width, m);
        in += (24u * unsigned(width)) / 8;
    }
    shift_sat8(m, shift, o);
    shift_sat8(m + 8, shift, o + 8);
    shift_sat8(m + 16, shift, o + 16);
    o += 24;
    rem -= 12;
  }
  if (rem > 0) {
    unpack_words(in, 2 * rem, width, m);
    for (std::size_t k = 0; k < 2 * rem; ++k)
      o[k] = sat16(std::int32_t(std::uint32_t(std::int32_t(m[k])) << shift));
  }
}

void accumulate_sat_avx2(IqSample* dst, const IqSample* src, std::size_t n) {
  std::int16_t* d = as_i16(dst);
  const std::int16_t* s = as_i16(src);
  const std::size_t len = 2 * n;
  std::size_t k = 0;
  for (; k + 16 <= len; k += 16) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + k));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + k));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + k),
                        _mm256_adds_epi16(a, b));
  }
  for (; k < len; ++k) d[k] = sat16(std::int32_t(d[k]) + s[k]);
}

/// Unsigned 32-bit x/d via the shared 2^32 reciprocal, 8 lanes. Exact
/// for x < 2^16 (see kernels/noise.h); both mul_epu32 halves share one
/// broadcast multiplier.
inline __m256i div_u16_by_magic(__m256i x, __m256i vm) {
  const __m256i pe = _mm256_mul_epu32(x, vm);
  const __m256i po = _mm256_mul_epu32(_mm256_srli_epi64(x, 32), vm);
  return _mm256_blend_epi32(
      _mm256_srli_epi64(pe, 32),
      _mm256_and_si256(po, _mm256_set1_epi64x(std::int64_t(0xffffffff00000000))),
      0xaa);
}

void synth_noise_prb_avx2(std::uint32_t* rng, std::int32_t a,
                          IqSample* out) {
  const std::uint32_t r0 = *rng;
  *rng = kLcgJump.mul[kPrbDraws - 1] * r0 + kLcgJump.add[kPrbDraws - 1];
  const __m256i vr0 = _mm256_set1_epi32(std::int32_t(r0));
  const __m256i va = _mm256_set1_epi32(a);
  const std::uint32_t d = std::uint32_t(2 * a + 1);
  __m256i res[3];
  for (int g = 0; g < 3; ++g) {
    const __m256i mul = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(kLcgJump.mul + 8 * g));
    const __m256i add = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(kLcgJump.add + 8 * g));
    const __m256i draw =
        _mm256_add_epi32(_mm256_mullo_epi32(mul, vr0), add);
    const __m256i x = _mm256_srli_epi32(draw, 16);
    res[g] = x;
  }
  if (d <= 0xffffu) {
    const __m256i vm = _mm256_set1_epi32(
        std::int32_t((std::uint64_t(1) << 32) / d + 1));
    const __m256i vd = _mm256_set1_epi32(std::int32_t(d));
    for (auto& x : res) {
      const __m256i q = div_u16_by_magic(x, vm);
      x = _mm256_sub_epi32(x, _mm256_mullo_epi32(q, vd));
    }
  }
  for (auto& x : res) x = _mm256_sub_epi32(x, va);
  // 24 int32 -> 24 saturated int16 components in draw order.
  const __m256i p01 = _mm256_permute4x64_epi64(
      _mm256_packs_epi32(res[0], res[1]), 0xd8);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), p01);
  const __m128i p2 = _mm_packs_epi32(_mm256_castsi256_si128(res[2]),
                                     _mm256_extracti128_si256(res[2], 1));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 8), p2);
}

/// Both CompMethod::None directions are the same u16 byte swap.
inline void bswap16_stream(std::uint8_t* dst, const std::uint8_t* src,
                           std::size_t bytes) {
  std::size_t k = 0;
  for (; k + 32 <= bytes; k += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + k));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + k), bswap16_256(v));
  }
  for (; k + 2 <= bytes; k += 2) {
    dst[k] = src[k + 1];
    dst[k + 1] = src[k];
  }
}

void pack_none_avx2(const IqSample* s, std::size_t n, std::uint8_t* out) {
  bswap16_stream(out, reinterpret_cast<const std::uint8_t*>(s), 4 * n);
}

void unpack_none_avx2(const std::uint8_t* in, std::size_t n, IqSample* out) {
  bswap16_stream(reinterpret_cast<std::uint8_t*>(out), in, 4 * n);
}

constexpr IqKernelOps kAvx2Ops{
    KernelTier::Avx2,      max_magnitude_avx2,  pack_mantissas_avx2,
    unpack_mantissas_avx2, accumulate_sat_avx2, pack_none_avx2,
    unpack_none_avx2,      synth_noise_prb_avx2,
};

}  // namespace

const IqKernelOps* avx2_ops() { return &kAvx2Ops; }

}  // namespace rb::iqk

#else  // non-x86 build: tier not compiled in.

#include "iq/kernels/tiers.h"

namespace rb::iqk {
const IqKernelOps* avx2_ops() { return nullptr; }
}  // namespace rb::iqk

#endif
