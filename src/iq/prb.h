// PRB-granularity payload kernels built on the BFP codec.
//
// These are the A4 (payload modification) primitives the reference
// middleboxes use:
//  * merge_compressed  - DAS uplink: element-wise sum of N compressed
//    payloads (decompress -> accumulate -> recompress).
//  * copy_prbs_aligned - RU sharing with aligned grids: move whole
//    compressed PRBs between payloads without touching mantissas.
//  * copy_prbs_shifted - RU sharing with misaligned grids: the samples must
//    be decompressed, shifted by a half-PRB sub-carrier offset and
//    recompressed (the expensive path the paper's Figure 6 motivates
//    avoiding via the Appendix A.1.1 alignment formula).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/iq_stats.h"
#include "iq/bfp.h"

namespace rb {

/// Scratch space reused across calls to avoid per-packet allocation on the
/// datapath. One instance per middlebox worker; growth is steady-state
/// free (capacity sticks at the largest grid seen) and reported via the
/// arena high-water mark.
struct PrbScratch {
  std::vector<IqSample> a;
  std::vector<IqSample> b;

  void ensure(std::size_t n) {
    if (a.size() < n) a.resize(n);
    if (b.size() < n) b.resize(n);
    iqstats::raise_hwm(iqstats::arena_samples_hwm(), a.size());
  }
};

/// Element-wise sum of `srcs` compressed payloads covering `n_prb` PRBs
/// each, recompressed into `dst`. Returns bytes written or 0 on error.
std::size_t merge_compressed(std::span<const std::span<const std::uint8_t>> srcs,
                             int n_prb, const CompConfig& cfg,
                             std::span<std::uint8_t> dst, PrbScratch& scratch);

/// Mixed-width merge: each source payload is decoded at its own
/// CompConfig (per-packet udCompHdr) and the sum is recompressed at
/// `dst_cfg`. `src_cfgs.size()` must equal `srcs.size()`. Returns bytes
/// written or 0 on error.
std::size_t merge_compressed(std::span<const std::span<const std::uint8_t>> srcs,
                             std::span<const CompConfig> src_cfgs, int n_prb,
                             const CompConfig& dst_cfg,
                             std::span<std::uint8_t> dst, PrbScratch& scratch);

/// Copy `n_prb` compressed PRBs from src (starting at src_prb within the
/// src payload) into dst (starting at dst_prb within the dst payload).
/// Grids are aligned so compressed PRBs are moved verbatim - no codec work.
/// Returns false if either payload is too small.
bool copy_prbs_aligned(std::span<const std::uint8_t> src, int src_prb,
                       std::span<std::uint8_t> dst, int dst_prb, int n_prb,
                       const CompConfig& cfg);

/// Copy with a half-PRB (6 sub-carrier) misalignment between src and dst
/// grids: decompress, shift, recompress. `shift_sc` in [1, 11].
/// Returns false on error.
bool copy_prbs_shifted(std::span<const std::uint8_t> src, int src_prb,
                       std::span<std::uint8_t> dst, int dst_prb, int n_prb,
                       int shift_sc, const CompConfig& cfg,
                       PrbScratch& scratch);

/// Zero-fill `n_prb` PRBs of a compressed payload (exponent 0, zero
/// mantissas) - used to blank unowned spectrum in RU sharing.
bool zero_prbs(std::span<std::uint8_t> dst, int dst_prb, int n_prb,
               const CompConfig& cfg);

}  // namespace rb
