#include "iq/bfp.h"

#include <cstring>

#include "iq/kernels/kernels.h"

namespace rb {
namespace {

constexpr bool width_valid(int w) { return w >= 2 && w <= 16; }

}  // namespace

std::uint8_t bfp_exponent(IqConstSpan prb, int iq_width) {
  // Smallest exponent e such that every component, arithmetically shifted
  // right by e, fits in a signed iq_width-bit mantissa.
  const std::uint32_t limit = (1u << (iq_width - 1)) - 1;
  std::uint32_t m = iq_ops().max_magnitude(prb.data(), prb.size());
  std::uint8_t e = 0;
  while ((m >> e) > limit && e < 15) ++e;
  return e;
}

std::optional<BfpPrb> bfp_compress_prb(IqConstSpan prb, int iq_width,
                                       std::span<std::uint8_t> out) {
  if (!width_valid(iq_width) || prb.size() < kScPerPrb) return std::nullopt;
  const std::size_t need =
      1 + (std::size_t(2 * kScPerPrb) * unsigned(iq_width) + 7) / 8;
  if (out.size() < need) return std::nullopt;

  const std::uint8_t e = bfp_exponent(prb.first(kScPerPrb), iq_width);
  out[0] = e;  // upper nibble reserved (0), lower nibble exponent
  std::memset(out.data() + 1, 0, need - 1);
  iq_ops().pack_mantissas(prb.data(), kScPerPrb, iq_width, e, out.data() + 1);
  return BfpPrb{e, need};
}

std::optional<std::size_t> bfp_decompress_prb(std::span<const std::uint8_t> in,
                                              int iq_width, IqSpan out) {
  if (!width_valid(iq_width) || out.size() < kScPerPrb) return std::nullopt;
  const std::size_t need =
      1 + (std::size_t(2 * kScPerPrb) * unsigned(iq_width) + 7) / 8;
  if (in.size() < need) return std::nullopt;

  const std::uint8_t e = std::uint8_t(in[0] & 0x0f);
  iq_ops().unpack_mantissas(in.data() + 1, kScPerPrb, iq_width, e, out.data());
  return need;
}

std::optional<std::size_t> compress_prbs(IqConstSpan samples,
                                         const CompConfig& cfg,
                                         std::span<std::uint8_t> out) {
  const std::size_t n_prb = samples.size() / kScPerPrb;
  if (samples.size() % kScPerPrb != 0) return std::nullopt;
  std::size_t off = 0;
  if (cfg.method == CompMethod::None) {
    const std::size_t need = samples.size() * 4;
    if (out.size() < need) return std::nullopt;
    iq_ops().pack_none(samples.data(), samples.size(), out.data());
    return need;
  }
  for (std::size_t p = 0; p < n_prb; ++p) {
    auto r = bfp_compress_prb(samples.subspan(p * kScPerPrb, kScPerPrb),
                              cfg.iq_width, out.subspan(off));
    if (!r) return std::nullopt;
    off += r->bytes;
  }
  return off;
}

std::optional<std::size_t> decompress_prbs(std::span<const std::uint8_t> in,
                                           int n_prb, const CompConfig& cfg,
                                           IqSpan out) {
  const std::size_t n_samples = std::size_t(n_prb) * kScPerPrb;
  if (out.size() < n_samples) return std::nullopt;
  if (cfg.method == CompMethod::None) {
    const std::size_t need = n_samples * 4;
    if (in.size() < need) return std::nullopt;
    iq_ops().unpack_none(in.data(), n_samples, out.data());
    return need;
  }
  std::size_t off = 0;
  for (int p = 0; p < n_prb; ++p) {
    auto consumed = bfp_decompress_prb(
        in.subspan(off), cfg.iq_width,
        out.subspan(std::size_t(p) * kScPerPrb, kScPerPrb));
    if (!consumed) return std::nullopt;
    off += *consumed;
  }
  return off;
}

}  // namespace rb
