#include "iq/bfp.h"

#include "common/bytes.h"

namespace rb {
namespace {

constexpr bool width_valid(int w) { return w >= 2 && w <= 16; }

/// Largest magnitude across the 24 components of a PRB.
std::uint32_t max_magnitude(IqConstSpan prb) {
  std::uint32_t m = 0;
  for (const auto& s : prb) {
    std::uint32_t ai = std::uint32_t(s.i < 0 ? -(std::int32_t(s.i)) : s.i);
    std::uint32_t aq = std::uint32_t(s.q < 0 ? -(std::int32_t(s.q)) : s.q);
    if (ai > m) m = ai;
    if (aq > m) m = aq;
  }
  return m;
}

}  // namespace

std::uint8_t bfp_exponent(IqConstSpan prb, int iq_width) {
  // Smallest exponent e such that every component, arithmetically shifted
  // right by e, fits in a signed iq_width-bit mantissa.
  const std::uint32_t limit = (1u << (iq_width - 1)) - 1;
  std::uint32_t m = max_magnitude(prb);
  std::uint8_t e = 0;
  while ((m >> e) > limit && e < 15) ++e;
  return e;
}

std::optional<BfpPrb> bfp_compress_prb(IqConstSpan prb, int iq_width,
                                       std::span<std::uint8_t> out) {
  if (!width_valid(iq_width) || prb.size() < kScPerPrb) return std::nullopt;
  const std::size_t need =
      1 + (std::size_t(2 * kScPerPrb) * unsigned(iq_width) + 7) / 8;
  if (out.size() < need) return std::nullopt;

  const std::uint8_t e = bfp_exponent(prb.first(kScPerPrb), iq_width);
  out[0] = e;  // upper nibble reserved (0), lower nibble exponent
  for (std::size_t k = 1; k < need; ++k) out[k] = 0;

  BitWriter bw(out.subspan(1));
  for (int k = 0; k < kScPerPrb; ++k) {
    bw.put(std::int32_t(prb[k].i) >> e, iq_width);
    bw.put(std::int32_t(prb[k].q) >> e, iq_width);
  }
  if (!bw.ok()) return std::nullopt;
  return BfpPrb{e, need};
}

std::optional<std::size_t> bfp_decompress_prb(std::span<const std::uint8_t> in,
                                              int iq_width, IqSpan out) {
  if (!width_valid(iq_width) || out.size() < kScPerPrb) return std::nullopt;
  const std::size_t need =
      1 + (std::size_t(2 * kScPerPrb) * unsigned(iq_width) + 7) / 8;
  if (in.size() < need) return std::nullopt;

  const std::uint8_t e = std::uint8_t(in[0] & 0x0f);
  BitReader br(in.subspan(1));
  for (int k = 0; k < kScPerPrb; ++k) {
    std::int32_t i = br.get(iq_width) << e;
    std::int32_t q = br.get(iq_width) << e;
    out[k] = IqSample{sat16(i), sat16(q)};
  }
  if (!br.ok()) return std::nullopt;
  return need;
}

std::optional<std::size_t> compress_prbs(IqConstSpan samples,
                                         const CompConfig& cfg,
                                         std::span<std::uint8_t> out) {
  const std::size_t n_prb = samples.size() / kScPerPrb;
  if (samples.size() % kScPerPrb != 0) return std::nullopt;
  std::size_t off = 0;
  if (cfg.method == CompMethod::None) {
    BufWriter w(out);
    for (const auto& s : samples) {
      w.u16(std::uint16_t(s.i));
      w.u16(std::uint16_t(s.q));
    }
    if (!w.ok()) return std::nullopt;
    return w.written();
  }
  for (std::size_t p = 0; p < n_prb; ++p) {
    auto r = bfp_compress_prb(samples.subspan(p * kScPerPrb, kScPerPrb),
                              cfg.iq_width, out.subspan(off));
    if (!r) return std::nullopt;
    off += r->bytes;
  }
  return off;
}

std::optional<std::size_t> decompress_prbs(std::span<const std::uint8_t> in,
                                           int n_prb, const CompConfig& cfg,
                                           IqSpan out) {
  if (out.size() < std::size_t(n_prb) * kScPerPrb) return std::nullopt;
  if (cfg.method == CompMethod::None) {
    BufReader r(in);
    for (int k = 0; k < n_prb * kScPerPrb; ++k) {
      out[std::size_t(k)].i = std::int16_t(r.u16());
      out[std::size_t(k)].q = std::int16_t(r.u16());
    }
    if (!r.ok()) return std::nullopt;
    return std::size_t(n_prb) * kScPerPrb * 4;
  }
  std::size_t off = 0;
  for (int p = 0; p < n_prb; ++p) {
    auto consumed = bfp_decompress_prb(
        in.subspan(off), cfg.iq_width,
        out.subspan(std::size_t(p) * kScPerPrb, kScPerPrb));
    if (!consumed) return std::nullopt;
    off += *consumed;
  }
  return off;
}

}  // namespace rb
