// IQ sample value types.
//
// On the fronthaul, IQ samples are fixed-point complex numbers; each sample
// maps to one sub-carrier of the OFDM frequency grid and 12 consecutive
// samples form one PRB (see the paper's Figure 2).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <span>

#include "common/units.h"

namespace rb {

/// One fixed-point complex sample. Uncompressed wire width is 16+16 bits
/// (the paper's "32-bit IQ sample").
struct IqSample {
  std::int16_t i = 0;
  std::int16_t q = 0;

  friend bool operator==(const IqSample&, const IqSample&) = default;

  double power() const {
    return double(i) * double(i) + double(q) * double(q);
  }
};

/// A PRB worth of samples (12 sub-carriers).
using PrbSamples = std::array<IqSample, kScPerPrb>;

/// Mutable / const views over a contiguous run of samples.
using IqSpan = std::span<IqSample>;
using IqConstSpan = std::span<const IqSample>;

/// Mean per-sample power of a run of samples (0 for an empty span).
inline double mean_power(IqConstSpan s) {
  if (s.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& x : s) acc += x.power();
  return acc / double(s.size());
}

/// RMS amplitude of a run of samples.
inline double rms(IqConstSpan s) { return std::sqrt(mean_power(s)); }

/// Saturating int16 conversion used whenever samples are combined.
inline std::int16_t sat16(std::int32_t v) {
  if (v > 32767) return 32767;
  if (v < -32768) return -32768;
  return std::int16_t(v);
}

/// Element-wise saturating sum: dst[k] += src[k]. This is the DAS uplink
/// combine kernel (paper section 4.1): summing per-sub-carrier signals of
/// several RUs into one stream.
inline void accumulate(IqSpan dst, IqConstSpan src) {
  const std::size_t n = dst.size() < src.size() ? dst.size() : src.size();
  for (std::size_t k = 0; k < n; ++k) {
    dst[k].i = sat16(std::int32_t(dst[k].i) + src[k].i);
    dst[k].q = sat16(std::int32_t(dst[k].q) + src[k].q);
  }
}

}  // namespace rb
