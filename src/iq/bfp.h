// Block Floating Point (BFP) compression, O-RAN WG4 CUS annex A.1.
//
// BFP compresses each PRB independently: one 4-bit exponent shared by the
// PRB's 24 mantissas (12 I + 12 Q), each truncated to `iq_width` bits.
// A 1-byte udCompParam header carrying the exponent precedes the packed
// mantissas on the wire. This is the compression scheme all the RAN stacks
// studied by the paper use, and the exponent is what Algorithm 1 (PRB
// monitoring) reads without decompressing.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "iq/iq.h"

namespace rb {

/// O-RAN user-data compression methods (udCompHdr.udCompMeth).
enum class CompMethod : std::uint8_t {
  None = 0,            // 16-bit fixed point, no compression header
  BlockFloatingPoint = 1,
};

/// Compression configuration carried in udCompHdr.
struct CompConfig {
  CompMethod method = CompMethod::BlockFloatingPoint;
  int iq_width = 9;  // mantissa bits per I or Q component (1..16)

  friend bool operator==(const CompConfig&, const CompConfig&) = default;

  /// On-wire bytes for one compressed PRB (header + packed mantissas).
  std::size_t prb_bytes() const {
    if (method == CompMethod::None) return std::size_t(kScPerPrb) * 4;
    return 1 + (std::size_t(2 * kScPerPrb) * unsigned(iq_width) + 7) / 8;
  }

  std::uint8_t ud_comp_hdr() const {
    return std::uint8_t(((iq_width & 0xf) << 4) |
                        (std::uint8_t(method) & 0xf));
  }
  static CompConfig from_ud_comp_hdr(std::uint8_t hdr) {
    CompConfig c;
    c.iq_width = (hdr >> 4) & 0xf;
    if (c.iq_width == 0) c.iq_width = 16;
    c.method = static_cast<CompMethod>(hdr & 0xf);
    return c;
  }
};

/// Result of compressing one PRB.
struct BfpPrb {
  std::uint8_t exponent = 0;
  std::size_t bytes = 0;  // bytes written including the udCompParam header
};

/// Compute the BFP exponent for a PRB without producing mantissas.
/// This is the lightweight primitive Algorithm 1 relies on.
std::uint8_t bfp_exponent(IqConstSpan prb, int iq_width);

/// Compress one PRB (12 samples) into `out`. Layout: 1-byte udCompParam
/// (low nibble = exponent) followed by ceil(24*w/8) bytes of mantissas,
/// I before Q per sample, in sub-carrier order.
/// Returns nullopt if `out` is too small or the width is invalid.
std::optional<BfpPrb> bfp_compress_prb(IqConstSpan prb, int iq_width,
                                       std::span<std::uint8_t> out);

/// Decompress one PRB from `in` into 12 samples. Returns consumed bytes,
/// or nullopt on truncation/invalid width.
std::optional<std::size_t> bfp_decompress_prb(std::span<const std::uint8_t> in,
                                              int iq_width, IqSpan out);

/// Read only the exponent of an on-wire compressed PRB (no mantissa work).
inline std::uint8_t bfp_wire_exponent(std::span<const std::uint8_t> in) {
  return in.empty() ? 0 : std::uint8_t(in[0] & 0x0f);
}

/// Exponent threshold separating signal-level PRBs (amplitude ~ 1e4 at
/// int16 scale) from noise/idle ones, for a given mantissa width: wider
/// mantissas absorb more amplitude before shifting, so the threshold
/// shifts down with the width (exp(signal) ~ 15 - W, exp(noise) ~ 11 - W).
constexpr std::uint8_t energy_exponent_threshold(int iq_width) {
  const int thr = 12 - iq_width;
  return std::uint8_t(thr < 1 ? 1 : thr);
}

/// Compress a run of whole PRBs; returns total bytes or nullopt on error.
std::optional<std::size_t> compress_prbs(IqConstSpan samples,
                                         const CompConfig& cfg,
                                         std::span<std::uint8_t> out);

/// Decompress a run of whole PRBs; `out` must hold n_prb * 12 samples.
std::optional<std::size_t> decompress_prbs(std::span<const std::uint8_t> in,
                                           int n_prb, const CompConfig& cfg,
                                           IqSpan out);

}  // namespace rb
