#include "iq/prb.h"

#include <cstring>

#include "iq/kernels/kernels.h"

namespace rb {

std::size_t merge_compressed(std::span<const std::span<const std::uint8_t>> srcs,
                             int n_prb, const CompConfig& cfg,
                             std::span<std::uint8_t> dst, PrbScratch& scratch) {
  if (srcs.empty() || n_prb <= 0) return 0;
  const std::size_t n_samples = std::size_t(n_prb) * kScPerPrb;
  scratch.ensure(n_samples);
  IqSpan acc(scratch.a.data(), n_samples);
  IqSpan tmp(scratch.b.data(), n_samples);

  if (!decompress_prbs(srcs[0], n_prb, cfg, acc)) return 0;
  for (std::size_t s = 1; s < srcs.size(); ++s) {
    if (!decompress_prbs(srcs[s], n_prb, cfg, tmp)) return 0;
    iq_ops().accumulate_sat(acc.data(), tmp.data(), n_samples);
  }
  auto written = compress_prbs(IqConstSpan(acc.data(), n_samples), cfg, dst);
  return written.value_or(0);
}

std::size_t merge_compressed(std::span<const std::span<const std::uint8_t>> srcs,
                             std::span<const CompConfig> src_cfgs, int n_prb,
                             const CompConfig& dst_cfg,
                             std::span<std::uint8_t> dst, PrbScratch& scratch) {
  if (srcs.empty() || n_prb <= 0 || src_cfgs.size() != srcs.size()) return 0;
  const std::size_t n_samples = std::size_t(n_prb) * kScPerPrb;
  scratch.ensure(n_samples);
  IqSpan acc(scratch.a.data(), n_samples);
  IqSpan tmp(scratch.b.data(), n_samples);

  if (!decompress_prbs(srcs[0], n_prb, src_cfgs[0], acc)) return 0;
  for (std::size_t s = 1; s < srcs.size(); ++s) {
    if (!decompress_prbs(srcs[s], n_prb, src_cfgs[s], tmp)) return 0;
    iq_ops().accumulate_sat(acc.data(), tmp.data(), n_samples);
  }
  auto written = compress_prbs(IqConstSpan(acc.data(), n_samples), dst_cfg, dst);
  return written.value_or(0);
}

bool copy_prbs_aligned(std::span<const std::uint8_t> src, int src_prb,
                       std::span<std::uint8_t> dst, int dst_prb, int n_prb,
                       const CompConfig& cfg) {
  const std::size_t prb_sz = cfg.prb_bytes();
  const std::size_t src_off = std::size_t(src_prb) * prb_sz;
  const std::size_t dst_off = std::size_t(dst_prb) * prb_sz;
  const std::size_t len = std::size_t(n_prb) * prb_sz;
  if (src_prb < 0 || dst_prb < 0 || n_prb < 0) return false;
  if (src_off + len > src.size() || dst_off + len > dst.size()) return false;
  std::memcpy(dst.data() + dst_off, src.data() + src_off, len);
  return true;
}

bool copy_prbs_shifted(std::span<const std::uint8_t> src, int src_prb,
                       std::span<std::uint8_t> dst, int dst_prb, int n_prb,
                       int shift_sc, const CompConfig& cfg,
                       PrbScratch& scratch) {
  if (shift_sc < 1 || shift_sc >= kScPerPrb || n_prb <= 0) return false;
  const std::size_t prb_sz = cfg.prb_bytes();
  const std::size_t src_off = std::size_t(src_prb) * prb_sz;
  if (src_off + std::size_t(n_prb) * prb_sz > src.size()) return false;

  // Decompress the source PRBs, then write them back shifted by shift_sc
  // sub-carriers into the destination grid. The shifted run straddles
  // n_prb + 1 destination PRBs; the destination payload must already hold
  // valid compressed PRBs (we merge into them sample-wise).
  const std::size_t n_samples = std::size_t(n_prb) * kScPerPrb;
  scratch.ensure(n_samples + kScPerPrb);
  IqSpan in(scratch.a.data(), n_samples);
  if (!decompress_prbs(src.subspan(src_off), n_prb, cfg, in)) return false;

  const int dst_prbs = n_prb + 1;
  const std::size_t dst_off = std::size_t(dst_prb) * prb_sz;
  if (dst_off + std::size_t(dst_prbs) * prb_sz > dst.size()) return false;

  IqSpan grid(scratch.b.data(), std::size_t(dst_prbs) * kScPerPrb);
  if (!decompress_prbs(dst.subspan(dst_off), dst_prbs, cfg, grid))
    return false;
  for (std::size_t k = 0; k < n_samples; ++k)
    grid[std::size_t(shift_sc) + k] = in[k];
  auto written =
      compress_prbs(IqConstSpan(grid.data(), grid.size()), cfg,
                    dst.subspan(dst_off, std::size_t(dst_prbs) * prb_sz));
  return written.has_value();
}

bool zero_prbs(std::span<std::uint8_t> dst, int dst_prb, int n_prb,
               const CompConfig& cfg) {
  const std::size_t prb_sz = cfg.prb_bytes();
  const std::size_t off = std::size_t(dst_prb) * prb_sz;
  const std::size_t len = std::size_t(n_prb) * prb_sz;
  if (dst_prb < 0 || n_prb < 0 || off + len > dst.size()) return false;
  std::memset(dst.data() + off, 0, len);
  return true;
}

}  // namespace rb
