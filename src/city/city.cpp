#include "city/city.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "common/thread_flags.h"
#include "common/timing.h"
#include "obs/obs.h"

namespace rb::city {

City::City(int workers, Scs scs, ChannelParams channel)
    : scs_(scs), channel_(channel) {
  if (workers > 0) pool_ = std::make_unique<exec::WorkerPool>(workers);
}

City::~City() {
  // Packets that crossed a shard boundary were allocated from the sending
  // shard's pool: guest-DU match windows, its port queue and any ring
  // residue must be released before cells_ (and the pools inside) die in
  // an order unrelated to who allocated what.
  for (auto& s : shares_)
    if (s->guest_du != nullptr) s->guest_du->drop_pending_rx();
  for (auto& x : xlinks_) {
    PacketPtr p;
    while (x->ab.try_pop(p)) p.reset();
    while (x->ba.try_pop(p)) p.reset();
  }
}

City::CellShard& City::add_cell(std::string name) {
  auto shard = std::make_unique<CellShard>();
  shard->name = std::move(name);
  shard->dep = std::make_unique<Deployment>(channel_, scs_);
  // Namespace everything the builders generate with the shard name, so
  // port/runtime/controller names stay unique city-wide and telemetry
  // series carry the cell label (satellite 1).
  shard->dep->name_prefix = shard->name + "/";
  shard->dep->cell_label = shard->name;
  cells_.push_back(std::move(shard));
  return *cells_.back();
}

XLink& City::add_xlink(std::string name) {
  xlinks_.push_back(std::make_unique<XLink>(std::move(name)));
  return *xlinks_.back();
}

NeutralHostShare& City::add_share(NeutralHostShare s) {
  shares_.push_back(std::make_unique<NeutralHostShare>(std::move(s)));
  return *shares_.back();
}

void City::add_guest_du(int cell_idx, DuModel& du) {
  // The guest DU is stepped at virtual slot V = T+1 while its home shard
  // runs city slot T, at the very top of the slot: its frames for V cross
  // the xlink ring at barrier T and are pumped by the host shard during
  // slot T+1 = V — on time, with SSB/PRACH periodicity unchanged. UL
  // return frames re-enter its port queue two barriers later, which is
  // why a guest DU is built with a widened UL matching window.
  DuModel* d = &du;
  const Scs scs = scs_;
  cells_[std::size_t(cell_idx)]->dep->engine.add_pre_slot_hook(
      [d, scs](std::int64_t slot, std::int64_t t0) {
        const std::int64_t dur = slot_duration_ns(scs);
        d->begin_slot(slot + 1, t0 + dur);
        d->process_rx(slot + 1, t0 + dur);
      });
}

void City::finalize() {
  if (finalized_) return;
  finalized_ = true;
  jobctx_.clear();
  jobs_.clear();
  jobctx_.reserve(cells_.size());
  const int n_workers = pool_ ? pool_->size() : 1;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    CellShard& c = *cells_[i];
    // The conductor owns observability: engines must not emit slot spans
    // or commit the collector themselves (one commit per city slot, at
    // the barrier, with every worker parked).
    c.dep->engine.set_external_obs(true);
    CellShard* cp = &c;
    c.dep->engine.add_end_slot_hook(
        [cp](std::int64_t) { ++cp->slots_run; });
    if (!c.dep->runtimes.empty()) {
      c.mgmt = std::make_unique<MgmtEndpoint>(*c.dep->runtimes.front());
      if (!c.dep->controllers.empty())
        c.mgmt->set_ctrl(c.dep->controllers.front().get());
      c.mgmt->set_city(this);
    }
    jobctx_.push_back(CellJob{this, int(i)});
  }
  for (std::size_t i = 0; i < jobctx_.size(); ++i)
    jobs_.push_back(exec::WorkerPool::Job{&job_trampoline, &jobctx_[i],
                                          int(i) % n_workers});
}

void City::job_trampoline(void* arg, int worker) {
  (void)worker;
  auto* j = static_cast<CellJob*>(arg);
  j->c->run_cell(j->idx);
}

void City::run_cell(int idx) {
  // A cell job is a shard-local coordinator: it may publish telemetry,
  // run controllers and pump middleboxes that assert they are not on an
  // engine worker thread.
  ShardCoordinatorScope scope;
  CellShard& c = *cells_[std::size_t(idx)];
  const auto w0 = std::chrono::steady_clock::now();
  c.dep->engine.run_slots(1);
  const auto w1 = std::chrono::steady_clock::now();
  c.last_job_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(w1 - w0).count();
  c.max_job_ns = std::max(c.max_job_ns, c.last_job_ns);
}

void City::run_one_slot() {
  if (!finalized_) finalize();
  const std::int64_t dur = slot_duration_ns(scs_);
  const std::int64_t t0 = slot_ * dur;
  obs::slot_spans(slot_, t0, dur);
  if (pool_) {
    pool_->run(jobs_);
  } else {
    for (std::size_t i = 0; i < cells_.size(); ++i) run_cell(int(i));
  }
  barrier(t0, dur);
  ++slot_;
}

void City::barrier(std::int64_t t0, std::int64_t dur) {
  // Everything below runs on the conductor with all workers parked, in
  // fixed creation order — the single ordering both execution modes
  // share, which is what keeps serial == parallel(N) bit-identical.
  for (auto& xl : xlinks_) {
    PacketPtr p;
    while (xl->ab.try_pop(p)) {
      ++xl->forwarded_ab;
      xl->b.inject(std::move(p));
    }
    while (xl->ba.try_pop(p)) {
      ++xl->forwarded_ba;
      xl->a.inject(std::move(p));
    }
  }
  for (auto& s : shares_) bridge(*s);
  if (obs::enabled())
    obs::Collector::instance().commit_slot(slot_, t0, dur);
}

void City::bridge(NeutralHostShare& s) {
  AirModel& ga = cells_[std::size_t(s.guest_cell)]->dep->air;
  AirModel& ha = cells_[std::size_t(s.host_cell)]->dep->air;

  // (a) PRACH detections the guest DU made this slot (from U-plane that
  // physically crossed the share) complete the real UE's attachment in
  // the host shard, where the radio state lives. Flushing immediately
  // keeps the serial and parallel conductors on the same schedule.
  const std::uint64_t det = s.guest_du->stats().prach_detections;
  if (det != s.prach_seen) {
    s.prach_seen = det;
    ha.complete_prach(s.mirror_cell_air, slot_);
    ha.flush_prach_completions();
  }

  // (b) Attachment: the host shard is authoritative (its UE attaches
  // through the actual SSB/PRACH datapath); the mirror UE in the guest
  // air is forced to track it so the guest DU keeps scheduling.
  const bool att =
      ha.is_attached(s.real_ue) &&
      ha.same_cell_identity(ha.serving_cell(s.real_ue), s.mirror_cell_air);
  ga.sync_ue_attach(s.mirror_ue, att, s.guest_cell_air);

  // (c) Allocations the guest DU published for virtual slot T+1 are
  // republished into the host shard's mirror cell (UE ids remapped), so
  // the shared RU synthesizes the guest UE's UL signal and the host air
  // credits its DL against what the RU actually radiated. They survive
  // the host engine's begin_slot(T+1), which only clears stale slots.
  if (ga.alloc_slot(s.guest_cell_air) == slot_ + 1) {
    std::vector<DlAlloc> dl = ga.dl_allocs(s.guest_cell_air);
    for (auto& a : dl)
      if (a.ue == s.mirror_ue) a.ue = s.real_ue;
    std::vector<UlAlloc> ul = ga.ul_allocs(s.guest_cell_air);
    for (auto& a : ul)
      if (a.ue == s.mirror_ue) a.ue = s.real_ue;
    ha.publish_dl_alloc(s.mirror_cell_air, slot_ + 1, std::move(dl));
    ha.publish_ul_alloc(s.mirror_cell_air, slot_ + 1, std::move(ul));
  }

  // (d) Result counters: DL is authoritative where the RU radiates (the
  // host shard), UL where the combined U-plane is validated (the guest
  // DU's shard). Absolute overwrites, so replays stay exact.
  ga.sync_ue_dl(s.mirror_ue, ha.dl_bits(s.real_ue), ha.dl_errors(s.real_ue),
                ha.dl_unradiated(s.real_ue));
  ha.sync_ue_ul(s.real_ue, ga.ul_bits(s.mirror_ue),
                ga.ul_errors(s.mirror_ue));
}

void City::run_slots(int n) {
  for (int i = 0; i < n; ++i) run_one_slot();
}

bool City::attach_all(int max_slots) {
  const auto all_attached = [this] {
    for (const auto& c : cells_) {
      const AirModel& a = c->dep->air;
      for (UeId ue = 0; ue < UeId(a.num_ues()); ++ue)
        if (!a.is_attached(ue)) return false;
    }
    return true;
  };
  for (int i = 0; i < max_slots; ++i) {
    if (all_attached()) return true;
    run_one_slot();
  }
  return all_attached();
}

void City::measure(int slots) {
  for (auto& c : cells_) c->dep->air.reset_counters();
  run_slots(slots);
  measure_window_ns_ = std::int64_t(slots) * slot_duration_ns(scs_);
}

double City::dl_mbps(int cell_idx, UeId ue) const {
  if (measure_window_ns_ <= 0) return 0.0;
  return double(cells_[std::size_t(cell_idx)]->dep->air.dl_bits(ue)) *
         1000.0 / double(measure_window_ns_);
}

double City::ul_mbps(int cell_idx, UeId ue) const {
  if (measure_window_ns_ <= 0) return 0.0;
  return double(cells_[std::size_t(cell_idx)]->dep->air.ul_bits(ue)) *
         1000.0 / double(measure_window_ns_);
}

std::string City::fingerprint() const {
  std::ostringstream os;
  for (const auto& cp : cells_) {
    const CellShard& c = *cp;
    const Deployment& d = *c.dep;
    os << "== " << c.name << " slot=" << d.engine.current_slot() << "\n";
    for (const auto& rt : d.runtimes) {
      os << rt->config().name << "\n";
      for (const auto& [k, v] : rt->telemetry().counters())
        os << k << "=" << v << "\n";
    }
    os << d.fault_dump() << d.ctrl_dump();
    for (const auto& du : d.dus) {
      const DuStats& st = du->stats();
      os << "du" << int(du->config().du_id) << " c=" << st.cplane_tx
         << " u=" << st.uplane_tx << " r=" << st.uplane_rx
         << " late=" << st.late_drops << " perr=" << st.parse_errors
         << " udf=" << st.ul_decode_fail << " prach=" << st.prach_detections
         << "\n";
    }
    for (UeId ue = 0; ue < UeId(d.air.num_ues()); ++ue)
      os << "ue" << ue << " att=" << d.air.is_attached(ue)
         << " srv=" << d.air.serving_cell(ue) << " dl=" << d.air.dl_bits(ue)
         << " dlerr=" << d.air.dl_errors(ue)
         << " unrad=" << d.air.dl_unradiated(ue)
         << " ul=" << d.air.ul_bits(ue) << " ulerr=" << d.air.ul_errors(ue)
         << "\n";
  }
  for (const auto& x : xlinks_)
    os << x->name << " ab=" << x->forwarded_ab << " ba=" << x->forwarded_ba
       << " drop=" << (x->dropped_ab + x->dropped_ba) << "\n";
  for (const auto& s : shares_)
    os << s->name << " prach=" << s->prach_seen << "\n";
  return os.str();
}

std::vector<std::uint8_t> City::checkpoint() const {
  state::StateWriter w;
  w.begin_section(state::kSecCityMeta, 1);
  w.u32(std::uint32_t(cells_.size()));
  w.i64(slot_);
  w.u32(std::uint32_t(shares_.size()));
  for (const auto& s : shares_) w.u64(s->prach_seen);
  w.u32(std::uint32_t(xlinks_.size()));
  for (const auto& x : xlinks_) {
    w.u64(x->forwarded_ab);
    w.u64(x->forwarded_ba);
    w.u64(x->dropped_ab);
    w.u64(x->dropped_ba);
  }
  w.end_section();
  for (const auto& c : cells_) {
    // Nested whole-deployment blob: at the city barrier the xlink rings
    // are empty and in-flight crossings sit in the shards' port RX
    // queues, which rb::checkpoint captures.
    const std::vector<std::uint8_t> blob = rb::checkpoint(*c->dep);
    w.begin_section(state::kSecCityCell, 1);
    w.str(c->name);
    w.u32(std::uint32_t(blob.size()));
    w.bytes(blob);
    w.end_section();
  }
  return w.finish();
}

RestoreResult City::restore(const std::vector<std::uint8_t>& blob) {
  state::StateReader r(blob);
  state::SectionInfo info;
  bool meta = false;
  std::size_t cell_i = 0;
  while (r.next_section(&info)) {
    if (info.id == state::kSecCityMeta && info.version == 1) {
      if (r.u32() != cells_.size())
        return {state::StateError::kMismatch, "city.n_cells"};
      slot_ = r.i64();
      if (r.u32() != shares_.size())
        return {state::StateError::kMismatch, "city.n_shares"};
      for (auto& s : shares_) s->prach_seen = r.u64();
      if (r.u32() != xlinks_.size())
        return {state::StateError::kMismatch, "city.n_xlinks"};
      for (auto& x : xlinks_) {
        x->forwarded_ab = r.u64();
        x->forwarded_ba = r.u64();
        x->dropped_ab = r.u64();
        x->dropped_ba = r.u64();
      }
      meta = true;
    } else if (info.id == state::kSecCityCell && info.version == 1) {
      if (cell_i >= cells_.size())
        return {state::StateError::kMismatch, "city.extra_cell"};
      CellShard& c = *cells_[cell_i];
      if (r.str() != c.name)
        return {state::StateError::kMismatch, "city.cell_name"};
      const std::uint32_t n = r.count(1);
      std::vector<std::uint8_t> sub(n);
      r.bytes(sub);
      if (!r.ok()) break;
      RestoreResult rr = rb::restore(*c.dep, sub);
      if (!rr.ok()) {
        rr.detail = c.name + "/" + rr.detail;
        return rr;
      }
      ++cell_i;
    }
    r.skip_section();
  }
  if (!r.ok()) return {r.error(), "city"};
  if (!meta || cell_i != cells_.size())
    return {state::StateError::kTruncated, "city"};
  return {};
}

std::string City::city_mgmt(const std::string& cmd) {
  std::istringstream is(cmd);
  std::string what;
  is >> what;
  std::ostringstream os;
  if (what.empty() || what == "list") {
    os << "cells=" << cells_.size() << " slot=" << slot_ << " mode="
       << (pool_ ? "parallel(" + std::to_string(pool_->size()) + ")"
                 : std::string("serial"))
       << "\n";
    for (const auto& c : cells_) {
      const Deployment& d = *c->dep;
      std::size_t attached = 0;
      for (UeId ue = 0; ue < UeId(d.air.num_ues()); ++ue)
        if (d.air.is_attached(ue)) ++attached;
      os << c->name << " dus=" << d.dus.size() << " rus=" << d.rus.size()
         << " mbs=" << d.runtimes.size() << " ues=" << d.air.num_ues()
         << " attached=" << attached << "\n";
    }
    return os.str();
  }
  if (what == "budget") {
    const std::int64_t budget = slot_duration_ns(scs_);
    os << "slot_budget_ns=" << budget << "\n";
    for (const auto& c : cells_)
      os << c->name << " slots=" << c->slots_run
         << " last_ns=" << c->last_job_ns << " max_ns=" << c->max_job_ns
         << (c->max_job_ns > budget ? " OVER" : "") << "\n";
    return os.str();
  }
  if (what == "rings") {
    if (xlinks_.empty()) return "no xlinks\n";
    for (const auto& x : xlinks_)
      os << x->name << " depth_ab=" << x->ab.size_approx()
         << " depth_ba=" << x->ba.size_approx() << " cap=" << x->ab.capacity()
         << " fwd_ab=" << x->forwarded_ab << " fwd_ba=" << x->forwarded_ba
         << " dropped=" << (x->dropped_ab + x->dropped_ba) << "\n";
    return os.str();
  }
  if (what == "cell") {
    std::string name;
    is >> name;
    std::string rest;
    std::getline(is, rest);
    const std::size_t at = rest.find_first_not_of(' ');
    rest = at == std::string::npos ? "" : rest.substr(at);
    for (auto& c : cells_) {
      if (c->name != name) continue;
      if (!c->mgmt) return "cell '" + name + "' has no middlebox";
      return c->mgmt->handle(rest);
    }
    return "unknown cell '" + name + "'";
  }
  return "unknown city subcommand (list|budget|rings|cell <name> <verb>)";
}

}  // namespace rb::city
