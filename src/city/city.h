// City-scale multi-cell topology: sharded slot engines under a
// virtual-time conductor (DESIGN.md section 4j).
//
// Each cell is a full Deployment slice (DU, RUs, middleboxes, fault
// links, controller) advancing slot-synchronously inside its own shard.
// The conductor owns the global slot barrier: it dispatches one job per
// cell onto an exec::WorkerPool (cells are the outer shard; each cell's
// engine runs its historical serial path inside the job), then — with
// every worker parked — performs all inter-cell work itself in fixed
// creation order:
//
//   1. drain the lock-free SPSC xlink rings (packets captured leaving a
//      shard during the slot are injected into their target shard's port
//      queue, to be processed next slot),
//   2. reconcile neutral-host shares (a guest DU homed in one shard whose
//      slice of a shared RU radiates in another shard's air model),
//   3. commit the process-wide observability collector once.
//
// Because shard jobs touch disjoint state and every cross-shard effect
// happens on the conductor in a fixed order, a serial conductor run and a
// parallel(N) run are bit-identical — the chaos-soak determinism
// guarantee extended city-wide (tests/test_city.cpp).
//
// The one-slot shift that makes packet crossings clean: a guest DU is not
// engine-driven; a pre-slot hook on its home shard steps it at virtual
// slot V = T+1 while the city runs slot T. Its frames for V cross the
// ring at barrier T and are pumped by the host shard during slot T+1 = V
// — exactly on time, with SSB/PRACH periodicity unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/mgmt.h"
#include "exec/spsc_ring.h"
#include "exec/worker_pool.h"
#include "net/port.h"
#include "sim/campus.h"
#include "sim/deployment.h"
#include "sim/hitless.h"

namespace rb::city {

/// One bidirectional cross-shard conduit. The two endpoint ports are
/// owned here (outside any deployment: they never queue and hold no
/// state); each captures frames leaving its shard into a lock-free SPSC
/// ring that only the conductor drains, at the barrier, into the far
/// endpoint's peer. Split latency: 500 ns per hop, so a crossing costs
/// the same 1 us as a local fronthaul link.
struct XLink {
  std::string name;
  Port a;  // endpoint living in the guest shard
  Port b;  // endpoint living in the host shard
  exec::SpscRing<PacketPtr> ab;
  exec::SpscRing<PacketPtr> ba;
  std::uint64_t forwarded_ab = 0;  // conductor-owned
  std::uint64_t forwarded_ba = 0;
  std::uint64_t dropped_ab = 0;  // ring full (shard-owned; read at barrier)
  std::uint64_t dropped_ba = 0;

  explicit XLink(std::string n)
      : name(std::move(n)), a(name + ".a"), b(name + ".b"), ab(4096),
        ba(4096) {
    a.set_rx_handler([this](PacketPtr p) {
      if (!ab.try_push(std::move(p))) ++dropped_ab;
    });
    b.set_rx_handler([this](PacketPtr p) {
      if (!ba.try_push(std::move(p))) ++dropped_ba;
    });
  }
};

/// One neutral-host RU share spanning two shards. The guest DU lives in
/// `guest_cell` and schedules against its home air model (where a
/// phantom copy of the shared RU site gives it channel state); the RU it
/// rents a slice of radiates in `host_cell`'s air model, where the guest
/// UE exists for real (`real_ue`, attaching through the actual SSB/PRACH
/// datapath). The conductor bridges the two views at every barrier.
struct NeutralHostShare {
  std::string name;
  int guest_cell = -1;
  int host_cell = -1;
  DuModel* guest_du = nullptr;
  CellId guest_cell_air = -1;   // guest DU's cell in the guest air
  CellId mirror_cell_air = -1;  // same cell registered in the host air
  UeId mirror_ue = -1;          // in the guest air (UL-authoritative)
  UeId real_ue = -1;            // in the host air (DL/attach-authoritative)
  std::uint64_t prach_seen = 0;  // guest DU detections already bridged
};

/// The conductor. Owns every cell shard, the worker pool, the xlinks and
/// the share bridges. `workers <= 0` runs the same per-cell job bodies
/// inline in cell order (the serial reference used by determinism tests).
class City final : public CityMgmtHandler {
 public:
  struct CellShard {
    std::string name;
    std::unique_ptr<Deployment> dep;
    std::unique_ptr<MgmtEndpoint> mgmt;  // over the first runtime, if any
    std::vector<UeId> ues;               // home UEs (builder bookkeeping)
    // Wall-clock job accounting (mgmt "city budget" only; never part of
    // determinism fingerprints or checkpoints).
    std::int64_t last_job_ns = 0;
    std::int64_t max_job_ns = 0;
    std::uint64_t slots_run = 0;
  };

  explicit City(int workers = 0, Scs scs = Scs::kHz30,
                ChannelParams channel = {});
  ~City() override;

  City(const City&) = delete;
  City& operator=(const City&) = delete;

  // --- assembly (CityBuilder calls these) -----------------------------
  CellShard& add_cell(std::string name);
  XLink& add_xlink(std::string name);
  NeutralHostShare& add_share(NeutralHostShare s);
  /// Register a conductor-driven guest DU homed in `cell_idx`: a
  /// pre-slot hook steps it at virtual slot T+1 while the city runs T.
  void add_guest_du(int cell_idx, DuModel& du);
  /// Freeze the topology: per-cell obs ownership, slot accounting, mgmt
  /// endpoints and the static job table. Call once, before running.
  void finalize();

  // --- running & measuring --------------------------------------------
  void run_slots(int n);
  /// Warm up until every UE in every shard attaches (neutral-host mirror
  /// UEs attach via the bridge once their real twin attaches).
  bool attach_all(int max_slots = 800);
  /// Reset every shard's throughput counters, run `slots`, remember the
  /// window for dl_mbps()/ul_mbps().
  void measure(int slots);
  double dl_mbps(int cell_idx, UeId ue) const;
  double ul_mbps(int cell_idx, UeId ue) const;

  std::int64_t current_slot() const { return slot_; }
  Scs scs() const { return scs_; }
  bool parallel() const { return pool_ != nullptr; }
  std::size_t num_cells() const { return cells_.size(); }
  CellShard& cell(std::size_t i) { return *cells_[i]; }
  const CellShard& cell(std::size_t i) const { return *cells_[i]; }
  std::size_t num_xlinks() const { return xlinks_.size(); }
  XLink& xlink(std::size_t i) { return *xlinks_[i]; }
  std::size_t num_shares() const { return shares_.size(); }
  NeutralHostShare& share(std::size_t i) { return *shares_[i]; }

  /// Byte-exact fingerprint of the whole city: every runtime counter,
  /// fault link, controller, DU stat and UE air-interface result in every
  /// shard, plus xlink/bridge totals. Serial and parallel(N) runs of the
  /// same build must produce identical strings.
  std::string fingerprint() const;

  /// Whole-city checkpoint: a city meta section (slot, bridge baselines)
  /// plus one nested per-cell section wrapping rb::checkpoint() of that
  /// shard. Call at the city barrier (between run_slots calls).
  std::vector<std::uint8_t> checkpoint() const;
  /// Restore onto an identically built city (same builder calls).
  RestoreResult restore(const std::vector<std::uint8_t>& blob);

  // CityMgmtHandler: "list" | "budget" | "rings" | "cell <name> <verb>".
  std::string city_mgmt(const std::string& cmd) override;

 private:
  struct CellJob {
    City* c = nullptr;
    int idx = 0;
  };

  static void job_trampoline(void* arg, int worker);
  void run_cell(int idx);
  void run_one_slot();
  void barrier(std::int64_t t0, std::int64_t dur);
  void bridge(NeutralHostShare& s);

  Scs scs_;
  ChannelParams channel_;
  std::int64_t slot_ = 0;
  std::int64_t measure_window_ns_ = 0;
  bool finalized_ = false;
  std::vector<std::unique_ptr<CellShard>> cells_;
  std::vector<std::unique_ptr<XLink>> xlinks_;
  std::vector<std::unique_ptr<NeutralHostShare>> shares_;
  std::unique_ptr<exec::WorkerPool> pool_;
  std::vector<CellJob> jobctx_;
  std::vector<exec::WorkerPool::Job> jobs_;
};

// --- CityBuilder ------------------------------------------------------

/// Template stamped onto every building of the campus by build_city().
struct CityConfig {
  int n_cells = 2;
  int ues_per_cell = 1;
  double dl_mbps = 200.0;
  double ul_mbps = 20.0;
  /// Put a transparent PRB monitor between each cell's DU and RU (the
  /// per-cell middlebox of the template). Off = direct wire.
  bool prbmon = true;
  /// Seeded per-cell fault cocktail on the DU-side fronthaul link.
  bool faults = false;
  /// Per-cell closed-loop adaptation controller watching the fault link
  /// (requires `faults`; supervises through the cell's middlebox).
  bool controller = false;
  /// Cells 0 (host) and 1 (guest) share one 100 MHz RU: the guest DU
  /// lives in shard 1 but rents PRBs 150..255 of shard 0's RU through a
  /// conductor xlink + RU-share middlebox. Requires n_cells >= 2.
  bool neutral_host = false;
  int workers = 0;  // conductor worker threads; 0 = serial reference
  std::uint64_t fault_seed = 0x5eed;
  Scs scs = Scs::kHz30;
  Campus campus{};
};

/// Stamp `cfg.n_cells` per-building cell shards from the template over
/// the campus grid and wire any neutral-host share. The returned city is
/// finalized and ready to run.
std::unique_ptr<City> build_city(const CityConfig& cfg);

}  // namespace rb::city
