// CityBuilder: stamp per-cell deployments from one template over the
// campus grid, plus the cross-shard neutral-host share (DESIGN.md 4j).
#include <stdexcept>

#include "city/city.h"
#include "exec/shard.h"
#include "ran/vendor.h"

namespace rb::city {
namespace {

/// PCI of the neutral-host guest cell — outside the 1..n_cells range the
/// local cells use, so pci-locked UEs never cross-attach.
constexpr int kGuestPci = 999;
/// PRB offsets of the host / guest 40 MHz slices in the shared 100 MHz
/// RU grid (the Appendix A.1.1 aligned-grid layout the RU-share e2e test
/// uses: 106-PRB tenants at offsets 10 and 150 of 273 PRBs).
constexpr int kHostOffset = 10;
constexpr int kGuestOffset = 150;

std::uint64_t ru_flow_key(RuId id) {
  return exec::flow_key(std::uint32_t(id), 0);
}

/// Mild seeded fault cocktail for one cell's DU-side fronthaul link:
/// light enough that attach still succeeds through it, busy enough that
/// a 2000-slot soak exercises loss, jitter and duplication paths.
void add_cell_faults(Deployment& d, Port& near, std::uint64_t seed,
                     FaultyLink** out) {
  FaultPlan tx;  // DU -> RU: light i.i.d. loss + jitter
  tx.loss = 0.005;
  tx.jitter_ns = 10'000;
  tx.seed = seed ^ 0xa1;
  FaultPlan rx;  // RU -> DU: duplication + a little loss
  rx.loss = 0.003;
  rx.duplicate = 0.005;
  rx.seed = seed ^ 0xb2;
  *out = &d.add_fault(near, tx, rx);
}

}  // namespace

std::unique_ptr<City> build_city(const CityConfig& cfg) {
  if (cfg.neutral_host && cfg.n_cells < 2)
    throw std::runtime_error("build_city: neutral_host needs n_cells >= 2");
  auto city = std::make_unique<City>(cfg.workers, cfg.scs);
  const VendorProfile vendor = srsran_profile();
  const Hertz shared_center = GHz(3) + MHz(460);
  const int shared_prbs = prbs_for_bandwidth(MHz(100), cfg.scs);
  const int cell_prbs = prbs_for_bandwidth(MHz(40), cfg.scs);

  Deployment* host_dep = nullptr;
  Deployment::DuHandle host_du{};
  Deployment::RuHandle shared_ru{};

  for (int i = 0; i < cfg.n_cells; ++i) {
    City::CellShard& shard = city->add_cell("c" + std::to_string(i));
    Deployment& d = *shard.dep;
    const bool is_host = cfg.neutral_host && i == 0;

    CellConfig cell;
    cell.pci = std::uint16_t(i + 1);
    cell.bandwidth = MHz(40);
    if (is_host)
      // The host cell is tenant 0 of the shared 100 MHz grid.
      cell.center_freq = aligned_du_center_frequency(
          shared_center, shared_prbs, cell_prbs, kHostOffset, cfg.scs);
    Deployment::DuHandle du = d.add_du(cell, vendor, std::uint8_t(i));

    RuSite site;
    site.pos = cfg.campus.ru_position(i, 0, 1);
    site.n_antennas = 4;
    site.center_freq = is_host ? shared_center : cell.center_freq;
    site.bandwidth = is_host ? MHz(100) : MHz(40);
    Deployment::RuHandle ru = d.add_ru(site, std::uint8_t(i), du.du->fh());

    MiddleboxRuntime* rt = nullptr;
    if (is_host) {
      // Wired below, once the guest DU exists (the RU-share runtime needs
      // both tenants at construction).
      host_dep = &d;
      host_du = du;
      shared_ru = ru;
    } else if (cfg.prbmon) {
      rt = &d.add_prbmon(du, ru);
    } else {
      d.connect_direct(du, ru);
    }

    for (int k = 0; k < cfg.ues_per_cell; ++k) {
      const Position pos = cfg.campus.near_ru(i, 0, 1, 2.0 + 1.5 * k);
      shard.ues.push_back(
          d.add_ue(pos, &du, cfg.dl_mbps, cfg.ul_mbps, cell.pci));
    }

    if (cfg.faults && !is_host) {
      FaultyLink* link = nullptr;
      add_cell_faults(d, *du.port, cfg.fault_seed + std::uint64_t(i) * 0x9e37,
                      &link);
      if (cfg.controller && rt) {
        ctrl::AdaptationController& c = d.add_controller();
        d.ctrl_watch(c, *link, *rt, ru);
      }
    }
  }

  if (cfg.neutral_host) {
    Deployment& h = *host_dep;
    Deployment& g = *city->cell(1).dep;

    // Guest DU, homed in shard c1 but renting PRBs of c0's shared RU. Not
    // engine-driven: the conductor steps it at virtual slot T+1. Its UL
    // return frames arrive 2-3 virtual slots after their window opened,
    // hence the widened matching window.
    CellConfig gcell;
    gcell.pci = std::uint16_t(kGuestPci);
    gcell.bandwidth = MHz(40);
    gcell.center_freq = aligned_du_center_frequency(
        shared_center, shared_prbs, cell_prbs, kGuestOffset, cfg.scs);
    Deployment::DuHandle gdu =
        g.add_du(gcell, vendor, std::uint8_t(cfg.n_cells),
                 /*engine_driven=*/false, /*ul_match_slots=*/4);

    // Phantom copy of the shared RU site in the guest air: it never
    // radiates (the real RU lives in the host shard), but it gives the
    // guest cell a channel footprint so UE reports and UL resolution see
    // the true path loss.
    const RuSite shared_site = h.air.ru(shared_ru.id);
    const int guest_off =
        Deployment::prb_offset_in_ru(gdu.du->config().cell, shared_site);
    const RuId phantom = g.air.add_ru(shared_site);
    g.air.assign_ru(gdu.cell, phantom, guest_off);

    // The guest UE exists twice: for real in the host air (attaches via
    // the actual SSB/PRACH datapath through the shared RU) and as a
    // mirror in the guest air (carries the offered traffic and the
    // UL-authoritative counters). Same position, so both airs model the
    // same geometry.
    const Position gpos = cfg.campus.near_ru(0, 0, 1, 4.0);
    const UeId mirror_ue =
        g.add_ue(gpos, &gdu, cfg.dl_mbps, cfg.ul_mbps, kGuestPci);
    city->cell(1).ues.push_back(mirror_ue);
    const UeId real_ue = h.add_ue(gpos, nullptr, 0, 0, kGuestPci);
    city->cell(0).ues.push_back(real_ue);

    // The guest cell registered in the host air, radiated by the shared
    // RU's rented slice.
    const CellId mirror_cell = h.air.add_cell(gdu.du->config().cell);
    h.air.assign_ru(mirror_cell, shared_ru.id, guest_off);

    // Cross-shard conduit: guest DU port <-> xlink <-> share north1.
    XLink& xl = city->add_xlink("xl:" + g.name_prefix + "du" +
                                std::to_string(cfg.n_cells));
    Port::connect(xl.a, *gdu.port, 500);

    // RU-share middlebox in the host shard, hand-wired because tenant 1
    // is a DuHandle of another shard (mirrors Deployment::add_rushare).
    RuShareConfig sc;
    sc.ru_mac = shared_ru.mac;
    sc.ru_n_prb = shared_prbs;
    sc.ru_center_freq = shared_site.center_freq;
    ShareDu host_sd;
    host_sd.mac = host_du.du->config().du_mac;
    host_sd.du_id = host_du.du->config().du_id;
    host_sd.n_prb = host_du.du->config().cell.n_prb();
    host_sd.center_freq = host_du.du->config().cell.center_freq;
    host_sd.prb_offset =
        Deployment::prb_offset_in_ru(host_du.du->config().cell, shared_site);
    sc.dus.push_back(host_sd);
    h.air.assign_ru(host_du.cell, shared_ru.id, host_sd.prb_offset);
    ShareDu guest_sd;
    guest_sd.mac = gdu.du->config().du_mac;
    guest_sd.du_id = gdu.du->config().du_id;
    guest_sd.n_prb = gdu.du->config().cell.n_prb();
    guest_sd.center_freq = gdu.du->config().cell.center_freq;
    guest_sd.prb_offset = guest_off;
    sc.dus.push_back(guest_sd);

    auto app = std::make_unique<RuShareMiddlebox>(sc);
    MiddleboxRuntime::Config rc;
    rc.name = h.name_prefix + "rushare" + std::to_string(h.runtimes.size());
    rc.cell = h.cell_label;
    rc.fh = host_du.du->fh();
    rc.fh.carrier_prbs = sc.ru_n_prb;
    auto rt = std::make_unique<MiddleboxRuntime>(rc, *app);
    Port& south = h.new_port(rc.name + ".south");
    rt->add_port("south", south);  // index 0 == RuShareMiddlebox::kSouth
    Port::connect(south, *shared_ru.port, 1'000);
    Port& north0 = h.new_port(rc.name + ".north0");
    rt->add_port("north0", north0, host_du.du->fh());
    Port::connect(*host_du.port, north0, 1'000);
    Port& north1 = h.new_port(rc.name + ".north1");
    rt->add_port("north1", north1, gdu.du->fh());
    Port::connect(xl.b, north1, 500);

    h.engine.add_middlebox(*rt);
    h.engine.bind_affinity(*shared_ru.ru, ru_flow_key(shared_ru.id));
    h.engine.bind_affinity(*host_du.du, ru_flow_key(shared_ru.id));
    h.engine.bind_affinity(static_cast<Pumpable&>(*rt),
                           ru_flow_key(shared_ru.id));
    MiddleboxRuntime* share_rt = rt.get();
    h.apps.push_back(std::move(app));
    h.runtimes.push_back(std::move(rt));

    city->add_guest_du(1, *gdu.du);

    NeutralHostShare s;
    s.name = "share:" + h.cell_label + "<-" + g.cell_label;
    s.guest_cell = 1;
    s.host_cell = 0;
    s.guest_du = gdu.du;
    s.guest_cell_air = gdu.cell;
    s.mirror_cell_air = mirror_cell;
    s.mirror_ue = mirror_ue;
    s.real_ue = real_ue;
    city->add_share(s);

    if (cfg.faults) {
      FaultyLink* link = nullptr;
      add_cell_faults(h, *host_du.port, cfg.fault_seed ^ 0xc0ffee, &link);
      if (cfg.controller) {
        ctrl::AdaptationController& c = h.add_controller();
        h.ctrl_watch(c, *link, *share_rt, shared_ru);
      }
    }
  }

  city->finalize();
  return city;
}

}  // namespace rb::city
