// Strong-ish unit helpers shared across the library.
//
// Frequencies are carried as integral hertz to keep PRB-grid arithmetic
// exact (the O-RAN grids are all multiples of the sub-carrier spacing, so
// double rounding would be a correctness hazard in the alignment formulas
// of Appendix A.1).
#pragma once

#include <cstdint>

namespace rb {

/// Frequency in hertz. 64-bit so band-78 carrier frequencies (3.3-3.8 GHz)
/// and their sums are exact.
using Hertz = std::int64_t;

constexpr Hertz kHz(std::int64_t v) { return v * 1'000; }
constexpr Hertz MHz(std::int64_t v) { return v * 1'000'000; }
constexpr Hertz GHz(std::int64_t v) { return v * 1'000'000'000; }

/// Sub-carrier spacing choices defined by 3GPP numerologies 0-3.
enum class Scs : std::int32_t {
  kHz15 = 15'000,
  kHz30 = 30'000,
  kHz60 = 60'000,
  kHz120 = 120'000,
};

constexpr Hertz scs_hz(Scs scs) { return static_cast<Hertz>(scs); }

/// 3GPP numerology index mu for a sub-carrier spacing.
constexpr int scs_mu(Scs scs) {
  switch (scs) {
    case Scs::kHz15: return 0;
    case Scs::kHz30: return 1;
    case Scs::kHz60: return 2;
    case Scs::kHz120: return 3;
  }
  return 1;
}

/// Sub-carriers per physical resource block (3GPP TS 38.211).
inline constexpr int kScPerPrb = 12;

/// OFDM symbols per slot with normal cyclic prefix.
inline constexpr int kSymbolsPerSlot = 14;

/// Slots per subframe (1 ms) for a numerology.
constexpr int slots_per_subframe(Scs scs) { return 1 << scs_mu(scs); }

/// Nanoseconds in one slot for a numerology.
constexpr std::int64_t slot_duration_ns(Scs scs) {
  return 1'000'000 / slots_per_subframe(scs);
}

/// Approximate nanoseconds in one OFDM symbol (ignores CP irregularity;
/// the paper quotes 33.3 us for a typical cell which is 1/14 of a 0.5 ms
/// slot at 30 kHz SCS - this matches).
constexpr std::int64_t symbol_duration_ns(Scs scs) {
  return slot_duration_ns(scs) / kSymbolsPerSlot;
}

/// Transmission bandwidth in PRBs for a channel bandwidth at a given SCS
/// (3GPP TS 38.101-1 Table 5.3.2-1, FR1). Returns 0 for unsupported combos.
constexpr int prbs_for_bandwidth(Hertz bw, Scs scs) {
  if (scs == Scs::kHz30) {
    if (bw == MHz(10)) return 24;
    if (bw == MHz(15)) return 38;
    if (bw == MHz(20)) return 51;
    if (bw == MHz(25)) return 65;
    if (bw == MHz(30)) return 78;
    if (bw == MHz(40)) return 106;
    if (bw == MHz(50)) return 133;
    if (bw == MHz(60)) return 162;
    if (bw == MHz(80)) return 217;
    if (bw == MHz(90)) return 245;
    if (bw == MHz(100)) return 273;
  } else if (scs == Scs::kHz15) {
    if (bw == MHz(10)) return 52;
    if (bw == MHz(20)) return 106;
    if (bw == MHz(40)) return 216;
    if (bw == MHz(50)) return 270;
  }
  return 0;
}

/// Decibel <-> linear conversions used by the channel model.
double db_to_linear(double db);
double linear_to_db(double linear);

}  // namespace rb
