// Process-wide hitless-operations stats: checkpoint/restore counts and
// live-reconfiguration counts, sizes and wall-clock watermarks.
//
// Lives in common/ (header-only, atomics) for the same layering reason as
// iq_stats.h and ctrl_stats.h: the sim/state layers write, while rb_obs
// (which links only rb_common) renders the values as Prometheus series.
// Wall-clock apply latency is observability-only — reconfigurations are
// applied at the virtual-time slot barrier, so wall time never influences
// what a run computes.
#pragma once

#include <atomic>
#include <cstdint>

namespace rb::statestats {

/// Checkpoints taken (Deployment::checkpoint calls).
inline std::atomic<std::uint64_t>& checkpoints_total() {
  static std::atomic<std::uint64_t> v{0};
  return v;
}

/// Successful restores.
inline std::atomic<std::uint64_t>& restores_total() {
  static std::atomic<std::uint64_t> v{0};
  return v;
}

/// Restores rejected with a typed StateError.
inline std::atomic<std::uint64_t>& restore_errors_total() {
  static std::atomic<std::uint64_t> v{0};
  return v;
}

/// Byte size of the most recent checkpoint blob.
inline std::atomic<std::uint64_t>& checkpoint_bytes_last() {
  static std::atomic<std::uint64_t> v{0};
  return v;
}

/// Live reconfigurations applied at the slot barrier.
inline std::atomic<std::uint64_t>& reconfigs_total() {
  static std::atomic<std::uint64_t> v{0};
  return v;
}

/// Individual reconfig operations applied (a reconfig batches >= 1 ops).
inline std::atomic<std::uint64_t>& reconfig_ops_total() {
  static std::atomic<std::uint64_t> v{0};
  return v;
}

/// Reconfig operations rejected (bad target, would strand last member...).
inline std::atomic<std::uint64_t>& reconfig_rejected_total() {
  static std::atomic<std::uint64_t> v{0};
  return v;
}

/// Wall-clock nanoseconds of the most recent barrier apply.
inline std::atomic<std::uint64_t>& reconfig_wall_ns_last() {
  static std::atomic<std::uint64_t> v{0};
  return v;
}

/// Wall-clock high-water mark across all barrier applies.
inline std::atomic<std::uint64_t>& reconfig_wall_ns_hwm() {
  static std::atomic<std::uint64_t> v{0};
  return v;
}

inline void note_reconfig_wall_ns(std::uint64_t ns) {
  reconfig_wall_ns_last().store(ns, std::memory_order_relaxed);
  std::uint64_t prev = reconfig_wall_ns_hwm().load(std::memory_order_relaxed);
  while (ns > prev && !reconfig_wall_ns_hwm().compare_exchange_weak(
                          prev, ns, std::memory_order_relaxed)) {
  }
}

}  // namespace rb::statestats
