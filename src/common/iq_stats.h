// Process-wide IQ datapath stats: active kernel tier and scratch-arena
// high-water marks.
//
// Lives in common/ (header-only, atomics) so both ends of the layering can
// reach it: the iq/core layers write, while rb_obs (which links only
// rb_common) and the mgmt endpoint read. Values are monotonic per process
// and deliberately tiny - this is telemetry, not accounting.
#pragma once

#include <atomic>
#include <cstdint>

namespace rb::iqstats {

/// Active kernel tier as its numeric KernelTier value, or -1 before the
/// first dispatch. Written once by iq_ops() (and again by iq_force_tier).
inline std::atomic<int>& kernel_tier() {
  static std::atomic<int> v{-1};
  return v;
}

/// Static name of the active tier ("avx2", ...), nullptr before dispatch.
inline std::atomic<const char*>& kernel_tier_label() {
  static std::atomic<const char*> v{nullptr};
  return v;
}

/// Monotonic max: lock-free high-water-mark update.
inline void raise_hwm(std::atomic<std::uint64_t>& hwm, std::uint64_t value) {
  std::uint64_t cur = hwm.load(std::memory_order_relaxed);
  while (value > cur &&
         !hwm.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

/// Largest PRB scratch buffer (samples) any worker has grown to.
inline std::atomic<std::uint64_t>& arena_samples_hwm() {
  static std::atomic<std::uint64_t> v{0};
  return v;
}

/// Largest per-combine batch (cached packets taken) seen by a worker.
inline std::atomic<std::uint64_t>& arena_batch_hwm() {
  static std::atomic<std::uint64_t> v{0};
  return v;
}

/// Largest packet-copy working set a combine held at once.
inline std::atomic<std::uint64_t>& arena_copies_hwm() {
  static std::atomic<std::uint64_t> v{0};
  return v;
}

/// Largest per-section source-span fan-in a combine merged.
inline std::atomic<std::uint64_t>& arena_srcs_hwm() {
  static std::atomic<std::uint64_t> v{0};
  return v;
}

}  // namespace rb::iqstats
