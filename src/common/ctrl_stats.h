// Process-wide adaptation-controller stats: decision counts, actuation
// counts and decision-latency watermarks.
//
// Lives in common/ (header-only, atomics) for the same layering reason as
// iq_stats.h: the ctrl layer writes, while rb_obs (which links only
// rb_common) renders the values as Prometheus gauges. Wall-clock decision
// latency is observability-only - it never feeds back into control
// decisions, which stay purely virtual-time driven for determinism.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/iq_stats.h"

namespace rb::ctrlstats {

/// Controller slot ticks (one per begin-slot hook invocation).
inline std::atomic<std::uint64_t>& decisions_total() {
  static std::atomic<std::uint64_t> v{0};
  return v;
}

/// Actuations issued (CtrlActions applied to a knob).
inline std::atomic<std::uint64_t>& actions_total() {
  static std::atomic<std::uint64_t> v{0};
  return v;
}

/// Links currently under controller supervision.
inline std::atomic<std::uint64_t>& links_watched() {
  static std::atomic<std::uint64_t> v{0};
  return v;
}

/// Links currently running a reduced BFP width.
inline std::atomic<std::uint64_t>& links_degraded() {
  static std::atomic<std::uint64_t> v{0};
  return v;
}

/// Links currently ejected from their combining/distribution set.
inline std::atomic<std::uint64_t>& links_ejected() {
  static std::atomic<std::uint64_t> v{0};
  return v;
}

/// Wall-clock nanoseconds of the most recent decision pass.
inline std::atomic<std::uint64_t>& decision_ns_last() {
  static std::atomic<std::uint64_t> v{0};
  return v;
}

/// Wall-clock high-water mark across all decision passes.
inline std::atomic<std::uint64_t>& decision_ns_hwm() {
  static std::atomic<std::uint64_t> v{0};
  return v;
}

/// Wall-clock sum across all decision passes (mean = sum / decisions).
inline std::atomic<std::uint64_t>& decision_ns_sum() {
  static std::atomic<std::uint64_t> v{0};
  return v;
}

}  // namespace rb::ctrlstats
