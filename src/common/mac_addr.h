// Ethernet MAC address value type.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

namespace rb {

struct MacAddr {
  std::array<std::uint8_t, 6> bytes{};

  friend auto operator<=>(const MacAddr&, const MacAddr&) = default;

  bool is_broadcast() const {
    for (auto b : bytes)
      if (b != 0xff) return false;
    return true;
  }

  std::string str() const;

  /// Parse "aa:bb:cc:dd:ee:ff"; returns all-zero address on malformed input.
  static MacAddr parse(const std::string& s);

  /// Deterministic per-node test addresses: du(0) = 02:du:00:00:00:00 etc.
  static MacAddr du(std::uint8_t i) { return {{0x02, 0xd0, 0, 0, 0, i}}; }
  static MacAddr ru(std::uint8_t i) { return {{0x02, 0xe0, 0, 0, 0, i}}; }
  static MacAddr mb(std::uint8_t i) { return {{0x02, 0xf0, 0, 0, 0, i}}; }
  static MacAddr broadcast() {
    return {{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};
  }
};

struct MacAddrHash {
  std::size_t operator()(const MacAddr& m) const {
    std::uint64_t v = 0;
    for (auto b : m.bytes) v = (v << 8) | b;
    return std::hash<std::uint64_t>{}(v);
  }
};

}  // namespace rb
