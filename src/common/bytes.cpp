// bytes.h is header-only; this translation unit exists so the library has a
// stable archive member and the header is compiled standalone at least once.
#include "common/bytes.h"

namespace rb {
// Intentionally empty.
}  // namespace rb
