// Slot/symbol clock arithmetic for the fronthaul timing domain.
//
// Fronthaul packets address radio time as (frame, subframe, slot, symbol);
// frames wrap at 256 in the O-RAN timing header (8-bit frameId). SlotPoint
// provides total ordering and increment over that wrapped space, which the
// caches in the middleboxes key on.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"

namespace rb {

/// Direction of a fronthaul message, matching the O-RAN dataDirection bit.
enum class Direction : std::uint8_t {
  Uplink = 0,    // RU -> DU
  Downlink = 1,  // DU -> RU
};

const char* to_string(Direction d);

/// A point in radio time: (frame, subframe, slot, symbol).
///
/// frameId is 8 bits on the wire, so the timeline wraps every 256 frames
/// (2.56 s). Comparisons are only meaningful within a window much shorter
/// than the wrap, which holds for all middlebox caches (they hold state for
/// a handful of symbols).
struct SlotPoint {
  std::uint8_t frame = 0;     // 0..255
  std::uint8_t subframe = 0;  // 0..9
  std::uint8_t slot = 0;      // 0..slots_per_subframe-1
  std::uint8_t symbol = 0;    // 0..13

  friend bool operator==(const SlotPoint&, const SlotPoint&) = default;

  /// Key usable in hash maps / ordered containers.
  std::uint32_t packed() const {
    return (std::uint32_t(frame) << 16) | (std::uint32_t(subframe) << 12) |
           (std::uint32_t(slot) << 4) | symbol;
  }

  std::string str() const;
};

/// Monotonic slot/symbol counter that produces wrapped SlotPoints.
///
/// Drives the discrete-time simulation: the DU model advances this clock
/// one symbol at a time; elapsed_ns() exposes the equivalent wall time for
/// throughput accounting.
class SlotClock {
 public:
  explicit SlotClock(Scs scs = Scs::kHz30) : scs_(scs) {}

  SlotPoint now() const;
  Scs scs() const { return scs_; }

  /// Total symbols elapsed since construction.
  std::int64_t total_symbols() const { return total_symbols_; }
  /// Total slots elapsed since construction.
  std::int64_t total_slots() const { return total_symbols_ / kSymbolsPerSlot; }
  /// Virtual nanoseconds elapsed since construction. Whole slots are
  /// exact; only the sub-slot symbol remainder uses the rounded symbol
  /// duration (keeps long runs free of rounding drift).
  std::int64_t elapsed_ns() const {
    const std::int64_t slots = total_symbols_ / kSymbolsPerSlot;
    const std::int64_t syms = total_symbols_ % kSymbolsPerSlot;
    return slots * slot_duration_ns(scs_) + syms * symbol_duration_ns(scs_);
  }

  void advance_symbol() { ++total_symbols_; }
  void advance_slot();

  /// True when now() is the first symbol of a slot.
  bool at_slot_start() const {
    return total_symbols_ % kSymbolsPerSlot == 0;
  }

  /// Jump to an absolute virtual time (checkpoint restore). Negative
  /// values are clamped to 0.
  void set_total_symbols(std::int64_t symbols) {
    total_symbols_ = symbols < 0 ? 0 : symbols;
  }

 private:
  Scs scs_;
  std::int64_t total_symbols_ = 0;
};

}  // namespace rb
