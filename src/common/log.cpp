#include "common/log.h"

#include <atomic>
#include <cstdio>

namespace rb {
namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_tag(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel lvl) {
  g_level.store(lvl, std::memory_order_relaxed);
}

void log_write(LogLevel lvl, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  std::fprintf(stderr, "[rb %s] %s\n", level_tag(lvl), buf);
}

}  // namespace rb
