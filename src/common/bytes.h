// Bounds-checked big-endian buffer reader/writer.
//
// All fronthaul wire formats are big-endian; these helpers centralize the
// byte-order handling so the protocol encoders read like the spec tables.
// Overruns are reported through an ok() flag rather than exceptions so the
// parser can reject truncated frames cheaply on the datapath.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

namespace rb {

/// Sequential big-endian writer over a caller-owned byte span.
class BufWriter {
 public:
  explicit BufWriter(std::span<std::uint8_t> buf) : buf_(buf) {}

  bool ok() const { return ok_; }
  std::size_t written() const { return pos_; }
  std::size_t remaining() const { return buf_.size() - pos_; }

  void u8(std::uint8_t v) { put(&v, 1); }
  void u16(std::uint16_t v) {
    std::uint8_t b[2] = {std::uint8_t(v >> 8), std::uint8_t(v)};
    put(b, 2);
  }
  void u24(std::uint32_t v) {
    std::uint8_t b[3] = {std::uint8_t(v >> 16), std::uint8_t(v >> 8),
                         std::uint8_t(v)};
    put(b, 3);
  }
  void u32(std::uint32_t v) {
    std::uint8_t b[4] = {std::uint8_t(v >> 24), std::uint8_t(v >> 16),
                         std::uint8_t(v >> 8), std::uint8_t(v)};
    put(b, 4);
  }
  void bytes(std::span<const std::uint8_t> src) { put(src.data(), src.size()); }

  /// Reserve space and return its offset; used to backpatch length fields.
  std::size_t reserve_u16() {
    std::size_t at = pos_;
    u16(0);
    return at;
  }
  void patch_u16(std::size_t at, std::uint16_t v) {
    if (at + 2 <= buf_.size()) {
      buf_[at] = std::uint8_t(v >> 8);
      buf_[at + 1] = std::uint8_t(v);
    }
  }

 private:
  void put(const std::uint8_t* src, std::size_t n) {
    if (!ok_ || pos_ + n > buf_.size()) {
      ok_ = false;
      return;
    }
    std::memcpy(buf_.data() + pos_, src, n);
    pos_ += n;
  }

  std::span<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Sequential big-endian reader over a const byte span.
class BufReader {
 public:
  explicit BufReader(std::span<const std::uint8_t> buf) : buf_(buf) {}

  bool ok() const { return ok_; }
  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return buf_.size() - pos_; }

  std::uint8_t u8() {
    std::uint8_t v = 0;
    get(&v, 1);
    return v;
  }
  std::uint16_t u16() {
    std::uint8_t b[2] = {};
    get(b, 2);
    return std::uint16_t((b[0] << 8) | b[1]);
  }
  std::uint32_t u24() {
    std::uint8_t b[3] = {};
    get(b, 3);
    return std::uint32_t((b[0] << 16) | (b[1] << 8) | b[2]);
  }
  std::uint32_t u32() {
    std::uint8_t b[4] = {};
    get(b, 4);
    return (std::uint32_t(b[0]) << 24) | (std::uint32_t(b[1]) << 16) |
           (std::uint32_t(b[2]) << 8) | b[3];
  }
  /// View of the next n bytes without copying; empty span on underrun.
  std::span<const std::uint8_t> view(std::size_t n) {
    if (!ok_ || pos_ + n > buf_.size()) {
      ok_ = false;
      return {};
    }
    auto s = buf_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  void skip(std::size_t n) { (void)view(n); }

 private:
  void get(std::uint8_t* dst, std::size_t n) {
    if (!ok_ || pos_ + n > buf_.size()) {
      ok_ = false;
      return;
    }
    std::memcpy(dst, buf_.data() + pos_, n);
    pos_ += n;
  }

  std::span<const std::uint8_t> buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Pack/unpack a stream of fixed-width signed integers (mantissa packing
/// for BFP and other O-RAN compression methods). Width 1..16 bits.
class BitWriter {
 public:
  explicit BitWriter(std::span<std::uint8_t> buf) : buf_(buf) {}

  bool ok() const { return ok_; }
  /// Bytes consumed, rounding the final partial byte up.
  std::size_t bytes_written() const { return (bitpos_ + 7) / 8; }

  /// Write the low `width` bits of v (two's complement for negatives).
  /// Byte-at-a-time insertion keeps this fast enough for the per-PRB
  /// compression hot path.
  void put(std::int32_t v, int width) {
    std::uint32_t u =
        std::uint32_t(v) & ((width == 32) ? ~0u : ((1u << width) - 1));
    int left = width;
    while (left > 0) {
      std::size_t byte = bitpos_ / 8;
      if (byte >= buf_.size()) {
        ok_ = false;
        return;
      }
      const int bit_off = int(bitpos_ % 8);     // bits already used in byte
      const int room = 8 - bit_off;             // bits available in byte
      const int take = left < room ? left : room;
      const std::uint32_t chunk =
          (u >> (left - take)) & ((1u << take) - 1);
      buf_[byte] = std::uint8_t(buf_[byte] |
                                (chunk << (room - take)));
      bitpos_ += std::size_t(take);
      left -= take;
    }
  }

 private:
  std::span<std::uint8_t> buf_;
  std::size_t bitpos_ = 0;
  bool ok_ = true;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> buf) : buf_(buf) {}

  bool ok() const { return ok_; }

  /// Read `width` bits as a sign-extended integer (byte-at-a-time).
  std::int32_t get(int width) {
    std::uint32_t u = 0;
    int left = width;
    while (left > 0) {
      std::size_t byte = bitpos_ / 8;
      if (byte >= buf_.size()) {
        ok_ = false;
        return 0;
      }
      const int bit_off = int(bitpos_ % 8);
      const int room = 8 - bit_off;
      const int take = left < room ? left : room;
      const std::uint32_t chunk =
          (std::uint32_t(buf_[byte]) >> (room - take)) & ((1u << take) - 1);
      u = (u << take) | chunk;
      bitpos_ += std::size_t(take);
      left -= take;
    }
    // Sign-extend from `width` bits.
    if (width < 32 && (u & (1u << (width - 1)))) u |= ~((1u << width) - 1);
    return std::int32_t(u);
  }

 private:
  std::span<const std::uint8_t> buf_;
  std::size_t bitpos_ = 0;
  bool ok_ = true;
};

}  // namespace rb
