#include "common/mac_addr.h"

#include <cstdio>

namespace rb {

std::string MacAddr::str() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes[0],
                bytes[1], bytes[2], bytes[3], bytes[4], bytes[5]);
  return buf;
}

MacAddr MacAddr::parse(const std::string& s) {
  MacAddr m{};
  unsigned v[6];
  if (std::sscanf(s.c_str(), "%x:%x:%x:%x:%x:%x", &v[0], &v[1], &v[2], &v[3],
                  &v[4], &v[5]) != 6)
    return {};
  for (int i = 0; i < 6; ++i) m.bytes[i] = std::uint8_t(v[i]);
  return m;
}

}  // namespace rb
