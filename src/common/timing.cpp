#include "common/timing.h"

#include <cmath>
#include <cstdio>

namespace rb {

double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }
double linear_to_db(double linear) { return 10.0 * std::log10(linear); }

const char* to_string(Direction d) {
  return d == Direction::Uplink ? "UL" : "DL";
}

std::string SlotPoint::str() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "f%u.sf%u.s%u.sym%u", frame, subframe, slot,
                symbol);
  return buf;
}

SlotPoint SlotClock::now() const {
  const int spsf = slots_per_subframe(scs_);
  std::int64_t slots = total_symbols_ / kSymbolsPerSlot;
  SlotPoint p;
  p.symbol = static_cast<std::uint8_t>(total_symbols_ % kSymbolsPerSlot);
  p.slot = static_cast<std::uint8_t>(slots % spsf);
  std::int64_t subframes = slots / spsf;
  p.subframe = static_cast<std::uint8_t>(subframes % 10);
  p.frame = static_cast<std::uint8_t>((subframes / 10) % 256);
  return p;
}

void SlotClock::advance_slot() {
  // Jump to the start of the next slot regardless of current symbol.
  total_symbols_ += kSymbolsPerSlot - (total_symbols_ % kSymbolsPerSlot);
}

}  // namespace rb
