// Thread-role flags used to debug-assert threading contracts.
//
// The exec worker pool marks its threads at startup; code that must only
// run on the coordinator (e.g. Telemetry::publish/subscribe under
// ExecPolicy::parallel) asserts !on_exec_worker_thread().
#pragma once

namespace rb {

namespace detail {
inline thread_local bool t_exec_worker = false;
inline thread_local int t_shard_coordinator = 0;
}  // namespace detail

/// True on threads owned by exec::WorkerPool, false on the coordinator
/// (and any other) thread. A pool worker acting as the coordinator of a
/// nested engine (city mode: each cell's SlotEngine runs inside an outer
/// worker-pool job) is NOT an exec worker for contract purposes — it owns
/// that cell's entire state for the duration of the shard job.
inline bool on_exec_worker_thread() {
  return detail::t_exec_worker && detail::t_shard_coordinator == 0;
}

/// Called once by each pool worker as it starts. Not for general use.
inline void mark_exec_worker_thread() { detail::t_exec_worker = true; }

/// RAII: marks the current thread as the coordinator of a nested
/// (per-cell) engine while in scope. The city conductor wraps each cell
/// shard job in this so coordinator-only contracts (Telemetry
/// publish/subscribe) hold for the cell-local state the worker owns.
class ShardCoordinatorScope {
 public:
  ShardCoordinatorScope() { ++detail::t_shard_coordinator; }
  ~ShardCoordinatorScope() { --detail::t_shard_coordinator; }
  ShardCoordinatorScope(const ShardCoordinatorScope&) = delete;
  ShardCoordinatorScope& operator=(const ShardCoordinatorScope&) = delete;
};

}  // namespace rb
