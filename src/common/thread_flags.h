// Thread-role flags used to debug-assert threading contracts.
//
// The exec worker pool marks its threads at startup; code that must only
// run on the coordinator (e.g. Telemetry::publish/subscribe under
// ExecPolicy::parallel) asserts !on_exec_worker_thread().
#pragma once

namespace rb {

namespace detail {
inline thread_local bool t_exec_worker = false;
}  // namespace detail

/// True on threads owned by exec::WorkerPool, false on the coordinator
/// (and any other) thread.
inline bool on_exec_worker_thread() { return detail::t_exec_worker; }

/// Called once by each pool worker as it starts. Not for general use.
inline void mark_exec_worker_thread() { detail::t_exec_worker = true; }

}  // namespace rb
