// Small vector with inline storage: the first N elements live inside the
// object; only growth past N touches the heap.
//
// Built for the per-packet tx queue on the middlebox hot path, where the
// typical fan-out (DAS replicates to a handful of RUs) fits inline and a
// std::vector would pay one allocation per processed packet. Move-only,
// minimal interface - this is a buffer, not a general container.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace rb {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(N > 0, "inline capacity must be non-zero");

 public:
  SmallVec() = default;
  SmallVec(const SmallVec&) = delete;
  SmallVec& operator=(const SmallVec&) = delete;

  SmallVec(SmallVec&& other) noexcept { steal(other); }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      destroy();
      steal(other);
    }
    return *this;
  }

  ~SmallVec() { destroy(); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) grow();
    T* slot = data() + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }
  void push_back(T value) { emplace_back(std::move(value)); }

  /// Destroy elements; keeps any heap block for reuse.
  void clear() {
    T* p = data();
    for (std::size_t k = size_; k > 0; --k) p[k - 1].~T();
    size_ = 0;
  }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  T& operator[](std::size_t k) { return data()[k]; }
  const T& operator[](std::size_t k) const { return data()[k]; }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return cap_; }
  bool empty() const { return size_ == 0; }
  bool spilled() const { return heap_ != nullptr; }

 private:
  T* data() { return heap_ ? heap_ : inline_data(); }
  const T* data() const { return heap_ ? heap_ : inline_data(); }
  T* inline_data() { return std::launder(reinterpret_cast<T*>(inline_)); }
  const T* inline_data() const {
    return std::launder(reinterpret_cast<const T*>(inline_));
  }

  void grow() {
    const std::size_t new_cap = cap_ * 2;
    T* nb = static_cast<T*>(
        ::operator new(new_cap * sizeof(T), std::align_val_t(alignof(T))));
    T* src = data();
    for (std::size_t k = 0; k < size_; ++k) {
      ::new (static_cast<void*>(nb + k)) T(std::move(src[k]));
      src[k].~T();
    }
    if (heap_ != nullptr)
      ::operator delete(heap_, std::align_val_t(alignof(T)));
    heap_ = nb;
    cap_ = new_cap;
  }

  void destroy() {
    clear();
    if (heap_ != nullptr) {
      ::operator delete(heap_, std::align_val_t(alignof(T)));
      heap_ = nullptr;
      cap_ = N;
    }
  }

  /// Move-construct from `other`, leaving it empty (heap block included).
  void steal(SmallVec& other) {
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      cap_ = other.cap_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.cap_ = N;
      other.size_ = 0;
    } else {
      heap_ = nullptr;
      cap_ = N;
      size_ = other.size_;
      T* src = other.inline_data();
      for (std::size_t k = 0; k < size_; ++k) {
        ::new (static_cast<void*>(inline_data() + k)) T(std::move(src[k]));
        src[k].~T();
      }
      other.size_ = 0;
    }
  }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

}  // namespace rb
