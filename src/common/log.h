// Minimal leveled logger.
//
// The datapath never logs per-packet at Info or above; Debug is compiled in
// but filtered at runtime, which keeps the hot path free of formatting cost
// when disabled (the level check is a single load).
#pragma once

#include <cstdarg>
#include <cstdint>

namespace rb {

enum class LogLevel : std::uint8_t { Debug = 0, Info, Warn, Error, Off };

LogLevel log_level();
void set_log_level(LogLevel lvl);

void log_write(LogLevel lvl, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

#define RB_LOG(lvl, ...)                                  \
  do {                                                    \
    if (::rb::log_level() <= (lvl)) ::rb::log_write((lvl), __VA_ARGS__); \
  } while (0)

#define RB_DEBUG(...) RB_LOG(::rb::LogLevel::Debug, __VA_ARGS__)
#define RB_INFO(...) RB_LOG(::rb::LogLevel::Info, __VA_ARGS__)
#define RB_WARN(...) RB_LOG(::rb::LogLevel::Warn, __VA_ARGS__)
#define RB_ERROR(...) RB_LOG(::rb::LogLevel::Error, __VA_ARGS__)

}  // namespace rb
