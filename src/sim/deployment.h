// Deployment builder: assembles DUs, RUs, middleboxes, fabric and UEs into
// runnable topologies, owning every object. This is the experiment-facing
// API: each paper scenario (baseline cell, DAS floor, dMIMO, shared RU,
// chained services) is a few builder calls.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/chain.h"
#include "core/middlebox.h"
#include "ctrl/controller.h"
#include "net/fault.h"
#include "mb/das.h"
#include "mb/dmimo.h"
#include "mb/failover.h"
#include "mb/prbmon.h"
#include "mb/rushare.h"
#include "net/switch.h"
#include "ran/engine.h"
#include "sim/floorplan.h"
#include "sim/traffic.h"

namespace rb {

class Deployment {
 public:
  explicit Deployment(ChannelParams channel = {}, Scs scs = Scs::kHz30);

  struct DuHandle {
    DuModel* du = nullptr;
    Port* port = nullptr;
    CellId cell = -1;
    int index = -1;
  };
  struct RuHandle {
    RuModel* ru = nullptr;
    Port* port = nullptr;
    RuId id = -1;
    MacAddr mac{};
    int index = -1;
  };

  // --- building blocks ------------------------------------------------
  /// Create a DU + cell. The cell is registered with the AirModel; the
  /// fronthaul context is derived from the vendor profile. City mode can
  /// build a DU that the engine does NOT drive (`engine_driven = false`):
  /// a neutral-host guest DU stepped by the conductor at a virtual slot
  /// offset instead; `ul_match_slots > 1` widens its UL matching window
  /// (see DuConfig::ul_match_slots).
  DuHandle add_du(CellConfig cell, const VendorProfile& vendor,
                  std::uint8_t du_index, bool engine_driven = true,
                  int ul_match_slots = 1);

  /// Create an RU at a site. `fh` must match the driving DU's framing.
  RuHandle add_ru(const RuSite& site, std::uint8_t ru_index,
                  const FhContext& fh);

  /// Plain deployment: wire DU <-> RU directly and assign the RU to the
  /// cell (identity layer map, given PRB offset).
  void connect_direct(DuHandle& du, RuHandle& ru, int prb_offset = 0,
                      std::vector<LayerMap> layers = {});

  /// DAS middlebox between one DU and a set of RUs (paper 4.1).
  MiddleboxRuntime& add_das(DuHandle& du, const std::vector<RuHandle*>& rus,
                            DriverKind driver = DriverKind::Dpdk,
                            int workers = 1);

  /// dMIMO middlebox combining RUs into one virtual RU (paper 4.2).
  MiddleboxRuntime& add_dmimo(DuHandle& du, const std::vector<RuHandle*>& rus,
                              DriverKind driver = DriverKind::Dpdk,
                              bool copy_ssb = true);

  /// RU-sharing middlebox: several DUs over one RU (paper 4.3).
  /// PRB offsets are derived from the DU/RU center frequencies (aligned
  /// grids, Appendix A.1.1) unless `shift_sc` forces misalignment.
  MiddleboxRuntime& add_rushare(const std::vector<DuHandle*>& dus,
                                RuHandle& ru,
                                DriverKind driver = DriverKind::Dpdk,
                                int shift_sc = 0);

  /// Transparent PRB monitor between a DU and an RU (paper 4.4).
  MiddleboxRuntime& add_prbmon(DuHandle& du, RuHandle& ru,
                               DriverKind driver = DriverKind::Dpdk);

  /// Resilience middlebox: primary/standby DU in front of one RU (paper
  /// 8.1). The standby runs the same cell (state replication out of
  /// scope); the middlebox fails over on fronthaul-heartbeat loss.
  MiddleboxRuntime& add_failover(DuHandle& primary, DuHandle& standby,
                                 RuHandle& ru,
                                 DriverKind driver = DriverKind::Dpdk);

  /// Attach a fault-injection plan to the link `near` is plugged into.
  /// `tx_plan` perturbs frames leaving `near`, `rx_plan` frames arriving
  /// at it (i.e. leaving the peer). The link must already be connected.
  /// Scheduled flaps are driven from the engine's begin-of-slot hook, so
  /// call this after the topology is built but before running slots.
  FaultyLink& add_fault(Port& near, const FaultPlan& tx_plan,
                        const FaultPlan& rx_plan = {}, std::string name = "");

  /// Fixed-order dump of every fault link's counters, for determinism
  /// snapshots and chaos-test fingerprints.
  std::string fault_dump() const;

  /// Closed-loop adaptation controller, ticked at the engine's
  /// begin-of-slot barrier (after the fault hooks registered so far, so
  /// it samples a fully settled previous slot). Supervised links are
  /// added with ctrl_watch().
  ctrl::AdaptationController& add_controller(ctrl::CtrlConfig cfg = {});

  /// Supervise one RU fronthaul link: quality comes from `link`'s A->B
  /// direction (add_fault with `near` = the RU's port makes that the
  /// uplink), actuation targets `rt`'s middlebox (DAS membership or dMIMO
  /// gate, chosen by the app's type) plus the RU's uplink BFP width.
  /// Returns the controller's link index.
  int ctrl_watch(ctrl::AdaptationController& c, FaultyLink& link,
                 MiddleboxRuntime& rt, RuHandle& ru);

  /// Fixed-order dump of every controller's state, for determinism
  /// snapshots (ISSUE 6: controller state is part of the fingerprint).
  std::string ctrl_dump() const;

  /// UE with optional offered traffic through a DU.
  UeId add_ue(const Position& pos, DuHandle* du = nullptr,
              double dl_mbps = 0, double ul_mbps = 0, int pci_lock = -1,
              int max_layers = 4);

  // --- running & measuring ---------------------------------------------
  /// Warm up until all UEs attach (SSB + PRACH through the datapath).
  bool attach_all(int max_slots = 600) {
    return engine.run_until_attached(max_slots);
  }
  /// Reset throughput counters, run `slots`, remember the window.
  void measure(int slots);
  double dl_mbps(UeId ue) const;
  double ul_mbps(UeId ue) const;

  /// PRB offset of a DU's grid inside an RU's grid (aligned case).
  static int prb_offset_in_ru(const CellConfig& du_cell, const RuSite& ru);

  // --- members (public on purpose: experiments poke at everything) -----
  /// City mode: prepended to every generated port/switch/runtime/ctrl
  /// name (e.g. "c3/") so names stay unique across cell shards. Set
  /// before building; empty (the default) changes nothing.
  std::string name_prefix;
  /// City mode: stamped into every runtime's Config::cell so telemetry
  /// and Prometheus series carry a cell label. Empty = no label.
  std::string cell_label;

  AirModel air;
  SlotEngine engine;
  TrafficGen traffic;
  Floorplan plan;

  std::vector<std::unique_ptr<Port>> ports;
  std::vector<std::unique_ptr<EmbeddedSwitch>> switches;
  std::vector<std::unique_ptr<DuModel>> dus;
  std::vector<std::unique_ptr<RuModel>> rus;
  std::vector<std::unique_ptr<MiddleboxApp>> apps;
  std::vector<std::unique_ptr<MiddleboxRuntime>> runtimes;
  std::vector<std::unique_ptr<FaultyLink>> faults;
  std::vector<std::unique_ptr<ctrl::AdaptationController>> controllers;

  Port& new_port(const std::string& name);
  EmbeddedSwitch& new_switch(const std::string& name);

 private:
  std::int64_t measure_window_ns_ = 0;
};

}  // namespace rb
