// The evaluation building: five 50.9 m x 20.9 m floors with four
// ceiling-mounted RUs each (paper section 6.1, Figure 9a).
#pragma once

#include <algorithm>
#include <vector>

#include "ran/channel.h"

namespace rb {

struct Floorplan {
  double width_m = 50.9;
  double depth_m = 20.9;
  int floors = 5;
  int rus_per_floor = 4;

  /// Ceiling RU placement: evenly spaced along the long axis, centered in
  /// depth - the placement that gives dead-spot-free coverage (6.3.1).
  Position ru_position(int floor, int idx) const {
    Position p;
    p.x = (double(idx) + 0.5) * width_m / double(rus_per_floor);
    p.y = depth_m / 2.0;
    p.floor = floor;
    return p;
  }

  /// A position `d` meters from an RU (along x, clamped into the floor).
  Position near_ru(int floor, int idx, double d) const {
    Position p = ru_position(floor, idx);
    p.x = std::min(width_m - 0.5, std::max(0.5, p.x + d));
    return p;
  }

  /// Serpentine walk route across one floor (the Figure 11 measurement
  /// walk): `nx * ny` grid points covering the floor.
  std::vector<Position> walk_route(int floor, int nx = 16, int ny = 4) const;

  double area_sqft() const {
    return width_m * depth_m * 10.7639 * double(floors);
  }
};

}  // namespace rb
