#include "sim/hitless.h"

#include <chrono>
#include <sstream>

#include "common/state_stats.h"
#include "obs/obs.h"

namespace rb {
namespace {

/// Section versions written by this builder. Readers accept exactly
/// these; a newer format bumps the version and keeps a compat path.
constexpr std::uint32_t kVer = 1;

/// Bounded audit log (newest last).
constexpr std::size_t kLogCap = 256;

}  // namespace

std::vector<std::uint8_t> checkpoint(const Deployment& d) {
  state::StateWriter w;

  // Shape fingerprint: instance counts in builder order. Restore
  // validates these before touching any component.
  w.begin_section(state::kSecMeta, kVer);
  w.i64(d.engine.clock().total_symbols());
  w.u32(std::uint32_t(d.ports.size()));
  w.u32(std::uint32_t(d.switches.size()));
  w.u32(std::uint32_t(d.dus.size()));
  w.u32(std::uint32_t(d.rus.size()));
  w.u32(std::uint32_t(d.faults.size()));
  w.u32(std::uint32_t(d.runtimes.size()));
  w.u32(std::uint32_t(d.controllers.size()));
  w.end_section();

  w.begin_section(state::kSecClock, kVer);
  w.i64(d.engine.clock().total_symbols());
  w.end_section();

  w.begin_section(state::kSecAir, kVer);
  d.air.save_state(w);
  w.end_section();

  w.begin_section(state::kSecTraffic, kVer);
  d.traffic.save_state(w);
  w.end_section();

  w.begin_section(state::kSecPort, kVer);
  w.u32(std::uint32_t(d.ports.size()));
  for (const auto& p : d.ports) p->save_state(w);
  w.end_section();

  w.begin_section(state::kSecSwitch, kVer);
  w.u32(std::uint32_t(d.switches.size()));
  for (const auto& s : d.switches) s->save_state(w);
  w.end_section();

  w.begin_section(state::kSecDu, kVer);
  w.u32(std::uint32_t(d.dus.size()));
  for (const auto& du : d.dus) du->save_state(w);
  w.end_section();

  w.begin_section(state::kSecRu, kVer);
  w.u32(std::uint32_t(d.rus.size()));
  for (const auto& ru : d.rus) ru->save_state(w);
  w.end_section();

  w.begin_section(state::kSecFault, kVer);
  w.u32(std::uint32_t(d.faults.size()));
  for (const auto& f : d.faults) f->save_state(w);
  w.end_section();

  w.begin_section(state::kSecRuntime, kVer);
  w.u32(std::uint32_t(d.runtimes.size()));
  for (const auto& rt : d.runtimes) rt->save_state(w);
  w.end_section();

  w.begin_section(state::kSecCtrl, kVer);
  w.u32(std::uint32_t(d.controllers.size()));
  for (const auto& c : d.controllers) c->save_state(w);
  w.end_section();

  std::vector<std::uint8_t> blob = w.finish();
  statestats::checkpoints_total().fetch_add(1, std::memory_order_relaxed);
  statestats::checkpoint_bytes_last().store(blob.size(),
                                            std::memory_order_relaxed);
  return blob;
}

RestoreResult restore(Deployment& d, const std::vector<std::uint8_t>& blob) {
  state::StateReader r(blob);
  RestoreResult res;
  const auto fail = [&](const char* where) {
    res.error =
        r.ok() ? state::StateError::kMismatch : r.error();
    res.detail = where;
    statestats::restore_errors_total().fetch_add(1,
                                                 std::memory_order_relaxed);
    return res;
  };

  std::uint32_t seen_mask = 0;  // bit per known section id
  std::int64_t symbols = -1;
  state::SectionInfo info;
  while (r.next_section(&info)) {
    // Version gate per known section; unknown ids skip (a newer writer
    // may append sections this reader has never heard of).
    const bool known = info.id >= state::kSecMeta &&
                       info.id <= state::kSecSwitch;
    if (known) {
      if (info.version != kVer) {
        r.fail(state::StateError::kBadVersion);
        return fail("version");
      }
      seen_mask |= 1u << info.id;
    }
    switch (info.id) {
      case state::kSecMeta: {
        (void)r.i64();  // checkpoint symbol count (read again via kSecClock)
        const bool shape_ok = r.u32() == d.ports.size() &&
                              r.u32() == d.switches.size() &&
                              r.u32() == d.dus.size() &&
                              r.u32() == d.rus.size() &&
                              r.u32() == d.faults.size() &&
                              r.u32() == d.runtimes.size() &&
                              r.u32() == d.controllers.size();
        if (!r.ok() || !shape_ok) {
          r.fail(state::StateError::kMismatch);
          return fail("meta");
        }
        break;
      }
      case state::kSecClock:
        symbols = r.i64();
        break;
      case state::kSecAir:
        d.air.load_state(r);
        if (!r.ok()) return fail("air");
        break;
      case state::kSecTraffic:
        d.traffic.load_state(r);
        if (!r.ok()) return fail("traffic");
        break;
      case state::kSecPort: {
        if (r.count(1) != d.ports.size()) {
          r.fail(state::StateError::kMismatch);
          return fail("ports");
        }
        for (auto& p : d.ports) {
          p->load_state(r, PacketPool::default_pool());
          if (!r.ok()) return fail("ports");
        }
        break;
      }
      case state::kSecSwitch: {
        if (r.count(1) != d.switches.size()) {
          r.fail(state::StateError::kMismatch);
          return fail("switches");
        }
        for (auto& s : d.switches) {
          s->load_state(r);
          if (!r.ok()) return fail("switches");
        }
        break;
      }
      case state::kSecDu: {
        if (r.count(1) != d.dus.size()) {
          r.fail(state::StateError::kMismatch);
          return fail("dus");
        }
        for (auto& du : d.dus) {
          du->load_state(r);
          if (!r.ok()) return fail("dus");
        }
        break;
      }
      case state::kSecRu: {
        if (r.count(1) != d.rus.size()) {
          r.fail(state::StateError::kMismatch);
          return fail("rus");
        }
        for (auto& ru : d.rus) {
          ru->load_state(r);
          if (!r.ok()) return fail("rus");
        }
        break;
      }
      case state::kSecFault: {
        if (r.count(1) != d.faults.size()) {
          r.fail(state::StateError::kMismatch);
          return fail("faults");
        }
        for (auto& f : d.faults) {
          f->load_state(r);
          if (!r.ok()) return fail("faults");
        }
        break;
      }
      case state::kSecRuntime: {
        if (r.count(1) != d.runtimes.size()) {
          r.fail(state::StateError::kMismatch);
          return fail("runtimes");
        }
        for (auto& rt : d.runtimes) {
          rt->load_state(r);
          if (!r.ok()) return fail("runtimes");
        }
        break;
      }
      case state::kSecCtrl: {
        if (r.count(1) != d.controllers.size()) {
          r.fail(state::StateError::kMismatch);
          return fail("controllers");
        }
        for (auto& c : d.controllers) {
          c->load_state(r);
          if (!r.ok()) return fail("controllers");
        }
        break;
      }
      default:
        break;  // unknown section: skip_section below tolerates it
    }
    r.skip_section();
    if (!r.ok()) return fail("section");
  }
  if (!r.ok()) return fail("blob");
  // A restore (unlike a forward-compat read) requires every section this
  // builder writes: a blob missing one - e.g. an id corrupted into an
  // unknown value and skipped - must not half-restore silently.
  std::uint32_t want_mask = 0;
  for (std::uint32_t id = state::kSecMeta; id <= state::kSecSwitch; ++id)
    want_mask |= 1u << id;
  if ((seen_mask & want_mask) != want_mask || symbols < 0) {
    r.fail(state::StateError::kMismatch);
    return fail("section-missing");
  }
  d.engine.restore_clock_symbols(symbols);
  statestats::restores_total().fetch_add(1, std::memory_order_relaxed);
  return res;
}

// --- live reconfiguration ---------------------------------------------

std::string ReconfigOp::str() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::DasSetMember:
      os << "das[" << index << "] member " << mac.str() << " "
         << (enable ? "admit" : "eject");
      break;
    case Kind::DmimoSetGate:
      os << "dmimo[" << index << "] ru" << arg << " gate "
         << (enable ? "open" : "closed");
      break;
    case Kind::FailoverTarget:
      os << "failover[" << index << "] target port" << arg;
      break;
    case Kind::FailoverRetune:
      os << "failover[" << index << "] retune liveness=" << arg
         << " dwell=" << min_dwell_slots
         << " confirm=" << failback_confirm_slots
         << " failback=" << (enable ? 1 : 0);
      break;
    case Kind::CtrlRetune:
      os << "ctrl[" << index << "] retune loss_reduce=" << ctrl_cfg.loss_reduce
         << " loss_eject=" << ctrl_cfg.loss_eject
         << " delay_eject_ns=" << ctrl_cfg.delay_eject_ns;
      break;
    case Kind::RuSetUlIqWidth:
      os << "ru[" << index << "] ul_iq_width=" << arg;
      break;
  }
  return os.str();
}

ReconfigManager::ReconfigManager(Deployment& d) : d_(&d) {
  obs_name_ = obs::Collector::instance().intern_name("reconfig.apply");
  obs_track_ = obs::Collector::instance().intern_track("reconfig");
  d.engine.add_begin_slot_hook([this](std::int64_t slot) { on_slot(slot); });
}

std::size_t ReconfigManager::request(const DesiredConfig& desired) {
  std::size_t queued = 0;
  const auto reject = [&] {
    ++rejected_;
    statestats::reconfig_rejected_total().fetch_add(1,
                                                    std::memory_order_relaxed);
  };
  const auto app_at = [&](std::size_t i) -> MiddleboxApp* {
    return i < d_->runtimes.size() ? &d_->runtimes[i]->app() : nullptr;
  };

  for (const auto& m : desired.das_members) {
    auto* das = dynamic_cast<DasMiddlebox*>(app_at(m.runtime));
    if (!das) {
      reject();
      continue;
    }
    if (das->member_active(m.mac) == m.active) continue;  // converged
    ReconfigOp op;
    op.kind = ReconfigOp::Kind::DasSetMember;
    op.index = m.runtime;
    op.mac = m.mac;
    op.enable = m.active;
    queue(op);
    ++queued;
  }
  for (const auto& g : desired.dmimo_gates) {
    auto* dm = dynamic_cast<DmimoMiddlebox*>(app_at(g.runtime));
    if (!dm) {
      reject();
      continue;
    }
    if (dm->ru_gated(g.ru) == g.gated) continue;
    ReconfigOp op;
    op.kind = ReconfigOp::Kind::DmimoSetGate;
    op.index = g.runtime;
    op.arg = int(g.ru);
    op.enable = !g.gated;
    queue(op);
    ++queued;
  }
  for (const auto& t : desired.failover_targets) {
    auto* fo = dynamic_cast<FailoverMiddlebox*>(app_at(t.runtime));
    if (!fo) {
      reject();
      continue;
    }
    if (fo->active_port() == t.port) continue;
    ReconfigOp op;
    op.kind = ReconfigOp::Kind::FailoverTarget;
    op.index = t.runtime;
    op.arg = t.port;
    queue(op);
    ++queued;
  }
  for (const auto& t : desired.failover_tunings) {
    auto* fo = dynamic_cast<FailoverMiddlebox*>(app_at(t.runtime));
    if (!fo) {
      reject();
      continue;
    }
    const FailoverConfig& c = fo->config();
    if (c.liveness_slots == t.liveness_slots && c.failback == t.failback &&
        c.min_dwell_slots == t.min_dwell_slots &&
        c.failback_confirm_slots == t.failback_confirm_slots)
      continue;
    ReconfigOp op;
    op.kind = ReconfigOp::Kind::FailoverRetune;
    op.index = t.runtime;
    op.arg = t.liveness_slots;
    op.enable = t.failback;
    op.min_dwell_slots = t.min_dwell_slots;
    op.failback_confirm_slots = t.failback_confirm_slots;
    queue(op);
    ++queued;
  }
  for (const auto& t : desired.ctrl_tunings) {
    if (t.controller >= d_->controllers.size()) {
      reject();
      continue;
    }
    const ctrl::CtrlConfig& c = d_->controllers[t.controller]->config();
    const ctrl::CtrlConfig& n = t.cfg;
    if (c.alpha == n.alpha && c.loss_reduce == n.loss_reduce &&
        c.degraded_iq_width == n.degraded_iq_width &&
        c.delay_eject_ns == n.delay_eject_ns &&
        c.loss_eject == n.loss_eject && c.loss_recover == n.loss_recover &&
        c.delay_recover_ns == n.delay_recover_ns &&
        c.hold_slots == n.hold_slots &&
        c.recover_hold_slots == n.recover_hold_slots &&
        c.dwell_slots == n.dwell_slots && c.enable_width == n.enable_width &&
        c.enable_membership == n.enable_membership)
      continue;
    ReconfigOp op;
    op.kind = ReconfigOp::Kind::CtrlRetune;
    op.index = t.controller;
    op.ctrl_cfg = t.cfg;
    queue(op);
    ++queued;
  }
  for (const auto& wdt : desired.ru_widths) {
    if (wdt.ru >= d_->rus.size()) {
      reject();
      continue;
    }
    if (d_->rus[wdt.ru]->ul_iq_width() == wdt.width) continue;
    ReconfigOp op;
    op.kind = ReconfigOp::Kind::RuSetUlIqWidth;
    op.index = wdt.ru;
    op.arg = wdt.width;
    queue(op);
    ++queued;
  }
  return queued;
}

bool ReconfigManager::apply(const ReconfigOp& op) {
  const auto app_at = [&](std::size_t i) -> MiddleboxApp* {
    return i < d_->runtimes.size() ? &d_->runtimes[i]->app() : nullptr;
  };
  switch (op.kind) {
    case ReconfigOp::Kind::DasSetMember: {
      auto* das = dynamic_cast<DasMiddlebox*>(app_at(op.index));
      return das && das->set_member_active(op.mac, op.enable);
    }
    case ReconfigOp::Kind::DmimoSetGate: {
      auto* dm = dynamic_cast<DmimoMiddlebox*>(app_at(op.index));
      return dm && dm->set_ru_gated(std::size_t(op.arg), !op.enable);
    }
    case ReconfigOp::Kind::FailoverTarget: {
      auto* fo = dynamic_cast<FailoverMiddlebox*>(app_at(op.index));
      return fo && fo->force_active(op.arg);
    }
    case ReconfigOp::Kind::FailoverRetune: {
      auto* fo = dynamic_cast<FailoverMiddlebox*>(app_at(op.index));
      if (!fo) return false;
      fo->retune(op.arg, op.enable, op.min_dwell_slots,
                 op.failback_confirm_slots);
      return true;
    }
    case ReconfigOp::Kind::CtrlRetune: {
      if (op.index >= d_->controllers.size()) return false;
      d_->controllers[op.index]->retune(op.ctrl_cfg);
      return true;
    }
    case ReconfigOp::Kind::RuSetUlIqWidth: {
      return op.index < d_->rus.size() &&
             d_->rus[op.index]->set_ul_iq_width(op.arg);
    }
  }
  return false;
}

void ReconfigManager::on_slot(std::int64_t slot) {
  if (pending_.empty()) return;
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t ok = 0;
  for (const ReconfigOp& op : pending_) {
    if (apply(op)) {
      ++ok;
      if (log_.size() >= kLogCap) log_.erase(log_.begin());
      log_.push_back("slot " + std::to_string(slot) + ": " + op.str());
    } else {
      ++rejected_;
      statestats::reconfig_rejected_total().fetch_add(
          1, std::memory_order_relaxed);
    }
  }
  pending_.clear();
  applied_ += ok;
  ++batches_;
  statestats::reconfigs_total().fetch_add(1, std::memory_order_relaxed);
  statestats::reconfig_ops_total().fetch_add(ok, std::memory_order_relaxed);
  const std::uint64_t wall = std::uint64_t(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  statestats::note_reconfig_wall_ns(wall);
  if (obs::enabled()) {
    // Packet-category span: barrier apply latency folds into the
    // "reconfig" track's processing-latency histogram.
    obs::emit(obs::Cat::Packet, obs_name_, obs_track_,
              slot * slot_duration_ns(Scs::kHz30), std::uint32_t(wall), ok);
  }
}

std::string ReconfigManager::reconfig_mgmt(const std::string& cmd) {
  std::istringstream is(cmd);
  std::string what;
  is >> what;
  if (what == "status" || what.empty()) {
    std::ostringstream os;
    os << "batches=" << batches_ << " applied=" << applied_
       << " rejected=" << rejected_ << " pending=" << pending_.size() << "\n";
    return os.str();
  }
  if (what == "pending") return std::to_string(pending_.size());
  if (what == "log") {
    std::string out;
    for (const std::string& line : log_) out += line + "\n";
    return out.empty() ? "(empty)" : out;
  }
  return "unknown reconfig subcommand (status|pending|log)";
}

}  // namespace rb
