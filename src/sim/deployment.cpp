#include "sim/deployment.h"

#include <stdexcept>

#include "exec/shard.h"

namespace rb {
namespace {
// Canonical flow key of an RU's fronthaul streams. Every entity touching
// the RU (DU, middlebox runtime, the RU itself) binds to this key, so the
// engine's union-find fuses them into one execution island; deployments
// sharing an RU merge automatically.
std::uint64_t ru_key(RuId id) { return exec::flow_key(std::uint32_t(id), 0); }
}  // namespace

Deployment::Deployment(ChannelParams channel, Scs scs)
    : air(ChannelModel(channel), scs), engine(air, scs) {
  engine.set_traffic_hook([this](std::int64_t slot) { traffic.on_slot(slot); });
}

Port& Deployment::new_port(const std::string& name) {
  ports.push_back(std::make_unique<Port>(name));
  return *ports.back();
}

EmbeddedSwitch& Deployment::new_switch(const std::string& name) {
  switches.push_back(std::make_unique<EmbeddedSwitch>(name));
  return *switches.back();
}

Deployment::DuHandle Deployment::add_du(CellConfig cell,
                                        const VendorProfile& vendor,
                                        std::uint8_t du_index,
                                        bool engine_driven,
                                        int ul_match_slots) {
  cell.finalize();
  cell.tdd = vendor.tdd;
  // PRACH occasions must land on a full uplink slot of the vendor's TDD
  // pattern (and the 20-slot period must stay aligned with it).
  for (std::size_t s = 0; s < cell.tdd.slots.size(); ++s) {
    if (cell.tdd.ul_symbols(std::int64_t(s)) == kSymbolsPerSlot) {
      cell.prach.slot_offset = int(s);
      break;
    }
  }
  const CellId cid = air.add_cell(cell);
  DuConfig cfg;
  cfg.cell = cell;
  cfg.vendor = vendor;
  cfg.du_mac = MacAddr::du(du_index);
  cfg.ru_mac = MacAddr::ru(du_index);  // logical; middleboxes re-steer
  cfg.du_id = du_index;
  cfg.ul_match_slots = ul_match_slots;
  Port& port = new_port(name_prefix + "du" + std::to_string(du_index));
  dus.push_back(std::make_unique<DuModel>(cfg, air, cid, port));
  if (engine_driven) engine.add_du(*dus.back());
  DuHandle h;
  h.du = dus.back().get();
  h.port = &port;
  h.cell = cid;
  h.index = int(dus.size()) - 1;
  return h;
}

Deployment::RuHandle Deployment::add_ru(const RuSite& site,
                                        std::uint8_t ru_index,
                                        const FhContext& fh) {
  const RuId rid = air.add_ru(site);
  RuModelConfig cfg;
  cfg.site = site;
  cfg.ru_mac = MacAddr::ru(ru_index);
  cfg.fh = fh;
  cfg.fh.carrier_prbs = prbs_for_bandwidth(site.bandwidth, Scs::kHz30);
  Port& port = new_port(name_prefix + "ru" + std::to_string(ru_index));
  rus.push_back(std::make_unique<RuModel>(cfg, air, rid, port));
  engine.add_ru(*rus.back());
  RuHandle h;
  h.ru = rus.back().get();
  h.port = &port;
  h.id = rid;
  h.mac = cfg.ru_mac;
  h.index = int(rus.size()) - 1;
  return h;
}

void Deployment::connect_direct(DuHandle& du, RuHandle& ru, int prb_offset,
                                std::vector<LayerMap> layers) {
  Port::connect(*du.port, *ru.port, /*latency_ns=*/1'000);
  air.assign_ru(du.cell, ru.id, prb_offset, std::move(layers));
  engine.bind_affinity(*du.du, ru_key(ru.id));
  engine.bind_affinity(*ru.ru, ru_key(ru.id));
  // The DU addresses MacAddr::ru(du_index); point it at the real RU.
  // (Direct wire: addressing is checked by the RU only via eth parse.)
}

int Deployment::prb_offset_in_ru(const CellConfig& du_cell, const RuSite& ru) {
  const int ru_prbs = prbs_for_bandwidth(ru.bandwidth, Scs::kHz30);
  const Hertz ru_prb0 = ru.center_freq - 12 * scs_hz(Scs::kHz30) * ru_prbs / 2;
  return int((du_cell.prb0_freq() - ru_prb0) / (12 * scs_hz(Scs::kHz30)));
}

MiddleboxRuntime& Deployment::add_das(DuHandle& du,
                                      const std::vector<RuHandle*>& ru_list,
                                      DriverKind driver, int workers) {
  DasConfig cfg;
  cfg.du_mac = du.du->config().du_mac;
  for (auto* r : ru_list) cfg.ru_macs.push_back(r->mac);
  auto app = std::make_unique<DasMiddlebox>(cfg);

  MiddleboxRuntime::Config rc;
  rc.name = name_prefix + "das" + std::to_string(runtimes.size());
  rc.cell = cell_label;
  rc.fh = du.du->fh();
  rc.driver = driver;
  rc.n_workers = workers;
  auto rt = std::make_unique<MiddleboxRuntime>(rc, *app);

  Port& north = new_port(rc.name + ".north");
  Port& south = new_port(rc.name + ".south");
  rt->add_port("north", north);  // index 0 == DasMiddlebox::kNorth
  rt->add_port("south", south);
  Port::connect(*du.port, north, 1'000);

  EmbeddedSwitch& sw = new_switch(rc.name + ".fabric");
  Port& sw_mb = sw.add_port("mb");
  Port::connect(south, sw_mb, 500);
  sw.add_static_entry(cfg.du_mac, sw_mb);
  for (auto* r : ru_list) {
    Port& sw_ru = sw.add_port("ru" + std::to_string(r->index));
    Port::connect(*r->port, sw_ru, 500);
    sw.add_static_entry(r->mac, sw_ru);
    air.assign_ru(du.cell, r->id, /*prb_offset=*/0);
  }

  engine.add_middlebox(*rt);
  for (auto* r : ru_list) {
    engine.bind_affinity(*r->ru, ru_key(r->id));
    engine.bind_affinity(*du.du, ru_key(r->id));
    engine.bind_affinity(static_cast<Pumpable&>(*rt), ru_key(r->id));
  }
  apps.push_back(std::move(app));
  runtimes.push_back(std::move(rt));
  return *runtimes.back();
}

MiddleboxRuntime& Deployment::add_dmimo(DuHandle& du,
                                        const std::vector<RuHandle*>& ru_list,
                                        DriverKind driver, bool copy_ssb) {
  DmimoConfig cfg;
  cfg.du_mac = du.du->config().du_mac;
  cfg.copy_ssb = copy_ssb;
  const auto& ssb = du.du->config().cell.ssb;
  cfg.ssb_start_prb = ssb.start_prb;
  cfg.ssb_n_prb = ssb.n_prb;
  cfg.ssb_period_slots = ssb.period_slots;
  cfg.ssb_first_symbol = ssb.first_symbol;
  cfg.ssb_n_symbols = ssb.n_symbols;
  int base = 0;
  for (auto* r : ru_list) {
    const int ants = air.ru(r->id).n_antennas;
    cfg.rus.push_back({r->mac, ants});
    std::vector<LayerMap> layers;
    for (int a = 0; a < ants && base + a < du.du->config().cell.max_layers;
         ++a)
      layers.push_back({base + a, a});
    air.assign_ru(du.cell, r->id, 0, std::move(layers));
    base += ants;
  }
  auto app = std::make_unique<DmimoMiddlebox>(cfg);

  MiddleboxRuntime::Config rc;
  rc.name = name_prefix + "dmimo" + std::to_string(runtimes.size());
  rc.cell = cell_label;
  rc.fh = du.du->fh();
  rc.driver = driver;
  auto rt = std::make_unique<MiddleboxRuntime>(rc, *app);

  Port& north = new_port(rc.name + ".north");
  Port& south = new_port(rc.name + ".south");
  rt->add_port("north", north);
  rt->add_port("south", south);
  Port::connect(*du.port, north, 1'000);

  EmbeddedSwitch& sw = new_switch(rc.name + ".fabric");
  Port& sw_mb = sw.add_port("mb");
  Port::connect(south, sw_mb, 500);
  sw.add_static_entry(cfg.du_mac, sw_mb);
  for (auto* r : ru_list) {
    Port& sw_ru = sw.add_port("ru" + std::to_string(r->index));
    Port::connect(*r->port, sw_ru, 500);
    sw.add_static_entry(r->mac, sw_ru);
  }

  engine.add_middlebox(*rt);
  for (auto* r : ru_list) {
    engine.bind_affinity(*r->ru, ru_key(r->id));
    engine.bind_affinity(*du.du, ru_key(r->id));
    engine.bind_affinity(static_cast<Pumpable&>(*rt), ru_key(r->id));
  }
  apps.push_back(std::move(app));
  runtimes.push_back(std::move(rt));
  return *runtimes.back();
}

MiddleboxRuntime& Deployment::add_rushare(const std::vector<DuHandle*>& du_list,
                                          RuHandle& ru, DriverKind driver,
                                          int shift_sc) {
  RuShareConfig cfg;
  cfg.ru_mac = ru.mac;
  const RuSite& site = air.ru(ru.id);
  cfg.ru_n_prb = prbs_for_bandwidth(site.bandwidth, Scs::kHz30);
  cfg.ru_center_freq = site.center_freq;
  cfg.shift_sc = shift_sc;
  for (auto* d : du_list) {
    ShareDu sd;
    sd.mac = d->du->config().du_mac;
    sd.du_id = d->du->config().du_id;
    sd.n_prb = d->du->config().cell.n_prb();
    sd.center_freq = d->du->config().cell.center_freq;
    sd.prb_offset = prb_offset_in_ru(d->du->config().cell, site);
    cfg.dus.push_back(sd);
    air.assign_ru(d->cell, ru.id, sd.prb_offset);
  }
  auto app = std::make_unique<RuShareMiddlebox>(cfg);

  MiddleboxRuntime::Config rc;
  rc.name = name_prefix + "rushare" + std::to_string(runtimes.size());
  rc.cell = cell_label;
  // South-side framing: the RU's carrier defines numPrbu==0 semantics.
  rc.fh = du_list.front()->du->fh();
  rc.fh.carrier_prbs = cfg.ru_n_prb;
  rc.driver = driver;
  auto rt = std::make_unique<MiddleboxRuntime>(rc, *app);

  Port& south = new_port(rc.name + ".south");
  rt->add_port("south", south);  // index 0 == RuShareMiddlebox::kSouth
  Port::connect(south, *ru.port, 1'000);
  for (std::size_t i = 0; i < du_list.size(); ++i) {
    Port& north = new_port(rc.name + ".north" + std::to_string(i));
    // Each DU link is parsed with that DU's own carrier provisioning.
    rt->add_port("north" + std::to_string(i), north, du_list[i]->du->fh());
    Port::connect(*du_list[i]->port, north, 1'000);
  }

  engine.add_middlebox(*rt);
  engine.bind_affinity(*ru.ru, ru_key(ru.id));
  engine.bind_affinity(static_cast<Pumpable&>(*rt), ru_key(ru.id));
  for (auto* d : du_list) engine.bind_affinity(*d->du, ru_key(ru.id));
  apps.push_back(std::move(app));
  runtimes.push_back(std::move(rt));
  return *runtimes.back();
}

MiddleboxRuntime& Deployment::add_prbmon(DuHandle& du, RuHandle& ru,
                                         DriverKind driver) {
  PrbMonConfig cfg;
  cfg.n_prb = du.du->config().cell.n_prb();
  auto app = std::make_unique<PrbMonitorMiddlebox>(cfg);

  MiddleboxRuntime::Config rc;
  rc.name = name_prefix + "prbmon" + std::to_string(runtimes.size());
  rc.cell = cell_label;
  rc.fh = du.du->fh();
  rc.driver = driver;
  auto rt = std::make_unique<MiddleboxRuntime>(rc, *app);

  Port& north = new_port(rc.name + ".north");
  Port& south = new_port(rc.name + ".south");
  rt->add_port("north", north);
  rt->add_port("south", south);
  Port::connect(*du.port, north, 1'000);
  Port::connect(south, *ru.port, 1'000);
  air.assign_ru(du.cell, ru.id, 0);

  engine.add_middlebox(*rt);
  engine.bind_affinity(*du.du, ru_key(ru.id));
  engine.bind_affinity(*ru.ru, ru_key(ru.id));
  engine.bind_affinity(static_cast<Pumpable&>(*rt), ru_key(ru.id));
  apps.push_back(std::move(app));
  runtimes.push_back(std::move(rt));
  return *runtimes.back();
}

MiddleboxRuntime& Deployment::add_failover(DuHandle& primary,
                                           DuHandle& standby, RuHandle& ru,
                                           DriverKind driver) {
  FailoverConfig cfg;
  cfg.ru_mac = ru.mac;
  cfg.primary_du_mac = primary.du->config().du_mac;
  cfg.standby_du_mac = standby.du->config().du_mac;
  auto app = std::make_unique<FailoverMiddlebox>(cfg);

  MiddleboxRuntime::Config rc;
  rc.name = name_prefix + "failover" + std::to_string(runtimes.size());
  rc.cell = cell_label;
  rc.fh = primary.du->fh();
  rc.driver = driver;
  auto rt = std::make_unique<MiddleboxRuntime>(rc, *app);

  Port& south = new_port(rc.name + ".south");
  Port& n_pri = new_port(rc.name + ".primary");
  Port& n_sby = new_port(rc.name + ".standby");
  rt->add_port("south", south);     // FailoverMiddlebox::kSouth
  rt->add_port("primary", n_pri);   // kPrimary
  rt->add_port("standby", n_sby);   // kStandby
  Port::connect(south, *ru.port, 1'000);
  Port::connect(*primary.port, n_pri, 1'000);
  Port::connect(*standby.port, n_sby, 1'000);
  // Both cells (same PCI, warm standby) radiate via the same RU.
  air.assign_ru(primary.cell, ru.id, 0);
  air.assign_ru(standby.cell, ru.id, 0);

  engine.add_middlebox(*rt);
  engine.bind_affinity(*primary.du, ru_key(ru.id));
  engine.bind_affinity(*standby.du, ru_key(ru.id));
  engine.bind_affinity(*ru.ru, ru_key(ru.id));
  engine.bind_affinity(static_cast<Pumpable&>(*rt), ru_key(ru.id));
  apps.push_back(std::move(app));
  runtimes.push_back(std::move(rt));
  return *runtimes.back();
}

FaultyLink& Deployment::add_fault(Port& near, const FaultPlan& tx_plan,
                                  const FaultPlan& rx_plan, std::string name) {
  Port* peer = near.peer();
  if (!peer) throw std::runtime_error("add_fault: port is not connected");
  if (name.empty())
    name = "fault:" + near.name() + "<->" + peer->name();
  faults.push_back(
      std::make_unique<FaultyLink>(std::move(name), near, *peer, tx_plan,
                                   rx_plan));
  FaultyLink* link = faults.back().get();
  engine.add_begin_slot_hook(
      [link](std::int64_t slot) { link->begin_slot(slot); });
  return *link;
}

std::string Deployment::fault_dump() const {
  std::string out;
  for (const auto& f : faults) out += f->dump();
  return out;
}

ctrl::AdaptationController& Deployment::add_controller(ctrl::CtrlConfig cfg) {
  if (cfg.name == "ctrl")
    cfg.name = name_prefix + "ctrl" + std::to_string(controllers.size());
  controllers.push_back(
      std::make_unique<ctrl::AdaptationController>(std::move(cfg)));
  ctrl::AdaptationController* c = controllers.back().get();
  engine.add_begin_slot_hook([c](std::int64_t slot) { c->on_slot(slot); });
  return *c;
}

int Deployment::ctrl_watch(ctrl::AdaptationController& c, FaultyLink& link,
                           MiddleboxRuntime& rt, RuHandle& ru) {
  ctrl::LinkSpec spec;
  spec.name = link.name();
  spec.ul_stats = &link.stats_ab();
  spec.rt = &rt;
  spec.nominal_iq_width = ru.ru->ul_iq_width();
  RuModel* ru_model = ru.ru;
  const MacAddr mac = ru.mac;
  if (auto* das = dynamic_cast<DasMiddlebox*>(&rt.app())) {
    spec.eject_verb = ctrl::CtrlVerb::SetDasMember;
    spec.actuate = [das, ru_model, mac](const ctrl::CtrlAction& a) {
      switch (a.verb) {
        case ctrl::CtrlVerb::SetUlIqWidth:
          return ru_model->set_ul_iq_width(a.value);
        case ctrl::CtrlVerb::SetDasMember:
          return das->set_member_active(mac, a.enable);
        case ctrl::CtrlVerb::SetDmimoGate:
          return false;
      }
      return false;
    };
  } else if (auto* dmimo = dynamic_cast<DmimoMiddlebox*>(&rt.app())) {
    spec.eject_verb = ctrl::CtrlVerb::SetDmimoGate;
    const int slot_index = dmimo->ru_index_of(mac);
    spec.actuate = [dmimo, ru_model, slot_index](const ctrl::CtrlAction& a) {
      switch (a.verb) {
        case ctrl::CtrlVerb::SetUlIqWidth:
          return ru_model->set_ul_iq_width(a.value);
        case ctrl::CtrlVerb::SetDmimoGate:
          return slot_index >= 0 &&
                 dmimo->set_ru_gated(std::size_t(slot_index), !a.enable);
        case ctrl::CtrlVerb::SetDasMember:
          return false;
      }
      return false;
    };
  } else {
    // Width-only supervision for other middlebox types.
    spec.eject_verb = ctrl::CtrlVerb::SetDasMember;
    spec.actuate = [ru_model](const ctrl::CtrlAction& a) {
      return a.verb == ctrl::CtrlVerb::SetUlIqWidth &&
             ru_model->set_ul_iq_width(a.value);
    };
  }
  return c.add_link(std::move(spec));
}

std::string Deployment::ctrl_dump() const {
  std::string out;
  for (const auto& c : controllers) out += c->dump();
  return out;
}

UeId Deployment::add_ue(const Position& pos, DuHandle* du, double dl_mbps,
                        double ul_mbps, int pci_lock, int max_layers) {
  UeConfig cfg;
  cfg.pos = pos;
  cfg.pci_lock = pci_lock;
  cfg.max_layers = max_layers;
  const UeId ue = air.add_ue(cfg);
  if (du && (dl_mbps > 0 || ul_mbps > 0))
    traffic.set_flow(*du->du, ue, dl_mbps, ul_mbps);
  return ue;
}

void Deployment::measure(int slots) {
  air.reset_counters();
  const std::int64_t t0 = engine.elapsed_ns();
  engine.run_slots(slots);
  measure_window_ns_ = engine.elapsed_ns() - t0;
}

double Deployment::dl_mbps(UeId ue) const {
  if (measure_window_ns_ <= 0) return 0.0;
  return double(air.dl_bits(ue)) * 1000.0 / double(measure_window_ns_);
}

double Deployment::ul_mbps(UeId ue) const {
  if (measure_window_ns_ <= 0) return 0.0;
  return double(air.ul_bits(ue)) * 1000.0 / double(measure_window_ns_);
}

}  // namespace rb
