// Constant-bitrate traffic generation (the iperf UDP stand-in).
#pragma once

#include <cstdint>
#include <vector>

#include "ran/du.h"

namespace rb {

class TrafficGen {
 public:
  explicit TrafficGen(Scs scs = Scs::kHz30)
      : slot_ns_(slot_duration_ns(scs)) {}

  /// Offer `dl_mbps` downlink and `ul_mbps` uplink load for a UE served by
  /// `du`. Replaces any previous flow for the same (du, ue).
  void set_flow(DuModel& du, UeId ue, double dl_mbps, double ul_mbps);
  void clear();

  /// Engine traffic hook: inject one slot's worth of offered bits.
  void on_slot(std::int64_t slot);

  /// Checkpoint the fractional-bit carry of every flow (flow definitions
  /// are config, rebuilt by the deployment builder in the same order).
  void save_state(state::StateWriter& w) const;
  void load_state(state::StateReader& r);

 private:
  struct Flow {
    DuModel* du;
    UeId ue;
    double dl_bits_per_slot;
    double ul_bits_per_slot;
    double dl_carry = 0;  // fractional-bit accumulation
    double ul_carry = 0;
  };
  std::int64_t slot_ns_;
  std::vector<Flow> flows_;
};

}  // namespace rb
