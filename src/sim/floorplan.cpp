#include "sim/floorplan.h"

namespace rb {

std::vector<Position> Floorplan::walk_route(int floor, int nx, int ny) const {
  std::vector<Position> route;
  route.reserve(std::size_t(nx) * std::size_t(ny));
  for (int iy = 0; iy < ny; ++iy) {
    for (int ix = 0; ix < nx; ++ix) {
      const int x_idx = (iy % 2 == 0) ? ix : nx - 1 - ix;  // serpentine
      Position p;
      p.x = (double(x_idx) + 0.5) * width_m / double(nx);
      p.y = (double(iy) + 0.5) * depth_m / double(ny);
      p.floor = floor;
      route.push_back(p);
    }
  }
  return route;
}

}  // namespace rb
