// power.h is header-only.
#include "sim/power.h"

namespace rb {
// Intentionally empty.
}  // namespace rb
