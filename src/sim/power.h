// Server power model (paper section 6.3.2, Figure 14).
//
// Linear model: chassis idle + per-core draw at full or reduced frequency.
// Calibrated to the testbed's HPE DL110 readings: two servers hosting five
// dMIMO cells draw ~400 W; consolidating to a single cell lets one server
// shut down and half the remaining cores run at low frequency, ~180 W.
#pragma once

namespace rb {

struct PowerModel {
  double server_idle_w = 60.0;
  double core_active_w = 7.8;   // full-frequency busy core
  double core_low_w = 2.6;      // low-frequency core
  int cores_per_server = 32;

  /// Power of one powered-on server with the given core states; cores not
  /// listed are parked (negligible draw).
  double server_power_w(int active_cores, int low_cores = 0) const {
    return server_idle_w + active_cores * core_active_w +
           low_cores * core_low_w;
  }

  /// Cores a vDU of one cell needs (L1+L2 pipeline).
  static constexpr int kCoresPerCell = 6;
  /// Cores per DPDK middlebox instance.
  static constexpr int kCoresPerMiddlebox = 1;
};

}  // namespace rb
