// CapEx model for the Appendix A.2 cost comparison.
//
// Itemizes the Cambridge deployment's commodity bill of materials
// (~$60,000 for 16 RUs across four floors) against a conventional DAS
// quote at a conservative $2 per square foot.
#pragma once

namespace rb {

struct CostModel {
  // Commodity RANBooster deployment (Appendix A.2).
  int n_rus = 16;
  double ru_unit_usd = 2'200.0;
  double cabling_and_building_usd = 12'000.0;
  double switch_usd = 6'000.0;
  double grandmaster_usd = 3'500.0;
  double nic_usd = 1'500.0;
  int n_nics = 2;
  double server_usd = 0.0;          // servers host the DU anyway; only the
  double middlebox_core_usd = 150.0;  // 8 cores for middleboxes are extra
  int middlebox_cores = 8;

  // Conventional DAS reference pricing.
  double das_usd_per_sqft = 2.0;
  /// Vendor margin applied to the RANBooster BOM for a fair product-price
  /// comparison.
  double vendor_margin = 0.50;

  double ranbooster_bom_usd() const {
    return n_rus * ru_unit_usd + cabling_and_building_usd + switch_usd +
           grandmaster_usd + n_nics * nic_usd + server_usd +
           middlebox_cores * middlebox_core_usd;
  }
  double ranbooster_price_usd() const {
    return ranbooster_bom_usd() * (1.0 + vendor_margin);
  }
  double conventional_das_usd(double sqft) const {
    return sqft * das_usd_per_sqft;
  }
  /// Percent saved vs a conventional DAS for a given covered area.
  double savings_pct(double sqft) const {
    const double das = conventional_das_usd(sqft);
    return 100.0 * (das - ranbooster_price_usd()) / das;
  }
};

}  // namespace rb
