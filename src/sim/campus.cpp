#include "sim/campus.h"

namespace rb {

std::vector<Position> Campus::walk_route(int b, int floor, int nx,
                                         int ny) const {
  std::vector<Position> route = building.walk_route(floor, nx, ny);
  for (Position& p : route) p = translate(b, p);
  return route;
}

}  // namespace rb
