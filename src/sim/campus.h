// Campus: the multi-building generalization of Floorplan (city mode).
//
// A campus composes per-building floorplans on a placement grid: building
// b sits at a grid cell (row-major), and every Floorplan query is
// available translated into campus coordinates. One building hosts one
// cell shard in the city topology (CityBuilder), matching the paper's
// dense-deployment story: many sectors, one box.
#pragma once

#include <vector>

#include "sim/floorplan.h"

namespace rb {

struct Campus {
  /// Per-building layout (identical template; heterogeneous campuses can
  /// resize `width_m`/`floors` after construction).
  Floorplan building{};
  /// Placement grid pitch. Defaults leave >= 30 m of street between
  /// buildings, enough path loss that neighbour cells barely interfere.
  double grid_dx_m = 90.0;
  double grid_dy_m = 60.0;
  /// Buildings per grid row (row-major placement).
  int grid_cols = 8;

  /// South-west corner of building `b` in campus coordinates.
  Position building_origin(int b) const {
    Position p;
    p.x = double(b % grid_cols) * grid_dx_m;
    p.y = double(b / grid_cols) * grid_dy_m;
    p.floor = 0;
    return p;
  }

  /// Floorplan::ru_position translated into building `b`'s footprint.
  Position ru_position(int b, int floor, int idx) const {
    return translate(b, building.ru_position(floor, idx));
  }

  /// Floorplan::near_ru translated into building `b`'s footprint.
  Position near_ru(int b, int floor, int idx, double d) const {
    return translate(b, building.near_ru(floor, idx, d));
  }

  /// Serpentine measurement walk across one floor of building `b`.
  std::vector<Position> walk_route(int b, int floor, int nx = 16,
                                   int ny = 4) const;

  /// Translate a building-local position into campus coordinates.
  Position translate(int b, Position p) const {
    const Position o = building_origin(b);
    p.x += o.x;
    p.y += o.y;
    return p;
  }

  /// Total floor area over `n_buildings` buildings.
  double area_sqft(int n_buildings) const {
    return building.area_sqft() * double(n_buildings);
  }
};

}  // namespace rb
