#include "sim/traffic.h"

namespace rb {

void TrafficGen::set_flow(DuModel& du, UeId ue, double dl_mbps,
                          double ul_mbps) {
  for (auto& f : flows_) {
    if (f.du == &du && f.ue == ue) {
      f.dl_bits_per_slot = dl_mbps * double(slot_ns_) / 1000.0;
      f.ul_bits_per_slot = ul_mbps * double(slot_ns_) / 1000.0;
      return;
    }
  }
  Flow f{&du, ue, dl_mbps * double(slot_ns_) / 1000.0,
         ul_mbps * double(slot_ns_) / 1000.0, 0, 0};
  flows_.push_back(f);
}

void TrafficGen::clear() { flows_.clear(); }

void TrafficGen::on_slot(std::int64_t) {
  for (auto& f : flows_) {
    f.dl_carry += f.dl_bits_per_slot;
    f.ul_carry += f.ul_bits_per_slot;
    const auto dl = std::int64_t(f.dl_carry);
    const auto ul = std::int64_t(f.ul_carry);
    if (dl > 0) {
      f.du->add_dl_traffic(f.ue, dl);
      f.dl_carry -= double(dl);
    }
    if (ul > 0) {
      f.du->add_ul_traffic(f.ue, ul);
      f.ul_carry -= double(ul);
    }
  }
}

void TrafficGen::save_state(state::StateWriter& w) const {
  w.u32(std::uint32_t(flows_.size()));
  for (const Flow& f : flows_) {
    w.f64(f.dl_carry);
    w.f64(f.ul_carry);
  }
}

void TrafficGen::load_state(state::StateReader& r) {
  if (r.count(16) != flows_.size()) {
    r.fail(state::StateError::kMismatch);
    return;
  }
  for (Flow& f : flows_) {
    f.dl_carry = r.f64();
    f.ul_carry = r.f64();
  }
}

}  // namespace rb
