// Hitless operations over a running Deployment (ISSUE 7).
//
// Two slot-barrier operations built on the src/state serialization layer:
//
//  * checkpoint()/restore(): snapshot every stateful component of a
//    running deployment into one versioned blob and rebuild an identical
//    deployment to the same virtual time. A restored run's determinism
//    snapshot is bit-identical to an uninterrupted run (tests/test_state).
//
//  * ReconfigManager: zero-loss live reconfiguration. Operators describe
//    the desired settings of the reconfigurable surface (DAS combine-set
//    membership, dMIMO participation gates, failover targets/hysteresis,
//    controller thresholds, RU uplink BFP widths); the manager diffs the
//    request against live state, queues only the deltas and applies them
//    at the engine's begin-of-slot barrier - before any entity or
//    middlebox touches the new slot, so serial and parallel(n) runs see
//    identical knob settings for every packet and no packet is dropped by
//    the act of reconfiguring.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/mgmt.h"
#include "sim/deployment.h"
#include "state/serialize.h"

namespace rb {

// --- checkpoint / restore ---------------------------------------------

/// Serialize the full mutable state of `d` (clock, air, traffic, ports,
/// switches, DUs, RUs, fault links, middlebox runtimes + apps,
/// controllers) into a versioned blob. Call at the slot barrier (between
/// run_slots calls).
std::vector<std::uint8_t> checkpoint(const Deployment& d);

/// Result of a restore attempt. On failure `error` is the first typed
/// error hit and `detail` names the section; `d` may be partially
/// restored - restore onto a freshly built identical deployment.
struct RestoreResult {
  state::StateError error = state::StateError::kNone;
  std::string detail;
  bool ok() const { return error == state::StateError::kNone; }
};

/// Restore a checkpoint onto `d`, which must have been built by the same
/// builder calls as the checkpointed deployment (same entity counts in
/// the same order - validated, kMismatch otherwise). Unknown sections
/// (from a newer writer) are skipped. Never throws, never UB: corrupted
/// or truncated blobs return a typed error.
RestoreResult restore(Deployment& d, const std::vector<std::uint8_t>& blob);

// --- live reconfiguration ---------------------------------------------

/// One typed reconfiguration operation (the unit of diffing + audit).
struct ReconfigOp {
  enum class Kind : std::uint8_t {
    DasSetMember,     // runtimes[index]: ru mac active/inactive
    DmimoSetGate,     // runtimes[index]: rus[arg] gate closed/open
    FailoverTarget,   // runtimes[index]: steer to port arg
    FailoverRetune,   // runtimes[index]: liveness/dwell/confirm/failback
    CtrlRetune,       // controllers[index]: threshold retune
    RuSetUlIqWidth,   // rus[index]: uplink BFP mantissa width
  };
  Kind kind = Kind::DasSetMember;
  std::size_t index = 0;  // runtime / controller / ru index
  MacAddr mac{};          // DasSetMember
  int arg = 0;            // gate slot / port / width / liveness_slots
  bool enable = true;     // member active / gate open / failback
  // FailoverRetune extras (arg = liveness_slots).
  int min_dwell_slots = 0;
  int failback_confirm_slots = 1;
  ctrl::CtrlConfig ctrl_cfg{};  // CtrlRetune

  std::string str() const;
};

/// Desired settings of the reconfigurable surface. Only what is listed
/// is reconciled; everything else is left untouched.
struct DesiredConfig {
  struct DasMember {
    std::size_t runtime = 0;
    MacAddr mac{};
    bool active = true;
  };
  struct DmimoGate {
    std::size_t runtime = 0;
    std::size_t ru = 0;
    bool gated = false;
  };
  struct FailoverTarget {
    std::size_t runtime = 0;
    int port = FailoverMiddlebox::kPrimary;
  };
  struct FailoverTuning {
    std::size_t runtime = 0;
    int liveness_slots = 3;
    bool failback = true;
    int min_dwell_slots = 0;
    int failback_confirm_slots = 1;
  };
  struct CtrlTuning {
    std::size_t controller = 0;
    ctrl::CtrlConfig cfg{};
  };
  struct RuWidth {
    std::size_t ru = 0;
    int width = 9;
  };

  std::vector<DasMember> das_members;
  std::vector<DmimoGate> dmimo_gates;
  std::vector<FailoverTarget> failover_targets;
  std::vector<FailoverTuning> failover_tunings;
  std::vector<CtrlTuning> ctrl_tunings;
  std::vector<RuWidth> ru_widths;
};

/// Applies desired-state reconfigurations at the slot barrier.
///
/// Usage: construct once over a built deployment (registers its barrier
/// hook), then request(desired) any time - including from another
/// planning thread between slots. Deltas apply at the next begin-of-slot;
/// no-op requests (desired == live) queue nothing.
class ReconfigManager final : public ReconfigMgmtHandler {
 public:
  explicit ReconfigManager(Deployment& d);

  /// Diff `desired` against live state and queue the delta ops. Returns
  /// the number of ops queued (0 = already converged). Invalid indices
  /// are counted rejected and skipped.
  std::size_t request(const DesiredConfig& desired);

  /// Queue one explicit op (no diffing).
  void queue(ReconfigOp op) { pending_.push_back(std::move(op)); }

  /// Number of ops waiting for the next barrier.
  std::size_t pending() const { return pending_.size(); }

  /// Totals (also exported process-wide as rb_reconfig_* via src/obs).
  std::uint64_t applied() const { return applied_; }
  std::uint64_t rejected() const { return rejected_; }
  std::uint64_t batches() const { return batches_; }

  /// Newest-last audit log of applied ops (bounded).
  const std::vector<std::string>& log() const { return log_; }

  // ReconfigMgmtHandler: "status" | "log" | "pending".
  std::string reconfig_mgmt(const std::string& cmd) override;

  /// Barrier hook body; exposed so tests can drive it directly.
  void on_slot(std::int64_t slot);

 private:
  bool apply(const ReconfigOp& op);

  Deployment* d_;
  std::vector<ReconfigOp> pending_;
  std::vector<std::string> log_;
  std::uint64_t applied_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t batches_ = 0;
  std::uint16_t obs_name_ = 0;   // interned "reconfig.apply"
  std::uint16_t obs_track_ = 0;  // interned "reconfig"
};

}  // namespace rb
