// cost.h is header-only.
#include "sim/cost.h"

namespace rb {
// Intentionally empty.
}  // namespace rb
