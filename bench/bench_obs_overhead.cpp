// Observability overhead: wall-clock cost of the obs subsystem on the
// Figure 12 chain (two MNO DUs -> rushare -> das -> switch -> 4 RUs),
// the most instrumented scenario in the repo (every span type fires:
// packet, action, combine, tx, link, slot).
//
// Modes: obs disabled (the baseline every production run pays: one
// relaxed atomic load per instrumentation site) vs obs enabled (ring
// pushes + per-slot barrier merge + budget/histogram folding). The
// enabled mode must stay under 5% overhead; CI gates on the exit code.
// A 100-slot Perfetto/Chrome trace of the chain is written as a side
// product (first argv, default BENCH_obs_trace.json).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/chain.h"
#include "obs/export.h"
#include "obs/obs.h"

namespace rb {
namespace {

constexpr int kWarmupSlots = 200;
constexpr int kMeasureSlots = 500;

/// The Figure 12 chain rig (see bench_fig12_chain.cpp, trimmed: fixed UE
/// positions, no floor walk).
struct ChainRig {
  Deployment d;
  Deployment::DuHandle du_a, du_b;
  std::vector<Deployment::RuHandle> rus;

  ChainRig() {
    const Hertz ca = aligned_du_center_frequency(bench::kBand78Center, 273,
                                                 106, 10, Scs::kHz30);
    const Hertz cb = aligned_du_center_frequency(bench::kBand78Center, 273,
                                                 106, 150, Scs::kHz30);
    du_a = d.add_du(bench::cell_cfg(MHz(40), ca, 1), srsran_profile(), 0);
    du_b = d.add_du(bench::cell_cfg(MHz(40), cb, 2), srsran_profile(), 1);
    for (int i = 0; i < 4; ++i)
      rus.push_back(d.add_ru(bench::ru_site(d.plan.ru_position(0, i), 4,
                                            MHz(100), bench::kBand78Center),
                             std::uint8_t(i), du_a.du->fh()));

    RuShareConfig scfg;
    scfg.ru_mac = MacAddr::mb(1);
    scfg.ru_n_prb = 273;
    scfg.ru_center_freq = bench::kBand78Center;
    for (auto* duh : {&du_a, &du_b}) {
      ShareDu sd;
      sd.mac = duh->du->config().du_mac;
      sd.du_id = duh->du->config().du_id;
      sd.n_prb = duh->du->config().cell.n_prb();
      sd.center_freq = duh->du->config().cell.center_freq;
      sd.prb_offset = Deployment::prb_offset_in_ru(duh->du->config().cell,
                                                   d.air.ru(rus[0].id));
      scfg.dus.push_back(sd);
    }
    d.apps.push_back(std::make_unique<RuShareMiddlebox>(scfg));
    MiddleboxRuntime::Config rc;
    rc.name = "rushare";
    rc.fh = du_a.du->fh();
    rc.fh.carrier_prbs = 273;
    d.runtimes.push_back(
        std::make_unique<MiddleboxRuntime>(rc, *d.apps.back()));
    MiddleboxRuntime& rushare_rt = *d.runtimes.back();
    Port& sh_south = d.new_port("rushare.south");
    rushare_rt.add_port("south", sh_south);
    Port& sh_na = d.new_port("rushare.north0");
    rushare_rt.add_port("north0", sh_na, du_a.du->fh());
    Port& sh_nb = d.new_port("rushare.north1");
    rushare_rt.add_port("north1", sh_nb, du_b.du->fh());
    Port::connect(*du_a.port, sh_na, 1'000);
    Port::connect(*du_b.port, sh_nb, 1'000);

    DasConfig dcfg;
    dcfg.du_mac = du_a.du->config().du_mac;
    for (auto& r : rus) dcfg.ru_macs.push_back(r.mac);
    d.apps.push_back(std::make_unique<DasMiddlebox>(dcfg));
    MiddleboxRuntime::Config dc;
    dc.name = "das";
    dc.fh = du_a.du->fh();
    dc.fh.carrier_prbs = 273;
    d.runtimes.push_back(
        std::make_unique<MiddleboxRuntime>(dc, *d.apps.back()));
    MiddleboxRuntime& das_rt = *d.runtimes.back();
    Port& das_north = d.new_port("das.north");
    Port& das_south = d.new_port("das.south");
    das_rt.add_port("north", das_north);
    das_rt.add_port("south", das_south);
    Port::connect(sh_south, das_north, ChainBuilder::kHopLatencyNs);

    EmbeddedSwitch& sw = d.new_switch("fabric");
    Port& sw_mb = sw.add_port("das");
    Port::connect(das_south, sw_mb, 500);
    sw.add_static_entry(dcfg.du_mac, sw_mb);
    sw.add_static_entry(du_b.du->config().du_mac, sw_mb);
    for (auto& r : rus) {
      Port& sw_ru = sw.add_port("ru");
      Port::connect(*r.port, sw_ru, 500);
      sw.add_static_entry(r.mac, sw_ru);
    }
    d.engine.add_middlebox(rushare_rt);
    d.engine.add_middlebox(das_rt);

    for (auto* duh : {&du_a, &du_b}) {
      const int off = Deployment::prb_offset_in_ru(duh->du->config().cell,
                                                   d.air.ru(rus[0].id));
      for (auto& r : rus) d.air.assign_ru(duh->cell, r.id, off);
    }
    d.add_ue(d.plan.near_ru(0, 0, 2.0), &du_a, 500, 50, 1);
    d.add_ue(d.plan.near_ru(0, 3, 2.0), &du_b, 500, 50, 2);
  }
};

struct Result {
  double wall_ms = 0;
  double slots_per_s = 0;
  std::uint64_t events = 0;
};

Result run_mode(bool obs_on) {
  auto& col = obs::Collector::instance();
  col.reset();  // both modes start from a disabled, empty collector
  ChainRig rig;
  rig.d.engine.run_slots(kWarmupSlots);

  if (obs_on) {
    obs::ObsConfig cfg;
    cfg.tracing = false;  // budgets/histograms only: the steady-state mode
    col.start(cfg);
  }
  const auto t0 = std::chrono::steady_clock::now();
  rig.d.engine.run_slots(kMeasureSlots);
  const auto t1 = std::chrono::steady_clock::now();

  Result r;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.slots_per_s = double(kMeasureSlots) * 1000.0 / r.wall_ms;
  r.events = col.total_events();
  col.reset();
  return r;
}

/// 100-slot fully-traced run; returns the Chrome-trace/Perfetto JSON.
std::string capture_trace() {
  auto& col = obs::Collector::instance();
  ChainRig rig;
  rig.d.engine.run_slots(kWarmupSlots);
  col.start();  // tracing on: retain the raw spans
  rig.d.engine.run_slots(100);
  col.stop();
  std::string json = obs::chrome_trace_json(col);
  col.reset();
  return json;
}

}  // namespace
}  // namespace rb

int main(int argc, char** argv) {
  using namespace rb;

  bench::header("Observability overhead: tracing on vs off, Fig.12 chain",
                "src/obs acceptance gate (<5% enabled, exit code enforced)");
  bench::row("rushare+das chain, %d measured slots", kMeasureSlots);
  bench::row("");
  bench::row("%-10s %12s %12s %10s %14s", "mode", "wall ms", "slots/s",
             "overhead", "events merged");

  // Best-of-three per mode: the comparison is against scheduler noise.
  const auto best = [](bool obs_on) {
    Result r = run_mode(obs_on);
    for (int i = 0; i < 2; ++i) {
      Result again = run_mode(obs_on);
      if (again.wall_ms < r.wall_ms) r = again;
    }
    return r;
  };
  const Result off = best(false);
  const Result on = best(true);

  const double overhead = (on.wall_ms - off.wall_ms) / off.wall_ms;
  bench::row("%-10s %12.1f %12.1f %10s %14llu", "off", off.wall_ms,
             off.slots_per_s, "-", (unsigned long long)off.events);
  bench::row("%-10s %12.1f %12.1f %9.2f%% %14llu", "on", on.wall_ms,
             on.slots_per_s, overhead * 100.0, (unsigned long long)on.events);

  const bool ok = overhead < 0.05;
  bench::row("");
  bench::row("enabled overhead under 5%%: %s", ok ? "yes" : "NO");

  // Perfetto artifact: a fully-traced 100-slot window of the same chain.
  const std::string trace_path =
      argc > 1 ? argv[1] : "BENCH_obs_trace.json";
  const std::string json = capture_trace();
  if (std::FILE* f = std::fopen(trace_path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    bench::row("wrote %s (%zu bytes; open at https://ui.perfetto.dev)",
               trace_path.c_str(), json.size());
  }

  if (std::FILE* f = std::fopen("BENCH_obs_overhead.json", "w")) {
    std::fprintf(f,
                 "{\n  \"measure_slots\": %d,\n  \"off_wall_ms\": %.2f,\n"
                 "  \"on_wall_ms\": %.2f,\n  \"overhead\": %.4f,\n"
                 "  \"overhead_ok\": %s,\n  \"events_merged\": %llu\n}\n",
                 kMeasureSlots, off.wall_ms, on.wall_ms, overhead,
                 ok ? "true" : "false", (unsigned long long)on.events);
    std::fclose(f);
    bench::row("wrote BENCH_obs_overhead.json");
  }
  return ok ? 0 : 1;
}
