// Figure 15a: DPDK DAS middlebox scalability with the number of RUs at
// 100 MHz - egress/ingress fronthaul traffic (linear in RUs) and the CPU
// cores needed to keep the uplink merge inside the slot deadline (1 core
// up to 4 RUs, 2 cores beyond).
#include "bench_util.h"

namespace rb::bench {
namespace {

struct RunStats {
  double egress_gbps = 0;
  double ingress_gbps = 0;
  std::uint64_t late_drops = 0;
  double ul_mbps = 0;
};

RunStats run_das(int n_rus, int workers) {
  Deployment d;
  auto du = d.add_du(cell_cfg(MHz(100), kBand78Center, 1), srsran_profile(), 0);
  std::vector<Deployment::RuHandle> rus;
  std::vector<Deployment::RuHandle*> ptrs;
  for (int i = 0; i < n_rus; ++i)
    rus.push_back(d.add_ru(
        ru_site(d.plan.near_ru(0, i % 4, (i / 4) * 3.0), 4, MHz(100),
                kBand78Center),
        std::uint8_t(i), du.du->fh()));
  for (auto& r : rus) ptrs.push_back(&r);
  auto& rt = d.add_das(du, ptrs, DriverKind::Dpdk, workers);
  // Saturating offered load keeps the cell's spectrum fully used at every
  // RU count so fronthaul volume reflects capacity, not demand.
  const UeId ue = d.add_ue(d.plan.near_ru(0, 1, 4.0), &du, 2500, 100);
  d.attach_all(600);

  // Traffic accounting over the measurement window only.
  const auto& north = rt.port(DasMiddlebox::kNorth);
  const auto& south = rt.port(DasMiddlebox::kSouth);
  const std::uint64_t tx0 = south.stats().tx_bytes + north.stats().tx_bytes;
  const std::uint64_t rx0 = south.stats().rx_bytes + north.stats().rx_bytes;
  const std::uint64_t late0 = du.du->stats().late_drops;
  const std::int64_t t0 = d.engine.elapsed_ns();
  d.measure(400);
  const double secs = double(d.engine.elapsed_ns() - t0) / 1e9;

  RunStats st;
  st.egress_gbps =
      double(south.stats().tx_bytes + north.stats().tx_bytes - tx0) * 8.0 /
      secs / 1e9;
  st.ingress_gbps =
      double(south.stats().rx_bytes + north.stats().rx_bytes - rx0) * 8.0 /
      secs / 1e9;
  st.late_drops = du.du->stats().late_drops - late0;
  st.ul_mbps = d.ul_mbps(ue);
  return st;
}

}  // namespace
}  // namespace rb::bench

int main() {
  using namespace rb::bench;
  header("Figure 15a - DAS scalability: fronthaul traffic and CPU cores vs "
         "number of RUs",
         "SIGCOMM'25 RANBooster section 6.4.1, Figure 15a");
  row("%5s %14s %14s %8s %12s %10s", "RUs", "egress Gbps", "ingress Gbps",
      "cores", "late drops", "UL Mbps");
  for (int n = 2; n <= 6; ++n) {
    // Find the minimum worker count that keeps the uplink loss-free.
    int cores = 0;
    RunStats st{};
    for (int w = 1; w <= 3; ++w) {
      st = run_das(n, w);
      if (st.late_drops == 0 && st.ul_mbps > 50.0) {
        cores = w;
        break;
      }
    }
    if (cores == 0) cores = 3;
    row("%5d %14.2f %14.2f %8d %12llu %10.1f", n, st.egress_gbps,
        st.ingress_gbps, cores, (unsigned long long)st.late_drops,
        st.ul_mbps);
  }
  row("paper shape: traffic linear in RUs; 1 core suffices up to 4 RUs, "
      "2 cores beyond");
  return 0;
}
