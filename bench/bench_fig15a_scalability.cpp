// Figure 15a: DPDK DAS middlebox scalability with the number of RUs at
// 100 MHz - egress/ingress fronthaul traffic (linear in RUs) and the CPU
// cores needed to keep the uplink merge inside the slot deadline (1 core
// up to 4 RUs, 2 cores beyond). Emits BENCH_fig15a_scalability.json and,
// when BENCH_city_scale.json is present, cross-checks its single-engine
// slot rate against the city conductor at cells=1.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

namespace rb::bench {
namespace {

struct RunStats {
  int rus = 0;
  double egress_gbps = 0;
  double ingress_gbps = 0;
  int cores = 0;
  std::uint64_t late_drops = 0;
  double ul_mbps = 0;
  double slots_per_s = 0;
};

RunStats run_das(int n_rus, int workers) {
  Deployment d;
  auto du = d.add_du(cell_cfg(MHz(100), kBand78Center, 1), srsran_profile(), 0);
  std::vector<Deployment::RuHandle> rus;
  std::vector<Deployment::RuHandle*> ptrs;
  for (int i = 0; i < n_rus; ++i)
    rus.push_back(d.add_ru(
        ru_site(d.plan.near_ru(0, i % 4, (i / 4) * 3.0), 4, MHz(100),
                kBand78Center),
        std::uint8_t(i), du.du->fh()));
  for (auto& r : rus) ptrs.push_back(&r);
  auto& rt = d.add_das(du, ptrs, DriverKind::Dpdk, workers);
  // Saturating offered load keeps the cell's spectrum fully used at every
  // RU count so fronthaul volume reflects capacity, not demand.
  const UeId ue = d.add_ue(d.plan.near_ru(0, 1, 4.0), &du, 2500, 100);
  d.attach_all(600);

  // Traffic accounting over the measurement window only.
  const auto& north = rt.port(DasMiddlebox::kNorth);
  const auto& south = rt.port(DasMiddlebox::kSouth);
  const std::uint64_t tx0 = south.stats().tx_bytes + north.stats().tx_bytes;
  const std::uint64_t rx0 = south.stats().rx_bytes + north.stats().rx_bytes;
  const std::uint64_t late0 = du.du->stats().late_drops;
  const std::int64_t t0 = d.engine.elapsed_ns();
  const auto w0 = std::chrono::steady_clock::now();
  d.measure(400);
  const auto w1 = std::chrono::steady_clock::now();
  const double secs = double(d.engine.elapsed_ns() - t0) / 1e9;

  RunStats st;
  st.rus = n_rus;
  st.egress_gbps =
      double(south.stats().tx_bytes + north.stats().tx_bytes - tx0) * 8.0 /
      secs / 1e9;
  st.ingress_gbps =
      double(south.stats().rx_bytes + north.stats().rx_bytes - rx0) * 8.0 /
      secs / 1e9;
  st.late_drops = du.du->stats().late_drops - late0;
  st.ul_mbps = d.ul_mbps(ue);
  st.slots_per_s =
      400.0 / std::chrono::duration<double>(w1 - w0).count();
  return st;
}

/// Pull `"slots_per_s": <x>` of the cells=1 run out of
/// BENCH_city_scale.json, with a deliberately narrow parser (the file is
/// our own bench's output). Returns 0 when absent.
double city_single_cell_rate() {
  std::FILE* f = std::fopen("BENCH_city_scale.json", "r");
  if (!f) return 0.0;
  std::string text;
  char buf[512];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  const std::size_t at = text.find("\"cells\": 1,");
  if (at == std::string::npos) return 0.0;
  const std::size_t key = text.find("\"slots_per_s\": ", at);
  if (key == std::string::npos) return 0.0;
  return std::strtod(text.c_str() + key + 15, nullptr);
}

}  // namespace
}  // namespace rb::bench

int main() {
  using namespace rb::bench;
  header("Figure 15a - DAS scalability: fronthaul traffic and CPU cores vs "
         "number of RUs",
         "SIGCOMM'25 RANBooster section 6.4.1, Figure 15a");
  row("%5s %14s %14s %8s %12s %10s %10s", "RUs", "egress Gbps",
      "ingress Gbps", "cores", "late drops", "UL Mbps", "slots/s");
  std::vector<RunStats> results;
  for (int n = 2; n <= 6; ++n) {
    // Find the minimum worker count that keeps the uplink loss-free.
    RunStats st{};
    for (int w = 1; w <= 3; ++w) {
      st = run_das(n, w);
      if (st.late_drops == 0 && st.ul_mbps > 50.0) {
        st.cores = w;
        break;
      }
    }
    if (st.cores == 0) st.cores = 3;
    row("%5d %14.2f %14.2f %8d %12llu %10.1f %10.1f", n, st.egress_gbps,
        st.ingress_gbps, st.cores, (unsigned long long)st.late_drops,
        st.ul_mbps, st.slots_per_s);
    results.push_back(st);
  }
  row("paper shape: traffic linear in RUs; 1 core suffices up to 4 RUs, "
      "2 cores beyond");

  std::FILE* f = std::fopen("BENCH_fig15a_scalability.json", "w");
  if (f) {
    std::fprintf(f, "{\n  \"runs\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      std::fprintf(f,
                   "    {\"rus\": %d, \"egress_gbps\": %.2f, "
                   "\"ingress_gbps\": %.2f, \"cores\": %d, "
                   "\"late_drops\": %llu, \"ul_mbps\": %.1f, "
                   "\"slots_per_s\": %.1f}%s\n",
                   r.rus, r.egress_gbps, r.ingress_gbps, r.cores,
                   (unsigned long long)r.late_drops, r.ul_mbps,
                   r.slots_per_s, i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    row("wrote BENCH_fig15a_scalability.json");
  }

  // Cross-check against the city conductor at cells=1 (run
  // bench_city_scale first; perf-smoke does). The rigs differ - 4-RU DAS
  // here vs single-RU prbmon there - so this is a sanity ratio, not a
  // gate: both are one SlotEngine, so they must sit within an order of
  // magnitude.
  const double city = city_single_cell_rate();
  if (city > 0.0 && !results.empty()) {
    const double ratio = results.front().slots_per_s / city;
    row("cross-check: 2-RU DAS %.1f slots/s vs city cells=1 %.1f slots/s "
        "(ratio %.2f)",
        results.front().slots_per_s, city, ratio);
  }
  return 0;
}
