// Figure 14: power consumption and per-floor UE throughput for covering
// five floors with (a) one dMIMO cell per floor (two servers, ~400 W) vs
// (b) a single cell distributed by a DAS+dMIMO chain (one partly
// down-clocked server, ~180 W).
#include "bench_util.h"

namespace rb::bench {
namespace {

/// (a) One floor's dMIMO cell with 4 UEs at full load; floors are on
/// frequency reuse with negligible inter-floor interference, so one floor
/// is simulated and scaled.
double per_floor_dmimo_mbps() {
  Deployment d;
  auto du = d.add_du(cell_cfg(MHz(100), kBand78Center, 1, 4),
                     srsran_profile(), 0);
  std::vector<Deployment::RuHandle> rus;
  std::vector<Deployment::RuHandle*> ptrs;
  for (int i = 0; i < 4; ++i)
    rus.push_back(d.add_ru(
        ru_site(d.plan.ru_position(0, i), 1, MHz(100), kBand78Center),
        std::uint8_t(i), du.du->fh()));
  for (auto& r : rus) ptrs.push_back(&r);
  d.add_dmimo(du, ptrs);
  std::vector<UeId> ues;
  for (int i = 0; i < 4; ++i)
    ues.push_back(d.add_ue(d.plan.near_ru(0, i, 6.0), &du, 400, 0));
  d.attach_all(800);
  d.measure(300);
  double total = 0;
  for (UeId ue : ues) total += d.dl_mbps(ue);
  return total;
}

/// (b) Single cell across five floors: DAS over five dMIMO groups
/// (20 x 1-antenna RUs total). Reports the per-floor mean with all 20 UEs
/// active and the single-floor throughput when only one floor is active.
void das_dmimo_chain(double* per_floor_all_active,
                     double* single_floor_burst) {
  Deployment d;
  auto du = d.add_du(cell_cfg(MHz(100), kBand78Center, 1, 4),
                     srsran_profile(), 0);

  // DAS stage towards five per-floor dMIMO stages.
  DasConfig dcfg;
  dcfg.du_mac = du.du->config().du_mac;
  for (int f = 0; f < 5; ++f) dcfg.ru_macs.push_back(MacAddr::mb(f + 10));
  d.apps.push_back(std::make_unique<DasMiddlebox>(dcfg));
  MiddleboxRuntime::Config dc;
  dc.name = "das";
  dc.fh = du.du->fh();
  dc.n_workers = 2;  // five branches exceed the one-core merge budget
  d.runtimes.push_back(std::make_unique<MiddleboxRuntime>(dc, *d.apps.back()));
  auto* das_rt = d.runtimes.back().get();
  Port& das_north = d.new_port("das.north");
  Port& das_south = d.new_port("das.south");
  das_rt->add_port("north", das_north);
  das_rt->add_port("south", das_south);
  Port::connect(*du.port, das_north, 1'000);
  EmbeddedSwitch& sw = d.new_switch("fabric");
  Port& sw_das = sw.add_port("das");
  Port::connect(das_south, sw_das, 500);
  sw.add_static_entry(dcfg.du_mac, sw_das);
  d.engine.add_middlebox(*das_rt);

  std::vector<UeId> ues;
  for (int f = 0; f < 5; ++f) {
    // One dMIMO stage per floor, addressed as the DAS branch MAC.
    DmimoConfig mcfg;
    mcfg.du_mac = dcfg.du_mac;
    const auto& ssb = du.du->config().cell.ssb;
    mcfg.ssb_start_prb = ssb.start_prb;
    mcfg.ssb_n_prb = ssb.n_prb;
    mcfg.ssb_period_slots = ssb.period_slots;
    mcfg.ssb_first_symbol = ssb.first_symbol;
    mcfg.ssb_n_symbols = ssb.n_symbols;

    std::vector<Deployment::RuHandle> rus;
    for (int i = 0; i < 4; ++i)
      rus.push_back(d.add_ru(
          ru_site(d.plan.ru_position(f, i), 1, MHz(100), kBand78Center),
          std::uint8_t(f * 4 + i), du.du->fh()));
    for (int i = 0; i < 4; ++i) {
      mcfg.rus.push_back({rus[std::size_t(i)].mac, 1});
      d.air.assign_ru(du.cell, rus[std::size_t(i)].id, 0, {{i, 0}});
    }
    d.apps.push_back(std::make_unique<DmimoMiddlebox>(mcfg));
    MiddleboxRuntime::Config mc;
    mc.name = "dmimo" + std::to_string(f);
    mc.fh = du.du->fh();
    d.runtimes.push_back(
        std::make_unique<MiddleboxRuntime>(mc, *d.apps.back()));
    auto* rt = d.runtimes.back().get();
    Port& north = d.new_port(mc.name + ".north");
    Port& south = d.new_port(mc.name + ".south");
    rt->add_port("north", north);
    rt->add_port("south", south);
    Port& sw_mb = sw.add_port(mc.name);
    Port::connect(north, sw_mb, 500);
    sw.add_static_entry(dcfg.ru_macs[std::size_t(f)], sw_mb);
    EmbeddedSwitch& floor_sw = d.new_switch(mc.name + ".floor");
    Port& fsw_mb = floor_sw.add_port("mb");
    Port::connect(south, fsw_mb, 500);
    floor_sw.add_static_entry(dcfg.du_mac, fsw_mb);
    for (auto& r : rus) {
      Port& fsw_ru = floor_sw.add_port("ru");
      Port::connect(*r.port, fsw_ru, 500);
      floor_sw.add_static_entry(r.mac, fsw_ru);
    }
    d.engine.add_middlebox(*rt);
    for (int i = 0; i < 4; ++i)
      ues.push_back(d.add_ue(d.plan.near_ru(f, i, 3.0), &du, 400, 0));
  }

  d.attach_all(900);
  d.measure(300);
  double total = 0;
  for (UeId ue : ues) total += d.dl_mbps(ue);
  *per_floor_all_active = total / 5.0;

  // Burst: only floor 0's UEs active.
  d.traffic.clear();
  du.du->scheduler().clear_backlogs();
  for (int i = 0; i < 4; ++i) d.traffic.set_flow(*du.du, ues[std::size_t(i)], 400, 0);
  d.engine.run_slots(60);
  d.measure(300);
  double floor0 = 0;
  for (int i = 0; i < 4; ++i) floor0 += d.dl_mbps(ues[std::size_t(i)]);
  *single_floor_burst = floor0;
}

}  // namespace
}  // namespace rb::bench

int main() {
  using namespace rb;
  using namespace rb::bench;
  header("Figure 14 - power vs throughput: per-floor dMIMO cells vs single "
         "DAS+dMIMO cell",
         "SIGCOMM'25 RANBooster section 6.3.2, Figure 14");
  PowerModel pm;

  // (a) five cells, five dMIMO middleboxes -> two servers fully active.
  const int cores_a = 5 * PowerModel::kCoresPerCell +
                      5 * PowerModel::kCoresPerMiddlebox;
  const double power_a =
      pm.server_power_w(pm.cores_per_server) +
      pm.server_power_w(cores_a - pm.cores_per_server);
  const double tput_a = per_floor_dmimo_mbps();
  row("(a) one dMIMO cell per floor : %4.0f W total, %6.1f Mbps per floor "
      "(paper: ~400 W, ~650 Mbps)", power_a, tput_a);

  // (b) one cell + DAS/dMIMO chain -> one server, half its cores at low
  // frequency, the second server off.
  const int cores_b =
      PowerModel::kCoresPerCell + 6 * PowerModel::kCoresPerMiddlebox;
  const int low_b = (pm.cores_per_server - cores_b) / 2;
  const double power_b = pm.server_power_w(cores_b, low_b);
  double per_floor_b = 0, burst_b = 0;
  das_dmimo_chain(&per_floor_b, &burst_b);
  row("(b) single cell, DAS+dMIMO   : %4.0f W total, %6.1f Mbps per floor, "
      "%6.1f Mbps single-floor burst (paper: ~180 W, ~150 Mbps, up to ~650)",
      power_b, per_floor_b, burst_b);
  row("power saving: %.0f%% (paper: '16%% reduction in overall network "
      "power' counting RUs; server-only saving is ~55%%)",
      100.0 * (power_a - power_b) / power_a);
  return 0;
}
