// Table 2: average DL throughput and UE rank indicator of dMIMO vs the
// single-RU MIMO ground truth, for 2 and 4 antennas, plus the SISO uplink
// sanity number (70 Mbps) quoted in 6.2.2.
#include "bench_util.h"

namespace rb::bench {
namespace {

struct Row {
  double dl = 0, ul = 0;
  int rank = 0;
};

Row single_ru(int layers) {
  Deployment d;
  auto du = d.add_du(cell_cfg(MHz(100), kBand78Center, 1, layers),
                     srsran_profile(), 0);
  auto ru = d.add_ru(ru_site(d.plan.ru_position(0, 1), layers, MHz(100),
                             kBand78Center), 0, du.du->fh());
  d.connect_direct(du, ru);
  const UeId ue = d.add_ue(d.plan.near_ru(0, 1, 5.0), &du, 1200, 100);
  d.attach_all(600);
  d.measure(400);
  return {d.dl_mbps(ue), d.ul_mbps(ue), d.air.last_rank(ue)};
}

Row dmimo(int ants_each) {
  Deployment d;
  const int layers = 2 * ants_each;
  auto du = d.add_du(cell_cfg(MHz(100), kBand78Center, 1, layers),
                     srsran_profile(), 0);
  RuSite s1 = ru_site(d.plan.ru_position(0, 1), ants_each, MHz(100),
                      kBand78Center);
  RuSite s2 = s1;
  s2.pos.x += 5.0;  // RUs ~5 m apart (6.2.2)
  auto ru1 = d.add_ru(s1, 0, du.du->fh());
  auto ru2 = d.add_ru(s2, 1, du.du->fh());
  d.add_dmimo(du, {&ru1, &ru2});
  Position pos = s1.pos;  // ~5 m from both RUs
  pos.x += 2.5;
  pos.y += 4.33;
  const UeId ue = d.add_ue(pos, &du, 1200, 100);
  d.attach_all(600);
  d.measure(400);
  return {d.dl_mbps(ue), d.ul_mbps(ue), d.air.last_rank(ue)};
}

}  // namespace
}  // namespace rb::bench

int main() {
  using namespace rb::bench;
  header("Table 2 - dMIMO vs single-RU MIMO ground truth",
         "SIGCOMM'25 RANBooster section 6.2.2, Table 2");
  row("%-44s %12s %6s %10s", "configuration", "DL (Mbps)", "rank",
      "paper DL");
  const Row b2 = single_ru(2);
  row("%-44s %12.1f %6d %10s", "2x2 MIMO: single RU, 2 antennas", b2.dl,
      b2.rank, "653.4");
  const Row d2 = dmimo(1);
  row("%-44s %12.1f %6d %10s",
      "2x2 MIMO: two RUs, 1 antenna each (RANBooster)", d2.dl, d2.rank,
      "654.1");
  const Row b4 = single_ru(4);
  row("%-44s %12.1f %6d %10s", "4x4 MIMO: single RU, 4 antennas", b4.dl,
      b4.rank, "898.2");
  const Row d4 = dmimo(2);
  row("%-44s %12.1f %6d %10s",
      "4x4 MIMO: two RUs, 2 antennas each (RANBooster)", d4.dl, d4.rank,
      "896.9");
  row("uplink (SISO) sanity: single=%.1f dMIMO=%.1f Mbps (paper: ~70)",
      b4.ul, d4.ul);
  return 0;
}
