// Shared rig builders and table output helpers for the experiment benches.
//
// Each bench binary regenerates one table/figure of the paper; rigs mirror
// the testbed configurations of section 6.1.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/cost.h"
#include "sim/deployment.h"
#include "sim/power.h"

namespace rb::bench {

inline CellConfig cell_cfg(Hertz bandwidth, Hertz center, std::uint16_t pci,
                           int layers = 4) {
  CellConfig c;
  c.bandwidth = bandwidth;
  c.center_freq = center;
  c.pci = pci;
  c.max_layers = layers;
  return c;
}

inline RuSite ru_site(const Position& pos, int antennas, Hertz bandwidth,
                      Hertz center) {
  RuSite s;
  s.pos = pos;
  s.n_antennas = antennas;
  s.bandwidth = bandwidth;
  s.center_freq = center;
  return s;
}

/// Default band-78 center used across the benches (the testbed's band).
inline constexpr Hertz kBand78Center = GHz(3) + MHz(460);

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void row(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
inline void row(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  std::vprintf(fmt, ap);
  va_end(ap);
  std::printf("\n");
}

/// Move a UE and let reselection settle before measuring (handover takes
/// a few SSB/PRACH occasions).
inline void settle_at(Deployment& d, UeId ue, const Position& pos,
                      int settle_slots = 80) {
  d.air.set_ue_position(ue, pos);
  d.engine.run_slots(settle_slots);
}

}  // namespace rb::bench
