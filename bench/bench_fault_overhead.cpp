// Fault-injection layer overhead: slots/sec of a DAS cell with (a) no
// FaultyLink attached, (b) an attached but all-zero (idle) plan - the
// hook is consulted on every send but draws nothing - and (c) an active
// mixed-fault plan. The idle case is the price every production-shaped
// run pays for keeping the layer compiled in; it must stay under 2%.
// Results land in BENCH_fault_overhead.json.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/fault.h"

namespace rb {
namespace {

constexpr int kFloors = 3;
constexpr int kWarmupSlots = 160;
constexpr int kMeasureSlots = 600;

enum class FaultMode { Detached, IdlePlan, ActivePlan };

struct Result {
  std::string label;
  double wall_ms = 0;
  double slots_per_s = 0;
  std::uint64_t perturbed = 0;
};

Result run_mode(const std::string& label, FaultMode mode) {
  Deployment d;
  CellConfig c = bench::cell_cfg(MHz(100), bench::kBand78Center, 1);
  auto du = d.add_du(c, srsran_profile(), 0);
  std::vector<Deployment::RuHandle> rus;
  std::vector<Deployment::RuHandle*> ptrs;
  for (int f = 0; f < kFloors; ++f)
    rus.push_back(d.add_ru(
        bench::ru_site(d.plan.ru_position(f, 1), 4, MHz(100), c.center_freq),
        std::uint8_t(f), du.du->fh()));
  for (auto& r : rus) ptrs.push_back(&r);
  d.add_das(du, ptrs, DriverKind::Dpdk, 2);
  for (int f = 0; f < kFloors; ++f)
    d.add_ue(d.plan.near_ru(f, 1, 4.0), &du, 150.0, 15.0);

  if (mode != FaultMode::Detached) {
    FaultPlan ul;  // uplink (RU -> middlebox) direction
    FaultPlan dl;
    if (mode == FaultMode::ActivePlan) {
      ul.loss = 0.01;
      ul.jitter_ns = 20000;
      dl.duplicate = 0.02;
      dl.corrupt = 0.01;
    }
    for (auto& r : rus) {
      ul.seed = 0xfa017u + std::uint64_t(r.index);
      d.add_fault(*r.port, ul, dl);
    }
  }

  d.engine.run_slots(kWarmupSlots);
  const auto t0 = std::chrono::steady_clock::now();
  d.engine.run_slots(kMeasureSlots);
  const auto t1 = std::chrono::steady_clock::now();

  Result r;
  r.label = label;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.slots_per_s = double(kMeasureSlots) * 1000.0 / r.wall_ms;
  for (const auto& f : d.faults) {
    const auto sum = [](const FaultStats& s) {
      return s.dropped() + s.delayed + s.duplicated + s.reordered +
             s.corrupted;
    };
    r.perturbed += sum(f->stats_ab()) + sum(f->stats_ba());
  }
  return r;
}

}  // namespace
}  // namespace rb

int main() {
  using namespace rb;

  bench::header("Fault-injection layer overhead",
                "robustness hardening (this repo's src/net fault layer)");
  bench::row("%d-floor DAS cell, %d measured slots", kFloors, kMeasureSlots);
  bench::row("");
  bench::row("%-10s %12s %12s %10s %12s", "mode", "wall ms", "slots/s",
             "overhead", "perturbed");

  // Median-of-three per mode: the comparison is against scheduler noise.
  const auto best = [](FaultMode mode, const std::string& label) {
    Result r = run_mode(label, mode);
    for (int i = 0; i < 2; ++i) {
      Result again = run_mode(label, mode);
      if (again.wall_ms < r.wall_ms) r = again;
    }
    return r;
  };
  const Result detached = best(FaultMode::Detached, "detached");
  const Result idle = best(FaultMode::IdlePlan, "idle");
  const Result active = best(FaultMode::ActivePlan, "active");

  const auto overhead = [&](const Result& r) {
    return (r.wall_ms - detached.wall_ms) / detached.wall_ms;
  };
  for (const Result* r : {&detached, &idle, &active})
    bench::row("%-10s %12.1f %12.1f %9.2f%% %12llu", r->label.c_str(),
               r->wall_ms, r->slots_per_s, overhead(*r) * 100.0,
               static_cast<unsigned long long>(r->perturbed));
  const bool idle_ok = overhead(idle) < 0.02;
  bench::row("");
  bench::row("idle overhead under 2%%: %s", idle_ok ? "yes" : "NO");

  std::FILE* f = std::fopen("BENCH_fault_overhead.json", "w");
  if (f) {
    std::fprintf(f, "{\n  \"floors\": %d,\n  \"measure_slots\": %d,\n",
                 kFloors, kMeasureSlots);
    std::fprintf(f, "  \"idle_overhead_ok\": %s,\n",
                 idle_ok ? "true" : "false");
    std::fprintf(f, "  \"runs\": [\n");
    const Result* rs[] = {&detached, &idle, &active};
    for (std::size_t i = 0; i < 3; ++i) {
      std::fprintf(f,
                   "    {\"mode\": \"%s\", \"wall_ms\": %.2f, "
                   "\"slots_per_s\": %.1f, \"overhead\": %.4f, "
                   "\"perturbed\": %llu}%s\n",
                   rs[i]->label.c_str(), rs[i]->wall_ms, rs[i]->slots_per_s,
                   overhead(*rs[i]),
                   static_cast<unsigned long long>(rs[i]->perturbed),
                   i + 1 < 3 ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    bench::row("wrote BENCH_fault_overhead.json");
  }
  return idle_ok ? 0 : 1;
}
