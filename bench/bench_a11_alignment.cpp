// Appendix A.1.1: the PRB-alignment center-frequency formula, and the
// cost ablation it motivates - copying PRBs between aligned grids is a
// memcpy, while misaligned grids pay decompress-shift-recompress.
#include <chrono>

#include "bench_util.h"

#include "iq/prb.h"

namespace rb::bench {
namespace {

double time_copy_us(int shift_sc) {
  const CompConfig cfg{CompMethod::BlockFloatingPoint, 9};
  const int n_prb = 106;
  std::vector<IqSample> samples(std::size_t(n_prb) * kScPerPrb);
  std::uint32_t rng = 99;
  for (auto& s : samples) {
    rng = rng * 1664525u + 1013904223u;
    s.i = std::int16_t(rng >> 18);
    rng = rng * 1664525u + 1013904223u;
    s.q = std::int16_t(rng >> 18);
  }
  std::vector<std::uint8_t> src(cfg.prb_bytes() * std::size_t(n_prb));
  compress_prbs(IqConstSpan(samples.data(), samples.size()), cfg, src);
  std::vector<std::uint8_t> dst(cfg.prb_bytes() * 273, 0);
  PrbScratch scratch;
  const int iters = 200;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    if (shift_sc == 0)
      copy_prbs_aligned(src, 0, dst, 10, n_prb, cfg);
    else
      copy_prbs_shifted(src, 0, dst, 10, n_prb, shift_sc, cfg, scratch);
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count() / iters;
}

}  // namespace
}  // namespace rb::bench

int main() {
  using namespace rb;
  using namespace rb::bench;
  header("Appendix A.1.1 - PRB grid alignment: formula and copy-cost "
         "ablation",
         "SIGCOMM'25 RANBooster Appendix A.1.1, Figure 6");
  // The worked example of Figure 6: a 100 MHz RU at 3.46 GHz shared by
  // 40 MHz DUs.
  const Hertz ru_center = GHz(3) + MHz(460);
  row("RU: 100 MHz, center %.4f GHz, 273 PRBs", double(ru_center) / 1e9);
  for (int offset : {10, 83, 150}) {
    const Hertz duc =
        aligned_du_center_frequency(ru_center, 273, 106, offset, Scs::kHz30);
    row("  DU aligned at RU PRB %3d -> DU center %.6f GHz", offset,
        double(duc) / 1e9);
  }
  row("");
  row("copy cost for one 106-PRB slice into the RU grid (W=9 BFP):");
  row("  aligned    (memcpy)                  : %8.2f us", time_copy_us(0));
  row("  misaligned (decompress+shift+recomp) : %8.2f us", time_copy_us(6));
  row("paper takeaway: pick DU center frequencies with the A.1.1 formula "
      "so the copy stays on the aligned path");
  return 0;
}
