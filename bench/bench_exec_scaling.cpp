// Parallel execution engine scaling: wall-clock speedup of the flow-
// sharded engine over the serial engine on a multi-cell DAS deployment
// (the software analogue of the paper's claim in 6.4.1 that adding CPU
// cores scales the middlebox past its single-core budget).
//
// Six independent 100 MHz DAS cells (4 floor RUs each) run the same slot
// schedule under serial, 1, 2, 4 and 8 workers. Besides the timing table
// the bench cross-checks determinism: every policy must produce an
// identical telemetry fingerprint. Results land in BENCH_exec_scaling.json.
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "exec/exec_policy.h"

namespace rb {
namespace {

constexpr int kCells = 6;
constexpr int kRusPerCell = 4;
constexpr int kWarmupSlots = 160;
constexpr int kMeasureSlots = 400;

struct Rig {
  std::unique_ptr<Deployment> d;
  std::vector<Deployment::DuHandle> dus;
};

Rig build() {
  Rig rig;
  rig.d = std::make_unique<Deployment>();
  Deployment& d = *rig.d;
  std::vector<std::vector<Deployment::RuHandle>> rus(kCells);
  std::uint8_t ru_index = 0;
  for (int cell = 0; cell < kCells; ++cell) {
    // Non-overlapping carriers so the cells do not interfere; spread the
    // sites far apart so each UE only sees its own cell.
    CellConfig c = bench::cell_cfg(MHz(100), bench::kBand78Center +
                                                 MHz(120) * cell,
                                   std::uint16_t(cell + 1));
    auto du = d.add_du(c, srsran_profile(), std::uint8_t(cell));
    std::vector<Deployment::RuHandle*> ptrs;
    for (int f = 0; f < kRusPerCell; ++f) {
      Position pos = d.plan.ru_position(f, 1);
      pos.x += 400.0 * cell;  // isolate the sites
      rus[std::size_t(cell)].push_back(
          d.add_ru(bench::ru_site(pos, 4, MHz(100), c.center_freq),
                   ru_index++, du.du->fh()));
    }
    for (auto& r : rus[std::size_t(cell)]) ptrs.push_back(&r);
    d.add_das(du, ptrs, DriverKind::Dpdk, 2);
    for (int f = 0; f < kRusPerCell; ++f) {
      Position upos = d.plan.near_ru(f, 1, 4.0);
      upos.x += 400.0 * cell;
      d.add_ue(upos, &du, 150.0, 15.0, int(cell + 1));
    }
    rig.dus.push_back(du);
  }
  return rig;
}

struct Result {
  std::string label;
  double wall_ms = 0;
  double slots_per_s = 0;
  std::map<std::string, std::uint64_t> fingerprint;
  std::uint64_t worker_jobs = 0;
  std::uint64_t worker_busy_ns = 0;
};

Result run_policy(const std::string& label, const exec::ExecPolicy& policy) {
  Rig rig = build();
  Deployment& d = *rig.d;
  d.engine.set_exec_policy(policy);
  d.engine.run_slots(kWarmupSlots);

  const auto t0 = std::chrono::steady_clock::now();
  d.engine.run_slots(kMeasureSlots);
  const auto t1 = std::chrono::steady_clock::now();

  Result r;
  r.label = label;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.slots_per_s = double(kMeasureSlots) * 1000.0 / r.wall_ms;
  for (const auto& rt : d.runtimes)
    for (const auto& [k, v] : rt->telemetry().counters())
      r.fingerprint[rt->config().name + "." + k] = v;
  const auto stats = d.engine.exec_stats();
  r.worker_jobs = stats.jobs;
  r.worker_busy_ns = stats.busy_ns;
  return r;
}

}  // namespace
}  // namespace rb

int main() {
  using namespace rb;

  bench::header("Parallel execution engine scaling",
                "section 6.4.1 (multi-core middlebox scaling), this repo's "
                "src/exec engine");
  const unsigned hw = std::thread::hardware_concurrency();
  bench::row("%d DAS cells x %d RUs, 100 MHz, %d measured slots", kCells,
             kRusPerCell, kMeasureSlots);
  bench::row("host cores: %u%s", hw,
             hw < 4 ? "  (wall-clock speedup needs >= n_workers cores; on "
                      "fewer cores this bench measures engine overhead and "
                      "checks determinism)"
                    : "");
  bench::row("");
  bench::row("%-10s %12s %12s %9s %14s", "policy", "wall ms", "slots/s",
             "speedup", "worker jobs");

  std::vector<Result> results;
  results.push_back(run_policy("serial", exec::ExecPolicy::serial()));
  for (int n : {1, 2, 4, 8})
    results.push_back(
        run_policy("par" + std::to_string(n), exec::ExecPolicy::parallel(n)));

  const double base = results[1].wall_ms;  // speedup vs 1 worker
  bool deterministic = true;
  for (const auto& r : results) {
    if (r.fingerprint != results[0].fingerprint) deterministic = false;
    bench::row("%-10s %12.1f %12.1f %8.2fx %14llu", r.label.c_str(),
               r.wall_ms, r.slots_per_s, base / r.wall_ms,
               static_cast<unsigned long long>(r.worker_jobs));
  }
  bench::row("");
  bench::row("deterministic fingerprints: %s", deterministic ? "yes" : "NO");

  std::FILE* f = std::fopen("BENCH_exec_scaling.json", "w");
  if (f) {
    std::fprintf(f, "{\n  \"cells\": %d,\n  \"rus_per_cell\": %d,\n", kCells,
                 kRusPerCell);
    std::fprintf(f, "  \"host_cores\": %u,\n", hw);
    std::fprintf(f, "  \"measure_slots\": %d,\n  \"deterministic\": %s,\n",
                 kMeasureSlots, deterministic ? "true" : "false");
    std::fprintf(f, "  \"runs\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      std::fprintf(f,
                   "    {\"policy\": \"%s\", \"wall_ms\": %.2f, "
                   "\"slots_per_s\": %.1f, \"speedup_vs_par1\": %.3f, "
                   "\"worker_jobs\": %llu, \"worker_busy_ms\": %.1f}%s\n",
                   r.label.c_str(), r.wall_ms, r.slots_per_s,
                   base / r.wall_ms,
                   static_cast<unsigned long long>(r.worker_jobs),
                   double(r.worker_busy_ns) / 1e6,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    bench::row("wrote BENCH_exec_scaling.json");
  }
  return deterministic ? 0 : 1;
}
