// Microbenchmark: fronthaul frame encode/parse - the fixed per-packet
// cost every middlebox pays before any action runs.
#include <benchmark/benchmark.h>

#include "fronthaul/frame.h"
#include "iq/prb.h"

namespace rb {
namespace {

struct Fixture {
  FhContext ctx{};
  std::vector<std::uint8_t> cframe;
  std::vector<std::uint8_t> uframe;

  Fixture() {
    ctx.carrier_prbs = 273;
    EthHeader eth;
    eth.dst = MacAddr::ru(0);
    eth.src = MacAddr::du(0);
    eth.vlan_id = 6;

    CPlaneMsg c;
    c.direction = Direction::Downlink;
    c.comp = ctx.comp;
    CSection cs;
    cs.num_prb = 0;  // whole carrier
    cs.num_symbol = 14;
    c.sections.push_back(cs);
    cframe.resize(256);
    cframe.resize(
        build_cplane_frame(cframe, eth, EaxcId{}, 0, c, ctx));

    std::vector<IqSample> samples(273 * kScPerPrb);
    std::uint32_t rng = 5;
    for (auto& s : samples) {
      rng = rng * 1664525u + 1013904223u;
      s.i = std::int16_t(rng >> 18);
      s.q = std::int16_t(rng >> 20);
    }
    std::vector<std::uint8_t> payload(ctx.comp.prb_bytes() * 273);
    compress_prbs(IqConstSpan(samples.data(), samples.size()), ctx.comp,
                  payload);
    UPlaneMsg u;
    u.direction = Direction::Downlink;
    USectionData sec;
    sec.num_prb = 273;
    sec.payload = payload;
    uframe.resize(9216);
    uframe.resize(build_uplane_frame(uframe, eth, EaxcId{}, 0, u,
                                     std::span(&sec, 1), ctx));
  }
};

void BM_ParseCplane(benchmark::State& state) {
  Fixture f;
  for (auto _ : state) {
    auto r = parse_frame(f.cframe, f.ctx);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ParseCplane);

void BM_ParseUplaneJumbo(benchmark::State& state) {
  Fixture f;
  for (auto _ : state) {
    auto r = parse_frame(f.uframe, f.ctx);
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(state.iterations() * std::int64_t(f.uframe.size()));
}
BENCHMARK(BM_ParseUplaneJumbo);

void BM_RewriteEaxc(benchmark::State& state) {
  Fixture f;
  for (auto _ : state) {
    bool ok = rewrite_eaxc(f.uframe, EaxcId{0, 0, 0, 2});
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_RewriteEaxc);

}  // namespace
}  // namespace rb

BENCHMARK_MAIN();
