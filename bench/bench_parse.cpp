// Perf-smoke for the burst-mode packet pipeline. Two sweeps:
//
// 1. GATED: batched header parse over a cache-cold packet arena, visited
//    in a pseudo-random (permuted) order the hardware prefetcher cannot
//    follow. Burst size 1 is the pre-batching idiom -- one packet per
//    arrival, parsed with the allocating parse_frame(), no lookahead.
//    Burst size B >= 2 is the pipeline's parse pass: a reused SoA frame
//    table (parse_frame_into, capacity kept across packets) with software
//    prefetch of the next packet's header lines while the current one
//    parses. Batching is what creates the lookahead that makes prefetch
//    possible; packets/s at burst 32 must be >= 2x burst 1 (ISSUE 8).
//
// 2. Informative: end-to-end pump throughput (drain -> sort -> parse ->
//    classify -> dispatch -> tx) with B packets queued per pump, showing
//    how the per-pump overheads amortize. Not gated: per-packet dispatch
//    cost dominates, so this ratio is structurally modest.
//
// Also reports parse-stage microcosts (hot-cache ns/frame, allocating vs
// reused) and writes BENCH_parse.json into the working directory.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/middlebox.h"
#include "iq/prb.h"

namespace rb {
namespace {

using Clock = std::chrono::steady_clock;

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Frames {
  FhContext ctx{};
  std::vector<std::uint8_t> cframe;
  std::vector<std::uint8_t> uframe;
  std::vector<std::uint8_t> usmall;

  Frames() {
    ctx.carrier_prbs = 273;
    EthHeader eth;
    eth.dst = MacAddr::ru(0);
    eth.src = MacAddr::du(0);
    eth.vlan_id = 6;

    CPlaneMsg c;
    c.direction = Direction::Downlink;
    c.comp = ctx.comp;
    CSection cs;
    cs.num_prb = 0;  // whole carrier
    cs.num_symbol = 14;
    c.sections.push_back(cs);
    cframe.resize(256);
    cframe.resize(build_cplane_frame(cframe, eth, EaxcId{}, 0, c, ctx));

    std::vector<IqSample> samples(273 * kScPerPrb);
    std::uint32_t rng = 5;
    for (auto& s : samples) {
      rng = rng * 1664525u + 1013904223u;
      s.i = std::int16_t(rng >> 18);
      s.q = std::int16_t(rng >> 20);
    }
    std::vector<std::uint8_t> payload(ctx.comp.prb_bytes() * 273);
    compress_prbs(IqConstSpan(samples.data(), samples.size()), ctx.comp,
                  payload);
    UPlaneMsg u;
    u.direction = Direction::Downlink;
    USectionData sec;
    sec.num_prb = 273;
    sec.payload = payload;
    uframe.resize(9216);
    uframe.resize(
        build_uplane_frame(uframe, eth, EaxcId{}, 0, u, std::span(&sec, 1),
                           ctx));

    // Small (8-PRB) U-plane frame for the pump sweep so the working set
    // stays cache-resident across burst sizes and the sweep measures
    // pipeline overheads, not memcpy bandwidth.
    USectionData small_sec;
    small_sec.num_prb = 8;
    small_sec.payload =
        std::span(payload).subspan(0, ctx.comp.prb_bytes() * 8);
    usmall.resize(512);
    usmall.resize(build_uplane_frame(usmall, eth, EaxcId{}, 0, u,
                                     std::span(&small_sec, 1), ctx));
  }
};

/// Cache-cold packet arena: kSlots frames laid out at kStride spacing in
/// one allocation, visited in full-period LCG order so consecutive parses
/// touch unpredictable addresses (as pool-recycled packets do in the
/// runtime). The touched footprint (~32 MiB) defeats typical LLCs.
struct Arena {
  static constexpr std::size_t kSlots = 1u << 16;
  static constexpr std::size_t kStride = 512;

  std::vector<std::uint8_t> mem;
  std::array<std::uint32_t, kSlots> order;  // permuted visit sequence
  std::array<std::uint16_t, kSlots> len;

  Arena(const Frames& f) : mem(kSlots * kStride) {
    std::uint32_t slot = 1;
    for (std::size_t i = 0; i < kSlots; ++i) {
      // 3:1 U-plane:C-plane, matching the pump mix.
      const auto& tmpl = (i % 4 == 3) ? f.cframe : f.usmall;
      std::copy(tmpl.begin(), tmpl.end(), mem.begin() + i * kStride);
      len[i] = std::uint16_t(tmpl.size());
      // Full-period LCG mod 2^16 (a % 8 == 5, c odd).
      order[i] = slot & (kSlots - 1);
      slot = slot * 1664525u + 1013904223u;
    }
  }

  std::span<const std::uint8_t> frame(std::uint32_t slot) const {
    return {mem.data() + std::size_t(slot) * kStride, len[slot]};
  }
};

/// Gated sweep: packets/s of the parse stage at a given burst size over
/// the cold arena. burst == 1 replays the per-arrival legacy path.
double parse_packets_per_s(const Arena& a, const FhContext& ctx,
                           std::size_t burst, std::size_t target_packets) {
  std::vector<FhFrame> table(burst);
  std::uint64_t sink = 0;
  const std::size_t passes =
      (target_packets + Arena::kSlots - 1) / Arena::kSlots;
  const auto t0 = Clock::now();
  for (std::size_t pass = 0; pass < passes; ++pass) {
    for (std::size_t base = 0; base + burst <= Arena::kSlots; base += burst) {
      if (burst == 1) {
        auto f = parse_frame(a.frame(a.order[base]), ctx);
        if (f) sink += f->is_uplane();
      } else {
        for (std::size_t i = 0; i < burst; ++i) {
          if (i + 1 < burst) {
            const std::uint8_t* nx =
                a.mem.data() + std::size_t(a.order[base + i + 1]) * Arena::kStride;
            __builtin_prefetch(nx);
            __builtin_prefetch(nx + 64);
          }
          if (parse_frame_into(a.frame(a.order[base + i]), ctx, table[i]))
            sink += table[i].is_uplane();
        }
      }
    }
  }
  const double dt = secs_since(t0);
  const double pkts = double(passes) * double(Arena::kSlots / burst * burst);
  if (sink == 0) return 0.0;  // also keeps the parses observable
  return dt > 0 ? pkts / dt : 0.0;
}

/// Forwards everything south; the south port is left unwired so packets
/// die at TX and recycle through the pool magazine.
class ForwardApp final : public MiddleboxApp {
 public:
  std::string name() const override { return "fwd"; }
  void on_frame(int, PacketPtr p, FhFrame&, MbContext& ctx) override {
    ctx.forward(std::move(p), 1);
  }
};

/// End-to-end pump throughput with `burst` packets queued per pump pass.
double pump_packets_per_s(const Frames& f, std::size_t burst,
                          std::size_t target_packets) {
  ForwardApp app;
  MiddleboxRuntime::Config cfg;
  cfg.name = "bench";
  cfg.fh = f.ctx;
  MiddleboxRuntime rt(cfg, app);
  Port north{"north"}, south{"south"}, src{"src"};
  rt.add_port("north", north);
  rt.add_port("south", south);
  Port::connect(src, north, 0);

  const auto fill = [&](std::int64_t base_ns) {
    for (std::size_t k = 0; k < burst; ++k) {
      PacketPtr p = rt.pool().alloc();
      if (!p) return false;
      // 3:1 U-plane:C-plane mix, reverse arrival order to work the sort.
      const auto& tmpl = (k % 4 == 3) ? f.cframe : f.usmall;
      std::copy(tmpl.begin(), tmpl.end(), p->raw().begin());
      p->set_len(tmpl.size());
      p->rx_time_ns = base_ns + std::int64_t(burst - k);
      if (!src.send(std::move(p))) return false;
    }
    return true;
  };

  // Warm the burst descriptor, parse table and pool magazines.
  for (int w = 0; w < 8; ++w) {
    if (!fill(0)) return 0.0;
    rt.pump(0, 0);
  }

  // Refills are untimed: only the pump (drain -> sort -> parse ->
  // classify -> dispatch -> tx flush) counts toward packets/s.
  const std::size_t pumps = (target_packets + burst - 1) / burst;
  Clock::duration pumping{};
  for (std::size_t i = 0; i < pumps; ++i) {
    if (!fill(std::int64_t(i))) return 0.0;
    const auto t0 = Clock::now();
    rt.pump(0, 0);
    pumping += Clock::now() - t0;
  }
  const double dt = std::chrono::duration<double>(pumping).count();
  return dt > 0 ? double(pumps * burst) / dt : 0.0;
}

/// Parse-stage microcost (ns/frame): alloc-per-call parse_frame() vs the
/// reused-capacity parse_frame_into() of the burst path.
struct ParseCost {
  double alloc_ns = 0;
  double reuse_ns = 0;
};

ParseCost parse_cost(const std::vector<std::uint8_t>& frame,
                     const FhContext& ctx, int iters) {
  ParseCost r;
  {
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) {
      auto f = parse_frame(frame, ctx);
      if (!f) return r;
    }
    r.alloc_ns = secs_since(t0) * 1e9 / iters;
  }
  {
    FhFrame reused;
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) {
      if (!parse_frame_into(frame, ctx, reused)) return r;
    }
    r.reuse_ns = secs_since(t0) * 1e9 / iters;
  }
  return r;
}

}  // namespace
}  // namespace rb

int main() {
  using namespace rb;
  const Frames f;
  const Arena arena(f);
  constexpr std::size_t kBursts[] = {1, 2, 4, 8, 16, 32};
  constexpr std::size_t kParseTarget = 2'000'000;
  constexpr std::size_t kPumpTarget = 400'000;
  constexpr int kReps = 3;  // best-of, to ride out scheduler noise

  printf("batched parse, cold %zu MiB arena, permuted order\n",
         Arena::kSlots * Arena::kStride >> 20);
  printf("%8s %16s\n", "burst", "packets/s");
  double parse_pps[std::size(kBursts)] = {};
  for (std::size_t i = 0; i < std::size(kBursts); ++i) {
    for (int r = 0; r < kReps; ++r)
      parse_pps[i] = std::max(
          parse_pps[i],
          parse_packets_per_s(arena, f.ctx, kBursts[i], kParseTarget));
    printf("%8zu %16.0f%s\n", kBursts[i], parse_pps[i],
           kBursts[i] == 1 ? "  (per-packet legacy path)" : "");
  }
  const double speedup =
      parse_pps[0] > 0 ? parse_pps[std::size(kBursts) - 1] / parse_pps[0] : 0;
  printf("speedup burst32/burst1: %.2fx (gate: >= 2x)\n\n", speedup);

  printf("end-to-end pump (parse->classify->act->tx), informative\n");
  printf("%8s %16s\n", "burst", "packets/s");
  double pump_pps[std::size(kBursts)] = {};
  for (std::size_t i = 0; i < std::size(kBursts); ++i) {
    for (int r = 0; r < kReps; ++r)
      pump_pps[i] =
          std::max(pump_pps[i], pump_packets_per_s(f, kBursts[i], kPumpTarget));
    printf("%8zu %16.0f\n", kBursts[i], pump_pps[i]);
  }
  const double pump_speedup =
      pump_pps[0] > 0 ? pump_pps[std::size(kBursts) - 1] / pump_pps[0] : 0;
  printf("pump speedup burst32/burst1: %.2fx\n\n", pump_speedup);

  const ParseCost cp = parse_cost(f.cframe, f.ctx, 2'000'000);
  const ParseCost up = parse_cost(f.uframe, f.ctx, 1'000'000);
  printf("hot parse cplane:       alloc %.1f ns  reused %.1f ns\n",
         cp.alloc_ns, cp.reuse_ns);
  printf("hot parse uplane jumbo: alloc %.1f ns  reused %.1f ns\n",
         up.alloc_ns, up.reuse_ns);

  FILE* js = fopen("BENCH_parse.json", "w");
  if (js) {
    const auto row = [&](const char* key, const double* v) {
      fprintf(js, "  \"%s\": {", key);
      for (std::size_t i = 0; i < std::size(kBursts); ++i)
        fprintf(js, "%s\"%zu\": %.0f", i ? ", " : "", kBursts[i], v[i]);
      fprintf(js, "},\n");
    };
    fprintf(js, "{\n");
    row("parse_packets_per_s", parse_pps);
    row("pump_packets_per_s", pump_pps);
    fprintf(js, "  \"parse_speedup_32_vs_1\": %.3f,\n", speedup);
    fprintf(js, "  \"pump_speedup_32_vs_1\": %.3f,\n", pump_speedup);
    fprintf(js, "  \"gate_min_parse_speedup\": 2.0,\n");
    fprintf(js, "  \"parse_ns_hot\": {\"cplane_alloc\": %.1f, "
                "\"cplane_reused\": %.1f, \"uplane_alloc\": %.1f, "
                "\"uplane_reused\": %.1f}\n",
            cp.alloc_ns, cp.reuse_ns, up.alloc_ns, up.reuse_ns);
    fprintf(js, "}\n");
    fclose(js);
    printf("wrote BENCH_parse.json\n");
  }
  if (speedup < 2.0) {
    printf("FAIL: parse burst32/burst1 speedup %.2fx below 2x gate\n",
           speedup);
    return 1;
  }
  printf("PASS\n");
  return 0;
}
