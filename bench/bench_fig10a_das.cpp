// Figure 10a: DL/UL throughput of a single cell with 1 RU (single floor)
// vs the RANBooster DAS with 5 RUs (five floors), under (i) all UEs
// running iperf simultaneously and (ii) each UE individually.
#include "bench_util.h"

namespace rb::bench {
namespace {

struct Result {
  double dl = 0, ul = 0;
};

Result baseline_two_ues() {
  Deployment d;
  auto du = d.add_du(cell_cfg(MHz(100), kBand78Center, 1), srsran_profile(), 0);
  auto ru = d.add_ru(ru_site(d.plan.ru_position(0, 1), 4, MHz(100),
                             kBand78Center), 0, du.du->fh());
  d.connect_direct(du, ru);
  const UeId a = d.add_ue(d.plan.near_ru(0, 1, 4.0), &du, 600, 60);
  const UeId b = d.add_ue(d.plan.near_ru(0, 1, -4.0), &du, 600, 60);
  d.attach_all(600);
  d.measure(400);
  return {d.dl_mbps(a) + d.dl_mbps(b), d.ul_mbps(a) + d.ul_mbps(b)};
}

struct DasRig {
  Deployment d;
  Deployment::DuHandle du;
  std::vector<Deployment::RuHandle> rus;
  std::vector<UeId> ues;

  DasRig() {
    du = d.add_du(cell_cfg(MHz(100), kBand78Center, 1), srsran_profile(), 0);
    std::vector<Deployment::RuHandle*> ptrs;
    for (int f = 0; f < 5; ++f)
      rus.push_back(d.add_ru(ru_site(d.plan.ru_position(f, 1), 4, MHz(100),
                                     kBand78Center),
                             std::uint8_t(f), du.du->fh()));
    for (auto& r : rus) ptrs.push_back(&r);
    // 5 RUs exceed the 1-core uplink merge budget (6.4.1): 2 workers.
    d.add_das(du, ptrs, DriverKind::Dpdk, 2);
    for (int f = 0; f < 5; ++f)
      ues.push_back(d.add_ue(d.plan.near_ru(f, 1, 4.0)));
  }
};

Result das_simultaneous() {
  DasRig rig;
  for (UeId ue : rig.ues) rig.d.traffic.set_flow(*rig.du.du, ue, 600, 60);
  rig.d.attach_all(600);
  rig.d.measure(400);
  Result r;
  for (UeId ue : rig.ues) {
    r.dl += rig.d.dl_mbps(ue);
    r.ul += rig.d.ul_mbps(ue);
  }
  return r;
}

/// Each UE runs iperf alone while the others stay attached but idle; the
/// reported number is the mean across floors (the paper's bar).
Result das_individual() {
  DasRig rig;
  rig.d.attach_all(600);
  Result mean;
  for (UeId ue : rig.ues) {
    rig.d.traffic.clear();
    rig.du.du->scheduler().clear_backlogs();
    rig.d.traffic.set_flow(*rig.du.du, ue, 1200, 100);
    rig.d.engine.run_slots(40);
    rig.d.measure(300);
    mean.dl += rig.d.dl_mbps(ue) / double(rig.ues.size());
    mean.ul += rig.d.ul_mbps(ue) / double(rig.ues.size());
  }
  return mean;
}

}  // namespace
}  // namespace rb::bench

int main() {
  using namespace rb::bench;
  header("Figure 10a - DAS correctness: throughput vs single-RU baseline",
         "SIGCOMM'25 RANBooster section 6.2.1, Figure 10a");
  row("%-34s %12s %12s", "configuration", "DL (Mbps)", "UL (Mbps)");
  const Result base = baseline_two_ues();
  row("%-34s %12.1f %12.1f", "single cell, 1 RU, 2 UEs", base.dl, base.ul);
  const Result sim = das_simultaneous();
  row("%-34s %12.1f %12.1f", "DAS 5 RUs, all UEs simultaneous", sim.dl,
      sim.ul);
  const Result ind = das_individual();
  row("%-34s %12.1f %12.1f", "DAS 5 RUs, each UE individually", ind.dl,
      ind.ul);
  row("%-34s %12s %12s", "paper shape", "all equal", "all equal");
  row("deviation simultaneous vs baseline: DL %+.1f%%  UL %+.1f%%",
      100.0 * (sim.dl - base.dl) / base.dl,
      100.0 * (sim.ul - base.ul) / base.ul);
  return 0;
}
