// Figure 13: downlink throughput across one floor with four 1-antenna RUs
// when running a DAS middlebox (single SISO cell, ~250 Mbps) vs swapping
// in a dMIMO middlebox (4-layer virtual RU, 2-3x higher) - no
// infrastructure change, middlebox software swap only.
#include "bench_util.h"

namespace rb::bench {
namespace {

std::vector<double> walk_throughput(Deployment& d, Deployment::DuHandle& du,
                                    UeId walker) {
  std::vector<double> out;
  for (const auto& pos : d.plan.walk_route(0, 10, 2)) {
    d.air.set_ue_position(walker, pos);
    d.engine.run_slots(80);
    d.traffic.set_flow(*du.du, walker, 800, 0);
    d.measure(160);
    out.push_back(d.dl_mbps(walker));
  }
  return out;
}

std::vector<double> das_siso() {
  Deployment d;
  auto du = d.add_du(cell_cfg(MHz(100), kBand78Center, 1, /*layers=*/1),
                     srsran_profile(), 0);
  std::vector<Deployment::RuHandle> rus;
  std::vector<Deployment::RuHandle*> ptrs;
  for (int i = 0; i < 4; ++i)
    rus.push_back(d.add_ru(
        ru_site(d.plan.ru_position(0, i), 1, MHz(100), kBand78Center),
        std::uint8_t(i), du.du->fh()));
  for (auto& r : rus) ptrs.push_back(&r);
  d.add_das(du, ptrs, DriverKind::Dpdk, 1);
  const UeId walker = d.add_ue(d.plan.near_ru(0, 0, 2.0), &du, 800, 0);
  d.attach_all(600);
  return walk_throughput(d, du, walker);
}

std::vector<double> dmimo_4layer() {
  Deployment d;
  auto du = d.add_du(cell_cfg(MHz(100), kBand78Center, 1, /*layers=*/4),
                     srsran_profile(), 0);
  std::vector<Deployment::RuHandle> rus;
  std::vector<Deployment::RuHandle*> ptrs;
  for (int i = 0; i < 4; ++i)
    rus.push_back(d.add_ru(
        ru_site(d.plan.ru_position(0, i), 1, MHz(100), kBand78Center),
        std::uint8_t(i), du.du->fh()));
  for (auto& r : rus) ptrs.push_back(&r);
  d.add_dmimo(du, ptrs);
  const UeId walker = d.add_ue(d.plan.near_ru(0, 0, 2.0), &du, 800, 0);
  d.attach_all(600);
  return walk_throughput(d, du, walker);
}

double mean(const std::vector<double>& v) {
  double s = 0;
  for (double x : v) s += x;
  return v.empty() ? 0 : s / double(v.size());
}

}  // namespace
}  // namespace rb::bench

int main() {
  using namespace rb::bench;
  header("Figure 13 - DAS (SISO) vs dMIMO middlebox swap on 4x1-antenna RUs",
         "SIGCOMM'25 RANBooster section 6.3.2, Figure 13");
  const auto das = das_siso();
  const auto dm = dmimo_4layer();
  std::printf("%-26s", "DAS single SISO cell:");
  for (double v : das) std::printf(" %5.0f", v);
  std::printf("   mean %.0f Mbps (paper: ~250)\n", mean(das));
  std::printf("%-26s", "dMIMO 4 layers:");
  for (double v : dm) std::printf(" %5.0f", v);
  std::printf("   mean %.0f Mbps (paper: 2-3x DAS)\n", mean(dm));
  double ratio_min = 1e9, ratio_max = 0;
  for (std::size_t i = 0; i < das.size() && i < dm.size(); ++i) {
    if (das[i] > 1.0) {
      const double r = dm[i] / das[i];
      ratio_min = std::min(ratio_min, r);
      ratio_max = std::max(ratio_max, r);
    }
  }
  row("speedup by location: %.1fx .. %.1fx (paper: 'factor of 2 or 3, "
      "depending on the location')", ratio_min, ratio_max);
  return 0;
}
