// Perf-smoke for the zero-copy replication datapath (ISSUE 10).
//
// GATED: fan a jumbo U-plane frame (273 PRBs, ~7.5 KB) out to N egress
// copies, each with its Ethernet MACs rewritten, the way das/dmimo
// broadcast one DU frame to every RU. Two implementations:
//
//   deep clone  - PacketPool::clone(): full-frame memcpy per egress, the
//                 pre-arena idiom.
//   zero-copy   - PacketPool::replicate(): copy only the private head
//                 (everything before the first section payload) and attach
//                 to the source's arena slot by refcount, DPDK
//                 indirect-mbuf style.
//
// Replicas/s for zero-copy at fan-out 8 must be >= 3x deep clone. Writes
// BENCH_replicate.json into the working directory.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "core/middlebox.h"
#include "iq/prb.h"

namespace rb {
namespace {

using Clock = std::chrono::steady_clock;

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Jumbo single-section U-plane frame plus the split offset replication
/// eligibility derives (the first section's payload start).
struct JumboFrame {
  FhContext ctx{};
  std::vector<std::uint8_t> frame;
  std::size_t split = 0;

  JumboFrame() {
    ctx.carrier_prbs = 273;
    EthHeader eth;
    eth.dst = MacAddr::ru(0);
    eth.src = MacAddr::du(0);
    eth.vlan_id = 6;

    std::vector<IqSample> samples(273 * kScPerPrb);
    std::uint32_t rng = 7;
    for (auto& s : samples) {
      rng = rng * 1664525u + 1013904223u;
      s.i = std::int16_t(rng >> 18);
      s.q = std::int16_t(rng >> 20);
    }
    std::vector<std::uint8_t> payload(ctx.comp.prb_bytes() * 273);
    compress_prbs(IqConstSpan(samples.data(), samples.size()), ctx.comp,
                  payload);
    UPlaneMsg u;
    u.direction = Direction::Downlink;
    USectionData sec;
    sec.num_prb = 273;
    sec.payload = payload;
    frame.resize(9216);
    frame.resize(
        build_uplane_frame(frame, eth, EaxcId{}, 0, u, std::span(&sec, 1),
                           ctx));
    auto parsed = parse_frame(frame, ctx);
    if (parsed && parsed->is_uplane() && !parsed->uplane().sections.empty())
      split = parsed->uplane().sections[0].payload_offset;
  }
};

/// Rounds of replicas kept in flight before release. Models the egress
/// queues the copies sit in on the way out: the buffer a new copy lands in
/// was last touched many rounds (megabytes of traffic) ago, so the deep
/// clone pays for its memcpy against cold destinations the way a real
/// multi-RU broadcast does, instead of recycling a couple of L2-hot slots.
constexpr std::size_t kInflightRounds = 64;

/// One fan-out round: produce `fanout` egress copies of `src`, rewrite
/// each copy's MACs (the per-egress byte mutation das/dmimo do), and read
/// one payload byte so the copy is observable.
template <typename MakeCopy>
std::uint64_t fan_round(std::size_t fanout, std::size_t split,
                        std::vector<PacketPtr>& out, MakeCopy make) {
  std::uint64_t sink = 0;
  for (std::size_t n = 0; n < fanout; ++n) {
    PacketPtr r = make();
    if (!r) return sink;
    auto head = r->mutable_prefix(14);
    head[5] = std::uint8_t(n);  // per-egress MAC rewrite
    sink += r->bytes(split)[0];
    out.push_back(std::move(r));
  }
  return sink;
}

/// Replicas/s at a given fan-out for one copy strategy.
template <typename MakeCopy>
double replicas_per_s(std::size_t fanout, std::size_t split,
                      std::size_t iters, MakeCopy make) {
  std::vector<std::vector<PacketPtr>> ring(kInflightRounds);
  for (auto& slot : ring) slot.reserve(fanout);
  std::uint64_t sink = 0;
  std::size_t round = 0;
  const auto step = [&] {
    auto& slot = ring[round++ % kInflightRounds];
    slot.clear();  // release the round that aged out of the window
    sink += fan_round(fanout, split, slot, make);
  };
  // Warm the pool magazines and fill the in-flight window.
  for (std::size_t w = 0; w < kInflightRounds + 16; ++w) step();
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) step();
  const double dt = secs_since(t0);
  if (sink == std::uint64_t(-1)) return 0.0;  // keep the reads observable
  return dt > 0 ? double(iters * fanout) / dt : 0.0;
}

}  // namespace
}  // namespace rb

int main() {
  using namespace rb;
  const JumboFrame f;
  if (f.split == 0 || f.split >= f.frame.size()) {
    printf("FAIL: could not derive a payload split from the jumbo frame\n");
    return 1;
  }
  printf("jumbo frame %zu bytes, private head (split) %zu bytes\n",
         f.frame.size(), f.split);

  // Sized for fan-out 16 x the in-flight window plus headroom; the ~19 MB
  // arena also keeps clone destinations out of mid-level caches.
  PacketPool pool(2048);
  PacketPtr src = pool.alloc();
  std::copy(f.frame.begin(), f.frame.end(), src->raw().begin());
  src->set_len(f.frame.size());

  constexpr std::size_t kFanouts[] = {1, 2, 4, 8, 16};
  constexpr std::size_t kTargetReplicas = 160'000;
  constexpr int kReps = 3;  // best-of, to ride out scheduler noise
  constexpr double kGate = 3.0;

  double clone_pps[std::size(kFanouts)] = {};
  double zc_pps[std::size(kFanouts)] = {};
  double speedup[std::size(kFanouts)] = {};
  printf("%8s %18s %18s %10s\n", "fanout", "clone repl/s", "zerocopy repl/s",
         "speedup");
  for (std::size_t i = 0; i < std::size(kFanouts); ++i) {
    const std::size_t fo = kFanouts[i];
    const std::size_t iters = kTargetReplicas / fo;
    for (int r = 0; r < kReps; ++r) {
      clone_pps[i] =
          std::max(clone_pps[i], replicas_per_s(fo, f.split, iters, [&] {
                     return pool.clone(*src);
                   }));
      zc_pps[i] =
          std::max(zc_pps[i], replicas_per_s(fo, f.split, iters, [&] {
                     return pool.replicate(*src, f.split);
                   }));
    }
    speedup[i] = clone_pps[i] > 0 ? zc_pps[i] / clone_pps[i] : 0;
    printf("%8zu %18.0f %18.0f %9.2fx\n", fo, clone_pps[i], zc_pps[i],
           speedup[i]);
  }
  const double gate_speedup = speedup[3];  // fan-out 8
  printf("speedup at fan-out 8: %.2fx (gate: >= %.0fx)\n", gate_speedup,
         kGate);
  printf("pool: %llu zero-copy replicas, %llu CoW promotions, %llu "
         "fallbacks\n",
         (unsigned long long)pool.replicas_zero_copy(),
         (unsigned long long)pool.cow_promotions(),
         (unsigned long long)pool.cow_fallbacks());

  FILE* js = fopen("BENCH_replicate.json", "w");
  if (js) {
    const auto row = [&](const char* key, const double* v, const char* fmt) {
      fprintf(js, "  \"%s\": {", key);
      for (std::size_t i = 0; i < std::size(kFanouts); ++i) {
        fprintf(js, "%s\"%zu\": ", i ? ", " : "", kFanouts[i]);
        fprintf(js, fmt, v[i]);
      }
      fprintf(js, "},\n");
    };
    fprintf(js, "{\n");
    fprintf(js, "  \"frame_bytes\": %zu,\n", f.frame.size());
    fprintf(js, "  \"split_bytes\": %zu,\n", f.split);
    row("clone_replicas_per_s", clone_pps, "%.0f");
    row("zero_copy_replicas_per_s", zc_pps, "%.0f");
    row("speedup", speedup, "%.3f");
    fprintf(js, "  \"speedup_fanout8\": %.3f,\n", gate_speedup);
    fprintf(js, "  \"gate_min_speedup\": %.1f\n", kGate);
    fprintf(js, "}\n");
    fclose(js);
    printf("wrote BENCH_replicate.json\n");
  }
  if (gate_speedup < kGate) {
    printf("FAIL: zero-copy %.2fx below %.0fx gate at fan-out 8\n",
           gate_speedup, kGate);
    return 1;
  }
  printf("PASS\n");
  return 0;
}
