// Figure 11: walking-UE throughput across one floor under three
// deployment options with four RUs:
//   O1 - four 25 MHz cells on non-overlapping frequencies,
//   O2 - four 100 MHz cells with full frequency reuse,
//   O3 - one 100 MHz cell distributed by the RANBooster DAS middlebox.
// A static UE near RU 1 pulls 100 Mbps throughout; the walking UE demands
// 700 Mbps at each grid point of the floor.
#include <algorithm>
#include <memory>

#include "bench_util.h"

namespace rb::bench {
namespace {

struct WalkStats {
  std::vector<double> mbps;
  double mean() const {
    double s = 0;
    for (double v : mbps) s += v;
    return mbps.empty() ? 0 : s / double(mbps.size());
  }
  double min() const {
    return mbps.empty() ? 0 : *std::min_element(mbps.begin(), mbps.end());
  }
  double max() const {
    return mbps.empty() ? 0 : *std::max_element(mbps.begin(), mbps.end());
  }
};

/// Walk the floor, measuring the walking UE at each point.
WalkStats walk(Deployment& d, UeId walker,
               const std::vector<Deployment::DuHandle*>& dus) {
  WalkStats st;
  const auto route = d.plan.walk_route(0, 12, 2);
  for (const auto& pos : route) {
    d.air.set_ue_position(walker, pos);
    // Offer the walking load on whichever cell serves after reselection.
    d.engine.run_slots(100);
    for (auto* du : dus) d.traffic.set_flow(*du->du, walker, 0, 0);
    const CellId serving = d.air.serving_cell(walker);
    for (auto* du : dus)
      if (du->cell == serving) d.traffic.set_flow(*du->du, walker, 700, 0);
    d.engine.run_slots(40);
    d.measure(160);
    st.mbps.push_back(d.dl_mbps(walker));
  }
  return st;
}

WalkStats option1() {
  Deployment d;
  std::vector<Deployment::DuHandle> dus;
  std::vector<Deployment::DuHandle*> du_ptrs;
  for (int i = 0; i < 4; ++i) {
    const Hertz center = GHz(3) + MHz(400) + i * MHz(25);
    dus.push_back(d.add_du(cell_cfg(MHz(25), center, std::uint16_t(i + 1)),
                           srsran_profile(), std::uint8_t(i)));
    auto ru = d.add_ru(ru_site(d.plan.ru_position(0, i), 4, MHz(25), center),
                       std::uint8_t(i), dus.back().du->fh());
    d.connect_direct(dus.back(), ru);
  }
  for (auto& h : dus) du_ptrs.push_back(&h);
  const UeId stat = d.add_ue(d.plan.near_ru(0, 1, 2.0), &dus[1], 100, 0);
  (void)stat;
  const UeId walker = d.add_ue(d.plan.near_ru(0, 0, 2.0));
  d.engine.run_slots(300);
  return walk(d, walker, du_ptrs);
}

WalkStats option2() {
  Deployment d;
  std::vector<Deployment::DuHandle> dus;
  std::vector<Deployment::DuHandle*> du_ptrs;
  for (int i = 0; i < 4; ++i) {
    dus.push_back(d.add_du(cell_cfg(MHz(100), kBand78Center,
                                    std::uint16_t(i + 1)),
                           srsran_profile(), std::uint8_t(i)));
    auto ru = d.add_ru(
        ru_site(d.plan.ru_position(0, i), 4, MHz(100), kBand78Center),
        std::uint8_t(i), dus.back().du->fh());
    d.connect_direct(dus.back(), ru);
  }
  for (auto& h : dus) du_ptrs.push_back(&h);
  const UeId stat = d.add_ue(d.plan.near_ru(0, 1, 2.0), &dus[1], 100, 0);
  (void)stat;
  const UeId walker = d.add_ue(d.plan.near_ru(0, 0, 2.0));
  d.engine.run_slots(300);
  return walk(d, walker, du_ptrs);
}

WalkStats option3() {
  Deployment d;
  auto du = d.add_du(cell_cfg(MHz(100), kBand78Center, 1), srsran_profile(), 0);
  std::vector<Deployment::RuHandle> rus;
  std::vector<Deployment::RuHandle*> ptrs;
  for (int i = 0; i < 4; ++i)
    rus.push_back(d.add_ru(
        ru_site(d.plan.ru_position(0, i), 4, MHz(100), kBand78Center),
        std::uint8_t(i), du.du->fh()));
  for (auto& r : rus) ptrs.push_back(&r);
  d.add_das(du, ptrs, DriverKind::Dpdk, 1);  // 4 RUs fit in one core
  const UeId stat = d.add_ue(d.plan.near_ru(0, 1, 2.0), &du, 100, 0);
  (void)stat;
  const UeId walker = d.add_ue(d.plan.near_ru(0, 0, 2.0));
  d.engine.run_slots(300);
  std::vector<Deployment::DuHandle*> du_ptrs{&du};
  return walk(d, walker, du_ptrs);
}

}  // namespace
}  // namespace rb::bench

int main() {
  using namespace rb::bench;
  header("Figure 11 - floor walk: O1 (4x25 MHz) vs O2 (4x100 MHz reuse) vs "
         "O3 (RANBooster DAS)",
         "SIGCOMM'25 RANBooster section 6.3.1, Figure 11");
  auto print = [](const char* name, const WalkStats& st, const char* paper) {
    std::printf("%-28s mean %7.1f  min %7.1f  max %7.1f   paper: %s\n", name,
                st.mean(), st.min(), st.max(), paper);
    std::printf("  walk series (Mbps):");
    for (double v : st.mbps) std::printf(" %5.0f", v);
    std::printf("\n");
  };
  print("O1  4 cells / 25 MHz", option1(), "capped at ~200 Mbps");
  print("O2  4 cells / 100 MHz reuse", option2(),
        "interference dips at several locations");
  print("O3  RANBooster DAS", option3(), "~700 Mbps across the floor");
  return 0;
}
