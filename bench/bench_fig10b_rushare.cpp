// Figure 10b: DL/UL throughput of 40 MHz cells on a dedicated 40 MHz RU
// vs two 40 MHz cells sharing one 100 MHz RU through the RANBooster
// RU-sharing middlebox.
#include "bench_util.h"

namespace rb::bench {
namespace {

void dedicated(double* dl, double* ul) {
  Deployment d;
  const Hertz c40 = GHz(3) + MHz(430);
  auto du = d.add_du(cell_cfg(MHz(40), c40, 1), srsran_profile(), 0);
  auto ru = d.add_ru(ru_site(d.plan.ru_position(0, 1), 4, MHz(40), c40), 0,
                     du.du->fh());
  d.connect_direct(du, ru);
  const UeId ue = d.add_ue(d.plan.near_ru(0, 1, 5.0), &du, 500, 50);
  d.attach_all(600);
  d.measure(400);
  *dl = d.dl_mbps(ue);
  *ul = d.ul_mbps(ue);
}

void shared(double* dl_a, double* ul_a, double* dl_b, double* ul_b) {
  Deployment d;
  auto site = ru_site(d.plan.ru_position(0, 1), 4, MHz(100), kBand78Center);
  // Aligned DU grids per Appendix A.1.1 (cells at RU PRBs 10 and 150).
  const Hertz ca =
      aligned_du_center_frequency(kBand78Center, 273, 106, 10, Scs::kHz30);
  const Hertz cb =
      aligned_du_center_frequency(kBand78Center, 273, 106, 150, Scs::kHz30);
  auto du_a = d.add_du(cell_cfg(MHz(40), ca, 1), srsran_profile(), 0);
  auto du_b = d.add_du(cell_cfg(MHz(40), cb, 2), srsran_profile(), 1);
  auto ru = d.add_ru(site, 0, du_a.du->fh());
  d.add_rushare({&du_a, &du_b}, ru);
  const UeId ue_a = d.add_ue(d.plan.near_ru(0, 1, 5.0), &du_a, 500, 50, 1);
  const UeId ue_b = d.add_ue(d.plan.near_ru(0, 1, -5.0), &du_b, 500, 50, 2);
  d.attach_all(800);
  d.measure(400);
  *dl_a = d.dl_mbps(ue_a);
  *ul_a = d.ul_mbps(ue_a);
  *dl_b = d.dl_mbps(ue_b);
  *ul_b = d.ul_mbps(ue_b);
}

}  // namespace
}  // namespace rb::bench

int main() {
  using namespace rb::bench;
  header("Figure 10b - RU sharing: shared 100 MHz RU vs dedicated 40 MHz RU",
         "SIGCOMM'25 RANBooster section 6.2.3, Figure 10b");
  double dl = 0, ul = 0;
  dedicated(&dl, &ul);
  row("%-44s %10s %10s", "configuration", "DL (Mbps)", "UL (Mbps)");
  row("%-44s %10.1f %10.1f", "40 MHz cell, dedicated 40 MHz RU", dl, ul);
  double dla, ula, dlb, ulb;
  shared(&dla, &ula, &dlb, &ulb);
  row("%-44s %10.1f %10.1f", "cell A (40 MHz) on shared 100 MHz RU", dla,
      ula);
  row("%-44s %10.1f %10.1f", "cell B (40 MHz) on shared 100 MHz RU", dlb,
      ulb);
  row("%-44s %10s %10s", "paper", "~330 each", "~25 each");
  return 0;
}
