// City-scale conductor throughput: cells x UEs -> slots/s, RSS and p99
// slot wall time under the virtual-time conductor (ROADMAP item 1, the
// dense-deployment story of section 2 made concrete: many sectors, one
// box). Sweeps 1..64 cells (100 with RB_BENCH_FULL=1), each cell a full
// Deployment slice (DU + RU + prbmon middlebox + UE) stamped over the
// campus grid by CityBuilder.
//
// Emits BENCH_city_scale.json and exits nonzero when the near-linear
// gate fails: aggregate cell-slots/s at 16 cells must reach
// 0.625 x min(16, host_cores) x the 1-cell slots/s. The floor adapts to
// the host so a 1-core CI box gates on conductor overhead staying small
// rather than on parallel speedup it cannot produce.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "city/city.h"

namespace rb::bench {
namespace {

constexpr int kWarmupSlots = 40;
constexpr int kMeasureSlots = 200;

/// Resident set size in MiB, from /proc/self/status (Linux only; 0 when
/// unavailable). Monotonic across the sweep - the interesting reading is
/// the growth per added cell, not the absolute base.
double rss_mib() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0.0;
  char line[256];
  double kib = 0.0;
  while (std::fgets(line, sizeof(line), f)) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kib = std::strtod(line + 6, nullptr);
      break;
    }
  }
  std::fclose(f);
  return kib / 1024.0;
}

struct Result {
  int cells = 0;
  int workers = 0;
  double slots_per_s = 0;      // city slots (all cells advance together)
  double cell_slots_per_s = 0; // aggregate = cells x slots_per_s
  double p99_slot_us = 0;
  double rss_mib = 0;
  bool attached = false;
};

Result run_city(int n_cells, int workers) {
  city::CityConfig cfg;
  cfg.n_cells = n_cells;
  cfg.ues_per_cell = 1;
  cfg.workers = workers;
  auto c = city::build_city(cfg);

  Result r;
  r.cells = n_cells;
  r.workers = workers;
  r.attached = c->attach_all(800);
  c->run_slots(kWarmupSlots);

  std::vector<double> slot_us(std::size_t{kMeasureSlots}, 0.0);
  const auto t0 = std::chrono::steady_clock::now();
  for (int s = 0; s < kMeasureSlots; ++s) {
    const auto s0 = std::chrono::steady_clock::now();
    c->run_slots(1);
    const auto s1 = std::chrono::steady_clock::now();
    slot_us[std::size_t(s)] =
        std::chrono::duration<double, std::micro>(s1 - s0).count();
  }
  const auto t1 = std::chrono::steady_clock::now();

  const double wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.slots_per_s = double(kMeasureSlots) / wall_s;
  r.cell_slots_per_s = r.slots_per_s * double(n_cells);
  std::sort(slot_us.begin(), slot_us.end());
  r.p99_slot_us = slot_us[std::size_t(double(kMeasureSlots) * 0.99)];
  r.rss_mib = rss_mib();
  return r;
}

}  // namespace
}  // namespace rb::bench

int main() {
  using namespace rb::bench;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const int worker_cap = int(std::min(hw, 16u));
  const double slot_budget_us =
      double(rb::slot_duration_ns(rb::Scs::kHz30)) / 1000.0;

  header("City-scale conductor: slots/s, RSS and p99 slot time vs cells",
         "ROADMAP item 1 (city-scale scale-out), src/city conductor");
  row("host cores: %u, workers capped at %d, %d measured slots/point, "
      "slot budget %.0f us",
      hw, worker_cap, kMeasureSlots, slot_budget_us);
  row("");
  row("%6s %8s %10s %16s %13s %10s", "cells", "workers", "slots/s",
      "cell-slots/s", "p99 slot us", "RSS MiB");

  std::vector<int> sweep{1, 2, 4, 8, 16, 32, 64};
  if (std::getenv("RB_BENCH_FULL")) sweep.push_back(100);

  std::vector<Result> results;
  bool all_attached = true;
  for (int n : sweep) {
    const Result r = run_city(n, std::min(n, worker_cap));
    all_attached = all_attached && r.attached;
    row("%6d %8d %10.1f %16.1f %13.1f %10.1f", r.cells, r.workers,
        r.slots_per_s, r.cell_slots_per_s, r.p99_slot_us, r.rss_mib);
    results.push_back(r);
  }

  // Near-linear gate, normalized per cell: with W usable workers a
  // perfectly scaling conductor sustains W x base cell-slots/s; require
  // 62.5% of that at 16 cells.
  const Result* base = nullptr;
  const Result* at16 = nullptr;
  for (const auto& r : results) {
    if (r.cells == 1) base = &r;
    if (r.cells == 16) at16 = &r;
  }
  const double usable = std::min(16.0, double(hw));
  const double required =
      base ? 0.625 * usable * base->slots_per_s : 0.0;
  const bool gate_ok =
      base && at16 && at16->cell_slots_per_s >= required && all_attached;
  row("");
  row("near-linear gate: 16 cells aggregate %.1f cell-slots/s vs required "
      "%.1f (0.625 x %.0f x %.1f base)  -> %s",
      at16 ? at16->cell_slots_per_s : 0.0, required, usable,
      base ? base->slots_per_s : 0.0, gate_ok ? "PASS" : "FAIL");

  std::FILE* f = std::fopen("BENCH_city_scale.json", "w");
  if (f) {
    std::fprintf(f, "{\n  \"host_cores\": %u,\n  \"measure_slots\": %d,\n",
                 hw, kMeasureSlots);
    std::fprintf(f, "  \"slot_budget_us\": %.1f,\n", slot_budget_us);
    std::fprintf(f, "  \"runs\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      std::fprintf(f,
                   "    {\"cells\": %d, \"workers\": %d, "
                   "\"slots_per_s\": %.1f, \"cell_slots_per_s\": %.1f, "
                   "\"p99_slot_us\": %.1f, \"rss_mib\": %.1f}%s\n",
                   r.cells, r.workers, r.slots_per_s, r.cell_slots_per_s,
                   r.p99_slot_us, r.rss_mib,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"gate\": {\"required_cell_slots_per_s\": %.1f, "
                 "\"actual_cell_slots_per_s\": %.1f, \"pass\": %s}\n}\n",
                 required, at16 ? at16->cell_slots_per_s : 0.0,
                 gate_ok ? "true" : "false");
    std::fclose(f);
    row("wrote BENCH_city_scale.json");
  }
  return gate_ok ? 0 : 1;
}
