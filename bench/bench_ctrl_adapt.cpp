// Closed-loop adaptation payoff (ISSUE 6): UL throughput of a 3-floor DAS
// cell whose floor-0 fronthaul degrades in phases - healthy, lossy, then
// delay-collapsed past the DU latency budget - with a static configuration
// vs the src/ctrl adaptation controller in the loop. In the collapsed
// phase every combine waits for the poisoned link's copy and lands late,
// so the static cell's uplink dies cell-wide; the controller ejects the
// member and keeps the other floors flowing. Gate: adaptive >= 1.3x static
// UL in the degraded phases. Controller decision latency is traced through
// the obs layer (ctrl.decide spans) and reported from the ctrlstats
// watermarks. Results land in BENCH_ctrl_adapt.json.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/ctrl_stats.h"
#include "net/fault.h"
#include "obs/export.h"
#include "obs/obs.h"

namespace rb {
namespace {

constexpr int kFloors = 3;
constexpr int kSettleSlots = 200;
constexpr int kMeasureSlots = 300;

struct PhasePlan {
  const char* label;
  FaultPlan ul;  // applied to floor 0's uplink at the phase boundary
};

std::vector<PhasePlan> phases() {
  PhasePlan healthy{"healthy", {}};

  PhasePlan lossy{"lossy", {}};
  lossy.ul.loss = 0.03;        // past loss_reduce (1.5%): width rung
  lossy.ul.jitter_ns = 12'000; // under the 25us ejection threshold
  lossy.ul.seed = 0xc1;

  PhasePlan collapsed{"collapsed", {}};
  collapsed.ul.delay_ns = 40'000;  // every packet past the 30us DU budget
  collapsed.ul.jitter_ns = 25'000;
  collapsed.ul.seed = 0xc2;

  PhasePlan healed{"healed", {}};
  return {healthy, lossy, collapsed, healed};
}

struct Result {
  std::vector<double> ul_mbps;  // per phase, summed over UEs
  std::uint64_t actions = 0;
  std::string final_dump;
};

Result run(bool adaptive) {
  Deployment d;
  CellConfig c = bench::cell_cfg(MHz(100), bench::kBand78Center, 1);
  auto du = d.add_du(c, srsran_profile(), 0);
  std::vector<Deployment::RuHandle> rus;
  std::vector<Deployment::RuHandle*> ptrs;
  for (int f = 0; f < kFloors; ++f)
    rus.push_back(d.add_ru(
        bench::ru_site(d.plan.ru_position(f, 1), 4, MHz(100), c.center_freq),
        std::uint8_t(f), du.du->fh()));
  for (auto& r : rus) ptrs.push_back(&r);
  auto& rt = d.add_das(du, ptrs, DriverKind::Dpdk, 2);
  std::vector<UeId> ues;
  for (int f = 0; f < kFloors; ++f)
    ues.push_back(d.add_ue(d.plan.near_ru(f, 1, 4.0), &du, 150.0, 15.0));
  if (!d.attach_all(600)) {
    std::fprintf(stderr, "attach failed\n");
    std::exit(2);
  }

  auto& link = d.add_fault(*rus[0].port, FaultPlan{}, FaultPlan{}, "floor0");
  ctrl::AdaptationController* c0 = nullptr;
  if (adaptive) {
    c0 = &d.add_controller();
    d.ctrl_watch(*c0, link, rt, rus[0]);
  }

  Result res;
  for (const PhasePlan& ph : phases()) {
    link.set_plan_ab(ph.ul);
    d.engine.run_slots(kSettleSlots);  // EWMA convergence + hold + dwell
    d.measure(kMeasureSlots);
    double ul = 0;
    for (UeId ue : ues) ul += d.ul_mbps(ue);
    res.ul_mbps.push_back(ul);
    bench::row("  %-10s %-9s ul=%7.2f Mbps%s%s", adaptive ? "adaptive" : "static",
               ph.label, ul,
               c0 && c0->mode(0) == ctrl::AdaptationController::LinkMode::Ejected
                   ? "  [floor0 ejected]"
                   : "",
               c0 && c0->mode(0) ==
                       ctrl::AdaptationController::LinkMode::WidthReduced
                   ? "  [floor0 width-reduced]"
                   : "");
  }
  if (c0) {
    res.actions = c0->actions_applied();
    res.final_dump = c0->dump();
  }
  return res;
}

}  // namespace
}  // namespace rb

int main() {
  using namespace rb;

  bench::header("Closed-loop fronthaul adaptation: static vs controller",
                "ISSUE 6 bench_ctrl_adapt (src/ctrl)");
  bench::row("%d-floor DAS cell; floor 0 uplink degrades in phases "
             "(%d settle + %d measured slots each)",
             kFloors, kSettleSlots, kMeasureSlots);
  bench::row("");

  const Result st = run(/*adaptive=*/false);
  bench::row("");

  // Trace the adaptive run: ctrl.decide spans feed the per-track latency
  // histogram, so decision latency is queryable from the obs exporters.
  obs::Collector::instance().start();
  const Result ad = run(/*adaptive=*/true);
  obs::Collector::instance().stop();
  const std::string prom = obs::prometheus_text(obs::Collector::instance());
  const bool traced = prom.find("ctrl") != std::string::npos;

  const auto decisions = ctrlstats::decisions_total().load();
  const double mean_ns =
      decisions ? double(ctrlstats::decision_ns_sum().load()) / double(decisions)
                : 0.0;
  const auto hwm_ns = ctrlstats::decision_ns_hwm().load();

  bench::row("");
  bench::row("%-10s %10s %10s %10s %10s", "run", "healthy", "lossy",
             "collapsed", "healed");
  const auto line = [](const char* label, const Result& r) {
    bench::row("%-10s %10.2f %10.2f %10.2f %10.2f", label, r.ul_mbps[0],
               r.ul_mbps[1], r.ul_mbps[2], r.ul_mbps[3]);
  };
  line("static", st);
  line("adaptive", ad);

  // Gate on the degraded phases combined: the collapsed phase is where
  // ejection pays; the lossy phase must at least not regress.
  const double st_deg = st.ul_mbps[1] + st.ul_mbps[2];
  const double ad_deg = ad.ul_mbps[1] + ad.ul_mbps[2];
  const double ratio = st_deg > 0 ? ad_deg / st_deg : 99.0;
  const bool gate = ad_deg >= 1.3 * st_deg && ad.ul_mbps[2] > 1.0;
  bench::row("");
  bench::row("degraded-phase UL: adaptive %.2f vs static %.2f Mbps "
             "(%.2fx, need >= 1.30x): %s",
             ad_deg, st_deg, ratio, gate ? "PASS" : "FAIL");
  bench::row("controller: %llu actions, %llu decisions, mean %.0f ns, "
             "hwm %llu ns, obs-traced: %s",
             static_cast<unsigned long long>(ad.actions),
             static_cast<unsigned long long>(decisions), mean_ns,
             static_cast<unsigned long long>(hwm_ns), traced ? "yes" : "NO");

  std::FILE* f = std::fopen("BENCH_ctrl_adapt.json", "w");
  if (f) {
    std::fprintf(f, "{\n  \"floors\": %d,\n  \"measure_slots\": %d,\n",
                 kFloors, kMeasureSlots);
    const char* names[] = {"healthy", "lossy", "collapsed", "healed"};
    for (int a = 0; a < 2; ++a) {
      const Result& r = a ? ad : st;
      std::fprintf(f, "  \"%s\": {", a ? "adaptive" : "static");
      for (int i = 0; i < 4; ++i)
        std::fprintf(f, "\"%s_ul_mbps\": %.2f%s", names[i], r.ul_mbps[i],
                     i < 3 ? ", " : "");
      std::fprintf(f, "},\n");
    }
    std::fprintf(f,
                 "  \"degraded_ratio\": %.3f,\n  \"actions\": %llu,\n"
                 "  \"decisions\": %llu,\n  \"decision_mean_ns\": %.0f,\n"
                 "  \"decision_hwm_ns\": %llu,\n  \"obs_traced\": %s,\n"
                 "  \"gate_1p3x\": %s\n}\n",
                 ratio, static_cast<unsigned long long>(ad.actions),
                 static_cast<unsigned long long>(decisions), mean_ns,
                 static_cast<unsigned long long>(hwm_ns),
                 traced ? "true" : "false", gate ? "true" : "false");
    std::fclose(f);
    bench::row("wrote BENCH_ctrl_adapt.json");
  }
  return gate ? 0 : 1;
}
