// Figure 10c: average PRB utilization per second estimated by the
// RANBooster monitoring middlebox vs the MAC-log ground truth, for offered
// loads from 0 to 700 Mbps (DL) / 0 to 70 Mbps (UL).
#include "bench_util.h"

#include "mb/prbmon.h"

namespace rb::bench {
namespace {

struct MonRig {
  Deployment d;
  Deployment::DuHandle du;
  PrbMonitorMiddlebox* mon = nullptr;
  UeId ue = -1;

  MonRig() {
    du = d.add_du(cell_cfg(MHz(100), kBand78Center, 1), srsran_profile(), 0);
    auto ru = d.add_ru(ru_site(d.plan.ru_position(0, 1), 4, MHz(100),
                               kBand78Center), 0, du.du->fh());
    auto& rt = d.add_prbmon(du, ru);
    mon = dynamic_cast<PrbMonitorMiddlebox*>(&rt.app());
    ue = d.add_ue(d.plan.near_ru(0, 1, 5.0), &du, 0, 0);
    d.attach_all(600);
  }

  void run(double dl_mbps, double ul_mbps, double* est_dl, double* truth_dl,
           double* est_ul, double* truth_ul) {
    d.traffic.set_flow(*du.du, ue, dl_mbps, ul_mbps);
    d.engine.run_slots(60);
    mon->clear_estimates();
    du.du->scheduler().clear_utilization_log();
    d.engine.run_slots(2000);  // one second

    double e_dl = 0, e_ul = 0;
    int nd = 0, nu = 0;
    for (const auto& e : mon->estimates()) {
      if (e.dl_symbols) { e_dl += e.dl_util; ++nd; }
      if (e.ul_symbols) { e_ul += e.ul_util; ++nu; }
    }
    double t_dl = 0, t_ul = 0;
    int td = 0, tu = 0;
    for (const auto& s : du.du->scheduler().utilization_log()) {
      if (s.dl_slot) { t_dl += double(s.dl_prbs) / s.total_prbs; ++td; }
      if (s.ul_slot) { t_ul += double(s.ul_prbs) / s.total_prbs; ++tu; }
    }
    *est_dl = nd ? 100.0 * e_dl / nd : 0;
    *est_ul = nu ? 100.0 * e_ul / nu : 0;
    *truth_dl = td ? 100.0 * t_dl / td : 0;
    *truth_ul = tu ? 100.0 * t_ul / tu : 0;
  }
};

}  // namespace
}  // namespace rb::bench

int main() {
  using namespace rb::bench;
  header("Figure 10c - real-time PRB utilization: estimate vs ground truth",
         "SIGCOMM'25 RANBooster section 6.2.4, Figure 10c / Algorithm 1");
  row("%10s | %14s %14s | %14s %14s", "load Mbps", "DL est %", "DL truth %",
      "UL est %", "UL truth %");
  MonRig rig;
  for (double mbps : {0.0, 100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0}) {
    double ed, td, eu, tu;
    rig.run(mbps, mbps / 10.0, &ed, &td, &eu, &tu);
    row("%10.0f | %14.1f %14.1f | %14.1f %14.1f", mbps, ed, td, eu, tu);
  }
  row("paper shape: estimate tracks ground truth across all loads");
  return 0;
}
