// Figure 15b: per-packet processing latency of the DPDK DAS middlebox by
// traffic type (DL C-plane, DL U-plane, UL U-plane) for 2/3/4 RUs.
//
// Two views are reported:
//  * the calibrated cost model the deadline logic runs on (comparable to
//    the paper's FlexRAN-grade testbed: DL < 300 ns; UL bimodal with
//    merges at 4-6 us growing with the RU count), and
//  * real wall-clock timings of this library's scalar BFP merge kernel,
//    for honesty about the reference implementation's own speed.
#include <algorithm>
#include <chrono>

#include "bench_util.h"

#include "iq/prb.h"

namespace rb::bench {
namespace {

struct Dist {
  std::vector<double> v;
  void add(double x) { v.push_back(x); }
  double pct(double p) {
    if (v.empty()) return 0;
    std::sort(v.begin(), v.end());
    const std::size_t i =
        std::min(v.size() - 1, std::size_t(p * double(v.size())));
    return v[i];
  }
};

void run(int n_rus, Dist* dl_c, Dist* dl_u, Dist* ul_u) {
  Deployment d;
  auto du = d.add_du(cell_cfg(MHz(100), kBand78Center, 1), srsran_profile(), 0);
  std::vector<Deployment::RuHandle> rus;
  std::vector<Deployment::RuHandle*> ptrs;
  for (int i = 0; i < n_rus; ++i)
    rus.push_back(d.add_ru(
        ru_site(d.plan.near_ru(0, 1, i * 3.0), 4, MHz(100), kBand78Center),
        std::uint8_t(i), du.du->fh()));
  for (auto& r : rus) ptrs.push_back(&r);
  auto& rt = d.add_das(du, ptrs, DriverKind::Dpdk, 2);
  rt.set_cost_sampler([&](const FhFrame* f, double cost_ns) {
    if (!f) return;
    if (f->is_cplane()) {
      if (f->direction() == Direction::Downlink) dl_c->add(cost_ns);
    } else if (f->direction() == Direction::Downlink) {
      dl_u->add(cost_ns);
    } else {
      ul_u->add(cost_ns);
    }
  });
  d.add_ue(d.plan.near_ru(0, 1, 4.0), &du, 1200, 100);
  d.attach_all(600);
  d.measure(200);
}

/// Real wall-clock timing of the scalar merge kernel at 273 PRBs.
double real_merge_us(int n_rus) {
  const CompConfig cfg{CompMethod::BlockFloatingPoint, 9};
  const int n_prb = 273;
  std::vector<IqSample> samples(std::size_t(n_prb) * kScPerPrb);
  std::uint32_t rng = 7;
  for (auto& s : samples) {
    rng = rng * 1664525u + 1013904223u;
    s.i = std::int16_t(rng >> 18);
    rng = rng * 1664525u + 1013904223u;
    s.q = std::int16_t(rng >> 18);
  }
  std::vector<std::uint8_t> comp(cfg.prb_bytes() * std::size_t(n_prb));
  compress_prbs(IqConstSpan(samples.data(), samples.size()), cfg, comp);
  std::vector<std::span<const std::uint8_t>> srcs;
  srcs.assign(std::size_t(n_rus), std::span<const std::uint8_t>(comp));
  std::vector<std::uint8_t> dst(comp.size());
  PrbScratch scratch;
  const int iters = 50;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i)
    merge_compressed(
        std::span<const std::span<const std::uint8_t>>(srcs.data(),
                                                       srcs.size()),
        n_prb, cfg, dst, scratch);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count() / iters;
}

}  // namespace
}  // namespace rb::bench

int main() {
  using namespace rb::bench;
  header("Figure 15b - per-packet DAS processing latency by traffic type",
         "SIGCOMM'25 RANBooster section 6.4.1, Figure 15b");
  row("%-6s %-14s %10s %10s %10s", "RUs", "traffic type", "p50 (us)",
      "p75 (us)", "p99 (us)");
  for (int n : {2, 3, 4}) {
    Dist dl_c, dl_u, ul_u;
    run(n, &dl_c, &dl_u, &ul_u);
    // DL handlers replicate to all N RUs in one invocation; the paper
    // plots per-packet cost, so DL is reported per forwarded replica.
    const double dn = double(n);
    row("%-6d %-14s %10.3f %10.3f %10.3f", n, "DL C-plane",
        dl_c.pct(0.50) / 1e3 / dn, dl_c.pct(0.75) / 1e3 / dn,
        dl_c.pct(0.99) / 1e3 / dn);
    row("%-6d %-14s %10.3f %10.3f %10.3f", n, "DL U-plane",
        dl_u.pct(0.50) / 1e3 / dn, dl_u.pct(0.75) / 1e3 / dn,
        dl_u.pct(0.99) / 1e3 / dn);
    row("%-6d %-14s %10.3f %10.3f %10.3f", n, "UL U-plane",
        ul_u.pct(0.50) / 1e3, ul_u.pct(0.75) / 1e3, ul_u.pct(0.99) / 1e3);
  }
  row("paper shape: DL < 0.3 us; UL bimodal - ~75%% cheap cache ops, the "
      "rest 4-6 us merges growing with the RU count");
  row("");
  row("real scalar BFP merge kernel on this machine (273 PRBs, W=9):");
  for (int n : {2, 3, 4, 5})
    row("  %d RUs: %8.1f us per merge", n, real_merge_us(n));
  row("(the testbed's AVX-512 FlexRAN-grade kernels are ~20-30x faster; "
      "the cost model above is calibrated to them)");
  return 0;
}
