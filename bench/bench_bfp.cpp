// Microbenchmark: BFP codec throughput (the per-PRB kernels every A4
// payload action is built on), across mantissa widths and PRB counts.
#include <benchmark/benchmark.h>

#include "iq/prb.h"

namespace rb {
namespace {

std::vector<IqSample> make_samples(int n_prb, std::uint32_t seed) {
  std::vector<IqSample> v(std::size_t(n_prb) * kScPerPrb);
  std::uint32_t rng = seed;
  for (auto& s : v) {
    rng = rng * 1664525u + 1013904223u;
    s.i = std::int16_t(rng >> 18);
    rng = rng * 1664525u + 1013904223u;
    s.q = std::int16_t(rng >> 18);
  }
  return v;
}

void BM_BfpCompress(benchmark::State& state) {
  const int n_prb = int(state.range(0));
  const int width = int(state.range(1));
  const CompConfig cfg{CompMethod::BlockFloatingPoint, width};
  auto samples = make_samples(n_prb, 1);
  std::vector<std::uint8_t> out(cfg.prb_bytes() * std::size_t(n_prb));
  for (auto _ : state) {
    auto r = compress_prbs(IqConstSpan(samples.data(), samples.size()), cfg,
                           out);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n_prb);
}
BENCHMARK(BM_BfpCompress)
    ->Args({106, 9})
    ->Args({273, 9})
    ->Args({273, 14});

void BM_BfpDecompress(benchmark::State& state) {
  const int n_prb = int(state.range(0));
  const int width = int(state.range(1));
  const CompConfig cfg{CompMethod::BlockFloatingPoint, width};
  auto samples = make_samples(n_prb, 2);
  std::vector<std::uint8_t> comp(cfg.prb_bytes() * std::size_t(n_prb));
  compress_prbs(IqConstSpan(samples.data(), samples.size()), cfg, comp);
  std::vector<IqSample> out(samples.size());
  for (auto _ : state) {
    auto r = decompress_prbs(comp, n_prb, cfg,
                             IqSpan(out.data(), out.size()));
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n_prb);
}
BENCHMARK(BM_BfpDecompress)
    ->Args({106, 9})
    ->Args({273, 9})
    ->Args({273, 14});

void BM_ExponentScan(benchmark::State& state) {
  // Algorithm 1's primitive: exponent read without decompression.
  const int n_prb = 273;
  const CompConfig cfg{CompMethod::BlockFloatingPoint, 9};
  auto samples = make_samples(n_prb, 3);
  std::vector<std::uint8_t> comp(cfg.prb_bytes() * std::size_t(n_prb));
  compress_prbs(IqConstSpan(samples.data(), samples.size()), cfg, comp);
  for (auto _ : state) {
    int hot = 0;
    for (int k = 0; k < n_prb; ++k)
      hot += bfp_wire_exponent(
                 std::span(comp).subspan(std::size_t(k) * cfg.prb_bytes())) > 2;
    benchmark::DoNotOptimize(hot);
  }
  state.SetItemsProcessed(state.iterations() * n_prb);
}
BENCHMARK(BM_ExponentScan);

void BM_MergePayloads(benchmark::State& state) {
  // The DAS uplink combine at 273 PRBs for N RUs.
  const int n_rus = int(state.range(0));
  const int n_prb = 273;
  const CompConfig cfg{CompMethod::BlockFloatingPoint, 9};
  auto samples = make_samples(n_prb, 4);
  std::vector<std::uint8_t> comp(cfg.prb_bytes() * std::size_t(n_prb));
  compress_prbs(IqConstSpan(samples.data(), samples.size()), cfg, comp);
  std::vector<std::span<const std::uint8_t>> srcs;
  srcs.assign(std::size_t(n_rus), std::span<const std::uint8_t>(comp));
  std::vector<std::uint8_t> dst(comp.size());
  PrbScratch scratch;
  for (auto _ : state) {
    auto r = merge_compressed(
        std::span<const std::span<const std::uint8_t>>(srcs.data(),
                                                       srcs.size()),
        n_prb, cfg, dst, scratch);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n_prb);
}
BENCHMARK(BM_MergePayloads)->Arg(2)->Arg(4)->Arg(5);

}  // namespace
}  // namespace rb

BENCHMARK_MAIN();
