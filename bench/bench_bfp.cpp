// Microbenchmark: BFP codec throughput (the per-PRB kernels every A4
// payload action is built on), across mantissa widths and PRB counts.
//
// Besides the google-benchmark micro suite (which runs on the default
// dispatched tier), a per-tier gate compares every available SIMD tier
// against scalar at the wire width (9) and writes BENCH_iq_kernels.json;
// the process exits non-zero when the best SIMD tier is under the
// required speedup - CI runs this as the perf-smoke check.
//
//   bench_bfp [--json=PATH] [--gate-only] [google-benchmark flags]
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "iq/kernels/kernels.h"
#include "iq/prb.h"

namespace rb {
namespace {

std::vector<IqSample> make_samples(int n_prb, std::uint32_t seed) {
  std::vector<IqSample> v(std::size_t(n_prb) * kScPerPrb);
  std::uint32_t rng = seed;
  for (auto& s : v) {
    rng = rng * 1664525u + 1013904223u;
    s.i = std::int16_t(rng >> 18);
    rng = rng * 1664525u + 1013904223u;
    s.q = std::int16_t(rng >> 18);
  }
  return v;
}

void BM_BfpCompress(benchmark::State& state) {
  const int n_prb = int(state.range(0));
  const int width = int(state.range(1));
  const CompConfig cfg{CompMethod::BlockFloatingPoint, width};
  auto samples = make_samples(n_prb, 1);
  std::vector<std::uint8_t> out(cfg.prb_bytes() * std::size_t(n_prb));
  for (auto _ : state) {
    auto r = compress_prbs(IqConstSpan(samples.data(), samples.size()), cfg,
                           out);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n_prb);
}
BENCHMARK(BM_BfpCompress)
    ->Args({106, 9})
    ->Args({273, 9})
    ->Args({273, 14});

void BM_BfpDecompress(benchmark::State& state) {
  const int n_prb = int(state.range(0));
  const int width = int(state.range(1));
  const CompConfig cfg{CompMethod::BlockFloatingPoint, width};
  auto samples = make_samples(n_prb, 2);
  std::vector<std::uint8_t> comp(cfg.prb_bytes() * std::size_t(n_prb));
  compress_prbs(IqConstSpan(samples.data(), samples.size()), cfg, comp);
  std::vector<IqSample> out(samples.size());
  for (auto _ : state) {
    auto r = decompress_prbs(comp, n_prb, cfg,
                             IqSpan(out.data(), out.size()));
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n_prb);
}
BENCHMARK(BM_BfpDecompress)
    ->Args({106, 9})
    ->Args({273, 9})
    ->Args({273, 14});

void BM_ExponentScan(benchmark::State& state) {
  // Algorithm 1's primitive: exponent read without decompression.
  const int n_prb = 273;
  const CompConfig cfg{CompMethod::BlockFloatingPoint, 9};
  auto samples = make_samples(n_prb, 3);
  std::vector<std::uint8_t> comp(cfg.prb_bytes() * std::size_t(n_prb));
  compress_prbs(IqConstSpan(samples.data(), samples.size()), cfg, comp);
  for (auto _ : state) {
    int hot = 0;
    for (int k = 0; k < n_prb; ++k)
      hot += bfp_wire_exponent(
                 std::span(comp).subspan(std::size_t(k) * cfg.prb_bytes())) > 2;
    benchmark::DoNotOptimize(hot);
  }
  state.SetItemsProcessed(state.iterations() * n_prb);
}
BENCHMARK(BM_ExponentScan);

void BM_MergePayloads(benchmark::State& state) {
  // The DAS uplink combine at 273 PRBs for N RUs.
  const int n_rus = int(state.range(0));
  const int n_prb = 273;
  const CompConfig cfg{CompMethod::BlockFloatingPoint, 9};
  auto samples = make_samples(n_prb, 4);
  std::vector<std::uint8_t> comp(cfg.prb_bytes() * std::size_t(n_prb));
  compress_prbs(IqConstSpan(samples.data(), samples.size()), cfg, comp);
  std::vector<std::span<const std::uint8_t>> srcs;
  srcs.assign(std::size_t(n_rus), std::span<const std::uint8_t>(comp));
  std::vector<std::uint8_t> dst(comp.size());
  PrbScratch scratch;
  for (auto _ : state) {
    auto r = merge_compressed(
        std::span<const std::span<const std::uint8_t>>(srcs.data(),
                                                       srcs.size()),
        n_prb, cfg, dst, scratch);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n_prb);
}
BENCHMARK(BM_MergePayloads)->Arg(2)->Arg(4)->Arg(5);

// ----------------------------------------------------------------------
// Per-tier gate
// ----------------------------------------------------------------------

/// Best-of-three wall seconds per call, auto-calibrated to >= 20 ms runs.
template <typename F>
double seconds_per_call(F&& f) {
  using clock = std::chrono::steady_clock;
  long iters = 1;
  for (;;) {
    auto t0 = clock::now();
    for (long k = 0; k < iters; ++k) f();
    double best = std::chrono::duration<double>(clock::now() - t0).count();
    if (best < 0.02) {
      iters *= 4;
      continue;
    }
    for (int rep = 0; rep < 2; ++rep) {
      auto t1 = clock::now();
      for (long k = 0; k < iters; ++k) f();
      const double dt =
          std::chrono::duration<double>(clock::now() - t1).count();
      if (dt < best) best = dt;
    }
    return best / double(iters);
  }
}

struct TierRow {
  KernelTier tier;
  int width;
  double comp_prb_per_s;
  double decomp_prb_per_s;
};

constexpr int kGatePrbs = 273;   // 100 MHz carrier
constexpr int kGateWidth = 9;    // the wire width
constexpr double kGateSpeedup = 1.5;

TierRow measure_tier(KernelTier tier, int width) {
  const CompConfig cfg{CompMethod::BlockFloatingPoint, width};
  auto samples = make_samples(kGatePrbs, 11);
  std::vector<std::uint8_t> comp(cfg.prb_bytes() * std::size_t(kGatePrbs));
  std::vector<IqSample> out(samples.size());
  const double comp_s = seconds_per_call([&] {
    auto r =
        compress_prbs(IqConstSpan(samples.data(), samples.size()), cfg, comp);
    benchmark::DoNotOptimize(r);
  });
  const double decomp_s = seconds_per_call([&] {
    auto r =
        decompress_prbs(comp, kGatePrbs, cfg, IqSpan(out.data(), out.size()));
    benchmark::DoNotOptimize(r);
  });
  return TierRow{tier, width, double(kGatePrbs) / comp_s,
                 double(kGatePrbs) / decomp_s};
}

int run_kernel_gate(const std::string& json_path) {
  const KernelTier initial = iq_kernel_tier();
  std::vector<TierRow> rows;
  std::vector<KernelTier> tiers;
  for (std::size_t t = 0; t < kKernelTierCount; ++t)
    if (iq_tier_available(KernelTier(t))) tiers.push_back(KernelTier(t));

  std::printf("\nper-kernel-tier codec throughput (%d PRBs)\n", kGatePrbs);
  std::printf("%-8s %6s | %16s %16s\n", "tier", "width", "compress PRB/s",
              "decompress PRB/s");
  for (KernelTier t : tiers) {
    iq_force_tier(t);
    for (int width : {kGateWidth, 14}) {
      rows.push_back(measure_tier(t, width));
      const TierRow& r = rows.back();
      std::printf("%-8s %6d | %16.0f %16.0f\n", kernel_tier_name(t), width,
                  r.comp_prb_per_s, r.decomp_prb_per_s);
    }
  }
  iq_force_tier(initial);

  // Gate: best SIMD tier vs scalar at the wire width, both directions.
  double scal_c = 0, scal_d = 0, simd_c = 0, simd_d = 0;
  for (const TierRow& r : rows) {
    if (r.width != kGateWidth) continue;
    if (r.tier == KernelTier::Scalar) {
      scal_c = r.comp_prb_per_s;
      scal_d = r.decomp_prb_per_s;
    } else {
      if (r.comp_prb_per_s > simd_c) simd_c = r.comp_prb_per_s;
      if (r.decomp_prb_per_s > simd_d) simd_d = r.decomp_prb_per_s;
    }
  }
  const bool have_simd = simd_c > 0;
  const double su_c = have_simd && scal_c > 0 ? simd_c / scal_c : 0;
  const double su_d = have_simd && scal_d > 0 ? simd_d / scal_d : 0;
  const bool pass =
      !have_simd || (su_c >= kGateSpeedup && su_d >= kGateSpeedup);

  if (FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"n_prb\": %d,\n  \"default_tier\": \"%s\",\n",
                 kGatePrbs, kernel_tier_name(initial));
    std::fprintf(f, "  \"results\": [\n");
    for (std::size_t k = 0; k < rows.size(); ++k) {
      const TierRow& r = rows[k];
      std::fprintf(f,
                   "    {\"tier\": \"%s\", \"width\": %d, "
                   "\"compress_prb_per_s\": %.0f, "
                   "\"decompress_prb_per_s\": %.0f}%s\n",
                   kernel_tier_name(r.tier), r.width, r.comp_prb_per_s,
                   r.decomp_prb_per_s, k + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"gate\": {\"width\": %d, \"required_speedup\": "
                 "%.2f, \"skipped\": %s, \"compress_speedup\": %.3f, "
                 "\"decompress_speedup\": %.3f, \"pass\": %s}\n}\n",
                 kGateWidth, kGateSpeedup, have_simd ? "false" : "true",
                 su_c, su_d, pass ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }

  if (!have_simd) {
    std::printf("gate: no SIMD tier on this host - skipped\n");
    return 0;
  }
  std::printf(
      "gate (width %d): compress %.2fx, decompress %.2fx vs scalar "
      "(need >= %.2fx): %s\n",
      kGateWidth, su_c, su_d, kGateSpeedup, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace rb

int main(int argc, char** argv) {
  std::string json_path = "BENCH_iq_kernels.json";
  bool gate_only = false;
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int k = 1; k < argc; ++k) {
    if (std::strncmp(argv[k], "--json=", 7) == 0) {
      json_path = argv[k] + 7;
    } else if (std::strcmp(argv[k], "--gate-only") == 0) {
      gate_only = true;
    } else {
      args.push_back(argv[k]);
    }
  }
  int bargc = int(args.size());
  benchmark::Initialize(&bargc, args.data());
  if (!gate_only) benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return rb::run_kernel_gate(json_path);
}
