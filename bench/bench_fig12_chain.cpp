// Figure 12: chaining the RU-sharing and DAS middleboxes to host two
// mobile network operators (40 MHz each) over the same four shared
// 100 MHz RUs with seamless floor coverage (~350 Mbps per MNO UE).
//
// Topology (hand-wired to show the chain):
//   DU_A --.
//           rushare --- das --- switch --- RU1..RU4
//   DU_B --'
#include <chrono>
#include <cstdio>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "iq/kernels/kernels.h"

namespace rb::bench {
namespace {

struct ChainRig {
  Deployment d;
  Deployment::DuHandle du_a, du_b;
  std::vector<Deployment::RuHandle> rus;
  MiddleboxRuntime* rushare_rt = nullptr;
  MiddleboxRuntime* das_rt = nullptr;
  UeId ue_a = -1, ue_b = -1;

  ChainRig() {
    // Two 40 MHz MNO cells aligned inside the shared 100 MHz grid.
    const Hertz ca =
        aligned_du_center_frequency(kBand78Center, 273, 106, 10, Scs::kHz30);
    const Hertz cb =
        aligned_du_center_frequency(kBand78Center, 273, 106, 150, Scs::kHz30);
    du_a = d.add_du(cell_cfg(MHz(40), ca, 1), srsran_profile(), 0);
    du_b = d.add_du(cell_cfg(MHz(40), cb, 2), srsran_profile(), 1);
    for (int i = 0; i < 4; ++i)
      rus.push_back(d.add_ru(
          ru_site(d.plan.ru_position(0, i), 4, MHz(100), kBand78Center),
          std::uint8_t(i), du_a.du->fh()));

    // --- RU sharing stage: DU-facing ---
    RuShareConfig scfg;
    scfg.ru_mac = MacAddr::mb(1);  // the DAS stage impersonates the RU
    scfg.ru_n_prb = 273;
    scfg.ru_center_freq = kBand78Center;
    for (auto* duh : {&du_a, &du_b}) {
      ShareDu sd;
      sd.mac = duh->du->config().du_mac;
      sd.du_id = duh->du->config().du_id;
      sd.n_prb = duh->du->config().cell.n_prb();
      sd.center_freq = duh->du->config().cell.center_freq;
      sd.prb_offset = Deployment::prb_offset_in_ru(
          duh->du->config().cell, d.air.ru(rus[0].id));
      scfg.dus.push_back(sd);
    }
    d.apps.push_back(std::make_unique<RuShareMiddlebox>(scfg));
    MiddleboxRuntime::Config rc;
    rc.name = "rushare";
    rc.fh = du_a.du->fh();
    rc.fh.carrier_prbs = 273;
    d.runtimes.push_back(
        std::make_unique<MiddleboxRuntime>(rc, *d.apps.back()));
    rushare_rt = d.runtimes.back().get();
    Port& sh_south = d.new_port("rushare.south");
    rushare_rt->add_port("south", sh_south);
    Port& sh_na = d.new_port("rushare.north0");
    rushare_rt->add_port("north0", sh_na, du_a.du->fh());
    Port& sh_nb = d.new_port("rushare.north1");
    rushare_rt->add_port("north1", sh_nb, du_b.du->fh());
    Port::connect(*du_a.port, sh_na, 1'000);
    Port::connect(*du_b.port, sh_nb, 1'000);

    // --- DAS stage: distributes the shared-RU stream over four RUs ---
    DasConfig dcfg;
    dcfg.du_mac = du_a.du->config().du_mac;  // UL heads back to the chain
    for (auto& r : rus) dcfg.ru_macs.push_back(r.mac);
    d.apps.push_back(std::make_unique<DasMiddlebox>(dcfg));
    MiddleboxRuntime::Config dc;
    dc.name = "das";
    dc.fh = du_a.du->fh();
    dc.fh.carrier_prbs = 273;
    d.runtimes.push_back(
        std::make_unique<MiddleboxRuntime>(dc, *d.apps.back()));
    das_rt = d.runtimes.back().get();
    Port& das_north = d.new_port("das.north");
    Port& das_south = d.new_port("das.south");
    das_rt->add_port("north", das_north);
    das_rt->add_port("south", das_south);
    // Inter-stage hop (the SR-IOV embedded-switch crossing, Figure 8).
    Port::connect(sh_south, das_north, ChainBuilder::kHopLatencyNs);

    EmbeddedSwitch& sw = d.new_switch("fabric");
    Port& sw_mb = sw.add_port("das");
    Port::connect(das_south, sw_mb, 500);
    sw.add_static_entry(dcfg.du_mac, sw_mb);
    sw.add_static_entry(du_b.du->config().du_mac, sw_mb);
    for (auto& r : rus) {
      Port& sw_ru = sw.add_port("ru");
      Port::connect(*r.port, sw_ru, 500);
      sw.add_static_entry(r.mac, sw_ru);
    }
    d.engine.add_middlebox(*rushare_rt);
    d.engine.add_middlebox(*das_rt);

    // Air topology: both cells radiate from all four RUs at their slices.
    for (auto* duh : {&du_a, &du_b}) {
      const int off = Deployment::prb_offset_in_ru(duh->du->config().cell,
                                                   d.air.ru(rus[0].id));
      for (auto& r : rus) d.air.assign_ru(duh->cell, r.id, off);
    }

    ue_a = d.add_ue(d.plan.near_ru(0, 0, 2.0), &du_a, 500, 50, 1);
    ue_b = d.add_ue(d.plan.near_ru(0, 3, 2.0), &du_b, 500, 50, 2);
  }
};

}  // namespace
}  // namespace rb::bench

int main() {
  using namespace rb::bench;
  header("Figure 12 - RU sharing + DAS chain: two MNOs, seamless coverage",
         "SIGCOMM'25 RANBooster section 6.3.2, Figure 12");
  ChainRig rig;
  const bool attached = rig.d.attach_all(900);
  row("both MNO UEs attached through the chain: %s",
      attached ? "yes" : "NO");
  // Walk both UEs across the floor, measuring at each point.
  const auto route = rig.d.plan.walk_route(0, 8, 2);
  double mean_a = 0, mean_b = 0;
  row("%8s %8s | %12s %12s", "x (m)", "y (m)", "MNO-A Mbps", "MNO-B Mbps");
  for (const auto& pos : route) {
    rig.d.air.set_ue_position(rig.ue_a, pos);
    rb::Position pb = pos;
    pb.y = rig.d.plan.depth_m - pos.y;
    rig.d.air.set_ue_position(rig.ue_b, pb);
    rig.d.engine.run_slots(80);
    rig.d.measure(160);
    const double a = rig.d.dl_mbps(rig.ue_a);
    const double b = rig.d.dl_mbps(rig.ue_b);
    row("%8.1f %8.1f | %12.1f %12.1f", pos.x, pos.y, a, b);
    mean_a += a / double(route.size());
    mean_b += b / double(route.size());
  }
  row("mean across floor: MNO-A %.1f Mbps, MNO-B %.1f Mbps "
      "(paper: ~350 Mbps each)", mean_a, mean_b);
  row("chain stats: rushare muxed=%llu, das merges=%llu, pcie-style hops "
      "traversed by every frame",
      (unsigned long long)rig.rushare_rt->telemetry().counter(
          "rushare_dl_muxed"),
      (unsigned long long)rig.das_rt->telemetry().counter("das_merges"));

  // Per-kernel-tier chain throughput: the same loaded chain pumped under
  // each available IQ kernel tier (the A4 codec + combine dominate the
  // slot budget, so the dispatch tier shows up directly in wall time).
  const rb::KernelTier active = rb::iq_kernel_tier();
  row("iq kernel dispatch: active=%s", rb::kernel_tier_name(active));
  std::vector<std::pair<const char*, double>> tier_sps;
  for (std::size_t t = 0; t < rb::kKernelTierCount; ++t) {
    const auto tier = rb::KernelTier(t);
    if (!rb::iq_tier_available(tier)) continue;
    rb::iq_force_tier(tier);
    rig.d.engine.run_slots(20);  // warm the tier's code paths
    const auto t0 = std::chrono::steady_clock::now();
    rig.d.engine.run_slots(160);
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    row("  tier %-6s : %8.1f slots/s wall", rb::kernel_tier_name(tier),
        160.0 / dt);
    tier_sps.emplace_back(rb::kernel_tier_name(tier), 160.0 / dt);
  }
  rb::iq_force_tier(active);

  // CI artifact: chain slots/s per kernel tier plus coverage means. The
  // perf-smoke job diffs this against a committed pre-change baseline
  // (docs/EXPERIMENTS.md records the measured reference numbers).
  if (std::FILE* f = std::fopen("BENCH_fig12_chain.json", "w")) {
    std::fprintf(f, "{\n  \"slots_per_s\": {");
    bool first = true;
    for (const auto& [name, sps] : tier_sps) {
      std::fprintf(f, "%s\"%s\": %.1f", first ? "" : ", ", name, sps);
      first = false;
    }
    std::fprintf(f, "},\n");
    std::fprintf(f, "  \"active_tier\": \"%s\",\n",
                 rb::kernel_tier_name(active));
    std::fprintf(f, "  \"attached\": %s,\n", attached ? "true" : "false");
    std::fprintf(f,
                 "  \"mean_mbps\": {\"mno_a\": %.1f, \"mno_b\": %.1f}\n",
                 mean_a, mean_b);
    std::fprintf(f, "}\n");
    std::fclose(f);
    row("wrote BENCH_fig12_chain.json");
  }
  return 0;
}
