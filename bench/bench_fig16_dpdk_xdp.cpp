// Figure 16: CPU utilization of the DPDK vs XDP implementations of the
// DAS and dMIMO middleboxes at 40 MHz, under three cell conditions:
// idle (no UE attached), UE attached but idle, UE receiving full DL
// traffic. Also prints the Table 1 kernel/userspace placement.
#include "bench_util.h"

#include "mb/prbmon.h"

namespace rb::bench {
namespace {

enum class App { Das, Dmimo };

double cpu_util(App app, DriverKind driver, int condition) {
  Deployment d;
  const Hertz c40 = GHz(3) + MHz(430);
  auto du = d.add_du(cell_cfg(MHz(40), c40, 1), srsran_profile(), 0);
  std::vector<Deployment::RuHandle> rus;
  std::vector<Deployment::RuHandle*> ptrs;
  for (int i = 0; i < 2; ++i)
    rus.push_back(d.add_ru(
        ru_site(d.plan.ru_position(0, 1 + i), app == App::Das ? 4 : 2,
                MHz(40), c40),
        std::uint8_t(i), du.du->fh()));
  for (auto& r : rus) ptrs.push_back(&r);
  MiddleboxRuntime& rt = app == App::Das ? d.add_das(du, ptrs, driver)
                                         : d.add_dmimo(du, ptrs, driver);

  UeId ue = -1;
  if (condition >= 1) ue = d.add_ue(d.plan.near_ru(0, 1, 4.0), &du, 0, 0);
  if (condition >= 1) d.attach_all(600);
  if (condition == 1) {
    // Attached-idle cells still carry RRC keepalives / CSI reporting.
    d.traffic.set_flow(*du.du, ue, 2, 0.5);
    d.engine.run_slots(100);
  }
  if (condition == 2) {
    d.traffic.set_flow(*du.du, ue, 500, 40);
    d.engine.run_slots(100);
  }
  rt.reset_cpu(d.engine.elapsed_ns());
  d.engine.run_slots(400);
  return 100.0 * rt.cpu_utilization(d.engine.elapsed_ns());
}

}  // namespace
}  // namespace rb::bench

int main() {
  using namespace rb;
  using namespace rb::bench;
  header("Figure 16 - CPU utilization of DPDK vs XDP middleboxes (40 MHz)",
         "SIGCOMM'25 RANBooster section 6.4.2, Figure 16 + Table 1");
  const char* cond[3] = {"idle cell", "UE attached", "full traffic"};
  row("%-8s %-14s %10s %10s", "app", "condition", "DPDK %", "XDP %");
  for (App app : {App::Das, App::Dmimo}) {
    for (int c = 0; c < 3; ++c) {
      row("%-8s %-14s %10.1f %10.1f", app == App::Das ? "DAS" : "dMIMO",
          cond[c], cpu_util(app, DriverKind::Dpdk, c),
          cpu_util(app, DriverKind::Xdp, c));
    }
  }
  row("paper shape: DPDK pinned at 100%%; XDP scales with traffic; DAS "
      "~25-30%% above dMIMO under load (userspace IQ work + context "
      "switches vs in-kernel header remaps)");
  row("");
  row("Table 1 - XDP processing locus per application:");
  row("  DAS            : userspace (AF_XDP)  [IQ decompress + merge]");
  row("  dMIMO          : kernel              [eAxC header remap]");
  row("  RU sharing     : userspace (AF_XDP)  [PRB mux/demux]");
  row("  PRB monitoring : kernel              [BFP exponent scan]");
  return 0;
}
