// Hitless-operations bench (ISSUE 7): 100 live reconfigurations over a
// 2000-slot chaos-faulted soak, with a telemetry diff gate proving zero
// UL/DL loss attributable to reconfiguration, serial == parallel(4), and
// checkpoint/restore round-trip cost. Results land in BENCH_reconfig.json.
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/state_stats.h"
#include "sim/hitless.h"

namespace rb {
namespace {

constexpr int kFloors = 3;
constexpr int kSoakSlots = 2000;
constexpr int kReconfigs = 100;
constexpr std::uint64_t kSeed = 0x5eed1e55;

struct Rig {
  Deployment d;
  Deployment::DuHandle du;
  std::vector<Deployment::RuHandle> rus;
  MiddleboxRuntime* rt = nullptr;
  std::vector<UeId> ues;

  explicit Rig(const exec::ExecPolicy& policy) {
    d.engine.set_exec_policy(policy);
    du = d.add_du(bench::cell_cfg(MHz(100), bench::kBand78Center, 1),
                  srsran_profile(), 0);
    std::vector<Deployment::RuHandle*> ptrs;
    for (int f = 0; f < kFloors; ++f) {
      rus.push_back(d.add_ru(
          bench::ru_site(d.plan.ru_position(f, 1), 4, MHz(100),
                         bench::kBand78Center),
          std::uint8_t(f), du.du->fh()));
    }
    for (auto& r : rus) ptrs.push_back(&r);
    rt = &d.add_das(du, ptrs, DriverKind::Dpdk, 2);
    for (int f = 0; f < kFloors; ++f)
      ues.push_back(d.add_ue(d.plan.near_ru(f, 1, 5.0), &du, 150.0, 15.0));

    FaultPlan ul0;
    ul0.loss = 0.01;
    ul0.jitter_ns = 20000;
    ul0.seed = kSeed ^ 0xa1;
    FaultPlan dl0;
    dl0.delay_ns = 10000;
    dl0.seed = kSeed ^ 0xa2;
    d.add_fault(*rus[0].port, ul0, dl0);
    FaultPlan ul1;
    ul1.ge_enter_bad = 0.004;
    ul1.ge_exit_bad = 0.25;
    ul1.ge_loss_bad = 0.5;
    ul1.reorder = 0.01;
    ul1.seed = kSeed ^ 0xb1;
    FaultPlan dl1;
    dl1.duplicate = 0.02;
    dl1.corrupt = 0.01;
    dl1.seed = kSeed ^ 0xb2;
    d.add_fault(*rus[1].port, ul1, dl1);
  }
};

/// Determinism fingerprint: runtime counters + fault counters + UE bits.
std::string fingerprint(Rig& r) {
  std::ostringstream os;
  for (const auto& rt : r.d.runtimes)
    for (const auto& [k, v] : rt->telemetry().counters())
      os << k << "=" << v << "\n";
  os << r.d.fault_dump();
  for (UeId ue : r.ues)
    os << "ue" << ue << " dl=" << r.d.air.dl_bits(ue)
       << " ul=" << r.d.air.ul_bits(ue) << "\n";
  return os.str();
}

struct SoakResult {
  std::string fp;
  double dl_mbits = 0, ul_mbits = 0;
  std::uint64_t rx_dropped = 0;
  std::uint64_t stalls = 0;
  std::uint64_t applied = 0;
};

/// One 2000-slot chaos soak. With reconfig enabled, every 20th slot
/// barrier applies an eject+readmit pair on a rotating DAS member - a
/// net-no-op batch, so the run must be byte-identical to the plain soak:
/// any packet dropped, delayed or re-ordered by the act of reconfiguring
/// would show up in the fingerprint diff.
SoakResult soak(const exec::ExecPolicy& policy, bool reconfig) {
  Rig rig(policy);
  if (!rig.d.attach_all(600)) {
    std::fprintf(stderr, "attach failed\n");
    std::exit(2);
  }
  ReconfigManager mgr(rig.d);
  int batches = 0;
  for (int s = 0; s < kSoakSlots; s += 20) {
    if (reconfig && batches < kReconfigs) {
      ReconfigOp op;
      op.kind = ReconfigOp::Kind::DasSetMember;
      op.index = 0;
      op.mac = rig.rus[std::size_t(batches % kFloors)].mac;
      op.enable = false;
      mgr.queue(op);
      op.enable = true;
      mgr.queue(op);
      ++batches;
    }
    rig.d.engine.run_slots(20);
  }
  SoakResult res;
  res.fp = fingerprint(rig);
  for (UeId ue : rig.ues) {
    res.dl_mbits += double(rig.d.air.dl_bits(ue)) / 1e6;
    res.ul_mbits += double(rig.d.air.ul_bits(ue)) / 1e6;
  }
  for (const auto& p : rig.d.ports) res.rx_dropped += p->stats().rx_dropped;
  res.stalls = rig.rt->telemetry().counter("das_combiner_stalls");
  res.applied = mgr.applied();
  return res;
}

}  // namespace
}  // namespace rb

int main() {
  using namespace rb;
  bench::header("Hitless live reconfiguration: 100 reconfigs / 2000-slot "
                "chaos soak",
                "ISSUE 7 (robustness beyond the paper)");

  bench::row("%-26s %12s %12s %10s %8s %8s", "run", "dl_mbits", "ul_mbits",
             "reconfigs", "dropped", "stalls");
  const auto line = [](const char* label, const SoakResult& r) {
    bench::row("%-26s %12.2f %12.2f %10llu %8llu %8llu", label, r.dl_mbits,
               r.ul_mbits, static_cast<unsigned long long>(r.applied),
               static_cast<unsigned long long>(r.rx_dropped),
               static_cast<unsigned long long>(r.stalls));
  };

  const SoakResult base = soak(exec::ExecPolicy::serial(), false);
  line("serial baseline", base);
  const SoakResult rec = soak(exec::ExecPolicy::serial(), true);
  line("serial +100 reconfigs", rec);
  const SoakResult par = soak(exec::ExecPolicy::parallel(4), true);
  line("parallel(4) +100 reconfigs", par);

  // Gates. The fingerprint equality is the telemetry diff: every counter,
  // fault statistic and UE bit count identical means zero UL/DL loss
  // attributable to reconfiguration.
  const bool gate_diff = rec.fp == base.fp;
  const bool gate_par = par.fp == rec.fp;
  const bool gate_count = rec.applied == 2 * kReconfigs;
  const bool gate_clean = rec.rx_dropped == 0 && rec.stalls == 0;

  // Checkpoint/restore round-trip cost on the same rig shape.
  Rig ck(exec::ExecPolicy::serial());
  (void)ck.d.attach_all(600);
  ck.d.engine.run_slots(200);
  const auto blob = checkpoint(ck.d);
  Rig ck2(exec::ExecPolicy::serial());
  const RestoreResult rres = restore(ck2.d, blob);
  const bool gate_restore = rres.ok();

  const std::uint64_t wall_last = statestats::reconfig_wall_ns_last().load();
  const std::uint64_t wall_hwm = statestats::reconfig_wall_ns_hwm().load();

  bench::row("");
  bench::row("telemetry diff vs baseline: %s",
             gate_diff ? "IDENTICAL (zero loss from reconfig)" : "DIVERGED");
  bench::row("serial == parallel(4): %s", gate_par ? "yes" : "NO");
  bench::row("ops applied: %llu (want %d), dropped=%llu stalls=%llu: %s",
             static_cast<unsigned long long>(rec.applied), 2 * kReconfigs,
             static_cast<unsigned long long>(rec.rx_dropped),
             static_cast<unsigned long long>(rec.stalls),
             gate_count && gate_clean ? "PASS" : "FAIL");
  bench::row("barrier apply wall: last %llu ns, hwm %llu ns",
             static_cast<unsigned long long>(wall_last),
             static_cast<unsigned long long>(wall_hwm));
  bench::row("checkpoint: %zu bytes, restore: %s", blob.size(),
             gate_restore ? "ok" : state::error_name(rres.error));

  const bool gate = gate_diff && gate_par && gate_count && gate_clean &&
                    gate_restore;
  std::FILE* f = std::fopen("BENCH_reconfig.json", "w");
  if (f) {
    std::fprintf(
        f,
        "{\n  \"soak_slots\": %d,\n  \"reconfig_batches\": %d,\n"
        "  \"ops_applied\": %llu,\n  \"baseline_dl_mbits\": %.2f,\n"
        "  \"baseline_ul_mbits\": %.2f,\n  \"reconfig_dl_mbits\": %.2f,\n"
        "  \"reconfig_ul_mbits\": %.2f,\n  \"telemetry_identical\": %s,\n"
        "  \"serial_equals_parallel4\": %s,\n  \"rx_dropped\": %llu,\n"
        "  \"combiner_stalls\": %llu,\n  \"apply_wall_ns_hwm\": %llu,\n"
        "  \"checkpoint_bytes\": %zu,\n  \"restore_ok\": %s,\n"
        "  \"gate_zero_loss\": %s\n}\n",
        kSoakSlots, kReconfigs,
        static_cast<unsigned long long>(rec.applied), base.dl_mbits,
        base.ul_mbits, rec.dl_mbits, rec.ul_mbits,
        gate_diff ? "true" : "false", gate_par ? "true" : "false",
        static_cast<unsigned long long>(rec.rx_dropped),
        static_cast<unsigned long long>(rec.stalls),
        static_cast<unsigned long long>(wall_hwm), blob.size(),
        gate_restore ? "true" : "false", gate ? "true" : "false");
    std::fclose(f);
    bench::row("wrote BENCH_reconfig.json");
  }
  return gate ? 0 : 1;
}
