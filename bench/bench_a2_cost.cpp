// Appendix A.2: CapEx comparison of the commodity RANBooster deployment
// (Cambridge: 16 RUs over four floors) vs a conventional DAS quote.
#include "bench_util.h"

int main() {
  using namespace rb;
  using namespace rb::bench;
  header("Appendix A.2 - RANBooster cost benefits",
         "SIGCOMM'25 RANBooster Appendix A.2");
  CostModel cm;
  // The paper prices 15,403 sqft per floor x 5 floors (A.2) - the gross
  // floor area, larger than the RU-covered 50.9 m x 20.9 m core.
  const double sqft = 15'403.0 * 5;
  row("deployment area: %.0f sqft (paper: 77,015 sqft over 5 floors)", sqft);
  row("");
  row("RANBooster commodity BOM:");
  row("  %2d RUs @ $%.0f                 : $%8.0f", cm.n_rus, cm.ru_unit_usd,
      cm.n_rus * cm.ru_unit_usd);
  row("  cabling + building work       : $%8.0f",
      cm.cabling_and_building_usd);
  row("  fronthaul switch              : $%8.0f", cm.switch_usd);
  row("  PTP grandmaster               : $%8.0f", cm.grandmaster_usd);
  row("  %d NICs @ $%.0f                : $%8.0f", cm.n_nics, cm.nic_usd,
      cm.n_nics * cm.nic_usd);
  row("  %d middlebox CPU cores @ $%.0f : $%8.0f", cm.middlebox_cores,
      cm.middlebox_core_usd, cm.middlebox_cores * cm.middlebox_core_usd);
  row("  BOM total                     : $%8.0f  (paper: ~$60,000)",
      cm.ranbooster_bom_usd());
  row("  with %.0f%% vendor margin      : $%8.0f", 100.0 * cm.vendor_margin,
      cm.ranbooster_price_usd());
  row("");
  row("conventional DAS at $%.1f/sqft   : $%8.0f  (paper: ~$154,000)",
      cm.das_usd_per_sqft, cm.conventional_das_usd(sqft));
  row("");
  row("RANBooster saving: %.1f%%  (paper: 41%%)", cm.savings_pct(sqft));
  return 0;
}
