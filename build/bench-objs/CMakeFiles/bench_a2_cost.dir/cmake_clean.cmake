file(REMOVE_RECURSE
  "../bench/bench_a2_cost"
  "../bench/bench_a2_cost.pdb"
  "CMakeFiles/bench_a2_cost.dir/bench_a2_cost.cpp.o"
  "CMakeFiles/bench_a2_cost.dir/bench_a2_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
