# Empty dependencies file for bench_a2_cost.
# This may be replaced when dependencies are built.
