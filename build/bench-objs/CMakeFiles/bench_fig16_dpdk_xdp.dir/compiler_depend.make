# Empty compiler generated dependencies file for bench_fig16_dpdk_xdp.
# This may be replaced when dependencies are built.
