file(REMOVE_RECURSE
  "../bench/bench_fig16_dpdk_xdp"
  "../bench/bench_fig16_dpdk_xdp.pdb"
  "CMakeFiles/bench_fig16_dpdk_xdp.dir/bench_fig16_dpdk_xdp.cpp.o"
  "CMakeFiles/bench_fig16_dpdk_xdp.dir/bench_fig16_dpdk_xdp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_dpdk_xdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
