
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig15b_latency.cpp" "bench-objs/CMakeFiles/bench_fig15b_latency.dir/bench_fig15b_latency.cpp.o" "gcc" "bench-objs/CMakeFiles/bench_fig15b_latency.dir/bench_fig15b_latency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mb/CMakeFiles/rb_mb.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ran/CMakeFiles/rb_ran.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/fronthaul/CMakeFiles/rb_fronthaul.dir/DependInfo.cmake"
  "/root/repo/build/src/iq/CMakeFiles/rb_iq.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
