file(REMOVE_RECURSE
  "../bench/bench_table2_dmimo"
  "../bench/bench_table2_dmimo.pdb"
  "CMakeFiles/bench_table2_dmimo.dir/bench_table2_dmimo.cpp.o"
  "CMakeFiles/bench_table2_dmimo.dir/bench_table2_dmimo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_dmimo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
