# Empty dependencies file for bench_a11_alignment.
# This may be replaced when dependencies are built.
