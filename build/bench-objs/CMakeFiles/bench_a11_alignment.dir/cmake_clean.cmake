file(REMOVE_RECURSE
  "../bench/bench_a11_alignment"
  "../bench/bench_a11_alignment.pdb"
  "CMakeFiles/bench_a11_alignment.dir/bench_a11_alignment.cpp.o"
  "CMakeFiles/bench_a11_alignment.dir/bench_a11_alignment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a11_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
