file(REMOVE_RECURSE
  "../bench/bench_fig10a_das"
  "../bench/bench_fig10a_das.pdb"
  "CMakeFiles/bench_fig10a_das.dir/bench_fig10a_das.cpp.o"
  "CMakeFiles/bench_fig10a_das.dir/bench_fig10a_das.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10a_das.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
