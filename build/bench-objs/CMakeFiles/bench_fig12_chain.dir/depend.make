# Empty dependencies file for bench_fig12_chain.
# This may be replaced when dependencies are built.
