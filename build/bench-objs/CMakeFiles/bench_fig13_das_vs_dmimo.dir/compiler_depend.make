# Empty compiler generated dependencies file for bench_fig13_das_vs_dmimo.
# This may be replaced when dependencies are built.
