file(REMOVE_RECURSE
  "../bench/bench_fig13_das_vs_dmimo"
  "../bench/bench_fig13_das_vs_dmimo.pdb"
  "CMakeFiles/bench_fig13_das_vs_dmimo.dir/bench_fig13_das_vs_dmimo.cpp.o"
  "CMakeFiles/bench_fig13_das_vs_dmimo.dir/bench_fig13_das_vs_dmimo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_das_vs_dmimo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
