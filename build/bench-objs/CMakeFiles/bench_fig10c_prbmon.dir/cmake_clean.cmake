file(REMOVE_RECURSE
  "../bench/bench_fig10c_prbmon"
  "../bench/bench_fig10c_prbmon.pdb"
  "CMakeFiles/bench_fig10c_prbmon.dir/bench_fig10c_prbmon.cpp.o"
  "CMakeFiles/bench_fig10c_prbmon.dir/bench_fig10c_prbmon.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10c_prbmon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
