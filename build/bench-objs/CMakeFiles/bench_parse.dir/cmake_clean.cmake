file(REMOVE_RECURSE
  "../bench/bench_parse"
  "../bench/bench_parse.pdb"
  "CMakeFiles/bench_parse.dir/bench_parse.cpp.o"
  "CMakeFiles/bench_parse.dir/bench_parse.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
