# Empty compiler generated dependencies file for bench_bfp.
# This may be replaced when dependencies are built.
