file(REMOVE_RECURSE
  "../bench/bench_bfp"
  "../bench/bench_bfp.pdb"
  "CMakeFiles/bench_bfp.dir/bench_bfp.cpp.o"
  "CMakeFiles/bench_bfp.dir/bench_bfp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bfp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
