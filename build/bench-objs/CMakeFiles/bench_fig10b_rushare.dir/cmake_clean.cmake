file(REMOVE_RECURSE
  "../bench/bench_fig10b_rushare"
  "../bench/bench_fig10b_rushare.pdb"
  "CMakeFiles/bench_fig10b_rushare.dir/bench_fig10b_rushare.cpp.o"
  "CMakeFiles/bench_fig10b_rushare.dir/bench_fig10b_rushare.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10b_rushare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
