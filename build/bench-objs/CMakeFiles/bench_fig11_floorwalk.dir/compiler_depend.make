# Empty compiler generated dependencies file for bench_fig11_floorwalk.
# This may be replaced when dependencies are built.
