file(REMOVE_RECURSE
  "../bench/bench_fig11_floorwalk"
  "../bench/bench_fig11_floorwalk.pdb"
  "CMakeFiles/bench_fig11_floorwalk.dir/bench_fig11_floorwalk.cpp.o"
  "CMakeFiles/bench_fig11_floorwalk.dir/bench_fig11_floorwalk.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_floorwalk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
