file(REMOVE_RECURSE
  "CMakeFiles/rb_mb.dir/das.cpp.o"
  "CMakeFiles/rb_mb.dir/das.cpp.o.d"
  "CMakeFiles/rb_mb.dir/dmimo.cpp.o"
  "CMakeFiles/rb_mb.dir/dmimo.cpp.o.d"
  "CMakeFiles/rb_mb.dir/failover.cpp.o"
  "CMakeFiles/rb_mb.dir/failover.cpp.o.d"
  "CMakeFiles/rb_mb.dir/prbmon.cpp.o"
  "CMakeFiles/rb_mb.dir/prbmon.cpp.o.d"
  "CMakeFiles/rb_mb.dir/rushare.cpp.o"
  "CMakeFiles/rb_mb.dir/rushare.cpp.o.d"
  "librb_mb.a"
  "librb_mb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_mb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
