file(REMOVE_RECURSE
  "librb_mb.a"
)
