# Empty dependencies file for rb_mb.
# This may be replaced when dependencies are built.
