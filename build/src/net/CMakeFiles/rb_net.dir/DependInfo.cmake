
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/driver.cpp" "src/net/CMakeFiles/rb_net.dir/driver.cpp.o" "gcc" "src/net/CMakeFiles/rb_net.dir/driver.cpp.o.d"
  "/root/repo/src/net/nic.cpp" "src/net/CMakeFiles/rb_net.dir/nic.cpp.o" "gcc" "src/net/CMakeFiles/rb_net.dir/nic.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/net/CMakeFiles/rb_net.dir/packet.cpp.o" "gcc" "src/net/CMakeFiles/rb_net.dir/packet.cpp.o.d"
  "/root/repo/src/net/port.cpp" "src/net/CMakeFiles/rb_net.dir/port.cpp.o" "gcc" "src/net/CMakeFiles/rb_net.dir/port.cpp.o.d"
  "/root/repo/src/net/switch.cpp" "src/net/CMakeFiles/rb_net.dir/switch.cpp.o" "gcc" "src/net/CMakeFiles/rb_net.dir/switch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fronthaul/CMakeFiles/rb_fronthaul.dir/DependInfo.cmake"
  "/root/repo/build/src/iq/CMakeFiles/rb_iq.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
