file(REMOVE_RECURSE
  "CMakeFiles/rb_net.dir/driver.cpp.o"
  "CMakeFiles/rb_net.dir/driver.cpp.o.d"
  "CMakeFiles/rb_net.dir/nic.cpp.o"
  "CMakeFiles/rb_net.dir/nic.cpp.o.d"
  "CMakeFiles/rb_net.dir/packet.cpp.o"
  "CMakeFiles/rb_net.dir/packet.cpp.o.d"
  "CMakeFiles/rb_net.dir/port.cpp.o"
  "CMakeFiles/rb_net.dir/port.cpp.o.d"
  "CMakeFiles/rb_net.dir/switch.cpp.o"
  "CMakeFiles/rb_net.dir/switch.cpp.o.d"
  "librb_net.a"
  "librb_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
