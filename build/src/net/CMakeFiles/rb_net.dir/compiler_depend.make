# Empty compiler generated dependencies file for rb_net.
# This may be replaced when dependencies are built.
