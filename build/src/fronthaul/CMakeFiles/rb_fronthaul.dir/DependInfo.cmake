
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fronthaul/cplane.cpp" "src/fronthaul/CMakeFiles/rb_fronthaul.dir/cplane.cpp.o" "gcc" "src/fronthaul/CMakeFiles/rb_fronthaul.dir/cplane.cpp.o.d"
  "/root/repo/src/fronthaul/ecpri.cpp" "src/fronthaul/CMakeFiles/rb_fronthaul.dir/ecpri.cpp.o" "gcc" "src/fronthaul/CMakeFiles/rb_fronthaul.dir/ecpri.cpp.o.d"
  "/root/repo/src/fronthaul/ethernet.cpp" "src/fronthaul/CMakeFiles/rb_fronthaul.dir/ethernet.cpp.o" "gcc" "src/fronthaul/CMakeFiles/rb_fronthaul.dir/ethernet.cpp.o.d"
  "/root/repo/src/fronthaul/frame.cpp" "src/fronthaul/CMakeFiles/rb_fronthaul.dir/frame.cpp.o" "gcc" "src/fronthaul/CMakeFiles/rb_fronthaul.dir/frame.cpp.o.d"
  "/root/repo/src/fronthaul/pcap.cpp" "src/fronthaul/CMakeFiles/rb_fronthaul.dir/pcap.cpp.o" "gcc" "src/fronthaul/CMakeFiles/rb_fronthaul.dir/pcap.cpp.o.d"
  "/root/repo/src/fronthaul/uplane.cpp" "src/fronthaul/CMakeFiles/rb_fronthaul.dir/uplane.cpp.o" "gcc" "src/fronthaul/CMakeFiles/rb_fronthaul.dir/uplane.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/iq/CMakeFiles/rb_iq.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
