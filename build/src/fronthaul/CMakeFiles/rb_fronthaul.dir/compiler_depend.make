# Empty compiler generated dependencies file for rb_fronthaul.
# This may be replaced when dependencies are built.
