file(REMOVE_RECURSE
  "librb_fronthaul.a"
)
