file(REMOVE_RECURSE
  "CMakeFiles/rb_fronthaul.dir/cplane.cpp.o"
  "CMakeFiles/rb_fronthaul.dir/cplane.cpp.o.d"
  "CMakeFiles/rb_fronthaul.dir/ecpri.cpp.o"
  "CMakeFiles/rb_fronthaul.dir/ecpri.cpp.o.d"
  "CMakeFiles/rb_fronthaul.dir/ethernet.cpp.o"
  "CMakeFiles/rb_fronthaul.dir/ethernet.cpp.o.d"
  "CMakeFiles/rb_fronthaul.dir/frame.cpp.o"
  "CMakeFiles/rb_fronthaul.dir/frame.cpp.o.d"
  "CMakeFiles/rb_fronthaul.dir/pcap.cpp.o"
  "CMakeFiles/rb_fronthaul.dir/pcap.cpp.o.d"
  "CMakeFiles/rb_fronthaul.dir/uplane.cpp.o"
  "CMakeFiles/rb_fronthaul.dir/uplane.cpp.o.d"
  "librb_fronthaul.a"
  "librb_fronthaul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_fronthaul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
