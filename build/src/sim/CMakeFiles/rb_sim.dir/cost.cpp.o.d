src/sim/CMakeFiles/rb_sim.dir/cost.cpp.o: /root/repo/src/sim/cost.cpp \
 /usr/include/stdc-predef.h /root/repo/src/sim/cost.h
