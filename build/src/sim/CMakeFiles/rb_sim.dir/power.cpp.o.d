src/sim/CMakeFiles/rb_sim.dir/power.cpp.o: /root/repo/src/sim/power.cpp \
 /usr/include/stdc-predef.h /root/repo/src/sim/power.h
