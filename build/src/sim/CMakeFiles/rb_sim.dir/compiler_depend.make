# Empty compiler generated dependencies file for rb_sim.
# This may be replaced when dependencies are built.
