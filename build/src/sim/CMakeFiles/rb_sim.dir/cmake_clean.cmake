file(REMOVE_RECURSE
  "CMakeFiles/rb_sim.dir/cost.cpp.o"
  "CMakeFiles/rb_sim.dir/cost.cpp.o.d"
  "CMakeFiles/rb_sim.dir/deployment.cpp.o"
  "CMakeFiles/rb_sim.dir/deployment.cpp.o.d"
  "CMakeFiles/rb_sim.dir/floorplan.cpp.o"
  "CMakeFiles/rb_sim.dir/floorplan.cpp.o.d"
  "CMakeFiles/rb_sim.dir/power.cpp.o"
  "CMakeFiles/rb_sim.dir/power.cpp.o.d"
  "CMakeFiles/rb_sim.dir/traffic.cpp.o"
  "CMakeFiles/rb_sim.dir/traffic.cpp.o.d"
  "librb_sim.a"
  "librb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
