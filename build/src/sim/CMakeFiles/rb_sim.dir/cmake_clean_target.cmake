file(REMOVE_RECURSE
  "librb_sim.a"
)
