file(REMOVE_RECURSE
  "librb_core.a"
)
