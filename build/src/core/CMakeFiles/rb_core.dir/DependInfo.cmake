
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cache.cpp" "src/core/CMakeFiles/rb_core.dir/cache.cpp.o" "gcc" "src/core/CMakeFiles/rb_core.dir/cache.cpp.o.d"
  "/root/repo/src/core/chain.cpp" "src/core/CMakeFiles/rb_core.dir/chain.cpp.o" "gcc" "src/core/CMakeFiles/rb_core.dir/chain.cpp.o.d"
  "/root/repo/src/core/mgmt.cpp" "src/core/CMakeFiles/rb_core.dir/mgmt.cpp.o" "gcc" "src/core/CMakeFiles/rb_core.dir/mgmt.cpp.o.d"
  "/root/repo/src/core/runtime.cpp" "src/core/CMakeFiles/rb_core.dir/runtime.cpp.o" "gcc" "src/core/CMakeFiles/rb_core.dir/runtime.cpp.o.d"
  "/root/repo/src/core/telemetry.cpp" "src/core/CMakeFiles/rb_core.dir/telemetry.cpp.o" "gcc" "src/core/CMakeFiles/rb_core.dir/telemetry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/iq/CMakeFiles/rb_iq.dir/DependInfo.cmake"
  "/root/repo/build/src/fronthaul/CMakeFiles/rb_fronthaul.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ran/CMakeFiles/rb_ran.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
