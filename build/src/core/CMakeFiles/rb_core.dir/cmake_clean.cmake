file(REMOVE_RECURSE
  "CMakeFiles/rb_core.dir/cache.cpp.o"
  "CMakeFiles/rb_core.dir/cache.cpp.o.d"
  "CMakeFiles/rb_core.dir/chain.cpp.o"
  "CMakeFiles/rb_core.dir/chain.cpp.o.d"
  "CMakeFiles/rb_core.dir/mgmt.cpp.o"
  "CMakeFiles/rb_core.dir/mgmt.cpp.o.d"
  "CMakeFiles/rb_core.dir/runtime.cpp.o"
  "CMakeFiles/rb_core.dir/runtime.cpp.o.d"
  "CMakeFiles/rb_core.dir/telemetry.cpp.o"
  "CMakeFiles/rb_core.dir/telemetry.cpp.o.d"
  "librb_core.a"
  "librb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
