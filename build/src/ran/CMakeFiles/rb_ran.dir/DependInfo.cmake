
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ran/air.cpp" "src/ran/CMakeFiles/rb_ran.dir/air.cpp.o" "gcc" "src/ran/CMakeFiles/rb_ran.dir/air.cpp.o.d"
  "/root/repo/src/ran/channel.cpp" "src/ran/CMakeFiles/rb_ran.dir/channel.cpp.o" "gcc" "src/ran/CMakeFiles/rb_ran.dir/channel.cpp.o.d"
  "/root/repo/src/ran/du.cpp" "src/ran/CMakeFiles/rb_ran.dir/du.cpp.o" "gcc" "src/ran/CMakeFiles/rb_ran.dir/du.cpp.o.d"
  "/root/repo/src/ran/engine.cpp" "src/ran/CMakeFiles/rb_ran.dir/engine.cpp.o" "gcc" "src/ran/CMakeFiles/rb_ran.dir/engine.cpp.o.d"
  "/root/repo/src/ran/phy_rate.cpp" "src/ran/CMakeFiles/rb_ran.dir/phy_rate.cpp.o" "gcc" "src/ran/CMakeFiles/rb_ran.dir/phy_rate.cpp.o.d"
  "/root/repo/src/ran/ptp.cpp" "src/ran/CMakeFiles/rb_ran.dir/ptp.cpp.o" "gcc" "src/ran/CMakeFiles/rb_ran.dir/ptp.cpp.o.d"
  "/root/repo/src/ran/ru.cpp" "src/ran/CMakeFiles/rb_ran.dir/ru.cpp.o" "gcc" "src/ran/CMakeFiles/rb_ran.dir/ru.cpp.o.d"
  "/root/repo/src/ran/scheduler.cpp" "src/ran/CMakeFiles/rb_ran.dir/scheduler.cpp.o" "gcc" "src/ran/CMakeFiles/rb_ran.dir/scheduler.cpp.o.d"
  "/root/repo/src/ran/tdd.cpp" "src/ran/CMakeFiles/rb_ran.dir/tdd.cpp.o" "gcc" "src/ran/CMakeFiles/rb_ran.dir/tdd.cpp.o.d"
  "/root/repo/src/ran/vendor.cpp" "src/ran/CMakeFiles/rb_ran.dir/vendor.cpp.o" "gcc" "src/ran/CMakeFiles/rb_ran.dir/vendor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/iq/CMakeFiles/rb_iq.dir/DependInfo.cmake"
  "/root/repo/build/src/fronthaul/CMakeFiles/rb_fronthaul.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rb_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
