file(REMOVE_RECURSE
  "librb_ran.a"
)
