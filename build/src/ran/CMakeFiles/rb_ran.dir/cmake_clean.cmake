file(REMOVE_RECURSE
  "CMakeFiles/rb_ran.dir/air.cpp.o"
  "CMakeFiles/rb_ran.dir/air.cpp.o.d"
  "CMakeFiles/rb_ran.dir/channel.cpp.o"
  "CMakeFiles/rb_ran.dir/channel.cpp.o.d"
  "CMakeFiles/rb_ran.dir/du.cpp.o"
  "CMakeFiles/rb_ran.dir/du.cpp.o.d"
  "CMakeFiles/rb_ran.dir/engine.cpp.o"
  "CMakeFiles/rb_ran.dir/engine.cpp.o.d"
  "CMakeFiles/rb_ran.dir/phy_rate.cpp.o"
  "CMakeFiles/rb_ran.dir/phy_rate.cpp.o.d"
  "CMakeFiles/rb_ran.dir/ptp.cpp.o"
  "CMakeFiles/rb_ran.dir/ptp.cpp.o.d"
  "CMakeFiles/rb_ran.dir/ru.cpp.o"
  "CMakeFiles/rb_ran.dir/ru.cpp.o.d"
  "CMakeFiles/rb_ran.dir/scheduler.cpp.o"
  "CMakeFiles/rb_ran.dir/scheduler.cpp.o.d"
  "CMakeFiles/rb_ran.dir/tdd.cpp.o"
  "CMakeFiles/rb_ran.dir/tdd.cpp.o.d"
  "CMakeFiles/rb_ran.dir/vendor.cpp.o"
  "CMakeFiles/rb_ran.dir/vendor.cpp.o.d"
  "librb_ran.a"
  "librb_ran.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_ran.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
