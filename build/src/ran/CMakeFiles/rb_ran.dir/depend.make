# Empty dependencies file for rb_ran.
# This may be replaced when dependencies are built.
