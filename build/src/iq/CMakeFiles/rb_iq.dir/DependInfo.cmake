
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iq/bfp.cpp" "src/iq/CMakeFiles/rb_iq.dir/bfp.cpp.o" "gcc" "src/iq/CMakeFiles/rb_iq.dir/bfp.cpp.o.d"
  "/root/repo/src/iq/prb.cpp" "src/iq/CMakeFiles/rb_iq.dir/prb.cpp.o" "gcc" "src/iq/CMakeFiles/rb_iq.dir/prb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
