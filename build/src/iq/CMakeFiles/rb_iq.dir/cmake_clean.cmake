file(REMOVE_RECURSE
  "CMakeFiles/rb_iq.dir/bfp.cpp.o"
  "CMakeFiles/rb_iq.dir/bfp.cpp.o.d"
  "CMakeFiles/rb_iq.dir/prb.cpp.o"
  "CMakeFiles/rb_iq.dir/prb.cpp.o.d"
  "librb_iq.a"
  "librb_iq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_iq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
