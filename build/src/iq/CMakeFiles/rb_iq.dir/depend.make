# Empty dependencies file for rb_iq.
# This may be replaced when dependencies are built.
