file(REMOVE_RECURSE
  "librb_iq.a"
)
