file(REMOVE_RECURSE
  "CMakeFiles/rb_common.dir/bytes.cpp.o"
  "CMakeFiles/rb_common.dir/bytes.cpp.o.d"
  "CMakeFiles/rb_common.dir/log.cpp.o"
  "CMakeFiles/rb_common.dir/log.cpp.o.d"
  "CMakeFiles/rb_common.dir/mac_addr.cpp.o"
  "CMakeFiles/rb_common.dir/mac_addr.cpp.o.d"
  "CMakeFiles/rb_common.dir/timing.cpp.o"
  "CMakeFiles/rb_common.dir/timing.cpp.o.d"
  "librb_common.a"
  "librb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
