# Empty dependencies file for prb_dashboard.
# This may be replaced when dependencies are built.
