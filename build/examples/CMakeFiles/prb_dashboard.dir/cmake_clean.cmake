file(REMOVE_RECURSE
  "CMakeFiles/prb_dashboard.dir/prb_dashboard.cpp.o"
  "CMakeFiles/prb_dashboard.dir/prb_dashboard.cpp.o.d"
  "prb_dashboard"
  "prb_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prb_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
