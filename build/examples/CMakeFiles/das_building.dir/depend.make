# Empty dependencies file for das_building.
# This may be replaced when dependencies are built.
