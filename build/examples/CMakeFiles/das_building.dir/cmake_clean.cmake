file(REMOVE_RECURSE
  "CMakeFiles/das_building.dir/das_building.cpp.o"
  "CMakeFiles/das_building.dir/das_building.cpp.o.d"
  "das_building"
  "das_building.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_building.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
