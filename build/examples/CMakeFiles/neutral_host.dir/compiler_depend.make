# Empty compiler generated dependencies file for neutral_host.
# This may be replaced when dependencies are built.
