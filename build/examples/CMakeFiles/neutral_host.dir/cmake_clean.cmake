file(REMOVE_RECURSE
  "CMakeFiles/neutral_host.dir/neutral_host.cpp.o"
  "CMakeFiles/neutral_host.dir/neutral_host.cpp.o.d"
  "neutral_host"
  "neutral_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neutral_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
