# Empty dependencies file for test_e2e_dmimo.
# This may be replaced when dependencies are built.
