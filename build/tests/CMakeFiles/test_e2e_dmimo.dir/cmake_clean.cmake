file(REMOVE_RECURSE
  "CMakeFiles/test_e2e_dmimo.dir/test_e2e_dmimo.cpp.o"
  "CMakeFiles/test_e2e_dmimo.dir/test_e2e_dmimo.cpp.o.d"
  "test_e2e_dmimo"
  "test_e2e_dmimo.pdb"
  "test_e2e_dmimo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_e2e_dmimo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
