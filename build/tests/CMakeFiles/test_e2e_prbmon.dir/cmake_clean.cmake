file(REMOVE_RECURSE
  "CMakeFiles/test_e2e_prbmon.dir/test_e2e_prbmon.cpp.o"
  "CMakeFiles/test_e2e_prbmon.dir/test_e2e_prbmon.cpp.o.d"
  "test_e2e_prbmon"
  "test_e2e_prbmon.pdb"
  "test_e2e_prbmon[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_e2e_prbmon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
