# Empty dependencies file for test_air.
# This may be replaced when dependencies are built.
