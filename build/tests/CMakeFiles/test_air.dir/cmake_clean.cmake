file(REMOVE_RECURSE
  "CMakeFiles/test_air.dir/test_air.cpp.o"
  "CMakeFiles/test_air.dir/test_air.cpp.o.d"
  "test_air"
  "test_air.pdb"
  "test_air[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_air.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
