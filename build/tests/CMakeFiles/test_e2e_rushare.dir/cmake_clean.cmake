file(REMOVE_RECURSE
  "CMakeFiles/test_e2e_rushare.dir/test_e2e_rushare.cpp.o"
  "CMakeFiles/test_e2e_rushare.dir/test_e2e_rushare.cpp.o.d"
  "test_e2e_rushare"
  "test_e2e_rushare.pdb"
  "test_e2e_rushare[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_e2e_rushare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
