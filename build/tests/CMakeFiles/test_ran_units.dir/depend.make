# Empty dependencies file for test_ran_units.
# This may be replaced when dependencies are built.
