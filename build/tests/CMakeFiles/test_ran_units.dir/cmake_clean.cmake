file(REMOVE_RECURSE
  "CMakeFiles/test_ran_units.dir/test_ran_units.cpp.o"
  "CMakeFiles/test_ran_units.dir/test_ran_units.cpp.o.d"
  "test_ran_units"
  "test_ran_units.pdb"
  "test_ran_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ran_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
