# Empty compiler generated dependencies file for test_bfp.
# This may be replaced when dependencies are built.
