file(REMOVE_RECURSE
  "CMakeFiles/test_e2e_baseline.dir/test_e2e_baseline.cpp.o"
  "CMakeFiles/test_e2e_baseline.dir/test_e2e_baseline.cpp.o.d"
  "test_e2e_baseline"
  "test_e2e_baseline.pdb"
  "test_e2e_baseline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_e2e_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
