file(REMOVE_RECURSE
  "CMakeFiles/test_e2e_das.dir/test_e2e_das.cpp.o"
  "CMakeFiles/test_e2e_das.dir/test_e2e_das.cpp.o.d"
  "test_e2e_das"
  "test_e2e_das.pdb"
  "test_e2e_das[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_e2e_das.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
