# Empty dependencies file for test_e2e_das.
# This may be replaced when dependencies are built.
