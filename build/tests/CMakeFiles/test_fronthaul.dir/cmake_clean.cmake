file(REMOVE_RECURSE
  "CMakeFiles/test_fronthaul.dir/test_fronthaul.cpp.o"
  "CMakeFiles/test_fronthaul.dir/test_fronthaul.cpp.o.d"
  "test_fronthaul"
  "test_fronthaul.pdb"
  "test_fronthaul[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fronthaul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
