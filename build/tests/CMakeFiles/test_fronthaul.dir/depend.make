# Empty dependencies file for test_fronthaul.
# This may be replaced when dependencies are built.
