# Empty compiler generated dependencies file for test_mb_unit.
# This may be replaced when dependencies are built.
