file(REMOVE_RECURSE
  "CMakeFiles/test_mb_unit.dir/test_mb_unit.cpp.o"
  "CMakeFiles/test_mb_unit.dir/test_mb_unit.cpp.o.d"
  "test_mb_unit"
  "test_mb_unit.pdb"
  "test_mb_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mb_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
