# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_e2e_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_e2e_das[1]_include.cmake")
include("/root/repo/build/tests/test_e2e_dmimo[1]_include.cmake")
include("/root/repo/build/tests/test_e2e_rushare[1]_include.cmake")
include("/root/repo/build/tests/test_e2e_prbmon[1]_include.cmake")
include("/root/repo/build/tests/test_bytes[1]_include.cmake")
include("/root/repo/build/tests/test_bfp[1]_include.cmake")
include("/root/repo/build/tests/test_fronthaul[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_ran_units[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_interop[1]_include.cmake")
include("/root/repo/build/tests/test_failures[1]_include.cmake")
include("/root/repo/build/tests/test_failover[1]_include.cmake")
include("/root/repo/build/tests/test_air[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_pcap[1]_include.cmake")
include("/root/repo/build/tests/test_mb_unit[1]_include.cmake")
