// Interoperability sweep (paper section 6.2): the same middlebox binaries
// run against all three vendor stacks - srsRAN, CapGemini, Radisys - with
// no code changes, only the per-vendor configuration differences (TDD
// pattern, C-plane granularity, BFP width, compression-header presence).
#include <gtest/gtest.h>

#include "sim/deployment.h"

namespace rb {
namespace {

VendorProfile profile_by_name(const std::string& name) {
  if (name == "srsran") return srsran_profile();
  if (name == "capgemini") return capgemini_profile();
  return radisys_profile();
}

class Interop : public ::testing::TestWithParam<std::string> {};

CellConfig cell100() {
  CellConfig c;
  c.bandwidth = MHz(100);
  c.max_layers = 4;
  c.pci = 1;
  return c;
}

TEST_P(Interop, BaselineCellCarriesTraffic) {
  const VendorProfile vendor = profile_by_name(GetParam());
  Deployment d;
  auto du = d.add_du(cell100(), vendor, 0);
  RuSite s;
  s.pos = d.plan.ru_position(0, 1);
  s.n_antennas = 4;
  s.bandwidth = MHz(100);
  s.center_freq = cell100().center_freq;
  auto ru = d.add_ru(s, 0, du.du->fh());
  d.connect_direct(du, ru);
  const UeId ue = d.add_ue(d.plan.near_ru(0, 1, 5.0), &du, 600.0, 40.0);
  ASSERT_TRUE(d.attach_all(400)) << vendor.name;
  d.measure(300);
  EXPECT_GT(d.dl_mbps(ue), 400.0) << vendor.name;
  EXPECT_GT(d.ul_mbps(ue), 20.0) << vendor.name;
  EXPECT_EQ(du.du->stats().parse_errors, 0u);
  EXPECT_EQ(ru.ru->stats().parse_errors, 0u);
}

TEST_P(Interop, DasMiddleboxUnmodifiedAcrossStacks) {
  const VendorProfile vendor = profile_by_name(GetParam());
  Deployment d;
  auto du = d.add_du(cell100(), vendor, 0);
  std::vector<Deployment::RuHandle> rus;
  std::vector<Deployment::RuHandle*> ptrs;
  for (int f = 0; f < 2; ++f) {
    RuSite s;
    s.pos = d.plan.ru_position(f, 1);
    s.n_antennas = 4;
    s.bandwidth = MHz(100);
    s.center_freq = cell100().center_freq;
    rus.push_back(d.add_ru(s, std::uint8_t(f), du.du->fh()));
  }
  for (auto& r : rus) ptrs.push_back(&r);
  auto& rt = d.add_das(du, ptrs);
  const UeId ground = d.add_ue(d.plan.near_ru(0, 1, 5.0), &du, 300.0, 20.0);
  const UeId upper = d.add_ue(d.plan.near_ru(1, 1, 5.0), &du, 300.0, 20.0);
  ASSERT_TRUE(d.attach_all(600)) << vendor.name;
  d.measure(300);
  EXPECT_GT(d.dl_mbps(ground), 100.0) << vendor.name;
  EXPECT_GT(d.dl_mbps(upper), 100.0) << vendor.name;
  EXPECT_GT(d.ul_mbps(ground), 5.0) << vendor.name;
  EXPECT_EQ(rt.telemetry().counter("das_merge_failures"), 0u) << vendor.name;
}

TEST_P(Interop, DmimoMiddleboxUnmodifiedAcrossStacks) {
  const VendorProfile vendor = profile_by_name(GetParam());
  Deployment d;
  auto du = d.add_du(cell100(), vendor, 0);
  RuSite s1;
  s1.pos = d.plan.ru_position(0, 1);
  s1.n_antennas = 2;
  s1.bandwidth = MHz(100);
  s1.center_freq = cell100().center_freq;
  RuSite s2 = s1;
  s2.pos.x += 5.0;
  auto ru1 = d.add_ru(s1, 0, du.du->fh());
  auto ru2 = d.add_ru(s2, 1, du.du->fh());
  d.add_dmimo(du, {&ru1, &ru2});
  Position pos = s1.pos;
  pos.x += 2.5;
  pos.y += 4.33;
  const UeId ue = d.add_ue(pos, &du, 1000.0, 50.0);
  ASSERT_TRUE(d.attach_all(600)) << vendor.name;
  d.measure(300);
  EXPECT_EQ(d.air.last_rank(ue), 4) << vendor.name;
  EXPECT_GT(d.dl_mbps(ue), 500.0) << vendor.name;
}

TEST_P(Interop, PrbMonitorTracksTruthAcrossStacks) {
  const VendorProfile vendor = profile_by_name(GetParam());
  Deployment d;
  auto du = d.add_du(cell100(), vendor, 0);
  RuSite s;
  s.pos = d.plan.ru_position(0, 1);
  s.n_antennas = 4;
  s.bandwidth = MHz(100);
  s.center_freq = cell100().center_freq;
  auto ru = d.add_ru(s, 0, du.du->fh());
  auto& rt = d.add_prbmon(du, ru);
  auto* mon = dynamic_cast<PrbMonitorMiddlebox*>(&rt.app());
  const UeId ue = d.add_ue(d.plan.near_ru(0, 1, 5.0), &du, 0, 0);
  ASSERT_TRUE(d.attach_all(400)) << vendor.name;
  d.traffic.set_flow(*du.du, ue, 300.0, 20.0);
  d.engine.run_slots(60);
  mon->clear_estimates();
  du.du->scheduler().clear_utilization_log();
  d.engine.run_slots(300);
  double est = 0, truth = 0;
  int ne = 0, nt = 0;
  for (const auto& e : mon->estimates())
    if (e.dl_symbols) {
      est += e.dl_util;
      ++ne;
    }
  for (const auto& u : du.du->scheduler().utilization_log())
    if (u.dl_slot) {
      truth += double(u.dl_prbs) / u.total_prbs;
      ++nt;
    }
  ASSERT_GT(ne, 0);
  ASSERT_GT(nt, 0);
  EXPECT_NEAR(est / ne, truth / nt, 0.08) << vendor.name;
}

INSTANTIATE_TEST_SUITE_P(AllVendors, Interop,
                         ::testing::Values("srsran", "capgemini", "radisys"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace rb
