// Unit tests for the RANBooster core: cache, telemetry, management,
// runtime accounting and chaining.
#include <gtest/gtest.h>

#include <sstream>

#include "core/chain.h"
#include "core/mgmt.h"
#include "core/middlebox.h"

namespace rb {
namespace {

TEST(PacketCache, KeySeparatesStreams) {
  const SlotPoint at{1, 2, 0, 3};
  const EaxcId a{0, 0, 0, 1}, b{0, 0, 0, 2};
  EXPECT_NE(PacketCache::key(at, a, false), PacketCache::key(at, b, false));
  EXPECT_NE(PacketCache::key(at, a, false), PacketCache::key(at, a, true));
  EXPECT_NE(PacketCache::key(at, a, false, 1),
            PacketCache::key(at, a, false, 2));
  SlotPoint at2 = at;
  at2.symbol = 7;
  EXPECT_NE(PacketCache::key(at, a, false), PacketCache::key(at2, a, false));
  // slot_key ignores the symbol.
  EXPECT_EQ(PacketCache::slot_key(at, a, false),
            PacketCache::slot_key(at2, a, false));
}

TEST(PacketCache, PutPeekTakeErase) {
  PacketPool pool(8);
  PacketCache cache;
  auto mk = [&](int port) {
    CachedPacket e;
    e.pkt = pool.alloc();
    e.in_port = port;
    return e;
  };
  cache.put(1, mk(0));
  cache.put(1, mk(1));
  cache.put(2, mk(2));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.keys(), 2u);
  EXPECT_EQ(cache.peek(1).size(), 2u);
  EXPECT_TRUE(cache.peek(99).empty());
  auto batch = cache.take(1);
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(cache.size(), 1u);
  cache.erase(2);
  EXPECT_EQ(cache.size(), 0u);
  cache.put(3, mk(0));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(pool.in_use(), 2u);  // `batch` still holds its two packets
}

TEST(Telemetry, CountersAndGauges) {
  Telemetry t;
  t.inc("a");
  t.inc("a", 4);
  t.set_gauge("g", 0.5);
  EXPECT_EQ(t.counter("a"), 5u);
  EXPECT_EQ(t.counter("missing"), 0u);
  EXPECT_DOUBLE_EQ(t.gauge("g"), 0.5);
  EXPECT_NE(t.dump().find("a=5"), std::string::npos);
}

TEST(Telemetry, PubSubDeliversToAllSubscribers) {
  Telemetry t;
  int calls = 0;
  t.subscribe([&](const TelemetrySample& s) {
    EXPECT_EQ(s.key, "k");
    ++calls;
  });
  t.subscribe([&](const TelemetrySample&) { ++calls; });
  t.publish({7, "k", 1.0});
  EXPECT_EQ(calls, 2);
}

/// Minimal app used to exercise the runtime.
class EchoApp final : public MiddleboxApp {
 public:
  std::string name() const override { return "echo"; }
  void on_frame(int in_port, PacketPtr p, FhFrame&, MbContext& ctx) override {
    ctx.charge(1'000);
    ctx.forward(std::move(p), in_port == 0 ? 1 : 0);
  }
  std::string on_mgmt(const std::string& cmd) override {
    return cmd == "ping" ? "pong" : "unknown command";
  }
};

struct RuntimeRig {
  EchoApp app;
  MiddleboxRuntime rt;
  Port in_ext{"in_ext"}, out_ext{"out_ext"};
  Port in{"in"}, out{"out"};

  explicit RuntimeRig(DriverKind driver = DriverKind::Dpdk, int workers = 1)
      : rt(make_cfg(driver, workers), app) {
    rt.add_port("north", in);
    rt.add_port("south", out);
    Port::connect(in_ext, in, 0);
    Port::connect(out_ext, out, 0);
  }
  static MiddleboxRuntime::Config make_cfg(DriverKind driver, int workers) {
    MiddleboxRuntime::Config c;
    c.name = "echo";
    c.driver = driver;
    c.n_workers = workers;
    return c;
  }
  PacketPtr make_cplane_packet(std::int64_t rx_time) {
    CPlaneMsg m;
    m.sections.push_back({});
    auto p = PacketPool::default_pool().alloc();
    const std::size_t len = build_cplane_frame(
        p->raw(), EthHeader{}, EaxcId{}, 0, m, FhContext{});
    p->set_len(len);
    p->rx_time_ns = rx_time;
    return p;
  }
};

TEST(Runtime, ForwardsAcrossPortsAndChargesLatency) {
  RuntimeRig rig;
  rig.in_ext.send(rig.make_cplane_packet(100));
  ASSERT_TRUE(rig.rt.pump(0, 0));
  std::vector<PacketPtr> rx;
  ASSERT_EQ(rig.out_ext.rx_burst(rx), 1u);
  // 1000ns handler charge is reflected in the virtual timestamp.
  EXPECT_GE(rx[0]->rx_time_ns, 1'100);
  EXPECT_EQ(rig.rt.telemetry().counter("pkts_forwarded"), 1u);
}

TEST(Runtime, WorkerQueueingSerializesCosts) {
  RuntimeRig rig(DriverKind::Dpdk, 1);
  for (int i = 0; i < 3; ++i) rig.in_ext.send(rig.make_cplane_packet(0));
  rig.rt.pump(0, 0);
  std::vector<PacketPtr> rx;
  ASSERT_EQ(rig.out_ext.rx_burst(rx), 3u);
  // One worker: completion times stack up ~1us apart.
  EXPECT_GE(rx[2]->rx_time_ns, 3'000);
  EXPECT_EQ(rig.rt.last_slot_max_latency_ns(), 0);  // reported next slot
  rig.rt.begin_slot(1);
  EXPECT_GE(rig.rt.last_slot_max_latency_ns(), 3'000);
}

TEST(Runtime, TwoWorkersHalveTheQueueing) {
  RuntimeRig rig(DriverKind::Dpdk, 2);
  for (int i = 0; i < 4; ++i) rig.in_ext.send(rig.make_cplane_packet(0));
  rig.rt.pump(0, 0);
  std::vector<PacketPtr> rx;
  rig.out_ext.rx_burst(rx);
  std::int64_t max_t = 0;
  for (auto& p : rx) max_t = std::max(max_t, p->rx_time_ns);
  EXPECT_LE(max_t, 2'200);  // 2 per worker
}

TEST(Runtime, XdpUtilizationTracksTraffic) {
  RuntimeRig rig(DriverKind::Xdp);
  rig.rt.reset_cpu(0);
  EXPECT_DOUBLE_EQ(rig.rt.cpu_utilization(1'000'000), 0.0);
  for (int i = 0; i < 10; ++i) rig.in_ext.send(rig.make_cplane_packet(0));
  rig.rt.pump(0, 0);
  const double u = rig.rt.cpu_utilization(1'000'000);
  EXPECT_GT(u, 0.01);
  EXPECT_LT(u, 1.0);
}

TEST(Runtime, DpdkUtilizationAlwaysFull) {
  RuntimeRig rig(DriverKind::Dpdk);
  EXPECT_DOUBLE_EQ(rig.rt.cpu_utilization(123456), 1.0);
}

TEST(Runtime, BurstHistogramsTrackPumpShape) {
  RuntimeRig rig;
  // A 1-packet straggler pump: one chunk of occupancy 1.
  rig.in_ext.send(rig.make_cplane_packet(10));
  ASSERT_TRUE(rig.rt.pump(0, 0));
  EXPECT_EQ(rig.rt.burst_size_hist().count, 1u);
  EXPECT_EQ(rig.rt.burst_size_hist().bucket[0], 1u);  // le=1
  EXPECT_EQ(rig.rt.burst_occupancy_hist().bucket[0], 1u);

  // 33 packets across both ports in one pump: one full 32-slot chunk
  // plus a 1-packet tail chunk, mixed-port and out of arrival order.
  for (int i = 0; i < 33; ++i) {
    auto p = rig.make_cplane_packet(1000 - i);
    (i % 2 ? rig.out_ext : rig.in_ext).send(std::move(p));
  }
  ASSERT_TRUE(rig.rt.pump(0, 0));
  const auto& size = rig.rt.burst_size_hist();
  EXPECT_EQ(size.count, 2u);
  EXPECT_EQ(size.sum, 34u);
  EXPECT_EQ(size.count - size.bucket[5], 1u);  // the >32 drain
  const auto& occ = rig.rt.burst_occupancy_hist();
  EXPECT_EQ(occ.count, 3u);
  EXPECT_EQ(occ.sum, 34u);
  EXPECT_EQ(occ.bucket[0], 2u);                   // two 1-packet chunks
  EXPECT_EQ(occ.bucket[5] - occ.bucket[4], 1u);   // one full 32 chunk

  // Idle pumps are not recorded: the histograms describe productive
  // drains only.
  EXPECT_FALSE(rig.rt.pump(0, 0));
  EXPECT_EQ(rig.rt.burst_size_hist().count, 2u);
}

TEST(Runtime, NonFronthaulGoesToOnOther) {
  RuntimeRig rig;
  auto p = PacketPool::default_pool().alloc();
  p->raw()[12] = 0x08;  // IPv4 ethertype
  p->set_len(64);
  rig.in_ext.send(std::move(p));
  rig.rt.pump(0, 0);
  EXPECT_EQ(rig.rt.telemetry().counter("non_fh_rx"), 1u);
  EXPECT_EQ(rig.rt.telemetry().counter("pkts_dropped"), 1u);  // default drop
}

TEST(Runtime, CacheClearedAtSlotBoundary) {
  RuntimeRig rig;
  CachedPacket e;
  e.pkt = PacketPool::default_pool().alloc();
  rig.rt.cache().put(5, std::move(e));
  EXPECT_EQ(rig.rt.cache().size(), 1u);
  rig.rt.begin_slot(1);
  EXPECT_EQ(rig.rt.cache().size(), 0u);
}

TEST(Mgmt, BuiltinAndAppCommands) {
  RuntimeRig rig;
  MgmtEndpoint mgmt(rig.rt);
  EXPECT_EQ(mgmt.handle("name"), "echo");
  rig.rt.telemetry().inc("foo", 3);
  EXPECT_EQ(mgmt.handle("counter foo"), "3");
  rig.rt.telemetry().set_gauge("bar", 2.5);
  EXPECT_EQ(mgmt.handle("gauge bar").substr(0, 3), "2.5");
  EXPECT_NE(mgmt.handle("stats").find("foo=3"), std::string::npos);
  EXPECT_EQ(mgmt.handle("ping"), "pong");  // delegated to the app
}

TEST(Mgmt, UnknownVerbListsRegisteredVerbs) {
  RuntimeRig rig;
  MgmtEndpoint mgmt(rig.rt);
  const std::string reply = mgmt.handle("nonsense");
  // The reply names the offending verb and every registered core verb.
  EXPECT_NE(reply.find("unknown verb 'nonsense'"), std::string::npos);
  for (const char* verb :
       {"help", "stats", "name", "counter", "gauge", "cpuinfo", "prom",
        "ctrl", "obs", "state", "reconfig"})
    EXPECT_NE(reply.find(verb), std::string::npos) << verb;
  // And points at the app's own verbs.
  EXPECT_NE(reply.find("echo"), std::string::npos);
}

TEST(Mgmt, HelpListsEveryVerbWithDescription) {
  RuntimeRig rig;
  MgmtEndpoint mgmt(rig.rt);
  const std::string help = mgmt.handle("help");
  std::istringstream verbs(MgmtEndpoint::verb_list());
  std::string verb;
  int n = 0;
  while (verbs >> verb) {
    EXPECT_NE(help.find("  " + verb + " - "), std::string::npos) << verb;
    ++n;
  }
  EXPECT_GE(n, 11);
}

TEST(Mgmt, StateVerbRoundTripsRuntimeState) {
  RuntimeRig rig;
  MgmtEndpoint mgmt(rig.rt);
  rig.rt.telemetry().inc("foo", 7);
  const std::string hex = mgmt.handle("state save");
  EXPECT_FALSE(hex.empty());
  EXPECT_EQ(hex.find("error"), std::string::npos);
  rig.rt.telemetry().inc("foo", 1);  // diverge
  EXPECT_EQ(mgmt.handle("state load " + hex), "ok");
  EXPECT_EQ(rig.rt.telemetry().counter("foo"), 7u);
  // Garbage is rejected with a typed error, not UB.
  EXPECT_EQ(mgmt.handle("state load zz"), "error: not a hex blob");
  EXPECT_NE(mgmt.handle("state load deadbeef").find("error:"),
            std::string::npos);
  EXPECT_NE(mgmt.handle("state info").find("bytes="), std::string::npos);
}

TEST(Chain, WiresStagesAndAccountsPcie) {
  EchoApp app1, app2;
  MiddleboxRuntime rt1(RuntimeRig::make_cfg(DriverKind::Dpdk, 1), app1);
  MiddleboxRuntime rt2(RuntimeRig::make_cfg(DriverKind::Dpdk, 1), app2);
  ChainBuilder chain;
  const ChainPorts p1 = chain.append(rt1);
  const ChainPorts p2 = chain.append(rt2);
  EXPECT_EQ(p1.north, 0);
  EXPECT_EQ(p1.south, 1);
  EXPECT_EQ(p2.north, 0);
  Port north("north"), south("south");
  chain.finalize(north, south);

  RuntimeRig helper;  // only for packet building
  north.send(helper.make_cplane_packet(0));
  rt1.pump(0, 0);
  rt2.pump(0, 0);
  std::vector<PacketPtr> rx;
  ASSERT_EQ(south.rx_burst(rx), 1u);
  // The frame crossed two inter-stage hops with modeled PCIe latency.
  EXPECT_GE(rx[0]->rx_time_ns, 2 * ChainBuilder::kHopLatencyNs);
  EXPECT_GT(chain.pcie_bytes(), 0u);
  EXPECT_EQ(chain.num_stages(), 2u);
}

TEST(Chain, RefusesDoubleFinalizeAndEmpty) {
  ChainBuilder empty;
  Port a("a"), b("b");
  EXPECT_THROW(empty.finalize(a, b), std::logic_error);
  EchoApp app;
  MiddleboxRuntime rt(RuntimeRig::make_cfg(DriverKind::Dpdk, 1), app);
  ChainBuilder chain;
  chain.append(rt);
  Port c("c"), d("d");
  chain.finalize(c, d);
  EXPECT_THROW(chain.finalize(c, d), std::logic_error);
  EXPECT_THROW(chain.append(rt), std::logic_error);
}

}  // namespace
}  // namespace rb
