// City conductor tests (DESIGN.md 4j): campus geometry, multi-cell
// traffic, city-wide serial == parallel determinism (including a
// 2000-slot chaos soak with a neutral-host RU shared between two
// shards), whole-city checkpoint/restore, mgmt routing and the cell
// telemetry label.
#include <gtest/gtest.h>

#include <sstream>

#include "city/city.h"
#include "core/mgmt.h"
#include "ran/vendor.h"
#include "sim/campus.h"

namespace rb {
namespace {

using city::build_city;
using city::City;
using city::CityConfig;

// --- campus geometry (satellite: Floorplan -> Campus) -----------------

TEST(Campus, GridPlacesBuildingsRowMajor) {
  Campus c;
  c.grid_cols = 4;
  EXPECT_DOUBLE_EQ(c.building_origin(0).x, 0.0);
  EXPECT_DOUBLE_EQ(c.building_origin(3).x, 3 * c.grid_dx_m);
  EXPECT_DOUBLE_EQ(c.building_origin(3).y, 0.0);
  EXPECT_DOUBLE_EQ(c.building_origin(4).x, 0.0);
  EXPECT_DOUBLE_EQ(c.building_origin(4).y, c.grid_dy_m);
  EXPECT_DOUBLE_EQ(c.building_origin(9).x, c.grid_dx_m);
  EXPECT_DOUBLE_EQ(c.building_origin(9).y, 2 * c.grid_dy_m);
}

TEST(Campus, TranslatedQueriesMatchFloorplanPlusOrigin) {
  Campus c;
  const Position local = c.building.ru_position(2, 1);
  const Position placed = c.ru_position(10, 2, 1);
  const Position origin = c.building_origin(10);
  EXPECT_DOUBLE_EQ(placed.x, local.x + origin.x);
  EXPECT_DOUBLE_EQ(placed.y, local.y + origin.y);
  EXPECT_EQ(placed.floor, local.floor);

  const auto local_route = c.building.walk_route(0, 4, 2);
  const auto placed_route = c.walk_route(5, 0, 4, 2);
  ASSERT_EQ(local_route.size(), placed_route.size());
  for (std::size_t i = 0; i < local_route.size(); ++i) {
    EXPECT_DOUBLE_EQ(placed_route[i].x, local_route[i].x + c.building_origin(5).x);
    EXPECT_DOUBLE_EQ(placed_route[i].y, local_route[i].y + c.building_origin(5).y);
  }
  EXPECT_DOUBLE_EQ(c.area_sqft(8), 8.0 * c.building.area_sqft());
}

TEST(Campus, BuildingsAreChannelIsolated) {
  // The grid pitch must put neighbour buildings far enough apart that a
  // UE hears its own building's RU much louder than the neighbour's.
  Campus c;
  const Position ue = c.near_ru(0, 0, 1, 3.0);
  const Position own = c.ru_position(0, 0, 1);
  const Position other = c.ru_position(1, 0, 1);
  const double d_own = std::hypot(ue.x - own.x, ue.y - own.y);
  const double d_other = std::hypot(ue.x - other.x, ue.y - other.y);
  EXPECT_GT(d_other, 5.0 * d_own);
}

// --- multi-cell traffic -----------------------------------------------

TEST(CityTopology, CellsCarryIndependentTraffic) {
  CityConfig cfg;
  cfg.n_cells = 3;
  cfg.ues_per_cell = 1;
  cfg.dl_mbps = 150.0;
  cfg.ul_mbps = 15.0;
  auto c = build_city(cfg);
  ASSERT_TRUE(c->attach_all(800));
  c->measure(400);
  for (int i = 0; i < cfg.n_cells; ++i) {
    const UeId ue = c->cell(std::size_t(i)).ues.at(0);
    EXPECT_GT(c->dl_mbps(i, ue), 100.0) << "cell " << i;
    EXPECT_GT(c->ul_mbps(i, ue), 8.0) << "cell " << i;
  }
}

// --- cell label on telemetry series (satellite 1) ---------------------

TEST(CityTopology, PromSeriesCarryCellLabel) {
  CityConfig cfg;
  cfg.n_cells = 2;
  auto c = build_city(cfg);
  c->run_slots(40);
  ASSERT_TRUE(c->cell(0).mgmt);
  const std::string prom = c->cell(0).mgmt->handle("prom");
  EXPECT_NE(prom.find("cell=\"c0\""), std::string::npos);
  EXPECT_NE(prom.find("mb=\"c0/prbmon0\""), std::string::npos);
}

TEST(CityTopology, SingleCellPromOutputHasNoCellLabel) {
  // Outside city mode the label must not render at all: single-cell
  // Prometheus output stays byte-identical to pre-city builds.
  Deployment d;
  auto du = d.add_du(CellConfig{}, srsran_profile(), 0);
  RuSite site;
  site.pos = d.plan.ru_position(0, 1);
  auto ru = d.add_ru(site, 0, du.du->fh());
  d.add_prbmon(du, ru);
  d.add_ue(d.plan.near_ru(0, 1, 3.0), &du, 50.0, 5.0);
  ASSERT_TRUE(d.attach_all(600));
  MgmtEndpoint ep(*d.runtimes.front());
  const std::string prom = ep.handle("prom");
  EXPECT_EQ(prom.find("cell="), std::string::npos);
  EXPECT_NE(prom.find("rb_mb_counter{mb=\"prbmon0\",name="), std::string::npos);
}

// --- neutral-host share across shards ---------------------------------

TEST(CityNeutralHost, GuestAttachesAndCarriesTrafficAcrossShards) {
  CityConfig cfg;
  cfg.n_cells = 2;
  cfg.neutral_host = true;
  cfg.dl_mbps = 150.0;
  cfg.ul_mbps = 15.0;
  auto c = build_city(cfg);
  ASSERT_TRUE(c->attach_all(800));
  ASSERT_EQ(c->num_shares(), 1u);
  const auto& s = c->share(0);
  // The real UE attached in the host shard through the actual SSB/PRACH
  // datapath (shared RU -> xlink -> guest DU -> bridge).
  EXPECT_TRUE(c->cell(0).dep->air.is_attached(s.real_ue));
  EXPECT_EQ(c->cell(0).dep->air.serving_cell(s.real_ue), s.mirror_cell_air);
  EXPECT_GT(s.prach_seen, 0u);

  c->measure(400);
  // Guest throughput is credited in the guest shard (where the DU and
  // traffic live) against radiation that happened in the host shard.
  EXPECT_GT(c->dl_mbps(1, s.mirror_ue), 50.0);
  EXPECT_GT(c->ul_mbps(1, s.mirror_ue), 5.0);
  // The host cell's own UE shares the same RU and still gets service.
  const UeId host_ue = c->cell(0).ues.at(0);
  EXPECT_GT(c->dl_mbps(0, host_ue), 100.0);
  // Bridged counters agree between the two views of the one UE.
  EXPECT_EQ(c->cell(0).dep->air.dl_bits(s.real_ue),
            c->cell(1).dep->air.dl_bits(s.mirror_ue));
  EXPECT_EQ(c->cell(0).dep->air.ul_bits(s.real_ue),
            c->cell(1).dep->air.ul_bits(s.mirror_ue));
  // Nothing overflowed the cross-shard rings.
  for (std::size_t i = 0; i < c->num_xlinks(); ++i)
    EXPECT_EQ(c->xlink(i).dropped_ab + c->xlink(i).dropped_ba, 0u);
}

// --- determinism: serial == parallel(N), city-wide --------------------

std::string run_city(const CityConfig& cfg, int slots) {
  auto c = build_city(cfg);
  EXPECT_TRUE(c->attach_all(800));
  c->run_slots(slots);
  return c->fingerprint();
}

TEST(CityDeterminism, SerialEqualsParallelPlainCells) {
  CityConfig cfg;
  cfg.n_cells = 4;
  cfg.workers = 0;
  const std::string serial = run_city(cfg, 300);
  cfg.workers = 3;
  const std::string parallel = run_city(cfg, 300);
  EXPECT_EQ(serial, parallel);
}

TEST(CityChaosSoak, SerialEqualsParallelUnderFaultsWithNeutralHost) {
  // The acceptance soak: 4 cells, per-cell fault cocktails, controllers,
  // and a neutral-host RU shared between shards c0 and c1, run for 2000
  // slots. A serial conductor and a parallel(2) conductor must produce
  // byte-identical fingerprints (every counter, fault link, controller,
  // DU stat and UE result in every shard).
  CityConfig cfg;
  cfg.n_cells = 4;
  cfg.neutral_host = true;
  cfg.faults = true;
  cfg.controller = true;
  cfg.workers = 0;
  const std::string serial = run_city(cfg, 2000);
  cfg.workers = 2;
  const std::string parallel = run_city(cfg, 2000);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("share:"), std::string::npos);
}

// --- whole-city checkpoint/restore ------------------------------------

TEST(CityCheckpoint, RestoredCityResumesBitIdentically) {
  CityConfig cfg;
  cfg.n_cells = 2;
  cfg.neutral_host = true;

  auto a = build_city(cfg);
  ASSERT_TRUE(a->attach_all(800));
  a->run_slots(100);
  const std::vector<std::uint8_t> blob = a->checkpoint();
  a->run_slots(200);
  const std::string uninterrupted = a->fingerprint();

  auto b = build_city(cfg);
  const RestoreResult rr = b->restore(blob);
  ASSERT_TRUE(rr.ok()) << rr.detail;
  EXPECT_EQ(b->current_slot(), a->current_slot() - 200);
  b->run_slots(200);
  EXPECT_EQ(b->fingerprint(), uninterrupted);
}

TEST(CityCheckpoint, MismatchedTopologyIsRejectedTyped) {
  CityConfig cfg;
  cfg.n_cells = 2;
  auto a = build_city(cfg);
  a->run_slots(20);
  const auto blob = a->checkpoint();

  CityConfig other = cfg;
  other.n_cells = 3;
  auto b = build_city(other);
  const RestoreResult rr = b->restore(blob);
  EXPECT_FALSE(rr.ok());
  EXPECT_EQ(rr.error, state::StateError::kMismatch);
}

// --- mgmt: the city verb (satellite 2) --------------------------------

TEST(CityMgmt, ConductorVerbsAndPerCellRouting) {
  CityConfig cfg;
  cfg.n_cells = 2;
  cfg.neutral_host = true;
  auto c = build_city(cfg);
  ASSERT_TRUE(c->attach_all(800));
  c->run_slots(20);

  const std::string list = c->city_mgmt("list");
  EXPECT_NE(list.find("cells=2"), std::string::npos);
  EXPECT_NE(list.find("c0 "), std::string::npos);
  EXPECT_NE(list.find("c1 "), std::string::npos);

  const std::string budget = c->city_mgmt("budget");
  EXPECT_NE(budget.find("slot_budget_ns=500000"), std::string::npos);
  EXPECT_NE(budget.find("c0 slots="), std::string::npos);

  const std::string rings = c->city_mgmt("rings");
  EXPECT_NE(rings.find("depth_ab=0"), std::string::npos);
  EXPECT_NE(rings.find("fwd_ab="), std::string::npos);

  // Existing verbs route to a named cell's middlebox endpoint.
  EXPECT_EQ(c->city_mgmt("cell c0 name"), "c0/rushare0");
  EXPECT_NE(c->city_mgmt("cell c1 stats").find("="), std::string::npos);
  EXPECT_NE(c->city_mgmt("cell nope name").find("unknown cell"),
            std::string::npos);

  // And the city verb is reachable from any cell's endpoint.
  ASSERT_TRUE(c->cell(0).mgmt);
  EXPECT_NE(c->cell(0).mgmt->handle("city list").find("cells=2"),
            std::string::npos);
  EXPECT_NE(c->cell(0).mgmt->handle("help").find("city"), std::string::npos);
}

// --- widened UL matching window stays result-identical ----------------

TEST(CityDuWindow, WidenedUlMatchWindowMatchesLegacyResults) {
  // ul_match_slots > 1 (the guest-DU mode) must not change behaviour
  // when frames arrive in their own slot: same UL throughput, no decode
  // failures, as the legacy single-slot matcher.
  auto run = [](int ul_match_slots) {
    Deployment d;
    auto du = d.add_du(CellConfig{}, srsran_profile(), 0,
                       /*engine_driven=*/true, ul_match_slots);
    RuSite site;
    site.pos = d.plan.ru_position(0, 1);
    auto ru = d.add_ru(site, 0, du.du->fh());
    d.connect_direct(du, ru);
    const UeId ue = d.add_ue(d.plan.near_ru(0, 1, 3.0), &du, 100.0, 20.0);
    EXPECT_TRUE(d.attach_all(600));
    d.measure(300);
    std::ostringstream os;
    os << "ul=" << d.air.ul_bits(ue) << " dl=" << d.air.dl_bits(ue)
       << " udf=" << du.du->stats().ul_decode_fail
       << " late=" << du.du->stats().late_drops;
    return os.str();
  };
  EXPECT_EQ(run(1), run(3));
}

}  // namespace
}  // namespace rb
