// Unit tests for the AirModel: attachment state machine, radiation-gated
// delivery, interference, UL amplitudes and PRACH - driven directly
// (no packets), complementing the e2e suites.
#include <gtest/gtest.h>

#include "ran/air.h"

namespace rb {
namespace {

ChannelParams quiet_channel() {
  ChannelParams p;
  p.shadowing_sigma_db = 0.0;
  return p;
}

struct AirRig {
  AirModel air{ChannelModel(quiet_channel())};
  CellId cell;
  RuId ru;
  UeId ue;

  AirRig() {
    CellConfig c;
    c.bandwidth = MHz(100);
    c.max_layers = 4;
    c.pci = 1;
    c.finalize();
    cell = air.add_cell(c);
    RuSite s;
    s.pos = {10, 10, 0};
    s.n_antennas = 4;
    s.bandwidth = MHz(100);
    s.center_freq = c.center_freq;
    ru = air.add_ru(s);
    air.assign_ru(cell, ru, 0);
    UeConfig u;
    u.pos = {15, 10, 0};  // 5 m
    ue = air.add_ue(u);
  }

  /// Report full-grid radiation on all four ports (incl. SSB window).
  void radiate_all(std::int64_t slot) {
    RadiationReport rep;
    for (int p = 0; p < 4; ++p) {
      RadiationReport::PortReport pr;
      pr.port = p;
      pr.data = {{0, 273}};
      pr.ssb_sym = {{0, 273}};
      rep.ports.push_back(pr);
    }
    air.report_radiation(ru, slot, rep);
  }

  void attach() {
    // SSB occasion -> WaitPrach -> PRACH occasion -> complete.
    air.begin_slot(0);
    radiate_all(0);
    air.resolve_dl(0);
    air.complete_prach(cell, 19);
  }
};

TEST(Air, AttachRequiresSsbRadiation) {
  AirRig rig;
  rig.air.begin_slot(0);
  rig.air.resolve_dl(0);  // SSB occasion, but nothing radiated
  rig.air.complete_prach(rig.cell, 19);
  EXPECT_FALSE(rig.air.is_attached(rig.ue));

  rig.air.begin_slot(20);
  rig.radiate_all(20);
  rig.air.resolve_dl(20);  // now the UE hears the SSB -> WaitPrach
  rig.air.complete_prach(rig.cell, 39);
  EXPECT_TRUE(rig.air.is_attached(rig.ue));
  EXPECT_EQ(rig.air.serving_cell(rig.ue), rig.cell);
}

TEST(Air, PciLockRestrictsCellChoice) {
  AirRig rig;
  UeConfig u;
  u.pos = {15, 10, 0};
  u.pci_lock = 99;  // no such PCI
  const UeId locked = rig.air.add_ue(u);
  rig.air.begin_slot(0);
  rig.radiate_all(0);
  rig.air.resolve_dl(0);
  rig.air.complete_prach(rig.cell, 19);
  EXPECT_FALSE(rig.air.is_attached(locked));
}

TEST(Air, RlfAfterMissedSsbOccasions) {
  AirRig rig;
  rig.attach();
  ASSERT_TRUE(rig.air.is_attached(rig.ue));
  // SSB occasions pass with no radiation at all.
  for (int k = 1; k <= AirModel::kRlfSsbMisses; ++k) {
    const std::int64_t slot = 20 * k;
    rig.air.begin_slot(slot);
    rig.air.resolve_dl(slot);
  }
  EXPECT_FALSE(rig.air.is_attached(rig.ue));
}

TEST(Air, DeliveryGatedOnRadiatedCoverage) {
  AirRig rig;
  rig.attach();
  DlAlloc al;
  al.ue = rig.ue;
  al.start_prb = 0;
  al.n_prb = 100;
  al.layers = 4;
  al.assumed_sinr_db = 5.0;
  al.tbs_bits = 1000;

  // Radiation missing entirely: error, no bits.
  rig.air.begin_slot(100);
  rig.air.publish_dl_alloc(rig.cell, 100, {al});
  rig.air.resolve_dl(100);
  EXPECT_EQ(rig.air.dl_bits(rig.ue), 0u);
  EXPECT_EQ(rig.air.dl_unradiated(rig.ue), 1u);
  EXPECT_EQ(rig.air.dl_errors(rig.ue), 0u);  // not an MCS failure

  // Radiation covering the allocation: delivered.
  rig.air.begin_slot(101);
  rig.air.publish_dl_alloc(rig.cell, 101, {al});
  rig.radiate_all(101);
  rig.air.resolve_dl(101);
  EXPECT_EQ(rig.air.dl_bits(rig.ue), 1000u);
}

TEST(Air, PartialPortRadiationScalesLayers) {
  AirRig rig;
  rig.attach();
  DlAlloc al;
  al.ue = rig.ue;
  al.start_prb = 0;
  al.n_prb = 100;
  al.layers = 4;
  al.assumed_sinr_db = 0.0;
  al.tbs_bits = 1000;
  // Only two of four ports radiate (e.g. a broken dMIMO branch).
  RadiationReport rep;
  for (int p = 0; p < 2; ++p) {
    RadiationReport::PortReport pr;
    pr.port = p;
    pr.data = {{0, 273}};
    rep.ports.push_back(pr);
  }
  rig.air.begin_slot(50);
  rig.air.publish_dl_alloc(rig.cell, 50, {al});
  rig.air.report_radiation(rig.ru, 50, rep);
  rig.air.resolve_dl(50);
  EXPECT_EQ(rig.air.dl_bits(rig.ue), 500u);  // 2/4 layers usable
}

TEST(Air, CochannelInterferenceReducesThroughputDecision) {
  AirRig rig;
  // Second co-channel cell on another RU, far-ish away.
  CellConfig c2;
  c2.bandwidth = MHz(100);
  c2.pci = 2;
  c2.finalize();
  const CellId cell2 = rig.air.add_cell(c2);
  RuSite s2;
  s2.pos = {30, 10, 0};
  s2.n_antennas = 4;
  s2.bandwidth = MHz(100);
  s2.center_freq = c2.center_freq;
  const RuId ru2 = rig.air.add_ru(s2);
  rig.air.assign_ru(cell2, ru2, 0);
  rig.attach();

  DlAlloc al;
  al.ue = rig.ue;
  al.start_prb = 0;
  al.n_prb = 100;
  al.layers = 1;
  al.tbs_bits = 1000;

  // Clean slot: compute an assumed SINR that just passes.
  rig.air.begin_slot(200);
  rig.air.publish_dl_alloc(rig.cell, 200, {al});
  rig.radiate_all(200);
  rig.air.resolve_dl(200);
  const double clean_sinr = 26.0 + 6.02;  // 4 antennas, no interference

  // Interfered slot: the other cell transmits on the same PRBs.
  DlAlloc othr;
  othr.ue = -1;
  othr.start_prb = 0;
  othr.n_prb = 100;
  othr.layers = 4;
  al.assumed_sinr_db = clean_sinr - 1.0;  // would pass when clean
  rig.air.begin_slot(201);
  rig.air.publish_dl_alloc(rig.cell, 201, {al});
  rig.air.publish_dl_alloc(cell2, 201, {othr});
  rig.radiate_all(201);
  const auto errors_before = rig.air.dl_errors(rig.ue);
  rig.air.resolve_dl(201);
  EXPECT_GT(rig.air.dl_errors(rig.ue), errors_before)
      << "co-channel interference must fail an MCS chosen for clean air";
}

TEST(Air, UlAmplitudeReflectsAllocations) {
  AirRig rig;
  rig.attach();
  UlAlloc al;
  al.ue = rig.ue;
  al.start_prb = 50;
  al.n_prb = 20;
  rig.air.begin_slot(300);
  rig.air.publish_ul_alloc(rig.cell, 300, {al});
  const double idle = rig.air.ul_rx_amplitude(rig.ru, 300, 10);
  const double busy = rig.air.ul_rx_amplitude(rig.ru, 300, 60);
  EXPECT_NEAR(idle, AirModel::kNoiseRms, 1.0);
  EXPECT_GT(busy, 2.0 * AirModel::kNoiseRms);
}

TEST(Air, UlResolveCreditsOnceAndChecksSinr) {
  AirRig rig;
  rig.attach();
  UlAlloc al;
  al.ue = rig.ue;
  al.start_prb = 0;
  al.n_prb = 50;
  al.assumed_sinr_db = 5.0;  // well under the 13.2 dB at 5 m
  al.tbs_bits = 777;
  EXPECT_EQ(rig.air.resolve_ul_alloc(rig.cell, 300, al), 777);
  EXPECT_EQ(rig.air.ul_bits(rig.ue), 777u);
  al.assumed_sinr_db = 40.0;  // impossible MCS
  EXPECT_EQ(rig.air.resolve_ul_alloc(rig.cell, 301, al), 0);
}

TEST(Air, PrachVisibleOnlyDuringOccasionAndWait) {
  AirRig rig;
  // Before any SSB: idle UE, no PRACH.
  EXPECT_TRUE(rig.air.prach_rx(rig.ru, 19).empty());
  rig.air.begin_slot(0);
  rig.radiate_all(0);
  rig.air.resolve_dl(0);  // -> WaitPrach
  EXPECT_TRUE(rig.air.is_prach_occasion(19));
  EXPECT_FALSE(rig.air.is_prach_occasion(18));
  const auto txs = rig.air.prach_rx(rig.ru, 19);
  ASSERT_EQ(txs.size(), 1u);
  EXPECT_EQ(txs[0].ue, rig.ue);
  EXPECT_EQ(txs[0].target_cell, rig.cell);
  EXPECT_GT(txs[0].amp_rms,
            AirModel::kPrachDetectFactor * AirModel::kNoiseRms);
  // Wrong slot: nothing.
  EXPECT_TRUE(rig.air.prach_rx(rig.ru, 20).empty());
}

TEST(Air, ResetCountersClearsThroughput) {
  AirRig rig;
  rig.attach();
  UlAlloc al;
  al.ue = rig.ue;
  al.n_prb = 10;
  al.tbs_bits = 10;
  al.assumed_sinr_db = 0.0;
  rig.air.resolve_ul_alloc(rig.cell, 1, al);
  ASSERT_GT(rig.air.ul_bits(rig.ue), 0u);
  rig.air.reset_counters();
  EXPECT_EQ(rig.air.ul_bits(rig.ue), 0u);
  EXPECT_EQ(rig.air.dl_errors(rig.ue), 0u);
  EXPECT_TRUE(rig.air.is_attached(rig.ue));  // attachment survives
}

}  // namespace
}  // namespace rb
