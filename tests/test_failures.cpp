// Failure injection: the system's behaviour when parts break - late
// packets, dead links, PTP holdover, pool pressure, UE mobility loss.
#include <gtest/gtest.h>

#include "ran/ptp.h"
#include "sim/deployment.h"

namespace rb {
namespace {

CellConfig cell100() {
  CellConfig c;
  c.bandwidth = MHz(100);
  c.max_layers = 4;
  c.pci = 1;
  return c;
}

struct Rig {
  Deployment d;
  Deployment::DuHandle du;
  Deployment::RuHandle ru;
  UeId ue = -1;

  Rig() {
    du = d.add_du(cell100(), srsran_profile(), 0);
    RuSite s;
    s.pos = d.plan.ru_position(0, 1);
    s.n_antennas = 4;
    s.bandwidth = MHz(100);
    s.center_freq = cell100().center_freq;
    ru = d.add_ru(s, 0, du.du->fh());
    d.connect_direct(du, ru);
    ue = d.add_ue(d.plan.near_ru(0, 1, 5.0), &du, 300.0, 30.0);
  }
};

TEST(Failures, RuLinkLossCausesRlfAndRecovery) {
  Rig rig;
  ASSERT_TRUE(rig.d.attach_all(400));
  rig.d.measure(100);
  ASSERT_GT(rig.d.dl_mbps(rig.ue), 100.0);

  // Fiber cut: the UE loses SSB and declares radio-link failure after the
  // configured miss count.
  rig.ru.port->set_link_up(false);
  rig.d.engine.run_slots(AirModel::kRlfSsbMisses *
                             rig.du.du->config().cell.ssb.period_slots +
                         40);
  EXPECT_FALSE(rig.d.air.is_attached(rig.ue));

  // Repair: the UE re-attaches through SSB + PRACH.
  rig.ru.port->set_link_up(true);
  rig.d.engine.run_slots(200);
  EXPECT_TRUE(rig.d.air.is_attached(rig.ue));
  rig.d.measure(100);
  EXPECT_GT(rig.d.dl_mbps(rig.ue), 100.0);
}

TEST(Failures, UeWalksOutOfCoverageAndBack) {
  Rig rig;
  ASSERT_TRUE(rig.d.attach_all(400));
  rig.d.air.set_ue_position(rig.ue, Position{0.5, 0.5, 4});  // 4 floors up
  rig.d.engine.run_slots(200);
  EXPECT_FALSE(rig.d.air.is_attached(rig.ue));
  rig.d.air.set_ue_position(rig.ue, rig.d.plan.near_ru(0, 1, 5.0));
  rig.d.engine.run_slots(200);
  EXPECT_TRUE(rig.d.air.is_attached(rig.ue));
}

TEST(Failures, MiddleboxLatencyBeyondBudgetKillsUplink) {
  // A pathologically slow middlebox (e.g. misconfigured cost/worker
  // setup) makes UL U-plane miss the DU reception window.
  Deployment d;
  auto du = d.add_du(cell100(), srsran_profile(), 0);
  std::vector<Deployment::RuHandle> rus;
  std::vector<Deployment::RuHandle*> ptrs;
  for (int f = 0; f < 5; ++f) {
    RuSite s;
    s.pos = d.plan.ru_position(f, 1);
    s.n_antennas = 4;
    s.bandwidth = MHz(100);
    s.center_freq = cell100().center_freq;
    rus.push_back(d.add_ru(s, std::uint8_t(f), du.du->fh()));
  }
  for (auto& r : rus) ptrs.push_back(&r);
  // One worker for five RUs: the paper's 6.4.1 over-budget configuration.
  d.add_das(du, ptrs, DriverKind::Dpdk, /*workers=*/1);
  const UeId ue = d.add_ue(d.plan.near_ru(0, 1, 5.0), &du, 300.0, 30.0);
  ASSERT_TRUE(d.attach_all(600));
  d.measure(200);
  EXPECT_GT(d.dl_mbps(ue), 100.0);  // DL replication is cheap, unaffected
  EXPECT_LT(d.ul_mbps(ue), 5.0);    // merges blow the 30 us window
  EXPECT_GT(du.du->stats().late_drops, 0u);
}

TEST(Failures, PacketPoolExhaustionIsCountedNotFatal) {
  PacketPool tiny(3);
  auto a = tiny.alloc();
  auto b = tiny.alloc();
  auto c = tiny.alloc();
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(tiny.alloc());
  EXPECT_EQ(tiny.alloc_failures(), 5u);
  a.reset();
  EXPECT_TRUE(tiny.alloc());
}

TEST(Failures, PtpHoldoverViolatesDmimoBudget) {
  PtpGrandmaster gm(60);
  gm.add_node("ru0");
  gm.add_node("ru1");
  EXPECT_LE(gm.max_pairwise_offset_ns(), 60);
  gm.set_offset_ns("ru1", 900);  // holdover drift after GNSS loss
  EXPECT_FALSE(gm.locked("ru1"));
  EXPECT_GT(gm.max_pairwise_offset_ns(), 60);
}

TEST(Failures, StaleCplaneIsIgnoredByRu) {
  // A C-plane delayed past its slot window must be dropped by the RU, not
  // applied to a later slot.
  Rig rig;
  ASSERT_TRUE(rig.d.attach_all(400));
  const auto before = rig.ru.ru->stats().late_drops;
  // Inject a frame with a plausible header but an hour-late timestamp.
  CPlaneMsg m;
  m.direction = Direction::Downlink;
  m.sections.push_back({});
  auto p = PacketPool::default_pool().alloc();
  const std::size_t len = build_cplane_frame(p->raw(), EthHeader{}, EaxcId{},
                                             0, m, rig.du.du->fh());
  p->set_len(len);
  p->rx_time_ns = rig.d.engine.elapsed_ns() + 3'600'000'000'000ll;
  rig.du.port->send(std::move(p));
  rig.d.engine.run_slots(2);
  EXPECT_GT(rig.ru.ru->stats().late_drops, before);
}

}  // namespace
}  // namespace rb
