// Hitless operations (ISSUE 7): versioned serialization round-trips,
// corruption/truncation rejection with typed errors, whole-deployment
// checkpoint/restore determinism under chaos faults (serial and
// parallel), and zero-loss live reconfiguration at the slot barrier.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sim/deployment.h"
#include "sim/hitless.h"
#include "state/serialize.h"

namespace rb {
namespace {

using state::SectionInfo;
using state::StateError;
using state::StateReader;
using state::StateWriter;

// --- serialization layer ----------------------------------------------

TEST(StateSerialize, RoundTripsAllPrimitives) {
  StateWriter w;
  w.begin_section(state::kSecMeta, 3);
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.i32(-42);
  w.i64(-(1ll << 40));
  w.f64(-0.1234567890123);
  w.b(true);
  w.b(false);
  w.str("hello");
  const std::uint8_t raw[3] = {1, 2, 3};
  w.bytes(raw);
  w.end_section();
  const auto blob = w.finish();

  StateReader r(blob);
  SectionInfo info;
  ASSERT_TRUE(r.next_section(&info));
  EXPECT_EQ(info.id, std::uint32_t(state::kSecMeta));
  EXPECT_EQ(info.version, 3u);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -(1ll << 40));
  EXPECT_EQ(r.f64(), -0.1234567890123);
  EXPECT_TRUE(r.b());
  EXPECT_FALSE(r.b());
  EXPECT_EQ(r.str(), "hello");
  std::uint8_t out[3] = {};
  r.bytes(out);
  EXPECT_EQ(out[2], 3);
  EXPECT_EQ(r.section_remaining(), 0u);
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.next_section(&info));
  EXPECT_TRUE(r.ok());  // clean end of blob, not an error
}

TEST(StateSerialize, UnknownSectionsAreSkipped) {
  StateWriter w;
  w.begin_section(9999, 7);  // from a future writer
  w.u64(123);
  w.str("mystery");
  w.end_section();
  w.begin_section(state::kSecClock, 1);
  w.u64(77);
  w.end_section();
  const auto blob = w.finish();

  StateReader r(blob);
  SectionInfo info;
  std::uint64_t clock = 0;
  while (r.next_section(&info)) {
    if (info.id == state::kSecClock) clock = r.u64();
    r.skip_section();
  }
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(clock, 77u);
}

TEST(StateSerialize, BoolOutOfRangeIsBadValue) {
  StateWriter w;
  w.begin_section(state::kSecMeta, 1);
  w.u8(7);  // not a bool
  w.end_section();
  const auto blob = w.finish();
  StateReader r(blob);
  SectionInfo info;
  ASSERT_TRUE(r.next_section(&info));
  (void)r.b();
  EXPECT_EQ(r.error(), StateError::kBadValue);
  // Errors latch: further reads are zero, no UB.
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_FALSE(r.next_section(&info));
}

TEST(StateSerialize, CountGuardRejectsOversizedCounts) {
  StateWriter w;
  w.begin_section(state::kSecMeta, 1);
  w.u32(0xffffffffu);  // claims 4G elements in a tiny section
  w.end_section();
  const auto blob = w.finish();
  StateReader r(blob);
  SectionInfo info;
  ASSERT_TRUE(r.next_section(&info));
  EXPECT_EQ(r.count(8), 0u);
  EXPECT_EQ(r.error(), StateError::kBadValue);
}

std::vector<std::uint8_t> small_valid_blob() {
  StateWriter w;
  w.begin_section(state::kSecClock, 1);
  w.u64(42);
  w.str("payload");
  w.end_section();
  w.begin_section(state::kSecMeta, 1);
  for (int i = 0; i < 32; ++i) w.u32(std::uint32_t(i));
  w.end_section();
  return w.finish();
}

/// Drain a blob through the reader the way a loader would; returns the
/// latched error. Must never crash regardless of input.
StateError drain(const std::vector<std::uint8_t>& blob) {
  StateReader r(blob);
  SectionInfo info;
  while (r.next_section(&info)) {
    if (info.id == state::kSecClock) {
      (void)r.u64();
      (void)r.str();
    } else {
      for (std::uint32_t i = 0, n = r.count(4); i < n && r.ok(); ++i)
        (void)r.u32();
    }
    r.skip_section();
  }
  return r.error();
}

TEST(StateSerialize, EveryTruncationIsRejectedTyped) {
  const auto blob = small_valid_blob();
  ASSERT_EQ(drain(blob), StateError::kNone);
  for (std::size_t len = 0; len < blob.size(); ++len) {
    std::vector<std::uint8_t> cut(blob.begin(), blob.begin() + long(len));
    const StateError e = drain(cut);
    EXPECT_NE(e, StateError::kNone) << "prefix " << len << " accepted";
  }
}

TEST(StateSerialize, EveryByteFlipIsRejectedOrHarmlessTyped) {
  const auto blob = small_valid_blob();
  for (std::size_t i = 0; i < blob.size(); ++i) {
    for (std::uint8_t flip : {std::uint8_t(0x01), std::uint8_t(0x80)}) {
      std::vector<std::uint8_t> bad = blob;
      bad[i] ^= flip;
      // Must terminate with a typed result; payload corruption inside a
      // section must be caught by the CRC before any field is exposed.
      (void)drain(bad);
    }
  }
  // Flip in the middle of the first section's payload: always kBadCrc.
  std::vector<std::uint8_t> bad = blob;
  bad[12 + 20 + 4] ^= 0x40;  // header + section hdr + inside payload
  EXPECT_EQ(drain(bad), StateError::kBadCrc);
}

TEST(StateSerialize, NotAStateBlobIsBadMagic) {
  std::vector<std::uint8_t> junk = {'P', 'K', 0x03, 0x04, 0, 0, 0, 0,
                                    0,   0,   0,    0};
  EXPECT_EQ(drain(junk), StateError::kBadMagic);
  EXPECT_EQ(drain({}), StateError::kTruncated);
}

// --- whole-deployment checkpoint/restore ------------------------------

CellConfig cell100() {
  CellConfig c;
  c.bandwidth = MHz(100);
  c.max_layers = 4;
  c.pci = 1;
  return c;
}

/// DAS cell over three floors with chaos faults - the same shape as the
/// chaos suite, so checkpoint/restore is exercised against every kind of
/// cross-barrier state (rx queues, held packets, cache entries, partial
/// merges, RNG streams, EWMAs).
struct StateRig {
  Deployment d;
  Deployment::DuHandle du;
  std::vector<Deployment::RuHandle> rus;
  MiddleboxRuntime* rt = nullptr;
  ctrl::AdaptationController* ctrl = nullptr;
  std::vector<UeId> ues;

  explicit StateRig(const exec::ExecPolicy& policy = {},
                    bool with_ctrl = false) {
    d.engine.set_exec_policy(policy);
    du = d.add_du(cell100(), srsran_profile(), 0);
    std::vector<Deployment::RuHandle*> ptrs;
    for (int f = 0; f < 3; ++f) {
      RuSite site;
      site.pos = d.plan.ru_position(f, 1);
      site.n_antennas = 4;
      site.bandwidth = MHz(100);
      site.center_freq = du.du->config().cell.center_freq;
      rus.push_back(d.add_ru(site, std::uint8_t(f), du.du->fh()));
    }
    for (auto& r : rus) ptrs.push_back(&r);
    rt = &d.add_das(du, ptrs, DriverKind::Dpdk, 2);
    for (int f = 0; f < 3; ++f)
      ues.push_back(d.add_ue(d.plan.near_ru(f, 1, 5.0), &du, 150.0, 15.0));
    if (with_ctrl) ctrl = &d.add_controller();
  }

  void add_chaos(std::uint64_t seed, bool watch = false) {
    FaultPlan ul0;
    ul0.loss = 0.01;
    ul0.jitter_ns = 20000;
    ul0.seed = seed ^ 0xa1;
    FaultPlan dl0;
    dl0.delay_ns = 10000;
    dl0.seed = seed ^ 0xa2;
    FaultyLink& l0 = d.add_fault(*rus[0].port, ul0, dl0);

    FaultPlan ul1;
    ul1.ge_enter_bad = 0.004;
    ul1.ge_exit_bad = 0.25;
    ul1.ge_loss_bad = 0.5;
    ul1.reorder = 0.01;
    ul1.seed = seed ^ 0xb1;
    FaultPlan dl1;
    dl1.duplicate = 0.02;
    dl1.corrupt = 0.01;
    dl1.seed = seed ^ 0xb2;
    FaultyLink& l1 = d.add_fault(*rus[1].port, ul1, dl1);

    if (watch && ctrl) {
      d.ctrl_watch(*ctrl, l0, *rt, rus[0]);
      d.ctrl_watch(*ctrl, l1, *rt, rus[1]);
    }
  }
};

/// Determinism fingerprint: every runtime counter, fault counter,
/// controller state and UE cumulative bit count.
std::string snapshot(Deployment& d, const std::vector<UeId>& ues) {
  std::ostringstream os;
  for (const auto& rt : d.runtimes)
    for (const auto& [k, v] : rt->telemetry().counters())
      os << k << "=" << v << "\n";
  os << d.fault_dump();
  os << d.ctrl_dump();
  for (UeId ue : ues)
    os << "ue" << ue << " dl=" << d.air.dl_bits(ue)
       << " ul=" << d.air.ul_bits(ue) << "\n";
  return os.str();
}

TEST(Checkpoint, RoundTripReserializeIsByteIdentical) {
  for (std::uint64_t seed : {1ull, 0xfeedull, 0xc0ffeeull}) {
    StateRig a;
    ASSERT_TRUE(a.d.attach_all(600));
    a.add_chaos(seed);
    a.d.engine.run_slots(237);  // odd count: land mid burst/flap phases
    const auto blob = checkpoint(a.d);
    ASSERT_FALSE(blob.empty());

    StateRig b;
    b.add_chaos(seed);
    const RestoreResult res = restore(b.d, blob);
    ASSERT_TRUE(res.ok()) << res.detail << ": "
                          << state::error_name(res.error);
    const auto blob2 = checkpoint(b.d);
    EXPECT_EQ(blob, blob2) << "seed " << seed;
  }
}

TEST(Checkpoint, RestoredRunMatchesUninterruptedSerial) {
  const int kN = 300;
  StateRig a;
  ASSERT_TRUE(a.d.attach_all(600));
  a.add_chaos(0xdead5eed);
  a.d.engine.run_slots(kN);
  const auto blob = checkpoint(a.d);
  a.d.engine.run_slots(kN);
  const std::string uninterrupted = snapshot(a.d, a.ues);

  StateRig b;
  b.add_chaos(0xdead5eed);
  const RestoreResult res = restore(b.d, blob);
  ASSERT_TRUE(res.ok()) << res.detail;
  EXPECT_EQ(b.d.engine.current_slot(), a.d.engine.current_slot() - kN);
  b.d.engine.run_slots(kN);
  EXPECT_EQ(snapshot(b.d, b.ues), uninterrupted);
}

TEST(Checkpoint, RestoredRunMatchesUninterruptedParallel4) {
  const int kN = 300;
  StateRig a(exec::ExecPolicy::parallel(4));
  ASSERT_TRUE(a.d.attach_all(600));
  a.add_chaos(0xdead5eed);
  a.d.engine.run_slots(kN);
  const auto blob = checkpoint(a.d);
  a.d.engine.run_slots(kN);
  const std::string uninterrupted = snapshot(a.d, a.ues);

  // Restore into a parallel(4) rig - and the blob itself must match the
  // serial checkpoint (execution policy is not state).
  StateRig b(exec::ExecPolicy::parallel(4));
  b.add_chaos(0xdead5eed);
  const RestoreResult res = restore(b.d, blob);
  ASSERT_TRUE(res.ok()) << res.detail;
  b.d.engine.run_slots(kN);
  EXPECT_EQ(snapshot(b.d, b.ues), uninterrupted);
}

TEST(Checkpoint, ControllerStateSurvivesRestore) {
  StateRig a({}, /*with_ctrl=*/true);
  ASSERT_TRUE(a.d.attach_all(600));
  a.add_chaos(0xabc, /*watch=*/true);
  a.d.engine.run_slots(400);
  const auto blob = checkpoint(a.d);
  a.d.engine.run_slots(200);
  const std::string uninterrupted = snapshot(a.d, a.ues);

  StateRig b({}, /*with_ctrl=*/true);
  b.add_chaos(0xabc, /*watch=*/true);
  const RestoreResult res = restore(b.d, blob);
  ASSERT_TRUE(res.ok()) << res.detail;
  b.d.engine.run_slots(200);
  EXPECT_EQ(snapshot(b.d, b.ues), uninterrupted);
}

TEST(Checkpoint, CorruptOrTruncatedBlobsAreRejectedTyped) {
  StateRig a;
  ASSERT_TRUE(a.d.attach_all(600));
  a.add_chaos(7);
  a.d.engine.run_slots(100);
  const auto blob = checkpoint(a.d);

  // Truncations at a spread of lengths: typed rejection, no UB.
  for (std::size_t len : {std::size_t(0), std::size_t(7), std::size_t(11),
                          blob.size() / 3, blob.size() / 2,
                          blob.size() - 1}) {
    StateRig b;
    b.add_chaos(7);
    std::vector<std::uint8_t> cut(blob.begin(), blob.begin() + long(len));
    const RestoreResult res = restore(b.d, cut);
    EXPECT_FALSE(res.ok()) << "len " << len;
    EXPECT_NE(res.error, StateError::kNone);
  }
  // Byte flips across the blob: every restore must fail typed (the CRC
  // catches payload damage; header damage is caught structurally).
  for (std::size_t i = 0; i < blob.size();
       i += std::max<std::size_t>(1, blob.size() / 97)) {
    StateRig b;
    b.add_chaos(7);
    std::vector<std::uint8_t> bad = blob;
    bad[i] ^= 0x20;
    const RestoreResult res = restore(b.d, bad);
    EXPECT_FALSE(res.ok()) << "flip at " << i;
  }
  // Shape mismatch: restoring a 3-RU blob into a 3-RU rig with an extra
  // fault link fails with kMismatch before touching components.
  {
    StateRig b;
    b.add_chaos(7);
    FaultPlan extra;
    extra.loss = 0.5;
    b.d.add_fault(*b.rus[2].port, extra, {});
    const RestoreResult res = restore(b.d, blob);
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.error, StateError::kMismatch);
  }
}

// --- live reconfiguration ---------------------------------------------

TEST(Reconfig, NetNoOpBatchesAreByteIdenticalToNoReconfig) {
  // Baseline: chaos soak, no reconfig manager at all.
  StateRig a;
  ASSERT_TRUE(a.d.attach_all(600));
  a.add_chaos(0x5eed);
  a.d.engine.run_slots(600);
  const std::string baseline = snapshot(a.d, a.ues);

  // Same soak with 60 reconfig batches, each an eject+readmit pair that
  // nets out to no change. The barrier apply itself must not perturb a
  // single packet: zero loss attributable to reconfig, proven by
  // byte-identical telemetry/fault/UE fingerprints.
  StateRig b;
  ASSERT_TRUE(b.d.attach_all(600));
  b.add_chaos(0x5eed);
  ReconfigManager mgr(b.d);
  for (int i = 0; i < 60; ++i) {
    ReconfigOp eject;
    eject.kind = ReconfigOp::Kind::DasSetMember;
    eject.index = 0;
    eject.mac = b.rus[2].mac;
    eject.enable = false;
    ReconfigOp readmit = eject;
    readmit.enable = true;
    mgr.queue(eject);
    mgr.queue(readmit);
    b.d.engine.run_slots(10);
  }
  EXPECT_EQ(mgr.batches(), 60u);
  EXPECT_EQ(mgr.applied(), 120u);
  EXPECT_EQ(mgr.rejected(), 0u);
  EXPECT_EQ(snapshot(b.d, b.ues), baseline);
}

TEST(Reconfig, RequestDiffsDesiredAgainstLiveState) {
  StateRig rig;
  ASSERT_TRUE(rig.d.attach_all(600));
  ReconfigManager mgr(rig.d);

  DesiredConfig want;
  want.das_members.push_back({0, rig.rus[0].mac, true});  // already true
  EXPECT_EQ(mgr.request(want), 0u);  // converged: nothing queued

  want.das_members.clear();
  want.das_members.push_back({0, rig.rus[1].mac, false});
  EXPECT_EQ(mgr.request(want), 1u);
  EXPECT_EQ(mgr.pending(), 1u);
  rig.d.engine.run_slots(1);  // barrier applies
  EXPECT_EQ(mgr.pending(), 0u);
  EXPECT_EQ(mgr.applied(), 1u);
  auto* das = dynamic_cast<DasMiddlebox*>(&rig.d.runtimes[0]->app());
  ASSERT_NE(das, nullptr);
  EXPECT_FALSE(das->member_active(rig.rus[1].mac));
  EXPECT_EQ(mgr.request(want), 0u);  // now converged

  // Invalid target index: rejected, not crashed.
  DesiredConfig bad;
  bad.ru_widths.push_back({99, 7});
  EXPECT_EQ(mgr.request(bad), 0u);
  EXPECT_EQ(mgr.rejected(), 1u);
}

TEST(Reconfig, MembershipChurnUnderChaosKeepsTrafficFlowing) {
  StateRig rig;
  ASSERT_TRUE(rig.d.attach_all(600));
  rig.add_chaos(0xc4a05);
  ReconfigManager mgr(rig.d);
  auto* das = dynamic_cast<DasMiddlebox*>(&rig.d.runtimes[0]->app());
  ASSERT_NE(das, nullptr);

  // 50 real membership changes: eject an RU for 10 slots, readmit,
  // rotating over the three floors, all while chaos faults fire.
  for (int i = 0; i < 50; ++i) {
    const MacAddr mac = rig.rus[std::size_t(i % 3)].mac;
    ReconfigOp op;
    op.kind = ReconfigOp::Kind::DasSetMember;
    op.index = 0;
    op.mac = mac;
    op.enable = false;
    mgr.queue(op);
    rig.d.engine.run_slots(10);
    op.enable = true;
    mgr.queue(op);
    rig.d.engine.run_slots(10);
  }
  EXPECT_EQ(mgr.applied(), 100u);
  EXPECT_EQ(mgr.rejected(), 0u);
  EXPECT_EQ(das->active_members(), 3u);
  // The combiner never stalled and no port overflowed: the reshape
  // itself dropped nothing.
  EXPECT_EQ(rig.rt->telemetry().counter("das_combiner_stalls"), 0u);
  for (const auto& p : rig.d.ports) EXPECT_EQ(p->stats().rx_dropped, 0u);
  // Traffic still flows both ways after 50 reshapes.
  rig.d.measure(200);
  double dl = 0, ul = 0;
  for (UeId ue : rig.ues) {
    dl += rig.d.dl_mbps(ue);
    ul += rig.d.ul_mbps(ue);
  }
  EXPECT_GT(dl, 10.0);
  EXPECT_GT(ul, 1.0);
}

TEST(Reconfig, CtrlRetuneAndRuWidthApplyAtBarrier) {
  StateRig rig({}, /*with_ctrl=*/true);
  ASSERT_TRUE(rig.d.attach_all(600));
  ReconfigManager mgr(rig.d);

  DesiredConfig want;
  ctrl::CtrlConfig tuned = rig.ctrl->config();
  tuned.loss_eject = 0.5;
  tuned.hold_slots = 16;
  want.ctrl_tunings.push_back({0, tuned});
  want.ru_widths.push_back({0, 7});
  EXPECT_EQ(mgr.request(want), 2u);
  rig.d.engine.run_slots(1);
  EXPECT_EQ(rig.ctrl->config().loss_eject, 0.5);
  EXPECT_EQ(rig.ctrl->config().hold_slots, 16);
  EXPECT_EQ(rig.rus[0].ru->ul_iq_width(), 7);
  // Structural identity is preserved across a retune.
  EXPECT_EQ(rig.ctrl->config().name, "ctrl0");
  // Re-request: converged.
  EXPECT_EQ(mgr.request(want), 0u);
}

TEST(Reconfig, MgmtVerbReportsStatusAndLog) {
  StateRig rig;
  ASSERT_TRUE(rig.d.attach_all(600));
  ReconfigManager mgr(rig.d);
  MgmtEndpoint mgmt(*rig.d.runtimes[0]);
  mgmt.set_reconfig(&mgr);

  EXPECT_NE(mgmt.handle("reconfig status").find("batches=0"),
            std::string::npos);
  ReconfigOp op;
  op.kind = ReconfigOp::Kind::DasSetMember;
  op.index = 0;
  op.mac = rig.rus[2].mac;
  op.enable = false;
  mgr.queue(op);
  EXPECT_EQ(mgmt.handle("reconfig pending"), "1");
  rig.d.engine.run_slots(1);
  const std::string status = mgmt.handle("reconfig status");
  EXPECT_NE(status.find("batches=1"), std::string::npos);
  EXPECT_NE(status.find("applied=1"), std::string::npos);
  EXPECT_NE(mgmt.handle("reconfig log").find("eject"), std::string::npos);
}

}  // namespace
}  // namespace rb
