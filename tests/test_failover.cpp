// End-to-end test of the resilience middlebox (paper 8.1 extension):
// heartbeat-driven failover from a dead primary DU to a warm standby,
// and failback once the primary recovers.
#include <gtest/gtest.h>

#include "sim/deployment.h"

namespace rb {
namespace {

struct FoRig {
  Deployment d;
  Deployment::DuHandle primary, standby;
  Deployment::RuHandle ru;
  FailoverMiddlebox* mb = nullptr;
  UeId ue = -1;

  FoRig() {
    CellConfig c;
    c.bandwidth = MHz(100);
    c.max_layers = 4;
    c.pci = 7;  // both DUs announce the same cell identity
    primary = d.add_du(c, srsran_profile(), 0);
    standby = d.add_du(c, srsran_profile(), 1);
    RuSite s;
    s.pos = d.plan.ru_position(0, 1);
    s.n_antennas = 4;
    s.bandwidth = MHz(100);
    s.center_freq = c.center_freq;
    ru = d.add_ru(s, 0, primary.du->fh());
    auto& rt = d.add_failover(primary, standby, ru);
    mb = dynamic_cast<FailoverMiddlebox*>(&rt.app());
    ue = d.add_ue(d.plan.near_ru(0, 1, 5.0), nullptr, 0, 0);
    // The subscriber's flow is provisioned on both DUs; only the serving
    // one schedules it.
    d.traffic.set_flow(*primary.du, ue, 300.0, 30.0);
    d.traffic.set_flow(*standby.du, ue, 300.0, 30.0);
  }
};

TEST(E2eFailover, PrimaryServesWhileHealthy) {
  FoRig rig;
  ASSERT_TRUE(rig.d.attach_all(600));
  EXPECT_EQ(rig.mb->active_port(), FailoverMiddlebox::kPrimary);
  EXPECT_EQ(rig.d.air.serving_cell(rig.ue), rig.primary.cell);
  rig.d.measure(200);
  EXPECT_GT(rig.d.dl_mbps(rig.ue), 100.0);
  EXPECT_EQ(rig.mb->failovers(), 0);
}

TEST(E2eFailover, DuCrashTriggersSwitchoverAndRecovery) {
  FoRig rig;
  ASSERT_TRUE(rig.d.attach_all(600));
  rig.d.measure(200);
  ASSERT_GT(rig.d.dl_mbps(rig.ue), 100.0);

  // Kill the primary DU process.
  rig.primary.du->set_failed(true);
  rig.d.engine.run_slots(10);
  EXPECT_EQ(rig.mb->active_port(), FailoverMiddlebox::kStandby)
      << "heartbeat loss should switch within a few slots";
  EXPECT_EQ(rig.mb->failovers(), 1);
  // Hysteresis state is published as gauges (scraped via mgmt "prom").
  const auto& tel = rig.d.runtimes[0]->telemetry();
  EXPECT_EQ(tel.gauge("failover_active"),
            double(FailoverMiddlebox::kStandby));
  EXPECT_GE(tel.gauge("failover_last_switch_slot"), 0.0);
  EXPECT_EQ(tel.gauge("failover_primary_fresh_streak"), 0.0)
      << "a dead primary must not accumulate a fresh streak";

  // Same PCI: the UE never notices the switch; traffic just continues
  // through the standby's scheduler.
  rig.d.engine.run_slots(60);
  EXPECT_TRUE(rig.d.air.is_attached(rig.ue));
  EXPECT_TRUE(rig.d.air.same_cell_identity(
      rig.d.air.serving_cell(rig.ue), rig.standby.cell));
  rig.d.measure(200);
  EXPECT_GT(rig.d.dl_mbps(rig.ue), 100.0);
}

TEST(E2eFailover, FailbackWhenPrimaryReturns) {
  FoRig rig;
  ASSERT_TRUE(rig.d.attach_all(600));
  rig.primary.du->set_failed(true);
  rig.d.engine.run_slots(400);
  ASSERT_EQ(rig.mb->active_port(), FailoverMiddlebox::kStandby);

  rig.primary.du->set_failed(false);
  rig.d.engine.run_slots(10);
  EXPECT_EQ(rig.mb->active_port(), FailoverMiddlebox::kPrimary);
  rig.d.engine.run_slots(300);
  EXPECT_TRUE(rig.d.air.is_attached(rig.ue));
  rig.d.measure(200);
  EXPECT_GT(rig.d.dl_mbps(rig.ue), 100.0);
}

TEST(E2eFailover, FlappingPrimaryCausesExactlyOneFailover) {
  // A primary whose fronthaul link flaps every few slots used to bounce
  // the RU between DUs on every revival; with hysteresis the middlebox
  // switches once, rides out the storm on the standby, and fails back a
  // single time once the primary is confirmed healthy.
  FoRig rig;
  ASSERT_TRUE(rig.d.attach_all(600));
  rig.mb->on_mgmt("set-dwell 60");
  rig.mb->on_mgmt("set-confirm 20");

  const std::int64_t s0 = rig.d.engine.current_slot();
  FaultPlan flappy;  // DU->middlebox heartbeat direction
  flappy.flaps = {{s0 + 5, s0 + 15}, {s0 + 17, s0 + 27}, {s0 + 29, s0 + 39}};
  rig.d.add_fault(*rig.primary.port, flappy);

  rig.d.engine.run_slots(50);
  EXPECT_EQ(rig.mb->active_port(), FailoverMiddlebox::kStandby);
  EXPECT_EQ(rig.mb->failovers(), 1) << "flap storm must not ping-pong";

  // The primary is stable from slot s0+39 on; exactly one failback, and
  // only after the confirmation window.
  rig.d.engine.run_slots(100);
  EXPECT_EQ(rig.mb->active_port(), FailoverMiddlebox::kPrimary);
  EXPECT_EQ(rig.mb->failovers(), 1);
  rig.d.measure(200);
  EXPECT_GT(rig.d.dl_mbps(rig.ue), 100.0);
}

TEST(E2eFailover, FailbackWaitsForConfirmation) {
  FoRig rig;
  ASSERT_TRUE(rig.d.attach_all(600));
  rig.mb->on_mgmt("set-confirm 30");
  rig.primary.du->set_failed(true);
  rig.d.engine.run_slots(10);
  ASSERT_EQ(rig.mb->active_port(), FailoverMiddlebox::kStandby);

  rig.primary.du->set_failed(false);
  rig.d.engine.run_slots(10);
  EXPECT_EQ(rig.mb->active_port(), FailoverMiddlebox::kStandby)
      << "a freshly revived primary is not yet trusted";
  rig.d.engine.run_slots(40);
  EXPECT_EQ(rig.mb->active_port(), FailoverMiddlebox::kPrimary);
}

TEST(E2eFailover, NoSwitchoverWhenStandbyAlsoDead) {
  FoRig rig;
  ASSERT_TRUE(rig.d.attach_all(600));
  rig.primary.du->set_failed(true);
  rig.standby.du->set_failed(true);
  rig.d.engine.run_slots(50);
  // Nobody alive: stay put rather than flap.
  EXPECT_EQ(rig.mb->failovers(), 0);
}

}  // namespace
}  // namespace rb
