// End-to-end PRB monitoring (paper 4.4 / 6.2.4, Figure 10c): the
// middlebox's BFP-exponent estimate tracks the MAC scheduler's ground
// truth across offered loads, at sub-millisecond (per-slot) granularity.
#include <gtest/gtest.h>

#include <numeric>

#include "sim/deployment.h"

namespace rb {
namespace {

struct MonRig {
  Deployment d;
  Deployment::DuHandle du;
  Deployment::RuHandle ru;
  MiddleboxRuntime* rt = nullptr;
  PrbMonitorMiddlebox* mon = nullptr;
  UeId ue = -1;

  MonRig() {
    CellConfig c;
    c.bandwidth = MHz(100);
    c.max_layers = 4;
    du = d.add_du(c, srsran_profile(), 0);
    RuSite s;
    s.pos = d.plan.ru_position(0, 1);
    s.n_antennas = 4;
    s.bandwidth = MHz(100);
    s.center_freq = c.center_freq;
    ru = d.add_ru(s, 0, du.du->fh());
    rt = &d.add_prbmon(du, ru);
    mon = dynamic_cast<PrbMonitorMiddlebox*>(&rt->app());
    ue = d.add_ue(d.plan.near_ru(0, 1, 5.0), &du, 0.0, 0.0);
  }

  /// Mean estimated and ground-truth DL utilization over a window.
  void run_load(double dl_mbps, double ul_mbps, int slots, double* est_dl,
                double* truth_dl, double* est_ul, double* truth_ul) {
    d.traffic.set_flow(*du.du, ue, dl_mbps, ul_mbps);
    d.engine.run_slots(60);  // settle
    mon->clear_estimates();
    du.du->scheduler().clear_utilization_log();
    d.engine.run_slots(slots);

    double e_dl = 0, e_ul = 0;
    int n_dl = 0, n_ul = 0;
    for (const auto& e : mon->estimates()) {
      if (e.dl_symbols > 0) {
        e_dl += e.dl_util;
        ++n_dl;
      }
      if (e.ul_symbols > 0) {
        e_ul += e.ul_util;
        ++n_ul;
      }
    }
    *est_dl = n_dl ? e_dl / n_dl : 0.0;
    *est_ul = n_ul ? e_ul / n_ul : 0.0;

    double t_dl = 0, t_ul = 0;
    int td = 0, tu = 0;
    for (const auto& s : du.du->scheduler().utilization_log()) {
      if (s.dl_slot) {
        t_dl += double(s.dl_prbs) / s.total_prbs;
        ++td;
      }
      if (s.ul_slot) {
        t_ul += double(s.ul_prbs) / s.total_prbs;
        ++tu;
      }
    }
    *truth_dl = td ? t_dl / td : 0.0;
    *truth_ul = tu ? t_ul / tu : 0.0;
  }
};

TEST(E2ePrbMon, IdleCellEstimatesNearZero) {
  MonRig rig;
  ASSERT_TRUE(rig.d.attach_all(400));
  double est_dl, truth_dl, est_ul, truth_ul;
  rig.run_load(0.0, 0.0, 200, &est_dl, &truth_dl, &est_ul, &truth_ul);
  EXPECT_LT(est_dl, 0.10);  // only SSB symbols show energy
  EXPECT_LT(est_ul, 0.05);  // noise stays below thr_ul
}

TEST(E2ePrbMon, EstimateTracksGroundTruthAcrossLoads) {
  MonRig rig;
  ASSERT_TRUE(rig.d.attach_all(400));
  for (double mbps : {100.0, 300.0, 500.0, 700.0}) {
    double est_dl, truth_dl, est_ul, truth_ul;
    rig.run_load(mbps, mbps / 10.0, 300, &est_dl, &truth_dl, &est_ul,
                 &truth_ul);
    EXPECT_NEAR(est_dl, truth_dl, 0.08)
        << "DL estimate diverged at " << mbps << " Mbps";
    EXPECT_NEAR(est_ul, truth_ul, 0.10)
        << "UL estimate diverged at " << mbps << " Mbps";
  }
}

TEST(E2ePrbMon, TransparentForwardingPreservesThroughput) {
  MonRig rig;
  ASSERT_TRUE(rig.d.attach_all(400));
  rig.d.traffic.set_flow(*rig.du.du, rig.ue, 1200.0, 100.0);
  rig.d.measure(300);
  EXPECT_NEAR(rig.d.dl_mbps(rig.ue), 898.0, 898.0 * 0.12);
  EXPECT_EQ(rig.du.du->stats().late_drops, 0u);
  EXPECT_EQ(rig.ru.ru->stats().late_drops, 0u);
}

TEST(E2ePrbMon, PublishesSubMillisecondTelemetry) {
  MonRig rig;
  ASSERT_TRUE(rig.d.attach_all(400));
  int samples = 0;
  rig.rt->telemetry().subscribe(
      [&](const TelemetrySample& s) {
        if (s.key == "prb_util_dl") ++samples;
      });
  rig.d.traffic.set_flow(*rig.du.du, rig.ue, 200.0, 0.0);
  rig.d.engine.run_slots(100);
  // One DL sample per slot = every 0.5 ms.
  EXPECT_GE(samples, 90);
}

}  // namespace
}  // namespace rb
