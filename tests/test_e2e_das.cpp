// End-to-end DAS (paper 4.1 / 6.2.1): one 100 MHz cell distributed over
// five RUs (one per floor). UEs on upper floors can only attach because
// the middlebox replicates the signal; uplink flows only because it merges
// the per-RU streams.
#include <gtest/gtest.h>

#include "sim/deployment.h"

namespace rb {
namespace {

struct DasRig {
  Deployment d;
  Deployment::DuHandle du;
  std::vector<Deployment::RuHandle> rus;
  MiddleboxRuntime* rt = nullptr;

  // Five RUs exceed the single-core uplink merge budget (paper 6.4.1:
  // "by adding one extra CPU core, the solution can scale beyond five
  // RUs"), so the rig runs the middlebox with two workers by default.
  explicit DasRig(int n_floors = 5, DriverKind driver = DriverKind::Dpdk,
                  int workers = 2) {
    CellConfig c;
    c.bandwidth = MHz(100);
    c.max_layers = 4;
    c.pci = 1;
    du = d.add_du(c, srsran_profile(), 0);
    std::vector<Deployment::RuHandle*> ptrs;
    for (int f = 0; f < n_floors; ++f) {
      RuSite site;
      site.pos = d.plan.ru_position(f, 1);
      site.n_antennas = 4;
      site.bandwidth = MHz(100);
      site.center_freq = c.center_freq;
      rus.push_back(d.add_ru(site, std::uint8_t(f), du.du->fh()));
    }
    for (auto& r : rus) ptrs.push_back(&r);
    rt = &d.add_das(du, ptrs, driver, workers);
  }
};

TEST(E2eDas, UpperFloorUeCannotAttachWithoutDas) {
  // Baseline: single RU on the ground floor, UE on floor 3.
  Deployment d;
  CellConfig c;
  c.bandwidth = MHz(100);
  c.max_layers = 4;
  auto du = d.add_du(c, srsran_profile(), 0);
  RuSite site;
  site.pos = d.plan.ru_position(0, 1);
  site.n_antennas = 4;
  site.bandwidth = MHz(100);
  site.center_freq = c.center_freq;
  auto ru = d.add_ru(site, 0, du.du->fh());
  d.connect_direct(du, ru);
  const UeId far = d.add_ue(d.plan.near_ru(3, 1, 5.0));
  d.engine.run_slots(200);
  EXPECT_FALSE(d.air.is_attached(far));  // weak signal through 3 floors
}

TEST(E2eDas, AllFloorsAttachThroughDas) {
  DasRig rig;
  std::vector<UeId> ues;
  for (int f = 0; f < 5; ++f)
    ues.push_back(rig.d.add_ue(rig.d.plan.near_ru(f, 1, 5.0), &rig.du,
                               50.0, 5.0));
  ASSERT_TRUE(rig.d.attach_all(600));
  for (UeId ue : ues) EXPECT_TRUE(rig.d.air.is_attached(ue));
  EXPECT_GT(rig.rt->telemetry().counter("pkts_replicated"), 0u);
}

TEST(E2eDas, AggregateThroughputMatchesSingleRuBaseline) {
  // Paper Figure 10a: DAS across five floors delivers the same aggregate
  // DL/UL throughput as the single-RU baseline.
  double base_dl = 0, base_ul = 0;
  {
    Deployment d;
    CellConfig c;
    c.bandwidth = MHz(100);
    c.max_layers = 4;
    auto du = d.add_du(c, srsran_profile(), 0);
    RuSite site;
    site.pos = d.plan.ru_position(0, 1);
    site.n_antennas = 4;
    site.bandwidth = MHz(100);
    site.center_freq = c.center_freq;
    auto ru = d.add_ru(site, 0, du.du->fh());
    d.connect_direct(du, ru);
    const UeId a = d.add_ue(d.plan.near_ru(0, 1, 4.0), &du, 600.0, 50.0);
    const UeId b = d.add_ue(d.plan.near_ru(0, 1, -4.0), &du, 600.0, 50.0);
    ASSERT_TRUE(d.attach_all(600));
    d.measure(400);
    base_dl = d.dl_mbps(a) + d.dl_mbps(b);
    base_ul = d.ul_mbps(a) + d.ul_mbps(b);
  }
  DasRig rig;
  std::vector<UeId> ues;
  for (int f = 0; f < 5; ++f)
    ues.push_back(rig.d.add_ue(rig.d.plan.near_ru(f, 1, 4.0), &rig.du,
                               600.0, 50.0));
  ASSERT_TRUE(rig.d.attach_all(600));
  rig.d.measure(400);
  double das_dl = 0, das_ul = 0;
  for (UeId ue : ues) {
    das_dl += rig.d.dl_mbps(ue);
    das_ul += rig.d.ul_mbps(ue);
  }
  EXPECT_NEAR(das_dl, base_dl, base_dl * 0.12);
  EXPECT_NEAR(das_ul, base_ul, base_ul * 0.15);
  EXPECT_GT(rig.rt->telemetry().counter("das_merges"), 0u);
  EXPECT_EQ(rig.rt->telemetry().counter("das_merge_failures"), 0u);
}

TEST(E2eDas, UplinkSurvivesOneRuLinkFailure) {
  // Failure injection: losing one RU's link used to stall the uplink
  // combine forever (the merge waited for all constituents). The
  // per-symbol combine deadline now merges what arrived, so the uplink
  // degrades to a 4-of-5 combine instead of dying.
  DasRig rig;
  const UeId ue = rig.d.add_ue(rig.d.plan.near_ru(0, 1, 5.0), &rig.du,
                               200.0, 20.0);
  ASSERT_TRUE(rig.d.attach_all(600));
  rig.d.measure(200);
  const double ul_before = rig.d.ul_mbps(ue);
  ASSERT_GT(ul_before, 1.0);
  ASSERT_GT(rig.d.dl_mbps(ue), 10.0);

  rig.rus[4].port->set_link_up(false);  // top-floor RU dies
  rig.d.measure(200);
  EXPECT_GT(rig.d.ul_mbps(ue), ul_before * 0.5);  // partial combine carries it
  EXPECT_GT(rig.d.dl_mbps(ue), 10.0);             // replication unaffected
  EXPECT_GT(rig.rt->telemetry().counter("das_partial_merges"), 0u);
  EXPECT_GT(rig.rt->telemetry().counter("das_missing_copies"), 0u);
  EXPECT_EQ(rig.rt->telemetry().counter("das_combiner_stalls"), 0u);
}

}  // namespace
}  // namespace rb
