// SIMD kernel layer tests: scalar-vs-tier bit-exactness, dispatch
// controls, the negative-mantissa UB regression, corrupt-input fuzz, and
// the zero-allocation guarantees of the combine hot path (scratch arenas,
// SmallVec tx queue, PacketPool magazines).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <random>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/iq_stats.h"
#include "common/small_vec.h"
#include "core/cache.h"
#include "core/middlebox.h"
#include "iq/kernels/bitpack.h"
#include "iq/kernels/kernels.h"
#include "iq/prb.h"
#include "net/packet.h"
#include "obs/export.h"
#include "obs/obs.h"

// ----------------------------------------------------------------------
// Counting allocator: every global new/delete in this binary bumps the
// counter, so a test can assert a code region performs zero allocations.
// ----------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* counted_alloc(std::size_t n, std::align_val_t a) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t align =
      std::size_t(a) < sizeof(void*) ? sizeof(void*) : std::size_t(a);
  void* p = nullptr;
  if (posix_memalign(&p, align, n ? n : 1) != 0) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_alloc(n, a);
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_alloc(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace rb {
namespace {

std::uint64_t allocs() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

std::vector<IqSample> random_samples(std::size_t n, std::uint32_t seed,
                                     std::int16_t amp = 32000) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(-amp, amp);
  std::vector<IqSample> v(n);
  for (auto& s : v) {
    s.i = std::int16_t(dist(rng));
    s.q = std::int16_t(dist(rng));
  }
  return v;
}

std::vector<KernelTier> available_tiers() {
  std::vector<KernelTier> v;
  for (std::size_t t = 0; t < kKernelTierCount; ++t)
    if (iq_ops_for(KernelTier(t)) != nullptr) v.push_back(KernelTier(t));
  return v;
}

/// Restores the dispatch tier active at construction (tests force tiers).
struct TierGuard {
  KernelTier saved = iq_kernel_tier();
  ~TierGuard() { iq_force_tier(saved); }
};

// ----------------------------------------------------------------------
// Dispatch controls
// ----------------------------------------------------------------------

TEST(KernelDispatch, ScalarAlwaysAvailable) {
  EXPECT_TRUE(iq_tier_available(KernelTier::Scalar));
  ASSERT_NE(iq_ops_for(KernelTier::Scalar), nullptr);
  EXPECT_EQ(iq_ops_for(KernelTier::Scalar)->tier, KernelTier::Scalar);
}

TEST(KernelDispatch, ParseTierNames) {
  EXPECT_EQ(parse_kernel_tier("scalar"), KernelTier::Scalar);
  EXPECT_EQ(parse_kernel_tier("sse42"), KernelTier::Sse42);
  EXPECT_EQ(parse_kernel_tier("sse4.2"), KernelTier::Sse42);
  EXPECT_EQ(parse_kernel_tier("avx2"), KernelTier::Avx2);
  EXPECT_EQ(parse_kernel_tier("neon"), KernelTier::Neon);
  EXPECT_FALSE(parse_kernel_tier("avx512").has_value());
  EXPECT_FALSE(parse_kernel_tier("").has_value());
  for (std::size_t t = 0; t < kKernelTierCount; ++t)
    EXPECT_EQ(parse_kernel_tier(kernel_tier_name(KernelTier(t))),
              KernelTier(t));
}

TEST(KernelDispatch, ForceTierSwitchesActiveOps) {
  TierGuard guard;
  for (KernelTier t : available_tiers()) {
    ASSERT_TRUE(iq_force_tier(t)) << kernel_tier_name(t);
    EXPECT_EQ(iq_kernel_tier(), t);
    EXPECT_EQ(iq_ops().tier, t);
    EXPECT_EQ(iqstats::kernel_tier().load(), int(t));
  }
  // Forcing an unavailable tier fails and leaves the active one alone.
  for (std::size_t t = 0; t < kKernelTierCount; ++t) {
    if (iq_tier_available(KernelTier(t))) continue;
    const KernelTier before = iq_kernel_tier();
    EXPECT_FALSE(iq_force_tier(KernelTier(t)));
    EXPECT_EQ(iq_kernel_tier(), before);
  }
}

// ----------------------------------------------------------------------
// Scalar-vs-SIMD equivalence: every tier must be bit-exact
// ----------------------------------------------------------------------

TEST(KernelEquivalence, MaxMagnitude) {
  const IqKernelOps* ref = iq_ops_for(KernelTier::Scalar);
  for (std::size_t n : {1u, 5u, 12u, 24u, 61u, 100u, 3276u}) {
    auto v = random_samples(n, std::uint32_t(n) * 7u + 1);
    // Plant the edge values, including |INT16_MIN| = 32768.
    v[0].i = 32767;
    v[n / 2].q = -32768;
    for (KernelTier t : available_tiers()) {
      const IqKernelOps* ops = iq_ops_for(t);
      EXPECT_EQ(ops->max_magnitude(v.data(), n),
                ref->max_magnitude(v.data(), n))
          << kernel_tier_name(t) << " n=" << n;
    }
  }
}

TEST(KernelEquivalence, PackUnpackAllWidthsAndShifts) {
  const IqKernelOps* ref = iq_ops_for(KernelTier::Scalar);
  for (int width = 2; width <= 16; ++width) {
    for (unsigned shift : {0u, 1u, 7u, 15u}) {
      for (std::size_t n : {5u, 12u, 17u, 24u, 96u}) {
        auto v = random_samples(n, std::uint32_t(width * 131 + int(shift)));
        v[0] = {32767, -32768};
        const std::size_t bytes = iqk::packed_bytes(2 * n, width);
        std::vector<std::uint8_t> packed_ref(bytes, 0), packed(bytes, 0);
        ref->pack_mantissas(v.data(), n, width, shift, packed_ref.data());
        std::vector<IqSample> unpacked_ref(n), unpacked(n);
        ref->unpack_mantissas(packed_ref.data(), n, width, shift,
                              unpacked_ref.data());
        for (KernelTier t : available_tiers()) {
          const IqKernelOps* ops = iq_ops_for(t);
          std::fill(packed.begin(), packed.end(), std::uint8_t(0));
          ops->pack_mantissas(v.data(), n, width, shift, packed.data());
          EXPECT_EQ(packed, packed_ref)
              << kernel_tier_name(t) << " w=" << width << " s=" << shift
              << " n=" << n;
          ops->unpack_mantissas(packed_ref.data(), n, width, shift,
                                unpacked.data());
          EXPECT_EQ(unpacked, unpacked_ref)
              << kernel_tier_name(t) << " w=" << width << " s=" << shift
              << " n=" << n;
        }
      }
    }
  }
}

TEST(KernelEquivalence, AccumulateSaturates) {
  const IqKernelOps* ref = iq_ops_for(KernelTier::Scalar);
  for (std::size_t n : {1u, 8u, 12u, 100u, 1201u}) {
    auto a = random_samples(n, 17, 32767);
    auto b = random_samples(n, 23, 32767);
    a[0] = {32767, -32768};
    b[0] = {32767, -32768};  // saturates both directions
    auto want = a;
    ref->accumulate_sat(want.data(), b.data(), n);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_EQ(want[k].i, sat16(std::int32_t(a[k].i) + b[k].i));
      EXPECT_EQ(want[k].q, sat16(std::int32_t(a[k].q) + b[k].q));
    }
    for (KernelTier t : available_tiers()) {
      auto got = a;
      iq_ops_for(t)->accumulate_sat(got.data(), b.data(), n);
      EXPECT_EQ(got, want) << kernel_tier_name(t) << " n=" << n;
    }
  }
}

TEST(KernelEquivalence, NoneCodec) {
  const IqKernelOps* ref = iq_ops_for(KernelTier::Scalar);
  for (std::size_t n : {1u, 7u, 12u, 128u}) {
    auto v = random_samples(n, 29);
    v[0] = {-32768, 32767};
    std::vector<std::uint8_t> wire_ref(4 * n), wire(4 * n);
    ref->pack_none(v.data(), n, wire_ref.data());
    for (KernelTier t : available_tiers()) {
      const IqKernelOps* ops = iq_ops_for(t);
      ops->pack_none(v.data(), n, wire.data());
      EXPECT_EQ(wire, wire_ref) << kernel_tier_name(t);
      std::vector<IqSample> back(n);
      ops->unpack_none(wire_ref.data(), n, back.data());
      EXPECT_EQ(back, v) << kernel_tier_name(t);
    }
  }
}

/// Every tier's noise synthesis must match the naive specification:
/// step the LCG twice per sub-carrier and take int32(rng >> 16) % (2a+1)
/// - a per component. The RNG end state is checkpointed RU state, so it
/// is part of the contract too.
TEST(KernelEquivalence, SynthNoisePrbMatchesNaiveLcg) {
  for (std::int32_t a : {1, 2, 7, 100, 4000, 32767, 32768, 100000}) {
    const std::uint32_t rng0 = 0xDEADBEEFu ^ std::uint32_t(a);
    std::array<IqSample, kScPerPrb> want{};
    std::uint32_t r = rng0;
    const auto draw = [&r]() {
      r = r * 1664525u + 1013904223u;
      return r >> 16;
    };
    const std::int64_t d = 2 * std::int64_t(a) + 1;
    for (int k = 0; k < kScPerPrb; ++k) {
      const std::int32_t i = std::int32_t(std::int64_t(draw()) % d) - a;
      const std::int32_t q = std::int32_t(std::int64_t(draw()) % d) - a;
      want[k] = {sat16(i), sat16(q)};
    }
    for (KernelTier t : available_tiers()) {
      std::uint32_t rng = rng0;
      std::array<IqSample, kScPerPrb> got{};
      iq_ops_for(t)->synth_noise_prb(&rng, a, got.data());
      EXPECT_EQ(got, want) << kernel_tier_name(t) << " a=" << a;
      EXPECT_EQ(rng, r) << kernel_tier_name(t) << " a=" << a;
    }
  }
}

/// Full-codec equivalence: each tier produces byte-identical compressed
/// output and sample-identical decompressed output for widths 2..16.
TEST(KernelEquivalence, CodecBitExactAcrossTiers) {
  TierGuard guard;
  auto samples = random_samples(16 * kScPerPrb, 101);
  samples[3] = {-32768, -32768};
  for (int width = 2; width <= 16; ++width) {
    const CompConfig cfg{CompMethod::BlockFloatingPoint, width};
    ASSERT_TRUE(iq_force_tier(KernelTier::Scalar));
    std::vector<std::uint8_t> comp_ref(cfg.prb_bytes() * 16);
    auto wrote = compress_prbs(IqConstSpan(samples.data(), samples.size()),
                               cfg, comp_ref);
    ASSERT_TRUE(wrote.has_value());
    std::vector<IqSample> out_ref(samples.size());
    ASSERT_TRUE(decompress_prbs(comp_ref, 16, cfg,
                                IqSpan(out_ref.data(), out_ref.size())));
    for (KernelTier t : available_tiers()) {
      ASSERT_TRUE(iq_force_tier(t));
      std::vector<std::uint8_t> comp(cfg.prb_bytes() * 16);
      ASSERT_TRUE(compress_prbs(IqConstSpan(samples.data(), samples.size()),
                                cfg, comp));
      EXPECT_EQ(comp, comp_ref) << kernel_tier_name(t) << " w=" << width;
      std::vector<IqSample> out(samples.size());
      ASSERT_TRUE(
          decompress_prbs(comp_ref, 16, cfg, IqSpan(out.data(), out.size())));
      EXPECT_EQ(out, out_ref) << kernel_tier_name(t) << " w=" << width;
    }
  }
}

// ----------------------------------------------------------------------
// Regression: negative mantissa shifted by the exponent (was UB)
// ----------------------------------------------------------------------

TEST(BfpRegression, MaxNegativeMantissaDecompresses) {
  // Hand-build a compressed PRB whose mantissas are the most negative
  // width-bit value; the old `int32 << e` shift of a negative value was
  // UB. Every tier must decode to sat16(-2^(w-1) * 2^e).
  TierGuard guard;
  for (int width : {2, 8, 9, 12, 14, 16}) {
    const std::int32_t mant = -(1 << (width - 1));
    for (std::uint8_t e : {std::uint8_t(0), std::uint8_t(7),
                           std::uint8_t(15)}) {
      const std::size_t need =
          1 + (std::size_t(2 * kScPerPrb) * unsigned(width) + 7) / 8;
      std::vector<std::uint8_t> wire(need, 0);
      wire[0] = e;
      BitWriter bw(std::span<std::uint8_t>(wire).subspan(1));
      for (int k = 0; k < 2 * kScPerPrb; ++k) bw.put(mant, width);
      ASSERT_TRUE(bw.ok());
      const std::int16_t want =
          sat16(std::int32_t(std::uint32_t(mant) << e));
      for (KernelTier t : available_tiers()) {
        ASSERT_TRUE(iq_force_tier(t));
        PrbSamples out{};
        ASSERT_TRUE(
            bfp_decompress_prb(wire, width, IqSpan(out.data(), out.size())))
            << kernel_tier_name(t);
        for (const auto& s : out) {
          ASSERT_EQ(s.i, want) << kernel_tier_name(t) << " w=" << width
                               << " e=" << int(e);
          ASSERT_EQ(s.q, want);
        }
      }
    }
  }
}

TEST(BfpRegression, FullScaleNegativeRoundTrips) {
  // -32768 everywhere: exponent search must pick an e that fits and the
  // round trip must reproduce the value exactly at width 16.
  TierGuard guard;
  std::vector<IqSample> samples(4 * kScPerPrb, IqSample{-32768, -32768});
  const CompConfig cfg{CompMethod::BlockFloatingPoint, 16};
  for (KernelTier t : available_tiers()) {
    ASSERT_TRUE(iq_force_tier(t));
    std::vector<std::uint8_t> comp(cfg.prb_bytes() * 4);
    ASSERT_TRUE(
        compress_prbs(IqConstSpan(samples.data(), samples.size()), cfg, comp));
    std::vector<IqSample> out(samples.size());
    ASSERT_TRUE(
        decompress_prbs(comp, 4, cfg, IqSpan(out.data(), out.size())));
    // e=1 (32768 > 32767), mantissa -16384, decode -32768: exact.
    EXPECT_EQ(out, samples) << kernel_tier_name(t);
  }
}

// ----------------------------------------------------------------------
// Corrupt-input fuzz: arbitrary bytes must never read/write out of
// bounds (ASan-checked in CI) and truncation must reject cleanly.
// ----------------------------------------------------------------------

TEST(Fuzz, CorruptAndTruncatedInputs) {
  std::mt19937 rng(4242);
  std::uniform_int_distribution<int> wdist(2, 16);
  std::uniform_int_distribution<int> pdist(1, 8);
  std::uniform_int_distribution<int> bdist(0, 255);
  for (int iter = 0; iter < 500; ++iter) {
    const int width = wdist(rng);
    const int n_prb = pdist(rng);
    const CompConfig cfg{iter % 5 == 0 ? CompMethod::None
                                       : CompMethod::BlockFloatingPoint,
                         width};
    const std::size_t need = cfg.prb_bytes() * std::size_t(n_prb);
    // Exact-size heap buffer: one byte past the end trips ASan.
    std::vector<std::uint8_t> wire(need);
    for (auto& b : wire) b = std::uint8_t(bdist(rng));
    std::vector<IqSample> out(std::size_t(n_prb) * kScPerPrb);
    auto full = decompress_prbs(std::span<const std::uint8_t>(wire), n_prb,
                                cfg, IqSpan(out.data(), out.size()));
    ASSERT_TRUE(full.has_value());
    EXPECT_EQ(*full, need);
    // Any truncation must reject without touching out-of-range bytes.
    const std::size_t cut = std::size_t(rng()) % need;
    EXPECT_FALSE(decompress_prbs(
        std::span<const std::uint8_t>(wire.data(), cut), n_prb, cfg,
        IqSpan(out.data(), out.size())));
    // Undersized sample buffer is rejected up front.
    EXPECT_FALSE(decompress_prbs(std::span<const std::uint8_t>(wire), n_prb,
                                 cfg, IqSpan(out.data(), out.size() - 1)));
  }
}

// ----------------------------------------------------------------------
// Zero-allocation guarantees
// ----------------------------------------------------------------------

TEST(ZeroAlloc, MergeCompressedSteadyState) {
  // The decompress -> combine -> recompress path must not allocate once
  // the per-worker scratch is warm.
  const CompConfig cfg{CompMethod::BlockFloatingPoint, 9};
  const int n_prb = 64;
  auto a = random_samples(std::size_t(n_prb) * kScPerPrb, 301, 8000);
  auto b = random_samples(std::size_t(n_prb) * kScPerPrb, 302, 8000);
  std::vector<std::uint8_t> ca(cfg.prb_bytes() * std::size_t(n_prb));
  std::vector<std::uint8_t> cb(ca.size()), dst(ca.size());
  ASSERT_TRUE(compress_prbs(IqConstSpan(a.data(), a.size()), cfg, ca));
  ASSERT_TRUE(compress_prbs(IqConstSpan(b.data(), b.size()), cfg, cb));
  const std::span<const std::uint8_t> srcs_arr[] = {ca, cb};
  const std::span<const std::span<const std::uint8_t>> srcs(srcs_arr, 2);
  PrbScratch scratch;
  ASSERT_GT(merge_compressed(srcs, n_prb, cfg, dst, scratch), 0u);  // warm
  const std::uint64_t before = allocs();
  for (int k = 0; k < 100; ++k)
    ASSERT_GT(merge_compressed(srcs, n_prb, cfg, dst, scratch), 0u);
  EXPECT_EQ(allocs(), before);
  EXPECT_GE(iqstats::arena_samples_hwm().load(),
            std::uint64_t(n_prb) * kScPerPrb);
}

TEST(ZeroAlloc, CombineScratchSteadyState) {
  // The DAS-combine shape: take cached copies into the worker arena,
  // collect per-section source spans, merge, release the buffers. After
  // warm-up the take/dedup/merge/release window performs no allocations
  // (cache puts still allocate map nodes - that is the A3 put path, not
  // the combine).
  const CompConfig cfg{CompMethod::BlockFloatingPoint, 9};
  const int n_prb = 32;
  const std::size_t payload = cfg.prb_bytes() * std::size_t(n_prb);
  auto samples = random_samples(std::size_t(n_prb) * kScPerPrb, 303, 8000);
  PacketPool pool(16);
  PacketCache cache;
  MbScratch sc;
  PrbScratch prb_scratch;
  std::vector<std::uint8_t> dst(payload);
  constexpr int kCopies = 4;
  for (int iter = 0; iter < 20; ++iter) {
    // Fill phase (allocations allowed): cache kCopies compressed copies.
    for (int c = 0; c < kCopies; ++c) {
      PacketPtr p = pool.alloc();
      ASSERT_TRUE(p);
      auto wrote = compress_prbs(IqConstSpan(samples.data(), samples.size()),
                                 cfg, p->raw());
      ASSERT_TRUE(wrote.has_value());
      p->set_len(*wrote);
      cache.put(7, CachedPacket{std::move(p), FhFrame{}, 0});
    }
    const std::uint64_t before = allocs();
    cache.take_into(7, sc.batch);
    ASSERT_EQ(sc.batch.size(), std::size_t(kCopies));
    sc.srcs.clear();
    for (auto& e : sc.batch) sc.srcs.push_back(e.pkt->data());
    const std::size_t wrote = merge_compressed(
        std::span<const std::span<const std::uint8_t>>(sc.srcs.data(),
                                                       sc.srcs.size()),
        n_prb, cfg, dst, prb_scratch);
    ASSERT_EQ(wrote, payload);
    for (auto& e : sc.batch) e.pkt.reset();  // back to the pool (magazine)
    if (iter >= 2) {
      EXPECT_EQ(allocs(), before) << "iteration " << iter;
    }
  }
  EXPECT_EQ(pool.in_use(), 0u);
}

/// Forwards everything to the runtime's south port. The test leaves that
/// port unwired, so packets die at TX and return to the pool magazine.
class ForwardSouthApp final : public MiddleboxApp {
 public:
  std::string name() const override { return "fwd"; }
  void on_frame(int, PacketPtr p, FhFrame&, MbContext& ctx) override {
    ctx.forward(std::move(p), 1);
  }
};

TEST(ZeroAlloc, BurstPumpSteadyState) {
  // The burst descriptor (arrival arrays, order pairs, section table, TX
  // staging) is runtime-owned scratch: once warm, a full pump — drain,
  // sort, parse, classify, dispatch, TX — performs zero allocations.
  ForwardSouthApp app;
  MiddleboxRuntime::Config cfg;
  cfg.name = "zeroalloc";
  MiddleboxRuntime rt(cfg, app);
  Port in{"in"}, out{"out"}, src{"src"};
  rt.add_port("north", in);
  rt.add_port("south", out);  // unwired: forwards drop at TX
  Port::connect(src, in, 0);

  // One C-plane frame template, re-sent every cycle.
  std::vector<std::uint8_t> tmpl(256);
  CPlaneMsg msg;
  msg.sections.push_back({});
  const std::size_t flen =
      build_cplane_frame(tmpl, EthHeader{}, EaxcId{}, 0, msg, FhContext{});
  ASSERT_GT(flen, 0u);
  tmpl.resize(flen);

  constexpr int kBurst = 32;
  for (int iter = 0; iter < 8; ++iter) {
    // Fill phase (allocations allowed: fabric queue blocks, pool cold
    // start). Reversed arrival times exercise the virtual-arrival sort.
    for (int k = 0; k < kBurst; ++k) {
      PacketPtr p = rt.pool().alloc();
      ASSERT_TRUE(p);
      std::copy(tmpl.begin(), tmpl.end(), p->raw().begin());
      p->set_len(tmpl.size());
      p->rx_time_ns = kBurst - k;
      ASSERT_TRUE(src.send(std::move(p)));
    }
    if (iter < 3) {  // warm the descriptor, parse-table and magazine
      ASSERT_TRUE(rt.pump(0, 0));
      continue;
    }
    const std::uint64_t before = allocs();
    ASSERT_TRUE(rt.pump(0, 0));
    EXPECT_EQ(allocs(), before) << "iteration " << iter;
  }
  EXPECT_EQ(rt.telemetry().counter("cplane_rx"), 8u * kBurst);
  EXPECT_EQ(rt.pool().in_use(), 0u);
}

/// DAS-style DL fan-out: replicates every frame to three south ports and
/// forwards the original. Exercises the zero-copy replicate path.
class FanoutSouthApp final : public MiddleboxApp {
 public:
  std::string name() const override { return "fanout"; }
  void on_frame(int, PacketPtr p, FhFrame&, MbContext& ctx) override {
    for (int port = 1; port <= 3; ++port) {
      auto r = ctx.replicate(*p);
      if (r) ctx.forward(std::move(r), port);
    }
    ctx.forward(std::move(p), 1);
  }
};

TEST(ZeroAlloc, ReplicatedDasPumpSteadyState) {
  // A warm pump whose app fans each jumbo U-plane frame out to three
  // egresses must stay allocation-free: replicas are refcount attaches
  // drawn from the pool magazine, not heap copies.
  FanoutSouthApp app;
  MiddleboxRuntime::Config cfg;
  cfg.name = "zeroalloc_rep";
  MiddleboxRuntime rt(cfg, app);
  Port in{"in"}, s1{"s1"}, s2{"s2"}, s3{"s3"}, src{"src"};
  rt.add_port("north", in);
  rt.add_port("south1", s1);  // unwired: forwards die at TX
  rt.add_port("south2", s2);
  rt.add_port("south3", s3);
  Port::connect(src, in, 0);

  // Jumbo single-section U-plane frame whose payload runs to the end of
  // the frame: zero-copy replicate eligible.
  FhContext fh;
  std::vector<std::uint8_t> payload(
      fh.comp.prb_bytes() * std::size_t(fh.carrier_prbs), 0x5a);
  UPlaneMsg u;
  u.direction = Direction::Downlink;
  USectionData sec;
  sec.num_prb = fh.carrier_prbs;
  sec.payload = payload;
  std::vector<std::uint8_t> tmpl(9216);
  tmpl.resize(build_uplane_frame(tmpl, EthHeader{}, EaxcId{}, 0, u,
                                 std::span(&sec, 1), fh));
  ASSERT_GT(tmpl.size(), 1000u);

  constexpr int kBurst = 16;
  for (int iter = 0; iter < 8; ++iter) {
    for (int k = 0; k < kBurst; ++k) {
      PacketPtr p = rt.pool().alloc();
      ASSERT_TRUE(p);
      std::copy(tmpl.begin(), tmpl.end(), p->raw().begin());
      p->set_len(tmpl.size());
      p->rx_time_ns = k;
      ASSERT_TRUE(src.send(std::move(p)));
    }
    if (iter < 3) {  // warm descriptor, magazines, TX staging
      ASSERT_TRUE(rt.pump(0, 0));
      continue;
    }
    const std::uint64_t before = allocs();
    ASSERT_TRUE(rt.pump(0, 0));
    EXPECT_EQ(allocs(), before) << "iteration " << iter;
  }
  // Every replica took the zero-copy path.
  EXPECT_EQ(rt.pool().replicas_zero_copy(), 8u * kBurst * 3u);
  EXPECT_EQ(rt.telemetry().counter("pkts_replicated"), 8u * kBurst * 3u);
  EXPECT_EQ(rt.pool().in_use(), 0u);
}

TEST(ZeroAlloc, PacketPoolMagazineSteadyState) {
  PacketPool pool(64);
  // Warm this thread's magazine.
  { auto p = pool.alloc(); }
  const std::uint64_t before = allocs();
  for (int k = 0; k < 1000; ++k) {
    auto p = pool.alloc();
    ASSERT_TRUE(p);
    p->set_len(64);
  }
  EXPECT_EQ(allocs(), before);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(SmallVecTest, InlineStorageThenSpill) {
  SmallVec<std::pair<PacketPtr, int>, 4> v;
  EXPECT_TRUE(v.empty());
  const std::uint64_t before = allocs();
  for (int k = 0; k < 4; ++k) v.emplace_back(nullptr, k);
  EXPECT_EQ(allocs(), before);  // inline: no heap
  EXPECT_FALSE(v.spilled());
  for (int k = 4; k < 23; ++k) v.emplace_back(nullptr, k);
  EXPECT_TRUE(v.spilled());
  ASSERT_EQ(v.size(), 23u);
  for (int k = 0; k < 23; ++k) EXPECT_EQ(v[std::size_t(k)].second, k);
  // Move keeps contents; clear keeps capacity.
  SmallVec<std::pair<PacketPtr, int>, 4> w(std::move(v));
  ASSERT_EQ(w.size(), 23u);
  EXPECT_EQ(w[22].second, 22);
  EXPECT_TRUE(v.empty());
  const std::size_t cap = w.capacity();
  w.clear();
  EXPECT_EQ(w.capacity(), cap);
}

TEST(PacketPoolTest, ExhaustionAndRecovery) {
  PacketPool tiny(4);
  std::vector<PacketPtr> held;
  for (int k = 0; k < 4; ++k) {
    auto p = tiny.alloc();
    ASSERT_TRUE(p);
    held.push_back(std::move(p));
  }
  EXPECT_EQ(tiny.in_use(), 4u);
  EXPECT_FALSE(tiny.alloc());
  EXPECT_EQ(tiny.alloc_failures(), 1u);
  held.clear();
  EXPECT_EQ(tiny.in_use(), 0u);
  EXPECT_TRUE(tiny.alloc());
}

TEST(PacketPoolTest, MagazinesAcrossThreads) {
  PacketPool pool(1024);
  std::atomic<int> failures{0};
  auto worker = [&pool, &failures](std::uint32_t seed) {
    std::mt19937 rng(seed);
    std::vector<PacketPtr> held;
    for (int k = 0; k < 2000; ++k) {
      if (held.size() < 8 && (rng() & 1)) {
        auto p = pool.alloc();
        if (!p) {
          failures.fetch_add(1);
          continue;
        }
        p->set_len(rng() % kPacketCapacity);
        held.push_back(std::move(p));
      } else if (!held.empty()) {
        held.pop_back();
      }
    }
  };
  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < 4; ++t) threads.emplace_back(worker, t + 1);
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(pool.in_use(), 0u);
  // Buffers may be parked in retired threads' magazines, but well over
  // half the pool must remain reachable from this thread.
  std::vector<PacketPtr> drain;
  for (int k = 0; k < 512; ++k) {
    auto p = pool.alloc();
    ASSERT_TRUE(p) << "k=" << k;
    drain.push_back(std::move(p));
  }
  EXPECT_EQ(pool.in_use(), 512u);
  drain.clear();
  EXPECT_EQ(pool.in_use(), 0u);
}

// ----------------------------------------------------------------------
// Telemetry surface
// ----------------------------------------------------------------------

TEST(KernelStats, PrometheusExportsTierAndArenas) {
  (void)iq_ops();  // ensure a tier is selected
  const std::string text = obs::prometheus_text(obs::Collector::instance());
  EXPECT_NE(text.find("rb_iq_kernel_tier{name=\""), std::string::npos);
  EXPECT_NE(text.find("rb_iq_arena_hwm{arena=\"samples\"}"),
            std::string::npos);
  EXPECT_NE(text.find("rb_iq_arena_hwm{arena=\"batch\"}"), std::string::npos);
}

}  // namespace
}  // namespace rb
