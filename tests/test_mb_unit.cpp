// Handler-level unit tests for the reference middleboxes: drive them with
// hand-built frames through a bare runtime (no DU/RU/engine), checking the
// emitted packets byte-for-byte. Complements the e2e suites.
#include <gtest/gtest.h>

#include "iq/prb.h"
#include "mb/das.h"
#include "mb/dmimo.h"
#include "mb/failover.h"
#include "mb/prbmon.h"
#include "mb/rushare.h"

namespace rb {
namespace {

FhContext ctx100() {
  FhContext c;
  c.carrier_prbs = 273;
  return c;
}

std::vector<std::uint8_t> payload_prbs(int n_prb, std::int16_t amp,
                                       const CompConfig& comp) {
  std::vector<IqSample> samples(std::size_t(n_prb) * kScPerPrb,
                                IqSample{amp, std::int16_t(-amp)});
  std::vector<std::uint8_t> out(comp.prb_bytes() * std::size_t(n_prb));
  compress_prbs(IqConstSpan(samples.data(), samples.size()), comp, out);
  return out;
}

PacketPtr uplane_pkt(const FhContext& ctx, Direction dir, const SlotPoint& at,
                     const EaxcId& eaxc, int start_prb, int n_prb,
                     std::int16_t amp, const MacAddr& src,
                     const MacAddr& dst = {}) {
  auto payload = payload_prbs(n_prb, amp, ctx.comp);
  UPlaneMsg hdr;
  hdr.direction = dir;
  hdr.at = at;
  USectionData sec;
  sec.start_prb = std::uint16_t(start_prb);
  sec.num_prb = n_prb;
  sec.payload = payload;
  EthHeader eth;
  eth.src = src;
  eth.dst = dst;
  auto p = PacketPool::default_pool().alloc();
  const std::size_t len = build_uplane_frame(p->raw(), eth, eaxc, 0, hdr,
                                             std::span(&sec, 1), ctx);
  p->set_len(len);
  return p;
}

/// Bare two-port runtime harness around an app.
struct Harness {
  MiddleboxRuntime rt;
  std::vector<std::unique_ptr<Port>> ext;    // external peers
  std::vector<std::unique_ptr<Port>> inner;  // runtime-side ports

  Harness(MiddleboxApp& app, int n_ports, const FhContext& ctx)
      : rt(make_cfg(ctx), app) {
    for (int i = 0; i < n_ports; ++i) {
      inner.push_back(std::make_unique<Port>("p" + std::to_string(i)));
      ext.push_back(std::make_unique<Port>("x" + std::to_string(i)));
      Port::connect(*ext.back(), *inner.back(), 0);
      rt.add_port("p" + std::to_string(i), *inner.back());
    }
  }
  static MiddleboxRuntime::Config make_cfg(const FhContext& ctx) {
    MiddleboxRuntime::Config c;
    c.fh = ctx;
    return c;
  }
  std::vector<PacketPtr> drain(int port) {
    std::vector<PacketPtr> out;
    ext[std::size_t(port)]->rx_burst(out, 128);
    return out;
  }
};

TEST(DasUnit, DownlinkReplicatesToEveryRu) {
  const FhContext ctx = ctx100();
  DasConfig cfg;
  cfg.du_mac = MacAddr::du(0);
  cfg.ru_macs = {MacAddr::ru(0), MacAddr::ru(1), MacAddr::ru(2)};
  DasMiddlebox app(cfg);
  Harness h(app, 2, ctx);

  h.ext[0]->send(uplane_pkt(ctx, Direction::Downlink, {0, 0, 0, 3},
                            {0, 0, 0, 1}, 10, 8, 9000, cfg.du_mac));
  h.rt.pump(0, 0);
  auto out = h.drain(DasMiddlebox::kSouth);
  ASSERT_EQ(out.size(), 3u);
  // One replica per RU, each addressed to its RU, payload identical.
  std::set<std::string> dsts;
  for (auto& p : out) {
    auto f = parse_frame(p->data(), ctx);
    ASSERT_TRUE(f.has_value());
    dsts.insert(f->eth.dst.str());
    EXPECT_EQ(f->uplane().sections[0].start_prb, 10);
  }
  EXPECT_EQ(dsts.size(), 3u);
}

TEST(DasUnit, UplinkMergeSumsConstituents) {
  const FhContext ctx = ctx100();
  DasConfig cfg;
  cfg.du_mac = MacAddr::du(0);
  cfg.ru_macs = {MacAddr::ru(0), MacAddr::ru(1)};
  DasMiddlebox app(cfg);
  Harness h(app, 2, ctx);

  // Radio time (frame 1, subframe 2, slot 0) = absolute slot 24 at kHz30;
  // the combiner's stale-copy gate needs the pump slot to match.
  const SlotPoint at{1, 2, 0, 0};
  const std::int64_t slot = 24;
  const EaxcId eaxc{0, 0, 0, 0};
  h.ext[1]->send(uplane_pkt(ctx, Direction::Uplink, at, eaxc, 0, 4, 1000,
                            MacAddr::ru(0)));
  h.rt.pump(slot, 0);
  EXPECT_TRUE(h.drain(DasMiddlebox::kNorth).empty());  // still caching

  h.ext[1]->send(uplane_pkt(ctx, Direction::Uplink, at, eaxc, 0, 4, 500,
                            MacAddr::ru(1)));
  h.rt.pump(slot, 0);
  auto out = h.drain(DasMiddlebox::kNorth);
  ASSERT_EQ(out.size(), 1u);
  auto f = parse_frame(out[0]->data(), ctx);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->eth.dst, cfg.du_mac);
  const auto& sec = f->uplane().sections[0];
  std::vector<IqSample> merged(std::size_t(sec.num_prb) * kScPerPrb);
  ASSERT_TRUE(decompress_prbs(
      out[0]->data().subspan(sec.payload_offset, sec.payload_len),
      sec.num_prb, sec.comp, IqSpan(merged.data(), merged.size())));
  // 1000 + 500 = 1500, within one BFP quantization step.
  for (const auto& s : merged) EXPECT_NEAR(s.i, 1500, 8);
  EXPECT_EQ(h.rt.telemetry().counter("das_merges"), 1u);
}

TEST(DasUnit, MismatchedGeometryCountsFailure) {
  const FhContext ctx = ctx100();
  DasConfig cfg;
  cfg.du_mac = MacAddr::du(0);
  cfg.ru_macs = {MacAddr::ru(0), MacAddr::ru(1)};
  DasMiddlebox app(cfg);
  Harness h(app, 2, ctx);
  const SlotPoint at{1, 2, 0, 0};  // absolute slot 24 at kHz30
  const EaxcId eaxc{0, 0, 0, 0};
  h.ext[1]->send(uplane_pkt(ctx, Direction::Uplink, at, eaxc, 0, 4, 1000,
                            MacAddr::ru(0)));
  h.ext[1]->send(uplane_pkt(ctx, Direction::Uplink, at, eaxc, 0, 6, 500,
                            MacAddr::ru(1)));  // different n_prb
  h.rt.pump(24, 0);
  EXPECT_TRUE(h.drain(DasMiddlebox::kNorth).empty());
  EXPECT_EQ(h.rt.telemetry().counter("das_merge_failures"), 1u);
}

TEST(DmimoUnit, LayerMapCoversAllAntennas) {
  DmimoConfig cfg;
  cfg.rus = {{MacAddr::ru(0), 2}, {MacAddr::ru(1), 1}, {MacAddr::ru(2), 1}};
  DmimoMiddlebox app(cfg);
  EXPECT_EQ(app.total_antennas(), 4);
  EXPECT_EQ(app.map_layer(0).ru_index, 0);
  EXPECT_EQ(app.map_layer(1).ru_index, 0);
  EXPECT_EQ(app.map_layer(1).local_port, 1);
  EXPECT_EQ(app.map_layer(2).ru_index, 1);
  EXPECT_EQ(app.map_layer(2).local_port, 0);
  EXPECT_EQ(app.map_layer(3).ru_index, 2);
  EXPECT_EQ(app.map_layer(9).ru_index, -1);
}

TEST(DmimoUnit, DownlinkRemapsPortAndSteers) {
  const FhContext ctx = ctx100();
  DmimoConfig cfg;
  cfg.du_mac = MacAddr::du(0);
  cfg.rus = {{MacAddr::ru(0), 2}, {MacAddr::ru(1), 2}};
  DmimoMiddlebox app(cfg);
  Harness h(app, 2, ctx);

  // Layer 3 -> RU 1 local port 1.
  h.ext[0]->send(uplane_pkt(ctx, Direction::Downlink, {0, 0, 0, 5},
                            {0, 0, 0, 3}, 0, 4, 9000, cfg.du_mac));
  h.rt.pump(0, 0);
  auto out = h.drain(DmimoMiddlebox::kSouth);
  ASSERT_EQ(out.size(), 1u);
  auto f = parse_frame(out[0]->data(), ctx);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->eth.dst, MacAddr::ru(1));
  EXPECT_EQ(f->ecpri.eaxc.ru_port, 1);
}

TEST(DmimoUnit, UplinkRemapsBackByLayerBase) {
  const FhContext ctx = ctx100();
  DmimoConfig cfg;
  cfg.du_mac = MacAddr::du(0);
  cfg.rus = {{MacAddr::ru(0), 2}, {MacAddr::ru(1), 2}};
  DmimoMiddlebox app(cfg);
  Harness h(app, 2, ctx);

  h.ext[1]->send(uplane_pkt(ctx, Direction::Uplink, {0, 0, 0, 0},
                            {0, 0, 0, 1}, 0, 4, 900, MacAddr::ru(1)));
  h.rt.pump(0, 0);
  auto out = h.drain(DmimoMiddlebox::kNorth);
  ASSERT_EQ(out.size(), 1u);
  auto f = parse_frame(out[0]->data(), ctx);
  EXPECT_EQ(f->ecpri.eaxc.ru_port, 3);  // base 2 + local 1
  EXPECT_EQ(f->eth.dst, cfg.du_mac);
}

TEST(PrbMonUnit, ThresholdsConfigurableViaMgmt) {
  PrbMonConfig cfg;
  PrbMonitorMiddlebox app(cfg);
  EXPECT_EQ(app.on_mgmt("thresholds"), "thr_dl=0 thr_ul=2");
  EXPECT_EQ(app.on_mgmt("set-thr ul 3"), "ok");
  EXPECT_EQ(app.on_mgmt("thresholds"), "thr_dl=0 thr_ul=3");
  EXPECT_EQ(app.on_mgmt("set-thr sideways 1"), "unknown direction");
}

TEST(FailoverUnit, MgmtManualSwitch) {
  FailoverConfig cfg;
  FailoverMiddlebox app(cfg);
  EXPECT_EQ(app.on_mgmt("active"), "primary");
  EXPECT_EQ(app.on_mgmt("switch"), "ok");
  EXPECT_EQ(app.on_mgmt("active"), "standby");
}

TEST(RuShareUnit, WidensOnlyFirstCplanePerSymbolRange) {
  const FhContext du_ctx = [] {
    FhContext c;
    c.carrier_prbs = 106;
    return c;
  }();
  RuShareConfig cfg;
  cfg.ru_mac = MacAddr::ru(0);
  cfg.ru_n_prb = 273;
  cfg.ru_center_freq = GHz(3) + MHz(460);
  cfg.dus = {{MacAddr::du(0), 0, 10, 106, GHz(3) + MHz(433)},
             {MacAddr::du(1), 1, 150, 106, GHz(3) + MHz(484)}};
  RuShareMiddlebox app(cfg);
  // Port 0 = south; 1, 2 = DUs.
  Harness h(app, 3, ctx100());

  auto cplane = [&](std::uint8_t du) {
    CPlaneMsg m;
    m.direction = Direction::Downlink;
    m.at = {0, 0, 0, 0};
    CSection s;
    s.num_prb = 106;
    s.num_symbol = 14;
    m.sections.push_back(s);
    auto p = PacketPool::default_pool().alloc();
    EthHeader eth;
    eth.src = MacAddr::du(du);
    const std::size_t len =
        build_cplane_frame(p->raw(), eth, EaxcId{}, 0, m, du_ctx);
    p->set_len(len);
    return p;
  };
  h.ext[1]->send(cplane(0));
  h.rt.pump(0, 0);
  auto out = h.drain(RuShareMiddlebox::kSouth);
  ASSERT_EQ(out.size(), 1u);  // widened request forwarded
  auto f = parse_frame(out[0]->data(), ctx100());
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->cplane().sections[0].effective_prbs(273), 273);
  EXPECT_EQ(f->eth.dst, cfg.ru_mac);

  h.ext[2]->send(cplane(1));  // same symbols: absorbed
  h.rt.pump(0, 0);
  EXPECT_TRUE(h.drain(RuShareMiddlebox::kSouth).empty());
}

}  // namespace
}  // namespace rb
