// Unit + property tests for the MAC scheduler.
#include <gtest/gtest.h>

#include <random>

#include "ran/scheduler.h"

namespace rb {
namespace {

UeReport good_report(int rank = 4, double sinr = 12.0) {
  UeReport r;
  r.attached = true;
  r.serving = 0;
  r.rank = rank;
  r.per_layer_sinr_db = sinr;
  return r;
}

TEST(Scheduler, NoBacklogNoAllocation) {
  MacScheduler s(273);
  auto allocs = s.schedule_dl({{0, good_report()}}, 13);
  EXPECT_TRUE(allocs.empty());
}

TEST(Scheduler, DetachedUeNotScheduled) {
  MacScheduler s(273);
  s.add_dl_backlog(0, 1'000'000);
  UeReport rep;  // attached=false
  EXPECT_TRUE(s.schedule_dl({{0, rep}}, 13).empty());
}

TEST(Scheduler, SingleBackloggedUeGetsWholeCarrier) {
  MacScheduler s(273);
  s.add_dl_backlog(0, 100'000'000);
  auto allocs = s.schedule_dl({{0, good_report()}}, 13);
  ASSERT_EQ(allocs.size(), 1u);
  EXPECT_EQ(allocs[0].start_prb, 0);
  EXPECT_EQ(allocs[0].n_prb, 273);
  EXPECT_EQ(allocs[0].layers, 4);
  EXPECT_GT(allocs[0].tbs_bits, 0);
}

TEST(Scheduler, SmallBacklogAllocatesOnlyNeededPrbs) {
  MacScheduler s(273);
  s.add_dl_backlog(0, 10'000);  // tiny
  auto allocs = s.schedule_dl({{0, good_report()}}, 13);
  ASSERT_EQ(allocs.size(), 1u);
  EXPECT_LT(allocs[0].n_prb, 20);
  EXPECT_EQ(s.dl_backlog(0), 0);  // fully drained
}

TEST(Scheduler, WaterFillingRedistributesUnusedShare) {
  // One tiny flow + one elephant: the elephant gets everything the tiny
  // flow does not need (the Figure 11 static-UE + walking-UE pattern).
  MacScheduler s(273);
  s.add_dl_backlog(0, 20'000);
  s.add_dl_backlog(1, 500'000'000);
  auto allocs =
      s.schedule_dl({{0, good_report()}, {1, good_report()}}, 13);
  ASSERT_EQ(allocs.size(), 2u);
  int total = 0, elephant = 0;
  for (const auto& a : allocs) {
    total += a.n_prb;
    if (a.ue == 1) elephant = a.n_prb;
  }
  EXPECT_EQ(total, 273);
  EXPECT_GT(elephant, 240);
}

/// Property: allocations never overlap and never exceed the carrier.
TEST(Scheduler, AllocationsDisjointUnderRandomLoads) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    MacScheduler s(106);
    std::vector<std::pair<UeId, UeReport>> reports;
    const int n_ues = 1 + int(rng() % 8);
    for (int u = 0; u < n_ues; ++u) {
      s.add_dl_backlog(u, std::int64_t(rng() % 3'000'000));
      reports.push_back({u, good_report(1 + int(rng() % 4),
                                        3.0 + double(rng() % 20))});
    }
    auto allocs = s.schedule_dl(reports, 13);
    std::vector<bool> used(106, false);
    for (const auto& a : allocs) {
      EXPECT_GE(a.start_prb, 0);
      EXPECT_LE(a.start_prb + a.n_prb, 106);
      for (int p = a.start_prb; p < a.start_prb + a.n_prb; ++p) {
        EXPECT_FALSE(used[std::size_t(p)]) << "overlap at " << p;
        used[std::size_t(p)] = true;
      }
    }
  }
}

TEST(Scheduler, TbsConsistentWithRate) {
  MacScheduler s(273);
  s.add_dl_backlog(0, 1'000'000'000);
  auto allocs = s.schedule_dl({{0, good_report(4, 11.5)}}, 13);
  ASSERT_EQ(allocs.size(), 1u);
  const double se = spectral_efficiency(11.5, 4);
  EXPECT_NEAR(double(allocs[0].tbs_bits), se * 4 * 273 * 12 * 13,
              double(allocs[0].tbs_bits) * 0.01);
}

TEST(Scheduler, OllaWalksDownOnErrorsUpOnSuccess) {
  MacScheduler s(273);
  s.add_dl_backlog(0, 1000);
  EXPECT_DOUBLE_EQ(s.olla_db(0), 0.0);
  s.on_harq_feedback(0, 2, true);
  EXPECT_DOUBLE_EQ(s.olla_db(0), -2.0);
  for (int i = 0; i < 10; ++i) s.on_harq_feedback(0, 0, true);
  EXPECT_NEAR(s.olla_db(0), -1.5, 1e-9);
}

TEST(Scheduler, OllaClampedToRange) {
  MacScheduler s(273);
  s.add_dl_backlog(0, 1000);
  s.on_harq_feedback(0, 100, true);
  EXPECT_DOUBLE_EQ(s.olla_db(0), -15.0);
  for (int i = 0; i < 10'000; ++i) s.on_harq_feedback(0, 0, true);
  EXPECT_DOUBLE_EQ(s.olla_db(0), 0.0);  // never above the cap
}

TEST(Scheduler, UplinkRespectsCarrier) {
  MacScheduler s(106);
  for (int u = 0; u < 3; ++u) s.add_ul_backlog(u, 50'000'000);
  auto allocs = s.schedule_ul(
      {{0, good_report()}, {1, good_report()}, {2, good_report()}}, 13);
  int total = 0;
  for (const auto& a : allocs) total += a.n_prb;
  EXPECT_LE(total, 106);
  EXPECT_EQ(allocs.size(), 3u);
}

TEST(Scheduler, UtilizationLogBounded) {
  MacScheduler s(273);
  for (int i = 0; i < 6000; ++i) s.log_utilization(i, 100, 50, true, false);
  EXPECT_LE(s.utilization_log().size(), 4096u);
  EXPECT_EQ(s.utilization_log().back().slot, 5999);
  s.clear_utilization_log();
  EXPECT_TRUE(s.utilization_log().empty());
}

TEST(Scheduler, ClearBacklogsDropsQueues) {
  MacScheduler s(273);
  s.add_dl_backlog(0, 5'000'000);
  s.add_ul_backlog(0, 5'000'000);
  s.clear_backlogs();
  EXPECT_EQ(s.dl_backlog(0), 0);
  EXPECT_EQ(s.ul_backlog(0), 0);
}

}  // namespace
}  // namespace rb
