// End-to-end baseline: one DU, one RU, direct wire, no middlebox.
// Validates the whole attach path (SSB -> PRACH -> attach) and that the
// measured throughput lands on the paper's calibration anchors (Table 2,
// section 6.2 numbers).
#include <gtest/gtest.h>

#include "sim/deployment.h"

namespace rb {
namespace {

CellConfig cell100() {
  CellConfig c;
  c.bandwidth = MHz(100);
  c.center_freq = GHz(3) + MHz(460);
  c.max_layers = 4;
  c.pci = 1;
  return c;
}

TEST(E2eBaseline, UeAttachesThroughSsbAndPrach) {
  Deployment d;
  auto du = d.add_du(cell100(), srsran_profile(), 0);
  RuSite site;
  site.pos = d.plan.ru_position(0, 0);
  site.n_antennas = 4;
  site.bandwidth = MHz(100);
  site.center_freq = cell100().center_freq;
  auto ru = d.add_ru(site, 0, du.du->fh());
  d.connect_direct(du, ru);

  const UeId ue = d.add_ue(d.plan.near_ru(0, 0, 5.0), &du, 100.0, 10.0);
  EXPECT_FALSE(d.air.is_attached(ue));
  ASSERT_TRUE(d.attach_all(300));
  EXPECT_TRUE(d.air.is_attached(ue));
  EXPECT_EQ(d.air.serving_cell(ue), du.cell);
  EXPECT_GE(du.du->stats().prach_detections, 1u);
}

TEST(E2eBaseline, FourLayerThroughputMatchesTable2Anchor) {
  Deployment d;
  auto du = d.add_du(cell100(), srsran_profile(), 0);
  RuSite site;
  site.pos = d.plan.ru_position(0, 0);
  site.n_antennas = 4;
  site.bandwidth = MHz(100);
  site.center_freq = cell100().center_freq;
  auto ru = d.add_ru(site, 0, du.du->fh());
  d.connect_direct(du, ru);

  const UeId ue = d.add_ue(d.plan.near_ru(0, 0, 5.0), &du, 1200.0, 100.0);
  ASSERT_TRUE(d.attach_all(300));
  d.measure(400);

  // Paper: 898.2 Mbps DL with rank 4; 70 Mbps UL SISO.
  EXPECT_NEAR(d.dl_mbps(ue), 898.0, 898.0 * 0.10);
  EXPECT_NEAR(d.ul_mbps(ue), 70.0, 70.0 * 0.15);
  EXPECT_EQ(d.air.last_rank(ue), 4);
}

TEST(E2eBaseline, NoLatePacketsOrParseErrorsOnCleanPath) {
  Deployment d;
  auto du = d.add_du(cell100(), srsran_profile(), 0);
  RuSite site;
  site.pos = d.plan.ru_position(0, 0);
  site.n_antennas = 4;
  site.bandwidth = MHz(100);
  site.center_freq = cell100().center_freq;
  auto ru = d.add_ru(site, 0, du.du->fh());
  d.connect_direct(du, ru);
  d.add_ue(d.plan.near_ru(0, 0, 5.0), &du, 50.0, 5.0);
  d.attach_all(300);
  d.measure(100);

  EXPECT_EQ(du.du->stats().parse_errors, 0u);
  EXPECT_EQ(du.du->stats().late_drops, 0u);
  EXPECT_EQ(ru.ru->stats().parse_errors, 0u);
  EXPECT_EQ(ru.ru->stats().late_drops, 0u);
  EXPECT_EQ(ru.ru->stats().unexpected_port_drops, 0u);
  EXPECT_GT(ru.ru->stats().uplane_rx, 0u);
  EXPECT_GT(du.du->stats().uplane_rx, 0u);
}

}  // namespace
}  // namespace rb
