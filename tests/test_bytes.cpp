// Unit + property tests for the byte/bit packing primitives.
#include <gtest/gtest.h>

#include <random>

#include "common/bytes.h"

namespace rb {
namespace {

TEST(BufWriter, WritesBigEndian) {
  std::array<std::uint8_t, 16> buf{};
  BufWriter w(buf);
  w.u8(0xab);
  w.u16(0x1234);
  w.u24(0x56789a);
  w.u32(0xdeadbeef);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.written(), 10u);
  const std::array<std::uint8_t, 10> expect{0xab, 0x12, 0x34, 0x56, 0x78,
                                            0x9a, 0xde, 0xad, 0xbe, 0xef};
  for (std::size_t i = 0; i < expect.size(); ++i) EXPECT_EQ(buf[i], expect[i]);
}

TEST(BufWriter, OverflowSetsNotOk) {
  std::array<std::uint8_t, 3> buf{};
  BufWriter w(buf);
  w.u16(1);
  EXPECT_TRUE(w.ok());
  w.u16(2);  // 4 bytes > 3
  EXPECT_FALSE(w.ok());
}

TEST(BufWriter, PatchU16Backfills) {
  std::array<std::uint8_t, 8> buf{};
  BufWriter w(buf);
  const std::size_t at = w.reserve_u16();
  w.u8(0x11);
  w.patch_u16(at, 0xbeef);
  EXPECT_EQ(buf[0], 0xbe);
  EXPECT_EQ(buf[1], 0xef);
  EXPECT_EQ(buf[2], 0x11);
}

TEST(BufReader, RoundTripsWriter) {
  std::array<std::uint8_t, 16> buf{};
  BufWriter w(buf);
  w.u8(7);
  w.u16(300);
  w.u24(70000);
  w.u32(0x01020304);
  BufReader r(std::span<const std::uint8_t>(buf.data(), w.written()));
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 300);
  EXPECT_EQ(r.u24(), 70000u);
  EXPECT_EQ(r.u32(), 0x01020304u);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);  // reader spans exactly the written bytes
}

TEST(BufReader, UnderrunSetsNotOk) {
  std::array<std::uint8_t, 2> buf{1, 2};
  BufReader r(buf);
  r.u32();
  EXPECT_FALSE(r.ok());
}

TEST(BufReader, ViewDoesNotCopy) {
  std::array<std::uint8_t, 4> buf{1, 2, 3, 4};
  BufReader r(buf);
  auto v = r.view(2);
  EXPECT_EQ(v.data(), buf.data());
  EXPECT_EQ(r.pos(), 2u);
}

/// Property: for every width, packing a stream of signed values in range
/// and unpacking returns the same values.
class BitPackWidth : public ::testing::TestWithParam<int> {};

TEST_P(BitPackWidth, SignedRoundTrip) {
  const int width = GetParam();
  const std::int32_t lo = -(1 << (width - 1));
  const std::int32_t hi = (1 << (width - 1)) - 1;
  std::mt19937 rng(std::uint32_t(width) * 77u);
  std::uniform_int_distribution<std::int32_t> dist(lo, hi);

  std::vector<std::int32_t> values(97);
  for (auto& v : values) v = dist(rng);
  values[0] = lo;   // extremes
  values[1] = hi;
  values[2] = 0;
  values[3] = -1;

  std::vector<std::uint8_t> buf((values.size() * unsigned(width) + 7) / 8);
  BitWriter w(buf);
  for (auto v : values) w.put(v, width);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.bytes_written(), buf.size());

  BitReader r(buf);
  for (auto v : values) EXPECT_EQ(r.get(width), v);
  EXPECT_TRUE(r.ok());
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BitPackWidth,
                         ::testing::Range(2, 17));

TEST(BitWriter, OverflowSetsNotOk) {
  std::array<std::uint8_t, 1> buf{};
  BitWriter w(buf);
  w.put(1, 8);
  EXPECT_TRUE(w.ok());
  w.put(1, 1);
  EXPECT_FALSE(w.ok());
}

TEST(BitReader, OverrunSetsNotOk) {
  std::array<std::uint8_t, 1> buf{0xff};
  BitReader r(buf);
  r.get(8);
  EXPECT_TRUE(r.ok());
  r.get(1);
  EXPECT_FALSE(r.ok());
}

TEST(BitPack, UnalignedBoundaries) {
  // 9-bit values crossing byte boundaries - the BFP W=9 hot path.
  std::array<std::uint8_t, 16> buf{};
  BitWriter w(buf);
  const std::int32_t vals[5] = {255, -256, 1, -1, 100};
  for (auto v : vals) w.put(v, 9);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.bytes_written(), std::size_t((5 * 9 + 7) / 8));
  BitReader r(buf);
  for (auto v : vals) EXPECT_EQ(r.get(9), v);
}

}  // namespace
}  // namespace rb
