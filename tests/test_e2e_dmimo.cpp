// End-to-end distributed MIMO (paper 4.2 / 6.2.2, Table 2): two RUs with
// half the antennas each equal one RU with all of them; antenna-port
// remapping and SSB copying are exercised on the real packet path.
#include <gtest/gtest.h>

#include "sim/deployment.h"

namespace rb {
namespace {

CellConfig cell100(int layers) {
  CellConfig c;
  c.bandwidth = MHz(100);
  c.max_layers = layers;
  c.pci = 1;
  return c;
}

RuSite site_at(const Floorplan& plan, int floor, int idx, int ants,
               Hertz cf) {
  RuSite s;
  s.pos = plan.ru_position(floor, idx);
  s.n_antennas = ants;
  s.bandwidth = MHz(100);
  s.center_freq = cf;
  return s;
}

/// Single co-located RU baseline at a given layer count.
double baseline_dl(int layers, int* rank_out) {
  Deployment d;
  auto du = d.add_du(cell100(layers), srsran_profile(), 0);
  auto ru = d.add_ru(site_at(d.plan, 0, 1, layers, du.du->config().cell.center_freq),
                     0, du.du->fh());
  d.connect_direct(du, ru);
  const UeId ue = d.add_ue(d.plan.near_ru(0, 1, 5.0), &du, 1200.0, 100.0);
  EXPECT_TRUE(d.attach_all(400));
  d.measure(400);
  if (rank_out) *rank_out = d.air.last_rank(ue);
  return d.dl_mbps(ue);
}

/// dMIMO over two RUs ~5 m apart with `ants_each` antennas each.
double dmimo_dl(int ants_each, int* rank_out, std::uint64_t* remaps) {
  Deployment d;
  const int layers = 2 * ants_each;
  auto du = d.add_du(cell100(layers), srsran_profile(), 0);
  const Hertz cf = du.du->config().cell.center_freq;
  RuSite s1 = site_at(d.plan, 0, 1, ants_each, cf);
  RuSite s2 = s1;
  s2.pos.x += 5.0;  // "approximately 5 meters apart" (6.2.2)
  auto ru1 = d.add_ru(s1, 0, du.du->fh());
  auto ru2 = d.add_ru(s2, 1, du.du->fh());
  auto& rt = d.add_dmimo(du, {&ru1, &ru2});
  // Equidistant at ~5 m from both RUs (perpendicular offset from the
  // midpoint), matching the baseline UE's 5 m range.
  Position pos = s1.pos;
  pos.x += 2.5;
  pos.y += 4.33;
  const UeId ue = d.add_ue(pos, &du, 1200.0, 100.0);
  EXPECT_TRUE(d.attach_all(400));
  d.measure(400);
  if (rank_out) *rank_out = d.air.last_rank(ue);
  if (remaps) *remaps = rt.telemetry().counter("dmimo_dl_remaps");
  EXPECT_EQ(d.dus[0]->stats().parse_errors, 0u);
  return d.dl_mbps(ue);
}

TEST(E2eDmimo, TwoLayerMatchesSingleRuBaseline) {
  int base_rank = 0, dm_rank = 0;
  std::uint64_t remaps = 0;
  const double base = baseline_dl(2, &base_rank);
  const double dmimo = dmimo_dl(1, &dm_rank, &remaps);
  // Table 2: 653.4 vs 654.1 Mbps, both rank 2.
  EXPECT_NEAR(base, 653.4, 653.4 * 0.10);
  EXPECT_NEAR(dmimo, base, base * 0.08);
  EXPECT_EQ(base_rank, 2);
  EXPECT_EQ(dm_rank, 2);
  EXPECT_GT(remaps, 0u);  // port ids really were rewritten
}

TEST(E2eDmimo, FourLayerMatchesSingleRuBaseline) {
  int base_rank = 0, dm_rank = 0;
  std::uint64_t remaps = 0;
  const double base = baseline_dl(4, &base_rank);
  const double dmimo = dmimo_dl(2, &dm_rank, &remaps);
  // Table 2: 898.2 vs 896.9 Mbps, both rank 4.
  EXPECT_NEAR(base, 898.2, 898.2 * 0.10);
  EXPECT_NEAR(dmimo, base, base * 0.08);
  EXPECT_EQ(base_rank, 4);
  EXPECT_EQ(dm_rank, 4);
  EXPECT_GT(remaps, 0u);
}

TEST(E2eDmimo, WithoutMiddleboxSecondRuDropsUnknownPorts) {
  // Plugging a 4-layer DU into a 2-antenna RU without the middlebox: the
  // RU rejects ports 2-3 and the link degrades to the RU's own rank.
  Deployment d;
  auto du = d.add_du(cell100(4), srsran_profile(), 0);
  auto ru = d.add_ru(site_at(d.plan, 0, 1, 2, du.du->config().cell.center_freq),
                     0, du.du->fh());
  d.connect_direct(du, ru);
  const UeId ue = d.add_ue(d.plan.near_ru(0, 1, 5.0), &du, 1200.0, 100.0);
  ASSERT_TRUE(d.attach_all(400));
  d.measure(300);
  EXPECT_LE(d.air.last_rank(ue), 2);
  EXPECT_GT(ru.ru->stats().unexpected_port_drops, 0u);
}

TEST(E2eDmimo, SsbCopyExtendsCoverageToSecondRu) {
  // A UE near RU2 but far from RU1 attaches only because the middlebox
  // grafts the SSB into RU2's primary antenna stream (paper 4.2).
  auto build = [](bool copy_ssb, UeId* ue_out, Deployment& d) {
    auto du = d.add_du(cell100(4), srsran_profile(), 0);
    const Hertz cf = du.du->config().cell.center_freq;
    RuSite s1 = site_at(d.plan, 0, 0, 2, cf);
    RuSite s2 = site_at(d.plan, 0, 3, 2, cf);  // far across the floor
    auto ru1 = d.add_ru(s1, 0, du.du->fh());
    auto ru2 = d.add_ru(s2, 1, du.du->fh());
    d.add_dmimo(du, {&ru1, &ru2}, DriverKind::Dpdk, copy_ssb);
    *ue_out = d.add_ue(d.plan.near_ru(0, 3, 2.0), &du, 100.0, 10.0);
  };
  {
    Deployment d;
    UeId ue;
    build(false, &ue, d);
    d.engine.run_slots(300);
    EXPECT_FALSE(d.air.is_attached(ue)) << "attached without SSB copy";
  }
  {
    Deployment d;
    UeId ue;
    build(true, &ue, d);
    d.engine.run_slots(300);
    EXPECT_TRUE(d.air.is_attached(ue)) << "SSB copy should enable attach";
  }
}

}  // namespace
}  // namespace rb
